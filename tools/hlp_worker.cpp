// hlp_worker — the worker-process half of the distributed runner
// (src/flow/distributed.hpp, docs/distributed.md).
//
//   hlp_worker --manifest <file> --results <file>     (batch, protocol v1)
//              [--sa-out <prefix>] [--sa-in <prefix>]
//              [--jobs <n>] [--coalesce 0|1] [--store <dir>]
//   hlp_worker --serve                                (stream, protocol v2)
//              [--sa-out <prefix>] [--sa-in <prefix>]
//              [--jobs <n>] [--coalesce 0|1] [--store <dir>]
//
// Batch mode (HLP_DISPATCH=static): loads a job-slice manifest, runs it
// through the ordinary in-process ExperimentRunner (seed coalescing and
// word-parallel simulation included), and writes the results file
// *atomically* (write to "<file>.tmp", rename) so the parent either sees
// a complete file or none at all.
//
// Serve mode (HLP_DISPATCH=stream): a long-lived loop that reads framed
// unit requests from stdin and writes framed unit responses to stdout
// (flow/job_io.hpp, protocol v2) until a `quit` line or EOF. One
// ExperimentRunner lives for the whole session, so FlowContexts,
// StageCaches and SA tables stay warm across units — later units of the
// same design reuse the schedule/binding/map artifacts the first one
// computed. Stdout belongs to the protocol; diagnostics go to stderr.
//
// Either way, the switching-activity tables the work produced are
// persisted to "<sa-out prefix>.w<width>[.<mode>]" (atomically; in serve
// mode once, at exit; see flow::sa_cache_file_suffix) for the parent to
// merge with SaCache::merge_from; "--sa-in" preloads tables from a shared
// warm-start prefix first, so a worker starts as warm as the parent. The
// SA mode itself arrives pre-resolved in each manifest row (`sa=`), so a
// worker's own HLP_SA_MODE never influences which backend runs.
//
// "--store <dir>" points the worker at the fleet's shared artifact store
// (src/store/artifact_store.hpp): stage artifacts computed here persist
// for every other worker and future runs. Like the SA mode, the store is
// the PARENT's decision — the worker always overrides its own HLP_STORE
// with the flag's value (absent flag = no store), so a fleet behaves the
// same whatever environment its workers inherit.
//
// Exit status: 0 when the work ran — including jobs that failed, which
// report through their serialized JobResult::error, exactly like the
// in-process runner — nonzero only for infrastructure errors (bad usage,
// unreadable manifest, unwritable results, a broken protocol stream),
// with the reason on stderr. The DistributedRunner parent turns a nonzero
// exit, a signal death, a timeout or truncated output into per-job (batch:
// per-slice; serve: per-unit, with bounded requeue first) errors.
//
// The binary is deliberately transport-agnostic: the parent runs it via
// fork/exec on one machine, but the same manifest/results contract works
// over ssh/scp — and the serve loop over any byte stream — for
// multi-machine sharding.
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "flow/distributed.hpp"
#include "flow/experiment.hpp"
#include "flow/job_io.hpp"

namespace {

struct Options {
  std::string manifest;
  std::string results;
  std::string sa_out;
  std::string sa_in;
  std::string store;
  int jobs = 1;
  bool coalesce = true;
  bool serve = false;
};

[[noreturn]] void usage(const std::string& why) {
  std::cerr << "hlp_worker: " << why << "\n"
            << "usage: hlp_worker --manifest <file> --results <file>\n"
            << "                  [--sa-out <prefix>] [--sa-in <prefix>]\n"
            << "                  [--jobs <n>] [--coalesce 0|1] "
               "[--store <dir>]\n"
            << "   or: hlp_worker --serve [--sa-out <prefix>] "
               "[--sa-in <prefix>]\n"
            << "                  [--jobs <n>] [--coalesce 0|1] "
               "[--store <dir>]\n";
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--serve") {
      opt.serve = true;
      continue;
    }
    if (i + 1 >= argc) usage("flag '" + flag + "' needs a value");
    const std::string value = argv[++i];
    if (flag == "--manifest") {
      opt.manifest = value;
    } else if (flag == "--results") {
      opt.results = value;
    } else if (flag == "--sa-out") {
      opt.sa_out = value;
    } else if (flag == "--sa-in") {
      opt.sa_in = value;
    } else if (flag == "--store") {
      opt.store = value;
    } else if (flag == "--jobs") {
      char* end = nullptr;
      errno = 0;
      const long v = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || errno == ERANGE || v < 1 ||
          v > INT_MAX)
        usage("--jobs '" + value + "' must be an integer >= 1");
      opt.jobs = static_cast<int>(v);
    } else if (flag == "--coalesce") {
      if (value != "0" && value != "1") usage("--coalesce must be 0 or 1");
      opt.coalesce = value == "1";
    } else {
      usage("unknown flag '" + flag + "'");
    }
  }
  if (opt.serve) {
    if (!opt.manifest.empty() || !opt.results.empty())
      usage("--serve takes units over stdin, not --manifest/--results");
  } else {
    if (opt.manifest.empty()) usage("--manifest is required");
    if (opt.results.empty()) usage("--results is required");
  }
  return opt;
}

// Preload the shared warm-start table for every (width, SA mode) pair in
// `jobs` that has not been preloaded yet. The mode arrives pre-resolved in
// the manifest (`sa=`), so the worker opens exactly the table the parent
// would — never consulting its own HLP_SA_MODE. Must run before the first
// job of a pair computes anything, which is why the serve loop calls it
// per unit.
void preload_sa(hlp::flow::ExperimentRunner& runner, const std::string& sa_in,
                const std::vector<hlp::flow::ManifestJob>& jobs,
                std::set<std::pair<int, hlp::SaMode>>& preloaded) {
  if (sa_in.empty()) return;
  for (const hlp::flow::ManifestJob& mj : jobs) {
    const hlp::SaMode mode = hlp::effective_sa_mode(mj.job.sa);
    if (!preloaded.insert({mj.job.width, mode}).second) continue;
    const std::string file =
        sa_in + hlp::flow::sa_cache_file_suffix(mj.job.width, mode);
    if (std::ifstream probe(file); probe.good())
      runner.sa_cache(mj.job.width, mode).load_file(file);
  }
}

int run_batch(const Options& opt) {
  using namespace hlp;
  const std::vector<flow::ManifestJob> slice =
      flow::load_manifest_file(opt.manifest);

  flow::ExperimentRunner runner(opt.jobs);
  runner.set_coalescing(opt.coalesce);
  // The store is the parent's call: always override the environment with
  // the flag (empty = none), so a worker never opens its own HLP_STORE.
  runner.set_store_dir(opt.store);
  // Private SA shard out (run() persists there); shared warm start in.
  runner.set_sa_cache_path(opt.sa_out);  // empty = no persistence
  std::set<std::pair<int, hlp::SaMode>> preloaded;
  preload_sa(runner, opt.sa_in, slice, preloaded);

  std::vector<flow::Job> jobs;
  jobs.reserve(slice.size());
  for (const flow::ManifestJob& mj : slice) jobs.push_back(mj.job);
  const std::vector<flow::JobResult> results = runner.run(jobs);

  std::vector<flow::ManifestResult> out;
  out.reserve(results.size());
  for (std::size_t i = 0; i < results.size(); ++i)
    out.push_back({slice[i].index, results[i]});
  flow::save_results_file(opt.results, out);

  std::size_t failed = 0;
  for (const auto& r : results) failed += r.ok ? 0 : 1;
  std::cout << "hlp_worker: " << results.size() << " job(s), " << failed
            << " failed\n";
  return 0;
}

int run_serve(const Options& opt) {
  using namespace hlp;
  flow::ExperimentRunner runner(opt.jobs);
  runner.set_coalescing(opt.coalesce);
  // As in batch mode: the parent's --store (or none), never the worker's
  // own HLP_STORE.
  runner.set_store_dir(opt.store);
  // No persistence path while serving: run() must not flush the SA tables
  // after every unit (and must not inherit HLP_SA_CACHE from the parent's
  // environment) — the shard is written once, at exit.
  runner.set_sa_cache_path("");
  std::set<std::pair<int, hlp::SaMode>> preloaded;

  std::size_t units = 0, jobs_run = 0, failed = 0;
  while (true) {
    const flow::UnitRequest req = flow::load_unit_request(std::cin);
    if (req.quit) break;
    preload_sa(runner, opt.sa_in, req.jobs, preloaded);

    std::vector<flow::Job> jobs;
    jobs.reserve(req.jobs.size());
    for (const flow::ManifestJob& mj : req.jobs) jobs.push_back(mj.job);
    const std::vector<flow::JobResult> results = runner.run(jobs);

    std::vector<flow::ManifestResult> out;
    out.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i)
      out.push_back({req.jobs[i].index, results[i]});
    flow::save_unit_response(std::cout, req.id, out);
    std::cout.flush();
    HLP_REQUIRE(std::cout.good(),
                "write of unit " << req.id << " response failed");

    ++units;
    jobs_run += results.size();
    for (const auto& r : results) failed += r.ok ? 0 : 1;
  }

  // Flush the SA shard exactly once, after the whole session: every unit
  // served (across all designs and widths) contributed to the same warm
  // tables.
  if (!opt.sa_out.empty()) {
    runner.set_sa_cache_path(opt.sa_out);
    runner.persist_sa_caches();
  }
  std::cerr << "hlp_worker: served " << units << " unit(s), " << jobs_run
            << " job(s), " << failed << " failed\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  try {
    return opt.serve ? run_serve(opt) : run_batch(opt);
  } catch (const std::exception& e) {
    std::cerr << "hlp_worker: " << e.what() << "\n";
    return 1;
  }
}
