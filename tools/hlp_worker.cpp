// hlp_worker — the worker-process half of the distributed runner
// (src/flow/distributed.hpp, docs/distributed.md).
//
//   hlp_worker --manifest <file> --results <file>
//              [--sa-out <prefix>] [--sa-in <prefix>]
//              [--jobs <n>] [--coalesce 0|1]
//
// Loads a job-slice manifest, runs it through the ordinary in-process
// ExperimentRunner (seed coalescing and word-parallel simulation
// included), and writes the results file *atomically* (write to
// "<file>.tmp", rename) so the parent either sees a complete file or none
// at all. The switching-activity tables the slice produced are persisted
// to "<sa-out prefix>.w<width>" (also atomically) for the parent to merge
// with SaCache::merge_from; "--sa-in" preloads tables from a shared
// warm-start prefix first, so a worker starts as warm as the parent.
//
// Exit status: 0 when the slice ran — including jobs that failed, which
// report through their serialized JobResult::error, exactly like the
// in-process runner — nonzero only for infrastructure errors (bad usage,
// unreadable manifest, unwritable results), with the reason on stderr.
// The DistributedRunner parent turns a nonzero exit, a signal death, a
// timeout or a truncated results file into per-job errors for the slice.
//
// The binary is deliberately transport-agnostic: the parent runs it via
// fork/exec on one machine, but the same manifest in / results out
// contract works over ssh/scp for multi-machine sharding.
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "flow/distributed.hpp"
#include "flow/experiment.hpp"
#include "flow/job_io.hpp"

namespace {

struct Options {
  std::string manifest;
  std::string results;
  std::string sa_out;
  std::string sa_in;
  int jobs = 1;
  bool coalesce = true;
};

[[noreturn]] void usage(const std::string& why) {
  std::cerr << "hlp_worker: " << why << "\n"
            << "usage: hlp_worker --manifest <file> --results <file>\n"
            << "                  [--sa-out <prefix>] [--sa-in <prefix>]\n"
            << "                  [--jobs <n>] [--coalesce 0|1]\n";
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) usage("flag '" + flag + "' needs a value");
    const std::string value = argv[++i];
    if (flag == "--manifest") {
      opt.manifest = value;
    } else if (flag == "--results") {
      opt.results = value;
    } else if (flag == "--sa-out") {
      opt.sa_out = value;
    } else if (flag == "--sa-in") {
      opt.sa_in = value;
    } else if (flag == "--jobs") {
      char* end = nullptr;
      errno = 0;
      const long v = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || errno == ERANGE || v < 1 ||
          v > INT_MAX)
        usage("--jobs '" + value + "' must be an integer >= 1");
      opt.jobs = static_cast<int>(v);
    } else if (flag == "--coalesce") {
      if (value != "0" && value != "1") usage("--coalesce must be 0 or 1");
      opt.coalesce = value == "1";
    } else {
      usage("unknown flag '" + flag + "'");
    }
  }
  if (opt.manifest.empty()) usage("--manifest is required");
  if (opt.results.empty()) usage("--results is required");
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hlp;
  const Options opt = parse_args(argc, argv);
  try {
    const std::vector<flow::ManifestJob> slice =
        flow::load_manifest_file(opt.manifest);

    flow::ExperimentRunner runner(opt.jobs);
    runner.set_coalescing(opt.coalesce);
    // Private SA shard out (run() persists there); shared warm start in.
    runner.set_sa_cache_path(opt.sa_out);  // empty = no persistence
    if (!opt.sa_in.empty()) {
      std::set<int> widths;
      for (const flow::ManifestJob& mj : slice) widths.insert(mj.job.width);
      for (const int width : widths) {
        const std::string file = opt.sa_in + ".w" + std::to_string(width);
        if (std::ifstream probe(file); probe.good())
          runner.sa_cache(width).load_file(file);
      }
    }

    std::vector<flow::Job> jobs;
    jobs.reserve(slice.size());
    for (const flow::ManifestJob& mj : slice) jobs.push_back(mj.job);
    const std::vector<flow::JobResult> results = runner.run(jobs);

    std::vector<flow::ManifestResult> out;
    out.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i)
      out.push_back({slice[i].index, results[i]});
    flow::save_results_file(opt.results, out);

    std::size_t failed = 0;
    for (const auto& r : results) failed += r.ok ? 0 : 1;
    std::cout << "hlp_worker: " << results.size() << " job(s), " << failed
              << " failed\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "hlp_worker: " << e.what() << "\n";
    return 1;
  }
}
