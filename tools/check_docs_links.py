#!/usr/bin/env python3
"""Link-check and lightweight lint for the repo's markdown tree.

Run from anywhere: paths are resolved relative to the repo root (the
parent of this script's directory). Checks every tracked-looking *.md at
the repo root and under docs/:

  * every relative markdown link/image target exists (anchors stripped);
  * no link target is an absolute filesystem path;
  * no empty link targets `[text]()`;
  * fenced code blocks are balanced (an odd number of ``` fences usually
    means a swallowed section).

Exits non-zero with one line per problem, so CI fails loudly.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]*)\)")
SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def md_files():
    yield from sorted(REPO.glob("*.md"))
    yield from sorted((REPO / "docs").glob("*.md"))


def check_file(path: Path):
    problems = []
    text = path.read_text(encoding="utf-8")
    rel = path.relative_to(REPO)

    if text.count("```") % 2 != 0:
        problems.append(f"{rel}: unbalanced ``` code fences")

    for m in LINK_RE.finditer(text):
        target = m.group(1)
        line = text.count("\n", 0, m.start()) + 1
        if target.startswith(SCHEMES) or target.startswith("#"):
            continue
        if not target:
            problems.append(f"{rel}:{line}: empty link target")
            continue
        if target.startswith("/"):
            problems.append(
                f"{rel}:{line}: absolute path link '{target}' (use a "
                "repo-relative path)")
            continue
        plain = target.split("#", 1)[0]
        if not plain:
            continue
        if not (path.parent / plain).exists():
            problems.append(f"{rel}:{line}: broken link '{target}'")
    return problems


def main():
    files = list(md_files())
    if not files:
        print("check_docs_links: no markdown files found", file=sys.stderr)
        return 1
    problems = []
    for path in files:
        problems.extend(check_file(path))
    for p in problems:
        print(p, file=sys.stderr)
    print(f"check_docs_links: {len(files)} files, {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
