// hlp_store — fleet-hygiene CLI for the content-addressed artifact store
// (src/store/artifact_store.hpp, docs/artifact-store.md).
//
//   hlp_store fsck <root> [--repair]
//   hlp_store gc <root> [--max-age-seconds <n>] [--keep-manifest <file>]
//                       [--dry-run]
//   hlp_store merge <dest-root> <src-root>...
//   hlp_store stats <root>
//
// fsck validates every object through the store's strict parse (magic,
// checksum, footer, both netlists) plus the filename-matches-address
// check that catches renamed or planted files, and reports each defect.
// With --repair, invalid objects are deleted — the next probe recomputes
// them, which is the store's documented corruption contract — and stale
// staging directories left by dead writers are swept. Exit status: 0 when
// the store is healthy (or --repair removed every reject), 1 when
// unrepaired rejects remain, 2 on usage/infrastructure errors. CI runs
// `fsck --repair` on the cache-restored store before the warm pass, so a
// stale or truncated cache self-heals into misses instead of failing.
//
// gc drops objects that can no longer earn a hit: unreferenced by the
// given manifest's jobs (--keep-manifest derives each job's ArtifactKey
// through ExperimentRunner::artifact_key_for — the exact keys the
// pipeline probes), older than --max-age-seconds, or invalid. Filters
// compose as keeps; --dry-run reports without deleting.
//
// merge consolidates worker-fleet shards into one store with the strict
// SaCache-style merge_from contract: every source object is validated
// before anything is written, overlaps must agree byte-for-byte, and a
// corrupt source or a conflict rejects that whole shard without partial
// state.
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "flow/experiment.hpp"
#include "flow/job_io.hpp"
#include "store/artifact_store.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: hlp_store fsck <root> [--repair]\n"
      << "       hlp_store gc <root> [--max-age-seconds <n>]\n"
      << "                           [--keep-manifest <file>] [--dry-run]\n"
      << "       hlp_store merge <dest-root> <src-root>...\n"
      << "       hlp_store stats <root>\n";
  return 2;
}

std::int64_t parse_seconds(const std::string& s) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  HLP_REQUIRE(end && *end == '\0' && end != s.c_str() && errno != ERANGE &&
                  v >= 0,
              "--max-age-seconds '" << s << "' must be a non-negative integer");
  return static_cast<std::int64_t>(v);
}

int run_fsck(const std::vector<std::string>& args) {
  std::string root;
  bool repair = false;
  for (const std::string& a : args) {
    if (a == "--repair")
      repair = true;
    else if (root.empty() && a[0] != '-')
      root = a;
    else
      return usage();
  }
  if (root.empty()) return usage();
  hlp::store::ArtifactStore store(root);
  const hlp::store::FsckReport report = store.fsck(repair);
  for (const std::string& defect : report.rejected)
    std::cerr << "fsck: " << defect << "\n";
  std::cout << "fsck " << root << ": " << report.scanned << " objects, "
            << report.valid << " valid, " << report.rejected.size()
            << " rejected, " << report.repaired << " repaired, "
            << report.staging_removed << " stale staging dirs removed\n";
  return (report.clean() || report.rejected.size() == report.repaired) ? 0 : 1;
}

int run_gc(const std::vector<std::string>& args) {
  std::string root;
  hlp::store::GcOptions opt;
  std::string manifest;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--dry-run") {
      opt.dry_run = true;
    } else if (a == "--max-age-seconds" && i + 1 < args.size()) {
      opt.max_age_seconds = parse_seconds(args[++i]);
    } else if (a == "--keep-manifest" && i + 1 < args.size()) {
      manifest = args[++i];
    } else if (root.empty() && a[0] != '-') {
      root = a;
    } else {
      return usage();
    }
  }
  if (root.empty()) return usage();
  if (!manifest.empty()) {
    // The manifest's jobs name everything that must stay warm; their
    // ArtifactKeys are computed exactly like the pipeline computes them
    // (resolved SA, requested settle/simd, CDFG-digested scope).
    hlp::flow::ExperimentRunner runner(1);
    std::set<std::string> live;
    for (const hlp::flow::ManifestJob& mj :
         hlp::flow::load_manifest_file(manifest))
      live.insert(
          hlp::store::ArtifactStore::content_address(
              runner.artifact_key_for(mj.job)));
    opt.live_addresses = std::move(live);
  }
  hlp::store::ArtifactStore store(root);
  const hlp::store::GcReport report = store.gc(opt);
  std::cout << "gc " << root << (opt.dry_run ? " (dry run)" : "") << ": "
            << report.scanned << " objects, " << report.kept << " kept, "
            << report.dropped_unreferenced << " unreferenced, "
            << report.dropped_aged << " aged out, " << report.dropped_invalid
            << " invalid, " << report.staging_removed
            << " stale staging dirs removed\n";
  return 0;
}

int run_merge(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  hlp::store::ArtifactStore dest(args[0]);
  std::size_t inserted = 0;
  for (std::size_t i = 1; i < args.size(); ++i)
    inserted += dest.merge_from(args[i]);
  std::cout << "merge " << args[0] << ": " << inserted
            << " entries inserted from " << args.size() - 1 << " shard"
            << (args.size() - 1 == 1 ? "" : "s") << ", " << dest.size()
            << " objects total\n";
  return 0;
}

int run_stats(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage();
  hlp::store::ArtifactStore store(args[0]);
  const auto objects = store.enumerate();
  std::uintmax_t bytes = 0;
  std::int64_t oldest = 0;
  for (const hlp::store::ObjectInfo& obj : objects) {
    bytes += obj.bytes;
    oldest = std::max(oldest, obj.age_seconds);
  }
  std::cout << "stats " << args[0] << ": " << objects.size() << " objects, "
            << bytes << " bytes, oldest " << oldest << "s\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "fsck") return run_fsck(args);
    if (cmd == "gc") return run_gc(args);
    if (cmd == "merge") return run_merge(args);
    if (cmd == "stats") return run_stats(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "hlp_store " << cmd << ": " << e.what() << "\n";
    return 2;
  }
}
