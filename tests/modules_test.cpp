// Functional correctness of the gate-level resource library: adders,
// multipliers, multiplexers and registers are verified against machine
// arithmetic via zero-delay simulation, across widths and exhaustive or
// random operand sweeps.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "netlist/modules.hpp"
#include "sim/simulator.hpp"

namespace hlp {
namespace {

// Drive a pure-combinational module's inputs with `words` (one word per
// bus, bit j of bus k at input position k*width + j... buses laid out in
// module port order) and read back the output word.
std::uint64_t eval_module(const Netlist& m, int width,
                          const std::vector<std::uint64_t>& bus_words,
                          int num_select_bits = 0, std::uint64_t select = 0) {
  UnitDelaySimulator sim(m);
  const auto& ins = m.inputs();
  std::size_t pos = 0;
  for (std::uint64_t w : bus_words)
    for (int j = 0; j < width; ++j) sim.set_input(ins[pos++], (w >> j) & 1u);
  for (int k = 0; k < num_select_bits; ++k)
    sim.set_input(ins[pos++], (select >> k) & 1u);
  EXPECT_EQ(pos, ins.size());
  sim.settle_zero_delay(false);
  std::uint64_t out = 0;
  for (std::size_t j = 0; j < m.outputs().size(); ++j)
    if (sim.value(m.outputs()[j])) out |= 1ull << j;
  return out;
}

class AdderWidth : public ::testing::TestWithParam<int> {};

TEST_P(AdderWidth, MatchesModularArithmetic) {
  const int w = GetParam();
  const Netlist add = make_adder(w);
  EXPECT_EQ(static_cast<int>(add.inputs().size()), 2 * w);
  EXPECT_EQ(static_cast<int>(add.outputs().size()), w);
  const std::uint64_t mask = (w == 64) ? ~0ull : (1ull << w) - 1;
  Rng rng(77 + w);
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t a = rng.next_u64() & mask;
    const std::uint64_t b = rng.next_u64() & mask;
    EXPECT_EQ(eval_module(add, w, {a, b}), (a + b) & mask)
        << "w=" << w << " a=" << a << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderWidth, ::testing::Values(1, 2, 3, 4, 8, 12, 16));

TEST(Adder, ExhaustiveWidth3) {
  const Netlist add = make_adder(3);
  for (std::uint64_t a = 0; a < 8; ++a)
    for (std::uint64_t b = 0; b < 8; ++b)
      EXPECT_EQ(eval_module(add, 3, {a, b}), (a + b) & 7u);
}

class MultiplierWidth : public ::testing::TestWithParam<int> {};

TEST_P(MultiplierWidth, MatchesModularArithmetic) {
  const int w = GetParam();
  const Netlist mult = make_multiplier(w);
  const std::uint64_t mask = (1ull << w) - 1;
  Rng rng(99 + w);
  for (int i = 0; i < 48; ++i) {
    const std::uint64_t a = rng.next_u64() & mask;
    const std::uint64_t b = rng.next_u64() & mask;
    EXPECT_EQ(eval_module(mult, w, {a, b}), (a * b) & mask)
        << "w=" << w << " a=" << a << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MultiplierWidth, ::testing::Values(1, 2, 3, 4, 8, 10));

TEST(Multiplier, ExhaustiveWidth3) {
  const Netlist mult = make_multiplier(3);
  for (std::uint64_t a = 0; a < 8; ++a)
    for (std::uint64_t b = 0; b < 8; ++b)
      EXPECT_EQ(eval_module(mult, 3, {a, b}), (a * b) & 7u);
}

TEST(Multiplier, DeeperThanAdder) {
  // The array multiplier's ripple chain of ripple adders must be much
  // deeper than a single adder — the source of its glitchiness.
  EXPECT_GT(make_multiplier(8).depth(), make_adder(8).depth());
}

TEST(MuxSelectBits, Values) {
  EXPECT_EQ(mux_select_bits(1), 0);
  EXPECT_EQ(mux_select_bits(2), 1);
  EXPECT_EQ(mux_select_bits(3), 2);
  EXPECT_EQ(mux_select_bits(4), 2);
  EXPECT_EQ(mux_select_bits(5), 3);
  EXPECT_EQ(mux_select_bits(8), 3);
  EXPECT_EQ(mux_select_bits(9), 4);
}

struct MuxCase {
  int n;
  int w;
};

class MuxShape : public ::testing::TestWithParam<MuxCase> {};

TEST_P(MuxShape, SelectsEveryArm) {
  const auto [nin, w] = GetParam();
  const Netlist mux = make_mux(nin, w);
  const int sbits = mux_select_bits(nin);
  EXPECT_EQ(static_cast<int>(mux.inputs().size()), nin * w + sbits);
  EXPECT_EQ(static_cast<int>(mux.outputs().size()), w);
  Rng rng(5 + nin * 131 + w);
  std::vector<std::uint64_t> data(nin);
  const std::uint64_t mask = (1ull << w) - 1;
  for (auto& d : data) d = rng.next_u64() & mask;
  for (int s = 0; s < nin; ++s)
    EXPECT_EQ(eval_module(mux, w, data, sbits, static_cast<std::uint64_t>(s)),
              data[s])
        << "n=" << nin << " w=" << w << " sel=" << s;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MuxShape,
    ::testing::Values(MuxCase{1, 4}, MuxCase{2, 1}, MuxCase{2, 8}, MuxCase{3, 8},
                      MuxCase{4, 8}, MuxCase{5, 4}, MuxCase{6, 2}, MuxCase{7, 3},
                      MuxCase{8, 8}, MuxCase{13, 2}, MuxCase{16, 4}));

TEST(Mux, TreeDepthIsLogarithmic) {
  // A 16-input mux should be ~4 mux2 levels (+1 output buffer), far
  // shallower than a linear chain.
  EXPECT_LE(make_mux(16, 1).depth(), 6);
  EXPECT_LE(make_mux(8, 1).depth(), 5);
}

TEST(Mux, SingleInputIsPassThrough) {
  const Netlist m = make_mux(1, 4);
  EXPECT_EQ(static_cast<int>(m.inputs().size()), 4);
  for (std::uint64_t v : {0ull, 5ull, 15ull})
    EXPECT_EQ(eval_module(m, 4, {v}), v);
}

TEST(Register, LatchesOnClockEdge) {
  const Netlist reg = make_register(4);
  EXPECT_EQ(reg.num_latches(), 4);
  UnitDelaySimulator sim(reg);
  for (int j = 0; j < 4; ++j) sim.set_input(reg.inputs()[j], (0b1010 >> j) & 1);
  sim.settle();
  // Before a clock edge the outputs still hold 0.
  std::uint64_t q = 0;
  for (int j = 0; j < 4; ++j)
    if (sim.value(reg.outputs()[j])) q |= 1u << j;
  EXPECT_EQ(q, 0u);
  sim.clock_edge();
  sim.settle();
  q = 0;
  for (int j = 0; j < 4; ++j)
    if (sim.value(reg.outputs()[j])) q |= 1u << j;
  EXPECT_EQ(q, 0b1010u);
}

TEST(ModuleNames, Canonical) {
  EXPECT_EQ(adder_name(8), "add8");
  EXPECT_EQ(multiplier_name(12), "mult12");
  EXPECT_EQ(mux_name(4, 8), "mux4x8");
  EXPECT_EQ(register_name(8), "reg8");
  EXPECT_EQ(make_adder(8).name(), "add8");
  EXPECT_EQ(make_mux(4, 8).name(), "mux4x8");
}

TEST(Modules, GateFaninWithinLutBound) {
  for (const Netlist& m :
       {make_adder(8), make_multiplier(6), make_mux(9, 4)})
    for (const auto& g : m.gates())
      EXPECT_LE(g.ins.size(), 3u) << m.name();
}

}  // namespace
}  // namespace hlp
