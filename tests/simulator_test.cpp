// Tests for the event-driven unit-delay simulator: functional behaviour,
// glitch counting on canonical structures, latch semantics, determinism.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "netlist/modules.hpp"
#include "sim/schedule_sim.hpp"
#include "sim/simulator.hpp"
#include "sim/vectors.hpp"

namespace hlp {
namespace {

TEST(Vectors, DeterministicAndShaped) {
  const auto a = random_vectors(10, 7, 42);
  const auto b = random_vectors(10, 7, 42);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 10u);
  EXPECT_EQ(a[0].size(), 7u);
  const auto c = random_vectors(10, 7, 43);
  EXPECT_NE(a, c);
}

TEST(Vectors, WordsWithinWidth) {
  const auto w = random_words(100, 5, 7);
  for (auto v : w) EXPECT_LT(v, 32u);
}

TEST(Simulator, CombinationalFunction) {
  Netlist n("t");
  const NetId a = n.add_input("a"), b = n.add_input("b");
  const NetId y = n.add_gate_net("y", {a, b}, TruthTable::and2());
  n.add_output(y);
  UnitDelaySimulator sim(n);
  sim.set_input(a, true);
  sim.set_input(b, true);
  sim.settle();
  EXPECT_TRUE(sim.value(y));
  sim.set_input(b, false);
  sim.settle();
  EXPECT_FALSE(sim.value(y));
}

TEST(Simulator, InitialStateConsistent) {
  // An inverter chain from 0 inputs must come up internally consistent.
  Netlist n("inv");
  NetId cur = n.add_input("a");
  for (int i = 0; i < 3; ++i)
    cur = n.add_gate_net("n" + std::to_string(i), {cur}, TruthTable::not1());
  n.add_output(cur);
  UnitDelaySimulator sim(n);
  EXPECT_TRUE(sim.value(cur));  // NOT(NOT(NOT(0))) = 1 before any settle
}

TEST(Simulator, SettleStepsEqualDepth) {
  // A change must take exactly `depth` unit steps to reach the output.
  Netlist n("chain");
  NetId cur = n.add_input("a");
  for (int i = 0; i < 5; ++i)
    cur = n.add_gate_net("n" + std::to_string(i), {cur}, TruthTable::buf());
  n.add_output(cur);
  UnitDelaySimulator sim(n);
  sim.set_input(n.inputs()[0], true);
  EXPECT_EQ(sim.settle(), 6);  // t=0 applies the PI, 5 more to ripple
}

TEST(Simulator, StaticHazardGlitchCounted) {
  // y = a OR NOT(a): statically 1, but a rising a reaches the OR before
  // NOT(a) falls... actually a falling a makes y glitch: a=1->0; path via
  // NOT has one extra level, so y sees (a=0, na still 0) -> dips to 0.
  Netlist n("hazard");
  const NetId a = n.add_input("a");
  const NetId na = n.add_gate_net("na", {a}, TruthTable::not1());
  const NetId y = n.add_gate_net("y", {a, na}, TruthTable::or2());
  n.add_output(y);

  UnitDelaySimulator sim(n);
  sim.set_input(a, true);
  sim.settle();
  sim.clear_toggles();
  sim.set_input(a, false);
  sim.settle();
  // y ends at 1 (no net functional change) but toggled twice: 1->0->1.
  EXPECT_TRUE(sim.value(y));
  EXPECT_EQ(sim.toggles()[y], 2u);

  // Zero-delay reference: same stimulus, no glitch.
  UnitDelaySimulator zd(n);
  zd.set_input(a, true);
  zd.settle_zero_delay();
  zd.clear_toggles();
  zd.set_input(a, false);
  zd.settle_zero_delay();
  EXPECT_EQ(zd.toggles()[y], 0u);
}

TEST(Simulator, ZeroDelayAndUnitDelayAgreeOnFinalValues) {
  const Netlist m = make_multiplier(4);
  UnitDelaySimulator ud(m), zd(m);
  const auto vec = random_vectors(30, static_cast<int>(m.inputs().size()), 9);
  for (const auto& frame : vec) {
    for (std::size_t j = 0; j < frame.size(); ++j) {
      ud.set_input(m.inputs()[j], frame[j]);
      zd.set_input(m.inputs()[j], frame[j]);
    }
    ud.settle();
    zd.settle_zero_delay();
    for (NetId o : m.outputs()) EXPECT_EQ(ud.value(o), zd.value(o));
  }
}

TEST(Simulator, UnitDelayTogglesAtLeastZeroDelay) {
  const Netlist m = make_multiplier(4);
  UnitDelaySimulator ud(m), zd(m);
  const auto vec = random_vectors(50, static_cast<int>(m.inputs().size()), 11);
  for (const auto& frame : vec) {
    for (std::size_t j = 0; j < frame.size(); ++j) {
      ud.set_input(m.inputs()[j], frame[j]);
      zd.set_input(m.inputs()[j], frame[j]);
    }
    ud.settle();
    zd.settle_zero_delay();
  }
  EXPECT_GE(ud.total_toggles(), zd.total_toggles());
  EXPECT_GT(ud.total_toggles(), 0u);
}

TEST(Simulator, LatchSampleThenPropagate) {
  // q = latch(d); y = NOT q. Setting d only changes y after a clock edge.
  Netlist n("seq");
  const NetId d_in = n.add_input("d");
  const NetId q = n.add_net("q");
  n.add_latch(q, d_in);
  const NetId y = n.add_gate_net("y", {q}, TruthTable::not1());
  n.add_output(y);
  UnitDelaySimulator sim(n);
  EXPECT_TRUE(sim.value(y));
  sim.set_input(d_in, true);
  sim.settle();
  EXPECT_TRUE(sim.value(y));  // not yet clocked
  sim.clock_edge();
  sim.settle();
  EXPECT_FALSE(sim.value(y));
}

TEST(Simulator, ToggleFlipFlop) {
  // d = NOT q: q alternates every clock edge.
  Netlist n("tff");
  const NetId q = n.add_net("q");
  const NetId d = n.add_gate_net("d", {q}, TruthTable::not1());
  n.add_latch(q, d);
  n.add_output(q);
  UnitDelaySimulator sim(n);
  bool expect_q = false;
  for (int cyc = 0; cyc < 6; ++cyc) {
    EXPECT_EQ(sim.value(q), expect_q);
    sim.clock_edge();
    sim.settle();
    expect_q = !expect_q;
  }
}

TEST(Simulator, SetInputRejectsNonInput) {
  Netlist n("t");
  const NetId a = n.add_input("a");
  const NetId y = n.add_gate_net("y", {a}, TruthTable::buf());
  n.add_output(y);
  UnitDelaySimulator sim(n);
  EXPECT_THROW(sim.set_input(y, true), Error);
}

TEST(Simulator, ResetClearsState) {
  Netlist n("t");
  const NetId a = n.add_input("a");
  const NetId y = n.add_gate_net("y", {a}, TruthTable::buf());
  n.add_output(y);
  UnitDelaySimulator sim(n);
  sim.set_input(a, true);
  sim.settle();
  EXPECT_GT(sim.total_toggles(), 0u);
  sim.reset();
  EXPECT_EQ(sim.total_toggles(), 0u);
  EXPECT_FALSE(sim.value(y));
}

TEST(ScheduleSim, CountsFunctionalVsGlitch) {
  // The hazard circuit from above driven through frames.
  Netlist n("hazard");
  const NetId a = n.add_input("a");
  const NetId na = n.add_gate_net("na", {a}, TruthTable::not1());
  const NetId y = n.add_gate_net("y", {a, na}, TruthTable::or2());
  n.add_output(y);
  const std::vector<std::vector<char>> frames = {{1}, {0}, {1}, {0}};
  const CycleSimStats st = simulate_frames(n, frames);
  EXPECT_EQ(st.num_cycles, 4u);
  EXPECT_GT(st.glitch_transitions(), 0u);
  EXPECT_GT(st.total_transitions, st.functional_transitions);
}

TEST(ScheduleSim, DeterministicAcrossRuns) {
  const Netlist m = make_multiplier(3);
  const auto frames = random_vectors(40, static_cast<int>(m.inputs().size()), 21);
  const CycleSimStats a = simulate_frames(m, frames);
  const CycleSimStats b = simulate_frames(m, frames);
  EXPECT_EQ(a.total_transitions, b.total_transitions);
  EXPECT_EQ(a.toggles, b.toggles);
}

TEST(ScheduleSim, FrameArityChecked) {
  const Netlist m = make_adder(2);
  EXPECT_THROW(simulate_frames(m, {{1, 0}}), Error);
}

}  // namespace
}  // namespace hlp
