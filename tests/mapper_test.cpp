// Tests for cut enumeration and K-LUT technology mapping: coverage,
// functional equivalence of mapped vs original netlists, depth behaviour,
// and the glitch-aware selection mode.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "mapper/cuts.hpp"
#include "mapper/techmap.hpp"
#include "netlist/modules.hpp"
#include "power/activity.hpp"
#include "sim/simulator.hpp"

namespace hlp {
namespace {

std::uint64_t eval_all(const Netlist& n, std::uint64_t input_bits) {
  UnitDelaySimulator sim(n);
  for (std::size_t j = 0; j < n.inputs().size(); ++j)
    sim.set_input(n.inputs()[j], (input_bits >> j) & 1u);
  sim.clock_edge();
  sim.settle_zero_delay(false);
  std::uint64_t out = 0;
  for (std::size_t j = 0; j < n.outputs().size(); ++j)
    if (sim.value(n.outputs()[j])) out |= 1ull << j;
  return out;
}

Netlist two_level() {
  // y = (a & b) | (c & d): classic 4-input function of 3 gates.
  Netlist n("t");
  const NetId a = n.add_input("a"), b = n.add_input("b"),
              c = n.add_input("c"), d = n.add_input("d");
  const NetId x1 = n.add_gate_net("x1", {a, b}, TruthTable::and2());
  const NetId x2 = n.add_gate_net("x2", {c, d}, TruthTable::and2());
  n.add_output(n.add_gate_net("y", {x1, x2}, TruthTable::or2()));
  return n;
}

TEST(Cuts, TrivialCutAlwaysPresent) {
  const Netlist n = two_level();
  const CutSet cs(n, CutParams{});
  const NetId y = n.find_net("y");
  bool found_trivial = false;
  for (const Cut& c : cs.cuts_of(y))
    if (c.is_trivial(y)) found_trivial = true;
  EXPECT_TRUE(found_trivial);
}

TEST(Cuts, FourInputCutCoversWholeCone) {
  const Netlist n = two_level();
  const CutSet cs(n, CutParams{4, 12});
  const NetId y = n.find_net("y");
  // Best depth must be 1: the whole cone fits one 4-LUT.
  EXPECT_EQ(cs.best_depth(y), 1);
  bool has_pi_cut = false;
  for (const Cut& c : cs.cuts_of(y))
    if (c.leaves.size() == 4) has_pi_cut = true;
  EXPECT_TRUE(has_pi_cut);
}

TEST(Cuts, K2ForcesTwoLevels) {
  const Netlist n = two_level();
  const CutSet cs(n, CutParams{2, 12});
  EXPECT_EQ(cs.best_depth(n.find_net("y")), 2);
}

TEST(Cuts, LeavesNeverExceedK) {
  const Netlist n = make_multiplier(4);
  const CutSet cs(n, CutParams{4, 10});
  for (NetId net = 0; net < n.num_nets(); ++net)
    for (const Cut& c : cs.cuts_of(net)) EXPECT_LE(c.leaves.size(), 4u);
}

TEST(Cuts, CutFunctionOfWholeCone) {
  const Netlist n = two_level();
  const NetId y = n.find_net("y");
  const std::vector<NetId> leaves = {n.find_net("a"), n.find_net("b"),
                                     n.find_net("c"), n.find_net("d")};
  const TruthTable tt = cut_function(n, y, leaves);
  for (std::uint32_t m = 0; m < 16; ++m) {
    const bool a = m & 1, b = m & 2, c = m & 4, d = m & 8;
    EXPECT_EQ(tt.eval(m), (a && b) || (c && d));
  }
}

TEST(Cuts, CutFunctionRejectsNonCover) {
  const Netlist n = two_level();
  // {a, b} does not cover y's cone (c, d paths escape).
  EXPECT_THROW(
      cut_function(n, n.find_net("y"), {n.find_net("a"), n.find_net("b")}),
      Error);
}

TEST(Cuts, RejectsBadK) {
  const Netlist n = two_level();
  EXPECT_THROW(CutSet(n, CutParams{1, 12}), Error);
  EXPECT_THROW(CutSet(n, CutParams{7, 12}), Error);
}

TEST(TechMap, SingleLutForSmallCone) {
  const MapResult r = tech_map(two_level(), {CutParams{4, 12}, MapMode::kDepth});
  EXPECT_EQ(r.num_luts, 1);
  EXPECT_EQ(r.depth, 1);
}

struct MapCase {
  int which;   // module selector
  MapMode mode;
};

class MapEquivalence : public ::testing::TestWithParam<MapCase> {};

TEST_P(MapEquivalence, MappedNetlistIsFunctionallyIdentical) {
  const auto [which, mode] = GetParam();
  const Netlist orig = [&] {
    switch (which) {
      case 0:
        return make_adder(4);
      case 1:
        return make_multiplier(3);
      case 2:
        return make_mux(5, 2);
      default:
        return make_multiplier(4);
    }
  }();
  const MapResult r = tech_map(orig, {CutParams{4, 10}, mode});
  EXPECT_NO_THROW(r.lut_netlist.validate());
  ASSERT_EQ(r.lut_netlist.inputs().size(), orig.inputs().size());
  ASSERT_EQ(r.lut_netlist.outputs().size(), orig.outputs().size());
  Rng rng(which * 7 + 1);
  const int bits = static_cast<int>(orig.inputs().size());
  for (int i = 0; i < 60; ++i) {
    const std::uint64_t v =
        rng.next_u64() & (bits == 64 ? ~0ull : (1ull << bits) - 1);
    EXPECT_EQ(eval_all(orig, v), eval_all(r.lut_netlist, v))
        << "module " << which << " inputs " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MapEquivalence,
    ::testing::Values(MapCase{0, MapMode::kDepth}, MapCase{0, MapMode::kArea},
                      MapCase{0, MapMode::kGlitchSa},
                      MapCase{1, MapMode::kDepth}, MapCase{1, MapMode::kArea},
                      MapCase{1, MapMode::kGlitchSa},
                      MapCase{2, MapMode::kDepth}, MapCase{2, MapMode::kGlitchSa},
                      MapCase{3, MapMode::kDepth}, MapCase{3, MapMode::kGlitchSa}));

TEST(TechMap, ReducesGateCount) {
  // Mapping 2-3 input gates into 4-LUTs must not increase node count, and
  // should shrink it substantially for arithmetic blocks.
  const Netlist add = make_adder(8);
  const MapResult r = tech_map(add, {CutParams{4, 10}, MapMode::kArea});
  EXPECT_LT(r.num_luts, add.num_gates());
}

TEST(TechMap, DepthModeIsNoDeeperThanAreaMode) {
  const Netlist m = make_multiplier(4);
  const MapResult depth = tech_map(m, {CutParams{4, 10}, MapMode::kDepth});
  const MapResult area = tech_map(m, {CutParams{4, 10}, MapMode::kArea});
  EXPECT_LE(depth.depth, area.depth);
}

TEST(TechMap, PreservesLatches) {
  Netlist n("seq");
  const NetId a = n.add_input("a");
  const NetId q = n.add_net("q");
  const NetId d = n.add_gate_net("d", {a, q}, TruthTable::xor2());
  n.add_latch(q, d);
  n.add_output(q);
  const MapResult r = tech_map(n);
  EXPECT_EQ(r.lut_netlist.num_latches(), 1);
  EXPECT_NO_THROW(r.lut_netlist.validate());
}

TEST(TechMap, GlitchSaModeNoWorseSaThanDepthMode) {
  // On the glitch-prone multiplier, SA-driven cut selection should not
  // produce a higher estimated SA than pure depth mapping.
  const Netlist m = make_multiplier(4);
  const MapResult by_sa = tech_map(m, {CutParams{4, 10}, MapMode::kGlitchSa});
  const MapResult by_depth = tech_map(m, {CutParams{4, 10}, MapMode::kDepth});
  const double sa_sa = estimate_activity(by_sa.lut_netlist).total_sa;
  const double sa_depth = estimate_activity(by_depth.lut_netlist).total_sa;
  EXPECT_LE(sa_sa, sa_depth * 1.02);
}

TEST(TechMap, StatsMatchNetlist) {
  const MapResult r = tech_map(make_adder(6));
  EXPECT_EQ(r.num_luts, r.lut_netlist.num_gates());
  EXPECT_EQ(r.depth, r.lut_netlist.depth());
}

}  // namespace
}  // namespace hlp
