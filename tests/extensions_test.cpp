// Tests for the library extensions beyond the paper's core algorithm:
// force-directed scheduling, post-binding port refinement, and the Verilog
// backend.
#include <gtest/gtest.h>

#include "binding/datapath_stats.hpp"
#include "binding/register_binder.hpp"
#include "cdfg/benchmarks.hpp"
#include "common/error.hpp"
#include "core/hlpower.hpp"
#include "core/port_refine.hpp"
#include "lopass/lopass.hpp"
#include "rtl/verilog.hpp"
#include "sched/asap_alap.hpp"
#include "sched/force_directed.hpp"
#include "sched/list_scheduler.hpp"

namespace hlp {
namespace {

SaCache& shared_cache() {
  static SaCache cache(4);
  return cache;
}

class FdsRandom : public ::testing::TestWithParam<int> {};

TEST_P(FdsRandom, ProducesValidSchedules) {
  const Cdfg g = make_random_dfg(5, 3, 30, GetParam());
  const int latency = g.depth() + 3;
  const Schedule s = force_directed_schedule(g, latency);
  EXPECT_NO_THROW(s.validate(g));
  EXPECT_EQ(s.num_steps, latency);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FdsRandom, ::testing::Range(0, 15));

TEST(ForceDirected, RejectsLatencyBelowDepth) {
  const Cdfg g = make_random_dfg(4, 2, 12, 1);
  EXPECT_THROW(force_directed_schedule(g, g.depth() - 1), Error);
}

TEST(ForceDirected, SmoothsDensityVersusAsapExtremes) {
  // With slack, FDS should not exceed the density of the (greedy,
  // latency-oriented) ASAP schedule; usually it is strictly lower.
  int fds_wins = 0, trials = 0;
  for (int seed = 0; seed < 10; ++seed) {
    const Cdfg g = make_random_dfg(6, 4, 36, 200 + seed);
    const int latency = g.depth() + 4;
    const Schedule fds = force_directed_schedule(g, latency);
    const Schedule asap = asap_schedule(g);
    for (int k = 0; k < kNumOpKinds; ++k) {
      const OpKind kind = static_cast<OpKind>(k);
      if (g.num_ops_of_kind(kind) == 0) continue;
      ++trials;
      if (fds.max_density(g, kind) <= asap.max_density(g, kind)) ++fds_wins;
    }
  }
  EXPECT_GE(fds_wins * 10, trials * 8) << fds_wins << "/" << trials;
}

TEST(ForceDirected, DeterministicForSeedAndLatency) {
  const Cdfg g = make_random_dfg(5, 3, 25, 7);
  const Schedule a = force_directed_schedule(g, g.depth() + 2);
  const Schedule b = force_directed_schedule(g, g.depth() + 2);
  EXPECT_EQ(a.cstep_of_op, b.cstep_of_op);
}

TEST(PortRefine, NeverIncreasesCost) {
  for (int seed = 0; seed < 6; ++seed) {
    const Cdfg g = make_random_dfg(5, 3, 28, 50 + seed);
    const ResourceConstraint rc{2, 2};
    const Schedule s = list_schedule(g, rc);
    const RegisterBinding regs = bind_registers(g, s, seed);
    const FuBinding fus = bind_fus_lopass(g, s, regs, rc, LopassParams{4});
    const PortRefineResult r = refine_ports(g, regs, fus, shared_cache());
    EXPECT_LE(r.cost_after, r.cost_before + 1e-9) << "seed " << seed;
    EXPECT_NO_THROW(r.fus.validate(g, s, rc));
    // FU assignment unchanged; only orientations may differ.
    EXPECT_EQ(r.fus.fu_of_op, fus.fu_of_op);
  }
}

TEST(PortRefine, FixedPointIsStable) {
  const Cdfg g = make_random_dfg(5, 3, 26, 77);
  const ResourceConstraint rc{2, 2};
  const Schedule s = list_schedule(g, rc);
  const RegisterBinding regs = bind_registers(g, s);
  const FuBinding fus = bind_fus_lopass(g, s, regs, rc, LopassParams{4});
  const PortRefineResult r1 = refine_ports(g, regs, fus, shared_cache());
  const PortRefineResult r2 = refine_ports(g, regs, r1.fus, shared_cache());
  EXPECT_EQ(r2.flips_applied, 0);
  EXPECT_NEAR(r2.cost_after, r1.cost_after, 1e-12);
}

TEST(PortRefine, PreservesDatapathSemantics) {
  // Flips permute commutative operands; mux stats may change but the set of
  // registers read by each FU (over both ports) is preserved.
  const Cdfg g = make_random_dfg(4, 2, 16, 9);
  const ResourceConstraint rc{2, 2};
  const Schedule s = list_schedule(g, rc);
  const RegisterBinding regs = bind_registers(g, s);
  const FuBinding fus = bind_fus_lopass(g, s, regs, rc, LopassParams{4});
  const PortRefineResult r = refine_ports(g, regs, fus, shared_cache());
  for (int op = 0; op < g.num_ops(); ++op) {
    std::pair<int, int> before{regs.port_a_reg(g, op), regs.port_b_reg(g, op)};
    std::pair<int, int> after{r.fus.port_a_reg(g, regs, op),
                              r.fus.port_b_reg(g, regs, op)};
    EXPECT_TRUE(after == before ||
                (after.first == before.second && after.second == before.first));
  }
}

TEST(Verilog, ContainsExpectedStructure) {
  const Cdfg g = make_random_dfg(3, 2, 10, 5);
  const ResourceConstraint rc{2, 1};
  const Schedule s = list_schedule(g, rc);
  const Binding bind = bind_lopass(g, s, rc, LopassParams{4});
  const std::string v = emit_verilog(g, s, bind, VerilogParams{8});
  EXPECT_NE(v.find("module random"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(v.find("case (cstep)"), std::string::npos);
  for (int r = 0; r < bind.regs.num_registers; ++r)
    EXPECT_NE(v.find("r" + std::to_string(r)), std::string::npos);
}

TEST(Verilog, MirrorsVhdlRegisterWrites) {
  // Both backends must write each value's register at the same step count.
  const Cdfg g = make_random_dfg(3, 2, 12, 6);
  const ResourceConstraint rc{2, 2};
  const Schedule s = list_schedule(g, rc);
  const Binding bind = bind_lopass(g, s, rc, LopassParams{4});
  const std::string v = emit_verilog(g, s, bind);
  const std::string counts = "cstep == ";
  std::size_t n = 0;
  for (std::size_t pos = v.find(counts); pos != std::string::npos;
       pos = v.find(counts, pos + 1))
    ++n;
  // One write per value plus the wrap check and done.
  EXPECT_EQ(n, static_cast<std::size_t>(num_values(g)) + 2);
}

}  // namespace
}  // namespace hlp
