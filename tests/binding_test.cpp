// Tests for lifetime analysis, register binding ([11]-style) and the
// datapath mux statistics.
#include <gtest/gtest.h>

#include "binding/binding.hpp"
#include "binding/datapath_stats.hpp"
#include "binding/lifetimes.hpp"
#include "binding/register_binder.hpp"
#include "cdfg/benchmarks.hpp"
#include "common/error.hpp"
#include "sched/list_scheduler.hpp"

namespace hlp {
namespace {

Cdfg tiny() {
  Cdfg g("tiny");
  const int a = g.add_input("a");
  const int b = g.add_input("b");
  const int c = g.add_input("c");
  const int s1 = g.add_op("s1", OpKind::kAdd, ValueRef::input(a), ValueRef::input(b));
  const int s2 = g.add_op("s2", OpKind::kAdd, ValueRef::input(a), ValueRef::input(c));
  const int m = g.add_op("m", OpKind::kMult, ValueRef::op(s1), ValueRef::op(s2));
  g.add_output("out", ValueRef::op(m));
  return g;
}

TEST(Lifetimes, BirthAndDeath) {
  const Cdfg g = tiny();
  const Schedule s = list_schedule(g, {1, 1});  // serialises the adds
  const auto lt = compute_lifetimes(g, s);
  // Input a is read by both adds; its death is the later add's step.
  const int last_add_step = std::max(s.cstep_of_op[0], s.cstep_of_op[1]);
  EXPECT_EQ(lt[0].birth, 0);
  EXPECT_EQ(lt[0].death, last_add_step);
  // s1's value: born the cycle after its op, read by the mult.
  EXPECT_EQ(lt[3].birth, s.cstep_of_op[0] + 1);
  EXPECT_EQ(lt[3].death, s.cstep_of_op[2]);
  // The output value lives to the schedule end.
  EXPECT_EQ(lt[5].death, s.num_steps);
}

TEST(Lifetimes, OverlapPredicate) {
  EXPECT_TRUE(overlaps({0, 3}, {3, 5}));
  EXPECT_TRUE(overlaps({2, 4}, {0, 9}));
  EXPECT_FALSE(overlaps({0, 2}, {3, 5}));
  EXPECT_FALSE(overlaps({4, 6}, {1, 3}));
}

TEST(Lifetimes, MaxLiveMatchesHandCount) {
  const Cdfg g = tiny();
  const Schedule s = list_schedule(g, {2, 1});
  const auto lt = compute_lifetimes(g, s);
  // At step 0: a, b, c live (3). At step 1: s1, s2 live (inputs dead). The
  // exact count depends on scheduling; just verify against a brute force.
  int max_t = 0;
  for (const auto& l : lt) max_t = std::max(max_t, l.death);
  int brute = 0;
  for (int t = 0; t <= max_t; ++t) {
    int live = 0;
    for (const auto& l : lt) live += (l.birth <= t && t <= l.death);
    brute = std::max(brute, live);
  }
  EXPECT_EQ(max_live_values(lt), brute);
}

TEST(RegisterBinder, ValidOnTiny) {
  const Cdfg g = tiny();
  const Schedule s = list_schedule(g, {2, 1});
  const RegisterBinding rb = bind_registers(g, s);
  EXPECT_NO_THROW(rb.validate(g, s));
  EXPECT_EQ(rb.num_registers, max_live_values(compute_lifetimes(g, s)));
}

TEST(RegisterBinder, PortAssignmentDeterministicInSeed) {
  const Cdfg g = tiny();
  const Schedule s = list_schedule(g, {2, 1});
  const RegisterBinding a = bind_registers(g, s, 7);
  const RegisterBinding b = bind_registers(g, s, 7);
  EXPECT_EQ(a.reg_of_value, b.reg_of_value);
  EXPECT_EQ(a.lhs_on_port_a, b.lhs_on_port_a);
}

TEST(RegisterBinder, PortRegLookup) {
  const Cdfg g = tiny();
  const Schedule s = list_schedule(g, {2, 1});
  const RegisterBinding rb = bind_registers(g, s);
  for (int op = 0; op < g.num_ops(); ++op) {
    const int ra = rb.port_a_reg(g, op);
    const int rbg = rb.port_b_reg(g, op);
    EXPECT_GE(ra, 0);
    EXPECT_LT(ra, rb.num_registers);
    EXPECT_GE(rbg, 0);
    EXPECT_LT(rbg, rb.num_registers);
    // Ports cover exactly the two operand registers.
    const int lhs_reg = rb.reg_of_value[value_id(g, g.op(op).lhs)];
    const int rhs_reg = rb.reg_of_value[value_id(g, g.op(op).rhs)];
    EXPECT_TRUE((ra == lhs_reg && rbg == rhs_reg) ||
                (ra == rhs_reg && rbg == lhs_reg));
  }
}

class RegisterBinderRandom : public ::testing::TestWithParam<int> {};

TEST_P(RegisterBinderRandom, AlwaysValidAndMinimal) {
  const Cdfg g = make_random_dfg(5, 3, 35, GetParam());
  const Schedule s = list_schedule(g, {3, 2});
  const RegisterBinding rb = bind_registers(g, s, GetParam());
  EXPECT_NO_THROW(rb.validate(g, s));
  // Allocation equals the lifetime lower bound — never more.
  EXPECT_EQ(rb.num_registers, max_live_values(compute_lifetimes(g, s)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegisterBinderRandom, ::testing::Range(0, 25));

TEST(RegisterBindingValidate, CatchesOverlap) {
  const Cdfg g = tiny();
  const Schedule s = list_schedule(g, {2, 1});
  RegisterBinding rb = bind_registers(g, s);
  // Force inputs a and b (both live at step 0) into one register.
  rb.reg_of_value[1] = rb.reg_of_value[0];
  EXPECT_THROW(rb.validate(g, s), Error);
}

TEST(FuBindingValidate, CatchesKindMismatchAndConflict) {
  const Cdfg g = tiny();
  const Schedule s = list_schedule(g, {2, 1});
  FuBinding fb;
  fb.kind_of_fu = {OpKind::kAdd, OpKind::kMult};
  fb.fu_of_op = {0, 0, 1};
  // Both adds in the same step cannot share FU 0 when scheduled together.
  if (s.cstep_of_op[0] == s.cstep_of_op[1]) {
    EXPECT_THROW(fb.validate(g, s, {2, 1}), Error);
  }
  // Mult op on the adder FU:
  FuBinding bad;
  bad.kind_of_fu = {OpKind::kAdd, OpKind::kAdd, OpKind::kAdd};
  bad.fu_of_op = {0, 1, 2};
  EXPECT_THROW(bad.validate(g, s, {3, 1}), Error);
}

TEST(FuPortSources, DistinctAndSorted) {
  const Cdfg g = tiny();
  const Schedule s = list_schedule(g, {1, 1});
  const RegisterBinding rb = bind_registers(g, s);
  FuBinding fb;  // one adder, one multiplier
  fb.kind_of_fu = {OpKind::kAdd, OpKind::kMult};
  fb.fu_of_op = {0, 0, 1};
  const FuPortSources ps = fu_port_sources(g, rb, fb);
  for (const auto& v : {ps.port_a[0], ps.port_b[0], ps.port_a[1], ps.port_b[1]}) {
    EXPECT_FALSE(v.empty());
    EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  }
  // The adder executes two ops: each port sees at most 2 sources.
  EXPECT_LE(ps.port_a[0].size(), 2u);
}

TEST(DatapathStats, HandComputedCase) {
  const Cdfg g = tiny();
  const Schedule s = list_schedule(g, {1, 1});
  const RegisterBinding rb = bind_registers(g, s);
  FuBinding fb;
  fb.kind_of_fu = {OpKind::kAdd, OpKind::kMult};
  fb.fu_of_op = {0, 0, 1};
  const DatapathStats st = compute_datapath_stats(g, rb, fb);
  EXPECT_EQ(st.num_fus, 2);
  EXPECT_EQ(st.mux_size_a.size(), 2u);
  const FuPortSources ps = fu_port_sources(g, rb, fb);
  EXPECT_EQ(st.mux_size_a[0], static_cast<int>(ps.port_a[0].size()));
  EXPECT_EQ(st.muxdiff[0], std::abs(st.mux_size_a[0] - st.mux_size_b[0]));
  // The multiplier runs one op: both ports single-source, no mux length.
  EXPECT_EQ(st.mux_size_a[1], 1);
  EXPECT_EQ(st.mux_size_b[1], 1);
  // Mean/variance recompute.
  const double mean = (st.muxdiff[0] + st.muxdiff[1]) / 2.0;
  EXPECT_NEAR(st.muxdiff_mean, mean, 1e-12);
}

TEST(DatapathStats, MuxLengthExcludesDirectConnections) {
  const Cdfg g = tiny();
  const Schedule s = list_schedule(g, {2, 1});
  const RegisterBinding rb = bind_registers(g, s);
  FuBinding fb;  // every op its own FU: all ports single-source
  fb.kind_of_fu = {OpKind::kAdd, OpKind::kAdd, OpKind::kMult};
  fb.fu_of_op = {0, 1, 2};
  const DatapathStats st = compute_datapath_stats(g, rb, fb);
  EXPECT_EQ(st.mux_length, 0);
  EXPECT_EQ(st.largest_mux, 1);
  EXPECT_DOUBLE_EQ(st.muxdiff_mean, 0.0);
}

}  // namespace
}  // namespace hlp
