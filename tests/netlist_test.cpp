// Tests for truth tables and the core netlist structure.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "netlist/netlist.hpp"
#include "netlist/timing.hpp"
#include "netlist/truth_table.hpp"

namespace hlp {
namespace {

TEST(TruthTable, BasicGates) {
  EXPECT_EQ(TruthTable::and2().to_string(), "0001");
  EXPECT_EQ(TruthTable::or2().to_string(), "0111");
  EXPECT_EQ(TruthTable::xor2().to_string(), "0110");
  EXPECT_EQ(TruthTable::not1().to_string(), "10");
  EXPECT_EQ(TruthTable::buf().to_string(), "01");
}

TEST(TruthTable, EvalMatchesBits) {
  const TruthTable x = TruthTable::xor2();
  EXPECT_FALSE(x.eval(0b00));
  EXPECT_TRUE(x.eval(0b01));
  EXPECT_TRUE(x.eval(0b10));
  EXPECT_FALSE(x.eval(0b11));
}

TEST(TruthTable, Xor3Maj3) {
  const TruthTable s = TruthTable::xor3();
  const TruthTable c = TruthTable::maj3();
  for (std::uint32_t m = 0; m < 8; ++m) {
    const int pop = __builtin_popcount(m);
    EXPECT_EQ(s.eval(m), pop % 2 == 1);
    EXPECT_EQ(c.eval(m), pop >= 2);
  }
}

TEST(TruthTable, Mux2Semantics) {
  const TruthTable m = TruthTable::mux2();
  for (std::uint32_t v = 0; v < 8; ++v) {
    const bool a = v & 1, b = v & 2, s = v & 4;
    EXPECT_EQ(m.eval(v), s ? b : a);
  }
}

TEST(TruthTable, MasksExcessBits) {
  const TruthTable t(1, 0xFFull);
  EXPECT_EQ(t.bits(), 0b11ull);
}

TEST(TruthTable, RejectsTooManyInputs) {
  EXPECT_THROW(TruthTable(7, 0), Error);
}

TEST(TruthTable, DependsOn) {
  const TruthTable m = TruthTable::mux2();
  EXPECT_TRUE(m.depends_on(0));
  EXPECT_TRUE(m.depends_on(1));
  EXPECT_TRUE(m.depends_on(2));
  // f = a (ignores b): bits for (a,b): rows 01 and 11 are 1.
  const TruthTable just_a(2, 0b1010);
  EXPECT_TRUE(just_a.depends_on(0));
  EXPECT_FALSE(just_a.depends_on(1));
}

TEST(TruthTable, CompressDropsUnused) {
  const TruthTable just_b(2, 0b1100);  // f = b
  std::uint32_t kept = 0;
  const TruthTable c = just_b.compress(&kept);
  EXPECT_EQ(c.num_inputs(), 1);
  EXPECT_EQ(kept, 0b10u);
  EXPECT_EQ(c.to_string(), "01");
}

TEST(TruthTable, Constants) {
  EXPECT_EQ(TruthTable::const0().num_inputs(), 0);
  EXPECT_FALSE(TruthTable::const0().eval(0));
  EXPECT_TRUE(TruthTable::const1().eval(0));
}

TEST(Netlist, BuildAndQuery) {
  Netlist n("t");
  const NetId a = n.add_input("a");
  const NetId b = n.add_input("b");
  const NetId y = n.add_gate_net("y", {a, b}, TruthTable::and2());
  n.add_output(y);
  n.validate();
  EXPECT_EQ(n.num_nets(), 3);
  EXPECT_EQ(n.num_gates(), 1);
  EXPECT_TRUE(n.is_input(a));
  EXPECT_FALSE(n.is_input(y));
  EXPECT_EQ(n.driver_gate(y), 0);
  EXPECT_EQ(n.driver_gate(a), -1);
  EXPECT_EQ(n.find_net("b"), b);
  EXPECT_EQ(n.find_net("zz"), kNoNet);
}

TEST(Netlist, RejectsDoubleDriver) {
  Netlist n("t");
  const NetId a = n.add_input("a");
  const NetId y = n.add_gate_net("y", {a}, TruthTable::buf());
  EXPECT_THROW(n.add_gate(y, {a}, TruthTable::not1()), Error);
  EXPECT_THROW(n.add_gate(a, {y}, TruthTable::buf()), Error);
}

TEST(Netlist, RejectsDuplicateName) {
  Netlist n("t");
  n.add_input("a");
  EXPECT_THROW(n.add_net("a"), Error);
}

TEST(Netlist, RejectsArityMismatch) {
  Netlist n("t");
  const NetId a = n.add_input("a");
  const NetId y = n.add_net("y");
  EXPECT_THROW(n.add_gate(y, {a}, TruthTable::and2()), Error);
}

TEST(Netlist, UndrivenNetFailsValidate) {
  Netlist n("t");
  const NetId a = n.add_input("a");
  n.add_net("floating");
  const NetId y = n.add_gate_net("y", {a}, TruthTable::buf());
  n.add_output(y);
  EXPECT_THROW(n.validate(), Error);
}

TEST(Netlist, TopoOrderRespectsDependencies) {
  Netlist n("t");
  const NetId a = n.add_input("a");
  const NetId x = n.add_gate_net("x", {a}, TruthTable::not1());
  const NetId y = n.add_gate_net("y", {x}, TruthTable::not1());
  n.add_output(y);
  const auto topo = n.topo_gates();
  ASSERT_EQ(topo.size(), 2u);
  EXPECT_LT(topo[0], topo[1]);
}

TEST(Netlist, LatchBreaksCycle) {
  // q = latch(d), d = NOT q: a classic toggle flop; combinationally acyclic.
  Netlist n("t");
  const NetId q = n.add_net("q");
  const NetId d = n.add_gate_net("d", {q}, TruthTable::not1());
  n.add_latch(q, d);
  n.add_output(q);
  EXPECT_NO_THROW(n.validate());
  EXPECT_TRUE(n.is_latch_output(q));
  EXPECT_TRUE(n.is_comb_source(q));
}

TEST(Netlist, DepthAndLevels) {
  Netlist n("t");
  const NetId a = n.add_input("a");
  const NetId b = n.add_input("b");
  const NetId x = n.add_gate_net("x", {a, b}, TruthTable::and2());
  const NetId y = n.add_gate_net("y", {x, b}, TruthTable::or2());
  n.add_output(y);
  EXPECT_EQ(n.depth(), 2);
  const auto lv = n.net_levels();
  EXPECT_EQ(lv[a], 0);
  EXPECT_EQ(lv[x], 1);
  EXPECT_EQ(lv[y], 2);
}

TEST(Netlist, FanoutCounts) {
  Netlist n("t");
  const NetId a = n.add_input("a");
  const NetId x = n.add_gate_net("x", {a, a}, TruthTable::and2());
  n.add_output(x);
  n.add_output(x);
  const auto fo = n.fanout_counts();
  EXPECT_EQ(fo[a], 2);  // both gate pins
  EXPECT_EQ(fo[x], 2);  // both PO references
}

TEST(Netlist, InstantiateConnectsPortsInOrder) {
  Netlist sub("inv2");
  const NetId i0 = sub.add_input("i0");
  const NetId i1 = sub.add_input("i1");
  sub.add_output(sub.add_gate_net("o0", {i0}, TruthTable::not1()));
  sub.add_output(sub.add_gate_net("o1", {i1}, TruthTable::buf()));

  Netlist top("top");
  const NetId a = top.add_input("a");
  const NetId b = top.add_input("b");
  const auto outs = top.instantiate(sub, {a, b}, "u0_");
  ASSERT_EQ(outs.size(), 2u);
  for (NetId o : outs) top.add_output(o);
  EXPECT_NO_THROW(top.validate());
  EXPECT_EQ(top.num_gates(), 2);
  EXPECT_NE(top.find_net("u0_o0"), kNoNet);
}

TEST(Netlist, InstantiateWrongArityThrows) {
  Netlist sub("s");
  sub.add_input("i");
  sub.add_output(sub.add_gate_net("o", {0}, TruthTable::buf()));
  Netlist top("t");
  EXPECT_THROW(top.instantiate(sub, {}, "x_"), Error);
}

TEST(Timing, PeriodScalesWithDepth) {
  Netlist shallow("s");
  const NetId a = shallow.add_input("a");
  shallow.add_output(shallow.add_gate_net("y", {a}, TruthTable::not1()));
  Netlist deep("d");
  NetId cur = deep.add_input("a");
  for (int i = 0; i < 5; ++i)
    cur = deep.add_gate_net("n" + std::to_string(i), {cur}, TruthTable::not1());
  deep.add_output(cur);
  EXPECT_EQ(logic_depth(shallow), 1);
  EXPECT_EQ(logic_depth(deep), 5);
  EXPECT_LT(clock_period_ns(shallow), clock_period_ns(deep));
  const TimingModel tm;
  EXPECT_NEAR(clock_period_ns(deep),
              5 * (tm.lut_delay_ns + tm.net_delay_ns) + tm.reg_overhead_ns,
              1e-12);
}

}  // namespace
}  // namespace hlp
