// Tests for the bit-parallel batched simulation engine: randomized
// netlists x seeds asserting simulate_frames_batched / simulate_batch
// reproduce the scalar simulate_frames exactly — per-net toggles, total and
// functional transition counts, and the glitch split — including
// non-multiple-of-64 frame counts and mixed-length run batches, and the
// same equivalence for every SIMD word width the build/CPU supports
// (u64/x2/x4/x8 portable limbs plus the AVX2/AVX-512 backends): one
// randomized grid, every backend, bit for bit.
#include <gtest/gtest.h>

#include <bit>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "mapper/techmap.hpp"
#include "netlist/modules.hpp"
#include "netlist/timing.hpp"
#include "sim/bit_sim.hpp"
#include "sim/levelize.hpp"
#include "sim/schedule_sim.hpp"
#include "sim/vectors.hpp"

namespace hlp {
namespace {

// A random LUT DAG with registers: `num_inputs` PIs, `num_gates` gates of
// random fanin 1..4 and random truth tables over earlier nets, and
// `num_latches` register bits fed from random nets (so the batched
// latch-state recurrence is exercised).
Netlist random_netlist(std::uint64_t seed, int num_inputs = 5,
                       int num_gates = 30, int num_latches = 4) {
  Rng rng(seed);
  Netlist n("rand" + std::to_string(seed));
  std::vector<NetId> pool;
  for (int i = 0; i < num_inputs; ++i)
    pool.push_back(n.add_input("i" + std::to_string(i)));
  // Latch Qs are combinational sources: create them up front so gates can
  // read registered state; D pins are connected at the end.
  std::vector<NetId> qs;
  for (int i = 0; i < num_latches; ++i) {
    qs.push_back(n.add_net("q" + std::to_string(i)));
    pool.push_back(qs.back());
  }
  for (int i = 0; i < num_gates; ++i) {
    const int k = rng.range(1, 4);
    std::vector<NetId> ins(k);
    for (auto& in : ins) in = pool[rng.below(static_cast<int>(pool.size()))];
    const std::uint64_t bits = rng.next_u64();
    const NetId out = n.add_gate_net("g" + std::to_string(i), ins,
                                     TruthTable(k, bits));
    pool.push_back(out);
  }
  for (int i = 0; i < num_latches; ++i) {
    // D from any net except the Q itself (self-loops through a latch are
    // legal but a direct q->q hold never toggles; keep it interesting).
    NetId d = qs[i];
    while (d == qs[i]) d = pool[rng.below(static_cast<int>(pool.size()))];
    n.add_latch(qs[i], d);
  }
  n.add_output(pool.back());
  n.validate();
  return n;
}

void expect_identical(const CycleSimStats& scalar, const CycleSimStats& batched,
                      const std::string& what) {
  EXPECT_EQ(scalar.num_cycles, batched.num_cycles) << what;
  EXPECT_EQ(scalar.toggles, batched.toggles) << what;
  EXPECT_EQ(scalar.total_transitions, batched.total_transitions) << what;
  EXPECT_EQ(scalar.functional_transitions, batched.functional_transitions)
      << what;
  EXPECT_EQ(scalar.glitch_transitions(), batched.glitch_transitions()) << what;
}

TEST(BitSim, MatchesScalarOnRandomNetlists) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const Netlist n = random_netlist(seed);
    for (int num_frames : {1, 3, 63, 64, 65, 130}) {
      const auto frames = random_vectors(
          num_frames, static_cast<int>(n.inputs().size()), seed * 1000 + 7);
      expect_identical(
          simulate_frames(n, frames), simulate_frames_batched(n, frames),
          "seed " + std::to_string(seed) + " T=" + std::to_string(num_frames));
    }
  }
}

TEST(BitSim, MatchesScalarOnPureCombinational) {
  // No latches: the batched path's phase 1 degenerates to frame packing.
  const Netlist n = random_netlist(11, 6, 40, /*num_latches=*/0);
  const auto frames =
      random_vectors(100, static_cast<int>(n.inputs().size()), 13);
  expect_identical(simulate_frames(n, frames), simulate_frames_batched(n, frames),
                   "combinational");
  EXPECT_GT(simulate_frames_batched(n, frames).total_transitions, 0u);
}

TEST(BitSim, MatchesScalarOnMappedMultiplier) {
  // A tech-mapped module netlist: the exact shape the flow pipeline feeds
  // the simulate stage (K-LUTs, deep glitchy logic).
  const MapResult mapped = tech_map(make_multiplier(4));
  const Netlist& n = mapped.lut_netlist;
  const auto frames =
      random_vectors(200, static_cast<int>(n.inputs().size()), 17);
  const CycleSimStats scalar = simulate_frames(n, frames);
  expect_identical(scalar, simulate_frames_batched(n, frames), "mapped mult");
  EXPECT_GT(scalar.glitch_transitions(), 0u);  // the comparison is non-trivial
}

TEST(BitSim, MatchesScalarOnWideGates) {
  // k=5/6 gates exceed the packed-record operand slots, so they must stay
  // on the CSR Shannon fallback — including wide parity/AND/OR shapes
  // that LOOK like the specialised k<=4 patterns (regression: classifying
  // them used to read past the packed input array).
  Netlist n("wide");
  std::vector<NetId> pis;
  for (int i = 0; i < 6; ++i)
    pis.push_back(n.add_input("i" + std::to_string(i)));
  std::uint64_t parity5 = 0, parity6 = 0;
  for (std::uint32_t m = 0; m < 64; ++m) {
    if (std::popcount(m & 31u) & 1) parity5 |= 1ull << (m & 31u);
    if (std::popcount(m) & 1) parity6 |= 1ull << m;
  }
  const std::vector<NetId> five(pis.begin(), pis.begin() + 5);
  const NetId x5 = n.add_gate_net("xor5", five, TruthTable(5, parity5));
  const NetId x6 = n.add_gate_net("xor6", pis, TruthTable(6, parity6));
  const NetId a5 = n.add_gate_net("and5", five,
                                  TruthTable(5, 1ull << 31));  // AND of 5
  const NetId o6 = n.add_gate_net("or6", pis, TruthTable(6, ~1ull));
  const NetId mix = n.add_gate_net("mix", {x5, x6, a5, o6},
                                   TruthTable(4, 0x96c3));
  n.add_output(mix);
  n.validate();
  const auto frames =
      random_vectors(130, static_cast<int>(n.inputs().size()), 41);
  expect_identical(simulate_frames(n, frames),
                   simulate_frames_batched(n, frames), "wide gates");
}

TEST(BitSim, EmptyFrameListAndArityChecks) {
  const Netlist n = random_netlist(21);
  const CycleSimStats st = simulate_frames_batched(n, {});
  EXPECT_EQ(st.num_cycles, 0u);
  EXPECT_EQ(st.total_transitions, 0u);
  EXPECT_EQ(st.toggles, std::vector<std::uint64_t>(n.num_nets(), 0));
  EXPECT_THROW(simulate_frames_batched(n, {{1, 0}}), Error);
}

TEST(BitSim, BatchOfRunsMatchesPerRunScalar) {
  const Netlist n = random_netlist(31);
  const int num_inputs = static_cast<int>(n.inputs().size());
  // Mixed lengths, including empty and word-boundary-straddling runs.
  const std::vector<int> lengths = {10, 0, 64, 65, 1, 33};
  std::vector<std::vector<std::vector<char>>> runs;
  for (std::size_t i = 0; i < lengths.size(); ++i)
    runs.push_back(random_vectors(lengths[i], num_inputs, 100 + i));
  const auto batched = simulate_batch(n, runs);
  ASSERT_EQ(batched.size(), runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i)
    expect_identical(simulate_frames(n, runs[i]), batched[i],
                     "run " + std::to_string(i));
}

TEST(BitSim, BatchOfManyRunsCrossesLaneGroups) {
  // > 64 runs forces a second lane group.
  const Netlist n = random_netlist(41, 4, 15, 2);
  const int num_inputs = static_cast<int>(n.inputs().size());
  std::vector<std::vector<std::vector<char>>> runs;
  for (int i = 0; i < 70; ++i)
    runs.push_back(random_vectors(5 + (i % 3), num_inputs, 500 + i));
  const auto batched = simulate_batch(n, runs);
  ASSERT_EQ(batched.size(), 70u);
  for (std::size_t i = 0; i < runs.size(); ++i)
    expect_identical(simulate_frames(n, runs[i]), batched[i],
                     "run " + std::to_string(i));
}

TEST(BitSim, SharedStimulusAcrossNetlists) {
  // Many "bindings" sharing one stimulus: netlists with equal PI counts.
  const Netlist a = random_netlist(51, 5, 25, 3);
  const Netlist b = random_netlist(52, 5, 35, 2);
  const auto frames = random_vectors(90, 5, 61);
  const auto batched = simulate_batch({&a, &b}, frames);
  ASSERT_EQ(batched.size(), 2u);
  expect_identical(simulate_frames(a, frames), batched[0], "netlist a");
  expect_identical(simulate_frames(b, frames), batched[1], "netlist b");
}

TEST(BitSim, EngineDispatchAgrees) {
  const Netlist n = random_netlist(71);
  const auto frames =
      random_vectors(77, static_cast<int>(n.inputs().size()), 3);
  expect_identical(simulate_frames(n, frames, SimEngine::kScalar),
                   simulate_frames(n, frames, SimEngine::kBatched), "dispatch");
}

// Every concrete SimdMode this build + CPU can execute (kU64 first).
std::vector<SimdMode> supported_modes() {
  std::vector<SimdMode> modes;
  for (const SimdMode mode : all_simd_modes())
    if (mode != SimdMode::kAuto && simd_mode_supported(mode))
      modes.push_back(mode);
  return modes;
}

TEST(BitSimWidths, BatchOfRunsMatchesScalarAtEveryWidth) {
  // Mixed-length runs, sized so every width sees a partially-filled word
  // (70 runs: 2 words at u64, 1 partial word at every wider backend) and
  // per-lane accounting is exercised well past lane 63.
  const Netlist n = random_netlist(91, 4, 20, 3);
  const int num_inputs = static_cast<int>(n.inputs().size());
  std::vector<std::vector<std::vector<char>>> runs;
  for (int i = 0; i < 70; ++i)
    runs.push_back(random_vectors(3 + (i % 5), num_inputs, 900 + i));
  std::vector<CycleSimStats> scalar;
  for (const auto& run : runs) scalar.push_back(simulate_frames(n, run));
  for (const SimdMode mode : supported_modes()) {
    const auto batched = simulate_batch(n, runs, mode);
    ASSERT_EQ(batched.size(), runs.size()) << simd_mode_name(mode);
    for (std::size_t i = 0; i < runs.size(); ++i)
      expect_identical(scalar[i], batched[i],
                       std::string(simd_mode_name(mode)) + " run " +
                           std::to_string(i));
  }
}

TEST(BitSimWidths, SmallBatchFillsOneWordAtEveryWidth) {
  // Fewer runs than any word has lanes: the engine must freeze the unused
  // lanes without perturbing the active ones.
  const Netlist n = random_netlist(92, 5, 25, 2);
  const int num_inputs = static_cast<int>(n.inputs().size());
  std::vector<std::vector<std::vector<char>>> runs;
  for (int i = 0; i < 3; ++i)
    runs.push_back(random_vectors(40 + i, num_inputs, 700 + i));
  for (const SimdMode mode : supported_modes()) {
    const auto batched = simulate_batch(n, runs, mode);
    for (std::size_t i = 0; i < runs.size(); ++i)
      expect_identical(simulate_frames(n, runs[i]), batched[i],
                       std::string(simd_mode_name(mode)) + " run " +
                           std::to_string(i));
  }
}

TEST(BitSimWidths, FramesBatchedMatchesScalarAtEveryWidth) {
  // Frame counts straddling every word boundary: 1 (deep partial word),
  // 130 (partial at >=256 lanes), 513 (partial at 512 lanes, multi-block
  // at every width) — the cross-block latch-state carry must line up at
  // every lane count.
  const Netlist n = random_netlist(93);
  const int num_inputs = static_cast<int>(n.inputs().size());
  for (const int num_frames : {1, 130, 513}) {
    const auto frames = random_vectors(num_frames, num_inputs, 811);
    const CycleSimStats scalar = simulate_frames(n, frames);
    for (const SimdMode mode : supported_modes())
      expect_identical(scalar, simulate_frames_batched(n, frames, mode),
                       std::string(simd_mode_name(mode)) + " T=" +
                           std::to_string(num_frames));
  }
}

TEST(BitSimWidths, AutoModeDispatchesAndAgrees) {
  // kAuto resolves to the widest supported backend; the dispatcher must
  // accept it directly and agree with the u64 reference.
  const Netlist n = random_netlist(94, 4, 18, 2);
  const int num_inputs = static_cast<int>(n.inputs().size());
  std::vector<std::vector<std::vector<char>>> runs;
  for (int i = 0; i < 10; ++i)
    runs.push_back(random_vectors(7, num_inputs, 300 + i));
  const auto reference = simulate_batch(n, runs, SimdMode::kU64);
  const auto automatic = simulate_batch(n, runs, SimdMode::kAuto);
  for (std::size_t i = 0; i < runs.size(); ++i)
    expect_identical(reference[i], automatic[i],
                     "auto run " + std::to_string(i));
}

// ---- settle strategies ---------------------------------------------------
// The levelized wavefront settle must be bit-identical to the event-driven
// one — same per-net toggles, functional/glitch split AND step counts — at
// every word width, on partial words, and across frame-block boundaries.

TEST(BitSimSettle, LevelizedMatchesScalarOnFramesAtEveryWidth) {
  const Netlist n = random_netlist(95);
  const int num_inputs = static_cast<int>(n.inputs().size());
  for (const int num_frames : {1, 130, 513}) {
    const auto frames = random_vectors(num_frames, num_inputs, 823);
    const CycleSimStats scalar = simulate_frames(n, frames);
    for (const SimdMode mode : supported_modes())
      for (const SettleMode settle : all_settle_modes())
        expect_identical(
            scalar, simulate_frames_batched(n, frames, mode, settle),
            std::string(simd_mode_name(mode)) + "/" +
                settle_mode_name(settle) + " T=" + std::to_string(num_frames));
  }
}

TEST(BitSimSettle, LevelizedMatchesScalarOnBatchRunsAtEveryWidth) {
  // 70 mixed-length runs: partial words at every width, per-lane freezing,
  // and the settle_batch touched/before accounting under both engines.
  const Netlist n = random_netlist(96, 4, 20, 3);
  const int num_inputs = static_cast<int>(n.inputs().size());
  std::vector<std::vector<std::vector<char>>> runs;
  for (int i = 0; i < 70; ++i)
    runs.push_back(random_vectors(3 + (i % 5), num_inputs, 1700 + i));
  std::vector<CycleSimStats> scalar;
  for (const auto& run : runs) scalar.push_back(simulate_frames(n, run));
  for (const SimdMode mode : supported_modes())
    for (const SettleMode settle :
         {SettleMode::kEvent, SettleMode::kLevel, SettleMode::kAuto}) {
      const auto batched = simulate_batch(n, runs, mode, settle);
      ASSERT_EQ(batched.size(), runs.size());
      for (std::size_t i = 0; i < runs.size(); ++i)
        expect_identical(scalar[i], batched[i],
                         std::string(simd_mode_name(mode)) + "/" +
                             settle_mode_name(settle) + " run " +
                             std::to_string(i));
    }
}

TEST(BitSimSettle, LevelizedMatchesEventOnGlitchyMappedNetlist) {
  // Deep tech-mapped logic with real glitches: if the wavefront sweep got
  // the unit-delay schedule wrong, the glitch split would diverge first.
  const MapResult mapped = tech_map(make_multiplier(4));
  const Netlist& n = mapped.lut_netlist;
  const auto frames =
      random_vectors(200, static_cast<int>(n.inputs().size()), 19);
  const CycleSimStats scalar = simulate_frames(n, frames);
  EXPECT_GT(scalar.glitch_transitions(), 0u);
  expect_identical(scalar,
                   simulate_frames_batched(n, frames, SimdMode::kU64,
                                           SettleMode::kLevel),
                   "level on mapped mult");
}

TEST(BitSimSettle, StepCountsMatchEventDriven) {
  // Direct engine check: the two strategies report the same settle step
  // count for the same staged stimulus, net by net and edge by edge.
  const Netlist n = random_netlist(97, 5, 40, 0);
  BitSimulator ev(n, SettleMode::kEvent);
  BitSimulator lv(n, SettleMode::kLevel);
  ev.settle_zero_delay();
  lv.settle_zero_delay();
  Rng rng(271828);
  const auto& pis = n.inputs();
  for (int edge = 0; edge < 32; ++edge) {
    for (const NetId pi : pis) {
      const std::uint64_t w = rng.next_u64();
      ev.stage_source(pi, w);
      lv.stage_source(pi, w);
    }
    std::vector<std::uint64_t> tev(n.num_nets(), 0), tlv(n.num_nets(), 0);
    EXPECT_EQ(ev.settle(&tev), lv.settle(&tlv)) << "edge " << edge;
    EXPECT_EQ(tev, tlv) << "edge " << edge;
    EXPECT_EQ(ev.state(), lv.state()) << "edge " << edge;
  }
  // Re-staging identical source words must be a zero-step no-op for both.
  for (const NetId pi : pis) {
    ev.stage_source(pi, ev.word(pi));
    lv.stage_source(pi, lv.word(pi));
  }
  EXPECT_EQ(ev.settle(nullptr), 0);
  EXPECT_EQ(lv.settle(nullptr), 0);
}

TEST(BitSimSettle, AutoProbeLocksInAConcreteStrategy) {
  const Netlist n = random_netlist(98, 5, 30, 2);
  BitSimulator sim(n, SettleMode::kAuto);
  sim.settle_zero_delay();
  EXPECT_EQ(sim.settle_mode(), SettleMode::kAuto);
  Rng rng(314159);
  const auto& pis = n.inputs();
  for (int edge = 0; edge < 16; ++edge) {
    for (const NetId pi : pis) sim.stage_source(pi, rng.next_u64());
    sim.settle(nullptr);
  }
  // After the calibration settles the winner is locked in.
  EXPECT_NE(sim.settle_mode(), SettleMode::kAuto);
}

// ---- levelized timing ----------------------------------------------------

TEST(LevelizedTiming, ArrivalSweepMatchesNetLevelDepth) {
  for (std::uint64_t seed : {1u, 7u, 13u}) {
    const Netlist n = random_netlist(seed, 5, 40, 3);
    EXPECT_EQ(levelized_logic_depth(n), logic_depth(n)) << "seed " << seed;
  }
  const MapResult mapped = tech_map(make_multiplier(4));
  EXPECT_EQ(levelized_logic_depth(mapped.lut_netlist),
            logic_depth(mapped.lut_netlist));
  // Bit-exact doubles, not just close: stage caches and distributed
  // same_outcome compare clock periods with operator==.
  const TimingModel model;
  EXPECT_EQ(levelized_clock_period_ns(mapped.lut_netlist, model),
            clock_period_ns(mapped.lut_netlist, model));
}

TEST(BitSimulator, WordEvalMatchesTruthTable) {
  // Direct engine check: an xor3 gate evaluated on word lanes agrees with
  // per-minterm truth-table evaluation.
  Netlist n("xor3");
  const NetId a = n.add_input("a"), b = n.add_input("b"), c = n.add_input("c");
  const NetId y = n.add_gate_net("y", {a, b, c}, TruthTable::xor3());
  n.add_output(y);
  BitSimulator sim(n);
  // Lane l carries minterm l & 7.
  std::uint64_t wa = 0, wb = 0, wc = 0;
  for (int l = 0; l < 64; ++l) {
    if (l & 1) wa |= 1ull << l;
    if (l & 2) wb |= 1ull << l;
    if (l & 4) wc |= 1ull << l;
  }
  sim.stage_source(a, wa);
  sim.stage_source(b, wb);
  sim.stage_source(c, wc);
  sim.settle_zero_delay();
  for (int l = 0; l < 64; ++l)
    EXPECT_EQ((sim.word(y) >> l) & 1,
              TruthTable::xor3().eval(l & 7) ? 1u : 0u)
        << "lane " << l;
}

}  // namespace
}  // namespace hlp
