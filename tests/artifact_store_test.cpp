// Fault-injection tier for the content-addressed artifact store
// (src/store/artifact_store.hpp), modeled on the sa_cache_test merge
// suite: exact round trips, then every corruption we can inflict —
// truncation, bit flips, wrong magic/footer, tampered mode tags, renamed
// files, stray temp litter — must be rejected WITHOUT poisoning the store
// (lenient find degrades to a miss; strict load/merge names the defect),
// plus overlap-must-agree publish/merge semantics and a SIGKILL-mid-
// publish crash-safety check (atomic write-then-rename: a dead writer
// leaves staging litter, never a half-written object).
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "store/artifact_store.hpp"

namespace hlp {
namespace {

namespace fs = std::filesystem;
using store::ArtifactKey;
using store::ArtifactStore;

std::string fresh_dir(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  fs::remove_all(path);
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << bytes;
  ASSERT_TRUE(os.good()) << path;
}

// A small but fully-featured netlist: inputs, gates, a latch, an output —
// every construct the serializer must round-trip.
Netlist small_netlist(const std::string& name) {
  Netlist n(name);
  const NetId a = n.add_input("a");
  const NetId b = n.add_input("b");
  const NetId x = n.add_net("x");
  n.add_gate(x, {a, b}, TruthTable::and2());
  const NetId q = n.add_net("q");
  n.add_latch(q, x);
  const NetId y = n.add_net("y");
  n.add_gate(y, {q, a}, TruthTable::xor2());
  n.add_output(y);
  return n;
}

ArtifactStore::Entry make_entry(double clock = 1.5) {
  ArtifactStore::Entry e;
  e.fus.fu_of_op = {0, 1, 0};
  e.fus.kind_of_fu = {OpKind::kAdd, OpKind::kMult};
  e.fus.flipped = {0, 1, 0};
  e.refined = true;
  e.refine.fus = e.fus;
  e.refine.flips_applied = 2;
  e.refine.passes = 3;
  e.refine.cost_before = 1.25;
  e.refine.cost_after = 0.625;
  e.mux_stats.largest_mux = 3;
  e.mux_stats.mux_length = 5;
  e.mux_stats.num_fus = 2;
  e.mux_stats.muxdiff_mean = 0.5;
  e.mux_stats.muxdiff_variance = 0.25;
  e.mux_stats.mux_size_a = {2, 3};
  e.mux_stats.mux_size_b = {1, 2};
  e.mux_stats.muxdiff = {1, 1};
  e.datapath.netlist = small_netlist("dp");
  e.datapath.width = 4;
  e.datapath.num_phases = 3;
  e.datapath.data_input_pos = {0, 1};
  // A name with spaces exercises the percent escaping.
  e.datapath.controls.push_back({"mux sel 0", {0, 1}, {0, 2, 1}});
  e.mapped.lut_netlist = small_netlist("mapped");
  e.mapped.num_luts = 2;
  e.mapped.depth = 2;
  e.clock_period_ns = clock;
  return e;
}

ArtifactKey make_key(const std::string& binding = "binder|0x1p-1|4",
                     const std::string& sa = "estimate") {
  return {"pr|list|2x2|4|42|gcafe", binding, sa, "auto", "auto"};
}

void expect_entry_eq(const ArtifactStore::Entry& a,
                     const ArtifactStore::Entry& b) {
  EXPECT_EQ(a.fus.fu_of_op, b.fus.fu_of_op);
  EXPECT_EQ(a.fus.kind_of_fu, b.fus.kind_of_fu);
  EXPECT_EQ(a.fus.flipped, b.fus.flipped);
  EXPECT_EQ(a.refined, b.refined);
  EXPECT_EQ(a.refine.fus.fu_of_op, b.refine.fus.fu_of_op);
  EXPECT_EQ(a.refine.flips_applied, b.refine.flips_applied);
  EXPECT_EQ(a.refine.passes, b.refine.passes);
  EXPECT_EQ(a.refine.cost_before, b.refine.cost_before);
  EXPECT_EQ(a.refine.cost_after, b.refine.cost_after);
  EXPECT_EQ(a.mux_stats.largest_mux, b.mux_stats.largest_mux);
  EXPECT_EQ(a.mux_stats.mux_length, b.mux_stats.mux_length);
  EXPECT_EQ(a.mux_stats.num_fus, b.mux_stats.num_fus);
  EXPECT_EQ(a.mux_stats.muxdiff_mean, b.mux_stats.muxdiff_mean);
  EXPECT_EQ(a.mux_stats.muxdiff_variance, b.mux_stats.muxdiff_variance);
  EXPECT_EQ(a.mux_stats.mux_size_a, b.mux_stats.mux_size_a);
  EXPECT_EQ(a.mux_stats.mux_size_b, b.mux_stats.mux_size_b);
  EXPECT_EQ(a.mux_stats.muxdiff, b.mux_stats.muxdiff);
  EXPECT_EQ(a.clock_period_ns, b.clock_period_ns);
  EXPECT_EQ(a.mapped.num_luts, b.mapped.num_luts);
  EXPECT_EQ(a.mapped.depth, b.mapped.depth);
  EXPECT_EQ(a.datapath.width, b.datapath.width);
  EXPECT_EQ(a.datapath.num_phases, b.datapath.num_phases);
  EXPECT_EQ(a.datapath.data_input_pos, b.datapath.data_input_pos);
  ASSERT_EQ(a.datapath.controls.size(), b.datapath.controls.size());
  for (std::size_t i = 0; i < a.datapath.controls.size(); ++i) {
    EXPECT_EQ(a.datapath.controls[i].name, b.datapath.controls[i].name);
    EXPECT_EQ(a.datapath.controls[i].input_positions,
              b.datapath.controls[i].input_positions);
    EXPECT_EQ(a.datapath.controls[i].select_by_phase,
              b.datapath.controls[i].select_by_phase);
  }
  for (const auto& nets :
       {std::pair{&a.datapath.netlist, &b.datapath.netlist},
        std::pair{&a.mapped.lut_netlist, &b.mapped.lut_netlist}}) {
    const Netlist& na = *nets.first;
    const Netlist& nb = *nets.second;
    EXPECT_EQ(na.name(), nb.name());
    ASSERT_EQ(na.num_nets(), nb.num_nets());
    for (NetId id = 0; id < na.num_nets(); ++id) {
      EXPECT_EQ(na.net_name(id), nb.net_name(id));
      EXPECT_EQ(na.is_input(id), nb.is_input(id));
    }
    ASSERT_EQ(na.num_gates(), nb.num_gates());
    for (int g = 0; g < na.num_gates(); ++g) {
      EXPECT_EQ(na.gates()[g].out, nb.gates()[g].out);
      EXPECT_EQ(na.gates()[g].ins, nb.gates()[g].ins);
      EXPECT_EQ(na.gates()[g].tt, nb.gates()[g].tt);
    }
    ASSERT_EQ(na.num_latches(), nb.num_latches());
    for (int l = 0; l < na.num_latches(); ++l) {
      EXPECT_EQ(na.latches()[l].q, nb.latches()[l].q);
      EXPECT_EQ(na.latches()[l].d, nb.latches()[l].d);
    }
    EXPECT_EQ(na.inputs(), nb.inputs());
    EXPECT_EQ(na.outputs(), nb.outputs());
  }
}

TEST(ArtifactStoreFormat, SerializeParseRoundTripIsExact) {
  const ArtifactKey key = make_key();
  const ArtifactStore::Entry entry = make_entry();
  const std::string bytes = ArtifactStore::serialize(key, entry);
  const store::LoadedArtifact art = ArtifactStore::parse(bytes, "test");
  EXPECT_EQ(art.key, key);
  expect_entry_eq(art.entry, entry);
  // Deterministic: re-serializing the parsed entry reproduces the bytes —
  // the property publish()'s overlap-must-agree comparison rests on.
  EXPECT_EQ(ArtifactStore::serialize(art.key, art.entry), bytes);
}

TEST(ArtifactStore, PublishFindRoundTripAcrossHandles) {
  const std::string root = fresh_dir("art_roundtrip");
  const ArtifactKey key = make_key();
  {
    ArtifactStore store(root);
    store.publish(key, make_entry());
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(store.publishes(), 1u);
  }
  ArtifactStore other(root);  // fresh handle, same store
  const auto entry = other.find(key);
  ASSERT_TRUE(entry);
  EXPECT_EQ(other.hits(), 1u);
  EXPECT_EQ(other.rejected(), 0u);
  expect_entry_eq(*entry, make_entry());
  // A different binding is simply absent: a miss, not a rejection.
  EXPECT_FALSE(other.find(make_key("other-binding")));
  EXPECT_EQ(other.misses(), 1u);
  EXPECT_EQ(other.rejected(), 0u);
}

TEST(ArtifactStore, PublishingTheSameEntryTwiceIsANoOp) {
  ArtifactStore store(fresh_dir("art_republish"));
  store.publish(make_key(), make_entry());
  store.publish(make_key(), make_entry());
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.publishes(), 1u);  // the second commit was elided
}

TEST(ArtifactStore, ConflictingPublishForTheSameKeyThrows) {
  ArtifactStore store(fresh_dir("art_conflict"));
  const ArtifactKey key = make_key();
  store.publish(key, make_entry(1.5));
  try {
    store.publish(key, make_entry(2.5));  // same key, different bytes
    FAIL() << "conflicting publish did not throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("conflict"), std::string::npos)
        << e.what();
  }
  // The original entry survives untouched.
  const auto entry = store.find(key);
  ASSERT_TRUE(entry);
  EXPECT_EQ(entry->clock_period_ns, 1.5);
}

// --- fault injection -----------------------------------------------------

class ArtifactStoreFaults : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fresh_dir("art_faults");
    store_ = std::make_unique<ArtifactStore>(root_);
    store_->publish(key_, make_entry());
    path_ = store_->object_path(key_);
    blob_ = read_file(path_);
  }

  // The store must reject the bytes at path_ without poisoning itself: a
  // lenient find degrades to null + a rejection count, a strict load
  // throws naming the defect, and a republish repairs the entry.
  void expect_rejected_then_repaired(const std::string& defect) {
    EXPECT_FALSE(store_->find(key_)) << defect;
    EXPECT_EQ(store_->rejected(), 1u) << defect;
    try {
      store_->load_strict(key_);
      FAIL() << "strict load of a " << defect << " artifact did not throw";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("artifact"), std::string::npos)
          << e.what();
    }
    // Publishing over the corrupt object repairs it byte-exactly.
    store_->publish(key_, make_entry());
    EXPECT_EQ(read_file(path_), blob_) << defect;
    EXPECT_TRUE(store_->find(key_)) << defect;
  }

  std::string root_, path_, blob_;
  ArtifactKey key_ = make_key();
  std::unique_ptr<ArtifactStore> store_;
};

TEST_F(ArtifactStoreFaults, TruncatedEntriesAreRejected) {
  // Cut at several depths: inside the header, the payload and the footer
  // (dropping only the final newline still kills the footer line).
  for (const std::size_t keep :
       {std::size_t{5}, blob_.size() / 4, blob_.size() / 2,
        blob_.size() - 2}) {
    write_file(path_, blob_.substr(0, keep));
    EXPECT_FALSE(store_->find(key_)) << "kept " << keep;
  }
  EXPECT_EQ(store_->rejected(), 4u);
  write_file(path_, blob_.substr(0, blob_.size() / 2));
  store_->publish(key_, make_entry());
  EXPECT_EQ(read_file(path_), blob_);
}

TEST_F(ArtifactStoreFaults, BitFlippedPayloadFailsTheChecksum) {
  std::string bytes = blob_;
  // Flip one bit of a digit in the middle of the payload.
  const std::size_t pos = bytes.size() / 2;
  bytes[pos] ^= 0x01;
  write_file(path_, bytes);
  expect_rejected_then_repaired("bit-flipped");
}

TEST_F(ArtifactStoreFaults, WrongMagicIsRejected) {
  std::string bytes = blob_;
  bytes[0] = 'X';
  write_file(path_, bytes);
  expect_rejected_then_repaired("wrong-magic");
}

TEST_F(ArtifactStoreFaults, TamperedFooterCountIsRejected) {
  // The footer is "end hlp-artifact <count>\n": bump the count.
  std::string bytes = blob_;
  const std::size_t end = bytes.rfind(" ");
  bytes.replace(end + 1, bytes.size() - end - 2, "9999");
  write_file(path_, bytes);
  expect_rejected_then_repaired("bad-footer");
}

TEST_F(ArtifactStoreFaults, TamperedModeTagIsRejected) {
  // Re-key the same entry with a different SA tag and plant those bytes at
  // the original address: structurally valid, checksum fine — but the
  // recorded key no longer matches the request, so the hit must refuse.
  ArtifactKey tampered = key_;
  tampered.sa = "exact";
  write_file(path_, ArtifactStore::serialize(tampered, make_entry()));
  EXPECT_FALSE(store_->find(key_));
  EXPECT_EQ(store_->rejected(), 1u);
  try {
    store_->load_strict(key_);
    FAIL() << "mode-tag mismatch did not throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("sa mode tag"), std::string::npos)
        << e.what();
  }
  store_->publish(key_, make_entry());
  EXPECT_EQ(read_file(path_), blob_);
}

TEST_F(ArtifactStoreFaults, StrayTempFilesNeverBecomeEntries) {
  // A crashed writer's litter: partially-renamed / half-written temp files
  // in objects/ and staging/. None of it may count as an entry or break a
  // probe, and merge_from must skip it (only *.art files are entries).
  write_file(root_ + "/objects/0123456789abcdef.art.tmp", "half-written");
  write_file(root_ + "/objects/litter.tmp", blob_.substr(0, 40));
  write_file(root_ + "/staging/stale.tmp", "staged-but-never-renamed");
  EXPECT_EQ(store_->size(), 1u);
  ASSERT_TRUE(store_->find(key_));
  EXPECT_EQ(store_->rejected(), 0u);

  ArtifactStore other(fresh_dir("art_faults_merge"));
  EXPECT_EQ(other.merge_from(root_), 1u);
  EXPECT_EQ(other.size(), 1u);
}

// --- merge_from ----------------------------------------------------------

TEST(ArtifactStoreMerge, InsertsNewEntriesAndAgreesOnOverlap) {
  const std::string a_root = fresh_dir("art_merge_a");
  const std::string b_root = fresh_dir("art_merge_b");
  ArtifactStore a(a_root);
  ArtifactStore b(b_root);
  a.publish(make_key("shared"), make_entry());
  b.publish(make_key("shared"), make_entry());  // overlap, same bytes
  b.publish(make_key("only-b"), make_entry(2.5));
  EXPECT_EQ(a.merge_from(b_root), 1u);  // only-b inserted, shared skipped
  EXPECT_EQ(a.size(), 2u);
  const auto merged = a.find(make_key("only-b"));
  ASSERT_TRUE(merged);
  EXPECT_EQ(merged->clock_period_ns, 2.5);
  // Idempotent: everything now overlaps and agrees.
  EXPECT_EQ(a.merge_from(b_root), 0u);
}

TEST(ArtifactStoreMerge, OverlapConflictRejectsTheWholeMerge) {
  const std::string a_root = fresh_dir("art_mergec_a");
  const std::string b_root = fresh_dir("art_mergec_b");
  ArtifactStore a(a_root);
  ArtifactStore b(b_root);
  a.publish(make_key("shared"), make_entry(1.5));
  b.publish(make_key("shared"), make_entry(2.5));  // disagrees
  b.publish(make_key("only-b"), make_entry());
  EXPECT_THROW(a.merge_from(b_root), Error);
  // No partial state: the conflicting key kept a's bytes and only-b was
  // NOT inserted even though it was conflict-free.
  EXPECT_EQ(a.size(), 1u);
  const auto kept = a.find(make_key("shared"));
  ASSERT_TRUE(kept);
  EXPECT_EQ(kept->clock_period_ns, 1.5);
  EXPECT_FALSE(a.find(make_key("only-b")));
}

TEST(ArtifactStoreMerge, CorruptSourceEntryRejectsTheWholeMerge) {
  const std::string a_root = fresh_dir("art_merged_a");
  const std::string b_root = fresh_dir("art_merged_b");
  ArtifactStore a(a_root);
  ArtifactStore b(b_root);
  b.publish(make_key("good"), make_entry());
  const std::string bad = b.object_path(make_key("bad"));
  write_file(bad, ArtifactStore::serialize(make_key("bad"), make_entry())
                      .substr(0, 64));
  EXPECT_THROW(a.merge_from(b_root), Error);
  EXPECT_EQ(a.size(), 0u);  // the good entry was not inserted either
}

TEST(ArtifactStoreMerge, RenamedSourceFileIsRejected) {
  // A valid artifact under the wrong file name means its content address
  // lies — refuse rather than import under either name.
  const std::string a_root = fresh_dir("art_mergern_a");
  const std::string b_root = fresh_dir("art_mergern_b");
  ArtifactStore a(a_root);
  ArtifactStore b(b_root);
  b.publish(make_key("entry"), make_entry());
  const std::string from = b.object_path(make_key("entry"));
  write_file(b_root + "/objects/00000000deadbeef.art", read_file(from));
  try {
    a.merge_from(b_root);
    FAIL() << "renamed artifact did not throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("content address"),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(a.size(), 0u);
}

// --- crash safety --------------------------------------------------------

TEST(ArtifactStoreCrash, SigkilledWriterNeverCorruptsTheStore) {
  // Fork a writer that publishes and deletes the same entry in a tight
  // loop, SIGKILL it at arbitrary points, and verify after every kill
  // that the store is never in a half-written state: the object is either
  // absent or bit-exact, and a rerun converges to the same bytes.
  const std::string root = fresh_dir("art_crash");
  const ArtifactKey key = make_key();
  const std::string blob = ArtifactStore::serialize(key, make_entry());

  for (int round = 0; round < 4; ++round) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: hammer publish/remove until killed. _exit on any error so
      // a child failure cannot masquerade as a parent assertion.
      try {
        ArtifactStore writer(root);
        const std::string path = writer.object_path(key);
        for (;;) {
          writer.publish(key, make_entry());
          std::remove(path.c_str());
        }
      } catch (...) {
        ::_exit(97);
      }
    }
    ::usleep(5000 + 7000 * round);  // vary the kill point across rounds
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
        << "writer child did not die by SIGKILL: status " << status;

    ArtifactStore reader(root);
    const std::string path = reader.object_path(key);
    if (std::ifstream probe(path); probe.good()) {
      // Committed object => complete and bit-exact (rename is atomic).
      EXPECT_EQ(read_file(path), blob);
      ASSERT_TRUE(reader.find(key));
    } else {
      EXPECT_FALSE(reader.find(key));
    }
    EXPECT_EQ(reader.rejected(), 0u) << "round " << round;

    // A rerun over the crashed store converges to the exact same bytes.
    reader.publish(key, make_entry());
    EXPECT_EQ(read_file(path), blob);
  }
}

// --- hygiene: enumerate / fsck / gc --------------------------------------

void back_date(const std::string& path, std::chrono::hours by) {
  std::error_code ec;
  const fs::file_time_type t = fs::last_write_time(path, ec);
  ASSERT_FALSE(ec) << path;
  fs::last_write_time(path, t - by, ec);
  ASSERT_FALSE(ec) << path;
}

// Fork a child that exits immediately: its reaped pid names a process
// that no longer exists, which is exactly what a dead writer's staging
// directory looks like.
pid_t dead_pid() {
  const pid_t pid = ::fork();
  if (pid == 0) ::_exit(0);
  EXPECT_GT(pid, 0);
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  return pid;
}

TEST(ArtifactStoreHygiene, EnumerateListsObjectsSortedByAddress) {
  ArtifactStore store(fresh_dir("art_enum"));
  EXPECT_TRUE(store.enumerate().empty());
  store.publish(make_key("b1"), make_entry());
  store.publish(make_key("b2"), make_entry(2.5));
  const auto objects = store.enumerate();
  ASSERT_EQ(objects.size(), 2u);
  EXPECT_LT(objects[0].address, objects[1].address);
  for (const store::ObjectInfo& obj : objects) {
    EXPECT_GT(obj.bytes, 0u);
    EXPECT_GE(obj.age_seconds, 0);
    EXPECT_EQ(fs::path(obj.path).stem().string(), obj.address);
    EXPECT_TRUE(fs::exists(obj.path));
  }
}

TEST(ArtifactStoreHygiene, FsckOnAHealthyStoreIsClean) {
  ArtifactStore empty(fresh_dir("art_fsck_empty"));
  store::FsckReport report = empty.fsck(/*repair=*/false);
  EXPECT_EQ(report.scanned, 0u);
  EXPECT_TRUE(report.clean());

  ArtifactStore store(fresh_dir("art_fsck_ok"));
  store.publish(make_key("b1"), make_entry());
  store.publish(make_key("b2"), make_entry(2.5));
  report = store.fsck(/*repair=*/false);
  EXPECT_EQ(report.scanned, 2u);
  EXPECT_EQ(report.valid, 2u);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.repaired, 0u);
}

TEST(ArtifactStoreHygiene, FsckReportsAndRepairsCorruption) {
  const std::string root = fresh_dir("art_fsck_bad");
  ArtifactStore store(root);
  store.publish(make_key("good"), make_entry());
  store.publish(make_key("trunc"), make_entry(2.5));
  const std::string trunc_path = store.object_path(make_key("trunc"));
  write_file(trunc_path, read_file(trunc_path).substr(0, 64));
  // A byte-valid artifact under a lying file name (renamed/planted).
  const std::string planted = root + "/objects/00000000deadbeef.art";
  write_file(planted,
             ArtifactStore::serialize(make_key("planted"), make_entry()));

  // Without --repair: both defects named, nothing deleted.
  store::FsckReport report = store.fsck(/*repair=*/false);
  EXPECT_EQ(report.scanned, 3u);
  EXPECT_EQ(report.valid, 1u);
  ASSERT_EQ(report.rejected.size(), 2u);
  EXPECT_EQ(report.repaired, 0u);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(fs::exists(trunc_path));
  EXPECT_TRUE(fs::exists(planted));

  // With repair: rejects removed (address-miss recomputes them later),
  // the healthy object untouched, and the next fsck is clean.
  report = store.fsck(/*repair=*/true);
  EXPECT_EQ(report.rejected.size(), 2u);
  EXPECT_EQ(report.repaired, 2u);
  EXPECT_FALSE(fs::exists(trunc_path));
  EXPECT_FALSE(fs::exists(planted));
  report = store.fsck(/*repair=*/false);
  EXPECT_EQ(report.scanned, 1u);
  EXPECT_TRUE(report.clean());
  ASSERT_TRUE(store.find(make_key("good")));
}

TEST(ArtifactStoreHygiene, FsckRepairSweepsOnlyStaleStaging) {
  const std::string root = fresh_dir("art_fsck_staging");
  ArtifactStore store(root);
  store.publish(make_key(), make_entry());

  // A dead writer's directory: pid provably gone.
  const std::string dead =
      root + "/staging/p" + std::to_string(dead_pid()) + "-0";
  fs::create_directories(dead);
  // A live writer's directory (our own pid, different handle counter).
  const std::string alive =
      root + "/staging/p" + std::to_string(::getpid()) + "-99";
  fs::create_directories(alive);
  // Unparseable litter: kept while fresh, swept once older than the
  // staleness window.
  const std::string garbage = root + "/staging/not-a-writer";
  fs::create_directories(garbage);

  store::FsckReport report = store.fsck(/*repair=*/true);
  EXPECT_EQ(report.staging_removed, 1u);
  EXPECT_FALSE(fs::exists(dead));
  EXPECT_TRUE(fs::exists(alive));
  EXPECT_TRUE(fs::exists(garbage));

  back_date(garbage, std::chrono::hours(25));
  report = store.fsck(/*repair=*/true);
  EXPECT_EQ(report.staging_removed, 1u);
  EXPECT_FALSE(fs::exists(garbage));
  EXPECT_TRUE(fs::exists(alive));
  ASSERT_TRUE(store.find(make_key()));
}

TEST(ArtifactStoreHygiene, GcDropsAgedObjects) {
  ArtifactStore store(fresh_dir("art_gc_age"));
  store.publish(make_key("fresh"), make_entry());
  store.publish(make_key("old"), make_entry(2.5));
  back_date(store.object_path(make_key("old")), std::chrono::hours(2));

  store::GcOptions opt;
  opt.max_age_seconds = 3600;
  const store::GcReport report = store.gc(opt);
  EXPECT_EQ(report.scanned, 2u);
  EXPECT_EQ(report.kept, 1u);
  EXPECT_EQ(report.dropped_aged, 1u);
  EXPECT_EQ(report.dropped_unreferenced, 0u);
  EXPECT_EQ(report.dropped_invalid, 0u);
  EXPECT_FALSE(store.find(make_key("old")));
  ASSERT_TRUE(store.find(make_key("fresh")));
}

TEST(ArtifactStoreHygiene, GcDropsObjectsAManifestNoLongerReferences) {
  ArtifactStore store(fresh_dir("art_gc_live"));
  store.publish(make_key("live"), make_entry());
  store.publish(make_key("dead"), make_entry(2.5));

  store::GcOptions opt;
  opt.live_addresses =
      std::set<std::string>{ArtifactStore::content_address(make_key("live"))};
  const store::GcReport report = store.gc(opt);
  EXPECT_EQ(report.kept, 1u);
  EXPECT_EQ(report.dropped_unreferenced, 1u);
  EXPECT_FALSE(store.find(make_key("dead")));
  ASSERT_TRUE(store.find(make_key("live")));
}

TEST(ArtifactStoreHygiene, GcDryRunReportsWithoutDeleting) {
  ArtifactStore store(fresh_dir("art_gc_dry"));
  store.publish(make_key("keep"), make_entry());
  store.publish(make_key("broken"), make_entry(2.5));
  const std::string bad = store.object_path(make_key("broken"));
  write_file(bad, read_file(bad).substr(0, 32));

  store::GcOptions opt;
  opt.dry_run = true;
  store::GcReport report = store.gc(opt);
  EXPECT_EQ(report.kept, 1u);
  EXPECT_EQ(report.dropped_invalid, 1u);
  EXPECT_TRUE(fs::exists(bad));  // preview only

  opt.dry_run = false;
  report = store.gc(opt);
  EXPECT_EQ(report.dropped_invalid, 1u);
  EXPECT_FALSE(fs::exists(bad));
  ASSERT_TRUE(store.find(make_key("keep")));
}

}  // namespace
}  // namespace hlp
