// Tests for the HLPower binder (Algorithm 1) and Eq. 4 edge weights,
// including a property-test of Theorem 1 (minimum resource constraints are
// always reachable for single-cycle libraries).
#include <gtest/gtest.h>

#include "binding/datapath_stats.hpp"
#include "binding/register_binder.hpp"
#include "cdfg/benchmarks.hpp"
#include "common/error.hpp"
#include "core/edge_weight.hpp"
#include "core/hlpower.hpp"
#include "sched/list_scheduler.hpp"

namespace hlp {
namespace {

SaCache& shared_cache() {
  static SaCache cache(4);  // narrow width keeps tests quick
  return cache;
}

TEST(EdgeWeight, AlphaOneIsPureSa) {
  EdgeWeightParams p;
  p.alpha = 1.0;
  const auto w = edge_weight(OpKind::kAdd, 2, 2, shared_cache(), p);
  EXPECT_NEAR(w.weight, 1.0 / w.sa, 1e-12);
}

TEST(EdgeWeight, AlphaZeroIsPureMuxDiff) {
  EdgeWeightParams p;
  p.alpha = 0.0;
  const auto w = edge_weight(OpKind::kAdd, 4, 1, shared_cache(), p);
  EXPECT_EQ(w.mux_diff, 3);
  EXPECT_NEAR(w.weight, 1.0 / ((3 + 1) * p.beta_add), 1e-12);
}

TEST(EdgeWeight, BalancedBeatsUnbalancedAtAlphaHalf) {
  EdgeWeightParams p;  // alpha = 0.5
  const auto balanced = edge_weight(OpKind::kAdd, 3, 3, shared_cache(), p);
  const auto skewed = edge_weight(OpKind::kAdd, 5, 1, shared_cache(), p);
  EXPECT_GT(balanced.weight, skewed.weight);
}

TEST(EdgeWeight, BetaSelectsPerKind) {
  EdgeWeightParams p;
  p.alpha = 0.0;
  const auto add = edge_weight(OpKind::kAdd, 2, 2, shared_cache(), p);
  const auto mult = edge_weight(OpKind::kMult, 2, 2, shared_cache(), p);
  EXPECT_NEAR(add.weight / mult.weight, p.beta_mult / p.beta_add, 1e-9);
}

TEST(EdgeWeight, RejectsBadAlpha) {
  EdgeWeightParams p;
  p.alpha = 1.5;
  EXPECT_THROW(edge_weight(OpKind::kAdd, 1, 1, shared_cache(), p), Error);
}

TEST(Hlpower, BindsTinyToMinimum) {
  Cdfg g("tiny");
  const int a = g.add_input("a"), b = g.add_input("b"), c = g.add_input("c");
  const int s1 = g.add_op("s1", OpKind::kAdd, ValueRef::input(a), ValueRef::input(b));
  const int s2 = g.add_op("s2", OpKind::kAdd, ValueRef::input(a), ValueRef::input(c));
  const int m = g.add_op("m", OpKind::kMult, ValueRef::op(s1), ValueRef::op(s2));
  g.add_output("o", ValueRef::op(m));
  const Schedule s = list_schedule(g, {1, 1});
  const ResourceConstraint rc{1, 1};
  const Binding bind = bind_hlpower(g, s, rc, shared_cache());
  EXPECT_NO_THROW(bind.fus.validate(g, s, rc));
  EXPECT_EQ(bind.fus.num_fus_of_kind(OpKind::kAdd), 1);
  EXPECT_EQ(bind.fus.num_fus_of_kind(OpKind::kMult), 1);
  // Both adds on the same FU despite different steps.
  EXPECT_EQ(bind.fus.fu_of_op[s1], bind.fus.fu_of_op[s2]);
  (void)m;
}

TEST(Hlpower, InfeasibleConstraintThrows) {
  const Cdfg g = make_random_dfg(4, 3, 20, 3);
  const Schedule s = list_schedule(g, {3, 3});
  if (s.max_density(g, OpKind::kAdd) > 1) {
    EXPECT_THROW(bind_hlpower(g, s, {1, 3}, shared_cache()), Error);
  }
}

// Theorem 1 as a property test: with constraint = per-type max density, the
// iterative bipartite procedure always terminates with that allocation.
class Theorem1 : public ::testing::TestWithParam<int> {};

TEST_P(Theorem1, MinimumAllocationAlwaysMet) {
  const Cdfg g = make_random_dfg(5, 4, 24 + GetParam() % 7, GetParam());
  const Schedule s = list_schedule(g, {2, 2});
  const ResourceConstraint min_rc{s.max_density(g, OpKind::kAdd),
                                  s.max_density(g, OpKind::kMult)};
  const RegisterBinding rb = bind_registers(g, s, GetParam());
  const HlpowerResult r =
      bind_fus_hlpower(g, s, rb, min_rc, shared_cache());
  EXPECT_NO_THROW(r.fus.validate(g, s, min_rc));
  EXPECT_EQ(r.fus.num_fus_of_kind(OpKind::kAdd), min_rc.adders);
  EXPECT_EQ(r.fus.num_fus_of_kind(OpKind::kMult), min_rc.multipliers);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem1, ::testing::Range(0, 25));

TEST(Hlpower, StopsExactlyAtLooserConstraint) {
  // With a constraint above the minimum the binder must stop at the
  // constraint, not merge all the way down.
  const Cdfg g = make_random_dfg(5, 4, 30, 11);
  const Schedule s = list_schedule(g, {2, 2});
  const int min_add = s.max_density(g, OpKind::kAdd);
  const ResourceConstraint rc{min_add + 2, s.max_density(g, OpKind::kMult) + 1};
  const RegisterBinding rb = bind_registers(g, s, 11);
  const HlpowerResult r = bind_fus_hlpower(g, s, rb, rc, shared_cache());
  EXPECT_EQ(r.fus.num_fus_of_kind(OpKind::kAdd), rc.adders);
  EXPECT_EQ(r.fus.num_fus_of_kind(OpKind::kMult), rc.multipliers);
}

TEST(Hlpower, DeterministicGivenSeed) {
  const Cdfg g = make_random_dfg(5, 4, 28, 13);
  const Schedule s = list_schedule(g, {2, 2});
  const ResourceConstraint rc{2, 2};
  const Binding a = bind_hlpower(g, s, rc, shared_cache(), {}, 5);
  const Binding b = bind_hlpower(g, s, rc, shared_cache(), {}, 5);
  EXPECT_EQ(a.fus.fu_of_op, b.fus.fu_of_op);
}

TEST(Hlpower, IterationAndEdgeCountsReported) {
  const Cdfg g = make_random_dfg(5, 3, 26, 17);
  const Schedule s = list_schedule(g, {2, 2});
  const ResourceConstraint rc{s.max_density(g, OpKind::kAdd),
                              s.max_density(g, OpKind::kMult)};
  const RegisterBinding rb = bind_registers(g, s);
  const HlpowerResult r = bind_fus_hlpower(g, s, rb, rc, shared_cache());
  EXPECT_GT(r.iterations, 0);
  EXPECT_GT(r.edges_evaluated, 0);
}

// The paper's central mechanism: alpha=0.5 yields better-balanced muxes
// (lower mean muxDiff) than alpha=1 (no balancing term) on average.
TEST(Hlpower, AlphaHalfBalancesBetterThanAlphaOneOnAverage) {
  double diff_sum_a1 = 0.0, diff_sum_a05 = 0.0;
  for (int seed = 0; seed < 8; ++seed) {
    const Cdfg g = make_random_dfg(6, 4, 36, 100 + seed);
    const Schedule s = list_schedule(g, {2, 2});
    const ResourceConstraint rc{s.max_density(g, OpKind::kAdd),
                                s.max_density(g, OpKind::kMult)};
    const RegisterBinding rb = bind_registers(g, s, seed);
    HlpowerParams p1;
    p1.weight.alpha = 1.0;
    HlpowerParams p05;
    p05.weight.alpha = 0.5;
    const auto r1 = bind_fus_hlpower(g, s, rb, rc, shared_cache(), p1);
    const auto r05 = bind_fus_hlpower(g, s, rb, rc, shared_cache(), p05);
    diff_sum_a1 += compute_datapath_stats(g, rb, r1.fus).muxdiff_mean;
    diff_sum_a05 += compute_datapath_stats(g, rb, r05.fus).muxdiff_mean;
  }
  EXPECT_LE(diff_sum_a05, diff_sum_a1 + 1e-9);
}

}  // namespace
}  // namespace hlp
