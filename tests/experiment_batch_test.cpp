// Property tests for ExperimentRunner seed coalescing: for randomized job
// grids (mixed benchmarks, binders, 1-200 seeds, group sizes that are not
// multiples of 64), the coalesced runner must produce JobResults that are
// bit-identical to a runner with coalescing disabled, in the same order,
// with failures still captured per job.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "flow/experiment.hpp"
#include "flow/pipeline.hpp"

namespace hlp {
namespace {

constexpr int kWidth = 4;

flow::Job small_job() {
  flow::Job base;
  base.width = kWidth;
  base.num_vectors = 6;
  return base;
}

// Bit-identical comparison of two job results: exact equality on every
// integer statistic and on every derived double (same inputs through the
// same deterministic arithmetic must give the same bits, not just close).
void expect_identical(const flow::JobResult& a, const flow::JobResult& b) {
  EXPECT_EQ(a.job.benchmark, b.job.benchmark);
  EXPECT_EQ(a.job.seed, b.job.seed);
  EXPECT_EQ(a.job.binder.name, b.job.binder.name);
  ASSERT_EQ(a.ok, b.ok) << a.error << " vs " << b.error;
  if (!a.ok) {
    EXPECT_EQ(a.error, b.error);
    return;
  }
  EXPECT_EQ(a.outcome.fus.fu_of_op, b.outcome.fus.fu_of_op);
  EXPECT_EQ(a.outcome.refined, b.outcome.refined);
  EXPECT_EQ(a.outcome.flow.mapped.num_luts, b.outcome.flow.mapped.num_luts);
  EXPECT_EQ(a.outcome.flow.clock_period_ns, b.outcome.flow.clock_period_ns);
  EXPECT_EQ(a.outcome.flow.sim.num_cycles, b.outcome.flow.sim.num_cycles);
  EXPECT_EQ(a.outcome.flow.sim.toggles, b.outcome.flow.sim.toggles);
  EXPECT_EQ(a.outcome.flow.sim.total_transitions,
            b.outcome.flow.sim.total_transitions);
  EXPECT_EQ(a.outcome.flow.sim.functional_transitions,
            b.outcome.flow.sim.functional_transitions);
  EXPECT_EQ(a.outcome.flow.report.dynamic_power_mw,
            b.outcome.flow.report.dynamic_power_mw);
  EXPECT_EQ(a.outcome.flow.report.toggle_rate_mps,
            b.outcome.flow.report.toggle_rate_mps);
  EXPECT_EQ(a.outcome.flow.report.glitch_fraction,
            b.outcome.flow.report.glitch_fraction);
  EXPECT_EQ(a.outcome.flow.mux_stats.mux_length,
            b.outcome.flow.mux_stats.mux_length);
}

void expect_all_identical(const std::vector<flow::JobResult>& coalesced,
                          const std::vector<flow::JobResult>& independent) {
  ASSERT_EQ(coalesced.size(), independent.size());
  for (std::size_t i = 0; i < coalesced.size(); ++i) {
    SCOPED_TRACE("job #" + std::to_string(i));
    expect_identical(coalesced[i], independent[i]);
  }
}

std::vector<flow::JobResult> run_coalesced(const std::vector<flow::Job>& jobs,
                                           int threads = 4) {
  flow::ExperimentRunner runner(threads);
  runner.set_coalescing(true);
  return runner.run(jobs);
}

std::vector<flow::JobResult> run_independent(
    const std::vector<flow::Job>& jobs, int threads = 1) {
  flow::ExperimentRunner runner(threads);
  runner.set_coalescing(false);
  return runner.run(jobs);
}

TEST(ExperimentBatch, RandomizedGridsBitIdentical) {
  std::mt19937_64 rng(20260731);
  const std::vector<std::vector<std::string>> bench_choices = {
      {"pr"}, {"wang"}, {"pr", "wang"}};
  const std::vector<double> alphas = {0.25, 0.5, 1.0};
  // Group sizes straddling the 64-lane word boundary, none a multiple.
  const std::vector<int> seed_counts = {1, 3, 63, 65, 130};

  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const auto& benchmarks = bench_choices[rng() % bench_choices.size()];
    std::vector<flow::BinderSpec> binders;
    binders.push_back(flow::BinderSpec{"lopass"});
    flow::BinderSpec hlp_spec{"hlpower"};
    hlp_spec.alpha = alphas[rng() % alphas.size()];
    binders.push_back(hlp_spec);

    const int num_seeds = seed_counts[rng() % seed_counts.size()];
    std::vector<std::uint64_t> seeds;
    for (int s = 0; s < num_seeds; ++s) seeds.push_back(rng() % 1000);

    const auto jobs =
        flow::ExperimentRunner::grid(benchmarks, binders, seeds, {},
                                     small_job());
    ASSERT_EQ(jobs.size(), benchmarks.size() * binders.size() * seeds.size());

    const auto coalesced = run_coalesced(jobs);
    const auto independent = run_independent(jobs);
    expect_all_identical(coalesced, independent);

    // Every (benchmark, binder) group really was coalesced...
    for (const auto& res : coalesced)
      EXPECT_EQ(res.group_size, static_cast<std::size_t>(num_seeds));
    // ...and the independent runner ran every job alone.
    for (const auto& res : independent) EXPECT_EQ(res.group_size, 1u);
  }
}

TEST(ExperimentBatch, TwoHundredSeedsOneBinding) {
  // The upper end of the issue's 1-200 seed range through one binding:
  // 200 = 3 full 64-lane words + a 8-lane remainder word.
  std::vector<std::uint64_t> seeds;
  for (int s = 0; s < 200; ++s) seeds.push_back(1000 + s);
  const auto jobs = flow::ExperimentRunner::grid(
      {"pr"}, {flow::BinderSpec{"hlpower"}}, seeds, {}, small_job());
  const auto coalesced = run_coalesced(jobs);
  const auto independent = run_independent(jobs, /*threads=*/2);
  expect_all_identical(coalesced, independent);
  EXPECT_EQ(coalesced.front().group_size, 200u);
}

TEST(ExperimentBatch, DuplicateSeedsShareALaneEach) {
  // Duplicate seeds are legal grid points: every copy gets its own lane
  // and its own (identical) result.
  const std::vector<std::uint64_t> seeds = {7, 7, 7, 11, 7};
  const auto jobs = flow::ExperimentRunner::grid(
      {"wang"}, {flow::BinderSpec{"lopass"}}, seeds, {}, small_job());
  const auto coalesced = run_coalesced(jobs);
  const auto independent = run_independent(jobs);
  expect_all_identical(coalesced, independent);
  expect_identical(coalesced[0], coalesced[1]);
  EXPECT_NE(coalesced[0].outcome.flow.sim.toggles,
            coalesced[3].outcome.flow.sim.toggles);
}

TEST(ExperimentBatch, ScalarEngineGroupsCoalesceViaReferencePath) {
  // kScalar groups coalesce too (shared head stages); simulate_runs loops
  // the scalar oracle per lane, so results still match exactly.
  flow::Job base = small_job();
  base.sim_engine = SimEngine::kScalar;
  const auto jobs = flow::ExperimentRunner::grid(
      {"pr"}, {flow::BinderSpec{"hlpower"}}, {1, 2, 3, 4, 5}, {}, base);
  const auto coalesced = run_coalesced(jobs);
  const auto independent = run_independent(jobs);
  expect_all_identical(coalesced, independent);
  EXPECT_EQ(coalesced.front().group_size, 5u);
}

TEST(ExperimentBatch, MixedEnginesDoNotShareAGroup) {
  // Same binding, same seeds, different engines: the group key separates
  // them (results are identical anyway, but the oracle must not silently
  // ride the batch path it is meant to check).
  std::vector<flow::Job> jobs;
  for (const SimEngine engine : {SimEngine::kBatched, SimEngine::kScalar})
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
      flow::Job j = small_job();
      j.benchmark = "pr";
      j.seed = seed;
      j.sim_engine = engine;
      jobs.push_back(j);
    }
  const auto results = run_coalesced(jobs);
  for (const auto& res : results) EXPECT_EQ(res.group_size, 3u);
  expect_all_identical(results, run_independent(jobs));
}

TEST(ExperimentBatch, GroupFailureIsCapturedOnEveryMemberJob) {
  // A group whose shared pipeline throws (unknown binder) fails on every
  // member with the error, while other groups are untouched — in order.
  flow::BinderSpec bad{"no-such-binder"};
  const auto bad_jobs = flow::ExperimentRunner::grid(
      {"pr"}, {bad}, {1, 2, 3, 4, 5, 6, 7}, {}, small_job());
  const auto good_jobs = flow::ExperimentRunner::grid(
      {"pr"}, {flow::BinderSpec{"hlpower"}}, {1, 2, 3}, {}, small_job());
  std::vector<flow::Job> jobs;
  jobs.insert(jobs.end(), bad_jobs.begin(), bad_jobs.end());
  jobs.insert(jobs.end(), good_jobs.begin(), good_jobs.end());

  const auto results = run_coalesced(jobs);
  ASSERT_EQ(results.size(), 10u);
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_FALSE(results[i].ok);
    EXPECT_NE(results[i].error.find("no-such-binder"), std::string::npos);
    EXPECT_EQ(results[i].group_size, 7u);
  }
  for (std::size_t i = 7; i < 10; ++i)
    EXPECT_TRUE(results[i].ok) << results[i].error;
  expect_all_identical(results, run_independent(jobs));
}

TEST(ExperimentBatch, CoalescingDefaultsOnAndToggles) {
  unsetenv("HLP_COALESCE");  // isolate from the CI env override
  flow::ExperimentRunner runner(1);
  EXPECT_TRUE(runner.coalescing());  // default on
  runner.set_coalescing(false);
  EXPECT_FALSE(runner.coalescing());
}

}  // namespace
}  // namespace hlp
