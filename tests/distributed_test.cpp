// Tests for the distributed runner stack (src/flow/job_io, distributed,
// tools/hlp_worker): wire-format round trips are exact and truncation-
// detecting, a multi-process run is bit-identical to the in-process
// threaded runner on a randomized job grid, worker failures (nonzero
// exit, death by signal, truncated output, timeout) propagate into
// per-job errors, and SA-table shards merge into a shared warm-start
// file.
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "flow/distributed.hpp"
#include "flow/experiment.hpp"
#include "flow/job_io.hpp"
#include "power/sa_cache.hpp"

namespace hlp {
namespace {

constexpr int kWidth = 4;
constexpr int kVectors = 40;

flow::Job small_job(const std::string& benchmark) {
  flow::Job j;
  j.benchmark = benchmark;
  j.width = kWidth;
  j.num_vectors = kVectors;
  return j;
}

// The randomized acceptance grid: benchmarks x binders (all four
// registered families, refinement included) x a non-multiple-of-64 seed
// count, shuffled so worker slices cut across coalescing groups.
std::vector<flow::Job> property_grid() {
  flow::BinderSpec hlp_half{"hlpower"};
  flow::BinderSpec lopass{"lopass"};
  flow::BinderSpec anneal{"anneal"};
  flow::BinderSpec refined{"hlpower"};
  refined.alpha = 1.0;
  refined.refine = true;
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 17; ++s) seeds.push_back(300 + s);
  std::vector<flow::Job> jobs = flow::ExperimentRunner::grid(
      {"pr", "wang"}, {hlp_half, lopass, anneal, refined}, seeds, {},
      small_job("pr"));
  // One job that fails inside the worker: per-job errors must round-trip
  // and match the in-process runner's message exactly.
  jobs.push_back(small_job("no-such-benchmark"));
  Rng rng(7);
  rng.shuffle(jobs);
  return jobs;
}

std::string write_fake_worker(const std::string& name,
                              const std::string& body) {
  const std::string path = ::testing::TempDir() + "/" + name;
  {
    std::ofstream f(path);
    f << "#!/bin/sh\n" << body << "\n";
  }
  EXPECT_EQ(::chmod(path.c_str(), 0755), 0);
  return path;
}

// ---- wire format ---------------------------------------------------------

TEST(JobIo, TokenRoundTrip) {
  const std::string nasty = "a b\tc\nd%e=f\x01g";
  const std::string enc = flow::encode_token(nasty);
  EXPECT_EQ(enc.find(' '), std::string::npos);
  EXPECT_EQ(enc.find('\n'), std::string::npos);
  EXPECT_EQ(flow::decode_token(enc), nasty);
  EXPECT_EQ(flow::decode_token(flow::encode_token("")), "");
  EXPECT_THROW(flow::decode_token("bad%2"), Error);
  EXPECT_THROW(flow::decode_token("bad%zz"), Error);
}

TEST(JobIo, ManifestRoundTripIsExact) {
  std::vector<flow::ManifestJob> jobs;
  flow::ManifestJob a;
  a.index = 12;
  a.job = small_job("pr");
  a.job.scheduler = "fds";
  a.job.binder = {"hlpower", 0.1, 0.375, -1.0, true};
  a.job.rc = {3, 2};
  a.job.seed = 0xdeadbeefcafe1234ull;
  a.job.reg_seed = 99;
  a.job.sched_spec = {5, 3};
  a.job.sim_engine = SimEngine::kScalar;
  a.job.simd = SimdMode::kX4;
  a.job.settle = SettleMode::kLevel;
  a.job.label = "label with spaces & %";
  jobs.push_back(a);
  flow::ManifestJob b;  // all defaults
  b.index = 0;
  jobs.push_back(b);

  std::ostringstream text;
  flow::save_manifest(text, jobs);
  std::istringstream in(text.str());
  const auto back = flow::load_manifest(in);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].index, 12u);
  const flow::Job& j = back[0].job;
  EXPECT_EQ(j.benchmark, "pr");
  EXPECT_EQ(j.scheduler, "fds");
  EXPECT_EQ(j.binder.name, "hlpower");
  EXPECT_EQ(j.binder.alpha, 0.1);  // bit-exact, not just approximate
  EXPECT_EQ(j.binder.beta_add, 0.375);
  EXPECT_EQ(j.binder.beta_mult, -1.0);
  EXPECT_TRUE(j.binder.refine);
  EXPECT_EQ(j.rc.adders, 3);
  EXPECT_EQ(j.rc.multipliers, 2);
  EXPECT_EQ(j.seed, 0xdeadbeefcafe1234ull);
  EXPECT_EQ(j.reg_seed, 99u);
  EXPECT_EQ(j.sched_spec.min_latency, 5);
  EXPECT_EQ(j.sched_spec.latency_slack, 3);
  EXPECT_EQ(j.sim_engine, SimEngine::kScalar);
  EXPECT_EQ(j.simd, SimdMode::kX4);
  EXPECT_EQ(j.settle, SettleMode::kLevel);
  EXPECT_EQ(j.label, "label with spaces & %");
  EXPECT_EQ(back[1].job.benchmark, flow::Job{}.benchmark);
}

flow::ManifestResult synthetic_result() {
  flow::ManifestResult mr;
  mr.index = 7;
  flow::JobResult& r = mr.result;
  r.job = small_job("wang");
  r.ok = true;
  r.seconds = 0.1234567890123456789;
  r.group_size = 17;
  flow::PipelineOutcome& o = r.outcome;
  o.fus.fu_of_op = {0, 1, 0, 2};
  o.fus.kind_of_fu = {OpKind::kAdd, OpKind::kMult, OpKind::kAdd};
  o.fus.flipped = {0, 1, 0, 0};
  o.refined = true;
  o.refine.fus = o.fus;
  o.refine.flips_applied = 2;
  o.refine.passes = 3;
  o.refine.cost_before = 1.0 / 3.0;
  o.refine.cost_after = 0.1 + 0.2;  // deliberately not exactly 0.3
  o.flow.mux_stats = {4, 9, 3, 1.5, 0.25, {2, 3}, {1, 4}, {1, 1}};
  o.flow.mapped.num_luts = 123;
  o.flow.mapped.depth = 6;
  o.flow.clock_period_ns = 7.25;
  o.flow.sim.toggles = {0, 5, 11, 0, 2};
  o.flow.sim.num_cycles = 40;
  o.flow.sim.total_transitions = 18;
  o.flow.sim.functional_transitions = 12;
  o.flow.report = {0.25, 7.25, 123, 31, 1e9 / 3.0, 4.5, 1.0 / 7.0};
  o.bind_seconds = 1e-5;
  o.cached_stages = {"elaborate", "map"};
  o.timings = {{"schedule", 0.5}, {"simulate", 1.0 / 3.0}};
  return mr;
}

TEST(JobIo, ResultsRoundTripIsBitExact) {
  std::vector<flow::ManifestResult> results;
  results.push_back(synthetic_result());
  flow::ManifestResult failed;
  failed.index = 2;
  failed.result.job = small_job("pr");
  failed.result.ok = false;
  failed.result.error = "multi word error\nwith a newline and 100% escapes";
  failed.result.seconds = 0.5;
  results.push_back(failed);

  std::ostringstream text;
  flow::save_results(text, results);
  std::istringstream in(text.str());
  const auto back = flow::load_results(in);
  ASSERT_EQ(back.size(), 2u);

  EXPECT_EQ(back[0].index, 7u);
  const flow::JobResult& orig = results[0].result;
  const flow::JobResult& got = back[0].result;
  EXPECT_TRUE(flow::same_outcome(orig, got));
  // Beyond same_outcome: execution metadata round-trips too.
  EXPECT_EQ(got.seconds, orig.seconds);
  EXPECT_EQ(got.group_size, 17u);
  EXPECT_EQ(got.outcome.bind_seconds, orig.outcome.bind_seconds);
  EXPECT_EQ(got.outcome.cached_stages, orig.outcome.cached_stages);
  ASSERT_EQ(got.outcome.timings.size(), 2u);
  EXPECT_EQ(got.outcome.timings[1].name, "simulate");
  EXPECT_EQ(got.outcome.timings[1].seconds, 1.0 / 3.0);
  // The refined binding is reconstituted from the outcome's fus.
  EXPECT_EQ(got.outcome.refine.fus.fu_of_op, orig.outcome.fus.fu_of_op);

  EXPECT_EQ(back[1].index, 2u);
  EXPECT_FALSE(back[1].result.ok);
  EXPECT_EQ(back[1].result.error, failed.result.error);
}

TEST(JobIo, TruncatedAndCorruptResultsRejected) {
  std::vector<flow::ManifestResult> results = {synthetic_result()};
  std::ostringstream text;
  flow::save_results(text, results);
  const std::string full = text.str();

  // Any prefix that cuts a record or the footer must throw, not return a
  // partial vector — this is how a parent detects a worker that died
  // mid-write.
  for (const double frac : {0.2, 0.5, 0.9}) {
    std::istringstream cut(
        full.substr(0, static_cast<std::size_t>(full.size() * frac)));
    EXPECT_THROW(flow::load_results(cut), Error) << "fraction " << frac;
  }
  std::istringstream missing_footer(full.substr(0, full.rfind("end ")));
  EXPECT_THROW(flow::load_results(missing_footer), Error);

  std::string corrupt = full;
  corrupt.replace(corrupt.find("toggles"), 7, "goggles");
  std::istringstream bad(corrupt);
  EXPECT_THROW(flow::load_results(bad), Error);

  std::istringstream not_results("hlp-manifest v1\ncount 0\n");
  EXPECT_THROW(flow::load_results(not_results), Error);
}

// ---- the distributed == threaded property --------------------------------

TEST(Distributed, BitIdenticalToThreadedRunnerOnRandomGrid) {
  const std::vector<flow::Job> jobs = property_grid();

  flow::ExperimentRunner threaded(3);
  const auto want = threaded.run(jobs);

  // HLP_WORKERS can raise the worker count (the CI distributed leg pins
  // it to 2); the slices then cut the shuffled grid at different points,
  // which must not change a single bit of any result.
  flow::DistributedRunner dist(flow::workers_from_env(2), 2);
  const auto got = dist.run(jobs);

  ASSERT_EQ(got.size(), want.size());
  std::size_t failed_jobs = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(flow::same_outcome(want[i], got[i]))
        << "job " << i << " (" << jobs[i].benchmark << "/"
        << jobs[i].binder.name << " seed " << jobs[i].seed
        << ") diverged; distributed error: '" << got[i].error << "'";
    EXPECT_EQ(got[i].job.seed, jobs[i].seed);
    failed_jobs += got[i].ok ? 0 : 1;
  }
  // Exactly the bad-benchmark job fails, identically on both sides.
  EXPECT_EQ(failed_jobs, 1u);
}

TEST(Distributed, WorkersInheritSettleModeAndStayBitIdentical) {
  // Jobs pinned to the levelized engine must carry that mode through the
  // manifest into the worker processes — and because the two settle
  // engines are bit-identical, a levelized distributed run must match an
  // event-driven in-process run on every bit.
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 9; ++s) seeds.push_back(700 + s);
  flow::Job base = small_job("pr");
  base.settle = SettleMode::kLevel;
  const auto jobs = flow::ExperimentRunner::grid(
      {"pr", "wang"}, {flow::BinderSpec{"hlpower"}}, seeds, {}, base);

  flow::Job event_base = small_job("pr");
  event_base.settle = SettleMode::kEvent;
  const auto event_jobs = flow::ExperimentRunner::grid(
      {"pr", "wang"}, {flow::BinderSpec{"hlpower"}}, seeds, {}, event_base);
  flow::ExperimentRunner threaded(2);
  const auto want = threaded.run(event_jobs);

  flow::DistributedRunner dist(2, 2);
  const auto got = dist.run(jobs);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(got[i].ok) << got[i].error;
    // The worker echoes the job back through the results file: the settle
    // mode it actually ran with, not a default.
    EXPECT_EQ(got[i].job.settle, SettleMode::kLevel) << "job " << i;
    EXPECT_TRUE(flow::same_outcome(want[i], got[i]))
        << "job " << i << " diverged between levelized workers and the "
        << "event-driven threaded runner";
  }
}

TEST(Distributed, SingleWorkerFallsBackInProcess) {
  const std::vector<flow::Job> jobs = {small_job("pr"), small_job("wang")};
  flow::DistributedRunner dist(1, 2);
  // No process is spawned on the fallback path: an unusable worker binary
  // must not matter.
  dist.set_worker_binary("/does/not/exist");
  const auto got = dist.run(jobs);
  flow::ExperimentRunner threaded(2);
  const auto want = threaded.run(jobs);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_TRUE(flow::same_outcome(want[i], got[i])) << "job " << i;
}

TEST(Distributed, SingleJobGridDoesNotSpawn) {
  flow::DistributedRunner dist(4, 1);
  dist.set_worker_binary("/does/not/exist");
  const auto got = dist.run({small_job("pr")});
  ASSERT_EQ(got.size(), 1u);
  EXPECT_TRUE(got[0].ok) << got[0].error;
}

// ---- worker failure propagation ------------------------------------------

std::vector<flow::JobResult> run_with_fake_worker(const std::string& script,
                                                  double timeout = 0.0) {
  flow::DistributedRunner dist(2, 1);
  dist.set_worker_binary(script);
  if (timeout > 0.0) dist.set_timeout(timeout);
  return dist.run({small_job("pr"), small_job("wang"), small_job("pr")});
}

TEST(Distributed, NonzeroExitPropagatesToEveryJobOfTheSlice) {
  const std::string script = write_fake_worker(
      "worker_exit3.sh", "echo doom from the worker >&2\nexit 3");
  const auto got = run_with_fake_worker(script);
  ASSERT_EQ(got.size(), 3u);
  for (const auto& r : got) {
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("exited with status 3"), std::string::npos)
        << r.error;
    // The worker's captured stderr rides along for debuggability.
    EXPECT_NE(r.error.find("doom from the worker"), std::string::npos)
        << r.error;
  }
}

TEST(Distributed, KilledWorkerPropagatesSignal) {
  const std::string script =
      write_fake_worker("worker_kill9.sh", "kill -9 $$");
  const auto got = run_with_fake_worker(script);
  ASSERT_EQ(got.size(), 3u);
  for (const auto& r : got) {
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("killed by signal 9"), std::string::npos)
        << r.error;
  }
}

TEST(Distributed, TruncatedResultsFilePropagates) {
  // A worker that exits 0 but leaves a results file with no records and
  // no footer — e.g. one that died in a way the OS reported as success.
  const std::string script = write_fake_worker(
      "worker_truncate.sh",
      "out=\"\"\n"
      "while [ $# -gt 0 ]; do\n"
      "  if [ \"$1\" = \"--results\" ]; then out=\"$2\"; fi\n"
      "  shift\n"
      "done\n"
      "printf 'hlp-results v1\\ncount 2\\n' > \"$out\"\n"
      "exit 0");
  const auto got = run_with_fake_worker(script);
  ASSERT_EQ(got.size(), 3u);
  for (const auto& r : got) {
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("unreadable results"), std::string::npos)
        << r.error;
  }
}

TEST(Distributed, HungWorkerTimesOutAndIsKilled) {
  const std::string script = write_fake_worker("worker_hang.sh", "sleep 30");
  const auto t0 = std::chrono::steady_clock::now();
  const auto got = run_with_fake_worker(script, 0.3);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_EQ(got.size(), 3u);
  for (const auto& r : got) {
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("timed out"), std::string::npos) << r.error;
  }
  EXPECT_LT(elapsed, 10.0) << "workers were not killed at the deadline";
}

// ---- SA-table shard merging through the distributed path -----------------

TEST(Distributed, SaShardsMergeIntoWarmStartFile) {
  const std::string prefix = ::testing::TempDir() + "/dist_sa_cache";
  const std::string file = prefix + ".w" + std::to_string(kWidth);
  std::remove(file.c_str());

  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 6; ++s) seeds.push_back(500 + s);
  const auto jobs = flow::ExperimentRunner::grid(
      {"pr", "wang"}, {flow::BinderSpec{"hlpower"}}, seeds, {},
      small_job("pr"));

  flow::DistributedRunner dist(2, 1);
  dist.set_sa_cache_path(prefix);
  const auto got = dist.run(jobs);
  for (const auto& r : got) EXPECT_TRUE(r.ok) << r.error;

  // The parent merged every worker's shard and persisted the union.
  EXPECT_GT(dist.local().sa_cache(kWidth).size(), 0u);
  SaCache reloaded(kWidth);
  reloaded.load_file(file);
  EXPECT_EQ(reloaded.size(), dist.local().sa_cache(kWidth).size());

  // The merged table is a valid shard itself: merging it into a fresh
  // cache inserts everything; merging twice inserts nothing new.
  SaCache fresh(kWidth);
  EXPECT_EQ(fresh.merge_from(file), reloaded.size());
  EXPECT_EQ(fresh.merge_from(file), 0u);
  EXPECT_EQ(fresh.misses(), 0u);
}

}  // namespace
}  // namespace hlp
