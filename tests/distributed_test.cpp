// Tests for the distributed runner stack (src/flow/job_io, distributed,
// tools/hlp_worker): wire-format round trips (v1 files and v2 streaming
// frames) are exact and truncation-detecting, a multi-process run is
// bit-identical to the in-process threaded runner on a randomized job
// grid under BOTH dispatch modes, worker failures (nonzero exit, death
// by signal, invalid frames, truncated output, per-unit timeout)
// propagate into per-job errors — with bounded requeue first in
// streaming dispatch — and SA-table shards merge into a shared
// warm-start file, staying warm across units inside one serve-mode
// worker.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "flow/distributed.hpp"
#include "flow/experiment.hpp"
#include "flow/job_io.hpp"
#include "power/sa_cache.hpp"
#include "store/artifact_store.hpp"

namespace hlp {
namespace {

constexpr int kWidth = 4;
constexpr int kVectors = 40;

flow::Job small_job(const std::string& benchmark) {
  flow::Job j;
  j.benchmark = benchmark;
  j.width = kWidth;
  j.num_vectors = kVectors;
  return j;
}

// The randomized acceptance grid: benchmarks x binders (all four
// registered families, refinement included) x a non-multiple-of-64 seed
// count, shuffled so worker slices cut across coalescing groups.
std::vector<flow::Job> property_grid() {
  flow::BinderSpec hlp_half{"hlpower"};
  flow::BinderSpec lopass{"lopass"};
  flow::BinderSpec anneal{"anneal"};
  flow::BinderSpec refined{"hlpower"};
  refined.alpha = 1.0;
  refined.refine = true;
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 17; ++s) seeds.push_back(300 + s);
  std::vector<flow::Job> jobs = flow::ExperimentRunner::grid(
      {"pr", "wang"}, {hlp_half, lopass, anneal, refined}, seeds, {},
      small_job("pr"));
  // One job that fails inside the worker: per-job errors must round-trip
  // and match the in-process runner's message exactly.
  jobs.push_back(small_job("no-such-benchmark"));
  Rng rng(7);
  rng.shuffle(jobs);
  return jobs;
}

std::string write_fake_worker(const std::string& name,
                              const std::string& body) {
  const std::string path = ::testing::TempDir() + "/" + name;
  {
    std::ofstream f(path);
    f << "#!/bin/sh\n" << body << "\n";
  }
  EXPECT_EQ(::chmod(path.c_str(), 0755), 0);
  return path;
}

// The real hlp_worker binary, which the build puts next to this test.
std::string real_worker_binary() {
  std::error_code ec;
  const std::filesystem::path self =
      std::filesystem::read_symlink("/proc/self/exe", ec);
  if (ec) return "";
  return (self.parent_path() / "hlp_worker").string();
}

// ---- wire format ---------------------------------------------------------

TEST(JobIo, TokenRoundTrip) {
  const std::string nasty = "a b\tc\nd%e=f\x01g";
  const std::string enc = flow::encode_token(nasty);
  EXPECT_EQ(enc.find(' '), std::string::npos);
  EXPECT_EQ(enc.find('\n'), std::string::npos);
  EXPECT_EQ(flow::decode_token(enc), nasty);
  EXPECT_EQ(flow::decode_token(flow::encode_token("")), "");
  EXPECT_THROW(flow::decode_token("bad%2"), Error);
  EXPECT_THROW(flow::decode_token("bad%zz"), Error);
}

TEST(JobIo, ManifestRoundTripIsExact) {
  std::vector<flow::ManifestJob> jobs;
  flow::ManifestJob a;
  a.index = 12;
  a.job = small_job("pr");
  a.job.scheduler = "fds";
  a.job.binder = {"hlpower", 0.1, 0.375, -1.0, true};
  a.job.rc = {3, 2};
  a.job.seed = 0xdeadbeefcafe1234ull;
  a.job.reg_seed = 99;
  a.job.sched_spec = {5, 3};
  a.job.sim_engine = SimEngine::kScalar;
  a.job.simd = SimdMode::kX4;
  a.job.settle = SettleMode::kLevel;
  a.job.sa = SaMode::kExact;
  a.job.label = "label with spaces & %";
  jobs.push_back(a);
  flow::ManifestJob b;  // all defaults
  b.index = 0;
  jobs.push_back(b);

  std::ostringstream text;
  flow::save_manifest(text, jobs);
  std::istringstream in(text.str());
  const auto back = flow::load_manifest(in);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].index, 12u);
  const flow::Job& j = back[0].job;
  EXPECT_EQ(j.benchmark, "pr");
  EXPECT_EQ(j.scheduler, "fds");
  EXPECT_EQ(j.binder.name, "hlpower");
  EXPECT_EQ(j.binder.alpha, 0.1);  // bit-exact, not just approximate
  EXPECT_EQ(j.binder.beta_add, 0.375);
  EXPECT_EQ(j.binder.beta_mult, -1.0);
  EXPECT_TRUE(j.binder.refine);
  EXPECT_EQ(j.rc.adders, 3);
  EXPECT_EQ(j.rc.multipliers, 2);
  EXPECT_EQ(j.seed, 0xdeadbeefcafe1234ull);
  EXPECT_EQ(j.reg_seed, 99u);
  EXPECT_EQ(j.sched_spec.min_latency, 5);
  EXPECT_EQ(j.sched_spec.latency_slack, 3);
  EXPECT_EQ(j.sim_engine, SimEngine::kScalar);
  EXPECT_EQ(j.simd, SimdMode::kX4);
  EXPECT_EQ(j.settle, SettleMode::kLevel);
  ASSERT_TRUE(j.sa.has_value());
  EXPECT_EQ(*j.sa, SaMode::kExact);
  EXPECT_EQ(j.label, "label with spaces & %");
  EXPECT_EQ(back[1].job.benchmark, flow::Job{}.benchmark);
  // The SA mode is serialised RESOLVED: a job that deferred to HLP_SA_MODE
  // leaves the parent as a concrete mode, so a worker with a different
  // environment still runs exactly the parent's backend.
  ASSERT_TRUE(back[1].job.sa.has_value());
  EXPECT_EQ(*back[1].job.sa, effective_sa_mode(std::nullopt));
}

flow::ManifestResult synthetic_result() {
  flow::ManifestResult mr;
  mr.index = 7;
  flow::JobResult& r = mr.result;
  r.job = small_job("wang");
  r.ok = true;
  r.seconds = 0.1234567890123456789;
  r.group_size = 17;
  flow::PipelineOutcome& o = r.outcome;
  o.fus.fu_of_op = {0, 1, 0, 2};
  o.fus.kind_of_fu = {OpKind::kAdd, OpKind::kMult, OpKind::kAdd};
  o.fus.flipped = {0, 1, 0, 0};
  o.refined = true;
  o.refine.fus = o.fus;
  o.refine.flips_applied = 2;
  o.refine.passes = 3;
  o.refine.cost_before = 1.0 / 3.0;
  o.refine.cost_after = 0.1 + 0.2;  // deliberately not exactly 0.3
  o.flow.mux_stats = {4, 9, 3, 1.5, 0.25, {2, 3}, {1, 4}, {1, 1}};
  o.flow.mapped.num_luts = 123;
  o.flow.mapped.depth = 6;
  o.flow.clock_period_ns = 7.25;
  o.flow.sim.toggles = {0, 5, 11, 0, 2};
  o.flow.sim.num_cycles = 40;
  o.flow.sim.total_transitions = 18;
  o.flow.sim.functional_transitions = 12;
  o.flow.report = {0.25, 7.25, 123, 31, 1e9 / 3.0, 4.5, 1.0 / 7.0};
  o.bind_seconds = 1e-5;
  o.cached_stages = {"elaborate", "map"};
  o.timings = {{"schedule", 0.5}, {"simulate", 1.0 / 3.0}};
  return mr;
}

TEST(JobIo, ResultsRoundTripIsBitExact) {
  std::vector<flow::ManifestResult> results;
  results.push_back(synthetic_result());
  flow::ManifestResult failed;
  failed.index = 2;
  failed.result.job = small_job("pr");
  failed.result.ok = false;
  failed.result.error = "multi word error\nwith a newline and 100% escapes";
  failed.result.seconds = 0.5;
  results.push_back(failed);

  std::ostringstream text;
  flow::save_results(text, results);
  std::istringstream in(text.str());
  const auto back = flow::load_results(in);
  ASSERT_EQ(back.size(), 2u);

  EXPECT_EQ(back[0].index, 7u);
  const flow::JobResult& orig = results[0].result;
  const flow::JobResult& got = back[0].result;
  EXPECT_TRUE(flow::same_outcome(orig, got));
  // Beyond same_outcome: execution metadata round-trips too.
  EXPECT_EQ(got.seconds, orig.seconds);
  EXPECT_EQ(got.group_size, 17u);
  EXPECT_EQ(got.outcome.bind_seconds, orig.outcome.bind_seconds);
  EXPECT_EQ(got.outcome.cached_stages, orig.outcome.cached_stages);
  ASSERT_EQ(got.outcome.timings.size(), 2u);
  EXPECT_EQ(got.outcome.timings[1].name, "simulate");
  EXPECT_EQ(got.outcome.timings[1].seconds, 1.0 / 3.0);
  // The refined binding is reconstituted from the outcome's fus.
  EXPECT_EQ(got.outcome.refine.fus.fu_of_op, orig.outcome.fus.fu_of_op);

  EXPECT_EQ(back[1].index, 2u);
  EXPECT_FALSE(back[1].result.ok);
  EXPECT_EQ(back[1].result.error, failed.result.error);
}

TEST(JobIo, TruncatedAndCorruptResultsRejected) {
  std::vector<flow::ManifestResult> results = {synthetic_result()};
  std::ostringstream text;
  flow::save_results(text, results);
  const std::string full = text.str();

  // Any prefix that cuts a record or the footer must throw, not return a
  // partial vector — this is how a parent detects a worker that died
  // mid-write.
  for (const double frac : {0.2, 0.5, 0.9}) {
    std::istringstream cut(
        full.substr(0, static_cast<std::size_t>(full.size() * frac)));
    EXPECT_THROW(flow::load_results(cut), Error) << "fraction " << frac;
  }
  std::istringstream missing_footer(full.substr(0, full.rfind("end ")));
  EXPECT_THROW(flow::load_results(missing_footer), Error);

  std::string corrupt = full;
  corrupt.replace(corrupt.find("toggles"), 7, "goggles");
  std::istringstream bad(corrupt);
  EXPECT_THROW(flow::load_results(bad), Error);

  std::istringstream not_results("hlp-manifest v1\ncount 0\n");
  EXPECT_THROW(flow::load_results(not_results), Error);
}

TEST(JobIo, UnitRequestFrameRoundTripQuitAndTruncation) {
  std::vector<flow::ManifestJob> jobs;
  flow::ManifestJob a;
  a.index = 42;
  a.job = small_job("pr");
  a.job.seed = 0x0123456789abcdefull;
  a.job.label = "unit label with % and spaces";
  jobs.push_back(a);

  std::ostringstream text;
  flow::save_unit_request(text, 9, jobs);
  const std::string full = text.str();

  std::istringstream in(full);
  const flow::UnitRequest back = flow::load_unit_request(in);
  EXPECT_FALSE(back.quit);
  EXPECT_EQ(back.id, 9u);
  ASSERT_EQ(back.jobs.size(), 1u);
  EXPECT_EQ(back.jobs[0].index, 42u);
  EXPECT_EQ(back.jobs[0].job.seed, 0x0123456789abcdefull);
  EXPECT_EQ(back.jobs[0].job.label, "unit label with % and spaces");

  // EOF and an explicit quit line both end the session cleanly.
  std::istringstream eof("");
  EXPECT_TRUE(flow::load_unit_request(eof).quit);
  std::ostringstream quit_text;
  flow::save_unit_quit(quit_text);
  std::istringstream quit_in(quit_text.str());
  EXPECT_TRUE(flow::load_unit_request(quit_in).quit);

  // A frame cut anywhere inside the body or trailer throws — a serve
  // worker whose parent died mid-write must not run a partial unit.
  for (const double frac : {0.3, 0.6, 0.95}) {
    std::istringstream cut(
        full.substr(0, static_cast<std::size_t>(full.size() * frac)));
    EXPECT_THROW(flow::load_unit_request(cut), Error) << "fraction " << frac;
  }
  // A trailer answering the wrong unit throws too.
  std::string wrong = full;
  wrong.replace(wrong.rfind("endunit 9"), 9, "endunit 8");
  std::istringstream wrong_in(wrong);
  EXPECT_THROW(flow::load_unit_request(wrong_in), Error);
}

TEST(JobIo, UnitResponseFrameRoundTripAndTruncation) {
  std::vector<flow::ManifestResult> results = {synthetic_result()};
  std::ostringstream text;
  flow::save_unit_response(text, 31, results);
  const std::string full = text.str();

  std::istringstream in(full);
  const flow::UnitResponse back = flow::load_unit_response(in);
  EXPECT_EQ(back.id, 31u);
  ASSERT_EQ(back.results.size(), 1u);
  EXPECT_EQ(back.results[0].index, 7u);
  EXPECT_TRUE(
      flow::same_outcome(results[0].result, back.results[0].result));

  for (const double frac : {0.2, 0.5, 0.9}) {
    std::istringstream cut(
        full.substr(0, static_cast<std::size_t>(full.size() * frac)));
    EXPECT_THROW(flow::load_unit_response(cut), Error) << "fraction " << frac;
  }
  std::istringstream not_a_response("quit\n");
  EXPECT_THROW(flow::load_unit_response(not_a_response), Error);
  std::string wrong = full;
  wrong.replace(wrong.rfind("endunit 31"), 10, "endunit 30");
  std::istringstream wrong_in(wrong);
  EXPECT_THROW(flow::load_unit_response(wrong_in), Error);
}

// ---- the distributed == threaded property --------------------------------

TEST(Distributed, BitIdenticalToThreadedRunnerOnRandomGrid) {
  const std::vector<flow::Job> jobs = property_grid();

  flow::ExperimentRunner threaded(3);
  const auto want = threaded.run(jobs);

  // HLP_WORKERS can raise the worker count (the CI distributed leg pins
  // it to 2); the slices then cut the shuffled grid at different points,
  // which must not change a single bit of any result.
  flow::DistributedRunner dist(flow::workers_from_env(2), 2);
  const auto got = dist.run(jobs);

  ASSERT_EQ(got.size(), want.size());
  std::size_t failed_jobs = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(flow::same_outcome(want[i], got[i]))
        << "job " << i << " (" << jobs[i].benchmark << "/"
        << jobs[i].binder.name << " seed " << jobs[i].seed
        << ") diverged; distributed error: '" << got[i].error << "'";
    EXPECT_EQ(got[i].job.seed, jobs[i].seed);
    failed_jobs += got[i].ok ? 0 : 1;
  }
  // Exactly the bad-benchmark job fails, identically on both sides.
  EXPECT_EQ(failed_jobs, 1u);
}

TEST(Distributed, StreamStaticAndThreadedAgreeOnRandomGrid) {
  // The dispatch knob only changes scheduling: on the same randomized
  // 100+ job grid, work-stealing streaming, contiguous static slices and
  // the in-process threaded runner must agree on every bit of every
  // result, no matter which worker pulled which unit.
  const std::vector<flow::Job> jobs = property_grid();

  flow::ExperimentRunner threaded(3);
  const auto want = threaded.run(jobs);

  flow::DistributedRunner stat(2, 2);
  stat.set_dispatch(flow::DispatchMode::kStatic);
  const auto got_static = stat.run(jobs);

  flow::DistributedRunner stream(2, 2);
  stream.set_dispatch(flow::DispatchMode::kStream);
  const auto got_stream = stream.run(jobs);

  ASSERT_EQ(got_static.size(), want.size());
  ASSERT_EQ(got_stream.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_TRUE(flow::same_outcome(want[i], got_static[i]))
        << "job " << i << " diverged threaded vs static; static error: '"
        << got_static[i].error << "'";
    EXPECT_TRUE(flow::same_outcome(want[i], got_stream[i]))
        << "job " << i << " (" << jobs[i].benchmark << "/"
        << jobs[i].binder.name << " seed " << jobs[i].seed
        << ") diverged threaded vs stream; stream error: '"
        << got_stream[i].error << "'";
    // Streaming reports the full seed-group size the threaded runner
    // would, not the chunk the worker happened to see.
    EXPECT_EQ(got_stream[i].group_size, want[i].group_size) << "job " << i;
  }
}

TEST(Distributed, WorkersInheritSettleModeAndStayBitIdentical) {
  // Jobs pinned to the levelized engine must carry that mode through the
  // manifest into the worker processes — and because the two settle
  // engines are bit-identical, a levelized distributed run must match an
  // event-driven in-process run on every bit.
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 9; ++s) seeds.push_back(700 + s);
  flow::Job base = small_job("pr");
  base.settle = SettleMode::kLevel;
  const auto jobs = flow::ExperimentRunner::grid(
      {"pr", "wang"}, {flow::BinderSpec{"hlpower"}}, seeds, {}, base);

  flow::Job event_base = small_job("pr");
  event_base.settle = SettleMode::kEvent;
  const auto event_jobs = flow::ExperimentRunner::grid(
      {"pr", "wang"}, {flow::BinderSpec{"hlpower"}}, seeds, {}, event_base);
  flow::ExperimentRunner threaded(2);
  const auto want = threaded.run(event_jobs);

  flow::DistributedRunner dist(2, 2);
  const auto got = dist.run(jobs);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(got[i].ok) << got[i].error;
    // The worker echoes the job back through the results file: the settle
    // mode it actually ran with, not a default.
    EXPECT_EQ(got[i].job.settle, SettleMode::kLevel) << "job " << i;
    EXPECT_TRUE(flow::same_outcome(want[i], got[i]))
        << "job " << i << " diverged between levelized workers and the "
        << "event-driven threaded runner";
  }
}

TEST(Distributed, WorkersInheritSaModeAndStayBitIdentical) {
  // Jobs pinned to the exact SA backend ride the manifest's `sa=` field
  // into the workers. The backend changes binding VALUES, so the only
  // valid reference is an in-process run of the SAME mode — which must
  // match on every bit (the exact engine is deterministic), proving the
  // workers ran the parent's backend and not their environment's default.
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 5; ++s) seeds.push_back(900 + s);
  flow::Job base = small_job("pr");
  base.sa = SaMode::kExact;
  const auto jobs = flow::ExperimentRunner::grid(
      {"pr"}, {flow::BinderSpec{"hlpower"}}, seeds, {}, base);

  flow::ExperimentRunner threaded(2);
  const auto want = threaded.run(jobs);
  flow::DistributedRunner dist(2, 2);
  const auto got = dist.run(jobs);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(got[i].ok) << got[i].error;
    // The worker echoes the job back: the mode it actually ran with.
    ASSERT_TRUE(got[i].job.sa.has_value()) << "job " << i;
    EXPECT_EQ(*got[i].job.sa, SaMode::kExact) << "job " << i;
    EXPECT_TRUE(flow::same_outcome(want[i], got[i]))
        << "job " << i
        << " diverged between exact-mode workers and the exact-mode "
        << "threaded runner";
  }
}

TEST(Distributed, SingleWorkerFallsBackInProcess) {
  const std::vector<flow::Job> jobs = {small_job("pr"), small_job("wang")};
  flow::DistributedRunner dist(1, 2);
  // No process is spawned on the fallback path: an unusable worker binary
  // must not matter.
  dist.set_worker_binary("/does/not/exist");
  const auto got = dist.run(jobs);
  flow::ExperimentRunner threaded(2);
  const auto want = threaded.run(jobs);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_TRUE(flow::same_outcome(want[i], got[i])) << "job " << i;
}

TEST(Distributed, SingleJobGridDoesNotSpawn) {
  flow::DistributedRunner dist(4, 1);
  dist.set_worker_binary("/does/not/exist");
  const auto got = dist.run({small_job("pr")});
  ASSERT_EQ(got.size(), 1u);
  EXPECT_TRUE(got[0].ok) << got[0].error;
}

// ---- worker failure propagation ------------------------------------------

std::vector<flow::JobResult> run_with_fake_worker(
    const std::string& script, double timeout = 0.0,
    flow::DispatchMode dispatch = flow::DispatchMode::kAuto) {
  flow::DistributedRunner dist(2, 1);
  dist.set_dispatch(dispatch);
  dist.set_worker_binary(script);
  if (timeout > 0.0) dist.set_timeout(timeout);
  return dist.run({small_job("pr"), small_job("wang"), small_job("pr")});
}

TEST(Distributed, NonzeroExitPropagatesToEveryJobOfTheSlice) {
  const std::string script = write_fake_worker(
      "worker_exit3.sh", "echo doom from the worker >&2\nexit 3");
  const auto got = run_with_fake_worker(script);
  ASSERT_EQ(got.size(), 3u);
  for (const auto& r : got) {
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("exited with status 3"), std::string::npos)
        << r.error;
    // The worker's captured stderr rides along for debuggability.
    EXPECT_NE(r.error.find("doom from the worker"), std::string::npos)
        << r.error;
  }
}

TEST(Distributed, KilledWorkerPropagatesSignal) {
  const std::string script =
      write_fake_worker("worker_kill9.sh", "kill -9 $$");
  const auto got = run_with_fake_worker(script);
  ASSERT_EQ(got.size(), 3u);
  for (const auto& r : got) {
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("killed by signal 9"), std::string::npos)
        << r.error;
  }
}

TEST(Distributed, TruncatedResultsFilePropagates) {
  // A worker that exits 0 but leaves a results file with no records and
  // no footer — e.g. one that died in a way the OS reported as success.
  // This is a batch-protocol (v1 results file) defect, so the test pins
  // static dispatch; the streaming analogue is the truncated-frame and
  // invalid-response coverage below.
  const std::string script = write_fake_worker(
      "worker_truncate.sh",
      "out=\"\"\n"
      "while [ $# -gt 0 ]; do\n"
      "  if [ \"$1\" = \"--results\" ]; then out=\"$2\"; fi\n"
      "  shift\n"
      "done\n"
      "printf 'hlp-results v1\\ncount 2\\n' > \"$out\"\n"
      "exit 0");
  const auto got =
      run_with_fake_worker(script, 0.0, flow::DispatchMode::kStatic);
  ASSERT_EQ(got.size(), 3u);
  for (const auto& r : got) {
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("unreadable results"), std::string::npos)
        << r.error;
  }
}

TEST(Distributed, HungWorkerTimesOutAndIsKilled) {
  const std::string script = write_fake_worker("worker_hang.sh", "sleep 30");
  const auto t0 = std::chrono::steady_clock::now();
  const auto got = run_with_fake_worker(script, 0.3);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_EQ(got.size(), 3u);
  for (const auto& r : got) {
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("timed out"), std::string::npos) << r.error;
  }
  EXPECT_LT(elapsed, 10.0) << "workers were not killed at the deadline";
}

// ---- streaming-dispatch fault handling -----------------------------------

TEST(Distributed, StreamCrashRequeuesThenNamesUnitAndAttempts) {
  // Every spawn dies mid-stream: each unit is retried on a replacement
  // worker, then reports a per-job error naming the unit, the attempt
  // count and the worker's captured stderr.
  const std::string script = write_fake_worker(
      "stream_exit3.sh", "echo doom from the worker >&2\nexit 3");
  const auto got =
      run_with_fake_worker(script, 0.0, flow::DispatchMode::kStream);
  ASSERT_EQ(got.size(), 3u);
  for (const auto& r : got) {
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("streaming unit"), std::string::npos) << r.error;
    EXPECT_NE(r.error.find("failed after 2 attempt(s)"), std::string::npos)
        << r.error;
    EXPECT_NE(r.error.find("exited with status 3"), std::string::npos)
        << r.error;
    EXPECT_NE(r.error.find("doom from the worker"), std::string::npos)
        << r.error;
  }
}

TEST(Distributed, StreamKill9RequeuesThenPropagatesSignal) {
  const std::string script =
      write_fake_worker("stream_kill9.sh", "kill -9 $$");
  const auto got =
      run_with_fake_worker(script, 0.0, flow::DispatchMode::kStream);
  ASSERT_EQ(got.size(), 3u);
  for (const auto& r : got) {
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("killed by signal 9"), std::string::npos)
        << r.error;
    EXPECT_NE(r.error.find("attempt(s)"), std::string::npos) << r.error;
  }
}

TEST(Distributed, StreamInvalidResponseFrameKillsAndRetries) {
  // A worker that answers with a well-framed but bodiless response: the
  // frame parses up to the trailer, the inner results parse throws, the
  // parent kills the worker and charges the unit an attempt.
  const std::string script = write_fake_worker(
      "stream_garbage.sh",
      "printf 'unitdone 0\\nendunit 0\\n'\n"
      "sleep 30");
  const auto t0 = std::chrono::steady_clock::now();
  const auto got =
      run_with_fake_worker(script, 0.0, flow::DispatchMode::kStream);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_EQ(got.size(), 3u);
  for (const auto& r : got) {
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("invalid unit response"), std::string::npos)
        << r.error;
  }
  EXPECT_LT(elapsed, 10.0) << "protocol violators were not killed";
}

TEST(Distributed, StreamHungUnitTimesOutPerUnit) {
  // Streaming timeouts are per unit: a hung worker costs its unit one
  // attempt (plus the retry), never the whole run.
  const std::string script =
      write_fake_worker("stream_hang.sh", "sleep 30");
  const auto t0 = std::chrono::steady_clock::now();
  const auto got =
      run_with_fake_worker(script, 0.3, flow::DispatchMode::kStream);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_EQ(got.size(), 3u);
  for (const auto& r : got) {
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("timed out"), std::string::npos) << r.error;
    EXPECT_NE(r.error.find("attempt(s)"), std::string::npos) << r.error;
  }
  EXPECT_LT(elapsed, 10.0) << "hung workers were not killed per unit";
}

TEST(Distributed, StreamRequeueRecoversOnHealthyReplacement) {
  // Exactly one spawn crashes (mkdir is the atomic test-and-set); every
  // later spawn execs the real worker. The crashed worker's in-flight
  // unit must land on a replacement and succeed — same bits as the
  // threaded runner, no error anywhere.
  const std::string real = real_worker_binary();
  ASSERT_EQ(::access(real.c_str(), X_OK), 0)
      << "hlp_worker not built next to the test binary";
  const std::string lock = ::testing::TempDir() + "/stream_flaky.lock";
  std::filesystem::remove_all(lock);
  const std::string script = write_fake_worker(
      "stream_flaky.sh",
      "if mkdir '" + lock +
          "' 2>/dev/null; then\n"
          "  echo first spawn dies >&2\n"
          "  exit 7\n"
          "fi\n"
          "exec '" +
          real + "' \"$@\"");

  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 5; ++s) seeds.push_back(800 + s);
  const auto jobs = flow::ExperimentRunner::grid(
      {"pr", "wang"}, {flow::BinderSpec{"hlpower"}}, seeds, {},
      small_job("pr"));
  flow::ExperimentRunner threaded(2);
  const auto want = threaded.run(jobs);

  flow::DistributedRunner dist(2, 1);
  dist.set_dispatch(flow::DispatchMode::kStream);
  dist.set_worker_binary(script);
  const auto got = dist.run(jobs);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(got[i].ok) << "job " << i << ": " << got[i].error;
    EXPECT_TRUE(flow::same_outcome(want[i], got[i])) << "job " << i;
  }
}

// ---- the serve loop, driven directly over pipes --------------------------

TEST(Distributed, ServeLoopStaysWarmAcrossUnitsAndFlushesSaOnce) {
  const std::string bin = real_worker_binary();
  ASSERT_EQ(::access(bin.c_str(), X_OK), 0)
      << "hlp_worker not built next to the test binary";
  const std::string prefix = ::testing::TempDir() + "/serve_sa";
  // The units defer their SA mode, so the manifest pins whatever the
  // environment resolves to and the shard lands in that mode's file
  // (`.exact`-suffixed under the exact-mode CI leg).
  const SaMode sa_mode = effective_sa_mode(std::nullopt);
  const std::string shard = prefix + flow::sa_cache_file_suffix(kWidth, sa_mode);
  std::remove(shard.c_str());

  int to_child[2], from_child[2];
  ASSERT_EQ(::pipe(to_child), 0);
  ASSERT_EQ(::pipe(from_child), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::dup2(to_child[0], 0);
    ::dup2(from_child[1], 1);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    ::execl(bin.c_str(), bin.c_str(), "--serve", "--sa-out", prefix.c_str(),
            "--coalesce", "1", static_cast<char*>(nullptr));
    _exit(127);
  }
  ::close(to_child[0]);
  ::close(from_child[1]);

  auto send = [&](const std::string& s) {
    ASSERT_EQ(::write(to_child[1], s.data(), s.size()),
              static_cast<ssize_t>(s.size()));
  };
  // Blocking read until one complete frame (through its `endunit` line)
  // has arrived.
  auto read_frame = [&]() {
    std::string buf;
    char chunk[4096];
    while (true) {
      const std::size_t tail = buf.rfind("endunit ");
      if (tail != std::string::npos &&
          (tail == 0 || buf[tail - 1] == '\n') &&
          buf.find('\n', tail) != std::string::npos)
        return buf;
      const ssize_t got = ::read(from_child[0], chunk, sizeof(chunk));
      if (got <= 0) return buf;  // EOF: let the parse report the defect
      buf.append(chunk, static_cast<std::size_t>(got));
    }
  };

  flow::Job first = small_job("pr");
  first.seed = 900;
  flow::Job second = small_job("pr");
  second.seed = 901;

  std::ostringstream req0;
  flow::save_unit_request(req0, 0, {{5, first}});
  send(req0.str());
  std::istringstream in0(read_frame());
  const flow::UnitResponse r0 = flow::load_unit_response(in0);
  EXPECT_EQ(r0.id, 0u);
  ASSERT_EQ(r0.results.size(), 1u);
  EXPECT_EQ(r0.results[0].index, 5u);
  EXPECT_TRUE(r0.results[0].result.ok) << r0.results[0].result.error;
  // A fresh worker computed everything for its first unit.
  EXPECT_TRUE(r0.results[0].result.outcome.cached_stages.empty());
  // The SA shard is flushed once at exit — not after each unit.
  EXPECT_FALSE(std::filesystem::exists(shard));

  std::ostringstream req1;
  flow::save_unit_request(req1, 1, {{6, second}});
  send(req1.str());
  std::istringstream in1(read_frame());
  const flow::UnitResponse r1 = flow::load_unit_response(in1);
  EXPECT_EQ(r1.id, 1u);
  ASSERT_EQ(r1.results.size(), 1u);
  EXPECT_TRUE(r1.results[0].result.ok) << r1.results[0].result.error;
  // Same design, new stimulus seed: the second unit rides the warm
  // StageCaches the first one populated — the whole point of a
  // long-lived serve worker.
  EXPECT_FALSE(r1.results[0].result.outcome.cached_stages.empty());

  // Both units answer with the bits the in-process runner produces.
  flow::ExperimentRunner local(1);
  const auto want = local.run({first, second});
  EXPECT_TRUE(flow::same_outcome(want[0], r0.results[0].result));
  EXPECT_TRUE(flow::same_outcome(want[1], r1.results[0].result));

  std::ostringstream quit;
  flow::save_unit_quit(quit);
  send(quit.str());
  ::close(to_child[1]);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  ::close(from_child[0]);

  // Now — and only now — the shard exists, is complete, and holds the
  // tables both units contributed to.
  ASSERT_TRUE(std::filesystem::exists(shard));
  SaCache reloaded(kWidth, MapParams{}, sa_mode);
  reloaded.load_file(shard);
  EXPECT_GT(reloaded.size(), 0u);
}

// ---- SA-table shard merging through the distributed path -----------------

TEST(Distributed, SaShardsMergeIntoWarmStartFile) {
  const std::string prefix = ::testing::TempDir() + "/dist_sa_cache";
  const SaMode sa_mode = effective_sa_mode(std::nullopt);
  const std::string file = prefix + flow::sa_cache_file_suffix(kWidth, sa_mode);
  std::remove(file.c_str());

  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 6; ++s) seeds.push_back(500 + s);
  const auto jobs = flow::ExperimentRunner::grid(
      {"pr", "wang"}, {flow::BinderSpec{"hlpower"}}, seeds, {},
      small_job("pr"));

  flow::DistributedRunner dist(2, 1);
  // Pin the cold SA compute in every worker: opt out of any ambient
  // HLP_STORE (the CI artifact-store leg), whose warm artifacts would
  // skip the SA work this shard-merge test asserts.
  dist.set_store_dir("");
  dist.set_sa_cache_path(prefix);
  const auto got = dist.run(jobs);
  for (const auto& r : got) EXPECT_TRUE(r.ok) << r.error;

  // The parent merged every worker's shard and persisted the union.
  EXPECT_GT(dist.local().sa_cache(kWidth).size(), 0u);
  SaCache reloaded(kWidth, MapParams{}, sa_mode);
  reloaded.load_file(file);
  EXPECT_EQ(reloaded.size(), dist.local().sa_cache(kWidth).size());

  // The merged table is a valid shard itself: merging it into a fresh
  // cache of the same mode inserts everything; merging twice inserts
  // nothing new.
  SaCache fresh(kWidth, MapParams{}, sa_mode);
  EXPECT_EQ(fresh.merge_from(file), reloaded.size());
  EXPECT_EQ(fresh.merge_from(file), 0u);
  EXPECT_EQ(fresh.misses(), 0u);
}

// ---- shared artifact store -----------------------------------------------

TEST(Distributed, SharedStoreSurvivesConcurrentRunnersAndWarmsTheRerun) {
  // The concurrency property: two in-process threaded runners (on their
  // own std::threads) and a 2-worker distributed fleet all publish the
  // SAME overlapping keys into one store, concurrently. Atomic
  // write-then-rename plus overlap-must-agree means the dogpile must
  // produce one consistent store — every committed object strictly valid
  // at its content address — and every participant must still be
  // bit-identical to a store-less reference run. A warm rerun of the
  // same randomized grid then comes off disk wholesale.
  const std::vector<flow::Job> jobs = property_grid();
  flow::ExperimentRunner reference(3);
  const auto want = reference.run(jobs);

  const std::string dir = ::testing::TempDir() + "/dist_store";
  std::filesystem::remove_all(dir);

  std::vector<flow::JobResult> r1, r2, rd;
  {
    flow::ExperimentRunner a(2), b(2);
    a.set_store_dir(dir);
    b.set_store_dir(dir);
    flow::DistributedRunner fleet(2, 2);
    fleet.set_store_dir(dir);
    std::thread ta([&] { r1 = a.run(jobs); });
    std::thread tb([&] { r2 = b.run(jobs); });
    rd = fleet.run(jobs);
    ta.join();
    tb.join();
  }
  ASSERT_EQ(r1.size(), want.size());
  ASSERT_EQ(r2.size(), want.size());
  ASSERT_EQ(rd.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_TRUE(flow::same_outcome(want[i], r1[i]))
        << "thread A diverged on job " << i << ": '" << r1[i].error << "'";
    EXPECT_TRUE(flow::same_outcome(want[i], r2[i]))
        << "thread B diverged on job " << i << ": '" << r2[i].error << "'";
    EXPECT_TRUE(flow::same_outcome(want[i], rd[i]))
        << "fleet diverged on job " << i << ": '" << rd[i].error << "'";
  }

  // One consistent store: merge_from is the strict auditor — it refuses
  // on any entry that is corrupt, misplaced or conflicting, so a clean
  // full-count merge certifies every object the dogpile committed.
  const std::string audit_root = ::testing::TempDir() + "/dist_store_audit";
  std::filesystem::remove_all(audit_root);
  store::ArtifactStore audit(audit_root);
  const std::size_t merged = audit.merge_from(dir);
  EXPECT_GT(merged, 0u);
  EXPECT_EQ(merged, audit.size());

  // Warm rerun from a fresh runner: bit-identical, the cached span served
  // from disk for every job that can hit (the bad-benchmark job still
  // fails with the same error, and nothing needed repair).
  flow::ExperimentRunner warm(2);
  warm.set_store_dir(dir);
  const auto got = warm.run(jobs);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_TRUE(flow::same_outcome(want[i], got[i]))
        << "warm rerun diverged on job " << i << ": '" << got[i].error << "'";
    if (got[i].ok) {
      EXPECT_FALSE(got[i].outcome.cached_stages.empty()) << "job " << i;
      EXPECT_NE(std::find(got[i].outcome.cached_stages.begin(),
                          got[i].outcome.cached_stages.end(), "elaborate"),
                got[i].outcome.cached_stages.end())
          << "job " << i;
    }
  }
  ASSERT_NE(warm.artifact_store(), nullptr);
  EXPECT_GT(warm.artifact_store()->hits(), 0u);
  EXPECT_EQ(warm.artifact_store()->rejected(), 0u);
  EXPECT_EQ(warm.artifact_store()->publishes(), 0u);
}

}  // namespace
}  // namespace hlp
