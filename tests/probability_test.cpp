// Tests for the probabilistic primitives of Section 4: signal probability,
// Boolean-difference probability (Najm, Eq. 1) and the Chou-Roy
// simultaneous-switching activity (Eq. 2). Several results are checked
// against hand-derived closed forms.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "netlist/modules.hpp"
#include "power/probability.hpp"

namespace hlp {
namespace {

TEST(Probability, And2) {
  EXPECT_DOUBLE_EQ(lut_probability(TruthTable::and2(), {0.5, 0.5}), 0.25);
  EXPECT_DOUBLE_EQ(lut_probability(TruthTable::and2(), {0.3, 0.7}), 0.21);
}

TEST(Probability, Or2AndXor2) {
  EXPECT_DOUBLE_EQ(lut_probability(TruthTable::or2(), {0.5, 0.5}), 0.75);
  // P(xor) = p(1-q) + q(1-p)
  EXPECT_NEAR(lut_probability(TruthTable::xor2(), {0.3, 0.8}),
              0.3 * 0.2 + 0.8 * 0.7, 1e-12);
}

TEST(Probability, Inverter) {
  EXPECT_DOUBLE_EQ(lut_probability(TruthTable::not1(), {0.2}), 0.8);
}

TEST(Probability, Constants) {
  EXPECT_DOUBLE_EQ(lut_probability(TruthTable::const1(), {}), 1.0);
  EXPECT_DOUBLE_EQ(lut_probability(TruthTable::const0(), {}), 0.0);
}

TEST(Probability, ExtremeInputs) {
  EXPECT_DOUBLE_EQ(lut_probability(TruthTable::and2(), {1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(lut_probability(TruthTable::and2(), {0.0, 1.0}), 0.0);
}

TEST(BooleanDifference, Xor2IsAlwaysSensitive) {
  // d(xor)/da = 1 for any b.
  EXPECT_DOUBLE_EQ(boolean_difference_prob(TruthTable::xor2(), 0, {0.5, 0.5}),
                   1.0);
  EXPECT_DOUBLE_EQ(boolean_difference_prob(TruthTable::xor2(), 1, {0.9, 0.1}),
                   1.0);
}

TEST(BooleanDifference, And2SensitiveWhenOtherIsOne) {
  // d(ab)/da = b, so P = P(b).
  EXPECT_DOUBLE_EQ(boolean_difference_prob(TruthTable::and2(), 0, {0.5, 0.7}),
                   0.7);
  EXPECT_DOUBLE_EQ(boolean_difference_prob(TruthTable::and2(), 1, {0.2, 0.9}),
                   0.2);
}

TEST(JointProb, QuietInputsGiveStaticJoint) {
  // With zero switching, P(y(t)y(t+T)) = P(y).
  for (const TruthTable& tt :
       {TruthTable::and2(), TruthTable::or2(), TruthTable::xor2()}) {
    const std::vector<double> p{0.4, 0.6};
    EXPECT_NEAR(lut_joint_prob(tt, p, {0.0, 0.0}), lut_probability(tt, p),
                1e-12);
  }
}

TEST(SwitchingActivity, QuietInputsNoOutput) {
  EXPECT_DOUBLE_EQ(
      lut_switching_activity(TruthTable::and2(), {0.4, 0.6}, {0.0, 0.0}), 0.0);
}

TEST(SwitchingActivity, BufferPassesActivity) {
  EXPECT_NEAR(lut_switching_activity(TruthTable::buf(), {0.5}, {0.3}), 0.3,
              1e-12);
  EXPECT_NEAR(lut_switching_activity(TruthTable::not1(), {0.5}, {0.3}), 0.3,
              1e-12);
}

TEST(SwitchingActivity, Xor2ClosedForm) {
  // For independent inputs: s(y) = s1(1-s2) + s2(1-s1) for XOR.
  const double s1 = 0.4, s2 = 0.2;
  EXPECT_NEAR(
      lut_switching_activity(TruthTable::xor2(), {0.5, 0.5}, {s1, s2}),
      s1 * (1 - s2) + s2 * (1 - s1), 1e-12);
}

TEST(SwitchingActivity, And2ClosedForm) {
  // Najm-style: with P=0.5 inputs, s(ab) via exact pairwise enumeration;
  // cross-check the closed form s = s1*P(b held) ... computed by hand:
  // p11 = 0.5 - s/2 per input. P(y)=0.25.
  const double s1 = 0.3, s2 = 0.3;
  // joint = P(a1 a2 a1' a2') summed: independence per input.
  const double a11 = 0.5 - s1 / 2;  // P(a=1,a'=1)
  const double b11 = 0.5 - s2 / 2;
  const double expected = 2 * (0.25 - a11 * b11);
  EXPECT_NEAR(
      lut_switching_activity(TruthTable::and2(), {0.5, 0.5}, {s1, s2}),
      expected, 1e-12);
}

TEST(SwitchingActivity, MonotoneInInputActivity) {
  double prev = 0.0;
  for (double s = 0.0; s <= 1.0; s += 0.1) {
    const double cur =
        lut_switching_activity(TruthTable::and2(), {0.5, 0.5}, {s, 0.0});
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
}

TEST(SwitchingActivity, ClampedToValidRange) {
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const std::vector<double> p{rng.uniform(), rng.uniform(), rng.uniform()};
    const std::vector<double> a{rng.uniform(), rng.uniform(), rng.uniform()};
    for (const TruthTable& tt :
         {TruthTable::maj3(), TruthTable::xor3(), TruthTable::mux2()}) {
      const double s = lut_switching_activity(tt, p, a);
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
    }
  }
}

TEST(NetlistProbabilities, PropagatesThroughAdder) {
  const Netlist add = make_adder(4);
  const auto p = netlist_probabilities(add);
  // Sum bit 0 is a XOR of two 0.5 inputs: exactly 0.5.
  EXPECT_NEAR(p[add.find_net("s0")], 0.5, 1e-9);
  for (double v : p) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(NetlistProbabilities, SourceOverride) {
  Netlist n("t");
  const NetId a = n.add_input("a");
  const NetId y = n.add_gate_net("y", {a}, TruthTable::buf());
  n.add_output(y);
  const auto p = netlist_probabilities(n, 0.9);
  EXPECT_DOUBLE_EQ(p[y], 0.9);
}

// Monte-Carlo cross-check: probability propagation matches simulation on a
// random single-LUT function (independence holds exactly at one level).
class ProbabilityMc : public ::testing::TestWithParam<int> {};

TEST_P(ProbabilityMc, MatchesSampling) {
  Rng rng(GetParam() + 500);
  const int k = rng.range(1, 4);
  const TruthTable tt(k, rng.next_u64());
  std::vector<double> p(k);
  for (auto& x : p) x = 0.1 + 0.8 * rng.uniform();
  const double predicted = lut_probability(tt, p);
  int hits = 0;
  const int kTrials = 40000;
  for (int t = 0; t < kTrials; ++t) {
    std::uint32_t m = 0;
    for (int j = 0; j < k; ++j)
      if (rng.chance(p[j])) m |= 1u << j;
    hits += tt.eval(m);
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, predicted, 0.02)
      << "k=" << k << " tt=" << tt.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProbabilityMc, ::testing::Range(0, 12));

}  // namespace
}  // namespace hlp
