// Tests for BLIF read/write round-trips and the .subckt flattening
// machinery (Figure 2's partial-datapath generation path).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "netlist/blif.hpp"
#include "netlist/modules.hpp"
#include "rtl/partial_datapath.hpp"
#include "sim/simulator.hpp"

namespace hlp {
namespace {

// Zero-delay functional evaluation over all inputs as one word.
std::uint64_t eval_all(const Netlist& n, std::uint64_t input_bits) {
  UnitDelaySimulator sim(n);
  for (std::size_t j = 0; j < n.inputs().size(); ++j)
    sim.set_input(n.inputs()[j], (input_bits >> j) & 1u);
  sim.clock_edge();
  sim.settle_zero_delay(false);
  std::uint64_t out = 0;
  for (std::size_t j = 0; j < n.outputs().size(); ++j)
    if (sim.value(n.outputs()[j])) out |= 1ull << j;
  return out;
}

TEST(Blif, WriteContainsStructure) {
  const Netlist add = make_adder(2);
  const std::string s = blif_to_string(add);
  EXPECT_NE(s.find(".model add2"), std::string::npos);
  EXPECT_NE(s.find(".inputs a0 a1 b0 b1"), std::string::npos);
  EXPECT_NE(s.find(".outputs s0 s1"), std::string::npos);
  EXPECT_NE(s.find(".names"), std::string::npos);
  EXPECT_NE(s.find(".end"), std::string::npos);
}

class BlifRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(BlifRoundTrip, ModulesSurviveFunctionally) {
  Netlist orig = [&] {
    switch (GetParam()) {
      case 0:
        return make_adder(3);
      case 1:
        return make_multiplier(3);
      case 2:
        return make_mux(4, 2);
      default:
        return make_mux(3, 3);
    }
  }();
  const Netlist back = blif_from_string(blif_to_string(orig));
  EXPECT_EQ(back.inputs().size(), orig.inputs().size());
  EXPECT_EQ(back.outputs().size(), orig.outputs().size());
  const int bits = static_cast<int>(orig.inputs().size());
  Rng rng(GetParam());
  for (int i = 0; i < 40; ++i) {
    const std::uint64_t v = rng.next_u64() & ((1ull << bits) - 1);
    EXPECT_EQ(eval_all(orig, v), eval_all(back, v)) << "inputs " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Modules, BlifRoundTrip, ::testing::Range(0, 4));

TEST(Blif, ParsesDashCover) {
  // f = a OR b written with dashes.
  const Netlist n = blif_from_string(
      ".model t\n.inputs a b\n.outputs f\n.names a b f\n1- 1\n-1 1\n.end\n");
  EXPECT_EQ(eval_all(n, 0b00), 0u);
  EXPECT_EQ(eval_all(n, 0b01), 1u);
  EXPECT_EQ(eval_all(n, 0b10), 1u);
  EXPECT_EQ(eval_all(n, 0b11), 1u);
}

TEST(Blif, ParsesZeroPhaseCover) {
  // f = NOT(a AND b) via a 0-phase cover.
  const Netlist n = blif_from_string(
      ".model t\n.inputs a b\n.outputs f\n.names a b f\n11 0\n.end\n");
  EXPECT_EQ(eval_all(n, 0b11), 0u);
  EXPECT_EQ(eval_all(n, 0b01), 1u);
}

TEST(Blif, ParsesConstants) {
  const Netlist n = blif_from_string(
      ".model t\n.inputs a\n.outputs f g h\n.names f\n1\n.names g\n"
      "\n.names a h\n1 1\n.end\n");
  EXPECT_EQ(eval_all(n, 0b0) & 0b11, 0b01u);  // f=1, g=0
}

TEST(Blif, ParsesLatch) {
  const Netlist n = blif_from_string(
      ".model t\n.inputs d\n.outputs q\n.latch d q 0\n.end\n");
  EXPECT_EQ(n.num_latches(), 1);
  EXPECT_TRUE(n.is_latch_output(n.outputs()[0]));
}

TEST(Blif, ContinuationLines) {
  const Netlist n = blif_from_string(
      ".model t\n.inputs \\\na b\n.outputs f\n.names a b f\n11 1\n.end\n");
  EXPECT_EQ(n.inputs().size(), 2u);
}

TEST(Blif, SubcktFlattens) {
  BlifLibrary lib;
  lib.add(make_adder(2));
  const Netlist top = blif_from_string(
      ".search add2.blif\n"
      ".model top\n.inputs x0 x1 y0 y1\n.outputs z0 z1\n"
      ".subckt add2 a0=x0 a1=x1 b0=y0 b1=y1 s0=z0 s1=z1\n.end\n",
      lib);
  EXPECT_NO_THROW(top.validate());
  // 2+3 = 5 -> 1 (mod 4)
  EXPECT_EQ(eval_all(top, 0b1110), 0b01u);
}

TEST(Blif, SubcktUnknownModelThrows) {
  EXPECT_THROW(
      blif_from_string(".model t\n.inputs a\n.outputs z\n"
                       ".subckt nomodel x=a y=z\n.end\n"),
      Error);
}

TEST(Blif, SubcktUnboundInputThrows) {
  BlifLibrary lib;
  lib.add(make_adder(1));
  EXPECT_THROW(blif_from_string(".model t\n.inputs a\n.outputs z\n"
                                ".subckt add1 a0=a s0=z\n.end\n",
                                lib),
               Error);
}

TEST(Blif, MalformedInputsThrow) {
  EXPECT_THROW(blif_from_string(""), Error);                       // no model
  EXPECT_THROW(blif_from_string(".model a\n.model b\n.end\n"), Error);
  EXPECT_THROW(blif_from_string(".model t\n.foo\n.end\n"), Error);
  EXPECT_THROW(
      blif_from_string(".model t\n.inputs a\n.outputs z\n.end\n"), Error);
}

TEST(Blif, CoverArityMismatchThrows) {
  EXPECT_THROW(blif_from_string(".model t\n.inputs a b\n.outputs f\n"
                                ".names a b f\n111 1\n.end\n"),
               Error);
}

TEST(BlifLibrary, ContainsAndGet) {
  BlifLibrary lib;
  EXPECT_FALSE(lib.contains("add2"));
  lib.add(make_adder(2));
  EXPECT_TRUE(lib.contains("add2"));
  EXPECT_EQ(lib.get("add2").name(), "add2");
  EXPECT_THROW(lib.get("mult2"), Error);
}

TEST(PartialDatapath, BlifTextMatchesFigure2Shape) {
  const auto pd = make_partial_datapath_blif(OpKind::kMult, 2, 3, 2);
  EXPECT_NE(pd.blif.find(".search mux2x2.blif"), std::string::npos);
  EXPECT_NE(pd.blif.find(".search mux3x2.blif"), std::string::npos);
  EXPECT_NE(pd.blif.find(".search mult2.blif"), std::string::npos);
  EXPECT_NE(pd.blif.find(".model mult_2_3"), std::string::npos);
  EXPECT_NE(pd.blif.find(".subckt mux2x2"), std::string::npos);
  EXPECT_NE(pd.blif.find(".subckt mult2"), std::string::npos);
}

TEST(PartialDatapath, BlifFlattensToSameFunctionAsDirect) {
  const auto pd = make_partial_datapath_blif(OpKind::kAdd, 2, 2, 2);
  const Netlist from_blif = blif_from_string(pd.blif, pd.library);
  const Netlist direct = make_partial_datapath(OpKind::kAdd, 2, 2, 2);
  ASSERT_EQ(from_blif.inputs().size(), direct.inputs().size());
  Rng rng(31);
  const int bits = static_cast<int>(direct.inputs().size());
  for (int i = 0; i < 60; ++i) {
    const std::uint64_t v = rng.next_u64() & ((1ull << bits) - 1);
    EXPECT_EQ(eval_all(from_blif, v), eval_all(direct, v));
  }
}

TEST(PartialDatapath, DirectConnectionWhenSizeOne) {
  // nA = nB = 1: no mux gates at all, just the FU.
  const Netlist dp = make_partial_datapath(OpKind::kAdd, 1, 1, 4);
  const Netlist add = make_adder(4);
  EXPECT_EQ(dp.num_gates(), add.num_gates());
}

TEST(PartialDatapath, ComputesMuxedSum) {
  // 2-arm mux on A, 2-arm on B, width 2: pick arm 1 on both and add.
  const Netlist dp = make_partial_datapath(OpKind::kAdd, 2, 2, 2);
  // inputs: a_r0(2b) a_r1(2b) a_sel, b_r0 b_r1 b_sel.
  // a_r1 = 3, b_r1 = 2, selects = 1 -> 3 + 2 = 5 -> 01 mod 4.
  std::uint64_t bits = 0;
  bits |= 0b11ull << 2;  // a_r1 = 3
  bits |= 1ull << 4;     // a_sel = 1
  bits |= 0b10ull << 7;  // b_r1 = 2
  bits |= 1ull << 9;     // b_sel = 1
  EXPECT_EQ(eval_all(dp, bits), 0b01u);
}

}  // namespace
}  // namespace hlp
