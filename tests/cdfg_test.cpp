// Tests for the CDFG IR, its serialisation, and the benchmark generators
// (Table 1 profile fidelity).
#include <gtest/gtest.h>

#include "cdfg/benchmarks.hpp"
#include "cdfg/cdfg.hpp"
#include "cdfg/io.hpp"
#include "common/error.hpp"

namespace hlp {
namespace {

Cdfg tiny() {
  // out = (a + b) * (a + c)
  Cdfg g("tiny");
  const int a = g.add_input("a");
  const int b = g.add_input("b");
  const int c = g.add_input("c");
  const int s1 = g.add_op("s1", OpKind::kAdd, ValueRef::input(a), ValueRef::input(b));
  const int s2 = g.add_op("s2", OpKind::kAdd, ValueRef::input(a), ValueRef::input(c));
  const int m = g.add_op("m", OpKind::kMult, ValueRef::op(s1), ValueRef::op(s2));
  g.add_output("out", ValueRef::op(m));
  return g;
}

TEST(Cdfg, BasicCounts) {
  const Cdfg g = tiny();
  EXPECT_EQ(g.num_inputs(), 3);
  EXPECT_EQ(g.num_ops(), 3);
  EXPECT_EQ(g.num_outputs(), 1);
  EXPECT_EQ(g.num_ops_of_kind(OpKind::kAdd), 2);
  EXPECT_EQ(g.num_ops_of_kind(OpKind::kMult), 1);
  EXPECT_EQ(g.num_edges(), 7);
}

TEST(Cdfg, ValidatesCleanGraph) { EXPECT_NO_THROW(tiny().validate()); }

TEST(Cdfg, DepthOfChain) {
  const Cdfg g = tiny();
  EXPECT_EQ(g.depth(), 2);
  const auto d = g.op_depths();
  EXPECT_EQ(d[0], 1);
  EXPECT_EQ(d[2], 2);
}

TEST(Cdfg, DeadValueDetected) {
  Cdfg g("dead");
  const int a = g.add_input("a");
  const int b = g.add_input("b");
  g.add_op("unused", OpKind::kAdd, ValueRef::input(a), ValueRef::input(b));
  const int used = g.add_op("used", OpKind::kAdd, ValueRef::input(a),
                            ValueRef::input(b));
  g.add_output("o", ValueRef::op(used));
  EXPECT_THROW(g.validate(), Error);
  EXPECT_EQ(g.dead_values().size(), 1u);
}

TEST(Cdfg, ForwardReferenceRejected) {
  Cdfg g("fwd");
  g.add_input("a");
  EXPECT_THROW(
      g.add_op("x", OpKind::kAdd, ValueRef::op(5), ValueRef::input(0)), Error);
}

TEST(Cdfg, DuplicateNamesRejected) {
  Cdfg g("dup");
  const int a = g.add_input("a");
  g.add_op("a", OpKind::kAdd, ValueRef::input(a), ValueRef::input(a));
  g.add_output("o", ValueRef::op(0));
  EXPECT_THROW(g.validate(), Error);
}

TEST(Cdfg, ConsumersTrackBothPorts) {
  const Cdfg g = tiny();
  const auto c = g.op_consumers();
  // Input a feeds both adders.
  EXPECT_EQ(c[0].size(), 2u);
  // s1's value (id = num_inputs + 0) feeds the multiplier once.
  EXPECT_EQ(c[3].size(), 1u);
  EXPECT_EQ(c[3][0], 2);
}

TEST(Cdfg, ValueNames) {
  const Cdfg g = tiny();
  EXPECT_EQ(g.value_name(ValueRef::input(1)), "b");
  EXPECT_EQ(g.value_name(ValueRef::op(2)), "m");
}

TEST(CdfgIo, RoundTrip) {
  const Cdfg g = tiny();
  const std::string text = cdfg_to_string(g);
  const Cdfg h = cdfg_from_string(text);
  EXPECT_EQ(cdfg_to_string(h), text);
  EXPECT_EQ(h.name(), "tiny");
  EXPECT_EQ(h.num_ops(), 3);
}

TEST(CdfgIo, ParseRejectsUnknownValue) {
  EXPECT_THROW(cdfg_from_string("cdfg x\nop a add q r\n"), Error);
}

TEST(CdfgIo, ParseRejectsUnknownKind) {
  EXPECT_THROW(
      cdfg_from_string("cdfg x\ninput a\nop z div a a\noutput o z\n"), Error);
}

TEST(CdfgIo, ParseRejectsMissingHeader) {
  EXPECT_THROW(cdfg_from_string("input a\n"), Error);
}

TEST(CdfgIo, CommentsAndBlanksIgnored) {
  const Cdfg g = cdfg_from_string(
      "# a comment\ncdfg c\n\ninput a # trailing\ninput b\n"
      "op x add a b\noutput o x\n");
  EXPECT_EQ(g.num_ops(), 1);
}

TEST(CdfgIo, DotContainsShapes) {
  const std::string dot = cdfg_to_dot(tiny());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // mult
  EXPECT_NE(dot.find("invtriangle"), std::string::npos);   // inputs
}

TEST(Benchmarks, SevenPaperProfiles) {
  EXPECT_EQ(paper_benchmarks().size(), 7u);
  EXPECT_EQ(benchmark_profile("chem").num_adds, 171);
  EXPECT_EQ(benchmark_profile("wang").num_mults, 22);
  EXPECT_THROW(benchmark_profile("nosuch"), Error);
}

class PaperBenchmark : public ::testing::TestWithParam<std::string> {};

TEST_P(PaperBenchmark, MatchesTable1Profile) {
  const BenchmarkProfile& p = benchmark_profile(GetParam());
  const Cdfg g = make_paper_benchmark(GetParam());
  EXPECT_NO_THROW(g.validate());
  EXPECT_EQ(g.num_inputs(), p.num_inputs);
  EXPECT_EQ(g.num_outputs(), p.num_outputs);
  EXPECT_EQ(g.num_ops_of_kind(OpKind::kAdd), p.num_adds);
  EXPECT_EQ(g.num_ops_of_kind(OpKind::kMult), p.num_mults);
  // Edge count: a pure 2-input-op DFG has exactly 2*ops + POs edges; the
  // paper's count includes undocumented node types (see DESIGN.md).
  EXPECT_EQ(g.num_edges(), 2 * (p.num_adds + p.num_mults) + p.num_outputs);
  EXPECT_LE(g.num_edges(), p.paper_edges);
}

TEST_P(PaperBenchmark, DeterministicInSeed) {
  const Cdfg a = make_paper_benchmark(GetParam(), 42);
  const Cdfg b = make_paper_benchmark(GetParam(), 42);
  EXPECT_EQ(cdfg_to_string(a), cdfg_to_string(b));
  const Cdfg c = make_paper_benchmark(GetParam(), 43);
  EXPECT_NE(cdfg_to_string(a), cdfg_to_string(c));
}

INSTANTIATE_TEST_SUITE_P(Table1, PaperBenchmark,
                         ::testing::Values("chem", "dir", "honda", "mcm", "pr",
                                           "steam", "wang"));

class RandomDfg : public ::testing::TestWithParam<int> {};

TEST_P(RandomDfg, AlwaysValid) {
  const Cdfg g = make_random_dfg(4, 3, 20 + GetParam(), GetParam());
  EXPECT_NO_THROW(g.validate());
  EXPECT_EQ(g.num_ops(), 20 + GetParam());
  EXPECT_EQ(g.num_outputs(), 3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDfg, ::testing::Range(0, 25));

TEST(Benchmarks, OutputCountFeasibilityEnforced) {
  BenchmarkProfile p;
  p.name = "bad";
  p.num_inputs = 2;
  p.num_outputs = 10;
  p.num_adds = 1;
  p.num_mults = 0;
  EXPECT_THROW(make_benchmark(p), Error);
}

}  // namespace
}  // namespace hlp
