// Tests for ASAP/ALAP and the resource-constrained list scheduler,
// including schedule validity properties over random DFGs.
#include <gtest/gtest.h>

#include "cdfg/benchmarks.hpp"
#include "common/error.hpp"
#include "sched/asap_alap.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/schedule.hpp"

namespace hlp {
namespace {

Cdfg chain3() {
  // ((a+b)+c)+d — a pure chain, depth 3.
  Cdfg g("chain3");
  const int a = g.add_input("a"), b = g.add_input("b"), c = g.add_input("c"),
            d = g.add_input("d");
  const int x = g.add_op("x", OpKind::kAdd, ValueRef::input(a), ValueRef::input(b));
  const int y = g.add_op("y", OpKind::kAdd, ValueRef::op(x), ValueRef::input(c));
  const int z = g.add_op("z", OpKind::kAdd, ValueRef::op(y), ValueRef::input(d));
  g.add_output("o", ValueRef::op(z));
  return g;
}

Cdfg wide4() {
  // Four independent adds.
  Cdfg g("wide4");
  const int a = g.add_input("a"), b = g.add_input("b");
  for (int i = 0; i < 4; ++i)
    g.add_output("o" + std::to_string(i),
                 ValueRef::op(g.add_op("x" + std::to_string(i), OpKind::kAdd,
                                       ValueRef::input(a), ValueRef::input(b))));
  return g;
}

TEST(Asap, ChainTakesDepthSteps) {
  const Cdfg g = chain3();
  const Schedule s = asap_schedule(g);
  EXPECT_EQ(s.num_steps, 3);
  EXPECT_EQ(s.cstep_of_op[0], 0);
  EXPECT_EQ(s.cstep_of_op[1], 1);
  EXPECT_EQ(s.cstep_of_op[2], 2);
  EXPECT_NO_THROW(s.validate(g));
}

TEST(Asap, WideGraphAllAtStepZero) {
  const Schedule s = asap_schedule(wide4());
  for (int c : s.cstep_of_op) EXPECT_EQ(c, 0);
}

TEST(Alap, PushesLateWithSlack) {
  const Cdfg g = chain3();
  const Schedule s = alap_schedule(g, 5);
  EXPECT_EQ(s.cstep_of_op[2], 4);  // last op at the last step
  EXPECT_EQ(s.cstep_of_op[0], 2);
  EXPECT_NO_THROW(s.validate(g));
}

TEST(Alap, RejectsLatencyBelowDepth) {
  EXPECT_THROW(alap_schedule(chain3(), 2), Error);
}

TEST(Alap, EqualsAsapWhenTight) {
  const Cdfg g = chain3();
  const Schedule asap = asap_schedule(g);
  const Schedule alap = alap_schedule(g, g.depth());
  EXPECT_EQ(asap.cstep_of_op, alap.cstep_of_op);
}

TEST(ListSchedule, RespectsResourceLimit) {
  const Cdfg g = wide4();
  const Schedule s = list_schedule(g, {2, 1});
  EXPECT_NO_THROW(s.validate_resources(g, {2, 1}));
  EXPECT_EQ(s.num_steps, 2);  // 4 adds / 2 adders
}

TEST(ListSchedule, SingleResourceSerialises) {
  const Schedule s = list_schedule(wide4(), {1, 1});
  EXPECT_EQ(s.num_steps, 4);
}

TEST(ListSchedule, MinLatencyStretches) {
  const Schedule s = list_schedule(wide4(), {4, 1}, 9);
  EXPECT_EQ(s.num_steps, 9);
  EXPECT_NO_THROW(s.validate(wide4()));
}

TEST(ListSchedule, NeedsAResourcePerUsedKind) {
  EXPECT_THROW(list_schedule(wide4(), {0, 1}), Error);
}

TEST(Schedule, ValidateCatchesPrecedenceViolation) {
  const Cdfg g = chain3();
  Schedule s = asap_schedule(g);
  s.cstep_of_op[1] = 0;  // y now runs with x
  EXPECT_THROW(s.validate(g), Error);
}

TEST(Schedule, ValidateCatchesRange) {
  const Cdfg g = chain3();
  Schedule s = asap_schedule(g);
  s.cstep_of_op[0] = -1;
  EXPECT_THROW(s.validate(g), Error);
}

TEST(Schedule, OccupancyAndDensity) {
  const Cdfg g = wide4();
  const Schedule s = list_schedule(g, {2, 1});
  EXPECT_EQ(s.max_density(g, OpKind::kAdd), 2);
  EXPECT_EQ(s.max_density(g, OpKind::kMult), 0);
  const auto dense = s.densest_step_ops(g, OpKind::kAdd);
  EXPECT_EQ(dense.size(), 2u);
}

TEST(Schedule, ValidateResourcesCatchesOverflow) {
  const Cdfg g = wide4();
  Schedule s = asap_schedule(g);  // all 4 at step 0
  EXPECT_THROW(s.validate_resources(g, {2, 1}), Error);
}

TEST(ListSchedule, SameValueBothPorts) {
  Cdfg g("square");
  const int a = g.add_input("a"), b = g.add_input("b");
  const int s1 = g.add_op("s1", OpKind::kAdd, ValueRef::input(a), ValueRef::input(b));
  const int sq = g.add_op("sq", OpKind::kMult, ValueRef::op(s1), ValueRef::op(s1));
  g.add_output("o", ValueRef::op(sq));
  const Schedule s = list_schedule(g, {1, 1});
  EXPECT_NO_THROW(s.validate(g));
  EXPECT_EQ(s.cstep_of_op[sq], s.cstep_of_op[s1] + 1);
}

struct SchedCase {
  int seed;
  int adders;
  int mults;
};

class ListScheduleRandom : public ::testing::TestWithParam<SchedCase> {};

TEST_P(ListScheduleRandom, ValidAndResourceCompliant) {
  const auto [seed, adders, mults] = GetParam();
  const Cdfg g = make_random_dfg(5, 4, 40, seed);
  const ResourceConstraint rc{adders, mults};
  const Schedule s = list_schedule(g, rc);
  EXPECT_NO_THROW(s.validate_resources(g, rc.as_vector()));
  // Lower bounds: depth and ceil(ops/limit).
  EXPECT_GE(s.num_steps, g.depth());
  const int adds = g.num_ops_of_kind(OpKind::kAdd);
  EXPECT_GE(s.num_steps, (adds + adders - 1) / adders);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ListScheduleRandom,
    ::testing::Values(SchedCase{1, 1, 1}, SchedCase{2, 2, 1}, SchedCase{3, 2, 2},
                      SchedCase{4, 3, 2}, SchedCase{5, 1, 3}, SchedCase{6, 4, 4},
                      SchedCase{7, 2, 3}, SchedCase{8, 5, 5}));

class PaperBenchSchedule : public ::testing::TestWithParam<std::string> {};

TEST_P(PaperBenchSchedule, Table2ConstraintsAreFeasible) {
  // Table 2 resource constraints per benchmark.
  struct Rc {
    const char* name;
    int add, mult;
  };
  static const Rc table2[] = {{"chem", 9, 7}, {"dir", 3, 2},  {"honda", 4, 4},
                              {"mcm", 4, 2},  {"pr", 2, 2},   {"steam", 7, 6},
                              {"wang", 2, 2}};
  for (const auto& rc : table2) {
    if (GetParam() != rc.name) continue;
    const Cdfg g = make_paper_benchmark(rc.name);
    const Schedule s = list_schedule(g, {rc.add, rc.mult});
    EXPECT_NO_THROW(s.validate_resources(g, {rc.add, rc.mult}));
    EXPECT_LE(s.max_density(g, OpKind::kAdd), rc.add);
    EXPECT_LE(s.max_density(g, OpKind::kMult), rc.mult);
  }
}

INSTANTIATE_TEST_SUITE_P(Table2, PaperBenchSchedule,
                         ::testing::Values("chem", "dir", "honda", "mcm", "pr",
                                           "steam", "wang"));

}  // namespace
}  // namespace hlp
