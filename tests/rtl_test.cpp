// Tests for datapath elaboration and VHDL emission. The decisive check is
// end-to-end functional correctness: the elaborated, technology-mapped,
// cycle-simulated datapath must compute exactly what interpreting the CDFG
// computes, for random inputs, for both binders.
#include <gtest/gtest.h>

#include <map>

#include "cdfg/benchmarks.hpp"
#include "common/error.hpp"
#include "core/hlpower.hpp"
#include "lopass/lopass.hpp"
#include "mapper/techmap.hpp"
#include "rtl/datapath.hpp"
#include "rtl/flow.hpp"
#include "rtl/vhdl.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/simulator.hpp"
#include "sim/vectors.hpp"

namespace hlp {
namespace {

SaCache& shared_cache() {
  static SaCache cache(4);
  return cache;
}

// Reference interpretation of a CDFG over width-w modular arithmetic.
std::vector<std::uint64_t> interpret(const Cdfg& g,
                                     const std::vector<std::uint64_t>& in,
                                     int width) {
  const std::uint64_t mask = (1ull << width) - 1;
  std::vector<std::uint64_t> val(num_values(g));
  for (int i = 0; i < g.num_inputs(); ++i) val[i] = in[i] & mask;
  for (int i = 0; i < g.num_ops(); ++i) {
    const auto& o = g.op(i);
    const std::uint64_t a = val[value_id(g, o.lhs)];
    const std::uint64_t b = val[value_id(g, o.rhs)];
    val[g.num_inputs() + i] =
        (o.kind == OpKind::kAdd ? a + b : a * b) & mask;
  }
  std::vector<std::uint64_t> out(g.num_outputs());
  for (int i = 0; i < g.num_outputs(); ++i)
    out[i] = val[value_id(g, g.output(i).value)];
  return out;
}

// Run one sample through the (possibly mapped) datapath netlist and read
// back every CDFG output from its register.
std::vector<std::uint64_t> run_datapath(const Cdfg& g, const Binding& bind,
                                        const Datapath& dp, const Netlist& net,
                                        const std::vector<std::uint64_t>& in) {
  UnitDelaySimulator sim(net);
  const auto frames = dp.frames_for_sample(in);
  for (const auto& frame : frames) {
    for (std::size_t j = 0; j < frame.size(); ++j)
      sim.set_input(net.inputs()[j], frame[j] != 0);
    sim.clock_edge();
    sim.settle();
  }
  // One more edge latches the results of the final control step.
  sim.clock_edge();
  sim.settle();
  std::vector<std::uint64_t> out(g.num_outputs());
  for (int i = 0; i < g.num_outputs(); ++i) {
    const int r = bind.regs.reg_of_value[value_id(g, g.output(i).value)];
    std::uint64_t word = 0;
    for (int j = 0; j < dp.width; ++j) {
      const NetId q =
          net.find_net("r" + std::to_string(r) + "_q" + std::to_string(j));
      HLP_CHECK(q != kNoNet, "register net missing");
      if (sim.value(q)) word |= 1ull << j;
    }
    out[i] = word;
  }
  return out;
}

struct E2eCase {
  int seed;
  bool use_hlpower;
  bool map_first;
};

class DatapathE2e : public ::testing::TestWithParam<E2eCase> {};

TEST_P(DatapathE2e, ComputesCdfgSemantics) {
  const auto [seed, use_hlpower, map_first] = GetParam();
  const int width = 4;
  const Cdfg g = make_random_dfg(4, 3, 14, seed);
  const ResourceConstraint rc{2, 2};
  const Schedule s = list_schedule(g, rc);
  const Binding bind = use_hlpower
                           ? bind_hlpower(g, s, rc, shared_cache())
                           : bind_lopass(g, s, rc);
  const Datapath dp = elaborate_datapath(g, s, bind, DatapathParams{width});
  const Netlist* net = &dp.netlist;
  MapResult mapped;
  if (map_first) {
    mapped = tech_map(dp.netlist, {CutParams{4, 10}, MapMode::kDepth});
    net = &mapped.lut_netlist;
  }
  const auto samples = random_words(5 * g.num_inputs(), width, seed + 7);
  for (int t = 0; t < 5; ++t) {
    std::vector<std::uint64_t> in(samples.begin() + t * g.num_inputs(),
                                  samples.begin() + (t + 1) * g.num_inputs());
    EXPECT_EQ(run_datapath(g, bind, dp, *net, in), interpret(g, in, width))
        << "seed " << seed << " hlpower " << use_hlpower << " mapped "
        << map_first;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DatapathE2e,
    ::testing::Values(E2eCase{1, true, false}, E2eCase{1, false, false},
                      E2eCase{1, true, true}, E2eCase{2, false, true},
                      E2eCase{3, true, true}, E2eCase{4, false, false},
                      E2eCase{5, true, true}, E2eCase{6, false, true}));

TEST(Datapath, ControlPlanShape) {
  const Cdfg g = make_random_dfg(4, 2, 10, 2);
  const ResourceConstraint rc{2, 1};
  const Schedule s = list_schedule(g, rc);
  const Binding bind = bind_lopass(g, s, rc);
  const Datapath dp = elaborate_datapath(g, s, bind, DatapathParams{4});
  EXPECT_EQ(dp.num_phases, s.num_steps + 1);
  EXPECT_EQ(dp.data_input_pos.size(), static_cast<std::size_t>(g.num_inputs()));
  for (const auto& cg : dp.controls)
    EXPECT_EQ(cg.select_by_phase.size(), static_cast<std::size_t>(dp.num_phases));
  // One register-mux control group per register.
  EXPECT_GE(dp.controls.size(), static_cast<std::size_t>(bind.regs.num_registers));
}

TEST(Datapath, FrameDimensions) {
  const Cdfg g = make_random_dfg(3, 2, 8, 4);
  const ResourceConstraint rc{2, 1};
  const Schedule s = list_schedule(g, rc);
  const Binding bind = bind_lopass(g, s, rc);
  const Datapath dp = elaborate_datapath(g, s, bind, DatapathParams{4});
  const auto frames = make_frames(dp, {{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(frames.size(), static_cast<std::size_t>(2 * dp.num_phases));
  for (const auto& f : frames)
    EXPECT_EQ(f.size(), dp.netlist.inputs().size());
}

TEST(Datapath, SampleArityChecked) {
  const Cdfg g = make_random_dfg(3, 2, 8, 4);
  const ResourceConstraint rc{2, 1};
  const Schedule s = list_schedule(g, rc);
  const Binding bind = bind_lopass(g, s, rc);
  const Datapath dp = elaborate_datapath(g, s, bind, DatapathParams{4});
  EXPECT_THROW(dp.frames_for_sample({1, 2}), Error);
}

TEST(Vhdl, ContainsExpectedStructure) {
  const Cdfg g = make_random_dfg(3, 2, 8, 6);
  const ResourceConstraint rc{2, 1};
  const Schedule s = list_schedule(g, rc);
  const Binding bind = bind_lopass(g, s, rc);
  const std::string v = emit_vhdl(g, s, bind, VhdlParams{8});
  EXPECT_NE(v.find("entity random is"), std::string::npos);
  EXPECT_NE(v.find("architecture rtl of random"), std::string::npos);
  EXPECT_NE(v.find("rising_edge(clk)"), std::string::npos);
  EXPECT_NE(v.find("use ieee.numeric_std.all"), std::string::npos);
  // One signal declaration per register and per FU output.
  for (int r = 0; r < bind.regs.num_registers; ++r)
    EXPECT_NE(v.find("signal r" + std::to_string(r) + " "), std::string::npos);
  for (int f = 0; f < bind.fus.num_fus(); ++f)
    EXPECT_NE(v.find("f" + std::to_string(f) + "_y"), std::string::npos);
  // Multiplier FUs use resize(), adders plain +.
  if (bind.fus.num_fus_of_kind(OpKind::kMult) > 0)
    EXPECT_NE(v.find("resize("), std::string::npos);
}

TEST(Flow, ProducesConsistentReport) {
  const Cdfg g = make_random_dfg(4, 3, 16, 8);
  const ResourceConstraint rc{2, 2};
  const Schedule s = list_schedule(g, rc);
  const Binding bind = bind_lopass(g, s, rc);
  FlowParams fp;
  fp.width = 4;
  fp.num_vectors = 40;
  const FlowResult r = run_flow(g, s, bind, fp);
  EXPECT_GT(r.report.dynamic_power_mw, 0.0);
  EXPECT_GT(r.clock_period_ns, 0.0);
  EXPECT_EQ(r.report.num_luts, r.mapped.num_luts);
  EXPECT_GT(r.sim.total_transitions, r.sim.functional_transitions);
  EXPECT_EQ(r.sim.num_cycles,
            static_cast<std::uint64_t>(40 * (s.num_steps + 1)));
  EXPECT_GE(r.report.glitch_fraction, 0.0);
  EXPECT_LT(r.report.glitch_fraction, 1.0);
}

TEST(Flow, DeterministicAcrossRuns) {
  const Cdfg g = make_random_dfg(4, 3, 14, 9);
  const ResourceConstraint rc{2, 2};
  const Schedule s = list_schedule(g, rc);
  const Binding bind = bind_lopass(g, s, rc);
  FlowParams fp;
  fp.width = 4;
  fp.num_vectors = 20;
  const FlowResult a = run_flow(g, s, bind, fp);
  const FlowResult b = run_flow(g, s, bind, fp);
  EXPECT_EQ(a.sim.total_transitions, b.sim.total_transitions);
  EXPECT_DOUBLE_EQ(a.report.dynamic_power_mw, b.report.dynamic_power_mw);
}

TEST(Flow, VectorsFromEnvFallback) {
  // Without the env var set, the fallback is returned.
  EXPECT_EQ(vectors_from_env(123), 123);
}

}  // namespace
}  // namespace hlp
