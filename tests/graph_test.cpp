// Tests for bipartite matching and min-cost max-flow, including brute-force
// cross-checks on random instances (the matching quality directly
// determines the quality of every binding the library produces).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/bipartite.hpp"
#include "graph/mincostflow.hpp"

namespace hlp {
namespace {

// Exhaustive maximum-weight matching for small instances.
double brute_force_best(const std::vector<std::vector<double>>& w) {
  const int n = static_cast<int>(w.size());
  const int m = n ? static_cast<int>(w[0].size()) : 0;
  double best = 0.0;
  std::vector<int> match(n, -1);
  auto rec = [&](auto&& self, int i, std::vector<char>& used,
                 double acc) -> void {
    if (i == n) {
      best = std::max(best, acc);
      return;
    }
    self(self, i + 1, used, acc);  // leave i unmatched
    for (int j = 0; j < m; ++j) {
      if (used[j] || w[i][j] <= 0.0) continue;
      used[j] = 1;
      self(self, i + 1, used, acc + w[i][j]);
      used[j] = 0;
    }
  };
  std::vector<char> used(m, 0);
  rec(rec, 0, used, 0.0);
  return best;
}

TEST(Bipartite, EmptyGraph) {
  const auto r = max_weight_matching({});
  EXPECT_EQ(r.cardinality(), 0);
  EXPECT_EQ(r.total_weight, 0.0);
}

TEST(Bipartite, SingleEdge) {
  const auto r = max_weight_matching({{5.0}});
  EXPECT_EQ(r.match_of_left[0], 0);
  EXPECT_DOUBLE_EQ(r.total_weight, 5.0);
}

TEST(Bipartite, NoEdges) {
  const auto r = max_weight_matching({{0.0, 0.0}, {0.0, 0.0}});
  EXPECT_EQ(r.cardinality(), 0);
}

TEST(Bipartite, PrefersHeavyEdge) {
  // Left 0 can take the heavy right-1; left 1 then takes right-0.
  const auto r = max_weight_matching({{1.0, 10.0}, {1.0, 9.0}});
  EXPECT_EQ(r.match_of_left[0], 1);
  EXPECT_EQ(r.match_of_left[1], 0);
  EXPECT_DOUBLE_EQ(r.total_weight, 11.0);
}

TEST(Bipartite, MatchingIsValid) {
  const auto r = max_weight_matching(
      {{1, 2, 3}, {3, 1, 0}, {0, 2, 2}, {1, 0, 1}});
  std::vector<char> used(3, 0);
  for (int j : r.match_of_left) {
    if (j < 0) continue;
    EXPECT_FALSE(used[j]) << "right vertex matched twice";
    used[j] = 1;
  }
}

TEST(Bipartite, PositiveWeightsYieldMaximalMatching) {
  // All-positive complete graph: every left vertex must be matched when
  // enough right vertices exist.
  const auto r = max_weight_matching({{1, 1, 1}, {1, 1, 1}, {1, 1, 1}});
  EXPECT_EQ(r.cardinality(), 3);
}

class BipartiteRandom : public ::testing::TestWithParam<int> {};

TEST_P(BipartiteRandom, MatchesBruteForce) {
  Rng rng(GetParam());
  const int n = rng.range(1, 5);
  const int m = rng.range(1, 5);
  std::vector<std::vector<double>> w(n, std::vector<double>(m, 0.0));
  for (auto& row : w)
    for (auto& x : row)
      if (rng.chance(0.6)) x = 1.0 + rng.range(0, 20);
  const auto r = max_weight_matching(w);
  EXPECT_NEAR(r.total_weight, brute_force_best(w), 1e-9)
      << "seed " << GetParam();
  // Validity: no right vertex reused; weight recomputes.
  double total = 0.0;
  std::vector<char> used(m, 0);
  for (int i = 0; i < n; ++i) {
    const int j = r.match_of_left[i];
    if (j < 0) continue;
    EXPECT_GT(w[i][j], 0.0);
    EXPECT_FALSE(used[j]);
    used[j] = 1;
    total += w[i][j];
  }
  EXPECT_NEAR(total, r.total_weight, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BipartiteRandom, ::testing::Range(0, 40));

TEST(MinCostAssignment, SimpleOptimal) {
  // Classic 2x2: diagonal is cheaper.
  const auto r = min_cost_assignment({{1.0, 10.0}, {10.0, 1.0}}, 1e17);
  EXPECT_EQ(r.match_of_left[0], 0);
  EXPECT_EQ(r.match_of_left[1], 1);
  EXPECT_DOUBLE_EQ(r.total_weight, 2.0);
}

TEST(MinCostAssignment, RespectsForbidden) {
  const auto r =
      min_cost_assignment({{1e18, 2.0}, {3.0, 1e18}}, /*forbidden=*/1e18);
  EXPECT_EQ(r.match_of_left[0], 1);
  EXPECT_EQ(r.match_of_left[1], 0);
}

TEST(MinCostAssignment, InfeasibleThrows) {
  EXPECT_THROW(
      min_cost_assignment({{1e18, 1e18}, {1.0, 2.0}}, /*forbidden=*/1e18),
      Error);
}

TEST(MinCostAssignment, MoreRowsThanColsThrows) {
  EXPECT_THROW(min_cost_assignment({{1.0}, {2.0}}, 1e18), Error);
}

TEST(MinCostAssignment, RectangularLeavesColumnsFree) {
  const auto r = min_cost_assignment({{5.0, 1.0, 3.0}}, 1e18);
  EXPECT_EQ(r.match_of_left[0], 1);
}

class AssignmentRandom : public ::testing::TestWithParam<int> {};

TEST_P(AssignmentRandom, MatchesBruteForce) {
  Rng rng(GetParam() + 1000);
  const int n = rng.range(1, 4);
  const int m = rng.range(n, 5);
  std::vector<std::vector<double>> c(n, std::vector<double>(m));
  for (auto& row : c)
    for (auto& x : row) x = rng.range(0, 30);
  const auto r = min_cost_assignment(c, 1e18);
  // Brute force over permutations of columns.
  std::vector<int> cols(m);
  for (int j = 0; j < m; ++j) cols[j] = j;
  double best = 1e30;
  std::sort(cols.begin(), cols.end());
  do {
    double t = 0;
    for (int i = 0; i < n; ++i) t += c[i][cols[i]];
    best = std::min(best, t);
  } while (std::next_permutation(cols.begin(), cols.end()));
  EXPECT_NEAR(r.total_weight, best, 1e-9) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssignmentRandom, ::testing::Range(0, 30));

TEST(MinCostFlow, SimplePath) {
  MinCostFlow f(4);
  const int e01 = f.add_edge(0, 1, 2, 1.0);
  f.add_edge(1, 2, 2, 1.0);
  f.add_edge(2, 3, 1, 1.0);
  const auto r = f.solve(0, 3);
  EXPECT_EQ(r.flow, 1);
  EXPECT_DOUBLE_EQ(r.cost, 3.0);
  EXPECT_EQ(f.flow_on(e01), 1);
}

TEST(MinCostFlow, PicksCheaperParallelPath) {
  MinCostFlow f(4);
  const int cheap = f.add_edge(0, 1, 1, 1.0);
  const int dear = f.add_edge(0, 2, 1, 5.0);
  f.add_edge(1, 3, 1, 0.0);
  f.add_edge(2, 3, 1, 0.0);
  const auto r = f.solve(0, 3);
  EXPECT_EQ(r.flow, 2);
  EXPECT_DOUBLE_EQ(r.cost, 6.0);
  EXPECT_EQ(f.flow_on(cheap), 1);
  EXPECT_EQ(f.flow_on(dear), 1);
}

TEST(MinCostFlow, AssignmentViaFlow) {
  // 2 ops -> 2 FUs as a flow problem; optimal matches diagonal.
  MinCostFlow f(6);  // 0=s, 1..2 ops, 3..4 fus, 5=t
  f.add_edge(0, 1, 1, 0);
  f.add_edge(0, 2, 1, 0);
  const int e13 = f.add_edge(1, 3, 1, 1.0);
  f.add_edge(1, 4, 1, 10.0);
  f.add_edge(2, 3, 1, 10.0);
  const int e24 = f.add_edge(2, 4, 1, 1.0);
  f.add_edge(3, 5, 1, 0);
  f.add_edge(4, 5, 1, 0);
  const auto r = f.solve(0, 5);
  EXPECT_EQ(r.flow, 2);
  EXPECT_DOUBLE_EQ(r.cost, 2.0);
  EXPECT_EQ(f.flow_on(e13), 1);
  EXPECT_EQ(f.flow_on(e24), 1);
}

TEST(MinCostFlow, DisconnectedZeroFlow) {
  MinCostFlow f(3);
  f.add_edge(0, 1, 5, 1.0);
  const auto r = f.solve(0, 2);
  EXPECT_EQ(r.flow, 0);
}

TEST(MinCostFlow, NegativeCostHandled) {
  MinCostFlow f(3);
  f.add_edge(0, 1, 1, -2.0);
  f.add_edge(1, 2, 1, 1.0);
  const auto r = f.solve(0, 2);
  EXPECT_EQ(r.flow, 1);
  EXPECT_DOUBLE_EQ(r.cost, -1.0);
}

}  // namespace
}  // namespace hlp
