// Tests for the LOPASS-style baseline binder.
#include <gtest/gtest.h>

#include "binding/datapath_stats.hpp"
#include "binding/register_binder.hpp"
#include "cdfg/benchmarks.hpp"
#include "common/error.hpp"
#include "lopass/lopass.hpp"
#include "sched/list_scheduler.hpp"

namespace hlp {
namespace {

TEST(Lopass, BindsTinyGraph) {
  Cdfg g("tiny");
  const int a = g.add_input("a"), b = g.add_input("b"), c = g.add_input("c");
  const int s1 = g.add_op("s1", OpKind::kAdd, ValueRef::input(a), ValueRef::input(b));
  const int s2 = g.add_op("s2", OpKind::kAdd, ValueRef::input(a), ValueRef::input(c));
  const int m = g.add_op("m", OpKind::kMult, ValueRef::op(s1), ValueRef::op(s2));
  g.add_output("o", ValueRef::op(m));
  const Schedule s = list_schedule(g, {2, 1});
  const ResourceConstraint rc{2, 1};
  const Binding bind = bind_lopass(g, s, rc);
  EXPECT_NO_THROW(bind.fus.validate(g, s, rc));
  EXPECT_NO_THROW(bind.regs.validate(g, s));
}

TEST(Lopass, RejectsInfeasibleConstraint) {
  const Cdfg g = make_random_dfg(4, 3, 20, 1);
  const Schedule s = list_schedule(g, {3, 3});
  const RegisterBinding rb = bind_registers(g, s);
  const int density = s.max_density(g, OpKind::kAdd);
  if (density > 1) {
    EXPECT_THROW(bind_fus_lopass(g, s, rb, {1, 3}), Error);
  }
}

TEST(Lopass, ReusesMuxInputsAcrossSteps) {
  // Two adds in different steps reading the same registers should share an
  // FU with no extra mux inputs rather than spread across FUs.
  Cdfg g("share");
  const int a = g.add_input("a"), b = g.add_input("b");
  const int x = g.add_op("x", OpKind::kAdd, ValueRef::input(a), ValueRef::input(b));
  const int y = g.add_op("y", OpKind::kAdd, ValueRef::op(x), ValueRef::input(b));
  g.add_output("o", ValueRef::op(y));
  const Schedule s = list_schedule(g, {2, 1});
  const RegisterBinding rb = bind_registers(g, s);
  const FuBinding fb = bind_fus_lopass(g, s, rb, {2, 1});
  // Sequential dependency: both can (and should) use one adder.
  EXPECT_EQ(fb.num_fus_of_kind(OpKind::kAdd), 1);
}

class LopassRandom : public ::testing::TestWithParam<int> {};

TEST_P(LopassRandom, AlwaysValid) {
  const Cdfg g = make_random_dfg(6, 4, 30, GetParam());
  const ResourceConstraint rc{3, 2};
  const Schedule s = list_schedule(g, rc);
  const RegisterBinding rb = bind_registers(g, s, GetParam());
  const FuBinding fb = bind_fus_lopass(g, s, rb, rc);
  EXPECT_NO_THROW(fb.validate(g, s, rc));
  // Every op bound.
  for (int op = 0; op < g.num_ops(); ++op) EXPECT_GE(fb.fu_of_op[op], 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LopassRandom, ::testing::Range(0, 20));

TEST(Lopass, DeterministicResult) {
  const Cdfg g = make_random_dfg(5, 3, 25, 9);
  const ResourceConstraint rc{2, 2};
  const Schedule s = list_schedule(g, rc);
  const RegisterBinding rb = bind_registers(g, s);
  const FuBinding f1 = bind_fus_lopass(g, s, rb, rc);
  const FuBinding f2 = bind_fus_lopass(g, s, rb, rc);
  EXPECT_EQ(f1.fu_of_op, f2.fu_of_op);
}

TEST(Lopass, AllocationWithinConstraint) {
  const Cdfg g = make_paper_benchmark("pr");
  const ResourceConstraint rc{2, 2};
  const Schedule s = list_schedule(g, rc);
  const RegisterBinding rb = bind_registers(g, s);
  const FuBinding fb = bind_fus_lopass(g, s, rb, rc);
  EXPECT_LE(fb.num_fus_of_kind(OpKind::kAdd), 2);
  EXPECT_LE(fb.num_fus_of_kind(OpKind::kMult), 2);
  EXPECT_GE(fb.num_fus_of_kind(OpKind::kAdd), s.max_density(g, OpKind::kAdd));
}

}  // namespace
}  // namespace hlp
