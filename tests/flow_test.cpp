// Tests for the src/flow subsystem: registry lookup, context memoisation,
// stage-by-stage pipeline equivalence with the legacy run_flow, SaCache
// thread safety, and ExperimentRunner determinism across thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "binding/register_binder.hpp"
#include "common/error.hpp"
#include "cdfg/benchmarks.hpp"
#include "core/hlpower.hpp"
#include "flow/experiment.hpp"
#include "flow/flow_context.hpp"
#include "flow/pipeline.hpp"
#include "flow/registry.hpp"
#include "lopass/lopass.hpp"
#include "power/sa_mode.hpp"
#include "rtl/flow.hpp"
#include "sched/list_scheduler.hpp"

namespace hlp {
namespace {

constexpr int kWidth = 4;
constexpr int kVectors = 40;

flow::ContextOptions small_options() {
  flow::ContextOptions opt;
  opt.width = kWidth;
  return opt;
}

TEST(Registry, BuiltinsRegistered) {
  EXPECT_TRUE(flow::scheduler_registry().contains("list"));
  EXPECT_TRUE(flow::scheduler_registry().contains("fds"));
  EXPECT_TRUE(flow::scheduler_registry().contains("asap"));
  EXPECT_TRUE(flow::scheduler_registry().contains("alap"));
  EXPECT_TRUE(flow::binder_registry().contains("hlpower"));
  EXPECT_TRUE(flow::binder_registry().contains("lopass"));
}

TEST(Registry, AsapAlapSchedulersRunThroughPipeline) {
  // ASAP/ALAP selected by name drive a full pipeline evaluation; validate
  // against the CDFG and check the expected schedule shapes.
  const Cdfg g = make_paper_benchmark("pr");
  flow::SchedulerSpec spec;
  const Schedule asap =
      flow::scheduler_registry().at("asap")(g, ResourceConstraint{}, spec);
  const Schedule alap =
      flow::scheduler_registry().at("alap")(g, ResourceConstraint{}, spec);
  asap.validate(g);
  alap.validate(g);
  EXPECT_EQ(asap.num_steps, g.depth());
  EXPECT_EQ(alap.num_steps, g.depth());
  for (int op = 0; op < g.num_ops(); ++op)
    EXPECT_LE(asap.cstep(op), alap.cstep(op));

  for (const char* sched : {"asap", "alap"}) {
    flow::ContextOptions opt = small_options();
    opt.scheduler = sched;
    flow::FlowContext ctx(make_paper_benchmark("pr"), {0, 0}, std::move(opt));
    flow::RunSpec rs;
    rs.num_vectors = 10;
    const flow::PipelineOutcome out = flow::Pipeline::standard().run(ctx, rs);
    EXPECT_GT(out.flow.sim.total_transitions, 0u) << sched;
  }
}

TEST(Registry, UnknownNameThrowsWithKnownNames) {
  try {
    flow::binder_registry().at("quartus");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("quartus"), std::string::npos);
    EXPECT_NE(what.find("hlpower"), std::string::npos);
    EXPECT_NE(what.find("lopass"), std::string::npos);
  }
}

TEST(FlowContext, MemoisesScheduleAndRegs) {
  flow::FlowContext ctx(make_paper_benchmark("pr"), {2, 2}, small_options());
  const Schedule& s1 = ctx.schedule();
  const Schedule& s2 = ctx.schedule();
  EXPECT_EQ(&s1, &s2);
  const RegisterBinding& r1 = ctx.regs();
  const RegisterBinding& r2 = ctx.regs();
  EXPECT_EQ(&r1, &r2);
  // Matches a direct invocation of the underlying algorithms.
  const Schedule direct = list_schedule(ctx.cdfg(), {2, 2});
  EXPECT_EQ(s1.cstep_of_op, direct.cstep_of_op);
  EXPECT_EQ(r1.reg_of_value, bind_registers(ctx.cdfg(), direct).reg_of_value);
}

TEST(FlowContext, ZeroConstraintResolvesToScheduleMinimum) {
  flow::FlowContext ctx(make_paper_benchmark("pr"), {0, 0}, small_options());
  const ResourceConstraint& rc = ctx.rc();
  EXPECT_GE(rc.adders, 1);
  EXPECT_GE(rc.multipliers, 1);
  EXPECT_GE(rc.adders, ctx.schedule().max_density(ctx.cdfg(), OpKind::kAdd));
  EXPECT_GE(rc.multipliers,
            ctx.schedule().max_density(ctx.cdfg(), OpKind::kMult));
}

// The acceptance gate of the refactor: the staged pipeline reproduces the
// legacy single-shot run_flow bit for bit on a paper benchmark.
TEST(Pipeline, MatchesLegacyRunFlow) {
  const Cdfg g = make_paper_benchmark("pr");
  const ResourceConstraint rc{2, 2};

  // Legacy path, exactly as bench_common did it in the seed.
  const Schedule s = list_schedule(g, rc);
  const RegisterBinding regs = bind_registers(g, s);
  SaCache cache(kWidth);
  const FuBinding fus = bind_fus_hlpower(g, s, regs, rc, cache).fus;
  FlowParams fp;
  fp.width = kWidth;
  fp.num_vectors = kVectors;
  const FlowResult legacy = run_flow(g, s, Binding{regs, fus}, fp);

  // Staged pipeline. The legacy path's SaCache above is estimate-mode, so
  // pin the pipeline to the same backend: this test compares the staged
  // decomposition, not the SA engine, and must hold under the exact-mode
  // CI leg (HLP_SA_MODE=exact) too.
  flow::ContextOptions opt = small_options();
  opt.sa_mode = SaMode::kEstimated;
  flow::FlowContext ctx(g, rc, opt);
  flow::RunSpec spec;
  spec.binder.name = "hlpower";
  spec.num_vectors = kVectors;
  spec.sa = SaMode::kEstimated;
  const flow::PipelineOutcome out = flow::Pipeline::standard().run(ctx, spec);

  EXPECT_EQ(out.fus.fu_of_op, fus.fu_of_op);
  EXPECT_EQ(out.flow.mapped.num_luts, legacy.mapped.num_luts);
  EXPECT_DOUBLE_EQ(out.flow.clock_period_ns, legacy.clock_period_ns);
  EXPECT_EQ(out.flow.sim.num_cycles, legacy.sim.num_cycles);
  EXPECT_EQ(out.flow.sim.total_transitions, legacy.sim.total_transitions);
  EXPECT_EQ(out.flow.sim.functional_transitions,
            legacy.sim.functional_transitions);
  EXPECT_DOUBLE_EQ(out.flow.report.dynamic_power_mw,
                   legacy.report.dynamic_power_mw);
  EXPECT_DOUBLE_EQ(out.flow.report.toggle_rate_mps,
                   legacy.report.toggle_rate_mps);
  EXPECT_DOUBLE_EQ(out.flow.report.glitch_fraction,
                   legacy.report.glitch_fraction);
  EXPECT_EQ(out.flow.mux_stats.mux_length, legacy.mux_stats.mux_length);
  EXPECT_EQ(out.flow.mux_stats.largest_mux, legacy.mux_stats.largest_mux);
  EXPECT_DOUBLE_EQ(out.flow.mux_stats.muxdiff_mean,
                   legacy.mux_stats.muxdiff_mean);
}

TEST(Pipeline, RecordsEveryStageTiming) {
  flow::FlowContext ctx(make_paper_benchmark("pr"), {2, 2}, small_options());
  flow::RunSpec spec;
  spec.num_vectors = 10;
  const flow::PipelineOutcome out = flow::Pipeline::standard().run(ctx, spec);
  const auto& names = flow::Pipeline::stage_names();
  ASSERT_EQ(out.timings.size(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(out.timings[i].name, names[i]);
    EXPECT_GE(out.timings[i].seconds, 0.0);
  }
  EXPECT_GT(out.bind_seconds, 0.0);
  EXPECT_EQ(out.stage_seconds("bind-fus") + out.stage_seconds("refine"),
            out.bind_seconds);
}

TEST(Pipeline, StageOverrideReplacesBinder) {
  flow::FlowContext ctx(make_paper_benchmark("pr"), {2, 2}, small_options());
  flow::Pipeline pipeline = flow::Pipeline::standard();
  // Override bind-fus with the lopass binder, bypassing the spec.
  pipeline.replace("bind-fus", [](flow::PipelineState& st) {
    st.out.fus = bind_fus_lopass(st.ctx.cdfg(), st.schedule, st.regs,
                                 st.ctx.rc(), LopassParams{st.ctx.width()});
  });
  flow::RunSpec spec;
  spec.binder.name = "hlpower";  // ignored by the override
  spec.num_vectors = 10;
  const flow::PipelineOutcome overridden = pipeline.run(ctx, spec);

  flow::RunSpec lopass_spec;
  lopass_spec.binder.name = "lopass";
  lopass_spec.num_vectors = 10;
  const flow::PipelineOutcome direct =
      flow::Pipeline::standard().run(ctx, lopass_spec);
  EXPECT_EQ(overridden.fus.fu_of_op, direct.fus.fu_of_op);
  EXPECT_EQ(overridden.flow.mapped.num_luts, direct.flow.mapped.num_luts);

  EXPECT_THROW(pipeline.replace("no-such-stage", [](flow::PipelineState&) {}),
               Error);
}

TEST(Pipeline, BatchedAndScalarEnginesAgreeBitForBit) {
  // The simulate stage's batched default must reproduce the scalar oracle
  // exactly: same toggles, same functional/glitch split, same power report.
  flow::FlowContext ctx(make_paper_benchmark("pr"), {2, 2}, small_options());
  flow::RunSpec scalar_spec, batched_spec;
  scalar_spec.num_vectors = batched_spec.num_vectors = kVectors;
  scalar_spec.sim_engine = SimEngine::kScalar;
  batched_spec.sim_engine = SimEngine::kBatched;
  const flow::PipelineOutcome a =
      flow::Pipeline::standard().run(ctx, scalar_spec);
  const flow::PipelineOutcome b =
      flow::Pipeline::standard().run(ctx, batched_spec);
  EXPECT_EQ(a.flow.sim.toggles, b.flow.sim.toggles);
  EXPECT_EQ(a.flow.sim.total_transitions, b.flow.sim.total_transitions);
  EXPECT_EQ(a.flow.sim.functional_transitions,
            b.flow.sim.functional_transitions);
  EXPECT_EQ(a.flow.sim.glitch_transitions(), b.flow.sim.glitch_transitions());
  EXPECT_DOUBLE_EQ(a.flow.report.dynamic_power_mw,
                   b.flow.report.dynamic_power_mw);
  EXPECT_DOUBLE_EQ(a.flow.report.toggle_rate_mps, b.flow.report.toggle_rate_mps);
}

TEST(ExperimentRunner, SaCachePersistenceWarmStart) {
  const std::string path = ::testing::TempDir() + "/runner_sa_cache";
  // The jobs defer their SA mode, so resolve it the way the runner will:
  // under the exact-mode CI leg the table lands in the `.exact`-suffixed
  // file and must be reloaded into an exact-mode cache.
  const SaMode mode = effective_sa_mode(std::nullopt);
  const std::string file = path + flow::sa_cache_file_suffix(kWidth, mode);
  std::remove(file.c_str());

  flow::Job job;
  job.benchmark = "pr";
  job.binder.name = "hlpower";
  job.width = kWidth;
  job.num_vectors = 5;

  // This test pins the *cold* SA compute-and-persist cycle, so opt out
  // of any ambient HLP_STORE (the CI artifact-store leg runs the whole
  // suite against one store): a warm artifact store serves the bound
  // span from disk and legitimately skips the SA work asserted here.
  flow::ExperimentRunner cold(1);
  cold.set_store_dir("");
  cold.set_sa_cache_path(path);
  ASSERT_TRUE(cold.run({job})[0].ok);
  EXPECT_GT(cold.sa_cache(kWidth).misses(), 0u);
  // The run persisted the table...
  SaCache reloaded(kWidth, MapParams{}, mode);
  reloaded.load_file(file);
  EXPECT_EQ(reloaded.size(), cold.sa_cache(kWidth).size());

  // ...and a fresh runner starts warm: zero SA computations.
  flow::ExperimentRunner warm(1);
  warm.set_store_dir("");
  warm.set_sa_cache_path(path);
  ASSERT_TRUE(warm.run({job})[0].ok);
  EXPECT_EQ(warm.sa_cache(kWidth).misses(), 0u);
  std::remove(file.c_str());
}

TEST(Pipeline, RefineStageRunsWhenRequested) {
  flow::FlowContext ctx(make_paper_benchmark("pr"), {2, 2}, small_options());
  flow::RunSpec spec;
  spec.binder.refine = true;
  spec.num_vectors = 10;
  const flow::PipelineOutcome out = flow::Pipeline::standard().run(ctx, spec);
  EXPECT_TRUE(out.refined);
  EXPECT_LE(out.refine.cost_after, out.refine.cost_before);
}

TEST(SaCache, ConcurrentHammerIsConsistent) {
  SaCache cache(kWidth);
  constexpr int kThreads = 8;
  constexpr int kRounds = 20;
  constexpr int kMaxMux = 3;
  std::vector<std::thread> pool;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&cache, &mismatches] {
      for (int round = 0; round < kRounds; ++round)
        for (int kind = 0; kind < kNumOpKinds; ++kind)
          for (int a = 1; a <= kMaxMux; ++a)
            for (int b = 1; b <= kMaxMux; ++b) {
              const OpKind k = static_cast<OpKind>(kind);
              const double sa = cache.switching_activity(k, a, b);
              if (sa != cache.compute_uncached(k, a, b)) ++mismatches;
            }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  // Exactly one entry per key survives, no duplicates from races.
  EXPECT_EQ(cache.size(),
            static_cast<std::size_t>(kNumOpKinds * kMaxMux * kMaxMux));
  EXPECT_GE(cache.misses(), static_cast<std::uint64_t>(cache.size()));
}

TEST(ExperimentRunner, SameResultsAtAnyThreadCount) {
  const auto jobs = [] {
    flow::Job base;
    base.width = kWidth;
    base.num_vectors = kVectors;
    return flow::ExperimentRunner::grid(
        {"pr", "wang"},
        {flow::BinderSpec{"lopass"}, flow::BinderSpec{"hlpower"}}, {}, {},
        base);
  }();
  ASSERT_EQ(jobs.size(), 4u);

  flow::ExperimentRunner serial(1);
  flow::ExperimentRunner parallel(4);
  const auto a = serial.run(jobs);
  const auto b = parallel.run(jobs);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].ok) << a[i].error;
    ASSERT_TRUE(b[i].ok) << b[i].error;
    EXPECT_EQ(a[i].job.benchmark, b[i].job.benchmark);
    EXPECT_EQ(a[i].outcome.fus.fu_of_op, b[i].outcome.fus.fu_of_op);
    EXPECT_EQ(a[i].outcome.flow.mapped.num_luts,
              b[i].outcome.flow.mapped.num_luts);
    EXPECT_DOUBLE_EQ(a[i].outcome.flow.report.dynamic_power_mw,
                     b[i].outcome.flow.report.dynamic_power_mw);
    EXPECT_DOUBLE_EQ(a[i].outcome.flow.report.toggle_rate_mps,
                     b[i].outcome.flow.report.toggle_rate_mps);
  }
}

TEST(ExperimentRunner, CapturesPerJobFailures) {
  flow::Job bad;
  bad.benchmark = "pr";
  bad.binder.name = "no-such-binder";
  bad.width = kWidth;
  bad.num_vectors = 5;
  flow::Job good;
  good.benchmark = "pr";
  good.width = kWidth;
  good.num_vectors = 5;
  flow::ExperimentRunner runner(2);
  const auto results = runner.run({bad, good});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_NE(results[0].error.find("no-such-binder"), std::string::npos);
  EXPECT_TRUE(results[1].ok) << results[1].error;
}

TEST(Registry, AnnealBinderIsRegisteredAndValid) {
  EXPECT_TRUE(flow::binder_registry().contains("anneal"));
  flow::FlowContext ctx(make_paper_benchmark("pr"), {2, 2}, small_options());
  const flow::BinderSpec spec{"anneal"};
  const FuBinding fus = flow::binder_registry().at("anneal")(ctx, spec);
  // A feasible binding under the resolved constraint: kinds match, no two
  // ops of one FU share a step, allocation within rc.
  fus.validate(ctx.cdfg(), ctx.schedule(), ctx.rc());
  EXPECT_EQ(fus.num_fus(), ctx.rc().adders + ctx.rc().multipliers);
}

TEST(Registry, AnnealBinderIsDeterministic) {
  // Every stochastic choice comes from an Rng seeded by the context's
  // reg_seed, so two contexts with identical options produce identical
  // bindings (this is what makes anneal safe for the distributed runner's
  // bit-identity contract).
  const flow::BinderSpec spec{"anneal"};
  flow::FlowContext a(make_paper_benchmark("wang"), {2, 2}, small_options());
  flow::FlowContext b(make_paper_benchmark("wang"), {2, 2}, small_options());
  const FuBinding fa = flow::binder_registry().at("anneal")(a, spec);
  const FuBinding fb = flow::binder_registry().at("anneal")(b, spec);
  EXPECT_EQ(fa.fu_of_op, fb.fu_of_op);
  EXPECT_EQ(fa.kind_of_fu, fb.kind_of_fu);

  // A different reg_seed is allowed to anneal to a different binding, and
  // the result must still be feasible.
  flow::ContextOptions opt = small_options();
  opt.reg_seed = 1234;
  flow::FlowContext c(make_paper_benchmark("wang"), {2, 2}, std::move(opt));
  const FuBinding fc = flow::binder_registry().at("anneal")(c, spec);
  fc.validate(c.cdfg(), c.schedule(), c.rc());
}

TEST(Registry, AnnealBinderRunsThroughPipelineAndRunner) {
  // Selected by name like any other binder: through a full pipeline run
  // and through the ExperimentRunner (coalesced seed group included).
  flow::Job job;
  job.benchmark = "pr";
  job.binder.name = "anneal";
  job.width = kWidth;
  job.num_vectors = 20;
  std::vector<flow::Job> jobs;
  for (std::uint64_t s = 0; s < 3; ++s) {
    jobs.push_back(job);
    jobs.back().seed = 900 + s;
  }
  flow::ExperimentRunner runner(2);
  const auto results = runner.run(jobs);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_GT(r.outcome.flow.sim.total_transitions, 0u);
  }
  // The three seeds share one annealed binding (same context, one
  // bind-fus pass via coalescing), so structural results agree.
  EXPECT_EQ(results[0].outcome.fus.fu_of_op,
            results[2].outcome.fus.fu_of_op);
}

TEST(VectorsFromEnv, StrictParsing) {
  ASSERT_EQ(unsetenv("HLP_VECTORS"), 0);
  EXPECT_EQ(vectors_from_env(123), 123);
  ASSERT_EQ(setenv("HLP_VECTORS", "250", 1), 0);
  EXPECT_EQ(vectors_from_env(123), 250);
  for (const char* bad : {"12abc", "abc", "1e3", "-5", "0", "",
                          "99999999999999999999"}) {
    ASSERT_EQ(setenv("HLP_VECTORS", bad, 1), 0);
    if (*bad == '\0') {
      EXPECT_EQ(vectors_from_env(123), 123) << "empty falls back";
    } else {
      EXPECT_THROW(vectors_from_env(123), Error) << "input '" << bad << "'";
    }
  }
  ASSERT_EQ(unsetenv("HLP_VECTORS"), 0);
}

}  // namespace
}  // namespace hlp
