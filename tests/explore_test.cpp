// The incremental explorer tier (src/explore/): the Pareto frontier's
// dominance/tie semantics and its arrival-order-independence guarantee
// (same job set -> bit-identical frontier for any shuffle, thread count
// or worker count), the runner's streaming result callback, and the
// explorer's store-reuse contract — a knob-mutation step against a warm
// store recomputes ZERO unaffected bind-fus..time spans, pinned through
// the store's hit/miss/publish counters.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <mutex>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "explore/explorer.hpp"
#include "explore/pareto.hpp"
#include "flow/distributed.hpp"
#include "flow/experiment.hpp"
#include "power/sa_mode.hpp"
#include "store/artifact_store.hpp"

namespace hlp {
namespace {

constexpr int kWidth = 4;
constexpr int kVectors = 12;

using explore::InsertOutcome;
using explore::ParetoFrontier;
using explore::ParetoPoint;

ParetoPoint pt(double power, int area, double period,
               const std::string& id) {
  ParetoPoint p;
  p.power_mw = power;
  p.lut_area = area;
  p.clock_period_ns = period;
  p.id = id;
  p.label = id;
  return p;
}

// --- frontier unit semantics ---------------------------------------------

TEST(ParetoFrontier, DominanceInsertAndEvict) {
  ParetoFrontier f;
  EXPECT_EQ(f.insert(pt(2.0, 20, 2.0, "a")), InsertOutcome::kInserted);
  // Strictly worse on one axis, equal elsewhere: dominated.
  EXPECT_EQ(f.insert(pt(2.0, 21, 2.0, "b")), InsertOutcome::kDominated);
  // Incomparable (better power, worse area): joins.
  EXPECT_EQ(f.insert(pt(1.0, 30, 2.0, "c")), InsertOutcome::kInserted);
  EXPECT_EQ(f.size(), 2u);
  // Dominates both: evicts both.
  EXPECT_EQ(f.insert(pt(1.0, 20, 1.0, "d")), InsertOutcome::kInserted);
  const auto points = f.points();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].id, "d");
}

TEST(ParetoFrontier, EqualVectorTieKeepsTheSmallestIdentity) {
  // Whichever arrival order, the equal-vector group collapses to the
  // lexicographically smallest id — the deterministic tie-break the
  // order-independence guarantee needs.
  for (const std::vector<std::string>& order :
       {std::vector<std::string>{"b", "a", "c"}, {"c", "b", "a"},
        {"a", "c", "b"}}) {
    ParetoFrontier f;
    for (const std::string& id : order) f.insert(pt(1.0, 10, 1.0, id));
    const auto points = f.points();
    ASSERT_EQ(points.size(), 1u);
    EXPECT_EQ(points[0].id, "a");
  }
  // Identical id too: idempotent no-op.
  ParetoFrontier f;
  EXPECT_EQ(f.insert(pt(1.0, 10, 1.0, "a")), InsertOutcome::kInserted);
  EXPECT_EQ(f.insert(pt(1.0, 10, 1.0, "a")), InsertOutcome::kDuplicate);
  EXPECT_EQ(f.size(), 1u);
}

TEST(ParetoFrontier, SyntheticOrderIndependence) {
  // A point soup with dominated points, incomparable points and tie
  // groups; every shuffle must converge to the identical frontier.
  std::vector<ParetoPoint> soup;
  for (int i = 0; i < 6; ++i)
    for (int j = 0; j < 6; ++j)
      soup.push_back(pt(1.0 + i * 0.5, 10 + j * 3, 4.0 - (i + j) * 0.25,
                        "p" + std::to_string(i) + std::to_string(j)));
  // Tie group on one of the minimal vectors.
  soup.push_back(pt(1.0, 10, 4.0, "tie-z"));
  soup.push_back(pt(1.0, 10, 4.0, "tie-a"));

  ParetoFrontier reference;
  for (const ParetoPoint& p : soup) reference.insert(p);
  const auto expect = reference.points();
  ASSERT_FALSE(expect.empty());

  std::mt19937 rng(1234);
  for (int round = 0; round < 10; ++round) {
    std::shuffle(soup.begin(), soup.end(), rng);
    ParetoFrontier f;
    for (const ParetoPoint& p : soup) f.insert(p);
    EXPECT_EQ(f.points(), expect) << "round " << round;
  }
}

// --- streaming from the runner -------------------------------------------

std::vector<flow::Job> small_grid() {
  std::vector<flow::Job> jobs;
  for (const char* bench : {"pr", "wang"})
    for (const char* binder : {"hlpower", "lopass"})
      for (const std::uint64_t seed : {42ull, 7ull, 9ull}) {
        flow::Job j;
        j.benchmark = bench;
        j.binder.name = binder;
        j.width = kWidth;
        j.num_vectors = kVectors;
        j.seed = seed;
        jobs.push_back(j);
      }
  return jobs;
}

TEST(ResultCallback, FiresOncePerJobWithThePopulatedSlot) {
  std::vector<flow::Job> jobs = small_grid();
  // A failing job must fire too (the frontier counts and skips it).
  flow::Job bad = jobs[0];
  bad.benchmark = "no-such-benchmark";
  jobs.push_back(bad);

  flow::ExperimentRunner runner(4);
  runner.set_store_dir("");
  std::mutex mu;
  std::vector<int> fired(jobs.size(), 0);
  std::size_t ok_count = 0;
  runner.set_result_callback([&](std::size_t i, const flow::JobResult& r) {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_LT(i, fired.size());
    ++fired[i];
    // The slot is fully populated when the callback fires: either a
    // success with its outcome or a failure with its error, seconds set.
    EXPECT_TRUE(r.ok || !r.error.empty());
    EXPECT_GE(r.seconds, 0.0);
    EXPECT_EQ(r.job.benchmark, jobs[i].benchmark);
    EXPECT_EQ(r.job.seed, jobs[i].seed);
    if (r.ok) ++ok_count;
  });
  const auto results = runner.run(jobs);
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i)
    EXPECT_EQ(fired[i], 1) << "job " << i;
  EXPECT_FALSE(results.back().ok);
  EXPECT_EQ(ok_count, jobs.size() - 1);
}

TEST(ParetoStream, FrontierIsBitIdenticalAcrossArrivalOrders) {
  std::vector<flow::Job> jobs = small_grid();
  flow::Job bad = jobs[0];
  bad.benchmark = "no-such-benchmark";
  bad.label = "fails-deterministically";
  jobs.push_back(bad);

  auto streamed = [&](const std::vector<flow::Job>& grid, int threads) {
    ParetoFrontier f;
    flow::ExperimentRunner runner(threads);
    runner.set_store_dir("");
    runner.set_result_callback(
        [&](std::size_t, const flow::JobResult& r) { f.offer(r); });
    runner.run(grid);
    return f.points();
  };

  const auto reference = streamed(jobs, 1);
  ASSERT_FALSE(reference.empty());

  // Thread-count invariance: the pool interleaves offers arbitrarily.
  EXPECT_EQ(streamed(jobs, flow::jobs_from_env(4)), reference);

  // Shuffle invariance: the job SET is what matters, not its order.
  std::vector<flow::Job> shuffled = jobs;
  std::mt19937 rng(99);
  for (int round = 0; round < 3; ++round) {
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    EXPECT_EQ(streamed(shuffled, 4), reference) << "round " << round;
  }
}

TEST(ParetoStream, FrontierMatchesAcrossWorkerProcesses) {
  // HLP_WORKERS=2-style distribution: the same grid sharded across two
  // hlp_worker processes must stream to the bit-identical frontier (the
  // distributed runner returns in job order; insertion order cannot
  // matter by the frontier guarantee, so inserting the merged results is
  // exactly a streamed arrival order).
  const std::vector<flow::Job> jobs = small_grid();

  ParetoFrontier in_process;
  flow::ExperimentRunner runner(2);
  runner.set_store_dir("");
  runner.set_result_callback(
      [&](std::size_t, const flow::JobResult& r) { in_process.offer(r); });
  runner.run(jobs);

  try {
    flow::DistributedRunner dist(2, 1);
    ParetoFrontier distributed;
    for (const flow::JobResult& r : dist.run(jobs)) distributed.offer(r);
    EXPECT_EQ(distributed.points(), in_process.points());
    EXPECT_EQ(distributed.offered(), in_process.offered());
  } catch (const std::exception& e) {
    GTEST_SKIP() << "worker binary unavailable: " << e.what();
  }
}

// --- explorer: incremental reuse through the store -----------------------

std::string fresh_store_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<flow::Job> explorer_grid() {
  std::vector<flow::Job> jobs;
  for (const std::uint64_t seed : {42ull, 7ull, 9ull}) {
    flow::Job j;
    j.benchmark = "pr";
    j.binder.name = "hlpower";
    j.width = kWidth;
    j.num_vectors = kVectors;
    j.seed = seed;
    jobs.push_back(j);
  }
  return jobs;
}

// The canonical three-step walk: a tail-only knob (vectors), a
// binding-changing knob (alpha) and a scope-changing knob (scheduler).
// The Explorer owns a mutex-guarded frontier so it cannot be returned by
// value; callers construct and we add the steps.
void add_walk_steps(explore::Explorer& ex) {
  explore::KnobStep vectors;
  vectors.name = "vectors";
  vectors.num_vectors = kVectors * 2;
  explore::KnobStep alpha;
  alpha.name = "alpha";
  alpha.binder_alpha = 1.0;
  explore::KnobStep sched;
  sched.name = "asap";
  sched.scheduler = "asap";
  ex.step(vectors).step(alpha).step(sched);
}

TEST(Explorer, KnobStepsRecomputeOnlyAffectedSpans) {
  const std::string dir = fresh_store_dir("explore_incremental");
  const std::vector<flow::Job> grid = explorer_grid();

  // Single-threaded, 3 coalesced seeds = exactly one work unit per step,
  // so every store counter is exactly pinnable.
  explore::Explorer walk(grid, dir, 1);
  add_walk_steps(walk);
  const explore::Exploration cold = walk.run();
  ASSERT_EQ(cold.steps.size(), 4u);

  // Step 0 (base): one span, cold — computed and published.
  EXPECT_EQ(cold.steps[0].spans, 1u);
  EXPECT_EQ(cold.steps[0].spans_shared, 0u);
  EXPECT_EQ(cold.steps[0].store_hits, 0u);
  EXPECT_EQ(cold.steps[0].store_misses, 1u);
  EXPECT_EQ(cold.steps[0].store_publishes, 1u);

  // Step 1 (vectors only): the ArtifactKey is unchanged — the span is
  // shared with the previous step and comes FROM THE STORE: one hit,
  // zero misses, zero publishes. This is the incremental contract: a
  // knob that cannot affect the bind-fus..time span recomputes none.
  EXPECT_EQ(cold.steps[1].axes, "vectors");
  EXPECT_EQ(cold.steps[1].spans, 1u);
  EXPECT_EQ(cold.steps[1].spans_shared, 1u);
  EXPECT_EQ(cold.steps[1].store_hits, 1u);
  EXPECT_EQ(cold.steps[1].store_misses, 0u);
  EXPECT_EQ(cold.steps[1].store_publishes, 0u);

  // Step 2 (binder alpha): new binding hash — nothing shared, one
  // recompute, one publish.
  EXPECT_EQ(cold.steps[2].spans, 1u);
  EXPECT_EQ(cold.steps[2].spans_shared, 0u);
  EXPECT_EQ(cold.steps[2].store_hits, 0u);
  EXPECT_EQ(cold.steps[2].store_misses, 1u);
  EXPECT_EQ(cold.steps[2].store_publishes, 1u);

  // Step 3 (scheduler): new scope — same shape.
  EXPECT_EQ(cold.steps[3].spans_shared, 0u);
  EXPECT_EQ(cold.steps[3].store_hits, 0u);
  EXPECT_EQ(cold.steps[3].store_misses, 1u);
  EXPECT_EQ(cold.steps[3].store_publishes, 1u);

  for (const explore::StepReport& r : cold.steps) {
    EXPECT_EQ(r.failed, 0u) << r.name;
    EXPECT_EQ(r.store_rejected, 0u) << r.name;
  }

  // The whole walk again, fresh Explorer, same store: every step's span
  // is already persisted — all hits, zero recomputes anywhere.
  explore::Explorer warm(grid, dir, 1);
  add_walk_steps(warm);
  const explore::Exploration rerun = warm.run();
  for (const explore::StepReport& r : rerun.steps) {
    EXPECT_EQ(r.store_hits, r.spans) << r.name;
    EXPECT_EQ(r.store_misses, 0u) << r.name;
    EXPECT_EQ(r.store_publishes, 0u) << r.name;
  }

  // Warm results are bit-identical: same frontier, point for point.
  EXPECT_EQ(rerun.frontier, cold.frontier);
  ASSERT_FALSE(cold.frontier.empty());
}

TEST(Explorer, FrontierIsThreadCountInvariant) {
  const std::vector<flow::Job> grid = explorer_grid();
  explore::Explorer serial(grid, fresh_store_dir("explore_serial"), 1);
  add_walk_steps(serial);
  explore::Explorer threaded(grid, fresh_store_dir("explore_threaded"), 4);
  add_walk_steps(threaded);
  EXPECT_EQ(threaded.run().frontier, serial.run().frontier);
}

TEST(Explorer, WithoutAStoreEveryStepRecomputes) {
  // Persistence is opt-in: an empty store dir means fresh runners share
  // nothing — the vectors-only step recomputes its span too.
  explore::Explorer walk(explorer_grid(), "", 1);
  add_walk_steps(walk);
  const explore::Exploration result = walk.run();
  for (const explore::StepReport& r : result.steps) {
    EXPECT_EQ(r.store_hits, 0u) << r.name;
    EXPECT_EQ(r.store_publishes, 0u) << r.name;
    EXPECT_EQ(r.failed, 0u) << r.name;
  }
  EXPECT_EQ(result.steps[1].spans_shared, 1u);  // the diff still reports
}

TEST(Explorer, JobIdentityResolvesTheSaModeLikeTheManifest) {
  // A job deferring to the environment and one pinning the same mode are
  // the same identity (a manifest round trip pins the resolved mode, and
  // frontier equality across workers depends on the ids agreeing).
  flow::Job deferred = explorer_grid()[0];
  flow::Job pinned = deferred;
  pinned.sa = effective_sa_mode(std::nullopt);
  EXPECT_EQ(explore::job_identity(deferred), explore::job_identity(pinned));
  // The seed is part of the identity (distinct configurations).
  flow::Job other_seed = deferred;
  other_seed.seed += 1;
  EXPECT_NE(explore::job_identity(deferred),
            explore::job_identity(other_seed));
}

}  // namespace
}  // namespace hlp
