// Dedicated coverage for the strict env-var parsers: HLP_JOBS
// (flow::jobs_from_env), HLP_VECTORS (vectors_from_env), HLP_COALESCE
// (flow::coalesce_from_env), HLP_SIMD (simd_mode_from_env /
// resolve_simd_mode), HLP_SETTLE (settle_mode_from_env), HLP_DISPATCH
// (dispatch_mode_from_env / resolve_dispatch_mode), HLP_SA_MODE
// (sa_mode_from_env / effective_sa_mode), HLP_EXACT_BUDGET
// (exact_budget_from_env) and HLP_STORE (flow::store_dir_from_env plus
// the runner's artifact-store wiring).
// Garbage, negative, zero, overflow and unset inputs each have a pinned
// behaviour: unset/empty falls back, everything invalid throws — a
// sweep must die loudly, not run with a silently defaulted
// configuration. For HLP_SIMD that includes values naming a backend the
// build or the running CPU cannot honour: an explicit avx2/avx512
// request never silently downgrades.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/error.hpp"
#include "flow/dispatch_mode.hpp"
#include "flow/experiment.hpp"
#include "power/sa_mode.hpp"
#include "rtl/flow.hpp"
#include "store/artifact_store.hpp"
#include "sim/settle_mode.hpp"
#include "sim/simd_mode.hpp"

namespace hlp {
namespace {

// RAII: every test leaves the variable unset no matter how it exits.
class ScopedUnsetEnv {
 public:
  explicit ScopedUnsetEnv(const char* name) : name_(name) { unset(); }
  ~ScopedUnsetEnv() { unset(); }
  void set(const char* value) { ASSERT_EQ(setenv(name_, value, 1), 0); }

 private:
  void unset() { unsetenv(name_); }
  const char* name_;
};

const char* const kGarbage[] = {"abc", "12abc", "1e3", "0x10", "4.5", "--2"};
const char* const kNonPositive[] = {"0", "-1", "-5"};
const char* const kOverflow[] = {"99999999999999999999", "2147483648",
                                 "-99999999999999999999"};

TEST(EnvConfig, JobsUnsetAndEmptyFallBack) {
  ScopedUnsetEnv env("HLP_JOBS");
  EXPECT_EQ(flow::jobs_from_env(3), 3);
  env.set("");
  EXPECT_EQ(flow::jobs_from_env(7), 7);
}

TEST(EnvConfig, JobsParsesValidCounts) {
  ScopedUnsetEnv env("HLP_JOBS");
  env.set("1");
  EXPECT_EQ(flow::jobs_from_env(3), 1);
  env.set("16");
  EXPECT_EQ(flow::jobs_from_env(3), 16);
  env.set("2147483647");  // INT_MAX is the inclusive upper bound
  EXPECT_EQ(flow::jobs_from_env(3), 2147483647);
}

TEST(EnvConfig, JobsRejectsGarbageNegativeAndOverflow) {
  ScopedUnsetEnv env("HLP_JOBS");
  for (const char* bad : kGarbage) {
    env.set(bad);
    EXPECT_THROW(flow::jobs_from_env(3), Error) << "input '" << bad << "'";
  }
  for (const char* bad : kNonPositive) {
    env.set(bad);
    EXPECT_THROW(flow::jobs_from_env(3), Error) << "input '" << bad << "'";
  }
  for (const char* bad : kOverflow) {
    env.set(bad);
    EXPECT_THROW(flow::jobs_from_env(3), Error) << "input '" << bad << "'";
  }
}

TEST(EnvConfig, JobsErrorNamesTheVariableAndValue) {
  ScopedUnsetEnv env("HLP_JOBS");
  env.set("banana");
  try {
    flow::jobs_from_env(3);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("HLP_JOBS"), std::string::npos);
    EXPECT_NE(what.find("banana"), std::string::npos);
  }
}

TEST(EnvConfig, VectorsUnsetAndEmptyFallBack) {
  ScopedUnsetEnv env("HLP_VECTORS");
  EXPECT_EQ(vectors_from_env(123), 123);
  env.set("");
  EXPECT_EQ(vectors_from_env(456), 456);
}

TEST(EnvConfig, VectorsParsesValidCounts) {
  ScopedUnsetEnv env("HLP_VECTORS");
  env.set("1");
  EXPECT_EQ(vectors_from_env(123), 1);
  env.set("1000");
  EXPECT_EQ(vectors_from_env(123), 1000);
}

TEST(EnvConfig, VectorsRejectsGarbageNegativeAndOverflow) {
  ScopedUnsetEnv env("HLP_VECTORS");
  for (const char* bad : kGarbage) {
    env.set(bad);
    EXPECT_THROW(vectors_from_env(123), Error) << "input '" << bad << "'";
  }
  for (const char* bad : kNonPositive) {
    env.set(bad);
    EXPECT_THROW(vectors_from_env(123), Error) << "input '" << bad << "'";
  }
  for (const char* bad : kOverflow) {
    env.set(bad);
    EXPECT_THROW(vectors_from_env(123), Error) << "input '" << bad << "'";
  }
}

TEST(EnvConfig, CoalesceUnsetAndEmptyFallBack) {
  ScopedUnsetEnv env("HLP_COALESCE");
  EXPECT_TRUE(flow::coalesce_from_env(true));
  EXPECT_FALSE(flow::coalesce_from_env(false));
  env.set("");
  EXPECT_TRUE(flow::coalesce_from_env(true));
}

TEST(EnvConfig, CoalesceParsesZeroAndOneOnly) {
  ScopedUnsetEnv env("HLP_COALESCE");
  env.set("0");
  EXPECT_FALSE(flow::coalesce_from_env(true));
  env.set("1");
  EXPECT_TRUE(flow::coalesce_from_env(false));
  for (const char* bad : {"true", "false", "2", "on", "yes", "-1"}) {
    env.set(bad);
    EXPECT_THROW(flow::coalesce_from_env(true), Error)
        << "input '" << bad << "'";
  }
}

TEST(EnvConfig, SimdUnsetAndEmptyFallBack) {
  ScopedUnsetEnv env("HLP_SIMD");
  EXPECT_EQ(simd_mode_from_env(), SimdMode::kAuto);
  EXPECT_EQ(simd_mode_from_env(SimdMode::kX2), SimdMode::kX2);
  env.set("");
  EXPECT_EQ(simd_mode_from_env(SimdMode::kU64), SimdMode::kU64);
}

TEST(EnvConfig, SimdParsesEveryKnownMode) {
  ScopedUnsetEnv env("HLP_SIMD");
  for (const SimdMode mode : all_simd_modes()) {
    env.set(simd_mode_name(mode));
    EXPECT_EQ(simd_mode_from_env(SimdMode::kU64), mode)
        << simd_mode_name(mode);
  }
}

TEST(EnvConfig, SimdRejectsGarbage) {
  ScopedUnsetEnv env("HLP_SIMD");
  // Strictly the lowercase canonical names: no case folding, no aliases,
  // no lane counts, no trailing junk.
  for (const char* bad : {"AVX2", "Auto", "u_64", "128", "x16", "avx",
                          "sse2", "avx512vl", "u64 ", "1", "widest"}) {
    env.set(bad);
    EXPECT_THROW(simd_mode_from_env(), Error) << "input '" << bad << "'";
  }
}

TEST(EnvConfig, SimdErrorNamesTheVariableAndValue) {
  ScopedUnsetEnv env("HLP_SIMD");
  env.set("banana");
  try {
    simd_mode_from_env();
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("HLP_SIMD"), std::string::npos);
    EXPECT_NE(what.find("banana"), std::string::npos);
    EXPECT_NE(what.find("avx512"), std::string::npos);  // lists accepted set
  }
}

TEST(EnvConfig, SimdLaneWidths) {
  EXPECT_EQ(simd_lanes(SimdMode::kU64), 64);
  EXPECT_EQ(simd_lanes(SimdMode::kX2), 128);
  EXPECT_EQ(simd_lanes(SimdMode::kX4), 256);
  EXPECT_EQ(simd_lanes(SimdMode::kX8), 512);
  EXPECT_EQ(simd_lanes(SimdMode::kAvx2), 256);
  EXPECT_EQ(simd_lanes(SimdMode::kAvx512), 512);
  EXPECT_THROW(simd_lanes(SimdMode::kAuto), Error);  // resolve first
}

TEST(EnvConfig, SimdPortableModesAlwaysResolve) {
  for (const SimdMode mode :
       {SimdMode::kU64, SimdMode::kX2, SimdMode::kX4, SimdMode::kX8}) {
    EXPECT_TRUE(simd_mode_supported(mode)) << simd_mode_name(mode);
    EXPECT_EQ(resolve_simd_mode(mode), mode) << simd_mode_name(mode);
  }
}

TEST(EnvConfig, SimdAutoResolvesToASupportedConcreteMode) {
  const SimdMode resolved = resolve_simd_mode(SimdMode::kAuto);
  EXPECT_NE(resolved, SimdMode::kAuto);
  EXPECT_TRUE(simd_mode_supported(resolved));
  EXPECT_GE(simd_lanes(resolved), 64);
  // Auto must pick the widest intrinsic backend the CPU+build supports.
  if (simd_mode_supported(SimdMode::kAvx512))
    EXPECT_EQ(resolved, SimdMode::kAvx512);
  else if (simd_mode_supported(SimdMode::kAvx2))
    EXPECT_EQ(resolved, SimdMode::kAvx2);
  else
    EXPECT_EQ(resolved, SimdMode::kU64);
}

TEST(EnvConfig, SimdUnsupportedExplicitModesThrowNotDowngrade) {
  for (const SimdMode mode : {SimdMode::kAvx2, SimdMode::kAvx512}) {
    if (simd_mode_supported(mode)) {
      EXPECT_EQ(resolve_simd_mode(mode), mode) << simd_mode_name(mode);
    } else {
      // This CPU/build cannot honour the request: resolve must die loudly
      // (naming the mode), never quietly hand back a narrower backend.
      try {
        resolve_simd_mode(mode);
        FAIL() << "expected throw for " << simd_mode_name(mode);
      } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find(simd_mode_name(mode)),
                  std::string::npos);
      }
    }
  }
}

TEST(EnvConfig, SimdLanesAwareAutoNeverOverallocates) {
  ScopedUnsetEnv env("HLP_SIMD");
  // Auto sizes the word to the batch: narrowest supported backend that
  // covers the lane demand.
  EXPECT_EQ(effective_simd_mode(SimdMode::kAuto, 1), SimdMode::kU64);
  EXPECT_EQ(effective_simd_mode(SimdMode::kAuto, 64), SimdMode::kU64);
  EXPECT_EQ(effective_simd_mode(SimdMode::kAuto, 65), SimdMode::kX2);
  EXPECT_EQ(effective_simd_mode(SimdMode::kAuto, 128), SimdMode::kX2);
  const SimdMode want256 = simd_mode_supported(SimdMode::kAvx2)
                               ? SimdMode::kAvx2
                               : SimdMode::kX4;
  EXPECT_EQ(effective_simd_mode(SimdMode::kAuto, 129), want256);
  EXPECT_EQ(effective_simd_mode(SimdMode::kAuto, 256), want256);
  const SimdMode want512 = simd_mode_supported(SimdMode::kAvx512)
                               ? SimdMode::kAvx512
                               : SimdMode::kX8;
  EXPECT_EQ(effective_simd_mode(SimdMode::kAuto, 257), want512);
  EXPECT_EQ(effective_simd_mode(SimdMode::kAuto, 10000), want512);
  // Explicit modes (and an explicit HLP_SIMD) are never narrowed.
  EXPECT_EQ(effective_simd_mode(SimdMode::kX8, 1), SimdMode::kX8);
  env.set("x4");
  EXPECT_EQ(effective_simd_mode(SimdMode::kAuto, 1), SimdMode::kX4);
}

TEST(EnvConfig, SimdEffectiveModePrefersExplicitOverEnv) {
  ScopedUnsetEnv env("HLP_SIMD");
  // Explicit spec wins even when the env var is set...
  env.set("x4");
  EXPECT_EQ(effective_simd_mode(SimdMode::kX2), SimdMode::kX2);
  // ...and kAuto defers to the env var.
  EXPECT_EQ(effective_simd_mode(SimdMode::kAuto), SimdMode::kX4);
  // With nothing set, kAuto resolves like resolve_simd_mode(kAuto).
  ScopedUnsetEnv unset("HLP_SIMD");
  EXPECT_EQ(effective_simd_mode(SimdMode::kAuto),
            resolve_simd_mode(SimdMode::kAuto));
}

TEST(EnvConfig, SettleUnsetAndEmptyFallBack) {
  ScopedUnsetEnv env("HLP_SETTLE");
  EXPECT_EQ(settle_mode_from_env(), SettleMode::kAuto);
  EXPECT_EQ(settle_mode_from_env(SettleMode::kLevel), SettleMode::kLevel);
  env.set("");
  EXPECT_EQ(settle_mode_from_env(SettleMode::kEvent), SettleMode::kEvent);
}

TEST(EnvConfig, SettleParsesEveryKnownMode) {
  ScopedUnsetEnv env("HLP_SETTLE");
  for (const SettleMode mode : all_settle_modes()) {
    env.set(settle_mode_name(mode));
    EXPECT_EQ(settle_mode_from_env(SettleMode::kEvent), mode)
        << settle_mode_name(mode);
  }
}

TEST(EnvConfig, SettleRejectsGarbage) {
  ScopedUnsetEnv env("HLP_SETTLE");
  // Strictly the lowercase canonical names: no case folding, no aliases,
  // no trailing junk.
  for (const char* bad : {"LEVEL", "Event", "levelized", "event-driven",
                          "wavefront", "0", "1", "level ", " event", "both"}) {
    env.set(bad);
    EXPECT_THROW(settle_mode_from_env(), Error) << "input '" << bad << "'";
  }
}

TEST(EnvConfig, SettleErrorNamesTheVariableAndValue) {
  ScopedUnsetEnv env("HLP_SETTLE");
  env.set("banana");
  try {
    settle_mode_from_env();
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("HLP_SETTLE"), std::string::npos);
    EXPECT_NE(what.find("banana"), std::string::npos);
    EXPECT_NE(what.find("level"), std::string::npos);  // lists accepted set
  }
}

TEST(EnvConfig, SettleEffectiveModePrefersExplicitOverEnv) {
  ScopedUnsetEnv env("HLP_SETTLE");
  // Explicit spec wins even when the env var is set...
  env.set("level");
  EXPECT_EQ(effective_settle_mode(SettleMode::kEvent), SettleMode::kEvent);
  // ...and kAuto defers to the env var.
  EXPECT_EQ(effective_settle_mode(SettleMode::kAuto), SettleMode::kLevel);
  env.set("event");
  EXPECT_EQ(effective_settle_mode(SettleMode::kAuto), SettleMode::kEvent);
  // With nothing set, kAuto stays kAuto: the engine calibrates at runtime
  // (both engines are bit-identical, so any pick is sound).
  ScopedUnsetEnv unset("HLP_SETTLE");
  EXPECT_EQ(effective_settle_mode(SettleMode::kAuto), SettleMode::kAuto);
}

TEST(EnvConfig, DispatchUnsetAndEmptyFallBack) {
  ScopedUnsetEnv env("HLP_DISPATCH");
  EXPECT_EQ(flow::dispatch_mode_from_env(), flow::DispatchMode::kAuto);
  EXPECT_EQ(flow::dispatch_mode_from_env(flow::DispatchMode::kStream),
            flow::DispatchMode::kStream);
  env.set("");
  EXPECT_EQ(flow::dispatch_mode_from_env(flow::DispatchMode::kStatic),
            flow::DispatchMode::kStatic);
}

TEST(EnvConfig, DispatchParsesEveryKnownMode) {
  ScopedUnsetEnv env("HLP_DISPATCH");
  for (const flow::DispatchMode mode : flow::all_dispatch_modes()) {
    env.set(flow::dispatch_mode_name(mode));
    EXPECT_EQ(flow::dispatch_mode_from_env(flow::DispatchMode::kStatic), mode)
        << flow::dispatch_mode_name(mode);
  }
}

TEST(EnvConfig, DispatchRejectsGarbage) {
  ScopedUnsetEnv env("HLP_DISPATCH");
  // Strictly the lowercase canonical names: no case folding, no aliases,
  // no trailing junk.
  for (const char* bad : {"STATIC", "Stream", "steal", "work-stealing",
                          "dynamic", "0", "1", "stream ", " static", "both"}) {
    env.set(bad);
    EXPECT_THROW(flow::dispatch_mode_from_env(), Error)
        << "input '" << bad << "'";
  }
}

TEST(EnvConfig, DispatchErrorNamesTheVariableAndValue) {
  ScopedUnsetEnv env("HLP_DISPATCH");
  env.set("banana");
  try {
    flow::dispatch_mode_from_env();
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("HLP_DISPATCH"), std::string::npos);
    EXPECT_NE(what.find("banana"), std::string::npos);
    EXPECT_NE(what.find("stream"), std::string::npos);  // lists accepted set
  }
}

TEST(EnvConfig, DispatchEffectiveModePrefersExplicitOverEnv) {
  ScopedUnsetEnv env("HLP_DISPATCH");
  // Explicit spec wins even when the env var is set...
  env.set("stream");
  EXPECT_EQ(flow::effective_dispatch_mode(flow::DispatchMode::kStatic),
            flow::DispatchMode::kStatic);
  // ...and kAuto defers to the env var.
  EXPECT_EQ(flow::effective_dispatch_mode(flow::DispatchMode::kAuto),
            flow::DispatchMode::kStream);
  env.set("static");
  EXPECT_EQ(flow::effective_dispatch_mode(flow::DispatchMode::kAuto),
            flow::DispatchMode::kStatic);
  // With nothing set, kAuto stays kAuto until a worker count resolves it.
  ScopedUnsetEnv unset("HLP_DISPATCH");
  EXPECT_EQ(flow::effective_dispatch_mode(flow::DispatchMode::kAuto),
            flow::DispatchMode::kAuto);
}

TEST(EnvConfig, DispatchAutoResolvesByWorkerCount) {
  ScopedUnsetEnv env("HLP_DISPATCH");
  // Unresolved auto picks stream whenever the run actually distributes.
  EXPECT_EQ(flow::resolve_dispatch_mode(flow::DispatchMode::kAuto, 1),
            flow::DispatchMode::kStatic);
  EXPECT_EQ(flow::resolve_dispatch_mode(flow::DispatchMode::kAuto, 2),
            flow::DispatchMode::kStream);
  EXPECT_EQ(flow::resolve_dispatch_mode(flow::DispatchMode::kAuto, 8),
            flow::DispatchMode::kStream);
  // An explicit mode (argument or env) pins the choice at any count.
  EXPECT_EQ(flow::resolve_dispatch_mode(flow::DispatchMode::kStatic, 8),
            flow::DispatchMode::kStatic);
  env.set("static");
  EXPECT_EQ(flow::resolve_dispatch_mode(flow::DispatchMode::kAuto, 8),
            flow::DispatchMode::kStatic);
  env.set("stream");
  EXPECT_EQ(flow::resolve_dispatch_mode(flow::DispatchMode::kAuto, 1),
            flow::DispatchMode::kStream);
}

TEST(EnvConfig, SaModeUnsetAndEmptyFallBack) {
  ScopedUnsetEnv env("HLP_SA_MODE");
  EXPECT_EQ(sa_mode_from_env(), SaMode::kEstimated);
  EXPECT_EQ(sa_mode_from_env(SaMode::kExact), SaMode::kExact);
  env.set("");
  EXPECT_EQ(sa_mode_from_env(SaMode::kSimulated), SaMode::kSimulated);
}

TEST(EnvConfig, SaModeParsesEveryKnownMode) {
  ScopedUnsetEnv env("HLP_SA_MODE");
  for (const SaMode mode : all_sa_modes()) {
    env.set(sa_mode_name(mode));
    EXPECT_EQ(sa_mode_from_env(SaMode::kSimulated), mode)
        << sa_mode_name(mode);
  }
}

TEST(EnvConfig, SaModeRejectsGarbage) {
  ScopedUnsetEnv env("HLP_SA_MODE");
  // Strictly the lowercase canonical names: no case folding, no aliases,
  // no trailing junk, and — unlike HLP_SIMD/HLP_SETTLE — no "auto": the
  // modes return *different values*, so a deferred pick has no meaning.
  for (const char* bad : {"ESTIMATE", "Sim", "Exact", "simulate", "estimated",
                          "bdd", "mc", "auto", "exact ", " sim", "0", "1"}) {
    env.set(bad);
    EXPECT_THROW(sa_mode_from_env(), Error) << "input '" << bad << "'";
  }
}

TEST(EnvConfig, SaModeErrorNamesTheVariableAndValue) {
  ScopedUnsetEnv env("HLP_SA_MODE");
  env.set("banana");
  try {
    sa_mode_from_env();
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("HLP_SA_MODE"), std::string::npos);
    EXPECT_NE(what.find("banana"), std::string::npos);
    EXPECT_NE(what.find("exact"), std::string::npos);  // lists accepted set
  }
}

TEST(EnvConfig, SaModeEffectiveModePrefersExplicitOverEnv) {
  ScopedUnsetEnv env("HLP_SA_MODE");
  // An explicit request wins even when the env var is set...
  env.set("exact");
  EXPECT_EQ(effective_sa_mode(SaMode::kSimulated), SaMode::kSimulated);
  // ...and an absent request defers to the env var.
  EXPECT_EQ(effective_sa_mode(std::nullopt), SaMode::kExact);
  env.set("sim");
  EXPECT_EQ(effective_sa_mode(std::nullopt), SaMode::kSimulated);
  // With nothing set anywhere, the resolution is always concrete: the
  // seed default, kEstimated. There is no deferred "auto" SA mode.
  ScopedUnsetEnv unset("HLP_SA_MODE");
  EXPECT_EQ(effective_sa_mode(std::nullopt), SaMode::kEstimated);
  EXPECT_EQ(effective_sa_mode(SaMode::kExact), SaMode::kExact);
}

TEST(EnvConfig, ExactBudgetUnsetAndEmptyFallBack) {
  ScopedUnsetEnv env("HLP_EXACT_BUDGET");
  EXPECT_EQ(exact_budget_from_env(20000), 20000);
  env.set("");
  EXPECT_EQ(exact_budget_from_env(5), 5);
}

TEST(EnvConfig, ExactBudgetParsesValidCounts) {
  ScopedUnsetEnv env("HLP_EXACT_BUDGET");
  env.set("1");  // smallest legal budget: every gate cone falls back
  EXPECT_EQ(exact_budget_from_env(20000), 1);
  env.set("1000000");
  EXPECT_EQ(exact_budget_from_env(20000), 1000000);
  env.set("2147483647");  // INT_MAX is the inclusive upper bound
  EXPECT_EQ(exact_budget_from_env(20000), 2147483647);
}

TEST(EnvConfig, ExactBudgetRejectsGarbageNegativeAndOverflow) {
  ScopedUnsetEnv env("HLP_EXACT_BUDGET");
  for (const char* bad : kGarbage) {
    env.set(bad);
    EXPECT_THROW(exact_budget_from_env(20000), Error)
        << "input '" << bad << "'";
  }
  for (const char* bad : kNonPositive) {
    env.set(bad);
    EXPECT_THROW(exact_budget_from_env(20000), Error)
        << "input '" << bad << "'";
  }
  for (const char* bad : kOverflow) {
    env.set(bad);
    EXPECT_THROW(exact_budget_from_env(20000), Error)
        << "input '" << bad << "'";
  }
}

TEST(EnvConfig, ExactBudgetErrorNamesTheVariableAndValue) {
  ScopedUnsetEnv env("HLP_EXACT_BUDGET");
  env.set("banana");
  try {
    exact_budget_from_env(20000);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("HLP_EXACT_BUDGET"), std::string::npos);
    EXPECT_NE(what.find("banana"), std::string::npos);
  }
}

TEST(EnvConfig, StoreUnsetAndEmptyFallBack) {
  ScopedUnsetEnv env("HLP_STORE");
  EXPECT_EQ(flow::store_dir_from_env(""), "");
  EXPECT_EQ(flow::store_dir_from_env("/some/dir"), "/some/dir");
  env.set("");
  EXPECT_EQ(flow::store_dir_from_env("/other"), "/other");
}

TEST(EnvConfig, StoreEnvSetsTheRunnerDefault) {
  ScopedUnsetEnv env("HLP_STORE");
  flow::ExperimentRunner off(1);
  EXPECT_TRUE(off.store_dir().empty());  // unset = no persistent store
  const std::string dir = ::testing::TempDir() + "/env_store_default";
  env.set(dir.c_str());
  flow::ExperimentRunner on(1);
  EXPECT_EQ(on.store_dir(), dir);
  ASSERT_NE(on.artifact_store(), nullptr);
  EXPECT_EQ(on.artifact_store()->root(), dir);
}

TEST(EnvConfig, StorePrefersExplicitOverEnv) {
  ScopedUnsetEnv env("HLP_STORE");
  env.set((::testing::TempDir() + "/env_store_loser").c_str());
  const std::string dir = ::testing::TempDir() + "/env_store_winner";
  flow::ExperimentRunner runner(1);
  runner.set_store_dir(dir);
  EXPECT_EQ(runner.store_dir(), dir);
  ASSERT_NE(runner.artifact_store(), nullptr);
  EXPECT_EQ(runner.artifact_store()->root(), dir);
  // Explicit empty turns the store OFF even with the env var set.
  flow::ExperimentRunner none(1);
  none.set_store_dir("");
  EXPECT_EQ(none.artifact_store(), nullptr);
}

TEST(EnvConfig, StoreGarbagePathErrorNamesTheVariableAndValue) {
  ScopedUnsetEnv env("HLP_STORE");
  // A path that cannot be a directory: opening must die loudly, naming
  // the variable the bad value came from — not degrade to a cold run.
  env.set("/dev/null/nope");
  flow::ExperimentRunner runner(1);
  try {
    runner.artifact_store();
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("HLP_STORE"), std::string::npos);
    EXPECT_NE(what.find("/dev/null/nope"), std::string::npos);
  }
  // The same bad path via the explicit setter blames the path, not the
  // (unrelated) environment variable.
  flow::ExperimentRunner explicit_runner(1);
  explicit_runner.set_store_dir("/dev/null/nope");
  try {
    explicit_runner.artifact_store();
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.find("HLP_STORE"), std::string::npos) << what;
    EXPECT_NE(what.find("/dev/null/nope"), std::string::npos);
  }
}

TEST(EnvConfig, CoalesceEnvSetsTheRunnerDefault) {
  ScopedUnsetEnv env("HLP_COALESCE");
  env.set("0");
  flow::ExperimentRunner off(1);
  EXPECT_FALSE(off.coalescing());
  env.set("1");
  flow::ExperimentRunner on(1);
  EXPECT_TRUE(on.coalescing());
}

}  // namespace
}  // namespace hlp
