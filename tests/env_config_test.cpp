// Dedicated coverage for the strict env-var parsers: HLP_JOBS
// (flow::jobs_from_env), HLP_VECTORS (vectors_from_env) and HLP_COALESCE
// (flow::coalesce_from_env). Garbage, negative, zero, overflow and unset
// inputs each have a pinned behaviour: unset/empty falls back, everything
// invalid throws — a sweep must die loudly, not run with a silently
// defaulted configuration.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/error.hpp"
#include "flow/experiment.hpp"
#include "rtl/flow.hpp"

namespace hlp {
namespace {

// RAII: every test leaves the variable unset no matter how it exits.
class ScopedUnsetEnv {
 public:
  explicit ScopedUnsetEnv(const char* name) : name_(name) { unset(); }
  ~ScopedUnsetEnv() { unset(); }
  void set(const char* value) { ASSERT_EQ(setenv(name_, value, 1), 0); }

 private:
  void unset() { unsetenv(name_); }
  const char* name_;
};

const char* const kGarbage[] = {"abc", "12abc", "1e3", "0x10", "4.5", "--2"};
const char* const kNonPositive[] = {"0", "-1", "-5"};
const char* const kOverflow[] = {"99999999999999999999", "2147483648",
                                 "-99999999999999999999"};

TEST(EnvConfig, JobsUnsetAndEmptyFallBack) {
  ScopedUnsetEnv env("HLP_JOBS");
  EXPECT_EQ(flow::jobs_from_env(3), 3);
  env.set("");
  EXPECT_EQ(flow::jobs_from_env(7), 7);
}

TEST(EnvConfig, JobsParsesValidCounts) {
  ScopedUnsetEnv env("HLP_JOBS");
  env.set("1");
  EXPECT_EQ(flow::jobs_from_env(3), 1);
  env.set("16");
  EXPECT_EQ(flow::jobs_from_env(3), 16);
  env.set("2147483647");  // INT_MAX is the inclusive upper bound
  EXPECT_EQ(flow::jobs_from_env(3), 2147483647);
}

TEST(EnvConfig, JobsRejectsGarbageNegativeAndOverflow) {
  ScopedUnsetEnv env("HLP_JOBS");
  for (const char* bad : kGarbage) {
    env.set(bad);
    EXPECT_THROW(flow::jobs_from_env(3), Error) << "input '" << bad << "'";
  }
  for (const char* bad : kNonPositive) {
    env.set(bad);
    EXPECT_THROW(flow::jobs_from_env(3), Error) << "input '" << bad << "'";
  }
  for (const char* bad : kOverflow) {
    env.set(bad);
    EXPECT_THROW(flow::jobs_from_env(3), Error) << "input '" << bad << "'";
  }
}

TEST(EnvConfig, JobsErrorNamesTheVariableAndValue) {
  ScopedUnsetEnv env("HLP_JOBS");
  env.set("banana");
  try {
    flow::jobs_from_env(3);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("HLP_JOBS"), std::string::npos);
    EXPECT_NE(what.find("banana"), std::string::npos);
  }
}

TEST(EnvConfig, VectorsUnsetAndEmptyFallBack) {
  ScopedUnsetEnv env("HLP_VECTORS");
  EXPECT_EQ(vectors_from_env(123), 123);
  env.set("");
  EXPECT_EQ(vectors_from_env(456), 456);
}

TEST(EnvConfig, VectorsParsesValidCounts) {
  ScopedUnsetEnv env("HLP_VECTORS");
  env.set("1");
  EXPECT_EQ(vectors_from_env(123), 1);
  env.set("1000");
  EXPECT_EQ(vectors_from_env(123), 1000);
}

TEST(EnvConfig, VectorsRejectsGarbageNegativeAndOverflow) {
  ScopedUnsetEnv env("HLP_VECTORS");
  for (const char* bad : kGarbage) {
    env.set(bad);
    EXPECT_THROW(vectors_from_env(123), Error) << "input '" << bad << "'";
  }
  for (const char* bad : kNonPositive) {
    env.set(bad);
    EXPECT_THROW(vectors_from_env(123), Error) << "input '" << bad << "'";
  }
  for (const char* bad : kOverflow) {
    env.set(bad);
    EXPECT_THROW(vectors_from_env(123), Error) << "input '" << bad << "'";
  }
}

TEST(EnvConfig, CoalesceUnsetAndEmptyFallBack) {
  ScopedUnsetEnv env("HLP_COALESCE");
  EXPECT_TRUE(flow::coalesce_from_env(true));
  EXPECT_FALSE(flow::coalesce_from_env(false));
  env.set("");
  EXPECT_TRUE(flow::coalesce_from_env(true));
}

TEST(EnvConfig, CoalesceParsesZeroAndOneOnly) {
  ScopedUnsetEnv env("HLP_COALESCE");
  env.set("0");
  EXPECT_FALSE(flow::coalesce_from_env(true));
  env.set("1");
  EXPECT_TRUE(flow::coalesce_from_env(false));
  for (const char* bad : {"true", "false", "2", "on", "yes", "-1"}) {
    env.set(bad);
    EXPECT_THROW(flow::coalesce_from_env(true), Error)
        << "input '" << bad << "'";
  }
}

TEST(EnvConfig, CoalesceEnvSetsTheRunnerDefault) {
  ScopedUnsetEnv env("HLP_COALESCE");
  env.set("0");
  flow::ExperimentRunner off(1);
  EXPECT_FALSE(off.coalescing());
  env.set("1");
  flow::ExperimentRunner on(1);
  EXPECT_TRUE(on.coalescing());
}

}  // namespace
}  // namespace hlp
