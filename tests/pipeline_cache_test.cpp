// Tests for the per-binding StageCache: hits skip the bind-fus..time span
// (elaborate/map included), binding_hash() cannot collide across differing
// BinderSpec/rc/width, cached and uncached outcomes are equal, and custom
// stage overrides opt the pipeline out of caching entirely — plus the
// persistent tier underneath it (HLP_STORE / ExperimentRunner store
// wiring): a warm second run against the same artifact store skips
// elaborate/map/time bit-identically from a cold process.
//
// The direct-FlowContext tests construct their contexts by hand, which
// never binds an artifact store — their hit/miss/size counters stay exact
// whatever HLP_STORE says in the surrounding environment.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "cdfg/benchmarks.hpp"
#include "flow/experiment.hpp"
#include "flow/flow_context.hpp"
#include "flow/job_io.hpp"
#include "flow/pipeline.hpp"
#include "store/artifact_store.hpp"

namespace hlp {
namespace {

constexpr int kWidth = 4;
constexpr int kVectors = 12;

flow::ContextOptions small_options(int width = kWidth) {
  flow::ContextOptions opt;
  opt.width = width;
  return opt;
}

flow::RunSpec hlp_spec() {
  flow::RunSpec spec;
  spec.binder.name = "hlpower";
  spec.num_vectors = kVectors;
  return spec;
}

bool cached(const flow::PipelineOutcome& out, const std::string& stage) {
  return std::find(out.cached_stages.begin(), out.cached_stages.end(),
                   stage) != out.cached_stages.end();
}

void expect_equal_outcomes(const flow::PipelineOutcome& a,
                           const flow::PipelineOutcome& b) {
  EXPECT_EQ(a.fus.fu_of_op, b.fus.fu_of_op);
  EXPECT_EQ(a.refined, b.refined);
  EXPECT_EQ(a.flow.mapped.num_luts, b.flow.mapped.num_luts);
  EXPECT_EQ(a.flow.mapped.depth, b.flow.mapped.depth);
  EXPECT_EQ(a.flow.clock_period_ns, b.flow.clock_period_ns);
  EXPECT_EQ(a.flow.sim.toggles, b.flow.sim.toggles);
  EXPECT_EQ(a.flow.sim.total_transitions, b.flow.sim.total_transitions);
  EXPECT_EQ(a.flow.sim.functional_transitions,
            b.flow.sim.functional_transitions);
  EXPECT_EQ(a.flow.report.dynamic_power_mw, b.flow.report.dynamic_power_mw);
  EXPECT_EQ(a.flow.report.toggle_rate_mps, b.flow.report.toggle_rate_mps);
  EXPECT_EQ(a.flow.mux_stats.mux_length, b.flow.mux_stats.mux_length);
}

TEST(StageCache, SecondRunHitsAndSkipsElaborateAndMap) {
  flow::FlowContext ctx(make_paper_benchmark("pr"), {2, 2}, small_options());
  const flow::Pipeline pipeline = flow::Pipeline::standard();

  const flow::PipelineOutcome first = pipeline.run(ctx, hlp_spec());
  EXPECT_TRUE(first.cached_stages.empty());
  EXPECT_EQ(ctx.stage_cache().hits(), 0u);
  EXPECT_EQ(ctx.stage_cache().misses(), 1u);
  EXPECT_EQ(ctx.stage_cache().size(), 1u);

  const flow::PipelineOutcome second = pipeline.run(ctx, hlp_spec());
  EXPECT_EQ(ctx.stage_cache().hits(), 1u);
  EXPECT_EQ(ctx.stage_cache().misses(), 1u);
  // The whole bind-fus..time span came from the cache, elaborate and map
  // included; the seed-dependent tail (simulate, power) still ran.
  for (const char* stage :
       {"bind-fus", "refine", "elaborate", "map", "time"})
    EXPECT_TRUE(cached(second, stage)) << stage;
  EXPECT_FALSE(cached(second, "simulate"));
  EXPECT_FALSE(cached(second, "power"));
  // The timing ledger still has one entry per stage, in order.
  ASSERT_EQ(second.timings.size(), flow::Pipeline::stage_names().size());
  expect_equal_outcomes(first, second);
}

TEST(StageCache, DistinctSpecsMissAndCoexist) {
  flow::FlowContext ctx(make_paper_benchmark("pr"), {2, 2}, small_options());
  const flow::Pipeline pipeline = flow::Pipeline::standard();

  flow::RunSpec lopass;
  lopass.binder.name = "lopass";
  lopass.num_vectors = kVectors;
  flow::RunSpec half = hlp_spec();
  flow::RunSpec one = hlp_spec();
  one.binder.alpha = 1.0;

  pipeline.run(ctx, lopass);
  pipeline.run(ctx, half);
  pipeline.run(ctx, one);
  EXPECT_EQ(ctx.stage_cache().size(), 3u);
  EXPECT_EQ(ctx.stage_cache().hits(), 0u);

  // Revisiting any of the three hits its own entry.
  const auto again = pipeline.run(ctx, lopass);
  EXPECT_EQ(ctx.stage_cache().hits(), 1u);
  EXPECT_TRUE(cached(again, "elaborate"));
}

TEST(StageCache, BindingHashCannotCollideAcrossTheTestGrid) {
  // The "hash" is an exact serialisation of every field the cached span
  // reads, so distinct (BinderSpec, rc, width) grid points must map to
  // distinct keys — collision-freedom by construction, verified here over
  // the full cross product.
  std::set<std::string> hashes;
  std::size_t points = 0;
  for (const int width : {4, 8})
    for (const ResourceConstraint rc :
         {ResourceConstraint{2, 2}, ResourceConstraint{3, 2},
          ResourceConstraint{2, 3}, ResourceConstraint{3, 3}}) {
      flow::FlowContext ctx(make_paper_benchmark("pr"), rc,
                            small_options(width));
      for (const char* name : {"hlpower", "lopass"})
        for (const double alpha : {0.25, 0.5, 1.0})
          for (const double beta : {-1.0, 0.5})
            for (const bool refine : {false, true})
              for (const double lut_delay : {0.45, 0.9}) {
                flow::BinderSpec spec{name};
                spec.alpha = alpha;
                spec.beta_add = beta;
                spec.refine = refine;
                TimingModel timing;
                timing.lut_delay_ns = lut_delay;
                hashes.insert(ctx.binding_hash(spec, MapParams{}, timing));
                ++points;
              }
    }
  EXPECT_EQ(hashes.size(), points);
}

TEST(StageCache, TimingModelIsPartOfTheKey) {
  // The cached span ends at `time`, whose output depends on the timing
  // model — two runs differing only in RunSpec::timing must not share an
  // entry (regression: a hit used to install the first model's clock).
  flow::FlowContext ctx(make_paper_benchmark("pr"), {2, 2}, small_options());
  const flow::Pipeline pipeline = flow::Pipeline::standard();
  flow::RunSpec fast = hlp_spec();
  flow::RunSpec slow = hlp_spec();
  slow.timing.lut_delay_ns = 2 * fast.timing.lut_delay_ns;
  const auto a = pipeline.run(ctx, fast);
  const auto b = pipeline.run(ctx, slow);
  EXPECT_EQ(ctx.stage_cache().hits(), 0u);
  EXPECT_EQ(ctx.stage_cache().size(), 2u);
  EXPECT_GT(b.flow.clock_period_ns, a.flow.clock_period_ns);
  // Re-running each spec hits its own entry with its own clock.
  const auto b2 = pipeline.run(ctx, slow);
  EXPECT_EQ(ctx.stage_cache().hits(), 1u);
  EXPECT_EQ(b2.flow.clock_period_ns, b.flow.clock_period_ns);
}

TEST(StageCache, CachedAndUncachedOutcomesAreEqual) {
  // Same context, caching on vs off: identical numbers either way.
  flow::FlowContext ctx(make_paper_benchmark("wang"), {2, 2}, small_options());
  const flow::Pipeline pipeline = flow::Pipeline::standard();

  flow::RunSpec uncached_spec = hlp_spec();
  uncached_spec.use_stage_cache = false;
  const auto uncached1 = pipeline.run(ctx, uncached_spec);
  const auto uncached2 = pipeline.run(ctx, uncached_spec);
  EXPECT_EQ(ctx.stage_cache().size(), 0u);
  EXPECT_EQ(ctx.stage_cache().hits() + ctx.stage_cache().misses(), 0u);

  const auto miss = pipeline.run(ctx, hlp_spec());   // populates
  const auto hit = pipeline.run(ctx, hlp_spec());    // reuses
  EXPECT_EQ(ctx.stage_cache().hits(), 1u);
  expect_equal_outcomes(uncached1, uncached2);
  expect_equal_outcomes(uncached1, miss);
  expect_equal_outcomes(uncached1, hit);
}

TEST(StageCache, RefineArtifactsRoundTrip) {
  flow::FlowContext ctx(make_paper_benchmark("pr"), {2, 2}, small_options());
  const flow::Pipeline pipeline = flow::Pipeline::standard();
  flow::RunSpec spec = hlp_spec();
  spec.binder.refine = true;

  const auto first = pipeline.run(ctx, spec);
  const auto second = pipeline.run(ctx, spec);
  ASSERT_TRUE(first.refined);
  ASSERT_TRUE(second.refined);
  EXPECT_TRUE(cached(second, "refine"));
  EXPECT_EQ(first.refine.cost_before, second.refine.cost_before);
  EXPECT_EQ(first.refine.cost_after, second.refine.cost_after);
  expect_equal_outcomes(first, second);
}

TEST(StageCache, ReplacedStageOptsOutOfCaching) {
  // A pipeline with a custom pre-simulate stage must not read OR write the
  // cache: the binding hash cannot see the override's body, so caching
  // would serve another pipeline's artifacts for the same spec.
  flow::FlowContext ctx(make_paper_benchmark("pr"), {2, 2}, small_options());
  flow::Pipeline custom = flow::Pipeline::standard();
  int calls = 0;
  custom.replace("map", [&calls](flow::PipelineState& st) {
    ++calls;
    st.out.flow.mapped = tech_map(st.datapath.netlist, st.spec.map);
  });
  custom.run(ctx, hlp_spec());
  custom.run(ctx, hlp_spec());
  EXPECT_EQ(calls, 2);  // no hit short-circuited the override
  EXPECT_EQ(ctx.stage_cache().size(), 0u);
  EXPECT_EQ(ctx.stage_cache().hits() + ctx.stage_cache().misses(), 0u);

  // Replacing only a post-simulate stage keeps caching sound and on.
  flow::Pipeline tail = flow::Pipeline::standard();
  tail.replace("power", [](flow::PipelineState&) {});
  tail.run(ctx, hlp_spec());
  EXPECT_EQ(ctx.stage_cache().misses(), 1u);
  EXPECT_EQ(ctx.stage_cache().size(), 1u);
}

TEST(StageCache, BatchRunsShareTheCacheWithSingleRuns) {
  // run_batch populates the same per-context cache run() reads, and vice
  // versa — a seed sweep after a single probe run skips straight to
  // simulate.
  flow::FlowContext ctx(make_paper_benchmark("pr"), {2, 2}, small_options());
  const flow::Pipeline pipeline = flow::Pipeline::standard();
  const auto probe = pipeline.run(ctx, hlp_spec());
  const auto batch = pipeline.run_batch(ctx, hlp_spec(), {5, 6, 7});
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(ctx.stage_cache().hits(), 1u);
  for (const auto& out : batch) {
    EXPECT_TRUE(std::find(out.cached_stages.begin(), out.cached_stages.end(),
                          "elaborate") != out.cached_stages.end());
    EXPECT_EQ(out.fus.fu_of_op, probe.fus.fu_of_op);
    EXPECT_EQ(out.flow.clock_period_ns, probe.flow.clock_period_ns);
  }
  // Seed 42 is the probe's default: lane results match the single run.
  const auto again = pipeline.run_batch(ctx, hlp_spec(), {42});
  EXPECT_EQ(again[0].flow.sim.toggles, probe.flow.sim.toggles);
  EXPECT_EQ(again[0].flow.report.dynamic_power_mw,
            probe.flow.report.dynamic_power_mw);
}

// --- the persistent tier: ExperimentRunner + ArtifactStore ---------------

std::vector<flow::Job> store_grid() {
  std::vector<flow::Job> jobs;
  for (const char* bench : {"pr", "wang"})
    for (const std::uint64_t seed : {42ull, 7ull}) {
      flow::Job j;
      j.benchmark = bench;
      j.binder.name = "hlpower";
      j.width = kWidth;
      j.num_vectors = kVectors;
      j.seed = seed;
      jobs.push_back(j);
    }
  return jobs;
}

std::string fresh_store_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(StageCacheStore, WarmRunnerSkipsTheCachedSpanBitIdentically) {
  const std::string dir = fresh_store_dir("pipeline_store_warm");
  const std::vector<flow::Job> jobs = store_grid();

  // Cold: a fresh runner computes everything and publishes each context's
  // bind-fus..time entry into the store.
  std::vector<flow::JobResult> cold;
  {
    flow::ExperimentRunner runner(2);
    runner.set_store_dir(dir);
    cold = runner.run(jobs);
    ASSERT_NE(runner.artifact_store(), nullptr);
    EXPECT_EQ(runner.artifact_store()->hits(), 0u);
    EXPECT_GT(runner.artifact_store()->publishes(), 0u);
    EXPECT_GT(runner.artifact_store()->size(), 0u);
  }
  for (const auto& r : cold) ASSERT_TRUE(r.ok) << r.error;

  // Warm: a NEW runner (fresh process state: empty in-memory caches)
  // against the same store must reuse every entry — the expensive span is
  // skipped wholesale and the numbers are bit-identical.
  flow::ExperimentRunner warm_runner(2);
  warm_runner.set_store_dir(dir);
  const std::vector<flow::JobResult> warm = warm_runner.run(jobs);
  ASSERT_NE(warm_runner.artifact_store(), nullptr);
  EXPECT_GT(warm_runner.artifact_store()->hits(), 0u);
  EXPECT_EQ(warm_runner.artifact_store()->rejected(), 0u);
  // Nothing new to say: every publish was a byte-equal no-op.
  EXPECT_EQ(warm_runner.artifact_store()->publishes(), 0u);

  ASSERT_EQ(warm.size(), cold.size());
  for (std::size_t i = 0; i < warm.size(); ++i) {
    ASSERT_TRUE(warm[i].ok) << warm[i].error;
    EXPECT_TRUE(flow::same_outcome(cold[i], warm[i])) << "job " << i;
    // The whole cached span came off disk, elaborate/map/time included.
    for (const char* stage : {"bind-fus", "elaborate", "map", "time"})
      EXPECT_TRUE(cached(warm[i].outcome, stage))
          << "job " << i << " stage " << stage;
  }
}

TEST(StageCacheStore, RunnersWithoutAStoreStayCold) {
  // No store dir: two fresh runners never share artifacts (the pre-store
  // behaviour), pinning that persistence is strictly opt-in.
  const std::vector<flow::Job> jobs = {store_grid()[0]};
  flow::ExperimentRunner a(1), b(1);
  a.set_store_dir("");
  b.set_store_dir("");
  const auto ra = a.run(jobs);
  const auto rb = b.run(jobs);
  ASSERT_TRUE(ra[0].ok && rb[0].ok);
  EXPECT_TRUE(ra[0].outcome.cached_stages.empty());
  EXPECT_TRUE(rb[0].outcome.cached_stages.empty());
  EXPECT_TRUE(flow::same_outcome(ra[0], rb[0]));
  EXPECT_EQ(a.artifact_store(), nullptr);
}

TEST(StageCacheStore, CorruptStoreDegradesToAColdRunAndSelfHeals) {
  const std::string dir = fresh_store_dir("pipeline_store_corrupt");
  const std::vector<flow::Job> jobs = {store_grid()[0]};
  std::vector<flow::JobResult> cold;
  {
    flow::ExperimentRunner runner(1);
    runner.set_store_dir(dir);
    cold = runner.run(jobs);
    ASSERT_TRUE(cold[0].ok) << cold[0].error;
    ASSERT_EQ(runner.artifact_store()->size(), 1u);
  }
  // Truncate every object: a warm run must fall back to computing (and
  // republish the repaired entries), never fail or serve garbage.
  for (const auto& de :
       std::filesystem::directory_iterator(dir + "/objects")) {
    const auto sz = std::filesystem::file_size(de.path());
    std::filesystem::resize_file(de.path(), sz / 2);
  }
  flow::ExperimentRunner warm(1);
  warm.set_store_dir(dir);
  const auto again = warm.run(jobs);
  ASSERT_TRUE(again[0].ok) << again[0].error;
  EXPECT_TRUE(again[0].outcome.cached_stages.empty());  // cold recompute
  EXPECT_GT(warm.artifact_store()->rejected(), 0u);
  EXPECT_GT(warm.artifact_store()->publishes(), 0u);  // repaired
  EXPECT_TRUE(flow::same_outcome(cold[0], again[0]));

  // Third run: the repair made the store warm again.
  flow::ExperimentRunner healed(1);
  healed.set_store_dir(dir);
  const auto third = healed.run(jobs);
  ASSERT_TRUE(third[0].ok) << third[0].error;
  EXPECT_TRUE(cached(third[0].outcome, "elaborate"));
  EXPECT_TRUE(flow::same_outcome(cold[0], third[0]));
}

}  // namespace
}  // namespace hlp
