// Whole-pipeline integration tests on the paper's benchmarks: both binders
// run the full flow end to end, and the paper's headline directional claims
// hold in aggregate (HLPower alpha=0.5 reduces toggle rate and muxDiff
// versus LOPASS).
#include <gtest/gtest.h>

#include "binding/datapath_stats.hpp"
#include "binding/register_binder.hpp"
#include "cdfg/benchmarks.hpp"
#include "core/hlpower.hpp"
#include "lopass/lopass.hpp"
#include "rtl/flow.hpp"
#include "sched/list_scheduler.hpp"

namespace hlp {
namespace {

SaCache& shared_cache() {
  static SaCache cache(4);
  return cache;
}

ResourceConstraint table2_rc(const std::string& name) {
  if (name == "chem") return {9, 7};
  if (name == "dir") return {3, 2};
  if (name == "honda") return {4, 4};
  if (name == "mcm") return {4, 2};
  if (name == "pr") return {2, 2};
  if (name == "steam") return {7, 6};
  return {2, 2};  // wang
}

// Small benchmarks only in unit tests; the full set runs in bench/.
class SmallBenchmarkFlow : public ::testing::TestWithParam<std::string> {};

TEST_P(SmallBenchmarkFlow, BothBindersSurviveFullFlow) {
  const std::string name = GetParam();
  const Cdfg g = make_paper_benchmark(name);
  const ResourceConstraint rc = table2_rc(name);
  const Schedule s = list_schedule(g, rc);
  const RegisterBinding regs = bind_registers(g, s);

  Binding lop{regs, bind_fus_lopass(g, s, regs, rc)};
  Binding hlp_{regs, bind_fus_hlpower(g, s, regs, rc, shared_cache()).fus};
  EXPECT_NO_THROW(lop.fus.validate(g, s, rc));
  EXPECT_NO_THROW(hlp_.fus.validate(g, s, rc));

  FlowParams fp;
  fp.width = 4;
  fp.num_vectors = 25;
  const FlowResult rl = run_flow(g, s, lop, fp);
  const FlowResult rh = run_flow(g, s, hlp_, fp);
  EXPECT_GT(rl.report.dynamic_power_mw, 0.0);
  EXPECT_GT(rh.report.dynamic_power_mw, 0.0);
  // Same allocation on both sides (the paper's controlled comparison).
  EXPECT_EQ(lop.fus.num_fus(), hlp_.fus.num_fus());
}

INSTANTIATE_TEST_SUITE_P(Paper, SmallBenchmarkFlow,
                         ::testing::Values("pr", "wang"));

TEST(Integration, HlpowerReducesMuxDiffOnPaperBenchmarks) {
  // Table 4's direction: mean muxDiff (alpha=0.5) <= LOPASS's, averaged
  // over the benchmark suite.
  double lop_sum = 0.0, hlp_sum = 0.0;
  for (const std::string name : {"pr", "wang", "mcm", "honda", "dir"}) {
    const Cdfg g = make_paper_benchmark(name);
    const ResourceConstraint rc = table2_rc(name);
    const Schedule s = list_schedule(g, rc);
    const RegisterBinding regs = bind_registers(g, s);
    const FuBinding lop = bind_fus_lopass(g, s, regs, rc);
    HlpowerParams hp;
    hp.weight.alpha = 0.5;
    const FuBinding hb = bind_fus_hlpower(g, s, regs, rc, shared_cache(), hp).fus;
    lop_sum += compute_datapath_stats(g, regs, lop).muxdiff_mean;
    hlp_sum += compute_datapath_stats(g, regs, hb).muxdiff_mean;
  }
  EXPECT_LT(hlp_sum, lop_sum);
}

TEST(Integration, HlpowerReducesToggleRateOnAverage) {
  // Figure 3's direction on the two small benchmarks with a reduced vector
  // count: total unit-delay transitions per cycle, HLPower vs LOPASS.
  double lop_sum = 0.0, hlp_sum = 0.0;
  for (const std::string name : {"pr", "wang"}) {
    const Cdfg g = make_paper_benchmark(name);
    const ResourceConstraint rc = table2_rc(name);
    const Schedule s = list_schedule(g, rc);
    const RegisterBinding regs = bind_registers(g, s);
    FlowParams fp;
    fp.width = 4;
    fp.num_vectors = 30;
    const FlowResult rl =
        run_flow(g, s, Binding{regs, bind_fus_lopass(g, s, regs, rc)}, fp);
    const FlowResult rh = run_flow(
        g, s,
        Binding{regs, bind_fus_hlpower(g, s, regs, rc, shared_cache()).fus},
        fp);
    lop_sum += rl.sim.transitions_per_cycle();
    hlp_sum += rh.sim.transitions_per_cycle();
  }
  EXPECT_LT(hlp_sum, lop_sum * 1.05)
      << "HLPower should not be meaningfully glitchier than LOPASS";
}

TEST(Integration, SharedRegistersIdenticalAcrossBinders) {
  // The paper's setup: identical schedules and register bindings. Verify
  // our harness reuses the objects rather than re-deriving them.
  const Cdfg g = make_paper_benchmark("wang");
  const ResourceConstraint rc = table2_rc("wang");
  const Schedule s = list_schedule(g, rc);
  const RegisterBinding r1 = bind_registers(g, s, 42);
  const RegisterBinding r2 = bind_registers(g, s, 42);
  EXPECT_EQ(r1.reg_of_value, r2.reg_of_value);
  EXPECT_EQ(r1.lhs_on_port_a, r2.lhs_on_port_a);
}

}  // namespace
}  // namespace hlp
