// Tests for the precalculated SA table (Section 5.2.2): cache/dynamic
// agreement, persistence round-trip, and monotonicity of the SA values in
// mux size (bigger input stages -> more estimated switching).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "flow/experiment.hpp"
#include "power/sa_cache.hpp"

namespace hlp {
namespace {

// Small width keeps partial-datapath mapping fast in unit tests.
SaCache small_cache() { return SaCache(4); }

TEST(SaCache, CachedEqualsUncached) {
  // "This method provided us with the same results as running the
  // algorithm with dynamic SA estimation" — exact agreement required.
  SaCache c = small_cache();
  const double cached = c.switching_activity(OpKind::kAdd, 2, 3);
  const double dynamic = c.compute_uncached(OpKind::kAdd, 2, 3);
  EXPECT_DOUBLE_EQ(cached, dynamic);
}

TEST(SaCache, MemoisesLookups) {
  SaCache c = small_cache();
  c.switching_activity(OpKind::kAdd, 2, 2);
  const auto misses_before = c.misses();
  c.switching_activity(OpKind::kAdd, 2, 2);
  EXPECT_EQ(c.misses(), misses_before);
  c.switching_activity(OpKind::kAdd, 2, 3);
  EXPECT_EQ(c.misses(), misses_before + 1);
}

TEST(SaCache, PositiveAndFinite) {
  SaCache c = small_cache();
  for (int a = 1; a <= 3; ++a)
    for (int b = 1; b <= 3; ++b) {
      const double sa = c.switching_activity(OpKind::kMult, a, b);
      EXPECT_GT(sa, 0.0);
      EXPECT_LT(sa, 1e6);
    }
}

TEST(SaCache, MultExceedsAdd) {
  SaCache c = small_cache();
  EXPECT_GT(c.switching_activity(OpKind::kMult, 2, 2),
            c.switching_activity(OpKind::kAdd, 2, 2));
}

TEST(SaCache, GrowsWithMuxSize) {
  // More mux arms -> more logic -> more estimated SA. This is what makes
  // Eq. 4's 1/SA term area-aware.
  SaCache c = small_cache();
  const double s11 = c.switching_activity(OpKind::kAdd, 1, 1);
  const double s22 = c.switching_activity(OpKind::kAdd, 2, 2);
  const double s44 = c.switching_activity(OpKind::kAdd, 4, 4);
  EXPECT_LT(s11, s22);
  EXPECT_LT(s22, s44);
}

TEST(SaCache, PrecomputeFillsAllCombinations) {
  SaCache c = small_cache();
  c.precompute(2, 2);
  EXPECT_EQ(c.size(), 2u * 2u * 2u);  // kinds * a-sizes * b-sizes
  const auto misses = c.misses();
  c.switching_activity(OpKind::kAdd, 2, 2);
  c.switching_activity(OpKind::kMult, 1, 2);
  EXPECT_EQ(c.misses(), misses);
}

TEST(SaCache, SaveLoadRoundTrip) {
  SaCache a = small_cache();
  a.precompute(2, 2);
  std::ostringstream text;
  a.save(text);

  SaCache b = small_cache();
  std::istringstream in(text.str());
  b.load(in);
  EXPECT_EQ(b.size(), a.size());
  // Loaded values answer without recomputation and agree exactly.
  EXPECT_DOUBLE_EQ(b.switching_activity(OpKind::kMult, 2, 1),
                   a.switching_activity(OpKind::kMult, 2, 1));
  EXPECT_EQ(b.misses(), 0u);
}

TEST(SaCache, FilePersistence) {
  const std::string path = ::testing::TempDir() + "/sa_cache_test.txt";
  {
    SaCache a = small_cache();
    a.switching_activity(OpKind::kAdd, 3, 1);
    a.save_file(path);
  }
  SaCache b = small_cache();
  b.load_file(path);
  EXPECT_EQ(b.size(), 1u);
  std::remove(path.c_str());
}

TEST(SaCache, LoadRejectsMalformed) {
  SaCache c = small_cache();
  std::istringstream bad("add 1\n");
  EXPECT_THROW(c.load(bad), Error);
  std::istringstream badkind("div 1 1 3.0\n");
  EXPECT_THROW(c.load(badkind), Error);
}

TEST(SaCache, RejectsBadArguments) {
  SaCache c = small_cache();
  EXPECT_THROW(c.switching_activity(OpKind::kAdd, 0, 1), Error);
  EXPECT_THROW(SaCache(0), Error);
  EXPECT_THROW(SaCache(4, MapParams{}, SaMode::kEstimated, 0), Error);
}

TEST(SaCache, ShardedMissesStayExactUnderConcurrency) {
  // Distinct cold keys from many threads: every insertion lands in some
  // shard exactly once, and the summed miss counter equals the number of
  // unique keys even though no single lock serialises the table.
  SaCache c = small_cache();
  constexpr int kThreads = 8;
  constexpr int kMaxMux = 4;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&c] {
      for (int kind = 0; kind < kNumOpKinds; ++kind)
        for (int a = 1; a <= kMaxMux; ++a)
          for (int b = 1; b <= kMaxMux; ++b)
            c.switching_activity(static_cast<OpKind>(kind), a, b);
    });
  }
  for (auto& th : pool) th.join();
  const auto unique_keys =
      static_cast<std::size_t>(kNumOpKinds * kMaxMux * kMaxMux);
  EXPECT_EQ(c.size(), unique_keys);
  // Exactly one miss per unique key: racing duplicate computations exist,
  // but only the winning insertion of each key is counted.
  EXPECT_EQ(c.misses(), unique_keys);
}

TEST(SaCache, SimulatedModeIsDeterministicAndCached) {
  // Monte-Carlo backend through the bit-parallel batch engine.
  SaCache c(4, MapParams{}, SaMode::kSimulated, /*sim_vectors=*/64);
  EXPECT_EQ(c.mode(), SaMode::kSimulated);
  const double cached = c.switching_activity(OpKind::kAdd, 2, 2);
  EXPECT_GT(cached, 0.0);
  EXPECT_DOUBLE_EQ(cached, c.compute_uncached(OpKind::kAdd, 2, 2));
  EXPECT_DOUBLE_EQ(cached, c.switching_activity(OpKind::kAdd, 2, 2));
}

TEST(SaCache, SimulatedAndEstimatedAreDistinctBackends) {
  SaCache est = small_cache();
  SaCache sim(4, MapParams{}, SaMode::kSimulated, /*sim_vectors=*/64);
  const double e = est.switching_activity(OpKind::kAdd, 2, 2);
  const double s = sim.switching_activity(OpKind::kAdd, 2, 2);
  // Both are positive SA numbers for the same partial datapath; the
  // Monte-Carlo value is an empirical counterpart, not the same formula.
  EXPECT_GT(e, 0.0);
  EXPECT_GT(s, 0.0);
}

TEST(SaCacheExact, ExactModeIsDeterministicAndCached) {
  // BDD-analytic backend (hybridised with sampling past HLP_EXACT_BUDGET).
  SaCache c(4, MapParams{}, SaMode::kExact, /*sim_vectors=*/64);
  EXPECT_EQ(c.mode(), SaMode::kExact);
  const double cached = c.switching_activity(OpKind::kAdd, 1, 1);
  EXPECT_GT(cached, 0.0);
  EXPECT_DOUBLE_EQ(cached, c.compute_uncached(OpKind::kAdd, 1, 1));
  EXPECT_DOUBLE_EQ(cached, c.switching_activity(OpKind::kAdd, 1, 1));
}

TEST(SaCacheExact, ThreeBackendsDisagreeOnValues) {
  // The mode axis changes entry VALUES (unlike the simd/settle knobs) —
  // that is the whole reason it keys caches, files and manifests. The
  // analytic estimate, the sampler and the exact engine price the same
  // partial datapath differently.
  SaCache est(4);
  SaCache sim(4, MapParams{}, SaMode::kSimulated, /*sim_vectors=*/64);
  SaCache exact(4, MapParams{}, SaMode::kExact, /*sim_vectors=*/64);
  const double e = est.switching_activity(OpKind::kAdd, 1, 1);
  const double s = sim.switching_activity(OpKind::kAdd, 1, 1);
  const double x = exact.switching_activity(OpKind::kAdd, 1, 1);
  EXPECT_GT(e, 0.0);
  EXPECT_GT(s, 0.0);
  EXPECT_GT(x, 0.0);
  EXPECT_NE(e, x);
}

TEST(SaCacheExact, FileRoundTripPreservesModeTag) {
  const std::string path = ::testing::TempDir() + "/sa_exact_table.txt";
  double computed = 0.0;
  {
    SaCache a(4, MapParams{}, SaMode::kExact, /*sim_vectors=*/64);
    computed = a.switching_activity(OpKind::kAdd, 1, 2);
    a.save_file(path);
  }
  // Same-mode cache: merges cleanly, answers without recomputation.
  SaCache b(4, MapParams{}, SaMode::kExact, /*sim_vectors=*/64);
  EXPECT_EQ(b.merge_from(path), 1u);
  EXPECT_DOUBLE_EQ(b.switching_activity(OpKind::kAdd, 1, 2), computed);
  EXPECT_EQ(b.misses(), 0u);
  std::remove(path.c_str());
}

// ---- shard merging (the distributed runner's SA reconciliation) ----------

// A saved table whose entries were computed here, for building shard files.
std::string shard_text(SaCache& c) {
  std::ostringstream os;
  c.save(os);
  return os.str();
}

TEST(SaCacheMerge, DisjointShardsUnionCleanly) {
  SaCache a = small_cache();
  a.switching_activity(OpKind::kAdd, 1, 1);
  a.switching_activity(OpKind::kAdd, 1, 2);
  SaCache b = small_cache();
  b.switching_activity(OpKind::kMult, 2, 2);

  std::istringstream shard(shard_text(b));
  const std::size_t misses_before = a.misses();
  EXPECT_EQ(a.merge_from(shard, "test shard"), 1u);
  EXPECT_EQ(a.size(), 3u);
  // Merged entries answer without recomputation and do not count as
  // misses.
  EXPECT_DOUBLE_EQ(a.switching_activity(OpKind::kMult, 2, 2),
                   b.switching_activity(OpKind::kMult, 2, 2));
  EXPECT_EQ(a.misses(), misses_before);
}

TEST(SaCacheMerge, OverlappingEntriesMustAgreeExactly) {
  SaCache a = small_cache();
  a.switching_activity(OpKind::kAdd, 2, 2);
  // Identical overlap merges cleanly (0 new entries)...
  std::istringstream same(shard_text(a));
  EXPECT_EQ(a.merge_from(same, "test shard"), 0u);

  // ...but a value that disagrees — a shard computed under a different
  // configuration — is a conflict, not a silent overwrite.
  SaCache tampered = small_cache();
  tampered.switching_activity(OpKind::kAdd, 2, 2);
  std::string text = shard_text(tampered);
  const auto dot = text.find('.');
  ASSERT_NE(dot, std::string::npos);
  text[dot + 1] = text[dot + 1] == '9' ? '8' : '9';  // perturb the value
  std::istringstream conflict(text);
  try {
    a.merge_from(conflict, "test shard");
    FAIL() << "expected a merge conflict";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("merge conflict"),
              std::string::npos)
        << e.what();
  }
  // The table kept its own value.
  EXPECT_DOUBLE_EQ(a.switching_activity(OpKind::kAdd, 2, 2),
                   a.compute_uncached(OpKind::kAdd, 2, 2));
}

TEST(SaCacheMerge, TruncatedShardRejectedWithoutPartialMerge) {
  SaCache src = small_cache();
  src.precompute(2, 2);
  const std::string full = shard_text(src);

  SaCache dst = small_cache();
  // Cut before the "# end" footer: rejected, and nothing was merged.
  std::istringstream cut(full.substr(0, full.rfind("# end")));
  try {
    dst.merge_from(cut, "test shard");
    FAIL() << "expected truncation to be rejected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("missing '# end' footer"),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(dst.size(), 0u);

  // Cut mid-table (footer intact but entries missing): the footer count
  // mismatch is the defect named.
  std::string half = full.substr(0, full.size() / 2);
  half += "\n# end 8\n";
  std::istringstream bad_count(half);
  EXPECT_THROW(dst.merge_from(bad_count, "test shard"), Error);
  EXPECT_EQ(dst.size(), 0u);
}

TEST(SaCacheMerge, CorruptShardRejected) {
  SaCache dst = small_cache();
  std::istringstream garbage("not an sa table at all\n");
  EXPECT_THROW(dst.merge_from(garbage, "test shard"), Error);
  std::istringstream bad_kind(
      "# SaCache width=4 k=4\ndiv 1 1 3.0\n# end 1\n");
  EXPECT_THROW(dst.merge_from(bad_kind, "test shard"), Error);
  std::istringstream missing_fields(
      "# SaCache width=4 k=4\nadd 1\n# end 1\n");
  EXPECT_THROW(dst.merge_from(missing_fields, "test shard"), Error);
  EXPECT_EQ(dst.size(), 0u);
}

TEST(SaCacheMerge, WidthMismatchRejected) {
  SaCache w8(8);
  w8.switching_activity(OpKind::kAdd, 1, 1);
  SaCache w4 = small_cache();
  std::istringstream shard(shard_text(w8));
  try {
    w4.merge_from(shard, "test shard");
    FAIL() << "expected width mismatch rejection";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("width"), std::string::npos);
  }
}

TEST(SaCacheMerge, WarmStartHitsAfterMergeFile) {
  const std::string path = ::testing::TempDir() + "/sa_merge_shard.txt";
  {
    SaCache src = small_cache();
    src.precompute(2, 2);
    src.save_file(path);
  }
  SaCache warm = small_cache();
  EXPECT_EQ(warm.merge_from(path), 2u * 2u * 2u);
  // Every precomputed combination now hits: no misses on lookup.
  for (int kind = 0; kind < kNumOpKinds; ++kind)
    for (int a = 1; a <= 2; ++a)
      for (int b = 1; b <= 2; ++b)
        warm.switching_activity(static_cast<OpKind>(kind), a, b);
  EXPECT_EQ(warm.misses(), 0u);
  std::remove(path.c_str());
}

TEST(SaCacheMerge, ModeMismatchRejectedWithoutPartialMerge) {
  // A shard computed under another SA backend carries different VALUES for
  // the same keys; merging it would poison the table. The header check
  // fires before any entry is staged.
  SaCache exact(4, MapParams{}, SaMode::kExact, /*sim_vectors=*/64);
  exact.switching_activity(OpKind::kAdd, 1, 1);
  exact.switching_activity(OpKind::kMult, 1, 1);
  const std::string text = shard_text(exact);

  for (const SaMode mode : {SaMode::kEstimated, SaMode::kSimulated}) {
    SaCache dst(4, MapParams{}, mode, /*sim_vectors=*/64);
    std::istringstream shard(text);
    try {
      dst.merge_from(shard, "test shard");
      FAIL() << "expected a mode mismatch rejection into "
             << sa_mode_name(mode);
    } catch (const Error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("mode 'exact'"), std::string::npos) << what;
      EXPECT_NE(what.find(sa_mode_name(mode)), std::string::npos) << what;
    }
    EXPECT_EQ(dst.size(), 0u);  // nothing partially merged
  }
}

TEST(SaCacheMerge, LegacyUntaggedTablesAreEstimateMode) {
  // Tables written before the mode tag existed have a bare header; they
  // can only be estimate-mode, so only an estimate cache accepts them.
  const std::string legacy = "# SaCache width=4 k=4\nadd 1 1 3.0\n# end 1\n";
  SaCache est(4);
  std::istringstream ok(legacy);
  EXPECT_EQ(est.merge_from(ok, "test shard"), 1u);

  SaCache exact(4, MapParams{}, SaMode::kExact, /*sim_vectors=*/64);
  std::istringstream bad(legacy);
  try {
    exact.merge_from(bad, "test shard");
    FAIL() << "expected the legacy table to be rejected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("no mode tag"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(exact.size(), 0u);
}

TEST(SaCacheMerge, SaveLoadStillToleratesFooter) {
  // load() (the warm-start reader) must keep reading footer-bearing
  // tables as plain comments.
  SaCache a = small_cache();
  a.switching_activity(OpKind::kAdd, 2, 2);
  std::istringstream in(shard_text(a));
  SaCache b = small_cache();
  b.load(in);
  EXPECT_EQ(b.size(), 1u);
}

// ---- warm-start files of the mode axis (HLP_SA_CACHE mechanism) ----------

TEST(SaCacheExact, RunnerSuffixKeepsLegacyEstimateName) {
  // Estimate tables keep the pre-mode-axis file name so existing caches
  // stay warm; the other modes get their own files under one prefix.
  EXPECT_EQ(flow::sa_cache_file_suffix(8, SaMode::kEstimated), ".w8");
  EXPECT_EQ(flow::sa_cache_file_suffix(4, SaMode::kSimulated), ".w4.sim");
  EXPECT_EQ(flow::sa_cache_file_suffix(4, SaMode::kExact), ".w4.exact");
}

TEST(SaCacheExact, RunnerPersistsAndPreloadsExactTables) {
  // The ExperimentRunner's HLP_SA_CACHE persist/preload cycle, mode-aware:
  // an exact-mode run writes "<prefix>.w4.exact", and a fresh runner with
  // the same prefix starts warm — the table answers with zero misses.
  const std::string prefix = ::testing::TempDir() + "/sa_exact_warm";
  const std::string file =
      prefix + flow::sa_cache_file_suffix(4, SaMode::kExact);
  std::remove(file.c_str());

  flow::Job job;
  job.benchmark = "pr";
  job.width = 4;
  job.num_vectors = 8;
  job.sa = SaMode::kExact;
  {
    // Pin the cold SA compute: opt out of any ambient HLP_STORE (the CI
    // artifact-store leg), whose warm artifacts would skip the SA work.
    flow::ExperimentRunner runner(1);
    runner.set_store_dir("");
    runner.set_sa_cache_path(prefix);
    const auto results = runner.run({job});
    ASSERT_TRUE(results[0].ok) << results[0].error;
    EXPECT_GT(runner.sa_cache(4, SaMode::kExact).size(), 0u);
  }
  {
    std::ifstream probe(file);
    ASSERT_TRUE(probe.good()) << "expected warm-start file '" << file << "'";
  }
  flow::ExperimentRunner warm(1);
  warm.set_store_dir("");
  warm.set_sa_cache_path(prefix);
  SaCache& cache = warm.sa_cache(4, SaMode::kExact);
  EXPECT_GT(cache.size(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  // Re-running the same job hits the preloaded entries: still no misses.
  const auto rerun = warm.run({job});
  ASSERT_TRUE(rerun[0].ok) << rerun[0].error;
  EXPECT_EQ(cache.misses(), 0u);
  std::remove(file.c_str());
}

}  // namespace
}  // namespace hlp
