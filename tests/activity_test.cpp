// Tests for the glitch-aware timed-waveform SA estimator (Section 4).
// Key properties verified:
//  - balanced structures produce no estimated glitches under unit delay;
//  - unbalanced arrival times do (the phenomenon HLPower exploits);
//  - zero-delay estimation never reports glitches;
//  - estimates correlate with measured unit-delay simulation.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "mapper/techmap.hpp"
#include "netlist/modules.hpp"
#include "power/activity.hpp"
#include "sim/schedule_sim.hpp"
#include "sim/vectors.hpp"

namespace hlp {
namespace {

TEST(TimedSignal, SourceShape) {
  const TimedSignal s = TimedSignal::source();
  EXPECT_DOUBLE_EQ(s.prob, 0.5);
  EXPECT_EQ(s.functional_time, 0);
  EXPECT_DOUBLE_EQ(s.total_activity(), 0.5);
  EXPECT_DOUBLE_EQ(s.activity_at(0), 0.5);
  EXPECT_DOUBLE_EQ(s.activity_at(3), 0.0);
  EXPECT_DOUBLE_EQ(s.glitch_activity(), 0.0);
}

TEST(TimedSignal, QuietSource) {
  const TimedSignal s = TimedSignal::source(0.5, 0.0);
  EXPECT_TRUE(s.acts.empty());
  EXPECT_EQ(s.last_time(), 0);
}

TEST(PropagateLut, AlignedInputsSingleTransition) {
  // Two sources switching at t=0: output transitions only at t=1.
  const TimedSignal a = TimedSignal::source();
  const TimedSignal b = TimedSignal::source();
  const TimedSignal y = propagate_lut(TruthTable::and2(), {&a, &b});
  ASSERT_EQ(y.acts.size(), 1u);
  EXPECT_EQ(y.acts[0].first, 1);
  EXPECT_EQ(y.functional_time, 1);
  EXPECT_DOUBLE_EQ(y.glitch_activity(), 0.0);
  EXPECT_DOUBLE_EQ(y.prob, 0.25);
}

TEST(PropagateLut, MisalignedInputsGlitch) {
  // A source at t=0 and a depth-1 signal at t=1 feeding an XOR: the output
  // can transition at t=1 (glitch) and t=2 (functional).
  const TimedSignal a = TimedSignal::source();
  const TimedSignal mid = propagate_lut(TruthTable::buf(), {&a});
  const TimedSignal b = TimedSignal::source();
  const TimedSignal y = propagate_lut(TruthTable::xor2(), {&b, &mid});
  EXPECT_EQ(y.functional_time, 2);
  ASSERT_EQ(y.acts.size(), 2u);
  EXPECT_EQ(y.acts[0].first, 1);
  EXPECT_EQ(y.acts[1].first, 2);
  EXPECT_GT(y.glitch_activity(), 0.0);
  EXPECT_GT(y.total_activity(), y.activity_at(y.functional_time));
}

TEST(PropagateLut, BufferChainsPreserveActivity) {
  TimedSignal s = TimedSignal::source();
  const TimedSignal* cur = &s;
  TimedSignal next;
  for (int i = 0; i < 4; ++i) {
    next = propagate_lut(TruthTable::buf(), {cur});
    EXPECT_NEAR(next.total_activity(), 0.5, 1e-12);
    EXPECT_DOUBLE_EQ(next.glitch_activity(), 0.0);
    s = next;
    cur = &s;
  }
  EXPECT_EQ(s.functional_time, 4);
}

TEST(EstimateActivity, BalancedTreeNoGlitches) {
  // A balanced XOR tree: all paths equal length -> no glitch SA.
  Netlist n("balanced");
  const NetId a = n.add_input("a"), b = n.add_input("b"),
              c = n.add_input("c"), d = n.add_input("d");
  const NetId x = n.add_gate_net("x", {a, b}, TruthTable::xor2());
  const NetId y = n.add_gate_net("y", {c, d}, TruthTable::xor2());
  n.add_output(n.add_gate_net("z", {x, y}, TruthTable::xor2()));
  const ActivityResult r = estimate_activity(n);
  EXPECT_NEAR(r.glitch_sa, 0.0, 1e-12);
  EXPECT_GT(r.total_sa, 0.0);
}

TEST(EstimateActivity, ChainGlitches) {
  // x1 = a^b; x2 = x1^c; x3 = x2^d — skewed arrivals at every level.
  Netlist n("chain");
  const NetId a = n.add_input("a"), b = n.add_input("b"),
              c = n.add_input("c"), d = n.add_input("d");
  const NetId x1 = n.add_gate_net("x1", {a, b}, TruthTable::xor2());
  const NetId x2 = n.add_gate_net("x2", {x1, c}, TruthTable::xor2());
  n.add_output(n.add_gate_net("x3", {x2, d}, TruthTable::xor2()));
  const ActivityResult r = estimate_activity(n);
  EXPECT_GT(r.glitch_sa, 0.05);
  EXPECT_NEAR(r.total_sa, r.functional_sa + r.glitch_sa, 1e-9);
}

TEST(EstimateActivity, ChainWorseThanTree) {
  // Same function (4-input XOR), different structure: the chain must be
  // estimated glitchier — the core premise of multiplexer balancing.
  Netlist tree("tree");
  {
    const NetId a = tree.add_input("a"), b = tree.add_input("b"),
                c = tree.add_input("c"), d = tree.add_input("d");
    const NetId x = tree.add_gate_net("x", {a, b}, TruthTable::xor2());
    const NetId y = tree.add_gate_net("y", {c, d}, TruthTable::xor2());
    tree.add_output(tree.add_gate_net("z", {x, y}, TruthTable::xor2()));
  }
  Netlist chain("chain");
  {
    const NetId a = chain.add_input("a"), b = chain.add_input("b"),
                c = chain.add_input("c"), d = chain.add_input("d");
    const NetId x1 = chain.add_gate_net("x1", {a, b}, TruthTable::xor2());
    const NetId x2 = chain.add_gate_net("x2", {x1, c}, TruthTable::xor2());
    chain.add_output(chain.add_gate_net("x3", {x2, d}, TruthTable::xor2()));
  }
  EXPECT_GT(estimate_activity(chain).total_sa,
            estimate_activity(tree).total_sa);
}

TEST(EstimateActivityZeroDelay, NeverGlitches) {
  const Netlist m = make_multiplier(4);
  const ActivityResult r = estimate_activity_zero_delay(m);
  EXPECT_NEAR(r.glitch_sa, 0.0, 1e-12);
  EXPECT_GT(r.total_sa, 0.0);
}

TEST(EstimateActivity, UnitDelayAtLeastZeroDelay) {
  for (const Netlist& n : {make_adder(6), make_multiplier(4)}) {
    const double glitchy = estimate_activity(n).total_sa;
    const double functional = estimate_activity_zero_delay(n).total_sa;
    EXPECT_GE(glitchy, functional * 0.999) << n.name();
  }
}

TEST(EstimateActivity, MultiplierGlitchierThanAdder) {
  // Absolute SA and glitch SA of the mapped multiplier dwarf the adder's —
  // why the paper uses beta=1000 for mult vs 30 for add (the beta values
  // scale the mux term to the magnitude of each FU's SA term).
  const MapResult add = tech_map(make_adder(8));
  const MapResult mult = tech_map(make_multiplier(8));
  const ActivityResult ra = estimate_activity(add.lut_netlist);
  const ActivityResult rm = estimate_activity(mult.lut_netlist);
  EXPECT_GT(rm.glitch_sa, 3.0 * ra.glitch_sa);
  EXPECT_GT(rm.total_sa, 3.0 * ra.total_sa);
}

TEST(EstimateActivity, TracksMeasuredGlitchOrdering) {
  // The estimator must rank a glitchy netlist above a quiet one the same
  // way unit-delay simulation does: compare mapped mux-imbalanced vs
  // balanced partial structures via adder widths.
  const MapResult small = tech_map(make_adder(4));
  const MapResult big = tech_map(make_multiplier(6));
  const double est_small = estimate_activity(small.lut_netlist).total_sa;
  const double est_big = estimate_activity(big.lut_netlist).total_sa;

  auto measure = [](const Netlist& n) {
    const auto frames =
        random_vectors(400, static_cast<int>(n.inputs().size()), 17);
    return simulate_frames(n, frames).transitions_per_cycle();
  };
  const double meas_small = measure(small.lut_netlist);
  const double meas_big = measure(big.lut_netlist);
  EXPECT_GT(est_big, est_small);
  EXPECT_GT(meas_big, meas_small);
}

TEST(EstimateActivity, EstimateCorrelatesWithSimulationMagnitude) {
  // On the mapped 6-bit multiplier the probabilistic estimate should land
  // within a small factor of measured transitions per cycle.
  const MapResult m = tech_map(make_multiplier(6));
  const double est = estimate_activity(m.lut_netlist).total_sa;
  const auto frames =
      random_vectors(600, static_cast<int>(m.lut_netlist.inputs().size()), 3);
  const double meas = simulate_frames(m.lut_netlist, frames).transitions_per_cycle();
  EXPECT_GT(est, 0.2 * meas);
  EXPECT_LT(est, 5.0 * meas);
}

}  // namespace
}  // namespace hlp
