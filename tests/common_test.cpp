// Tests for the common substrate: error handling, deterministic RNG,
// string utilities, ASCII tables.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace hlp {
namespace {

TEST(Error, CheckThrowsWithMessage) {
  try {
    HLP_CHECK(1 == 2, "custom detail " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("custom detail 42"), std::string::npos);
  }
}

TEST(Error, CheckPassesSilently) {
  EXPECT_NO_THROW(HLP_CHECK(2 + 2 == 4, "unused"));
}

TEST(Error, IsRuntimeError) {
  EXPECT_THROW(HLP_REQUIRE(false, "x"), std::runtime_error);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u32() == b.next_u32();
  EXPECT_LT(same, 4);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const auto x0 = a.next_u32();
  const auto x1 = a.next_u32();
  a.reseed(7);
  EXPECT_EQ(a.next_u32(), x0);
  EXPECT_EQ(a.next_u32(), x1);
}

TEST(Rng, BelowStaysInBounds) {
  Rng r(5);
  for (std::uint32_t bound : {1u, 2u, 3u, 10u, 1000u}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.below(bound), bound);
  }
}

TEST(Rng, BelowZeroThrows) {
  Rng r(5);
  EXPECT_THROW(r.below(0), Error);
}

TEST(Rng, RangeInclusive) {
  Rng r(9);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) {
    const int v = r.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, UniformInHalfOpenUnit) {
  Rng r(11);
  double sum = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 2000.0, 0.5, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto sorted = v;
  r.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

TEST(Rng, ShuffleDeterministic) {
  std::vector<int> a{1, 2, 3, 4, 5}, b{1, 2, 3, 4, 5};
  Rng ra(3), rb(3);
  ra.shuffle(a);
  rb.shuffle(b);
  EXPECT_EQ(a, b);
}

TEST(Strings, SplitWs) {
  const auto t = split_ws("  a  bb\tccc \n d ");
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0], "a");
  EXPECT_EQ(t[3], "d");
}

TEST(Strings, SplitWsEmpty) {
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws("   \t\n").empty());
}

TEST(Strings, SplitOnKeepsEmptyFields) {
  const auto t = split_on("a,,b,", ',');
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[1], "");
  EXPECT_EQ(t[3], "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t"), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with(".model top", ".model"));
  EXPECT_FALSE(starts_with(".mod", ".model"));
}

TEST(Strings, FmtFixed) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(-0.5, 1), "-0.5");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Table, AlignsColumns) {
  AsciiTable t({"name", "value"});
  t.row().add("x").add(1);
  t.row().add("longer").add(2.5, 1);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, RejectsTooManyCells) {
  AsciiTable t({"only"});
  t.row().add("a");
  EXPECT_THROW(t.add("b"), Error);
}

TEST(Table, RejectsAddBeforeRow) {
  AsciiTable t({"c"});
  EXPECT_THROW(t.add("x"), Error);
}

}  // namespace
}  // namespace hlp
