// Tests for the exact (per-cone BDD) switching-activity engine.
//
// The headline property is *bit-for-bit* agreement with exhaustive
// enumeration: every value the engine reports is a dyadic rational over
// the cone's (prev, curr) frame pairs, so for any cone with <= 8 support
// sources (16 BDD variables, 4^8 = 65536 pairs) the analytic density and
// the enumerated toggle count divided by the pair count are THE SAME
// double — not merely close. The enumeration oracle is the bit-parallel
// unit-delay simulator itself, so the test also pins the engine's settle
// model (Jacobi trajectory, glitches included) to the simulator's.
//
// On top of that: the Monte-Carlo sampler must converge to the exact
// probabilities as the vector count grows (fixed seeds, Hoeffding-sized
// tolerances — deterministic, no flakes), and a cone that blows the node
// budget must fall back to exactly the shared simulate_activity answer
// while reporting which engine ran.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cdfg/benchmarks.hpp"
#include "common/error.hpp"
#include "flow/flow_context.hpp"
#include "flow/pipeline.hpp"
#include "mapper/techmap.hpp"
#include "power/activity.hpp"
#include "power/exact_activity.hpp"
#include "rtl/partial_datapath.hpp"
#include "sim/bit_sim_engine.hpp"

namespace hlp {
namespace {

using Sim = BitSimulatorT<std::uint64_t>;

// Mapped LUT netlist of one paper benchmark at width 4 (small widths keep
// the enumeration spaces and the pipeline head cheap). The SA mode is
// pinned to estimate so the binding itself never depends on HLP_SA_MODE —
// this test exercises exact_activity directly, not the cache.
Netlist benchmark_netlist(const std::string& name) {
  flow::ContextOptions opt;
  opt.width = 4;
  opt.sa_mode = SaMode::kEstimated;
  flow::FlowContext ctx(make_paper_benchmark(name), {0, 0}, std::move(opt));
  flow::RunSpec rs;
  rs.num_vectors = 2;  // the simulate/power tail is irrelevant here
  return flow::Pipeline::standard().run(ctx, rs).flow.mapped.lut_netlist;
}

// Exhaustively enumerate every (prev, curr) frame pair of one support set
// (all other sources held at 0 in both frames — they cannot influence a
// net whose support is inside `sup`) and count unit-delay transitions of
// the `targets`, 64 pairs per simulator word. Returns, per target, the
// pair of (transition count, settled-change count) over 4^|sup| pairs.
struct EnumCounts {
  std::uint64_t toggles = 0;     // all unit-delay transitions (glitches in)
  std::uint64_t functional = 0;  // pairs whose settled value changed
};

std::map<NetId, EnumCounts> enumerate_support(
    const Netlist& n, const std::vector<NetId>& sup,
    const std::vector<NetId>& targets) {
  const int s = static_cast<int>(sup.size());
  const std::uint64_t pairs = 1ull << (2 * s);
  Sim sim(n);
  sim.settle_zero_delay();  // a defined all-zero baseline state

  std::vector<std::uint64_t> toggles(n.num_nets(), 0);
  std::map<NetId, EnumCounts> out;
  for (const NetId t : targets) out[t] = EnumCounts{};

  std::vector<std::uint64_t> prev_w(s), curr_w(s), settled_prev;
  for (std::uint64_t base = 0; base < pairs; base += 64) {
    const int lanes = static_cast<int>(std::min<std::uint64_t>(64, pairs - base));
    std::fill(prev_w.begin(), prev_w.end(), 0);
    std::fill(curr_w.begin(), curr_w.end(), 0);
    for (int lane = 0; lane < lanes; ++lane) {
      const std::uint64_t pair = base + lane;
      for (int j = 0; j < s; ++j) {
        prev_w[j] |= ((pair >> (2 * j)) & 1ull) << lane;
        curr_w[j] |= ((pair >> (2 * j + 1)) & 1ull) << lane;
      }
    }
    // Adopt the previous frame (no counting), then apply the current frame
    // and count every unit-delay transition on the way to quiescence. Idle
    // lanes past `lanes` hold 0 in both frames and contribute nothing.
    for (int j = 0; j < s; ++j) sim.stage_source(sup[j], prev_w[j]);
    sim.settle(nullptr);
    settled_prev = sim.state();
    for (int j = 0; j < s; ++j) sim.stage_source(sup[j], curr_w[j]);
    sim.settle(&toggles);
    for (auto& [net, counts] : out)
      counts.functional += static_cast<std::uint64_t>(
          __builtin_popcountll(settled_prev[net] ^ sim.word(net)));
  }
  for (auto& [net, counts] : out) counts.toggles = toggles[net];
  return out;
}

TEST(ExactActivity, MatchesEnumerationBitForBitOnAllBenchmarks) {
  for (const auto& profile : paper_benchmarks()) {
    SCOPED_TRACE(profile.name);
    const Netlist n = benchmark_netlist(profile.name);
    const ExactActivityResult r = exact_activity(n);

    // Sources carry the closed-form values by construction.
    for (const NetId net : n.inputs()) {
      EXPECT_EQ(r.sa[net], 0.5);
      EXPECT_EQ(r.engine[net], ConeEngine::kExact);
      EXPECT_EQ(r.support[net], std::vector<NetId>{net});
    }

    // Group every exact gate net with <= 8 support sources by its support
    // set; one enumeration per set validates all of its nets.
    std::map<std::vector<NetId>, std::vector<NetId>> by_support;
    int checked = 0;
    for (NetId net = 0; net < n.num_nets(); ++net) {
      if (n.is_comb_source(net)) continue;
      if (r.engine[net] != ConeEngine::kExact) continue;
      if (r.support[net].size() > 8) continue;
      by_support[r.support[net]].push_back(net);
      ++checked;
    }
    ASSERT_GT(checked, 0) << "benchmark has no enumerable cones";

    for (const auto& [sup, targets] : by_support) {
      const auto counts = enumerate_support(n, sup, targets);
      const double pairs = std::pow(4.0, static_cast<double>(sup.size()));
      for (const NetId net : targets) {
        // Bit-for-bit: both sides are the same dyadic rational, so the
        // doubles must be EQUAL, not just near.
        EXPECT_EQ(r.sa[net], counts.at(net).toggles / pairs)
            << "net '" << n.net_name(net) << "' (support " << sup.size()
            << " sources)";
        EXPECT_EQ(r.functional[net], counts.at(net).functional / pairs)
            << "net '" << n.net_name(net) << "' functional";
      }
    }
  }
}

TEST(ExactActivity, KnownClosedFormsOnHandBuiltNetlists) {
  // y = a AND b: settled values are iid Bernoulli(1/4) across the frames,
  // so P[change] = 2 * (1/4) * (3/4) = 3/8, with no glitches at depth 1.
  Netlist n("and2");
  const NetId a = n.add_input("a"), b = n.add_input("b");
  const NetId y = n.add_gate_net("y", {a, b}, TruthTable::and2());
  n.add_output(y);
  const ExactActivityResult r = exact_activity(n);
  EXPECT_EQ(r.sa[y], 0.375);
  EXPECT_EQ(r.functional[y], 0.375);
  EXPECT_FALSE(r.fell_back);
  EXPECT_EQ(r.num_sampled, 0);
  // Totals: two sources at 1/2 plus the gate.
  EXPECT_EQ(r.total_sa, 0.5 + 0.5 + 0.375);
  EXPECT_EQ(r.glitch_sa, 0.0);
}

TEST(ExactActivity, GlitchesCountedOnSkewedChain) {
  // x1 = a ^ b; x2 = x1 ^ c: c arrives at x2 one unit before x1, so x2
  // can transition twice per cycle. Enumeration is tiny (3 sources);
  // assert the exact engine sees glitch activity where the settled-change
  // probability alone would not.
  Netlist n("chain");
  const NetId a = n.add_input("a"), b = n.add_input("b"),
              c = n.add_input("c");
  const NetId x1 = n.add_gate_net("x1", {a, b}, TruthTable::xor2());
  const NetId x2 = n.add_gate_net("x2", {x1, c}, TruthTable::xor2());
  n.add_output(x2);
  const ExactActivityResult r = exact_activity(n);
  EXPECT_GT(r.sa[x2], r.functional[x2]);
  EXPECT_GT(r.glitch_sa, 0.0);
  const auto counts = enumerate_support(n, {a, b, c}, {x2});
  EXPECT_EQ(r.sa[x2], counts.at(x2).toggles / 64.0);
  EXPECT_EQ(r.functional[x2], counts.at(x2).functional / 64.0);
}

TEST(ExactActivity, SimulatorConvergesToExactProbabilities) {
  // Monte-Carlo cross-validation on a real mapped structure (the adder
  // partial datapath the SaCache prices): as the vector count grows the
  // sampled per-net SA must approach the analytic value within a
  // Hoeffding-style envelope. Seeds are fixed, so this is deterministic —
  // the binomial bound just documents WHY the tolerances are safe: a
  // net at level L transitions at most L times per cycle, so the mean of
  // V cycles deviates by more than L * sqrt(ln(2N/d) / (2V)) with
  // probability < d over N nets (d = 1e-6 here), plus an O(L/V) term for
  // the non-uniform first frame.
  const Netlist n =
      tech_map(make_partial_datapath(OpKind::kAdd, 2, 2, 4), MapParams{})
          .lut_netlist;
  // The MSB cone sees all 18 sources and needs more than the default
  // budget under the rank variable order; this test is about convergence,
  // so lift the meter and keep every net analytic.
  ExactActivityOptions unmetered;
  unmetered.node_budget = 1 << 22;
  const ExactActivityResult exact = exact_activity(n, unmetered);
  ASSERT_FALSE(exact.fell_back) << "unmetered adder cones must stay exact";

  // Structural per-net level bounds the per-cycle transition range.
  std::vector<int> level(n.num_nets(), 0);
  for (const int gi : n.topo_gates()) {
    const Gate& g = n.gates()[gi];
    int l = 0;
    for (const NetId in : g.ins) l = std::max(l, level[in]);
    level[g.out] = l + 1;
  }

  double prev_err = 2.0;
  for (const int vectors : {250, 1000, 4000, 16000}) {
    const SimActivityResult sim = simulate_activity(n, vectors, /*seed=*/7);
    EXPECT_EQ(sim.vectors_used, vectors);
    EXPECT_EQ(sim.seed, 7u);
    EXPECT_EQ(sim.engine, SimEngine::kBatched);
    const double slack =
        std::sqrt(std::log(2.0 * n.num_nets() / 1e-6) / (2.0 * vectors));
    double max_err = 0.0;
    for (NetId net = 0; net < n.num_nets(); ++net) {
      const double l = std::max(1, level[net]);
      const double err = std::abs(sim.sa[net] - exact.sa[net]);
      EXPECT_LE(err, l * slack + l / vectors)
          << "net '" << n.net_name(net) << "' at " << vectors << " vectors";
      max_err = std::max(max_err, err);
    }
    // The envelope shrinks as 1/sqrt(V); the worst-case error must follow
    // it down (fixed seeds make this exactly reproducible).
    EXPECT_LT(max_err, prev_err);
    prev_err = max_err;
  }
  EXPECT_LT(prev_err, 0.05);
}

TEST(ExactActivity, BlownBudgetFallsBackToTheSampledAnswer) {
  // A budget of one node cannot even build a single-variable trajectory,
  // so every gate cone blows and the whole netlist (minus the sources,
  // which are free) is answered by the one shared Monte-Carlo run — and
  // the result must SAY so, per net and globally.
  const Netlist n =
      tech_map(make_partial_datapath(OpKind::kMult, 2, 2, 4), MapParams{})
          .lut_netlist;
  ExactActivityOptions opt;
  opt.node_budget = 1;
  opt.fallback_vectors = 64;
  opt.fallback_seed = 5;
  const ExactActivityResult r = exact_activity(n, opt);

  EXPECT_TRUE(r.fell_back);
  const SimActivityResult sim =
      simulate_activity(n, opt.fallback_vectors, opt.fallback_seed,
                        opt.fallback_engine);
  int sources = 0;
  double total = 0.0;
  for (NetId net = 0; net < n.num_nets(); ++net) {
    if (n.is_comb_source(net)) {
      ++sources;
      EXPECT_EQ(r.engine[net], ConeEngine::kExact);
      EXPECT_EQ(r.sa[net], 0.5);
    } else {
      EXPECT_EQ(r.engine[net], ConeEngine::kSampled);
      // The Monte-Carlo answer, bit for bit — the fallback must not
      // rescale or re-seed what simulate_activity reports.
      EXPECT_EQ(r.sa[net], sim.sa[net]) << n.net_name(net);
      EXPECT_EQ(r.functional[net], 0.0);
    }
    total += r.sa[net];
  }
  EXPECT_EQ(r.num_exact, sources);
  EXPECT_EQ(r.num_sampled, n.num_nets() - sources);
  EXPECT_EQ(r.total_sa, total);

  // An unmetered budget keeps the same netlist fully exact (4-bit
  // multiplier BDDs are small), and the hybrid total differs from the
  // sampled one only through the sampled nets.
  ExactActivityOptions roomy;
  roomy.node_budget = 1 << 20;
  const ExactActivityResult e = exact_activity(n, roomy);
  EXPECT_FALSE(e.fell_back);
  EXPECT_EQ(e.num_sampled, 0);
  EXPECT_EQ(e.num_exact, n.num_nets());
}

TEST(ExactActivity, RejectsNonPositiveBudget) {
  Netlist n("tiny");
  const NetId a = n.add_input("a");
  n.add_output(n.add_gate_net("y", {a}, TruthTable::buf()));
  ExactActivityOptions opt;
  opt.node_budget = 0;
  try {
    exact_activity(n, opt);
    FAIL() << "expected a budget rejection";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("budget"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("0"), std::string::npos);
  }
}

}  // namespace
}  // namespace hlp
