// Design-space exploration: how does the resource constraint (allocation)
// interact with the binding quality? For a fixed benchmark, sweep the
// adder/multiplier allocation from the schedule's minimum upward and report
// the area/power/latency trade-off of the HLPower binding at each point —
// the kind of exploration a user of the library would run before committing
// to an allocation. The 16-point grid fans across the ExperimentRunner's
// thread pool (HLP_JOBS workers, default 4); every allocation is its own
// memoised FlowContext, all sharing one SA cache.
//
// Run:  ./build/design_space [benchmark]
#include <cstdlib>
#include <iostream>

#include "cdfg/benchmarks.hpp"
#include "common/table.hpp"
#include "flow/experiment.hpp"

int main(int argc, char** argv) {
  using namespace hlp;
  const std::string name = argc > 1 ? argv[1] : "wang";
  const int workers = flow::jobs_from_env(4);

  // The (adders x mults) grid as runner jobs.
  std::vector<ResourceConstraint> rcs;
  for (int adders = 1; adders <= 4; ++adders)
    for (int mults = 1; mults <= 4; ++mults) rcs.push_back({adders, mults});
  flow::Job base;
  base.width = 8;
  base.num_vectors = 60;
  const std::vector<flow::Job> jobs =
      flow::ExperimentRunner::grid({name}, {flow::BinderSpec{"hlpower"}}, {},
                                   rcs, base);

  flow::ExperimentRunner runner(workers);
  const auto results = runner.run(jobs);

  AsciiTable t({"adders", "mults", "csteps", "regs", "FUs", "LUTs",
                "power (mW)", "clk (ns)", "latency*clk (ns)"});
  for (const auto& res : results) {
    if (!res.ok) {
      std::cerr << "allocation " << res.job.rc.adders << "x"
                << res.job.rc.multipliers << " failed: " << res.error << "\n";
      continue;
    }
    // Skip allocations the schedule does not actually use (the context
    // reports the resolved rc; duplicates of a tighter point are noise).
    flow::FlowContext& ctx = runner.context_for(res.job);
    const Schedule& s = ctx.schedule();
    if (s.max_density(ctx.cdfg(), OpKind::kAdd) > res.job.rc.adders ||
        s.max_density(ctx.cdfg(), OpKind::kMult) > res.job.rc.multipliers)
      continue;
    const FlowResult& r = res.outcome.flow;
    t.row()
        .add(res.job.rc.adders)
        .add(res.job.rc.multipliers)
        .add(s.num_steps)
        .add(ctx.regs().num_registers)
        .add(res.outcome.fus.num_fus())
        .add(r.mapped.num_luts)
        .add(r.report.dynamic_power_mw, 1)
        .add(r.clock_period_ns, 1)
        .add(s.num_steps * r.clock_period_ns, 0);
  }
  std::cout << "design space for '" << name
            << "' (HLPower binding at every allocation, " << workers
            << " workers):\n";
  t.print(std::cout);
  return 0;
}
