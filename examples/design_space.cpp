// Design-space exploration: how does the resource constraint (allocation)
// interact with the binding quality? For a fixed benchmark, sweep the
// adder/multiplier allocation from the schedule's minimum upward and report
// the area/power/latency trade-off of the HLPower binding at each point —
// the kind of exploration a user of the library would run before committing
// to an allocation. The 16-point grid fans across the ExperimentRunner's
// thread pool (HLP_JOBS workers, default 4); every allocation is its own
// memoised FlowContext, all sharing one SA cache.
//
// A second phase then Monte-Carlos the stimulus at the lowest-power
// allocation: 64 seeds coalesced into one word-parallel pipeline pass
// (one seed per simulator lane; the lane-aware HLP_SIMD auto dispatch
// sizes the word to the group), reporting the power spread and the
// per-stage cache hits the seed sweep enjoyed.
//
// Run:  ./build/design_space [benchmark]
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "cdfg/benchmarks.hpp"
#include "common/table.hpp"
#include "flow/distributed.hpp"
#include "flow/experiment.hpp"
#include "flow/job_io.hpp"
#include "flow/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace hlp;
  const std::string name = argc > 1 ? argv[1] : "wang";
  const int workers = flow::jobs_from_env(4);

  // The (adders x mults) grid as runner jobs.
  std::vector<ResourceConstraint> rcs;
  for (int adders = 1; adders <= 4; ++adders)
    for (int mults = 1; mults <= 4; ++mults) rcs.push_back({adders, mults});
  flow::Job base;
  base.width = 8;
  base.num_vectors = 60;
  const std::vector<flow::Job> jobs =
      flow::ExperimentRunner::grid({name}, {flow::BinderSpec{"hlpower"}}, {},
                                   rcs, base);

  flow::ExperimentRunner runner(workers);
  const auto results = runner.run(jobs);

  AsciiTable t({"adders", "mults", "csteps", "regs", "FUs", "LUTs",
                "power (mW)", "clk (ns)", "latency*clk (ns)"});
  for (const auto& res : results) {
    if (!res.ok) {
      std::cerr << "allocation " << res.job.rc.adders << "x"
                << res.job.rc.multipliers << " failed: " << res.error << "\n";
      continue;
    }
    // Skip allocations the schedule does not actually use (the context
    // reports the resolved rc; duplicates of a tighter point are noise).
    flow::FlowContext& ctx = runner.context_for(res.job);
    const Schedule& s = ctx.schedule();
    if (s.max_density(ctx.cdfg(), OpKind::kAdd) > res.job.rc.adders ||
        s.max_density(ctx.cdfg(), OpKind::kMult) > res.job.rc.multipliers)
      continue;
    const FlowResult& r = res.outcome.flow;
    t.row()
        .add(res.job.rc.adders)
        .add(res.job.rc.multipliers)
        .add(s.num_steps)
        .add(ctx.regs().num_registers)
        .add(res.outcome.fus.num_fus())
        .add(r.mapped.num_luts)
        .add(r.report.dynamic_power_mw, 1)
        .add(r.clock_period_ns, 1)
        .add(s.num_steps * r.clock_period_ns, 0);
  }
  std::cout << "design space for '" << name
            << "' (HLPower binding at every allocation, " << workers
            << " workers):\n";
  t.print(std::cout);

  // Pick the lowest-power feasible allocation from the sweep.
  const flow::JobResult* best = nullptr;
  for (const auto& res : results)
    if (res.ok && (!best || res.outcome.flow.report.dynamic_power_mw <
                                best->outcome.flow.report.dynamic_power_mw))
      best = &res;
  if (!best) return 0;

  // Monte-Carlo the stimulus at that point: 64 seeds differing only in
  // `seed` coalesce into ONE pipeline invocation (one seed per simulator
  // lane), and the bind/elaborate/map artifacts come from the allocation
  // sweep's stage cache.
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 64; ++s) seeds.push_back(1000 + s);
  const std::vector<flow::Job> mc_jobs = flow::ExperimentRunner::grid(
      {name}, {best->job.binder}, seeds, {best->job.rc}, best->job);
  const auto mc = runner.run(mc_jobs);

  double mean = 0.0, var = 0.0;
  int ok_count = 0;
  for (const auto& res : mc)
    if (res.ok) {
      mean += res.outcome.flow.report.dynamic_power_mw;
      ++ok_count;
    }
  if (ok_count == 0) return 0;
  mean /= ok_count;
  for (const auto& res : mc)
    if (res.ok) {
      const double d = res.outcome.flow.report.dynamic_power_mw - mean;
      var += d * d;
    }
  var /= ok_count;

  flow::FlowContext& best_ctx = runner.context_for(best->job);
  std::cout << "\nMonte-Carlo at " << best->job.rc.adders << "x"
            << best->job.rc.multipliers << " (" << mc.size()
            << " stimulus seeds, coalesced group of " << mc.front().group_size
            << "): power " << mean << " +/- " << std::sqrt(var)
            << " mW; stage cache: " << best_ctx.stage_cache().hits()
            << " hits / " << best_ctx.stage_cache().misses() << " misses\n";

  // Third phase: the same Monte-Carlo grid sharded across HLP_WORKERS
  // (default 2) hlp_worker processes, dispatched per HLP_DISPATCH
  // (auto = work-stealing stream when the run distributes). Every
  // algorithm is deterministic, so the sharded results must agree bit
  // for bit with the in-process sweep above — verified here, timed for
  // the workers-vs-threads view.
  try {
    const int workers_n = flow::workers_from_env(2);
    flow::DistributedRunner dist(workers_n, 1);
    const flow::DispatchMode mode =
        flow::resolve_dispatch_mode(dist.dispatch(), workers_n);
    const auto t0 = std::chrono::steady_clock::now();
    const auto sharded = dist.run(mc_jobs);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    bool identical = sharded.size() == mc.size();
    for (std::size_t i = 0; identical && i < sharded.size(); ++i)
      identical = flow::same_outcome(mc[i], sharded[i]);
    std::cout << "Distributed re-run: " << workers_n << " worker processes ("
              << flow::dispatch_mode_name(mode) << " dispatch), "
              << sharded.size() << " jobs in " << secs * 1e3 << " ms — "
              << (identical ? "bit-identical to the in-process sweep"
                            : "MISMATCH vs the in-process sweep")
              << "\n";
  } catch (const std::exception& e) {
    std::cout << "Distributed re-run skipped: " << e.what() << "\n";
  }
  return 0;
}
