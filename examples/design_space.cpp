// Design-space exploration: how does the resource constraint (allocation)
// interact with the binding quality? For a fixed benchmark, sweep the
// adder/multiplier allocation from the schedule's minimum upward and report
// the area/power/latency trade-off of the HLPower binding at each point —
// the kind of exploration a user of the library would run before committing
// to an allocation.
//
// Run:  ./build/examples/design_space [benchmark]
#include <iostream>

#include "binding/register_binder.hpp"
#include "cdfg/benchmarks.hpp"
#include "common/table.hpp"
#include "core/hlpower.hpp"
#include "rtl/flow.hpp"
#include "sched/list_scheduler.hpp"

int main(int argc, char** argv) {
  using namespace hlp;
  const std::string name = argc > 1 ? argv[1] : "wang";
  const Cdfg g = make_paper_benchmark(name);
  SaCache cache(8);

  AsciiTable t({"adders", "mults", "csteps", "regs", "FUs", "LUTs",
                "power (mW)", "clk (ns)", "latency*clk (ns)"});
  for (int adders = 1; adders <= 4; ++adders) {
    for (int mults = 1; mults <= 4; ++mults) {
      const ResourceConstraint rc{adders, mults};
      const Schedule s = list_schedule(g, rc);
      if (s.max_density(g, OpKind::kAdd) > adders ||
          s.max_density(g, OpKind::kMult) > mults)
        continue;
      const RegisterBinding regs = bind_registers(g, s);
      const Binding bind{regs, bind_fus_hlpower(g, s, regs, rc, cache).fus};
      FlowParams fp;
      fp.num_vectors = 60;
      const FlowResult r = run_flow(g, s, bind, fp);
      t.row()
          .add(adders)
          .add(mults)
          .add(s.num_steps)
          .add(regs.num_registers)
          .add(bind.fus.num_fus())
          .add(r.mapped.num_luts)
          .add(r.report.dynamic_power_mw, 1)
          .add(r.clock_period_ns, 1)
          .add(s.num_steps * r.clock_period_ns, 0);
    }
  }
  std::cout << "design space for '" << name
            << "' (HLPower binding at every allocation):\n";
  t.print(std::cout);
  return 0;
}
