// DCT-style pipeline: run one of the paper's DCT benchmarks (pr) through
// both binders — LOPASS (glitch-blind baseline) and HLPower — and compare
// the datapath quality side by side. This is the workload class the
// paper's introduction motivates (DSP kernels on FPGAs).
//
// Run:  ./build/dct_pipeline [benchmark] [vectors]
#include <cstdlib>
#include <iostream>

#include "cdfg/benchmarks.hpp"
#include "common/table.hpp"
#include "flow/flow_context.hpp"
#include "flow/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace hlp;
  const std::string name = argc > 1 ? argv[1] : "pr";
  const int vectors = argc > 2 ? std::atoi(argv[2]) : 200;

  // One FlowContext per benchmark: both binder runs share the schedule and
  // register binding it memoises (the paper's controlled setup).
  flow::ContextOptions opt;
  opt.width = 8;
  flow::FlowContext ctx(make_paper_benchmark(name), ResourceConstraint{2, 2},
                        opt);
  const Cdfg& g = ctx.cdfg();
  std::cout << "benchmark " << name << ": " << g.num_ops_of_kind(OpKind::kAdd)
            << " adds, " << g.num_ops_of_kind(OpKind::kMult)
            << " mults, depth " << g.depth() << "\n";
  std::cout << "schedule: " << ctx.schedule().num_steps << " steps, "
            << ctx.regs().num_registers << " registers\n\n";

  const flow::Pipeline pipeline = flow::Pipeline::standard();
  AsciiTable t({"binder", "power (mW)", "toggle (M/s)", "LUTs", "clk (ns)",
                "mux length", "muxDiff mean"});
  for (const auto& [tag, binder] :
       {std::pair<const char*, const char*>{"LOPASS", "lopass"},
        {"HLPower", "hlpower"}}) {
    flow::RunSpec spec;
    spec.binder.name = binder;
    spec.num_vectors = vectors;
    const flow::PipelineOutcome out = pipeline.run(ctx, spec);
    t.row()
        .add(tag)
        .add(out.flow.report.dynamic_power_mw, 1)
        .add(out.flow.report.toggle_rate_mps, 2)
        .add(out.flow.mapped.num_luts)
        .add(out.flow.clock_period_ns, 1)
        .add(out.flow.mux_stats.mux_length)
        .add(out.flow.mux_stats.muxdiff_mean, 2);
  }
  t.print(std::cout);
  return 0;
}
