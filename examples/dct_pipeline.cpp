// DCT-style pipeline: run one of the paper's DCT benchmarks (pr) through
// both binders — LOPASS (glitch-blind baseline) and HLPower — and compare
// the datapath quality side by side. This is the workload class the
// paper's introduction motivates (DSP kernels on FPGAs).
//
// Run:  ./build/examples/dct_pipeline [benchmark] [vectors]
#include <cstdlib>
#include <iostream>

#include "binding/datapath_stats.hpp"
#include "binding/register_binder.hpp"
#include "cdfg/benchmarks.hpp"
#include "common/table.hpp"
#include "core/hlpower.hpp"
#include "lopass/lopass.hpp"
#include "rtl/flow.hpp"
#include "sched/list_scheduler.hpp"

int main(int argc, char** argv) {
  using namespace hlp;
  const std::string name = argc > 1 ? argv[1] : "pr";
  const int vectors = argc > 2 ? std::atoi(argv[2]) : 200;

  const Cdfg g = make_paper_benchmark(name);
  std::cout << "benchmark " << name << ": " << g.num_ops_of_kind(OpKind::kAdd)
            << " adds, " << g.num_ops_of_kind(OpKind::kMult)
            << " mults, depth " << g.depth() << "\n";

  // Shared schedule + register binding (the paper's controlled setup).
  const ResourceConstraint rc{2, 2};
  const Schedule s = list_schedule(g, rc);
  const RegisterBinding regs = bind_registers(g, s);
  std::cout << "schedule: " << s.num_steps << " steps, "
            << regs.num_registers << " registers\n\n";

  SaCache cache(8);
  const FuBinding lop = bind_fus_lopass(g, s, regs, rc, LopassParams{8});
  const FuBinding hlp_fus =
      bind_fus_hlpower(g, s, regs, rc, cache).fus;

  FlowParams fp;
  fp.num_vectors = vectors;
  AsciiTable t({"binder", "power (mW)", "toggle (M/s)", "LUTs", "clk (ns)",
                "mux length", "muxDiff mean"});
  for (const auto& [tag, fus] :
       {std::pair<const char*, const FuBinding*>{"LOPASS", &lop},
        {"HLPower", &hlp_fus}}) {
    const FlowResult r = run_flow(g, s, Binding{regs, *fus}, fp);
    const DatapathStats st = compute_datapath_stats(g, regs, *fus);
    t.row()
        .add(tag)
        .add(r.report.dynamic_power_mw, 1)
        .add(r.report.toggle_rate_mps, 2)
        .add(r.mapped.num_luts)
        .add(r.clock_period_ns, 1)
        .add(st.mux_length)
        .add(st.muxdiff_mean, 2);
  }
  t.print(std::cout);
  return 0;
}
