// Quickstart: build a small CDFG, schedule it, bind it with HLPower, and
// print the binding plus a power report.
//
//   y0 = (a + b) * (c + d);  y1 = (a + b) + (c * d)
//
// Run:  ./build/examples/quickstart
#include <iostream>

#include "cdfg/cdfg.hpp"
#include "cdfg/io.hpp"
#include "core/hlpower.hpp"
#include "rtl/flow.hpp"
#include "rtl/vhdl.hpp"
#include "sched/list_scheduler.hpp"

int main() {
  using namespace hlp;

  // 1. Describe the dataflow.
  Cdfg g("quickstart");
  const int a = g.add_input("a");
  const int b = g.add_input("b");
  const int c = g.add_input("c");
  const int d = g.add_input("d");
  const int s1 = g.add_op("s1", OpKind::kAdd, ValueRef::input(a), ValueRef::input(b));
  const int s2 = g.add_op("s2", OpKind::kAdd, ValueRef::input(c), ValueRef::input(d));
  const int p1 = g.add_op("p1", OpKind::kMult, ValueRef::op(s1), ValueRef::op(s2));
  const int p2 = g.add_op("p2", OpKind::kMult, ValueRef::input(c), ValueRef::input(d));
  const int s3 = g.add_op("s3", OpKind::kAdd, ValueRef::op(s1), ValueRef::op(p2));
  g.add_output("y0", ValueRef::op(p1));
  g.add_output("y1", ValueRef::op(s3));
  g.validate();
  std::cout << "CDFG:\n" << cdfg_to_string(g) << "\n";

  // 2. Schedule under a resource constraint (1 adder, 1 multiplier).
  const ResourceConstraint rc{1, 1};
  const Schedule sched = list_schedule(g, rc);
  std::cout << "schedule: " << sched.num_steps << " control steps\n";

  // 3. Bind with HLPower (registers + glitch-aware FU binding).
  SaCache cache(8);  // 8-bit datapath SA estimates
  const Binding bind = bind_hlpower(g, sched, rc, cache);
  std::cout << "registers allocated: " << bind.regs.num_registers << "\n";
  for (int op = 0; op < g.num_ops(); ++op)
    std::cout << "  op " << g.op(op).name << " -> FU" << bind.fus.fu_of_op[op]
              << " (" << to_string(bind.fus.kind_of_fu[bind.fus.fu_of_op[op]])
              << ")\n";

  // 4. Evaluate: elaborate, map to 4-LUTs, simulate, report power.
  FlowParams fp;
  fp.num_vectors = 100;
  const FlowResult r = run_flow(g, sched, bind, fp);
  std::cout << "\nevaluation (100 random vectors):\n"
            << "  LUTs:            " << r.mapped.num_luts << "\n"
            << "  clock period:    " << r.clock_period_ns << " ns\n"
            << "  dynamic power:   " << r.report.dynamic_power_mw << " mW\n"
            << "  toggle rate:     " << r.report.toggle_rate_mps << " M/s\n"
            << "  glitch fraction: " << r.report.glitch_fraction << "\n";

  // 5. Export RTL.
  std::cout << "\nVHDL (first lines):\n";
  const std::string vhdl = emit_vhdl(g, sched, bind);
  std::cout << vhdl.substr(0, vhdl.find("architecture")) << "...\n";
  return 0;
}
