// Quickstart: build a small CDFG, run it through the staged flow pipeline
// (schedule -> bind -> elaborate -> map -> time -> simulate -> power), and
// print the binding plus a power report.
//
//   y0 = (a + b) * (c + d);  y1 = (a + b) + (c * d)
//
// Run:  ./build/quickstart
#include <iostream>

#include "cdfg/cdfg.hpp"
#include "cdfg/io.hpp"
#include "common/strings.hpp"
#include "flow/flow_context.hpp"
#include "flow/pipeline.hpp"
#include "rtl/vhdl.hpp"

int main() {
  using namespace hlp;

  // 1. Describe the dataflow.
  Cdfg g("quickstart");
  const int a = g.add_input("a");
  const int b = g.add_input("b");
  const int c = g.add_input("c");
  const int d = g.add_input("d");
  const int s1 = g.add_op("s1", OpKind::kAdd, ValueRef::input(a), ValueRef::input(b));
  const int s2 = g.add_op("s2", OpKind::kAdd, ValueRef::input(c), ValueRef::input(d));
  const int p1 = g.add_op("p1", OpKind::kMult, ValueRef::op(s1), ValueRef::op(s2));
  const int p2 = g.add_op("p2", OpKind::kMult, ValueRef::input(c), ValueRef::input(d));
  const int s3 = g.add_op("s3", OpKind::kAdd, ValueRef::op(s1), ValueRef::op(p2));
  g.add_output("y0", ValueRef::op(p1));
  g.add_output("y1", ValueRef::op(s3));
  g.validate();
  std::cout << "CDFG:\n" << cdfg_to_string(g) << "\n";

  // 2. A FlowContext memoises the shared artifacts (schedule, register
  //    binding, SA cache) under the resource constraint (1 adder, 1 mult).
  flow::ContextOptions opt;
  opt.scheduler = "list";  // registry key; "fds" also works
  opt.width = 8;
  flow::FlowContext ctx(g, ResourceConstraint{1, 1}, opt);
  std::cout << "schedule: " << ctx.schedule().num_steps << " control steps\n";

  // 3+4. Run the staged pipeline: the "hlpower" registry binder plus the
  //      evaluation stages (elaborate, map, time, simulate, power).
  flow::RunSpec spec;
  spec.binder.name = "hlpower";
  spec.num_vectors = 100;
  const flow::PipelineOutcome out = flow::Pipeline::standard().run(ctx, spec);

  std::cout << "registers allocated: " << ctx.regs().num_registers << "\n";
  for (int op = 0; op < g.num_ops(); ++op)
    std::cout << "  op " << g.op(op).name << " -> FU" << out.fus.fu_of_op[op]
              << " (" << to_string(out.fus.kind_of_fu[out.fus.fu_of_op[op]])
              << ")\n";

  const FlowResult& r = out.flow;
  std::cout << "\nevaluation (100 random vectors):\n"
            << "  LUTs:            " << r.mapped.num_luts << "\n"
            << "  clock period:    " << r.clock_period_ns << " ns\n"
            << "  dynamic power:   " << r.report.dynamic_power_mw << " mW\n"
            << "  toggle rate:     " << r.report.toggle_rate_mps << " M/s\n"
            << "  glitch fraction: " << r.report.glitch_fraction << "\n";

  std::cout << "\nper-stage wall clock:\n";
  for (const auto& t : out.timings)
    std::cout << "  " << t.name << ": " << fmt_fixed(t.seconds * 1e3, 2)
              << " ms\n";

  // 5. Export RTL.
  std::cout << "\nVHDL (first lines):\n";
  const std::string vhdl =
      emit_vhdl(g, ctx.schedule(), Binding{ctx.regs(), out.fus});
  std::cout << vhdl.substr(0, vhdl.find("architecture")) << "...\n";
  return 0;
}
