// BLIF playground: the Figure 2 machinery end to end. Generates a partial
// datapath (mux2 + mux3 + mult) as hierarchical BLIF, flattens it against
// the model library, technology-maps it to 4-LUTs, and reports both the
// glitch-aware and the glitch-blind switching-activity estimates next to a
// unit-delay simulation measurement.
//
// Run:  ./build/examples/blif_playground
#include <iostream>

#include "common/strings.hpp"
#include "mapper/techmap.hpp"
#include "netlist/blif.hpp"
#include "power/activity.hpp"
#include "rtl/partial_datapath.hpp"
#include "sim/schedule_sim.hpp"
#include "sim/vectors.hpp"

int main() {
  using namespace hlp;

  // Figure 2: 2-input mux on port A, 3-input mux on port B, multiplier FU.
  const auto pd = make_partial_datapath_blif(OpKind::kMult, 2, 3, 4);
  std::cout << "generated BLIF (Figure 2 style):\n" << pd.blif << "\n";

  const Netlist flat = blif_from_string(pd.blif, pd.library);
  std::cout << "flattened: " << flat.num_gates() << " gates, depth "
            << flat.depth() << "\n";

  const MapResult mapped = tech_map(flat);
  std::cout << "mapped:    " << mapped.num_luts << " 4-LUTs, depth "
            << mapped.depth << "\n\n";

  const ActivityResult glitch_aware = estimate_activity(mapped.lut_netlist);
  const ActivityResult glitch_blind =
      estimate_activity_zero_delay(mapped.lut_netlist);
  std::cout << "switching activity estimates (per clock cycle):\n"
            << "  glitch-aware (Section 4): " << fmt_fixed(glitch_aware.total_sa, 2)
            << " (glitch part " << fmt_fixed(glitch_aware.glitch_sa, 2) << ")\n"
            << "  zero-delay (LOPASS view): " << fmt_fixed(glitch_blind.total_sa, 2)
            << "\n";

  const auto frames = random_vectors(
      2000, static_cast<int>(mapped.lut_netlist.inputs().size()), 42);
  const CycleSimStats sim = simulate_frames(mapped.lut_netlist, frames);
  std::cout << "  measured (unit-delay sim): "
            << fmt_fixed(sim.transitions_per_cycle(), 2) << " transitions/cycle ("
            << fmt_fixed(100.0 * static_cast<double>(sim.glitch_transitions()) /
                             static_cast<double>(sim.total_transitions),
                         1)
            << "% glitches)\n";
  return 0;
}
