// hlpower_cli — command-line driver for the whole library.
//
// Reads a CDFG in the library's text format (or a built-in paper
// benchmark), schedules it, binds it with the selected algorithm, runs the
// evaluation flow, and optionally writes VHDL / Verilog / BLIF / DOT
// artifacts.
//
// Usage:
//   hlpower_cli [options]
//     --bench <name>        built-in paper benchmark (chem, dir, ...)
//     --cdfg <file>         read a CDFG text file instead
//     --adders N --mults N  resource constraint (default: schedule minimum)
//     --binder hlpower|lopass   (default hlpower)
//     --alpha X             Eq. 4 alpha (default 0.5)
//     --refine              run post-binding port refinement
//     --scheduler list|fds  list scheduling (default) or force-directed
//     --vectors N           simulation vectors (default 200)
//     --width N             datapath bits (default 8)
//     --vhdl <file> --verilog <file> --blif <file> --dot <file>
#include <fstream>
#include <iostream>
#include <string>

#include "binding/datapath_stats.hpp"
#include "common/error.hpp"
#include "binding/register_binder.hpp"
#include "cdfg/benchmarks.hpp"
#include "cdfg/io.hpp"
#include "core/hlpower.hpp"
#include "core/port_refine.hpp"
#include "lopass/lopass.hpp"
#include "netlist/blif.hpp"
#include "rtl/flow.hpp"
#include "rtl/verilog.hpp"
#include "rtl/vhdl.hpp"
#include "sched/force_directed.hpp"
#include "sched/list_scheduler.hpp"

namespace {

struct Options {
  std::string bench;
  std::string cdfg_file;
  int adders = 0, mults = 0;
  std::string binder = "hlpower";
  double alpha = 0.5;
  bool refine = false;
  std::string scheduler = "list";
  int vectors = 200;
  int width = 8;
  std::string vhdl_out, verilog_out, blif_out, dot_out;
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::cerr << "error: " << msg << "\n";
  std::cerr << "usage: hlpower_cli --bench <name>|--cdfg <file> [options]\n"
               "  see the header comment of examples/hlpower_cli.cpp\n";
  std::exit(msg ? 1 : 0);
}

Options parse(int argc, char** argv) {
  Options o;
  auto need = [&](int& i) -> std::string {
    if (++i >= argc) usage("missing argument value");
    return argv[i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--bench") o.bench = need(i);
    else if (a == "--cdfg") o.cdfg_file = need(i);
    else if (a == "--adders") o.adders = std::stoi(need(i));
    else if (a == "--mults") o.mults = std::stoi(need(i));
    else if (a == "--binder") o.binder = need(i);
    else if (a == "--alpha") o.alpha = std::stod(need(i));
    else if (a == "--refine") o.refine = true;
    else if (a == "--scheduler") o.scheduler = need(i);
    else if (a == "--vectors") o.vectors = std::stoi(need(i));
    else if (a == "--width") o.width = std::stoi(need(i));
    else if (a == "--vhdl") o.vhdl_out = need(i);
    else if (a == "--verilog") o.verilog_out = need(i);
    else if (a == "--blif") o.blif_out = need(i);
    else if (a == "--dot") o.dot_out = need(i);
    else if (a == "--help" || a == "-h") usage();
    else usage(("unknown option '" + a + "'").c_str());
  }
  if (o.bench.empty() == o.cdfg_file.empty())
    usage("exactly one of --bench / --cdfg is required");
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hlp;
  const Options o = parse(argc, argv);
  try {
    Cdfg g = [&] {
      if (!o.bench.empty()) return make_paper_benchmark(o.bench);
      std::ifstream f(o.cdfg_file);
      HLP_REQUIRE(f.good(), "cannot open '" << o.cdfg_file << "'");
      return read_cdfg(f);
    }();
    std::cout << "cdfg '" << g.name() << "': " << g.num_ops() << " ops ("
              << g.num_ops_of_kind(OpKind::kAdd) << " add, "
              << g.num_ops_of_kind(OpKind::kMult) << " mult), depth "
              << g.depth() << "\n";

    // Constraint: user-provided or schedule minimum via a probe schedule.
    ResourceConstraint rc{o.adders, o.mults};
    if (rc.adders == 0 || rc.multipliers == 0) {
      const Schedule probe =
          list_schedule(g, {std::max(1, rc.adders ? rc.adders : 1),
                            std::max(1, rc.multipliers ? rc.multipliers : 1)});
      if (rc.adders == 0) rc.adders = std::max(1, probe.max_density(g, OpKind::kAdd));
      if (rc.multipliers == 0)
        rc.multipliers = std::max(1, probe.max_density(g, OpKind::kMult));
    }

    const Schedule s = o.scheduler == "fds"
                           ? force_directed_schedule(g, g.depth() + 2)
                           : list_schedule(g, rc);
    // Force-directed balances but does not constrain; widen rc if needed.
    rc.adders = std::max(rc.adders, s.max_density(g, OpKind::kAdd));
    rc.multipliers = std::max(rc.multipliers, s.max_density(g, OpKind::kMult));
    std::cout << "schedule (" << o.scheduler << "): " << s.num_steps
              << " steps; allocation " << rc.adders << " add / "
              << rc.multipliers << " mult\n";

    const RegisterBinding regs = bind_registers(g, s);
    SaCache cache(o.width);
    FuBinding fus;
    if (o.binder == "lopass") {
      fus = bind_fus_lopass(g, s, regs, rc, LopassParams{o.width});
    } else if (o.binder == "hlpower") {
      HlpowerParams hp;
      hp.weight.alpha = o.alpha;
      fus = bind_fus_hlpower(g, s, regs, rc, cache, hp).fus;
    } else {
      usage("binder must be hlpower or lopass");
    }
    if (o.refine) {
      const PortRefineResult pr = refine_ports(g, regs, fus, cache);
      std::cout << "port refinement: " << pr.flips_applied << " flips, cost "
                << pr.cost_before << " -> " << pr.cost_after << "\n";
      fus = pr.fus;
    }
    const Binding bind{regs, fus};
    const DatapathStats st = compute_datapath_stats(g, regs, fus);

    FlowParams fp;
    fp.width = o.width;
    fp.num_vectors = o.vectors;
    const FlowResult r = run_flow(g, s, bind, fp);
    std::cout << "binding: " << fus.num_fus() << " FUs, "
              << regs.num_registers << " registers, mux length "
              << st.mux_length << ", largest mux " << st.largest_mux
              << ", muxDiff mean " << st.muxdiff_mean << "\n"
              << "evaluation: " << r.mapped.num_luts << " LUTs, "
              << r.clock_period_ns << " ns clock, "
              << r.report.dynamic_power_mw << " mW dynamic, toggle "
              << r.report.toggle_rate_mps << " M/s, glitch fraction "
              << r.report.glitch_fraction << "\n";

    auto write_file = [](const std::string& path, const std::string& text) {
      if (path.empty()) return;
      std::ofstream f(path);
      HLP_REQUIRE(f.good(), "cannot write '" << path << "'");
      f << text;
      std::cout << "wrote " << path << "\n";
    };
    write_file(o.vhdl_out, emit_vhdl(g, s, bind, VhdlParams{o.width}));
    write_file(o.verilog_out, emit_verilog(g, s, bind, VerilogParams{o.width}));
    if (!o.blif_out.empty()) {
      const Datapath dp = elaborate_datapath(g, s, bind, DatapathParams{o.width});
      write_file(o.blif_out, blif_to_string(dp.netlist));
    }
    write_file(o.dot_out, cdfg_to_dot(g));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
