// hlpower_cli — command-line driver for the whole library, built on the
// src/flow subsystem.
//
// Reads CDFGs (built-in paper benchmarks and/or text files), schedules and
// binds them with registry-selected algorithms, runs the staged evaluation
// pipeline — in parallel across designs with --jobs — and optionally
// writes VHDL / Verilog / BLIF / DOT artifacts for single-design runs.
//
// Usage:
//   hlpower_cli [options]
//     --bench <names>       comma-separated paper benchmarks, or 'all'
//     --cdfg <file>         read a CDFG text file instead
//     --adders N --mults N  resource constraint (default: schedule minimum)
//     --binder <name>       FU binder from the registry (default hlpower)
//     --alpha X             Eq. 4 alpha (default 0.5)
//     --refine              run post-binding port refinement
//     --scheduler <name>    scheduler from the registry (default list)
//     --jobs N              worker threads for multi-design runs (default 1)
//     --vectors N           simulation vectors (default 200)
//     --width N             datapath bits (default 8)
//     --seed N              simulation stimulus seed (default 42)
//     --timings             print per-stage pipeline wall clock
//     --vhdl <file> --verilog <file> --blif <file> --dot <file>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "binding/datapath_stats.hpp"
#include "cdfg/benchmarks.hpp"
#include "cdfg/io.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "flow/experiment.hpp"
#include "flow/pipeline.hpp"
#include "flow/registry.hpp"
#include "netlist/blif.hpp"
#include "rtl/verilog.hpp"
#include "rtl/vhdl.hpp"

namespace {

using namespace hlp;

/// Bad command line. Unlike the library's hlp::Error, this asks main to
/// print the usage text — no std::exit from the middle of parsing.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct Options {
  std::vector<std::string> benches;
  std::string cdfg_file;
  int adders = 0, mults = 0;
  std::string binder = "hlpower";
  double alpha = 0.5;
  bool refine = false;
  std::string scheduler = "list";
  int jobs = 1;
  int vectors = 200;
  int width = 8;
  std::uint64_t seed = 42;
  bool timings = false;
  bool help = false;
  std::string vhdl_out, verilog_out, blif_out, dot_out;
};

std::string joined(const std::vector<std::string>& names);

void print_usage(std::ostream& os) {
  os << "usage: hlpower_cli --bench <names>|--cdfg <file> [options]\n"
        "  registered schedulers:"
     << joined(flow::scheduler_registry().names())
     << "\n"
        "  registered binders:   "
     << joined(flow::binder_registry().names())
     << "\n"
        "  see the header comment of examples/hlpower_cli.cpp\n";
}

std::vector<std::string> bench_names_all() {
  // Derived from the library's profile list so a new paper benchmark is
  // picked up by --bench all automatically.
  std::vector<std::string> out;
  for (const auto& profile : paper_benchmarks()) out.push_back(profile.name);
  return out;
}

std::vector<std::string> split_names(const std::string& arg) {
  std::vector<std::string> out;
  std::istringstream ss(arg);
  std::string name;
  while (std::getline(ss, name, ','))
    if (!name.empty()) out.push_back(name);
  return out;
}

int parse_int(const std::string& flag, const std::string& value) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw UsageError(flag + " needs an integer, got '" + value + "'");
  }
}

double parse_double(const std::string& flag, const std::string& value) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw UsageError(flag + " needs a number, got '" + value + "'");
  }
}

std::string joined(const std::vector<std::string>& names) {
  std::string s;
  for (const auto& n : names) s += " " + n;
  return s;
}

Options parse(int argc, char** argv) {
  Options o;
  auto need = [&](int& i) -> std::string {
    if (++i >= argc) throw UsageError("missing argument value");
    return argv[i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--bench") {
      const std::string arg = need(i);
      o.benches = arg == "all" ? bench_names_all()
                               : split_names(arg);
    } else if (a == "--cdfg") o.cdfg_file = need(i);
    else if (a == "--adders") o.adders = parse_int(a, need(i));
    else if (a == "--mults") o.mults = parse_int(a, need(i));
    else if (a == "--binder") o.binder = need(i);
    else if (a == "--alpha") o.alpha = parse_double(a, need(i));
    else if (a == "--refine") o.refine = true;
    else if (a == "--scheduler") o.scheduler = need(i);
    else if (a == "--jobs") o.jobs = parse_int(a, need(i));
    else if (a == "--vectors") o.vectors = parse_int(a, need(i));
    else if (a == "--width") o.width = parse_int(a, need(i));
    else if (a == "--seed") o.seed = parse_int(a, need(i));
    else if (a == "--timings") o.timings = true;
    else if (a == "--vhdl") o.vhdl_out = need(i);
    else if (a == "--verilog") o.verilog_out = need(i);
    else if (a == "--blif") o.blif_out = need(i);
    else if (a == "--dot") o.dot_out = need(i);
    else if (a == "--help" || a == "-h") o.help = true;
    else throw UsageError("unknown option '" + a + "'");
  }
  if (o.help) return o;
  if (o.benches.empty() == o.cdfg_file.empty())
    throw UsageError("exactly one of --bench / --cdfg is required");
  // Registry-driven validation: unknown names fail here with the list of
  // registered algorithms instead of deep inside the pipeline.
  if (!flow::scheduler_registry().contains(o.scheduler))
    throw UsageError("unknown scheduler '" + o.scheduler + "' (try" +
                     joined(flow::scheduler_registry().names()) + ")");
  if (!flow::binder_registry().contains(o.binder))
    throw UsageError("unknown binder '" + o.binder + "' (try" +
                     joined(flow::binder_registry().names()) + ")");
  if (o.jobs < 1) throw UsageError("--jobs must be >= 1");
  if (o.width < 1) throw UsageError("--width must be >= 1");
  if (o.vectors < 1) throw UsageError("--vectors must be >= 1");
  if (o.benches.size() > 1 &&
      !(o.vhdl_out.empty() && o.verilog_out.empty() && o.blif_out.empty() &&
        o.dot_out.empty()))
    throw UsageError("artifact outputs (--vhdl/--verilog/--blif/--dot) "
                     "require a single design");
  return o;
}

flow::Job make_job(const Options& o, const std::string& design) {
  flow::Job job;
  job.benchmark = design;
  job.scheduler = o.scheduler;
  job.binder.name = o.binder;
  job.binder.alpha = o.alpha;
  job.binder.refine = o.refine;
  job.rc = {o.adders, o.mults};
  job.width = o.width;
  job.num_vectors = o.vectors;
  job.seed = o.seed;
  return job;
}

void print_result(const Options& o, flow::ExperimentRunner& runner,
                  const flow::JobResult& res) {
  flow::FlowContext& ctx = runner.context_for(res.job);
  const Cdfg& g = ctx.cdfg();
  const flow::PipelineOutcome& out = res.outcome;
  std::cout << "cdfg '" << g.name() << "': " << g.num_ops() << " ops ("
            << g.num_ops_of_kind(OpKind::kAdd) << " add, "
            << g.num_ops_of_kind(OpKind::kMult) << " mult), depth "
            << g.depth() << "\n"
            << "schedule (" << o.scheduler << "): "
            << ctx.schedule().num_steps << " steps; allocation "
            << ctx.rc().adders << " add / " << ctx.rc().multipliers
            << " mult\n";
  if (out.refined)
    std::cout << "port refinement: " << out.refine.flips_applied
              << " flips, cost " << out.refine.cost_before << " -> "
              << out.refine.cost_after << "\n";
  const DatapathStats& st = out.flow.mux_stats;
  std::cout << "binding (" << o.binder << "): " << out.fus.num_fus()
            << " FUs, " << ctx.regs().num_registers
            << " registers, mux length " << st.mux_length << ", largest mux "
            << st.largest_mux << ", muxDiff mean " << st.muxdiff_mean << "\n"
            << "evaluation: " << out.flow.mapped.num_luts << " LUTs, "
            << out.flow.clock_period_ns << " ns clock, "
            << out.flow.report.dynamic_power_mw << " mW dynamic, toggle "
            << out.flow.report.toggle_rate_mps << " M/s, glitch fraction "
            << out.flow.report.glitch_fraction << "\n";
  if (o.timings) {
    std::cout << "stages:";
    for (const auto& t : out.timings)
      std::cout << " " << t.name << "=" << fmt_fixed(t.seconds * 1e3, 1)
                << "ms";
    std::cout << "\n";
  }
}

void write_artifacts(const Options& o, flow::ExperimentRunner& runner,
                     const flow::JobResult& res) {
  flow::FlowContext& ctx = runner.context_for(res.job);
  const Cdfg& g = ctx.cdfg();
  const Binding bind{ctx.regs(), res.outcome.fus};
  auto write_file = [](const std::string& path, const std::string& text) {
    if (path.empty()) return;
    std::ofstream f(path);
    HLP_REQUIRE(f.good(), "cannot write '" << path << "'");
    f << text;
    std::cout << "wrote " << path << "\n";
  };
  write_file(o.vhdl_out,
             emit_vhdl(g, ctx.schedule(), bind, VhdlParams{o.width}));
  write_file(o.verilog_out,
             emit_verilog(g, ctx.schedule(), bind, VerilogParams{o.width}));
  if (!o.blif_out.empty()) {
    const Datapath dp = elaborate_datapath(g, ctx.schedule(), bind,
                                           DatapathParams{o.width});
    write_file(o.blif_out, blif_to_string(dp.netlist));
  }
  write_file(o.dot_out, cdfg_to_dot(g));
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  try {
    o = parse(argc, argv);
  } catch (const UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    print_usage(std::cerr);
    return 1;
  }
  if (o.help) {
    print_usage(std::cout);
    return 0;
  }
  try {
    // One job per design; --cdfg designs resolve through a provider that
    // reads the file, everything else is a paper benchmark.
    const std::string cdfg_file = o.cdfg_file;
    flow::ExperimentRunner runner(
        o.jobs, [cdfg_file](const std::string& name) {
          if (!cdfg_file.empty() && name == cdfg_file) {
            std::ifstream f(cdfg_file);
            HLP_REQUIRE(f.good(), "cannot open '" << cdfg_file << "'");
            return read_cdfg(f);
          }
          return make_paper_benchmark(name);
        });
    std::vector<flow::Job> jobs;
    if (!o.cdfg_file.empty()) {
      jobs.push_back(make_job(o, o.cdfg_file));
    } else {
      for (const auto& name : o.benches) jobs.push_back(make_job(o, name));
    }
    const auto results = runner.run(jobs);

    int failures = 0;
    if (results.size() == 1) {
      const auto& res = results[0];
      if (!res.ok) {
        std::cerr << "error: " << res.error << "\n";
        return 1;
      }
      print_result(o, runner, res);
      write_artifacts(o, runner, res);
      return 0;
    }
    // Multi-design summary table (artifact flags rejected at parse time).
    AsciiTable t({"design", "csteps", "FUs", "regs", "LUTs", "clk (ns)",
                  "power (mW)", "toggle (M/s)", "bind (s)", "total (s)"});
    for (const auto& res : results) {
      if (!res.ok) {
        ++failures;
        std::cerr << "error: design '" << res.job.benchmark
                  << "': " << res.error << "\n";
        continue;
      }
      flow::FlowContext& ctx = runner.context_for(res.job);
      t.row()
          .add(res.job.benchmark)
          .add(ctx.schedule().num_steps)
          .add(res.outcome.fus.num_fus())
          .add(ctx.regs().num_registers)
          .add(res.outcome.flow.mapped.num_luts)
          .add(res.outcome.flow.clock_period_ns, 1)
          .add(res.outcome.flow.report.dynamic_power_mw, 1)
          .add(res.outcome.flow.report.toggle_rate_mps, 2)
          .add(res.outcome.bind_seconds, 3)
          .add(res.seconds, 3);
    }
    std::cout << results.size() << " designs, binder '" << o.binder
              << "', scheduler '" << o.scheduler << "', " << o.jobs
              << " worker(s)\n";
    t.print(std::cout);
    return failures ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
