// Incremental exploration: walk a knob at a time across the design space
// and watch the Pareto frontier (power x area x clock period) build up
// while the artifact store turns every already-seen bind-fus..time span
// into a disk hit instead of a recompute.
//
// The walk: a base grid (HLPower binder across a small allocation sweep
// and a few stimulus seeds), then
//   1. retune the binder's alpha        -> bindings change, full recompute
//   2. more stimulus vectors            -> tail-only: every span store-hit
//   3. switch the scheduler             -> new scope, full recompute
//   4. alpha back to the base value     -> step 1's spans? No — the BASE
//      grid's spans, straight out of the store (the walk is cumulative,
//      so scheduler stays switched; only scope axes seen in step 3 reuse)
//
// With HLP_STORE set the store persists, so a SECOND run of this example
// reuses every span of every step — the per-step hit counters in the
// report prove it. Without HLP_STORE a temp store spans just this
// process (steps still reuse each other's spans).
//
// Run:  ./build/explore_pareto [benchmark]
#include <cstdlib>
#include <iostream>
#include <unistd.h>

#include "common/table.hpp"
#include "explore/explorer.hpp"
#include "flow/experiment.hpp"

int main(int argc, char** argv) {
  using namespace hlp;
  const std::string name = argc > 1 ? argv[1] : "wang";
  const int threads = flow::jobs_from_env(4);

  // Base grid: HLPower binding at a few allocations x 8 stimulus seeds.
  std::vector<ResourceConstraint> rcs{{1, 1}, {2, 1}, {2, 2}, {3, 2}};
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 8; ++s) seeds.push_back(1000 + s);
  flow::Job base;
  base.width = 8;
  base.num_vectors = 60;
  const std::vector<flow::Job> grid = flow::ExperimentRunner::grid(
      {name}, {flow::BinderSpec{"hlpower"}}, seeds, rcs, base);

  // HLP_STORE (when set) makes the walk persistent across runs; otherwise
  // a per-process temp directory keeps the steps sharing spans.
  std::string store_dir = flow::store_dir_from_env("");
  if (store_dir.empty())
    store_dir = "/tmp/hlp-explore-" + std::to_string(::getpid());

  explore::Explorer explorer(grid, store_dir, threads);
  explore::KnobStep retune;
  retune.name = "alpha=1.0";
  retune.binder_alpha = 1.0;
  explore::KnobStep vectors;
  vectors.name = "vectors=200";
  vectors.num_vectors = 200;
  explore::KnobStep resched;
  resched.name = "asap sched";
  resched.scheduler = "asap";
  explore::KnobStep back;
  back.name = "alpha back";
  back.binder_alpha = 0.5;
  explorer.step(retune).step(vectors).step(resched).step(back);
  const explore::Exploration result = explorer.run();

  std::cout << "incremental walk on '" << name << "' (" << threads
            << " threads, store: " << store_dir << "):\n";
  AsciiTable steps({"step", "knobs", "jobs", "spans", "shared", "hits",
                    "recomputed", "frontier", "ms"});
  for (const explore::StepReport& r : result.steps)
    steps.row()
        .add(r.name)
        .add(r.axes)
        .add(r.num_jobs)
        .add(r.spans)
        .add(r.spans_shared)
        .add(r.store_hits)
        .add(r.store_publishes)
        .add(r.frontier_size)
        .add(r.seconds * 1e3, 1);
  steps.print(std::cout);

  std::cout << "\nPareto frontier (" << result.frontier.size()
            << " points, minimising power/area/period):\n";
  AsciiTable frontier({"power (mW)", "LUTs", "clk (ns)", "configuration"});
  for (const explore::ParetoPoint& p : result.frontier)
    frontier.row()
        .add(p.power_mw, 3)
        .add(p.lut_area)
        .add(p.clock_period_ns, 1)
        .add(p.label);
  frontier.print(std::cout);

  const auto& f = explorer.frontier();
  std::cout << "\n" << f.offered() << " results streamed, " << f.skipped()
            << " failures skipped; rerun with HLP_STORE=" << store_dir
            << " to start every step warm.\n";
  return 0;
}
