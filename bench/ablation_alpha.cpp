// Ablation: sweep the Eq. 4 weighting coefficient alpha on a subset of
// benchmarks. Reproduces the paper's alpha = 1 vs alpha = 0.5 discussion
// (Section 6.2) with a finer grid: alpha = 1 uses only the glitch-aware SA
// term, alpha = 0 only the mux-balancing term.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/hlpower.hpp"

namespace {

void print_alpha_sweep() {
  using namespace hlp;
  using namespace hlp::bench;
  const std::vector<double> alphas = {0.0, 0.25, 0.5, 0.75, 1.0};
  const std::vector<std::string> subset = {"pr", "wang", "mcm", "honda"};
  AsciiTable t({"Bench", "alpha", "Power (mW)", "Toggle (M/s)", "LUTs",
                "MuxLen", "muxDiff mean"});
  // One grid through the runner: (benchmark x alpha), HLP_JOBS threads.
  std::vector<flow::Job> jobs;
  for (const auto& name : subset)
    for (double a : alphas) {
      flow::BinderSpec spec{"hlpower"};
      spec.alpha = a;
      jobs.push_back(job(name, spec));
    }
  const auto results = runner().run(jobs);
  for (const auto& res : results) {
    if (!res.ok) {
      std::cerr << "job " << res.job.benchmark << " failed: " << res.error
                << "\n";
      continue;
    }
    const Evaluated ev = to_evaluated(res.outcome);
    t.row()
        .add(res.job.benchmark)
        .add(res.job.binder.alpha, 2)
        .add(ev.flow.report.dynamic_power_mw, 1)
        .add(ev.flow.report.toggle_rate_mps, 2)
        .add(ev.flow.mapped.num_luts)
        .add(ev.mux.mux_length)
        .add(ev.mux.muxdiff_mean, 2);
  }
  std::cout << "Ablation: alpha sweep (Eq. 4 weighting; SA term vs "
               "mux-balancing term)\n";
  t.print(std::cout);
  std::cout << "\n";
}

void BM_BindAlphaHalf(benchmark::State& state) {
  using namespace hlp;
  using namespace hlp::bench;
  flow::FlowContext& ctx = context("mcm");
  for (auto _ : state)
    benchmark::DoNotOptimize(bind_fus_hlpower(ctx.cdfg(), ctx.schedule(),
                                              ctx.regs(), ctx.rc(),
                                              sa_cache()));
}
BENCHMARK(BM_BindAlphaHalf)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_alpha_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
