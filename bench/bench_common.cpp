#include "bench_common.hpp"

#include <map>

#include "common/error.hpp"

namespace hlp::bench {

const std::vector<std::string>& names() {
  // Derived from the library's Table 1 profile list (paper order).
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> out;
    for (const auto& profile : paper_benchmarks()) out.push_back(profile.name);
    return out;
  }();
  return kNames;
}

Table2Row table2(const std::string& name) {
  // Resource constraints, schedule length and register count of Table 2.
  static const std::map<std::string, Table2Row> kRows = {
      {"chem", {9, 7, 39, 70}}, {"dir", {3, 2, 41, 25}},
      {"honda", {4, 4, 18, 13}}, {"mcm", {4, 2, 27, 54}},
      {"pr", {2, 2, 16, 32}},   {"steam", {7, 6, 28, 39}},
      {"wang", {2, 2, 18, 39}}};
  auto it = kRows.find(name);
  HLP_REQUIRE(it != kRows.end(), "unknown benchmark '" << name << "'");
  return it->second;
}

int bench_width() { return 8; }

int bench_vectors() {
  // The paper simulates 1000 random vectors; the default here is lower so
  // the full table suite stays interactive. HLP_VECTORS=1000 reproduces
  // the paper's count (the shape is stable well below that).
  return vectors_from_env(200);
}

int bench_jobs() { return flow::jobs_from_env(2); }

SaCache& sa_cache() {
  static SaCache cache(bench_width());
  return cache;
}

flow::ExperimentRunner& runner() {
  static flow::ExperimentRunner r(bench_jobs(), {}, &sa_cache());
  return r;
}

flow::Job job(const std::string& name, const flow::BinderSpec& spec) {
  const Table2Row row = table2(name);
  flow::Job j;
  j.benchmark = name;
  j.binder = spec;
  j.rc = {row.adders, row.multipliers};
  j.width = bench_width();
  j.num_vectors = bench_vectors();
  return j;
}

flow::FlowContext& context(const std::string& name) {
  return runner().context_for(job(name, {}));
}

Evaluated to_evaluated(const flow::PipelineOutcome& out) {
  Evaluated ev;
  ev.fus = out.fus;
  ev.mux = out.flow.mux_stats;
  ev.flow = out.flow;
  ev.bind_seconds = out.bind_seconds;
  ev.timings = out.timings;
  return ev;
}

Evaluated evaluate(const std::string& name, const flow::BinderSpec& spec) {
  flow::RunSpec rs;
  rs.binder = spec;
  rs.num_vectors = bench_vectors();
  return to_evaluated(flow::Pipeline::standard().run(context(name), rs));
}

const Comparison& comparison(const std::string& name) {
  static std::map<std::string, Comparison> memo;
  static std::mutex memo_mu;
  {
    std::lock_guard<std::mutex> lock(memo_mu);
    auto it = memo.find(name);
    if (it != memo.end()) return it->second;
  }

  // The three configurations fan through the runner's thread pool; they
  // share one context, so schedule + register binding are computed once.
  flow::BinderSpec lopass{"lopass"};
  flow::BinderSpec half{"hlpower"};
  half.alpha = 0.5;
  flow::BinderSpec one{"hlpower"};
  one.alpha = 1.0;
  const std::vector<flow::Job> jobs = {job(name, lopass), job(name, half),
                                       job(name, one)};
  const auto results = runner().run(jobs);
  Comparison cmp;
  for (std::size_t i = 0; i < results.size(); ++i)
    HLP_CHECK(results[i].ok, "job '" << name << "' #" << i << " failed: "
                                     << results[i].error);
  cmp.lopass = to_evaluated(results[0].outcome);
  cmp.hlp_half = to_evaluated(results[1].outcome);
  cmp.hlp_one = to_evaluated(results[2].outcome);

  std::lock_guard<std::mutex> lock(memo_mu);
  return memo.emplace(name, std::move(cmp)).first->second;
}

double pct(double a, double b) { return a == 0.0 ? 0.0 : 100.0 * (b - a) / a; }

}  // namespace hlp::bench
