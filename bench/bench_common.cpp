#include "bench_common.hpp"

#include <chrono>
#include <map>

#include "binding/register_binder.hpp"
#include "common/error.hpp"

namespace hlp::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

const std::vector<std::string>& names() {
  static const std::vector<std::string> kNames = {
      "chem", "dir", "honda", "mcm", "pr", "steam", "wang"};
  return kNames;
}

Table2Row table2(const std::string& name) {
  // Resource constraints, schedule length and register count of Table 2.
  static const std::map<std::string, Table2Row> kRows = {
      {"chem", {9, 7, 39, 70}}, {"dir", {3, 2, 41, 25}},
      {"honda", {4, 4, 18, 13}}, {"mcm", {4, 2, 27, 54}},
      {"pr", {2, 2, 16, 32}},   {"steam", {7, 6, 28, 39}},
      {"wang", {2, 2, 18, 39}}};
  auto it = kRows.find(name);
  HLP_REQUIRE(it != kRows.end(), "unknown benchmark '" << name << "'");
  return it->second;
}

int bench_width() { return 8; }

int bench_vectors() {
  // The paper simulates 1000 random vectors; the default here is lower so
  // the full table suite stays interactive. HLP_VECTORS=1000 reproduces
  // the paper's count (the shape is stable well below that).
  return vectors_from_env(200);
}

SaCache& sa_cache() {
  static SaCache cache(bench_width());
  return cache;
}

const Setup& setup(const std::string& name) {
  static std::map<std::string, Setup> memo;
  auto it = memo.find(name);
  if (it != memo.end()) return it->second;
  const Table2Row row = table2(name);
  Setup su{make_paper_benchmark(name), {}, {}, {row.adders, row.multipliers}};
  su.s = list_schedule(su.g, su.rc);
  su.regs = bind_registers(su.g, su.s);
  return memo.emplace(name, std::move(su)).first->second;
}

Evaluated evaluate(const Setup& su, const FuBinding& fus,
                   double bind_seconds) {
  Evaluated ev;
  ev.fus = fus;
  ev.bind_seconds = bind_seconds;
  ev.mux = compute_datapath_stats(su.g, su.regs, fus);
  FlowParams fp;
  fp.width = bench_width();
  fp.num_vectors = bench_vectors();
  ev.flow = run_flow(su.g, su.s, Binding{su.regs, fus}, fp);
  return ev;
}

const Comparison& comparison(const std::string& name) {
  static std::map<std::string, Comparison> memo;
  auto it = memo.find(name);
  if (it != memo.end()) return it->second;

  const Setup& su = setup(name);
  Comparison cmp;
  {
    const auto t0 = Clock::now();
    const FuBinding fus =
        bind_fus_lopass(su.g, su.s, su.regs, su.rc, LopassParams{bench_width()});
    cmp.lopass = evaluate(su, fus, seconds_since(t0));
  }
  {
    HlpowerParams hp;
    hp.weight.alpha = 0.5;
    const auto t0 = Clock::now();
    const auto r = bind_fus_hlpower(su.g, su.s, su.regs, su.rc, sa_cache(), hp);
    cmp.hlp_half = evaluate(su, r.fus, seconds_since(t0));
  }
  {
    HlpowerParams hp;
    hp.weight.alpha = 1.0;
    const auto t0 = Clock::now();
    const auto r = bind_fus_hlpower(su.g, su.s, su.regs, su.rc, sa_cache(), hp);
    cmp.hlp_one = evaluate(su, r.fus, seconds_since(t0));
  }
  return memo.emplace(name, std::move(cmp)).first->second;
}

double pct(double a, double b) { return a == 0.0 ? 0.0 : 100.0 * (b - a) / a; }

}  // namespace hlp::bench
