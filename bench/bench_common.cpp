#include "bench_common.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <map>
#include <optional>
#include <ostream>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "explore/explorer.hpp"
#include "flow/distributed.hpp"
#include "flow/job_io.hpp"

namespace hlp::bench {

const std::vector<std::string>& names() {
  // Derived from the library's Table 1 profile list (paper order).
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> out;
    for (const auto& profile : paper_benchmarks()) out.push_back(profile.name);
    return out;
  }();
  return kNames;
}

Table2Row table2(const std::string& name) {
  // Resource constraints, schedule length and register count of Table 2.
  static const std::map<std::string, Table2Row> kRows = {
      {"chem", {9, 7, 39, 70}}, {"dir", {3, 2, 41, 25}},
      {"honda", {4, 4, 18, 13}}, {"mcm", {4, 2, 27, 54}},
      {"pr", {2, 2, 16, 32}},   {"steam", {7, 6, 28, 39}},
      {"wang", {2, 2, 18, 39}}};
  auto it = kRows.find(name);
  HLP_REQUIRE(it != kRows.end(), "unknown benchmark '" << name << "'");
  return it->second;
}

int bench_width() { return 8; }

int bench_vectors() {
  // The paper simulates 1000 random vectors; the default here is lower so
  // the full table suite stays interactive. HLP_VECTORS=1000 reproduces
  // the paper's count (the shape is stable well below that).
  return vectors_from_env(200);
}

int bench_jobs() { return flow::jobs_from_env(2); }

SaCache& sa_cache() {
  // Resolved from HLP_SA_MODE once: every bench shares the same backend,
  // and contexts with a deferred Job::sa agree with this cache's mode.
  static SaCache cache(bench_width(), MapParams{},
                       effective_sa_mode(std::nullopt));
  return cache;
}

flow::ExperimentRunner& runner() {
  static flow::ExperimentRunner r(bench_jobs(), {}, &sa_cache());
  return r;
}

flow::Job job(const std::string& name, const flow::BinderSpec& spec) {
  const Table2Row row = table2(name);
  flow::Job j;
  j.benchmark = name;
  j.binder = spec;
  j.rc = {row.adders, row.multipliers};
  j.width = bench_width();
  j.num_vectors = bench_vectors();
  return j;
}

flow::FlowContext& context(const std::string& name) {
  return runner().context_for(job(name, {}));
}

Evaluated to_evaluated(const flow::PipelineOutcome& out) {
  Evaluated ev;
  ev.fus = out.fus;
  ev.mux = out.flow.mux_stats;
  ev.flow = out.flow;
  ev.bind_seconds = out.bind_seconds;
  ev.timings = out.timings;
  return ev;
}

Evaluated evaluate(const std::string& name, const flow::BinderSpec& spec) {
  flow::RunSpec rs;
  rs.binder = spec;
  rs.num_vectors = bench_vectors();
  return to_evaluated(flow::Pipeline::standard().run(context(name), rs));
}

const Comparison& comparison(const std::string& name) {
  static std::map<std::string, Comparison> memo;
  static std::mutex memo_mu;
  {
    std::lock_guard<std::mutex> lock(memo_mu);
    auto it = memo.find(name);
    if (it != memo.end()) return it->second;
  }

  // The three configurations fan through the runner's thread pool; they
  // share one context, so schedule + register binding are computed once.
  flow::BinderSpec lopass{"lopass"};
  flow::BinderSpec half{"hlpower"};
  half.alpha = 0.5;
  flow::BinderSpec one{"hlpower"};
  one.alpha = 1.0;
  const std::vector<flow::Job> jobs = {job(name, lopass), job(name, half),
                                       job(name, one)};
  const auto results = runner().run(jobs);
  Comparison cmp;
  for (std::size_t i = 0; i < results.size(); ++i)
    HLP_CHECK(results[i].ok, "job '" << name << "' #" << i << " failed: "
                                     << results[i].error);
  cmp.lopass = to_evaluated(results[0].outcome);
  cmp.hlp_half = to_evaluated(results[1].outcome);
  cmp.hlp_one = to_evaluated(results[2].outcome);

  std::lock_guard<std::mutex> lock(memo_mu);
  return memo.emplace(name, std::move(cmp)).first->second;
}

double pct(double a, double b) { return a == 0.0 ? 0.0 : 100.0 * (b - a) / a; }

SeedSweepReport seed_sweep(const std::string& name,
                           const flow::BinderSpec& spec, int num_seeds) {
  using Clock = std::chrono::steady_clock;
  std::vector<std::uint64_t> seeds;
  seeds.reserve(num_seeds);
  for (int s = 0; s < num_seeds; ++s) seeds.push_back(100 + s);
  const auto jobs =
      flow::ExperimentRunner::grid({name}, {spec}, seeds, {}, job(name, spec));

  SeedSweepReport rep;
  rep.benchmark = name;
  rep.num_seeds = num_seeds;

  // Both runners are single-threaded so the measurement isolates the
  // coalescing effect itself (thread scheduling held equal; HLP_JOBS
  // scaling is the orthogonal axis, exercised by the grids above).
  // Coalesced first: the independent runner then inherits a warm SA cache,
  // so any bias in the shared state favours the path we compare AGAINST.
  flow::ExperimentRunner coalesced(1, {}, &sa_cache());
  coalesced.set_coalescing(true);
  auto t0 = Clock::now();
  const auto batched = coalesced.run(jobs);
  rep.coalesced_s = std::chrono::duration<double>(Clock::now() - t0).count();

  flow::ExperimentRunner independent(1, {}, &sa_cache());
  independent.set_coalescing(false);
  t0 = Clock::now();
  const auto solo = independent.run(jobs);
  rep.independent_s = std::chrono::duration<double>(Clock::now() - t0).count();

  rep.identical = batched.size() == solo.size();
  for (std::size_t i = 0; rep.identical && i < batched.size(); ++i) {
    const auto& a = batched[i];
    const auto& b = solo[i];
    rep.identical =
        a.ok && b.ok && a.job.seed == b.job.seed &&
        a.outcome.fus.fu_of_op == b.outcome.fus.fu_of_op &&
        a.outcome.flow.sim.toggles == b.outcome.flow.sim.toggles &&
        a.outcome.flow.sim.functional_transitions ==
            b.outcome.flow.sim.functional_transitions &&
        a.outcome.flow.report.dynamic_power_mw ==
            b.outcome.flow.report.dynamic_power_mw;
  }
  return rep;
}

void print_seed_sweep(std::ostream& os,
                      const std::vector<std::string>& benchmarks,
                      int num_seeds) {
  AsciiTable t({"Benchmark", "seeds", "independent (ms)", "coalesced (ms)",
                "speedup", "identical"});
  double total_solo = 0.0, total_batched = 0.0;
  for (const auto& name : benchmarks) {
    const SeedSweepReport rep =
        seed_sweep(name, flow::BinderSpec{"hlpower"}, num_seeds);
    total_solo += rep.independent_s;
    total_batched += rep.coalesced_s;
    t.row()
        .add(rep.benchmark)
        .add(rep.num_seeds)
        .add(rep.independent_s * 1e3, 1)
        .add(rep.coalesced_s * 1e3, 1)
        .add(rep.speedup(), 1)
        .add(rep.identical ? "yes" : "NO");
  }
  // Name the active word width + dispatch choice so the artifact stays
  // interpretable across machines (auto resolves per CPU and per group
  // size).
  const SimdMode active = effective_simd_mode(
      SimdMode::kAuto, static_cast<std::size_t>(num_seeds));
  os << "Seed-parallel batching: " << num_seeds
     << "-seed Monte-Carlo sweep per binding, coalesced ("
     << simd_lanes(active) << " seeds/word, HLP_SIMD=auto -> "
     << simd_mode_name(active)
     << ") vs independent pipelines (single-threaded, controlled)\n";
  t.print(os);
  os << "Overall speedup: "
     << fmt_fixed(total_batched > 0.0 ? total_solo / total_batched : 0.0, 1)
     << "x\n\n";
}

void print_simd_sweep(std::ostream& os,
                      const std::vector<std::string>& benchmarks,
                      int num_seeds) {
  using Clock = std::chrono::steady_clock;
  std::vector<std::uint64_t> seeds;
  seeds.reserve(num_seeds);
  for (int s = 0; s < num_seeds; ++s) seeds.push_back(100 + s);

  std::vector<SimdMode> modes;
  for (const SimdMode mode : all_simd_modes())
    if (mode != SimdMode::kAuto && simd_mode_supported(mode))
      modes.push_back(mode);

  const SimdMode active = effective_simd_mode(
      SimdMode::kAuto, static_cast<std::size_t>(num_seeds));
  os << "SIMD width sweep: coalesced " << num_seeds
     << "-seed Monte-Carlo sweep per backend (single-threaded; u64 is the "
        "reference row; HLP_SIMD=auto picks "
     << simd_mode_name(active) << " for this group on this machine)\n";

  AsciiTable t({"Benchmark", "simd", "lanes", "time (ms)", "speedup vs u64",
                "identical"});
  for (const auto& name : benchmarks) {
    flow::Job base = job(name, flow::BinderSpec{"hlpower"});
    std::vector<flow::JobResult> reference;
    double u64_s = 0.0;
    for (const SimdMode mode : modes) {
      base.simd = mode;
      const auto jobs = flow::ExperimentRunner::grid({name}, {base.binder},
                                                     seeds, {}, base);
      flow::ExperimentRunner runner(1, {}, &sa_cache());
      runner.set_coalescing(true);
      const auto t0 = Clock::now();
      const auto results = runner.run(jobs);
      const double secs =
          std::chrono::duration<double>(Clock::now() - t0).count();

      SimdSweepRow row;
      row.benchmark = name;
      row.mode = mode;
      row.lanes = simd_lanes(mode);
      row.seconds = secs;
      if (mode == SimdMode::kU64) {
        reference = results;
        u64_s = secs;
        // The reference row must vouch for itself: a failed u64 sweep
        // would otherwise print "yes" while every other row blames the
        // backend for the mismatch.
        row.identical = true;
        for (const auto& r : results) row.identical = row.identical && r.ok;
      } else {
        row.identical = results.size() == reference.size();
        for (std::size_t i = 0; row.identical && i < results.size(); ++i) {
          const auto& a = reference[i];
          const auto& b = results[i];
          row.identical =
              a.ok && b.ok &&
              a.outcome.flow.sim.toggles == b.outcome.flow.sim.toggles &&
              a.outcome.flow.sim.functional_transitions ==
                  b.outcome.flow.sim.functional_transitions &&
              a.outcome.flow.report.dynamic_power_mw ==
                  b.outcome.flow.report.dynamic_power_mw;
        }
      }
      t.row()
          .add(row.benchmark)
          .add(simd_mode_name(row.mode))
          .add(row.lanes)
          .add(row.seconds * 1e3, 1)
          .add(row.seconds > 0.0 ? u64_s / row.seconds : 0.0, 2)
          .add(row.identical ? "yes" : "NO");
    }
  }
  t.print(os);
  os << "\n";
}

void print_settle_sweep(std::ostream& os,
                        const std::vector<std::string>& benchmarks,
                        int num_seeds) {
  using Clock = std::chrono::steady_clock;
  std::vector<std::uint64_t> seeds;
  seeds.reserve(num_seeds);
  for (int s = 0; s < num_seeds; ++s) seeds.push_back(100 + s);

  std::vector<SimdMode> modes;
  for (const SimdMode mode : all_simd_modes())
    if (mode != SimdMode::kAuto && simd_mode_supported(mode))
      modes.push_back(mode);

  os << "Settle engine sweep: coalesced " << num_seeds
     << "-seed Monte-Carlo sweep per SIMD backend under each settle "
        "strategy (single-threaded; event is the reference column; the "
        "engines are bit-identical, so 'identical' must be yes)\n";

  AsciiTable t({"Benchmark", "simd", "lanes", "event (ms)", "level (ms)",
                "auto (ms)", "level vs event", "identical"});
  for (const auto& name : benchmarks) {
    flow::Job base = job(name, flow::BinderSpec{"hlpower"});
    for (const SimdMode mode : modes) {
      base.simd = mode;
      SettleSweepRow row;
      row.benchmark = name;
      row.mode = mode;
      row.lanes = simd_lanes(mode);

      std::vector<flow::JobResult> reference;
      for (const SettleMode settle :
           {SettleMode::kEvent, SettleMode::kLevel, SettleMode::kAuto}) {
        base.settle = settle;
        const auto jobs = flow::ExperimentRunner::grid({name}, {base.binder},
                                                       seeds, {}, base);
        flow::ExperimentRunner runner(1, {}, &sa_cache());
        runner.set_coalescing(true);
        const auto t0 = Clock::now();
        const auto results = runner.run(jobs);
        const double secs =
            std::chrono::duration<double>(Clock::now() - t0).count();

        if (settle == SettleMode::kEvent) {
          row.event_s = secs;
          reference = results;
          // The reference column vouches for itself: a failed event sweep
          // must not let the other engines print "yes" against garbage.
          row.identical = true;
          for (const auto& r : results) row.identical = row.identical && r.ok;
        } else {
          (settle == SettleMode::kLevel ? row.level_s : row.auto_s) = secs;
          row.identical =
              row.identical && results.size() == reference.size();
          for (std::size_t i = 0; row.identical && i < results.size(); ++i) {
            const auto& a = reference[i];
            const auto& b = results[i];
            row.identical =
                a.ok && b.ok &&
                a.outcome.flow.sim.toggles == b.outcome.flow.sim.toggles &&
                a.outcome.flow.sim.functional_transitions ==
                    b.outcome.flow.sim.functional_transitions &&
                a.outcome.flow.report.dynamic_power_mw ==
                    b.outcome.flow.report.dynamic_power_mw;
          }
        }
      }
      t.row()
          .add(row.benchmark)
          .add(simd_mode_name(row.mode))
          .add(row.lanes)
          .add(row.event_s * 1e3, 1)
          .add(row.level_s * 1e3, 1)
          .add(row.auto_s * 1e3, 1)
          .add(row.level_speedup(), 2)
          .add(row.identical ? "yes" : "NO");
    }
  }
  t.print(os);
  os << "\n";
}

WorkerSweepReport worker_sweep(const std::string& name,
                               const flow::BinderSpec& spec, int num_seeds,
                               int parallelism) {
  using Clock = std::chrono::steady_clock;
  std::vector<std::uint64_t> seeds;
  seeds.reserve(num_seeds);
  for (int s = 0; s < num_seeds; ++s) seeds.push_back(100 + s);
  const auto jobs =
      flow::ExperimentRunner::grid({name}, {spec}, seeds, {}, job(name, spec));

  WorkerSweepReport rep;
  rep.benchmark = name;
  rep.num_seeds = num_seeds;
  rep.parallelism = parallelism;

  // Both sides are cold and private (NOT the process-wide sa_cache()):
  // the threaded runner would otherwise inherit a warm table no fresh
  // worker process can have, biasing the axis under measurement.
  flow::ExperimentRunner threaded(parallelism);
  auto t0 = Clock::now();
  const auto in_process = threaded.run(jobs);
  rep.threads_s = std::chrono::duration<double>(Clock::now() - t0).count();

  flow::DistributedRunner dist(parallelism, /*threads_per_worker=*/1);
  t0 = Clock::now();
  const auto sharded = dist.run(jobs);
  rep.workers_s = std::chrono::duration<double>(Clock::now() - t0).count();

  rep.identical = in_process.size() == sharded.size();
  for (std::size_t i = 0; rep.identical && i < sharded.size(); ++i)
    rep.identical = in_process[i].ok &&
                    flow::same_outcome(in_process[i], sharded[i]);
  return rep;
}

void print_worker_sweep(std::ostream& os,
                        const std::vector<std::string>& benchmarks,
                        int num_seeds, int parallelism) {
  if (parallelism <= 0) parallelism = flow::workers_from_env(2);
  os << "Workers vs threads: " << num_seeds
     << "-seed Monte-Carlo sweep per benchmark, " << parallelism
     << " worker processes (hlp_worker fork/exec, SA shards merged) vs "
     << parallelism << " in-process threads (both cold, coalescing on)\n";
  AsciiTable t({"Benchmark", "seeds", "threads (ms)", "workers (ms)",
                "threads/workers", "identical"});
  for (const auto& name : benchmarks) {
    WorkerSweepReport rep;
    try {
      rep = worker_sweep(name, flow::BinderSpec{"hlpower"}, num_seeds,
                         parallelism);
    } catch (const std::exception& e) {
      // Typically: hlp_worker not built / not next to this binary. Keep
      // the rows already measured — a partial table beats a dropped one.
      os << "  (remaining benchmarks skipped: " << e.what() << ")\n";
      break;
    }
    t.row()
        .add(rep.benchmark)
        .add(rep.num_seeds)
        .add(rep.threads_s * 1e3, 1)
        .add(rep.workers_s * 1e3, 1)
        .add(rep.ratio(), 2)
        .add(rep.identical ? "yes" : "NO");
  }
  t.print(os);
  os << "(ratio > 1: processes beat threads on this grid; worker spawn + "
        "manifest I/O is the fixed cost, per-process SA tables the "
        "variable one)\n\n";
}

DispatchSweepReport dispatch_sweep(const std::vector<std::string>& benchmarks,
                                   int num_seeds, int parallelism) {
  using Clock = std::chrono::steady_clock;
  std::vector<std::uint64_t> seeds;
  seeds.reserve(num_seeds);
  for (int s = 0; s < num_seeds; ++s) seeds.push_back(100 + s);

  // Deliberately skewed job order AND cost: the anneal prefix carries 4x
  // the Monte-Carlo vectors (heavy bind + heavy sim), the lopass tail a
  // quarter (cheap smoke jobs), and the whole prefix lands in a
  // contiguous static slice 0 while the tail is near-free.
  std::vector<flow::Job> jobs;
  std::size_t expensive = 0;
  for (const flow::BinderSpec& spec :
       {flow::BinderSpec{"anneal"}, flow::BinderSpec{"lopass"}}) {
    for (const auto& name : benchmarks) {
      flow::Job base = job(name, spec);
      base.num_vectors = spec.name == "anneal"
                             ? 4 * bench_vectors()
                             : std::max(1, bench_vectors() / 4);
      const auto part =
          flow::ExperimentRunner::grid({name}, {spec}, seeds, {}, base);
      jobs.insert(jobs.end(), part.begin(), part.end());
    }
    if (spec.name == "anneal") expensive = jobs.size();
  }

  DispatchSweepReport rep;
  rep.num_jobs = static_cast<int>(jobs.size());
  rep.expensive_jobs = static_cast<int>(expensive);
  rep.parallelism = parallelism;

  // All three sides are cold and private (NOT the process-wide
  // sa_cache()), so the measurement isolates the dispatch axis.
  flow::ExperimentRunner threaded(parallelism);
  auto t0 = Clock::now();
  const auto reference = threaded.run(jobs);
  rep.threads_s = std::chrono::duration<double>(Clock::now() - t0).count();

  flow::DistributedRunner stat(parallelism, /*threads_per_worker=*/1);
  stat.set_dispatch(flow::DispatchMode::kStatic);
  t0 = Clock::now();
  const auto by_slice = stat.run(jobs);
  rep.static_s = std::chrono::duration<double>(Clock::now() - t0).count();

  flow::DistributedRunner stream(parallelism, /*threads_per_worker=*/1);
  stream.set_dispatch(flow::DispatchMode::kStream);
  t0 = Clock::now();
  const auto by_unit = stream.run(jobs);
  rep.stream_s = std::chrono::duration<double>(Clock::now() - t0).count();

  rep.identical = by_slice.size() == reference.size() &&
                  by_unit.size() == reference.size();
  for (std::size_t i = 0; rep.identical && i < reference.size(); ++i)
    rep.identical = reference[i].ok &&
                    flow::same_outcome(reference[i], by_slice[i]) &&
                    flow::same_outcome(reference[i], by_unit[i]);
  return rep;
}

void print_dispatch_sweep(std::ostream& os,
                          const std::vector<std::string>& benchmarks,
                          int num_seeds, int parallelism) {
  if (parallelism <= 0) parallelism = flow::workers_from_env(2);
  os << "Dispatch sweep: skewed grid (every anneal seed-group first, every "
        "lopass group last) through "
     << parallelism
     << " in-process threads vs " << parallelism
     << " worker processes under HLP_DISPATCH=static and =stream (all "
        "cold, coalescing on; the modes are bit-identical, so 'identical' "
        "must be yes)\n";
  DispatchSweepReport rep;
  try {
    rep = dispatch_sweep(benchmarks, num_seeds, parallelism);
  } catch (const std::exception& e) {
    os << "  (dispatch sweep skipped: " << e.what() << ")\n\n";
    return;
  }
  AsciiTable t({"dispatch", "jobs", "expensive prefix", "wall (ms)",
                "static/this", "identical"});
  t.row()
      .add("threads")
      .add(rep.num_jobs)
      .add(rep.expensive_jobs)
      .add(rep.threads_s * 1e3, 1)
      .add(rep.threads_s > 0.0 ? rep.static_s / rep.threads_s : 0.0, 2)
      .add(rep.identical ? "yes" : "NO");
  t.row()
      .add("static")
      .add(rep.num_jobs)
      .add(rep.expensive_jobs)
      .add(rep.static_s * 1e3, 1)
      .add(1.0, 2)
      .add(rep.identical ? "yes" : "NO");
  t.row()
      .add("stream")
      .add(rep.num_jobs)
      .add(rep.expensive_jobs)
      .add(rep.stream_s * 1e3, 1)
      .add(rep.stream_speedup(), 2)
      .add(rep.identical ? "yes" : "NO");
  t.print(os);
  os << "(static/this > 1: that dispatch beats the static split; the "
        "stream row is the work-stealing payoff — the anneal prefix "
        "spreads across every worker instead of gating slice 0)\n\n";
}

StoreSweepReport store_sweep(const std::string& name,
                             const flow::BinderSpec& spec, int num_seeds) {
  using Clock = std::chrono::steady_clock;
  std::vector<std::uint64_t> seeds;
  seeds.reserve(num_seeds);
  for (int s = 0; s < num_seeds; ++s) seeds.push_back(100 + s);
  const auto jobs =
      flow::ExperimentRunner::grid({name}, {spec}, seeds, {}, job(name, spec));

  // A fresh store per sweep, in the system temp dir (pid-qualified so
  // concurrent bench invocations cannot collide), removed afterwards.
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("hlp-store-sweep-" + std::to_string(::getpid()) + "-" + name))
          .string();
  std::filesystem::remove_all(dir);

  StoreSweepReport rep;
  rep.benchmark = name;
  rep.num_seeds = num_seeds;

  // Every job of a coalesced group carries a copy of the group's shared
  // stage ledger, so weight each copy by 1/group_size to recover the
  // actual once-per-invocation stage seconds.
  const auto span_seconds = [](const std::vector<flow::JobResult>& results) {
    double total = 0.0;
    for (const auto& r : results)
      for (const auto& t : r.outcome.timings)
        if (t.name == "bind-fus" || t.name == "refine" ||
            t.name == "elaborate" || t.name == "map" || t.name == "time")
          total += t.seconds / static_cast<double>(std::max<std::size_t>(
                                   r.group_size, 1));
    return total;
  };

  // Single-threaded with private cold SA caches on both sides: the store
  // directory is the ONLY state cold hands to warm, so the warm column
  // measures exactly what persistence buys a process restart.
  flow::ExperimentRunner cold(1);
  cold.set_store_dir(dir);
  auto t0 = Clock::now();
  const auto first = cold.run(jobs);
  rep.cold_s = std::chrono::duration<double>(Clock::now() - t0).count();
  rep.span_cold_s = span_seconds(first);

  flow::ExperimentRunner warm(1);
  warm.set_store_dir(dir);
  t0 = Clock::now();
  const auto second = warm.run(jobs);
  rep.warm_s = std::chrono::duration<double>(Clock::now() - t0).count();
  rep.span_warm_s = span_seconds(second);

  rep.identical = first.size() == second.size();
  rep.warm_cached = rep.identical;
  for (std::size_t i = 0; rep.identical && i < first.size(); ++i) {
    rep.identical = first[i].ok && second[i].ok &&
                    flow::same_outcome(first[i], second[i]);
    rep.warm_cached =
        rep.warm_cached && !second[i].outcome.cached_stages.empty();
  }
  std::filesystem::remove_all(dir);
  return rep;
}

void print_store_sweep(std::ostream& os,
                       const std::vector<std::string>& benchmarks,
                       int num_seeds) {
  AsciiTable t({"Benchmark", "seeds", "cold (ms)", "warm (ms)", "speedup",
                "span cold (ms)", "span warm (ms)", "identical", "cached"});
  for (const auto& name : benchmarks) {
    const StoreSweepReport rep =
        store_sweep(name, flow::BinderSpec{"hlpower"}, num_seeds);
    t.row()
        .add(rep.benchmark)
        .add(rep.num_seeds)
        .add(rep.cold_s * 1e3, 1)
        .add(rep.warm_s * 1e3, 1)
        .add(rep.speedup(), 2)
        .add(rep.span_cold_s * 1e3, 1)
        .add(rep.span_warm_s * 1e3, 1)
        .add(rep.identical ? "yes" : "NO")
        .add(rep.warm_cached ? "yes" : "NO");
  }
  os << "Artifact store: " << num_seeds
     << "-seed sweep per binding, cold populate vs warm restart against "
        "one HLP_STORE directory (fresh runners, private SA caches; the "
        "store is the only shared state — 'identical' and 'cached' must "
        "be yes)\n";
  t.print(os);
  os << "(span = bind-fus..time stage seconds the store persists; the "
        "warm span is the disk-probe cost that replaces recomputation)\n\n";
}

void print_explore_sweep(std::ostream& os,
                         const std::vector<std::string>& benchmarks,
                         int num_seeds) {
  // Base grid: every benchmark under the headline binder across the seed
  // sweep, at the bench width/vector budget.
  std::vector<std::uint64_t> seeds;
  seeds.reserve(num_seeds);
  for (int s = 0; s < num_seeds; ++s) seeds.push_back(100 + s);
  std::vector<flow::Job> grid;
  for (const auto& name : benchmarks) {
    const flow::BinderSpec spec{"hlpower"};
    const auto rows =
        flow::ExperimentRunner::grid({name}, {spec}, seeds, {}, job(name, spec));
    grid.insert(grid.end(), rows.begin(), rows.end());
  }

  // One store shared by both walks, pid-qualified like store_sweep so
  // concurrent bench invocations cannot collide, removed afterwards.
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("hlp-explore-sweep-" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);

  AsciiTable t({"walk", "step", "knobs", "jobs", "spans", "shared", "hits",
                "recomputed", "frontier", "ms"});
  std::vector<explore::ParetoPoint> frontiers[2];
  for (int round = 0; round < 2; ++round) {
    explore::Explorer ex(grid, dir, 1);
    explore::KnobStep vectors;
    vectors.name = "vectors x2";
    vectors.num_vectors = bench_vectors() * 2;
    explore::KnobStep alpha;
    alpha.name = "alpha=1.0";
    alpha.binder_alpha = 1.0;
    explore::KnobStep sched;
    sched.name = "asap sched";
    sched.scheduler = "asap";
    ex.step(vectors).step(alpha).step(sched);
    const explore::Exploration result = ex.run();
    for (const explore::StepReport& r : result.steps)
      t.row()
          .add(round == 0 ? "cold" : "warm")
          .add(r.name)
          .add(r.axes)
          .add(r.num_jobs)
          .add(r.spans)
          .add(r.spans_shared)
          .add(static_cast<std::size_t>(r.store_hits))
          .add(static_cast<std::size_t>(r.store_publishes))
          .add(r.frontier_size)
          .add(r.seconds * 1e3, 1);
    frontiers[round] = result.frontier;
  }
  std::filesystem::remove_all(dir);

  os << "Incremental exploration: the canonical knob walk (base, more "
        "vectors, binder retune, scheduler switch) over "
     << grid.size() << " jobs, cold then warm against one store directory "
     << "(the warm walk must be all-hits / zero-recompute on every step)\n";
  t.print(os);
  os << "(frontiers bit-identical across the two walks: "
     << (frontiers[0] == frontiers[1] ? "yes" : "NO") << "; "
     << frontiers[0].size() << " Pareto points)\n\n";
}

}  // namespace hlp::bench
