// Ablation: sweep the Eq. 4 beta scaling (mux term magnitude relative to
// the SA term). The paper reports beta ~ 30 (add) / 1000 (mult) for its
// estimator's SA scale; our estimator lands at a different absolute scale,
// so this sweep documents the recalibration (DESIGN.md section 5).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace {

void print_beta_sweep() {
  using namespace hlp;
  using namespace hlp::bench;
  struct BetaPair {
    double add, mult;
    const char* note;
  };
  const std::vector<BetaPair> betas = {
      {30, 1000, "paper values"},
      {60, 2000, ""},
      {120, 4000, ""},
      {240, 8000, "our default"},
      {480, 16000, ""},
  };
  const std::vector<std::string> subset = {"pr", "mcm"};
  AsciiTable t({"Bench", "beta add/mult", "Power (mW)", "Toggle (M/s)",
                "LUTs", "MuxLen", "muxDiff mean", "note"});
  for (const auto& name : subset) {
    const Setup& su = setup(name);
    for (const auto& bp : betas) {
      HlpowerParams hp;
      hp.weight.alpha = 0.5;
      hp.weight.beta_add = bp.add;
      hp.weight.beta_mult = bp.mult;
      const auto r = bind_fus_hlpower(su.g, su.s, su.regs, su.rc, sa_cache(), hp);
      const Evaluated ev = evaluate(su, r.fus, 0.0);
      t.row()
          .add(name)
          .add(fmt_fixed(bp.add, 0) + "/" + fmt_fixed(bp.mult, 0))
          .add(ev.flow.report.dynamic_power_mw, 1)
          .add(ev.flow.report.toggle_rate_mps, 2)
          .add(ev.flow.mapped.num_luts)
          .add(ev.mux.mux_length)
          .add(ev.mux.muxdiff_mean, 2)
          .add(bp.note);
    }
  }
  std::cout << "Ablation: beta sweep (Eq. 4 mux-term scaling, alpha=0.5)\n";
  t.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  print_beta_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
