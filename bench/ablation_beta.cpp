// Ablation: sweep the Eq. 4 beta scaling (mux term magnitude relative to
// the SA term). The paper reports beta ~ 30 (add) / 1000 (mult) for its
// estimator's SA scale; our estimator lands at a different absolute scale,
// so this sweep documents the recalibration (DESIGN.md section 5).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace {

void print_beta_sweep() {
  using namespace hlp;
  using namespace hlp::bench;
  struct BetaPair {
    double add, mult;
    const char* note;
  };
  const std::vector<BetaPair> betas = {
      {30, 1000, "paper values"},
      {60, 2000, ""},
      {120, 4000, ""},
      {240, 8000, "our default"},
      {480, 16000, ""},
  };
  const std::vector<std::string> subset = {"pr", "mcm"};
  AsciiTable t({"Bench", "beta add/mult", "Power (mW)", "Toggle (M/s)",
                "LUTs", "MuxLen", "muxDiff mean", "note"});
  // Grid through the runner: the beta pairs ride in the BinderSpec, so the
  // sweep is (benchmark x spec) jobs over the shared contexts.
  std::vector<flow::Job> jobs;
  std::vector<const char*> notes;
  for (const auto& name : subset)
    for (const auto& bp : betas) {
      flow::BinderSpec spec{"hlpower"};
      spec.alpha = 0.5;
      spec.beta_add = bp.add;
      spec.beta_mult = bp.mult;
      jobs.push_back(job(name, spec));
      notes.push_back(bp.note);
    }
  const auto results = runner().run(jobs);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& res = results[i];
    if (!res.ok) {
      std::cerr << "job " << res.job.benchmark << " failed: " << res.error
                << "\n";
      continue;
    }
    const Evaluated ev = to_evaluated(res.outcome);
    t.row()
        .add(res.job.benchmark)
        .add(fmt_fixed(res.job.binder.beta_add, 0) + "/" +
             fmt_fixed(res.job.binder.beta_mult, 0))
        .add(ev.flow.report.dynamic_power_mw, 1)
        .add(ev.flow.report.toggle_rate_mps, 2)
        .add(ev.flow.mapped.num_luts)
        .add(ev.mux.mux_length)
        .add(ev.mux.muxdiff_mean, 2)
        .add(notes[i]);
  }
  std::cout << "Ablation: beta sweep (Eq. 4 mux-term scaling, alpha=0.5)\n";
  t.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  print_beta_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
