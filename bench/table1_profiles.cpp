// Table 1: benchmark profiles (PIs, POs, adds, mults, edges).
//
// Prints our reconstructed benchmark suite next to the paper's reported
// numbers, then times benchmark generation with google-benchmark.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"

namespace {

void print_table1() {
  using namespace hlp;
  AsciiTable t({"Benchmark", "PIs", "POs", "Adds", "Mults", "Edges(ours)",
                "Edges(paper)", "Depth"});
  for (const auto& name : bench::names()) {
    const BenchmarkProfile& p = benchmark_profile(name);
    const Cdfg& g = bench::context(name).cdfg();
    t.row()
        .add(name)
        .add(g.num_inputs())
        .add(g.num_outputs())
        .add(g.num_ops_of_kind(OpKind::kAdd))
        .add(g.num_ops_of_kind(OpKind::kMult))
        .add(g.num_edges())
        .add(p.paper_edges)
        .add(g.depth());
  }
  std::cout << "Table 1: Benchmark Profiles (synthetic reconstruction; see "
               "DESIGN.md)\n";
  t.print(std::cout);
  std::cout << "\n";
}

void BM_GenerateBenchmark(benchmark::State& state) {
  const auto& name = hlp::bench::names()[state.range(0)];
  for (auto _ : state) {
    benchmark::DoNotOptimize(hlp::make_paper_benchmark(name));
  }
  state.SetLabel(name);
}
BENCHMARK(BM_GenerateBenchmark)->DenseRange(0, 6);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  // The ROADMAP's "exploit simulate_batch's multi-run lanes" acceptance
  // sweep: 64 stimulus seeds of one binding, coalesced vs independent.
  hlp::bench::print_seed_sweep(std::cout, {"wang", "pr"}, 64);
  // Per-width scaling of the coalesced path: 512 seeds fill one whole
  // word at EVERY backend (8 u64 words .. 1 avx512 word), so the table
  // measures width scaling rather than word utilisation; bit-identity is
  // checked against the u64 row.
  hlp::bench::print_simd_sweep(std::cout, {"wang", "pr"}, 512);
  // The settle-engine axis: the same 512-seed full-word sweep per backend
  // under HLP_SETTLE=event / level / auto. The engines are bit-identical;
  // the table is the measured evidence that the levelized wavefront wins
  // on wide full-word settles and that auto's calibration probe never
  // picks a losing engine.
  hlp::bench::print_settle_sweep(std::cout, {"wang", "pr"}, 512);
  // The process-level axis: the same coalesced sweep through HLP_WORKERS
  // (default 2) hlp_worker processes vs the same number of in-process
  // threads, bit-identity checked — the distributed CI leg's artifact.
  hlp::bench::print_worker_sweep(std::cout, {"wang", "pr"}, 64);
  // The dispatch axis: a deliberately skewed grid (anneal groups first,
  // lopass groups last) where a contiguous static split leaves slice 0
  // the straggler; work-stealing streaming spreads the anneal units
  // across every worker. Bit-identity across threads/static/stream is
  // checked in the same table.
  hlp::bench::print_dispatch_sweep(std::cout, {"wang", "pr"}, 32);
  // The persistence axis: the same sweep cold (populating a fresh
  // HLP_STORE directory) and then warm from a fresh runner — the
  // cold-vs-warm stage-timing artifact of the CI artifact-store leg.
  // Bit-identity and whole-span cache hits are checked in the table.
  hlp::bench::print_store_sweep(std::cout, {"wang", "pr"}, 64);
  // The exploration axis on top of the store: the canonical knob walk
  // (more vectors / binder retune / scheduler switch) cold then warm —
  // the warm walk must be all-hits / zero-recompute on every step and
  // both walks must reach the bit-identical Pareto frontier.
  hlp::bench::print_explore_sweep(std::cout, {"wang", "pr"}, 16);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
