// Table 4: mean and variance of muxDiff across all allocated resources for
// the final bindings of LOPASS, HLPower alpha=1 and HLPower alpha=0.5 —
// the multiplexer-balancing evidence.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace {

void print_table4() {
  using namespace hlp;
  using namespace hlp::bench;
  AsciiTable t({"Bench", "LOPASS mean/var", "a=1 mean/var", "a=0.5 mean/var",
                "# FUs"});
  double lm = 0, l1 = 0, lh = 0, lv = 0, v1 = 0, vh = 0;
  for (const auto& name : names()) {
    const Comparison& cmp = comparison(name);
    auto cell = [](const DatapathStats& st) {
      return fmt_fixed(st.muxdiff_mean, 2) + "/" +
             fmt_fixed(st.muxdiff_variance, 2);
    };
    t.row()
        .add(name)
        .add(cell(cmp.lopass.mux))
        .add(cell(cmp.hlp_one.mux))
        .add(cell(cmp.hlp_half.mux))
        .add(cmp.hlp_half.mux.num_fus);
    lm += cmp.lopass.mux.muxdiff_mean;
    l1 += cmp.hlp_one.mux.muxdiff_mean;
    lh += cmp.hlp_half.mux.muxdiff_mean;
    lv += cmp.lopass.mux.muxdiff_variance;
    v1 += cmp.hlp_one.mux.muxdiff_variance;
    vh += cmp.hlp_half.mux.muxdiff_variance;
  }
  const double n = static_cast<double>(names().size());
  t.row()
      .add("average")
      .add(fmt_fixed(lm / n, 2) + "/" + fmt_fixed(lv / n, 2))
      .add(fmt_fixed(l1 / n, 2) + "/" + fmt_fixed(v1 / n, 2))
      .add(fmt_fixed(lh / n, 2) + "/" + fmt_fixed(vh / n, 2))
      .add("");
  std::cout << "Table 4: mean/variance of muxDiff across allocated FUs\n";
  t.print(std::cout);
  std::cout << "(paper averages: LOPASS 3.9/13.8, a=1 3.2/8.3, a=0.5 "
               "2.6/6.2 — the a=0.5 column should balance best)\n\n";
}

void BM_DatapathStats(benchmark::State& state) {
  using namespace hlp;
  using namespace hlp::bench;
  flow::FlowContext& ctx = context("chem");
  const Comparison& cmp = comparison("chem");
  for (auto _ : state)
    benchmark::DoNotOptimize(
        compute_datapath_stats(ctx.cdfg(), ctx.regs(), cmp.hlp_half.fus));
}
BENCHMARK(BM_DatapathStats);

}  // namespace

int main(int argc, char** argv) {
  print_table4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
