// Ablation: precalculated vs dynamic SA estimation (Section 5.2.2).
//
// The paper: "this method provided us with the same results as running the
// algorithm with dynamic SA estimation, but with a much shorter run time."
// This bench verifies the exact-equality claim and measures the speedup,
// plus the text-file persistence round trip.
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/hlpower.hpp"
#include "power/activity.hpp"
#include "power/exact_activity.hpp"
#include "power/sa_mode.hpp"
#include "rtl/partial_datapath.hpp"

namespace {

void print_sacache_study() {
  using namespace hlp;
  using namespace hlp::bench;
  using Clock = std::chrono::steady_clock;

  // Equality: cached vs dynamic values agree exactly on a grid.
  SaCache& cache = sa_cache();
  int checked = 0, equal = 0;
  for (int kind = 0; kind < kNumOpKinds; ++kind)
    for (int a = 1; a <= 4; ++a)
      for (int b = 1; b <= 4; ++b) {
        const OpKind k = static_cast<OpKind>(kind);
        ++checked;
        if (cache.switching_activity(k, a, b) == cache.compute_uncached(k, a, b))
          ++equal;
      }
  std::cout << "Ablation: SA precalc vs dynamic (Section 5.2.2)\n";
  std::cout << "cached == dynamic on " << equal << "/" << checked
            << " (kind, muxA, muxB) combinations\n";

  // Speedup: bind `pr` with a warm cache vs a cold cache per edge weight.
  flow::FlowContext& ctx = context("pr");
  const auto t0 = Clock::now();
  bind_fus_hlpower(ctx.cdfg(), ctx.schedule(), ctx.regs(), ctx.rc(), cache);
  const double warm =
      std::chrono::duration<double>(Clock::now() - t0).count();
  SaCache cold(bench_width());
  const auto t1 = Clock::now();
  bind_fus_hlpower(ctx.cdfg(), ctx.schedule(), ctx.regs(), ctx.rc(), cold);
  const double cold_s =
      std::chrono::duration<double>(Clock::now() - t1).count();
  std::cout << "bind(pr): warm cache " << fmt_fixed(warm * 1e3, 1)
            << " ms, cold cache " << fmt_fixed(cold_s * 1e3, 1) << " ms ("
            << cold.misses() << " SA computations)\n";

  // Persistence round trip.
  std::ostringstream text;
  cache.save(text);
  SaCache loaded(bench_width());
  std::istringstream in(text.str());
  loaded.load(in);
  std::cout << "text persistence: saved " << cache.size()
            << " entries, reloaded " << loaded.size() << "\n\n";
}

// Monte-Carlo SA of the precalc table's partial datapaths: the scalar
// event simulator vs the bit-parallel batch engine, identical counts
// required, wall-clock side by side.
void print_batched_vs_scalar() {
  using namespace hlp;
  using namespace hlp::bench;
  using Clock = std::chrono::steady_clock;
  constexpr int kVectors = 512;
  AsciiTable t({"kind/muxA/muxB", "scalar (ms)", "batched (ms)", "speedup",
                "identical"});
  double total_scalar = 0.0, total_batched = 0.0;
  for (int kind = 0; kind < kNumOpKinds; ++kind)
    for (const auto& [a, b] : {std::pair{1, 1}, {2, 2}, {4, 4}}) {
      const OpKind k = static_cast<OpKind>(kind);
      const Netlist dp = make_partial_datapath(k, a, b, bench_width());
      const MapResult mapped = tech_map(dp);
      const auto t0 = Clock::now();
      const auto scalar =
          simulate_activity(mapped.lut_netlist, kVectors, 1, SimEngine::kScalar);
      const auto t1 = Clock::now();
      const auto batched = simulate_activity(mapped.lut_netlist, kVectors, 1,
                                             SimEngine::kBatched);
      const auto t2 = Clock::now();
      const double s = std::chrono::duration<double>(t1 - t0).count();
      const double bt = std::chrono::duration<double>(t2 - t1).count();
      total_scalar += s;
      total_batched += bt;
      const bool identical =
          scalar.stats.toggles == batched.stats.toggles &&
          scalar.stats.functional_transitions ==
              batched.stats.functional_transitions;
      t.row()
          .add(std::string(to_string(k)) + "/" + std::to_string(a) + "/" +
               std::to_string(b))
          .add(s * 1e3, 2)
          .add(bt * 1e3, 2)
          .add(s / bt, 1)
          .add(identical ? "yes" : "NO");
    }
  std::cout << "Simulated SA: scalar vs bit-parallel engine (" << kVectors
            << " vectors)\n";
  t.print(std::cout);
  std::cout << "Overall speedup: " << fmt_fixed(total_scalar / total_batched, 1)
            << "x\n\n";
}

// The three SA backends side by side on the precalc table's grid: the
// closed-form estimate, the seeded Monte-Carlo run, and the budgeted
// exact BDD engine. The exact column is the reference: the deltas show
// what each cheaper backend trades away, and the cones column shows how
// much of the "exact" number really was analytic (multiplier cones blow
// the default HLP_EXACT_BUDGET and fall back per cone by design).
void print_mode_comparison() {
  using namespace hlp;
  using namespace hlp::bench;
  SaCache est(bench_width(), MapParams{}, SaMode::kEstimated);
  SaCache sim(bench_width(), MapParams{}, SaMode::kSimulated);
  SaCache exact(bench_width(), MapParams{}, SaMode::kExact);
  AsciiTable t({"kind/muxA/muxB", "estimate", "sim", "exact", "est-exact",
                "sim-exact", "exact cones"});
  for (int kind = 0; kind < kNumOpKinds; ++kind)
    for (const auto& [a, b] : {std::pair{1, 1}, {2, 2}, {4, 4}}) {
      const OpKind k = static_cast<OpKind>(kind);
      const double e = est.switching_activity(k, a, b);
      const double s = sim.switching_activity(k, a, b);
      const double x = exact.switching_activity(k, a, b);
      // Re-run the exact engine directly for the per-cone attribution the
      // scalar cache value cannot carry.
      const Netlist dp = make_partial_datapath(k, a, b, bench_width());
      const ExactActivityResult r = exact_activity(tech_map(dp).lut_netlist);
      t.row()
          .add(std::string(to_string(k)) + "/" + std::to_string(a) + "/" +
               std::to_string(b))
          .add(e, 3)
          .add(s, 3)
          .add(x, 3)
          .add(e - x, 3)
          .add(s - x, 3)
          .add(std::to_string(r.num_exact) + "/" +
               std::to_string(r.num_exact + r.num_sampled) +
               (r.fell_back ? " (hybrid)" : ""));
    }
  std::cout << "SA backends: estimate vs sim vs exact (HLP_SA_MODE)\n";
  t.print(std::cout);
  std::cout << "exact cones column: nets answered analytically / total;"
               " (hybrid) rows had cones past HLP_EXACT_BUDGET="
            << exact_budget_from_env(kDefaultExactBudget)
            << " answered by the Monte-Carlo fallback\n\n";
}

void BM_SaLookupWarm(benchmark::State& state) {
  using namespace hlp;
  auto& cache = hlp::bench::sa_cache();
  cache.switching_activity(OpKind::kAdd, 3, 3);
  for (auto _ : state)
    benchmark::DoNotOptimize(cache.switching_activity(OpKind::kAdd, 3, 3));
}
BENCHMARK(BM_SaLookupWarm);

void BM_SaComputeCold(benchmark::State& state) {
  using namespace hlp;
  auto& cache = hlp::bench::sa_cache();
  for (auto _ : state)
    benchmark::DoNotOptimize(cache.compute_uncached(OpKind::kAdd, 3, 3));
}
BENCHMARK(BM_SaComputeCold)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_sacache_study();
  print_mode_comparison();
  print_batched_vs_scalar();
  // Seed coalescing rides the same word engine one level up: whole
  // Monte-Carlo sweeps of one binding, 64 stimulus seeds per word.
  hlp::bench::print_seed_sweep(std::cout, {"pr"}, 64);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
