// Figure 3: average toggle rate (millions of transitions per second) for
// LOPASS, HLPower alpha=1 and HLPower alpha=0.5 on every benchmark, plus
// the average decrease of the alpha=0.5 configuration — and the throughput
// of the bit-parallel batch simulation engine against the scalar oracle on
// the same stimulus.
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "rtl/datapath.hpp"
#include "sim/bit_sim.hpp"
#include "sim/vectors.hpp"

namespace {

void print_figure3() {
  using namespace hlp;
  using namespace hlp::bench;
  AsciiTable t({"Bench", "LOPASS (M/s)", "a=1 (M/s)", "a=0.5 (M/s)",
                "a=1 chg%", "a=0.5 chg%"});
  double d1 = 0, dh = 0;
  for (const auto& name : names()) {
    const Comparison& cmp = comparison(name);
    const double l = cmp.lopass.flow.report.toggle_rate_mps;
    const double a1 = cmp.hlp_one.flow.report.toggle_rate_mps;
    const double ah = cmp.hlp_half.flow.report.toggle_rate_mps;
    d1 += pct(l, a1);
    dh += pct(l, ah);
    t.row()
        .add(name)
        .add(l, 2)
        .add(a1, 2)
        .add(ah, 2)
        .add(pct(l, a1), 1)
        .add(pct(l, ah), 1);
  }
  const double n = static_cast<double>(names().size());
  std::cout << "Figure 3: Average Toggle Rate (unit-delay simulation, "
            << bench::bench_vectors() << " vectors)\n";
  t.print(std::cout);
  std::cout << "Average change vs LOPASS: a=1 " << fmt_fixed(d1 / n, 1)
            << "%, a=0.5 " << fmt_fixed(dh / n, 1)
            << "%  (paper: a=1 -8.4%, a=0.5 -21.9%)\n\n";
}

// Scalar vs bit-parallel batched simulation of the paper's toggle runs:
// identical stimulus, bit-identical counts, wall-clock side by side.
void print_batch_comparison() {
  using namespace hlp;
  using namespace hlp::bench;
  using Clock = std::chrono::steady_clock;
  AsciiTable t({"Bench", "scalar (ms)", "batched (ms)", "speedup",
                "identical"});
  double total_scalar = 0.0, total_batched = 0.0;
  for (const auto& name : names()) {
    flow::FlowContext& ctx = context(name);
    const Comparison& cmp = comparison(name);
    const Datapath dp = elaborate_datapath(
        ctx.cdfg(), ctx.schedule(), Binding{ctx.regs(), cmp.hlp_half.fus},
        DatapathParams{bench_width()});
    const MapResult mapped = tech_map(dp.netlist);
    // The pipeline's stimulus (RunSpec's default seed).
    const auto samples = random_samples(
        bench_vectors(), ctx.cdfg().num_inputs(), bench_width(),
        hlp::flow::RunSpec{}.seed);
    const auto frames = make_frames(dp, samples);

    const auto t0 = Clock::now();
    const CycleSimStats scalar = simulate_frames(mapped.lut_netlist, frames);
    const auto t1 = Clock::now();
    const CycleSimStats batched =
        simulate_frames_batched(mapped.lut_netlist, frames);
    const auto t2 = Clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    const double b = std::chrono::duration<double>(t2 - t1).count();
    total_scalar += s;
    total_batched += b;
    const bool identical =
        scalar.toggles == batched.toggles &&
        scalar.total_transitions == batched.total_transitions &&
        scalar.functional_transitions == batched.functional_transitions;
    t.row()
        .add(name)
        .add(s * 1e3, 2)
        .add(b * 1e3, 2)
        .add(s / b, 1)
        .add(identical ? "yes" : "NO");
  }
  std::cout << "Batch simulation: scalar vs bit-parallel (64 cycles/word, "
            << bench::bench_vectors() << " vectors)\n";
  t.print(std::cout);
  std::cout << "Overall speedup: " << fmt_fixed(total_scalar / total_batched, 1)
            << "x\n\n";
}

void BM_SimulatePr(benchmark::State& state) {
  using namespace hlp;
  using namespace hlp::bench;
  flow::FlowContext& ctx = context("pr");
  const Comparison& cmp = comparison("pr");
  const Datapath dp = elaborate_datapath(ctx.cdfg(), ctx.schedule(),
                                         Binding{ctx.regs(), cmp.hlp_half.fus},
                                         DatapathParams{bench_width()});
  const MapResult mapped = tech_map(dp.netlist);
  const auto samples = std::vector<std::vector<std::uint64_t>>(
      10, std::vector<std::uint64_t>(ctx.cdfg().num_inputs(), 0x5a));
  const auto frames = make_frames(dp, samples);
  for (auto _ : state)
    benchmark::DoNotOptimize(simulate_frames(mapped.lut_netlist, frames));
}
BENCHMARK(BM_SimulatePr)->Unit(benchmark::kMillisecond);

void BM_SimulateBatchedPr(benchmark::State& state) {
  using namespace hlp;
  using namespace hlp::bench;
  flow::FlowContext& ctx = context("pr");
  const Comparison& cmp = comparison("pr");
  const Datapath dp = elaborate_datapath(ctx.cdfg(), ctx.schedule(),
                                         Binding{ctx.regs(), cmp.hlp_half.fus},
                                         DatapathParams{bench_width()});
  const MapResult mapped = tech_map(dp.netlist);
  const auto samples = std::vector<std::vector<std::uint64_t>>(
      10, std::vector<std::uint64_t>(ctx.cdfg().num_inputs(), 0x5a));
  const auto frames = make_frames(dp, samples);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        simulate_frames_batched(mapped.lut_netlist, frames));
}
BENCHMARK(BM_SimulateBatchedPr)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_figure3();
  print_batch_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
