// Figure 3: average toggle rate (millions of transitions per second) for
// LOPASS, HLPower alpha=1 and HLPower alpha=0.5 on every benchmark, plus
// the average decrease of the alpha=0.5 configuration.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace {

void print_figure3() {
  using namespace hlp;
  using namespace hlp::bench;
  AsciiTable t({"Bench", "LOPASS (M/s)", "a=1 (M/s)", "a=0.5 (M/s)",
                "a=1 chg%", "a=0.5 chg%"});
  double d1 = 0, dh = 0;
  for (const auto& name : names()) {
    const Comparison& cmp = comparison(name);
    const double l = cmp.lopass.flow.report.toggle_rate_mps;
    const double a1 = cmp.hlp_one.flow.report.toggle_rate_mps;
    const double ah = cmp.hlp_half.flow.report.toggle_rate_mps;
    d1 += pct(l, a1);
    dh += pct(l, ah);
    t.row()
        .add(name)
        .add(l, 2)
        .add(a1, 2)
        .add(ah, 2)
        .add(pct(l, a1), 1)
        .add(pct(l, ah), 1);
  }
  const double n = static_cast<double>(names().size());
  std::cout << "Figure 3: Average Toggle Rate (unit-delay simulation, "
            << bench::bench_vectors() << " vectors)\n";
  t.print(std::cout);
  std::cout << "Average change vs LOPASS: a=1 " << fmt_fixed(d1 / n, 1)
            << "%, a=0.5 " << fmt_fixed(dh / n, 1)
            << "%  (paper: a=1 -8.4%, a=0.5 -21.9%)\n\n";
}

void BM_SimulatePr(benchmark::State& state) {
  using namespace hlp;
  using namespace hlp::bench;
  flow::FlowContext& ctx = context("pr");
  const Comparison& cmp = comparison("pr");
  const Datapath dp = elaborate_datapath(ctx.cdfg(), ctx.schedule(),
                                         Binding{ctx.regs(), cmp.hlp_half.fus},
                                         DatapathParams{bench_width()});
  const MapResult mapped = tech_map(dp.netlist);
  const auto samples = std::vector<std::vector<std::uint64_t>>(
      10, std::vector<std::uint64_t>(ctx.cdfg().num_inputs(), 0x5a));
  const auto frames = make_frames(dp, samples);
  for (auto _ : state)
    benchmark::DoNotOptimize(simulate_frames(mapped.lut_netlist, frames));
}
BENCHMARK(BM_SimulatePr)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_figure3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
