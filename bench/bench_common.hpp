// Shared experiment harness for the paper-reproduction benches.
//
// Every table/figure binary drives the same controlled pipeline the paper
// describes in Section 6.1: one scheduled CDFG and one register binding per
// benchmark (identical for every binder), then LOPASS and HLPower bindings
// pushed through the identical evaluation flow (elaborate -> map -> time ->
// simulate -> power).
#pragma once

#include <string>
#include <vector>

#include "binding/datapath_stats.hpp"
#include "cdfg/benchmarks.hpp"
#include "core/hlpower.hpp"
#include "lopass/lopass.hpp"
#include "power/sa_cache.hpp"
#include "rtl/flow.hpp"
#include "sched/list_scheduler.hpp"

namespace hlp::bench {

/// The seven paper benchmarks, in Table 1 order.
const std::vector<std::string>& names();

/// Table 2 resource constraints / paper-reported columns.
struct Table2Row {
  int adders;
  int multipliers;
  int paper_cycles;
  int paper_registers;
};
Table2Row table2(const std::string& name);

/// Shared per-benchmark setup (schedule + register binding), memoised.
struct Setup {
  Cdfg g;
  Schedule s;
  RegisterBinding regs;
  ResourceConstraint rc;
};
const Setup& setup(const std::string& name);

/// One binder's full evaluation.
struct Evaluated {
  FuBinding fus;
  DatapathStats mux;
  FlowResult flow;
  double bind_seconds = 0.0;
};

/// All three configurations of the paper's comparison, memoised per
/// (benchmark, vectors). `alpha1` is HLPower with alpha=1 (SA term only).
struct Comparison {
  Evaluated lopass;
  Evaluated hlp_half;  // alpha = 0.5 (the paper's headline configuration)
  Evaluated hlp_one;   // alpha = 1.0
};
const Comparison& comparison(const std::string& name);

/// Evaluation width and vector count shared by every bench (HLP_VECTORS
/// overrides the vector count; the paper used 1000).
int bench_width();
int bench_vectors();

/// The process-wide SA cache (width = bench_width()).
SaCache& sa_cache();

/// Run one binding through the evaluation flow.
Evaluated evaluate(const Setup& su, const FuBinding& fus, double bind_seconds);

/// Percent change helper: 100 * (b - a) / a.
double pct(double a, double b);

}  // namespace hlp::bench
