// Shared experiment harness for the paper-reproduction benches, built on
// the src/flow subsystem.
//
// Every table/figure binary drives the same controlled pipeline the paper
// describes in Section 6.1, now expressed as flow::Pipeline stages over a
// per-benchmark flow::FlowContext (one scheduled CDFG and one register
// binding per benchmark, identical for every binder). The three binder
// configurations of the paper's comparison are fanned through the shared
// flow::ExperimentRunner (HLP_JOBS threads), all feeding one process-wide
// SA cache.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "binding/datapath_stats.hpp"
#include "cdfg/benchmarks.hpp"
#include "flow/experiment.hpp"
#include "flow/flow_context.hpp"
#include "flow/pipeline.hpp"
#include "power/sa_cache.hpp"
#include "rtl/flow.hpp"

namespace hlp::bench {

/// The seven paper benchmarks, in Table 1 order.
const std::vector<std::string>& names();

/// Table 2 resource constraints / paper-reported columns.
struct Table2Row {
  int adders;
  int multipliers;
  int paper_cycles;
  int paper_registers;
};
Table2Row table2(const std::string& name);

/// Shared per-benchmark context (CDFG + memoised schedule and register
/// binding under the Table 2 constraint), owned by the runner.
flow::FlowContext& context(const std::string& name);

/// One binder's full evaluation.
struct Evaluated {
  FuBinding fus;
  DatapathStats mux;
  FlowResult flow;
  double bind_seconds = 0.0;
  /// Per-stage wall clock of the pipeline run.
  std::vector<flow::StageTiming> timings;
};

/// All three configurations of the paper's comparison, memoised per
/// benchmark. `hlp_one` is HLPower with alpha=1 (SA term only).
struct Comparison {
  Evaluated lopass;
  Evaluated hlp_half;  // alpha = 0.5 (the paper's headline configuration)
  Evaluated hlp_one;   // alpha = 1.0
};
const Comparison& comparison(const std::string& name);

/// Evaluation width and vector count shared by every bench (HLP_VECTORS
/// overrides the vector count; the paper used 1000).
int bench_width();
int bench_vectors();

/// Worker threads for the experiment grids (HLP_JOBS override, default 2).
int bench_jobs();

/// The process-wide SA cache (width = bench_width()), shared with the
/// runner's contexts.
SaCache& sa_cache();

/// The process-wide runner every bench fans its jobs through.
flow::ExperimentRunner& runner();

/// The bench-default job for `name` (Table 2 rc, bench width/vectors).
flow::Job job(const std::string& name, const flow::BinderSpec& spec);

/// Run one binder configuration through the standard pipeline on the
/// shared context.
Evaluated evaluate(const std::string& name, const flow::BinderSpec& spec);

/// Convert a finished pipeline outcome into the bench view.
Evaluated to_evaluated(const flow::PipelineOutcome& out);

/// Percent change helper: 100 * (b - a) / a.
double pct(double a, double b);

/// One coalesced-vs-independent comparison of a Monte-Carlo seed sweep:
/// `num_seeds` stimulus seeds of one (benchmark, binder) point, run once
/// through a coalescing runner (seeds ride the word-parallel
/// simulate_batch lanes at the active HLP_SIMD width) and once with
/// coalescing disabled (one full pipeline per seed). Both runners share
/// the process-wide SA cache; `identical` confirms the two paths agreed
/// bit for bit on every seed.
struct SeedSweepReport {
  std::string benchmark;
  int num_seeds = 0;
  double coalesced_s = 0.0;
  double independent_s = 0.0;
  bool identical = false;
  double speedup() const {
    return coalesced_s > 0.0 ? independent_s / coalesced_s : 0.0;
  }
};
SeedSweepReport seed_sweep(const std::string& name,
                           const flow::BinderSpec& spec, int num_seeds);

/// Run seed_sweep over `benchmarks` and print the comparison table (the
/// README's "Seed-parallel experiment batching" numbers). The header
/// names the active word width and dispatch choice (HLP_SIMD resolution),
/// so BENCH artifacts stay interpretable across machines.
void print_seed_sweep(std::ostream& os,
                      const std::vector<std::string>& benchmarks,
                      int num_seeds);

/// One row of the per-width comparison: a coalesced `num_seeds`-seed sweep
/// of one benchmark pinned to one SIMD backend. `identical` confirms the
/// backend agreed bit for bit with the u64 reference sweep.
struct SimdSweepRow {
  std::string benchmark;
  SimdMode mode = SimdMode::kU64;
  int lanes = 64;
  double seconds = 0.0;
  bool identical = false;
};

/// Run a coalesced seed sweep per supported SIMD backend (u64, x2, x4, x8
/// and — CPU permitting — avx2/avx512) and print the per-width table with
/// speedups relative to the u64 word, plus the backend HLP_SIMD=auto
/// resolves to. This is the measured 64 -> 512 lane scaling evidence; the
/// backends are bit-identical, so only wall-clock may differ.
void print_simd_sweep(std::ostream& os,
                      const std::vector<std::string>& benchmarks,
                      int num_seeds);

/// One event-vs-level comparison cell: a coalesced `num_seeds`-seed sweep
/// of one benchmark pinned to one SIMD backend and one settle engine.
struct SettleSweepRow {
  std::string benchmark;
  SimdMode mode = SimdMode::kU64;
  int lanes = 64;
  double event_s = 0.0;
  double level_s = 0.0;
  double auto_s = 0.0;
  bool identical = false;  // level and auto match event bit for bit
  double level_speedup() const {
    return level_s > 0.0 ? event_s / level_s : 0.0;
  }
};

/// Run a coalesced seed sweep per supported SIMD backend under each
/// settle engine (HLP_SETTLE=event / level / auto) and print the
/// comparison table with level's speedup over event per width. The
/// engines are bit-identical by construction, so `identical` must read
/// "yes" everywhere; only wall-clock may differ — this is the measured
/// evidence that the levelized wavefront wins on wide full-word sweeps
/// and that auto's calibration never picks a losing engine.
void print_settle_sweep(std::ostream& os,
                        const std::vector<std::string>& benchmarks,
                        int num_seeds);

/// One workers-vs-threads comparison of a Monte-Carlo seed sweep: the
/// same `num_seeds`-seed (benchmark, binder) grid run once through the
/// in-process ExperimentRunner with `parallelism` threads and once
/// through a DistributedRunner with `parallelism` single-threaded worker
/// processes (fork/exec of hlp_worker, SA shards merged back). Both
/// runners start cold and private, so the measurement isolates the
/// process-vs-thread axis; `identical` confirms the two paths agreed bit
/// for bit on every seed (flow::same_outcome).
struct WorkerSweepReport {
  std::string benchmark;
  int num_seeds = 0;
  int parallelism = 0;
  double threads_s = 0.0;
  double workers_s = 0.0;
  bool identical = false;
  double ratio() const {
    return workers_s > 0.0 ? threads_s / workers_s : 0.0;
  }
};
WorkerSweepReport worker_sweep(const std::string& name,
                               const flow::BinderSpec& spec, int num_seeds,
                               int parallelism);

/// Run worker_sweep over `benchmarks` and print the comparison table (the
/// distributed CI leg's artifact). `parallelism` defaults to HLP_WORKERS
/// or 2. Degrades to a notice (no table) when the hlp_worker binary is
/// not next to the current executable.
void print_worker_sweep(std::ostream& os,
                        const std::vector<std::string>& benchmarks,
                        int num_seeds, int parallelism = 0);

/// One static-vs-stream dispatch comparison on a deliberately skewed
/// grid: every expensive anneal seed-group ordered first and every cheap
/// lopass group last, so a contiguous static split hands slice 0 all the
/// anneal work while the other workers race through lopass and idle
/// behind the straggler. The same grid runs through `parallelism`
/// in-process threads (the reference bits), a static-dispatch
/// DistributedRunner and a stream-dispatch one; `identical` confirms all
/// three agreed bit for bit (flow::same_outcome).
struct DispatchSweepReport {
  int num_jobs = 0;
  int expensive_jobs = 0;  // the anneal prefix a static slice 0 absorbs
  int parallelism = 0;
  double threads_s = 0.0;
  double static_s = 0.0;
  double stream_s = 0.0;
  bool identical = false;
  double stream_speedup() const {
    return stream_s > 0.0 ? static_s / stream_s : 0.0;
  }
};
DispatchSweepReport dispatch_sweep(const std::vector<std::string>& benchmarks,
                                   int num_seeds, int parallelism);

/// Run dispatch_sweep and print the three-way wall-clock table (the
/// work-stealing evidence in the distributed CI artifact and the README's
/// skewed-grid numbers). `parallelism` defaults to HLP_WORKERS or 2.
/// Degrades to a notice (no table) when hlp_worker is not next to the
/// current executable.
void print_dispatch_sweep(std::ostream& os,
                          const std::vector<std::string>& benchmarks,
                          int num_seeds, int parallelism = 0);

/// One cold-vs-warm comparison of the persistent artifact store
/// (src/store/artifact_store.hpp): the same `num_seeds`-seed (benchmark,
/// binder) grid run by a cold runner that populates a fresh store, then by
/// a second fresh runner (empty in-memory caches — a process restart in
/// miniature) warm-starting from it. `identical` confirms the warm run
/// agreed bit for bit (flow::same_outcome); `warm_cached` that every warm
/// job actually skipped the bind-fus..time span; the span_*_s fields
/// isolate the stage seconds the store saves from the grid's wall clock.
struct StoreSweepReport {
  std::string benchmark;
  int num_seeds = 0;
  double cold_s = 0.0;
  double warm_s = 0.0;
  /// Summed per-stage seconds of the cacheable span (bind-fus, refine,
  /// elaborate, map, time) across the grid's pipeline invocations.
  double span_cold_s = 0.0;
  double span_warm_s = 0.0;
  bool identical = false;
  bool warm_cached = false;
  double speedup() const { return warm_s > 0.0 ? cold_s / warm_s : 0.0; }
};
StoreSweepReport store_sweep(const std::string& name,
                             const flow::BinderSpec& spec, int num_seeds);

/// Run store_sweep over `benchmarks` and print the cold-vs-warm table
/// (the CI artifact-store leg's stage-timing artifact). Both runners are
/// single-threaded with private SA caches, so the store is the only state
/// they share.
void print_store_sweep(std::ostream& os,
                       const std::vector<std::string>& benchmarks,
                       int num_seeds);

/// Run the canonical incremental knob walk (base grid, then more vectors
/// / binder retune / scheduler switch — src/explore/) twice against one
/// store directory and print the per-step reuse table: a COLD walk where
/// only the vectors step can reuse (its ArtifactKeys are unchanged, so
/// every span is a store hit), then the identical walk WARM from the
/// persisted store, where every step of the walk must be all-hits /
/// zero-recompute. Wall clock, store hit/recompute counters and the
/// frontier size per step; the frontiers of the two walks must be
/// bit-identical (the explorer's order-independence guarantee) — the
/// artifact-store CI leg uploads this table.
void print_explore_sweep(std::ostream& os,
                         const std::vector<std::string>& benchmarks,
                         int num_seeds);

}  // namespace hlp::bench
