// Table 2: resource constraints, schedule length, register count and
// HLPower runtime per benchmark (identical schedules and register bindings
// feed both binders, as in the paper).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "binding/lifetimes.hpp"
#include "common/table.hpp"
#include "core/hlpower.hpp"

namespace {

void print_table2() {
  using namespace hlp;
  using namespace hlp::bench;
  AsciiTable t({"Benchmark", "Add", "Mult", "Cycles", "(paper)", "Regs",
                "(paper)", "HLPower bind (s)"});
  for (const auto& name : names()) {
    const Table2Row row = table2(name);
    flow::FlowContext& ctx = context(name);
    const Comparison& cmp = comparison(name);
    t.row()
        .add(name)
        .add(row.adders)
        .add(row.multipliers)
        .add(ctx.schedule().num_steps)
        .add(row.paper_cycles)
        .add(ctx.regs().num_registers)
        .add(row.paper_registers)
        .add(cmp.hlp_half.bind_seconds, 3);
  }
  std::cout << "Table 2: Resource Constraints, Schedule Length, Registers\n";
  t.print(std::cout);
  std::cout << "\n";
}

void BM_HlpowerBind(benchmark::State& state) {
  using namespace hlp;
  using namespace hlp::bench;
  const auto& name = names()[state.range(0)];
  flow::FlowContext& ctx = context(name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bind_fus_hlpower(ctx.cdfg(), ctx.schedule(),
                                              ctx.regs(), ctx.rc(),
                                              sa_cache()));
  }
  state.SetLabel(name);
}
BENCHMARK(BM_HlpowerBind)->DenseRange(0, 6)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
