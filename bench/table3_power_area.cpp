// Table 3: dynamic power, clock period, LUTs and multiplexer results for
// the LOPASS and HLPower (alpha = 0.5) bindings, with percentage changes
// and suite averages — the paper's headline table.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace {

void print_table3() {
  using namespace hlp;
  using namespace hlp::bench;
  AsciiTable t({"Bench", "Pow L/H (mW)", "Clk L/H (ns)", "LUTs L/H",
                "LrgMux L/H", "MuxLen L/H", "Pow%", "Clk%", "LUT%", "Mux",
                "Len%"});
  double p_sum = 0, c_sum = 0, l_sum = 0, m_sum = 0, len_sum = 0;
  for (const auto& name : names()) {
    const Comparison& cmp = comparison(name);
    const auto& L = cmp.lopass;
    const auto& H = cmp.hlp_half;
    const double dp = pct(L.flow.report.dynamic_power_mw,
                          H.flow.report.dynamic_power_mw);
    const double dc = pct(L.flow.clock_period_ns, H.flow.clock_period_ns);
    const double dl = pct(L.flow.mapped.num_luts, H.flow.mapped.num_luts);
    const double dm = H.mux.largest_mux - L.mux.largest_mux;
    const double dlen = pct(L.mux.mux_length, H.mux.mux_length);
    p_sum += dp;
    c_sum += dc;
    l_sum += dl;
    m_sum += dm;
    len_sum += dlen;
    t.row()
        .add(name)
        .add(fmt_fixed(L.flow.report.dynamic_power_mw, 1) + "/" +
             fmt_fixed(H.flow.report.dynamic_power_mw, 1))
        .add(fmt_fixed(L.flow.clock_period_ns, 1) + "/" +
             fmt_fixed(H.flow.clock_period_ns, 1))
        .add(std::to_string(L.flow.mapped.num_luts) + "/" +
             std::to_string(H.flow.mapped.num_luts))
        .add(std::to_string(L.mux.largest_mux) + "/" +
             std::to_string(H.mux.largest_mux))
        .add(std::to_string(L.mux.mux_length) + "/" +
             std::to_string(H.mux.mux_length))
        .add(dp, 2)
        .add(dc, 2)
        .add(dl, 2)
        .add(dm, 1)
        .add(dlen, 1);
  }
  const double n = static_cast<double>(names().size());
  t.row()
      .add("Average")
      .add("")
      .add("")
      .add("")
      .add("")
      .add("")
      .add(p_sum / n, 2)
      .add(c_sum / n, 2)
      .add(l_sum / n, 2)
      .add(m_sum / n, 1)
      .add(len_sum / n, 1);
  std::cout << "Table 3: Power, Clock Period, LUTs, Multiplexers — "
               "LOPASS (L) vs HLPower alpha=0.5 (H), "
            << bench::bench_vectors() << " vectors\n";
  t.print(std::cout);
  std::cout << "(paper averages: power -19.28%, clock +0.58%, LUTs -9.11%, "
               "largest mux -2.6, mux length -7.2%)\n\n";
}

void BM_FullFlowPr(benchmark::State& state) {
  using namespace hlp;
  using namespace hlp::bench;
  flow::FlowContext& ctx = context("pr");
  const Comparison& cmp = comparison("pr");
  // Measure the evaluation flow only (elaborate -> ... -> power), as the
  // seed did: the bind-fus stage is overridden to inject the precomputed
  // binding instead of re-running HLPower every iteration.
  flow::Pipeline pipeline = flow::Pipeline::standard();
  const FuBinding fus = cmp.hlp_half.fus;
  pipeline.replace("bind-fus",
                   [fus](flow::PipelineState& st) { st.out.fus = fus; });
  flow::RunSpec spec;
  spec.num_vectors = 25;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.run(ctx, spec));
  }
}
BENCHMARK(BM_FullFlowPr)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
