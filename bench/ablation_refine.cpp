// Ablation: post-binding port refinement (library extension; the paper's
// future-work direction of tighter multiplexer control). Measures how many
// orientation flips the greedy descent finds on top of each binder and
// what they buy in Eq. 4 cost and measured toggles.
#include <benchmark/benchmark.h>

#include <iostream>
#include <tuple>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/port_refine.hpp"

namespace {

void print_refine_study() {
  using namespace hlp;
  using namespace hlp::bench;
  AsciiTable t({"Bench", "binder", "flips", "Eq4 cost before/after",
                "toggle before (M/s)", "toggle after", "chg%"});
  for (const auto& name : {std::string("pr"), std::string("wang"),
                           std::string("mcm")}) {
    const Comparison& cmp = comparison(name);
    for (const auto& [tag, binder, ev] :
         {std::tuple<const char*, const char*, const Evaluated*>{
              "LOPASS", "lopass", &cmp.lopass},
          {"HLPower", "hlpower", &cmp.hlp_half}}) {
      // Same binder with the pipeline's refine stage switched on; the
      // outcome carries the PortRefineResult of that stage.
      flow::RunSpec spec;
      spec.binder.name = binder;
      spec.binder.refine = true;
      spec.num_vectors = bench_vectors();
      const flow::PipelineOutcome out =
          flow::Pipeline::standard().run(context(name), spec);
      const PortRefineResult& pr = out.refine;
      const double before = ev->flow.report.toggle_rate_mps;
      const double after = out.flow.report.toggle_rate_mps;
      t.row()
          .add(name)
          .add(tag)
          .add(pr.flips_applied)
          .add(fmt_fixed(pr.cost_before, 0) + "/" + fmt_fixed(pr.cost_after, 0))
          .add(before, 1)
          .add(after, 1)
          .add(pct(before, after), 2);
    }
  }
  std::cout << "Ablation: post-binding port refinement (extension)\n";
  t.print(std::cout);
  std::cout << "\n";
}

void BM_RefinePorts(benchmark::State& state) {
  using namespace hlp;
  using namespace hlp::bench;
  flow::FlowContext& ctx = context("mcm");
  const Comparison& cmp = comparison("mcm");
  for (auto _ : state)
    benchmark::DoNotOptimize(
        refine_ports(ctx.cdfg(), ctx.regs(), cmp.hlp_half.fus, sa_cache()));
}
BENCHMARK(BM_RefinePorts)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_refine_study();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
