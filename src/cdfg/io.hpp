// Text and DOT serialisation of CDFGs.
//
// Text format (one directive per line, `#` comments):
//   cdfg <name>
//   input <name>
//   op <name> <add|mult> <value> <value>
//   output <name> <value>
// Values are referenced by name; ops must be defined before use, so the file
// order is a topological order.
#pragma once

#include <iosfwd>
#include <string>

#include "cdfg/cdfg.hpp"

namespace hlp {

/// Serialise to the text format.
void write_cdfg(const Cdfg& g, std::ostream& os);
std::string cdfg_to_string(const Cdfg& g);

/// Parse the text format; throws hlp::Error on malformed input.
Cdfg read_cdfg(std::istream& is);
Cdfg cdfg_from_string(const std::string& text);

/// Graphviz DOT export (adds shaped nodes per op kind).
std::string cdfg_to_dot(const Cdfg& g);

}  // namespace hlp
