// Synthetic reconstructions of the paper's benchmark CDFGs (Table 1) plus a
// general random-DFG generator for property tests.
//
// The original MediaBench/DSP CDFGs (chem, dir, honda, mcm, pr, steam, wang)
// are not distributed with the paper. The generators here produce
// deterministic layered multiply-accumulate networks that match Table 1
// exactly in primary inputs, primary outputs, add count and mult count;
// the paper's "edge" counts include CDFG node types it never describes, so
// edge counts match the maximum a pure 2-input-op DFG allows
// (2*ops + POs). See DESIGN.md section 2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cdfg/cdfg.hpp"

namespace hlp {

/// Shape parameters for a synthetic dataflow benchmark.
struct BenchmarkProfile {
  std::string name;
  int num_inputs = 0;
  int num_outputs = 0;
  int num_adds = 0;
  int num_mults = 0;
  /// Edge count reported by the paper's Table 1 (informational).
  int paper_edges = 0;
  /// Maximum operation depth of the generated DFG. Chosen per benchmark so
  /// that list scheduling under the Table 2 resource constraints lands near
  /// the paper's cycle counts (0 = unconstrained).
  int target_depth = 0;
  /// Depth pressure in [0,1]: probability that operand selection prefers
  /// deeper eligible values, pushing the DFG's depth toward target_depth.
  double depth_bias = 0.6;
};

/// The seven Table 1 profiles, in paper order (chem, dir, honda, mcm, pr,
/// steam, wang).
const std::vector<BenchmarkProfile>& paper_benchmarks();

/// Look up a paper profile by name; throws hlp::Error if unknown.
const BenchmarkProfile& benchmark_profile(const std::string& name);

/// Generate a benchmark CDFG from a profile. Deterministic in (profile,
/// seed): same arguments, same graph.
Cdfg make_benchmark(const BenchmarkProfile& profile, std::uint64_t seed = 42);

/// Convenience: generate a paper benchmark by name.
Cdfg make_paper_benchmark(const std::string& name, std::uint64_t seed = 42);

/// Random DFG for property tests: `num_ops` operations with a random
/// add/mult split, valid and dead-code free.
Cdfg make_random_dfg(int num_inputs, int num_outputs, int num_ops,
                     std::uint64_t seed);

}  // namespace hlp
