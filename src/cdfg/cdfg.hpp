// Control/data-flow graph (CDFG) intermediate representation.
//
// The binding problem's input (Section 3 of the paper) is a *scheduled* CDFG
// over a library of single-cycle resources. Matching the paper's benchmarks,
// every operation is a two-input addition/subtraction or multiplication and
// produces exactly one value. Values are produced either by a primary input
// or by an operation; primary outputs name the values observable outside.
//
// The graph is acyclic by construction: an operation may only reference
// values that already exist, so creation order is a topological order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hlp {

/// Operation type. The paper's benchmarks contain only add/sub (bound to
/// adder FUs) and multiply (bound to multiplier FUs).
enum class OpKind : std::uint8_t { kAdd, kMult };

const char* to_string(OpKind k);

/// Number of distinct OpKind values (for per-type arrays).
inline constexpr int kNumOpKinds = 2;
inline int op_kind_index(OpKind k) { return static_cast<int>(k); }

/// Reference to a value: either the output of a primary input or of an
/// operation.
struct ValueRef {
  enum class Kind : std::uint8_t { kInput, kOp };
  Kind kind = Kind::kInput;
  int index = -1;

  static ValueRef input(int i) { return {Kind::kInput, i}; }
  static ValueRef op(int i) { return {Kind::kOp, i}; }
  bool is_input() const { return kind == Kind::kInput; }
  bool is_op() const { return kind == Kind::kOp; }
  friend bool operator==(const ValueRef&, const ValueRef&) = default;
};

/// Two-input, single-output operation.
struct Operation {
  std::string name;
  OpKind kind = OpKind::kAdd;
  ValueRef lhs;
  ValueRef rhs;
};

/// Primary output: a named reference to a value.
struct Output {
  std::string name;
  ValueRef value;
};

/// Data-flow graph. See file comment for invariants.
class Cdfg {
 public:
  explicit Cdfg(std::string name = "cdfg") : name_(std::move(name)) {}

  /// Add a primary input; returns its index.
  int add_input(std::string name);

  /// Add an operation over existing values; returns its index.
  int add_op(std::string name, OpKind kind, ValueRef lhs, ValueRef rhs);

  /// Mark a value as a primary output.
  int add_output(std::string name, ValueRef value);

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  int num_inputs() const { return static_cast<int>(inputs_.size()); }
  int num_ops() const { return static_cast<int>(ops_.size()); }
  int num_outputs() const { return static_cast<int>(outputs_.size()); }

  const std::string& input_name(int i) const;
  const Operation& op(int i) const;
  const Output& output(int i) const;
  const std::vector<Operation>& ops() const { return ops_; }
  const std::vector<Output>& outputs() const { return outputs_; }

  /// Ops of a given kind.
  int num_ops_of_kind(OpKind k) const;

  /// Dataflow edges: two per operation plus one per primary output.
  int num_edges() const { return 2 * num_ops() + num_outputs(); }

  /// Consumers of each value: op indices that read it (an op reading the
  /// same value twice appears twice).
  std::vector<std::vector<int>> op_consumers() const;

  /// Values with no op consumer and no output reference (dead code).
  std::vector<ValueRef> dead_values() const;

  /// Longest path length in ops (a single op has depth 1; inputs depth 0).
  int depth() const;
  /// Depth of each operation (1-based; operands of depth d feed depth d+1).
  std::vector<int> op_depths() const;

  /// Throws hlp::Error if any structural invariant is broken (dangling
  /// refs, duplicate names, dead values).
  void validate() const;

  /// Human-readable name for any value.
  std::string value_name(ValueRef v) const;

 private:
  void check_ref(ValueRef v) const;

  std::string name_;
  std::vector<std::string> inputs_;
  std::vector<Operation> ops_;
  std::vector<Output> outputs_;
};

}  // namespace hlp
