#include "cdfg/benchmarks.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hlp {
namespace {

// Layered DFG construction with exact op/PI/PO counts and a hard depth
// bound.
//
// Operations are assigned to levels 1..D (D = target depth). Level sizes
// taper toward the end (late levels are thin) so the final levels do not
// strand more sink values than there are primary outputs. A protected
// "spine" — the first op of each level consumes the previous level's first
// op — realises depth exactly D. All other operands are drawn from values
// of depth <= level-1, which hard-bounds every op's depth at its level.
//
// Sink control: the generator tracks the set of values not yet consumed;
// each op consumes 0, 1 or 2 of them so that exactly `num_outputs` sinks
// remain at the end (these become the POs). Depth-eligibility can starve
// the controller in rare seed/profile corners; make_benchmark retries with
// derived seeds, keeping generation deterministic.
class Generator {
 public:
  Generator(const BenchmarkProfile& p, std::uint64_t seed)
      : profile_(p), rng_(seed ^ 0x9e37u), g_(p.name) {}

  // Returns false if the sink controller could not land exactly on the
  // requested output count under the depth constraints.
  bool run(Cdfg* out) {
    HLP_REQUIRE(profile_.num_inputs >= 2, "need at least two inputs");
    HLP_REQUIRE(profile_.num_outputs >= 1, "need at least one output");
    const int total_ops = profile_.num_adds + profile_.num_mults;
    HLP_REQUIRE(total_ops >= 1, "need at least one op");
    HLP_REQUIRE(profile_.num_outputs <= profile_.num_inputs + total_ops,
                "more outputs than producible values");

    for (int i = 0; i < profile_.num_inputs; ++i) {
      const int idx = g_.add_input("in" + std::to_string(i));
      unconsumed_.push_back(ValueRef::input(idx));
      all_values_.push_back(ValueRef::input(idx));
      depth_.push_back(0);
    }

    // Level sizes: one op per level as the spine; the rest distributed
    // front-to-back subject to the tail-capacity rule
    //   size[l] <= num_outputs + 2 * sum(size[l+1..D])
    // (a level's outputs are only consumable by later levels or POs).
    auto distribute = [&](int d, std::vector<int>* out_sizes) {
      std::vector<int> sz(d + 1, 0);
      for (int l = 1; l <= d; ++l) sz[l] = 1;
      int extra = total_ops - d;
      std::vector<long long> suffix(d + 2, 0);
      for (int l = d; l >= 1; --l) suffix[l] = suffix[l + 1] + sz[l];
      while (extra > 0) {
        bool progress = false;
        for (int l = 1; l <= d && extra > 0; ++l) {
          const long long cap = profile_.num_outputs + 2 * suffix[l + 1];
          if (sz[l] + 1 <= cap) {
            ++sz[l];
            --extra;
            progress = true;
            for (int j = l; j >= 1; --j) ++suffix[j];
          }
        }
        if (!progress) return false;
      }
      *out_sizes = std::move(sz);
      return true;
    };

    // Feasibility of the sink controller on a size vector: level l can only
    // consume values produced below it (PIs + earlier levels), two operand
    // slots per op; cumulatively the achievable consumption must reach
    // PIs + ops - POs (every non-output value is consumed exactly once at
    // least -- dead code is forbidden).
    auto consumption_feasible = [&](const std::vector<int>& sz, int d) {
      const long long need =
          profile_.num_inputs + total_ops - profile_.num_outputs;
      long long reach = 0, below = profile_.num_inputs;
      for (int l = 1; l <= d; ++l) {
        reach = std::min(reach + 2LL * sz[l], below);
        below += sz[l];
      }
      // A little slack absorbs controller randomness (spine neutrality,
      // eligibility misses); exact-capacity plans are fragile.
      return reach >= need + (reach > need ? 0 : 0) && reach >= need;
    };

    // Requested depth, raised until both the distribution and the sink
    // controller are feasible.
    int depth_target =
        profile_.target_depth > 0 ? std::min(profile_.target_depth, total_ops)
                                  : total_ops;
    std::vector<int> level_size;
    for (;; ++depth_target) {
      if (distribute(depth_target, &level_size) &&
          consumption_feasible(level_size, depth_target))
        break;
      HLP_CHECK(depth_target < total_ops + 1,
                "no feasible depth for profile '" << profile_.name << "'");
    }


    // Interleaved op-kind sequence, deterministic shuffle.
    std::vector<OpKind> kinds;
    kinds.reserve(total_ops);
    kinds.insert(kinds.end(), profile_.num_adds, OpKind::kAdd);
    kinds.insert(kinds.end(), profile_.num_mults, OpKind::kMult);
    rng_.shuffle(kinds);

    int placed = 0;
    for (int level = 1; level <= depth_target; ++level) {
      for (int j = 0; j < level_size[level]; ++j) {
        const int remaining = total_ops - placed;
        place_op(kinds[placed], remaining, placed, level, depth_target,
                 /*first=*/j == 0);
        ++placed;
      }
    }

    if (static_cast<int>(unconsumed_.size()) != profile_.num_outputs) {
      if (std::getenv("HLP_GEN_DEBUG")) {
        int mx = 0;
        for (const ValueRef& v : unconsumed_)
          mx = std::max(mx, value_depth(v));
        std::fprintf(stderr, "gen fail: %s sinks=%zu want=%d maxdepth=%d\n",
                     profile_.name.c_str(), unconsumed_.size(),
                     profile_.num_outputs, mx);
      }
      return false;
    }
    for (int i = 0; i < profile_.num_outputs; ++i)
      g_.add_output("out" + std::to_string(i), unconsumed_[i]);
    g_.validate();
    *out = std::move(g_);
    return true;
  }

 private:
  int value_depth(ValueRef v) const {
    return depth_[v.is_input() ? v.index : profile_.num_inputs + v.index];
  }

  void place_op(OpKind kind, int remaining, int counter, int level,
                int depth_target, bool first_of_level) {
    const int target = profile_.num_outputs;
    const int diff = static_cast<int>(unconsumed_.size()) - target;
    // Spine ops (first of a level) always consume at least one value, so
    // only the remaining non-spine ops can *raise* the sink count. The
    // guards keep the final count reachable: it can drop by one per
    // remaining op and rise by one per remaining non-spine op.
    const int spines_left = depth_target - level;  // after this op
    const int future_nonspine = std::max(0, remaining - 1 - spines_left);
    const int min_consume = first_of_level ? 1 : 0;
    auto feasible = [&](int c) {
      const int new_diff = diff + 1 - c;
      return new_diff <= remaining - 1 && -new_diff <= future_nonspine;
    };
    const double r = rng_.uniform();
    int consume = r < 0.45 ? 2 : (r < 0.9 ? 1 : 0);
    consume = std::max(consume, min_consume);
    if (!feasible(consume)) {
      // Walk to the nearest feasible consumption level.
      int best = -1;
      for (int c = min_consume; c <= 2; ++c)
        if (feasible(c) &&
            (best < 0 || std::abs(c - consume) < std::abs(best - consume)))
          best = c;
      if (best < 0) {
        // No feasible choice (controller cornered): consume as much as
        // possible; the run-level check reports failure and a retry seed
        // resolves it.
        best = 2;
      }
      consume = best;
    }

    // Consumption eligibility: operands strictly below this level, which
    // hard-bounds every op's depth at its level (and thus at the target).
    const int max_operand_depth = std::min(level - 1, depth_target - 1);
    auto eligible = [&](ValueRef v) {
      return value_depth(v) <= max_operand_depth;
    };

    int consumed = 0;
    ValueRef a, b;
    if (first_of_level) {
      a = take_deepest_eligible(eligible);
      ++consumed;
    } else if (consumed < consume && take_random_eligible(eligible, &a)) {
      ++consumed;
    } else {
      a = pick_any(level);
    }
    if (consumed < consume && take_random_eligible(eligible, &b)) {
      ++consumed;
    } else {
      b = pick_any(level);
    }

    const char* prefix = kind == OpKind::kAdd ? "a" : "m";
    const int idx = g_.add_op(prefix + std::to_string(counter), kind, a, b);
    unconsumed_.push_back(ValueRef::op(idx));
    all_values_.push_back(ValueRef::op(idx));
    depth_.push_back(1 + std::max(value_depth(a), value_depth(b)));
  }

  // Pops the deepest eligible sink — the spine predecessor. Falls back to
  // the deepest eligible value overall (not popped) if no sink qualifies.
  template <typename Pred>
  ValueRef take_deepest_eligible(const Pred& eligible) {
    int best = -1;
    for (std::size_t i = 0; i < unconsumed_.size(); ++i) {
      if (!eligible(unconsumed_[i])) continue;
      if (best < 0 ||
          value_depth(unconsumed_[i]) > value_depth(unconsumed_[best]))
        best = static_cast<int>(i);
    }
    if (best >= 0) {
      const ValueRef v = unconsumed_[best];
      unconsumed_.erase(unconsumed_.begin() + best);
      return v;
    }
    ValueRef deepest = all_values_.front();
    for (const ValueRef& v : all_values_)
      if (eligible(v) && value_depth(v) > value_depth(deepest)) deepest = v;
    return deepest;
  }

  // Pops a random eligible sink; false when none exists.
  template <typename Pred>
  bool take_random_eligible(const Pred& eligible, ValueRef* out) {
    std::vector<std::size_t> pool;
    for (std::size_t i = 0; i < unconsumed_.size(); ++i)
      if (eligible(unconsumed_[i])) pool.push_back(i);
    if (pool.empty()) return false;
    const std::size_t i =
        pool[rng_.below(static_cast<std::uint32_t>(pool.size()))];
    *out = unconsumed_[i];
    unconsumed_.erase(unconsumed_.begin() + i);
    return true;
  }

  // Any existing value below this level; tournament selection with
  // strength depth_bias prefers deeper values (MAC-chain locality).
  ValueRef pick_any(int level) {
    auto pick_one = [&]() -> ValueRef {
      for (int tries = 0; tries < 64; ++tries) {
        const ValueRef v = all_values_[rng_.below(
            static_cast<std::uint32_t>(all_values_.size()))];
        if (value_depth(v) <= level - 1) return v;
      }
      return all_values_[rng_.below(
          static_cast<std::uint32_t>(profile_.num_inputs))];
    };
    const ValueRef first = pick_one();
    if (!rng_.chance(profile_.depth_bias)) return first;
    const ValueRef second = pick_one();
    return value_depth(second) > value_depth(first) ? second : first;
  }

  BenchmarkProfile profile_;
  Rng rng_;
  Cdfg g_;
  std::vector<ValueRef> unconsumed_;
  std::vector<ValueRef> all_values_;
  std::vector<int> depth_;  // by value id (inputs, then ops)
};

}  // namespace

const std::vector<BenchmarkProfile>& paper_benchmarks() {
  // Table 1 of the paper: PIs, POs, adds, mults, total edges. target_depth
  // tracks the Table 2 schedule lengths so the resource-constrained list
  // schedule reproduces the paper's control-step structure.
  static const std::vector<BenchmarkProfile> kProfiles = {
      {"chem", 20, 10, 171, 176, 731, 37, 0.6},
      {"dir", 8, 8, 84, 64, 314, 39, 0.6},
      {"honda", 9, 2, 45, 52, 214, 16, 0.6},
      {"mcm", 8, 8, 64, 30, 252, 25, 0.6},
      {"pr", 8, 8, 26, 16, 134, 14, 0.6},
      {"steam", 5, 5, 105, 115, 472, 26, 0.6},
      {"wang", 8, 8, 26, 22, 134, 16, 0.6},
  };
  return kProfiles;
}

const BenchmarkProfile& benchmark_profile(const std::string& name) {
  for (const auto& p : paper_benchmarks())
    if (p.name == name) return p;
  HLP_REQUIRE(false, "unknown benchmark '" << name << "'");
}

Cdfg make_benchmark(const BenchmarkProfile& profile, std::uint64_t seed) {
  // Deterministic retry: rare seed/profile corners strand a sink the depth
  // rules cannot consume; a derived seed resolves it.
  for (int attempt = 0; attempt < 64; ++attempt) {
    Cdfg g;
    if (Generator(profile, seed + 0x100000ull * attempt).run(&g)) return g;
  }
  HLP_REQUIRE(false, "benchmark generation failed for '" << profile.name
                                                         << "'");
}

Cdfg make_paper_benchmark(const std::string& name, std::uint64_t seed) {
  return make_benchmark(benchmark_profile(name), seed);
}

Cdfg make_random_dfg(int num_inputs, int num_outputs, int num_ops,
                     std::uint64_t seed) {
  Rng rng(seed);
  BenchmarkProfile p;
  p.name = "random";
  p.num_inputs = num_inputs;
  p.num_outputs = num_outputs;
  p.num_adds = static_cast<int>(rng.below(static_cast<std::uint32_t>(num_ops) + 1));
  p.num_mults = num_ops - p.num_adds;
  // Ensure both kinds appear when there is room, matching the paper's
  // two-resource library.
  if (num_ops >= 2) {
    p.num_adds = std::clamp(p.num_adds, 1, num_ops - 1);
    p.num_mults = num_ops - p.num_adds;
  }
  p.depth_bias = rng.uniform();
  p.target_depth =
      2 + static_cast<int>(rng.below(static_cast<std::uint32_t>(num_ops) / 2 + 1));
  return make_benchmark(p, seed * 7919 + 13);
}

}  // namespace hlp
