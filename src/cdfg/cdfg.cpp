#include "cdfg/cdfg.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/error.hpp"

namespace hlp {

const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::kAdd:
      return "add";
    case OpKind::kMult:
      return "mult";
  }
  return "?";
}

int Cdfg::add_input(std::string name) {
  HLP_REQUIRE(!name.empty(), "input name must be non-empty");
  inputs_.push_back(std::move(name));
  return num_inputs() - 1;
}

int Cdfg::add_op(std::string name, OpKind kind, ValueRef lhs, ValueRef rhs) {
  HLP_REQUIRE(!name.empty(), "op name must be non-empty");
  check_ref(lhs);
  check_ref(rhs);
  ops_.push_back({std::move(name), kind, lhs, rhs});
  return num_ops() - 1;
}

int Cdfg::add_output(std::string name, ValueRef value) {
  HLP_REQUIRE(!name.empty(), "output name must be non-empty");
  check_ref(value);
  outputs_.push_back({std::move(name), value});
  return num_outputs() - 1;
}

const std::string& Cdfg::input_name(int i) const {
  HLP_CHECK(i >= 0 && i < num_inputs(), "input index " << i << " out of range");
  return inputs_[i];
}

const Operation& Cdfg::op(int i) const {
  HLP_CHECK(i >= 0 && i < num_ops(), "op index " << i << " out of range");
  return ops_[i];
}

const Output& Cdfg::output(int i) const {
  HLP_CHECK(i >= 0 && i < num_outputs(), "output index " << i << " out of range");
  return outputs_[i];
}

int Cdfg::num_ops_of_kind(OpKind k) const {
  return static_cast<int>(
      std::count_if(ops_.begin(), ops_.end(),
                    [k](const Operation& o) { return o.kind == k; }));
}

std::vector<std::vector<int>> Cdfg::op_consumers() const {
  std::vector<std::vector<int>> inputs_consumers(inputs_.size());
  std::vector<std::vector<int>> op_value_consumers(ops_.size());
  auto record = [&](ValueRef v, int op_idx) {
    if (v.is_input())
      inputs_consumers[v.index].push_back(op_idx);
    else
      op_value_consumers[v.index].push_back(op_idx);
  };
  for (int i = 0; i < num_ops(); ++i) {
    record(ops_[i].lhs, i);
    record(ops_[i].rhs, i);
  }
  // Flatten: inputs first, then op values (same ordering as value ids used
  // by lifetimes).
  std::vector<std::vector<int>> out;
  out.reserve(inputs_.size() + ops_.size());
  for (auto& v : inputs_consumers) out.push_back(std::move(v));
  for (auto& v : op_value_consumers) out.push_back(std::move(v));
  return out;
}

std::vector<ValueRef> Cdfg::dead_values() const {
  std::vector<char> used_in(inputs_.size(), 0), used_op(ops_.size(), 0);
  auto mark = [&](ValueRef v) {
    if (v.is_input())
      used_in[v.index] = 1;
    else
      used_op[v.index] = 1;
  };
  for (const auto& o : ops_) {
    mark(o.lhs);
    mark(o.rhs);
  }
  for (const auto& o : outputs_) mark(o.value);
  std::vector<ValueRef> dead;
  for (int i = 0; i < num_inputs(); ++i)
    if (!used_in[i]) dead.push_back(ValueRef::input(i));
  for (int i = 0; i < num_ops(); ++i)
    if (!used_op[i]) dead.push_back(ValueRef::op(i));
  return dead;
}

std::vector<int> Cdfg::op_depths() const {
  std::vector<int> d(ops_.size(), 1);
  for (int i = 0; i < num_ops(); ++i) {
    auto dep = [&](ValueRef v) { return v.is_op() ? d[v.index] : 0; };
    d[i] = 1 + std::max(dep(ops_[i].lhs), dep(ops_[i].rhs));
  }
  return d;
}

int Cdfg::depth() const {
  const auto d = op_depths();
  return d.empty() ? 0 : *std::max_element(d.begin(), d.end());
}

void Cdfg::validate() const {
  std::unordered_set<std::string> names;
  for (const auto& n : inputs_)
    HLP_CHECK(names.insert(n).second, "duplicate name '" << n << "'");
  for (const auto& o : ops_)
    HLP_CHECK(names.insert(o.name).second, "duplicate name '" << o.name << "'");
  for (const auto& o : outputs_)
    HLP_CHECK(names.insert(o.name).second, "duplicate name '" << o.name << "'");
  for (int i = 0; i < num_ops(); ++i) {
    const auto& o = ops_[i];
    auto ok = [&](ValueRef v) {
      return v.is_input() ? v.index >= 0 && v.index < num_inputs()
                          : v.index >= 0 && v.index < i;
    };
    HLP_CHECK(ok(o.lhs) && ok(o.rhs),
              "op '" << o.name << "' references an undefined value");
  }
  for (const auto& o : outputs_) check_ref(o.value);
  const auto dead = dead_values();
  HLP_CHECK(dead.empty(), "CDFG contains " << dead.size()
                                           << " dead value(s), first: "
                                           << value_name(dead.front()));
}

std::string Cdfg::value_name(ValueRef v) const {
  check_ref(v);
  return v.is_input() ? inputs_[v.index] : ops_[v.index].name;
}

void Cdfg::check_ref(ValueRef v) const {
  if (v.is_input()) {
    HLP_CHECK(v.index >= 0 && v.index < num_inputs(),
              "dangling input ref " << v.index);
  } else {
    HLP_CHECK(v.index >= 0 && v.index < num_ops(),
              "dangling op ref " << v.index);
  }
}

}  // namespace hlp
