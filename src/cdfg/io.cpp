#include "cdfg/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace hlp {

void write_cdfg(const Cdfg& g, std::ostream& os) {
  os << "cdfg " << g.name() << "\n";
  for (int i = 0; i < g.num_inputs(); ++i)
    os << "input " << g.input_name(i) << "\n";
  for (int i = 0; i < g.num_ops(); ++i) {
    const auto& o = g.op(i);
    os << "op " << o.name << " " << to_string(o.kind) << " "
       << g.value_name(o.lhs) << " " << g.value_name(o.rhs) << "\n";
  }
  for (int i = 0; i < g.num_outputs(); ++i) {
    const auto& o = g.output(i);
    os << "output " << o.name << " " << g.value_name(o.value) << "\n";
  }
}

std::string cdfg_to_string(const Cdfg& g) {
  std::ostringstream oss;
  write_cdfg(g, oss);
  return oss.str();
}

Cdfg read_cdfg(std::istream& is) {
  Cdfg g;
  std::unordered_map<std::string, ValueRef> values;
  auto lookup = [&](const std::string& n, int line) {
    auto it = values.find(n);
    HLP_REQUIRE(it != values.end(),
                "line " << line << ": unknown value '" << n << "'");
    return it->second;
  };

  std::string line;
  int line_no = 0;
  bool saw_header = false;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto tok = split_ws(line);
    if (tok.empty()) continue;
    if (tok[0] == "cdfg") {
      HLP_REQUIRE(tok.size() == 2, "line " << line_no << ": cdfg <name>");
      g.set_name(tok[1]);
      saw_header = true;
    } else if (tok[0] == "input") {
      HLP_REQUIRE(tok.size() == 2, "line " << line_no << ": input <name>");
      const int idx = g.add_input(tok[1]);
      HLP_REQUIRE(values.emplace(tok[1], ValueRef::input(idx)).second,
                  "line " << line_no << ": duplicate value '" << tok[1] << "'");
    } else if (tok[0] == "op") {
      HLP_REQUIRE(tok.size() == 5,
                  "line " << line_no << ": op <name> <kind> <lhs> <rhs>");
      OpKind kind;
      if (tok[2] == "add")
        kind = OpKind::kAdd;
      else if (tok[2] == "mult")
        kind = OpKind::kMult;
      else
        HLP_REQUIRE(false, "line " << line_no << ": unknown op kind '"
                                   << tok[2] << "'");
      const int idx = g.add_op(tok[1], kind, lookup(tok[3], line_no),
                               lookup(tok[4], line_no));
      HLP_REQUIRE(values.emplace(tok[1], ValueRef::op(idx)).second,
                  "line " << line_no << ": duplicate value '" << tok[1] << "'");
    } else if (tok[0] == "output") {
      HLP_REQUIRE(tok.size() == 3, "line " << line_no << ": output <name> <value>");
      g.add_output(tok[1], lookup(tok[2], line_no));
    } else {
      HLP_REQUIRE(false, "line " << line_no << ": unknown directive '"
                                 << tok[0] << "'");
    }
  }
  HLP_REQUIRE(saw_header, "missing 'cdfg <name>' header");
  g.validate();
  return g;
}

Cdfg cdfg_from_string(const std::string& text) {
  std::istringstream iss(text);
  return read_cdfg(iss);
}

std::string cdfg_to_dot(const Cdfg& g) {
  std::ostringstream os;
  os << "digraph \"" << g.name() << "\" {\n";
  for (int i = 0; i < g.num_inputs(); ++i)
    os << "  \"" << g.input_name(i) << "\" [shape=invtriangle];\n";
  for (int i = 0; i < g.num_ops(); ++i) {
    const auto& o = g.op(i);
    os << "  \"" << o.name << "\" [shape="
       << (o.kind == OpKind::kAdd ? "circle" : "doublecircle") << ",label=\""
       << (o.kind == OpKind::kAdd ? "+" : "*") << "\\n" << o.name << "\"];\n";
    os << "  \"" << g.value_name(o.lhs) << "\" -> \"" << o.name << "\";\n";
    os << "  \"" << g.value_name(o.rhs) << "\" -> \"" << o.name << "\";\n";
  }
  for (int i = 0; i < g.num_outputs(); ++i) {
    const auto& o = g.output(i);
    os << "  \"" << o.name << "\" [shape=triangle];\n";
    os << "  \"" << g.value_name(o.value) << "\" -> \"" << o.name << "\";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace hlp
