#include "explore/explorer.hpp"

#include <chrono>
#include <memory>
#include <set>
#include <utility>

#include "store/artifact_store.hpp"

namespace hlp::explore {

std::string describe_axes(const KnobStep& step) {
  std::string axes;
  auto add = [&](const char* name) {
    if (!axes.empty()) axes += '+';
    axes += name;
  };
  if (step.scheduler) add("scheduler");
  if (step.sa) add("sa");
  if (step.binder) add("binder");
  if (step.binder_alpha) add("binder.alpha");
  if (step.num_vectors) add("vectors");
  return axes.empty() ? "-" : axes;
}

void Explorer::apply(const KnobStep& step, std::vector<flow::Job>& grid) {
  for (flow::Job& job : grid) {
    if (step.scheduler) job.scheduler = *step.scheduler;
    if (step.sa) job.sa = *step.sa;
    if (step.binder) job.binder = *step.binder;
    if (step.binder_alpha) job.binder.alpha = *step.binder_alpha;
    if (step.num_vectors) job.num_vectors = *step.num_vectors;
  }
}

Explorer::Explorer(std::vector<flow::Job> base_grid, std::string store_dir,
                   int num_threads,
                   flow::ExperimentRunner::GraphProvider provider)
    : base_(std::move(base_grid)),
      store_dir_(std::move(store_dir)),
      num_threads_(num_threads),
      provider_(std::move(provider)) {}

Explorer& Explorer::step(KnobStep s) {
  steps_.push_back(std::move(s));
  return *this;
}

Exploration Explorer::run() {
  using Clock = std::chrono::steady_clock;
  Exploration out;
  std::vector<flow::Job> grid = base_;
  std::set<std::string> prev_keys;

  for (std::size_t s = 0; s <= steps_.size(); ++s) {
    StepReport report;
    if (s == 0) {
      report.name = "base";
      report.axes = "-";
    } else {
      const KnobStep& step = steps_[s - 1];
      apply(step, grid);
      report.name = step.name.empty() ? describe_axes(step) : step.name;
      report.axes = describe_axes(step);
    }
    report.num_jobs = grid.size();

    // A fresh runner per step: the in-memory StageCache starts cold, so
    // every span the step reuses is PROVEN reuse through the store — the
    // handle's hit/miss/publish counters are exact per-step deltas.
    flow::ExperimentRunner runner(num_threads_, provider_);
    runner.set_store_dir(store_dir_);
    runner.set_result_callback(
        [this](std::size_t, const flow::JobResult& r) { frontier_.offer(r); });

    // Knob-diff against the previous step: the keys are the pipeline's
    // own probe keys, so "shared" means "must come from the store".
    // Computing them also primes the memoised contexts the run uses.
    std::set<std::string> keys;
    for (const flow::Job& job : grid) {
      try {
        keys.insert(runner.artifact_key_for(job).full());
      } catch (const std::exception&) {
        // Unknown benchmark or bad mode env: the run reports it per job.
      }
    }
    report.spans = keys.size();
    for (const std::string& k : keys)
      if (prev_keys.count(k)) ++report.spans_shared;

    const auto t0 = Clock::now();
    const std::vector<flow::JobResult> results = runner.run(grid);
    report.seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    for (const flow::JobResult& r : results)
      if (!r.ok) ++report.failed;

    if (store::ArtifactStore* st = runner.artifact_store()) {
      report.store_hits = st->hits();
      report.store_misses = st->misses();
      report.store_publishes = st->publishes();
      report.store_rejected = st->rejected();
    }
    report.frontier_size = frontier_.size();
    prev_keys = std::move(keys);
    out.steps.push_back(std::move(report));
  }
  out.frontier = frontier_.points();
  return out;
}

}  // namespace hlp::explore
