// Online Pareto frontier over the three objectives a design-space
// exploration trades off (the axes of the paper's tables): dynamic power,
// LUT area and clock period — all minimised.
//
// The frontier is the data structure a design-space-exploration service
// serves from (ROADMAP: "maintain an online Pareto frontier ... streamed
// as results arrive"), so it is built for streaming insertion from the
// runner's result callback: offer() is thread-safe and the final content
// carries an ARRIVAL-ORDER-INDEPENDENCE guarantee — the same multiset of
// results yields the bit-identical frontier regardless of thread count,
// worker count, shuffle, or interleaving. That holds by construction:
//
//   - the surviving OBJECTIVE VECTORS are the minimal elements of the
//     offered multiset under the product order, a set that does not
//     depend on insertion order (dominance is transitive, so a point
//     evicted early stays evicted: whatever removed it is itself only
//     ever replaced by points that also dominate it);
//   - within one objective vector (distinct configurations measuring
//     identical power/area/period), the tie is broken deterministically:
//     the point with the lexicographically smallest identity key wins,
//     and identical identities are idempotent no-ops;
//   - points() returns the survivors sorted by objective vector — unique
//     within a frontier — so iteration order is deterministic too.
//
// Every pipeline in this repository is deterministic bit-for-bit across
// threads, workers and SIMD widths (same_outcome), so "bit-identical
// frontier" is meaningful: the doubles compare exactly, never by epsilon.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "flow/experiment.hpp"

namespace hlp::explore {

/// One candidate design point: the objective vector extracted from a
/// JobResult plus a deterministic identity for tie-breaking and display.
struct ParetoPoint {
  double power_mw = 0.0;        // FlowResult::report.dynamic_power_mw
  int lut_area = 0;             // FlowResult::mapped.num_luts
  double clock_period_ns = 0.0; // FlowResult::clock_period_ns

  /// Deterministic identity of the configuration that produced the
  /// vector: every grid axis (seed included, label excluded) serialised
  /// with hexfloat doubles. Two jobs with equal ids are the same
  /// configuration; the lexicographically smallest id wins an
  /// equal-vector tie.
  std::string id;
  /// Display tag: the job's label when set, else "<benchmark>/<binder>".
  std::string label;

  friend bool operator==(const ParetoPoint&, const ParetoPoint&) = default;
};

/// The deterministic identity key of a job (ParetoPoint::id). Resolves
/// the SA mode like the runner does, so a job that deferred to
/// HLP_SA_MODE and its manifest round trip (which carries the resolved
/// mode) agree on identity.
std::string job_identity(const flow::Job& job);

/// Extract the objective vector of a successful result. Precondition:
/// `result.ok` (offer() filters failures before calling this).
ParetoPoint point_from_result(const flow::JobResult& result);

/// What insert() did with a point.
enum class InsertOutcome {
  kInserted,   // joined the frontier (possibly evicting dominated points)
  kDominated,  // an existing point dominates it (or equals it on every axis
               // with a smaller id)
  kDuplicate,  // identical id and vector already present (idempotent no-op)
};

class ParetoFrontier {
 public:
  /// Stream one runner result in: failures are counted and skipped,
  /// successes are inserted. Thread-safe — pass
  /// `[&](std::size_t, const flow::JobResult& r) { frontier.offer(r); }`
  /// to ExperimentRunner::set_result_callback.
  InsertOutcome offer(const flow::JobResult& result);

  /// Dominance insertion of an already-extracted point. Thread-safe.
  InsertOutcome insert(const ParetoPoint& p);

  /// The current frontier, sorted by (power, area, period, id) — unique
  /// objective vectors, deterministic order. Thread-safe snapshot.
  std::vector<ParetoPoint> points() const;

  std::size_t size() const;

  /// Results streamed through offer(), successes and failures.
  std::uint64_t offered() const;
  /// Failed results offer() skipped.
  std::uint64_t skipped() const;

 private:
  mutable std::mutex mu_;
  std::vector<ParetoPoint> pts_;
  std::uint64_t offered_ = 0;
  std::uint64_t skipped_ = 0;
};

/// True when `a` dominates `b`: no worse on every objective, strictly
/// better on at least one. Equal vectors dominate in neither direction.
bool dominates(const ParetoPoint& a, const ParetoPoint& b);

}  // namespace hlp::explore
