#include "explore/pareto.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "power/sa_mode.hpp"

namespace hlp::explore {

namespace {

// Strict-weak order on objective vectors; id last so equal vectors (which
// never coexist inside one frontier, but do during sorting of arbitrary
// point sets in tests) still order deterministically.
bool point_less(const ParetoPoint& a, const ParetoPoint& b) {
  return std::tie(a.power_mw, a.lut_area, a.clock_period_ns, a.id) <
         std::tie(b.power_mw, b.lut_area, b.clock_period_ns, b.id);
}

bool same_vector(const ParetoPoint& a, const ParetoPoint& b) {
  return a.power_mw == b.power_mw && a.lut_area == b.lut_area &&
         a.clock_period_ns == b.clock_period_ns;
}

}  // namespace

bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
  if (a.power_mw > b.power_mw || a.lut_area > b.lut_area ||
      a.clock_period_ns > b.clock_period_ns)
    return false;
  return a.power_mw < b.power_mw || a.lut_area < b.lut_area ||
         a.clock_period_ns < b.clock_period_ns;
}

std::string job_identity(const flow::Job& job) {
  std::ostringstream id;
  // Every axis of the runner's context and group keys plus the stimulus
  // seed; hexfloat doubles so distinct knob values never alias. The SA
  // mode is serialised RESOLVED for the same reason the distributed
  // manifest resolves it: a job deferring to HLP_SA_MODE and its round
  // trip through a worker (sa= pinned) must be the same identity.
  id << job.benchmark << '|' << job.scheduler << '|' << job.rc.adders << 'x'
     << job.rc.multipliers << '|' << job.width << '|' << job.reg_seed << '|'
     << job.sched_spec.min_latency << '|' << job.sched_spec.latency_slack
     << '|' << sa_mode_name(effective_sa_mode(job.sa)) << '|'
     << job.binder.name << '|' << std::hexfloat << job.binder.alpha << '|'
     << job.binder.beta_add << '|' << job.binder.beta_mult << '|'
     << job.binder.refine << '|' << job.num_vectors << '|'
     << static_cast<int>(job.sim_engine) << '|'
     << static_cast<int>(job.simd) << '|' << static_cast<int>(job.settle)
     << '|' << job.seed;
  return id.str();
}

ParetoPoint point_from_result(const flow::JobResult& result) {
  ParetoPoint p;
  p.power_mw = result.outcome.flow.report.dynamic_power_mw;
  p.lut_area = result.outcome.flow.mapped.num_luts;
  p.clock_period_ns = result.outcome.flow.clock_period_ns;
  p.id = job_identity(result.job);
  p.label = result.job.label.empty()
                ? result.job.benchmark + "/" + result.job.binder.name
                : result.job.label;
  return p;
}

InsertOutcome ParetoFrontier::offer(const flow::JobResult& result) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++offered_;
    if (!result.ok) {
      // Failures carry no objectives. Skipping them preserves order
      // independence: a job fails deterministically (same error on every
      // executor), so every arrival order skips the same set.
      ++skipped_;
      return InsertOutcome::kDominated;
    }
  }
  return insert(point_from_result(result));
}

InsertOutcome ParetoFrontier::insert(const ParetoPoint& p) {
  std::lock_guard<std::mutex> lock(mu_);
  // Equal-vector tie: exactly one point per objective vector survives,
  // the lexicographically smallest id. At most one equal-vector point can
  // be present, so resolve and return before any dominance scan.
  for (auto it = pts_.begin(); it != pts_.end(); ++it) {
    if (!same_vector(*it, p)) continue;
    if (it->id == p.id) return InsertOutcome::kDuplicate;
    if (it->id < p.id) return InsertOutcome::kDominated;
    *it = p;
    return InsertOutcome::kInserted;
  }
  for (const ParetoPoint& q : pts_) {
    if (dominates(q, p)) return InsertOutcome::kDominated;
  }
  pts_.erase(std::remove_if(pts_.begin(), pts_.end(),
                            [&](const ParetoPoint& q) {
                              return dominates(p, q);
                            }),
             pts_.end());
  pts_.push_back(p);
  return InsertOutcome::kInserted;
}

std::vector<ParetoPoint> ParetoFrontier::points() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ParetoPoint> out = pts_;
  std::sort(out.begin(), out.end(), point_less);
  return out;
}

std::size_t ParetoFrontier::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pts_.size();
}

std::uint64_t ParetoFrontier::offered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return offered_;
}

std::uint64_t ParetoFrontier::skipped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return skipped_;
}

}  // namespace hlp::explore
