// Incremental design-space explorer on top of the artifact store.
//
// A sweep in this repository is one grid run; an *exploration* is a walk:
// run a base grid, then mutate one knob at a time (binder, scheduler, SA
// mode, stimulus vectors) and rerun. The expensive middle of the pipeline
// — the bind-fus..time span — depends only on the ArtifactKey axes
// (scope, binding hash, mode tags), so a knob that leaves a job's key
// unchanged must not recompute that span: it comes back out of the
// persistent store (PR 9) while only the cheap tail (simulate, power)
// reruns. The Explorer makes that contract measurable and pinnable:
//
//   - each step runs on a FRESH ExperimentRunner sharing one store
//     directory, so the in-memory StageCache is cold every step and the
//     step's store hit/miss/publish counters are exact reuse evidence
//     (tests pin them: a vectors-only step hits the store once per span
//     and publishes nothing);
//   - each step's grid is diffed against the previous step's via
//     ExperimentRunner::artifact_key_for — the same keys the pipeline
//     probes — reported as spans_shared vs spans;
//   - every JobResult streams into one online ParetoFrontier through
//     ExperimentRunner::set_result_callback as it completes, so the
//     frontier is live mid-step and, by the frontier's order-independence
//     guarantee, bit-identical however the pool interleaves.
//
// The walk is cumulative: step N mutates the grid produced by step N-1,
// like a user iterating on a configuration.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "explore/pareto.hpp"
#include "flow/experiment.hpp"

namespace hlp::explore {

/// One knob mutation, applied to every job of the current grid. Unset
/// fields leave the grid alone; `binder` replaces the whole spec while
/// `binder_alpha` retunes just the cost-weight knob of whatever binder
/// each job already runs (applied after `binder` when both are set).
struct KnobStep {
  std::string name;  // display tag for the step's report row
  std::optional<std::string> scheduler;  // changes scope -> full recompute
  std::optional<SaMode> sa;              // changes scope+binding -> recompute
  std::optional<flow::BinderSpec> binder;  // changes binding -> recompute
  std::optional<double> binder_alpha;    // changes binding -> recompute
  std::optional<int> num_vectors;        // tail-only: every span reused
};

/// Which knobs a step mutated, e.g. "scheduler+vectors"; "-" for none.
std::string describe_axes(const KnobStep& step);

/// Reuse evidence of one step of the walk (the base grid is step 0).
struct StepReport {
  std::string name;
  std::string axes;            // describe_axes of the mutation ("-" for base)
  std::size_t num_jobs = 0;
  std::size_t failed = 0;      // results with !ok
  /// Distinct bind-fus..time spans (ArtifactKeys) the step's grid maps
  /// to; jobs whose key cannot be computed (unknown benchmark) are
  /// counted in `failed` by the run and contribute no span.
  std::size_t spans = 0;
  /// Spans with the identical ArtifactKey in the previous step — the
  /// knob-diff: these must come from the store, not be recomputed.
  std::size_t spans_shared = 0;
  /// This step's store counters (fresh runner + fresh store handle per
  /// step, so these are exact per-step deltas, not run-to-date totals).
  std::uint64_t store_hits = 0;
  std::uint64_t store_misses = 0;
  std::uint64_t store_publishes = 0;
  std::uint64_t store_rejected = 0;
  std::size_t frontier_size = 0;  // frontier size after this step
  double seconds = 0.0;           // wall clock of the step's run
};

struct Exploration {
  std::vector<StepReport> steps;        // base first, then one per KnobStep
  std::vector<ParetoPoint> frontier;    // ParetoFrontier::points()
};

class Explorer {
 public:
  /// `base_grid` is step 0. `store_dir` backs every step's runner with
  /// one shared artifact store (empty = no persistence: every step
  /// recomputes — the explicit empty string also shields the walk from
  /// HLP_STORE, exactly like ExperimentRunner::set_store_dir; pass
  /// flow::store_dir_from_env("") to opt back in). `num_threads` sizes
  /// each step's pool; results and frontier are identical for any value.
  explicit Explorer(std::vector<flow::Job> base_grid, std::string store_dir,
                    int num_threads = 1,
                    flow::ExperimentRunner::GraphProvider provider = {});

  /// Append one knob-mutation step to the walk. Returns *this to chain.
  Explorer& step(KnobStep s);

  /// Run the whole walk: base grid, then each step on its own fresh
  /// store-backed runner, streaming every result into the frontier.
  /// Callable repeatedly — a second run against a warm store is the
  /// all-spans-reused fixture the bench sweeps print.
  Exploration run();

  const ParetoFrontier& frontier() const { return frontier_; }

  /// Apply one step's mutations to a grid (exposed for tests).
  static void apply(const KnobStep& step, std::vector<flow::Job>& grid);

 private:
  std::vector<flow::Job> base_;
  std::string store_dir_;
  int num_threads_;
  flow::ExperimentRunner::GraphProvider provider_;
  std::vector<KnobStep> steps_;
  ParetoFrontier frontier_;
};

}  // namespace hlp::explore
