// Post-binding port-assignment refinement.
//
// After FU binding, each commutative operation's operand orientation can
// still be flipped. This pass runs a deterministic greedy descent: flip an
// op whenever doing so reduces the bound FU's Eq. 4 cost — the glitch-aware
// SA of its (muxA, muxB) input stage, with the muxDiff balance term — and
// repeats to a fixed point. It implements the "port assignment for
// multiplexer optimisation" idea of Chen & Cong (ASP-DAC'04) on top of any
// binding, and serves as the library's local-search extension of HLPower
// (the paper's future-work direction of tighter mux control).
#pragma once

#include "binding/binding.hpp"
#include "core/edge_weight.hpp"
#include "power/sa_cache.hpp"

namespace hlp {

struct PortRefineResult {
  FuBinding fus;       // refined binding (same FU assignment, new flips)
  int flips_applied = 0;
  int passes = 0;
  double cost_before = 0.0;  // sum over FUs of Eq. 4 cost (1/weight)
  double cost_after = 0.0;
};

/// Refine the port assignment of `fus` (FU assignment unchanged).
PortRefineResult refine_ports(const Cdfg& g, const RegisterBinding& regs,
                              const FuBinding& fus, SaCache& cache,
                              const EdgeWeightParams& params = {});

}  // namespace hlp
