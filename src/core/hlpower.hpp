// HLPower: the paper's iterative, glitch-aware functional-unit binding
// (Algorithm 1).
//
//   1: Input: scheduled CDFG, library, resource constraint
//   3: precalc SA values for all FU & MUX combinations
//   4: bind registers according to [11]          (binding/register_binder)
//   5: traverse CDFG, select nodes for set U     (densest control step per
//   6: put remaining nodes in set V               operation type)
//   7: while resource constraint is not met do
//   8:   initialise bipartite graph G = (U, V, E)
//   9:   for all edges: mux sizes -> SA lookup -> Eq. 4 weight
//  14:   solve G for maximum weight
//  15:   combine matched nodes & allocate functional units
//
// Theorem 1 guarantees the per-type maximum control-step density (the
// minimum possible allocation) is reachable for single-cycle resources;
// bind_fus_hlpower verifies the requested constraint is met and throws
// otherwise.
#pragma once

#include <cstdint>

#include "binding/binding.hpp"
#include "core/edge_weight.hpp"
#include "power/sa_cache.hpp"
#include "sched/schedule.hpp"

namespace hlp {

struct HlpowerParams {
  EdgeWeightParams weight;
  /// Cap on merges per kind per iteration so the allocation lands exactly
  /// on the resource constraint instead of overshooting below it.
  bool stop_at_constraint = true;
};

struct HlpowerResult {
  FuBinding fus;
  int iterations = 0;
  int edges_evaluated = 0;
};

/// Bind operations to FUs. `regs` must already be bound (shared with the
/// baseline, as in the paper's experimental setup). Throws hlp::Error if
/// the constraint is below the per-type maximum density (infeasible).
HlpowerResult bind_fus_hlpower(const Cdfg& g, const Schedule& s,
                               const RegisterBinding& regs,
                               const ResourceConstraint& rc, SaCache& cache,
                               const HlpowerParams& params = {});

/// Convenience: full HLPower binding (registers + FUs).
Binding bind_hlpower(const Cdfg& g, const Schedule& s,
                     const ResourceConstraint& rc, SaCache& cache,
                     const HlpowerParams& params = {},
                     std::uint64_t reg_seed = 42);

}  // namespace hlp
