#include "core/hlpower.hpp"

#include <algorithm>

#include "binding/register_binder.hpp"
#include "common/error.hpp"
#include "graph/bipartite.hpp"

namespace hlp {
namespace {

// A graph node: a set of same-kind operations already sharing one FU.
struct Group {
  OpKind kind;
  std::vector<int> ops;
  std::vector<char> flips;   // parallel to ops: operand orientation
  std::vector<int> csteps;   // sorted
  std::vector<int> regs_a;   // distinct source registers, port A, sorted
  std::vector<int> regs_b;
};

void sort_unique(std::vector<int>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

bool disjoint_sorted(const std::vector<int>& a, const std::vector<int>& b) {
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return false;
    if (a[i] < b[j])
      ++i;
    else
      ++j;
  }
  return true;
}

std::vector<int> merged_sorted(const std::vector<int>& a,
                               const std::vector<int>& b) {
  std::vector<int> out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  sort_unique(out);
  return out;
}

Group make_group(const Cdfg& g, const Schedule& s, const RegisterBinding& regs,
                 int op) {
  Group gr;
  gr.kind = g.op(op).kind;
  gr.ops = {op};
  gr.flips = {0};
  gr.csteps = {s.cstep_of_op[op]};
  gr.regs_a = {regs.port_a_reg(g, op)};
  gr.regs_b = {regs.port_b_reg(g, op)};
  return gr;
}

}  // namespace

HlpowerResult bind_fus_hlpower(const Cdfg& g, const Schedule& s,
                               const RegisterBinding& regs,
                               const ResourceConstraint& rc, SaCache& cache,
                               const HlpowerParams& params) {
  s.validate(g);
  regs.validate(g, s);
  for (int k = 0; k < kNumOpKinds; ++k) {
    const OpKind kind = static_cast<OpKind>(k);
    HLP_REQUIRE(rc.limit(kind) >= s.max_density(g, kind),
                "constraint " << rc.limit(kind) << " for " << to_string(kind)
                              << " is below the schedule's max density "
                              << s.max_density(g, kind));
  }

  HlpowerResult result;

  // Lines 5-6: U = ops of the densest control step per type; V = the rest.
  std::vector<Group> u_groups, v_groups;
  std::vector<char> in_u(g.num_ops(), 0);
  for (int k = 0; k < kNumOpKinds; ++k)
    for (int op : s.densest_step_ops(g, static_cast<OpKind>(k))) in_u[op] = 1;
  for (int op = 0; op < g.num_ops(); ++op)
    (in_u[op] ? u_groups : v_groups).push_back(make_group(g, s, regs, op));

  auto groups_of_kind = [&](OpKind kind) {
    int n = 0;
    for (const auto& gr : u_groups)
      if (gr.kind == kind) ++n;
    for (const auto& gr : v_groups)
      if (gr.kind == kind) ++n;
    return n;
  };
  auto constraint_met = [&]() {
    for (int k = 0; k < kNumOpKinds; ++k)
      if (groups_of_kind(static_cast<OpKind>(k)) >
          rc.limit(static_cast<OpKind>(k)))
        return false;
    return true;
  };

  // Line 7: iterate until the resource constraint is met.
  while (!constraint_met()) {
    ++result.iterations;
    HLP_CHECK(result.iterations <= g.num_ops() + 1,
              "binding failed to converge");

    // Lines 8-13: weighted bipartite graph between U and V. Only kinds
    // still above their limit participate; edges join compatible nodes.
    std::vector<char> kind_active(kNumOpKinds, 0);
    for (int k = 0; k < kNumOpKinds; ++k)
      kind_active[k] = groups_of_kind(static_cast<OpKind>(k)) >
                       rc.limit(static_cast<OpKind>(k));

    std::vector<std::vector<double>> weight(
        u_groups.size(), std::vector<double>(v_groups.size(), 0.0));
    std::vector<std::vector<char>> flip_choice(
        u_groups.size(), std::vector<char>(v_groups.size(), 0));
    bool any_edge = false;
    for (std::size_t i = 0; i < u_groups.size(); ++i) {
      const Group& a = u_groups[i];
      if (!kind_active[op_kind_index(a.kind)]) continue;
      for (std::size_t j = 0; j < v_groups.size(); ++j) {
        const Group& b = v_groups[j];
        if (b.kind != a.kind) continue;
        if (!disjoint_sorted(a.csteps, b.csteps)) continue;
        // Lines 10-12: mux sizes if combined -> SA lookup -> Eq. 4. Both
        // resource kinds are commutative, so the incoming group may also
        // join with its operand orientation flipped (port assignment
        // optimisation); keep the better of the two orientations.
        double best_w = 0.0;
        char best_flip = 0;
        for (int flip = 0; flip < 2; ++flip) {
          const auto& vr_a = flip ? b.regs_b : b.regs_a;
          const auto& vr_b = flip ? b.regs_a : b.regs_b;
          const auto ra = merged_sorted(a.regs_a, vr_a);
          const auto rb = merged_sorted(a.regs_b, vr_b);
          const auto w = edge_weight(a.kind, static_cast<int>(ra.size()),
                                     static_cast<int>(rb.size()), cache,
                                     params.weight);
          ++result.edges_evaluated;
          if (w.weight > best_w) {
            best_w = w.weight;
            best_flip = static_cast<char>(flip);
          }
        }
        weight[i][j] = best_w;
        flip_choice[i][j] = best_flip;
        any_edge = true;
      }
    }
    HLP_CHECK(any_edge,
              "no compatible merge exists but the constraint is unmet");

    // Line 14: maximum-weight matching.
    const MatchingResult m = max_weight_matching(weight);

    // Line 15: combine matched nodes. When stop_at_constraint is set, only
    // apply the highest-weight merges needed to reach each kind's limit.
    struct Merge {
      std::size_t u, v;
      double w;
    };
    std::vector<Merge> merges;
    for (std::size_t i = 0; i < u_groups.size(); ++i)
      if (m.match_of_left[i] >= 0)
        merges.push_back({i, static_cast<std::size_t>(m.match_of_left[i]),
                          weight[i][m.match_of_left[i]]});
    std::sort(merges.begin(), merges.end(),
              [](const Merge& a, const Merge& b) { return a.w > b.w; });

    std::vector<int> budget(kNumOpKinds, g.num_ops());
    if (params.stop_at_constraint)
      for (int k = 0; k < kNumOpKinds; ++k)
        budget[k] = groups_of_kind(static_cast<OpKind>(k)) -
                    rc.limit(static_cast<OpKind>(k));

    std::vector<char> v_consumed(v_groups.size(), 0);
    for (const Merge& mg : merges) {
      Group& a = u_groups[mg.u];
      int& left = budget[op_kind_index(a.kind)];
      if (left <= 0) continue;
      --left;
      const Group& b = v_groups[mg.v];
      const bool flip = flip_choice[mg.u][mg.v] != 0;
      a.ops.insert(a.ops.end(), b.ops.begin(), b.ops.end());
      for (char f : b.flips)
        a.flips.push_back(static_cast<char>(flip ? !f : f));
      a.csteps = merged_sorted(a.csteps, b.csteps);
      a.regs_a = merged_sorted(a.regs_a, flip ? b.regs_b : b.regs_a);
      a.regs_b = merged_sorted(a.regs_b, flip ? b.regs_a : b.regs_b);
      v_consumed[mg.v] = 1;
    }
    std::vector<Group> remaining;
    remaining.reserve(v_groups.size());
    for (std::size_t j = 0; j < v_groups.size(); ++j)
      if (!v_consumed[j]) remaining.push_back(std::move(v_groups[j]));
    v_groups = std::move(remaining);
  }

  // Emit the FU binding: every surviving group is one allocated unit.
  result.fus.fu_of_op.assign(g.num_ops(), -1);
  result.fus.flipped.assign(g.num_ops(), 0);
  auto emit = [&](const Group& gr) {
    const int f = result.fus.num_fus();
    result.fus.kind_of_fu.push_back(gr.kind);
    for (std::size_t k = 0; k < gr.ops.size(); ++k) {
      result.fus.fu_of_op[gr.ops[k]] = f;
      result.fus.flipped[gr.ops[k]] = gr.flips[k];
    }
  };
  for (const auto& gr : u_groups) emit(gr);
  for (const auto& gr : v_groups) emit(gr);
  result.fus.validate(g, s, rc);
  return result;
}

Binding bind_hlpower(const Cdfg& g, const Schedule& s,
                     const ResourceConstraint& rc, SaCache& cache,
                     const HlpowerParams& params, std::uint64_t reg_seed) {
  Binding b;
  b.regs = bind_registers(g, s, reg_seed);
  b.fus = bind_fus_hlpower(g, s, b.regs, rc, cache, params).fus;
  return b;
}

}  // namespace hlp
