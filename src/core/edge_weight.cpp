#include "core/edge_weight.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace hlp {

EdgeWeightBreakdown edge_weight(OpKind kind, int n_mux_a, int n_mux_b,
                                SaCache& cache,
                                const EdgeWeightParams& params) {
  HLP_REQUIRE(params.alpha >= 0.0 && params.alpha <= 1.0,
              "alpha must be in [0,1], got " << params.alpha);
  EdgeWeightBreakdown out;
  out.mux_a = n_mux_a;
  out.mux_b = n_mux_b;
  out.mux_diff = std::abs(n_mux_a - n_mux_b);
  out.sa = cache.switching_activity(kind, n_mux_a, n_mux_b);
  HLP_CHECK(out.sa > 0.0, "non-positive SA estimate");
  out.weight = params.alpha * (1.0 / out.sa) +
               (1.0 - params.alpha) *
                   (1.0 / ((out.mux_diff + 1) * params.beta(kind)));
  return out;
}

}  // namespace hlp
