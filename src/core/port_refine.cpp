#include "core/port_refine.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"

namespace hlp {
namespace {

// Eq. 4 cost of one FU's input stage: the inverse of the edge weight the
// binder would assign to this configuration (lower = better).
double fu_cost(OpKind kind, int n_a, int n_b, SaCache& cache,
               const EdgeWeightParams& params) {
  const auto w = edge_weight(kind, std::max(1, n_a), std::max(1, n_b), cache,
                             params);
  return 1.0 / w.weight;
}

}  // namespace

PortRefineResult refine_ports(const Cdfg& g, const RegisterBinding& regs,
                              const FuBinding& fus, SaCache& cache,
                              const EdgeWeightParams& params) {
  PortRefineResult r;
  r.fus = fus;
  if (r.fus.flipped.empty()) r.fus.flipped.assign(g.num_ops(), 0);

  const auto groups = r.fus.ops_of_fu(g);

  // Per-FU multisets of port source registers (flip-aware, updated live).
  std::vector<std::multiset<int>> port_a(r.fus.num_fus());
  std::vector<std::multiset<int>> port_b(r.fus.num_fus());
  for (int op = 0; op < g.num_ops(); ++op) {
    const int f = r.fus.fu_of_op[op];
    port_a[f].insert(r.fus.port_a_reg(g, regs, op));
    port_b[f].insert(r.fus.port_b_reg(g, regs, op));
  }
  auto distinct = [](const std::multiset<int>& ms) {
    int n = 0;
    for (auto it = ms.begin(); it != ms.end(); it = ms.upper_bound(*it)) ++n;
    return n;
  };
  auto cost_of = [&](int f) {
    return fu_cost(r.fus.kind_of_fu[f], distinct(port_a[f]),
                   distinct(port_b[f]), cache, params);
  };

  for (int f = 0; f < r.fus.num_fus(); ++f) r.cost_before += cost_of(f);

  bool changed = true;
  while (changed) {
    changed = false;
    ++r.passes;
    HLP_CHECK(r.passes <= g.num_ops() + 2, "port refinement diverged");
    for (int f = 0; f < r.fus.num_fus(); ++f) {
      for (int op : groups[f]) {
        const int ra = r.fus.port_a_reg(g, regs, op);
        const int rb = r.fus.port_b_reg(g, regs, op);
        if (ra == rb) continue;  // flip is a no-op
        const double before = cost_of(f);
        // Tentatively flip: move ra from A to B and rb from B to A.
        port_a[f].erase(port_a[f].find(ra));
        port_b[f].erase(port_b[f].find(rb));
        port_a[f].insert(rb);
        port_b[f].insert(ra);
        const double after = cost_of(f);
        if (after < before - 1e-12) {
          r.fus.flipped[op] ^= 1;
          ++r.flips_applied;
          changed = true;
        } else {
          // Revert.
          port_a[f].erase(port_a[f].find(rb));
          port_b[f].erase(port_b[f].find(ra));
          port_a[f].insert(ra);
          port_b[f].insert(rb);
        }
      }
    }
  }

  for (int f = 0; f < r.fus.num_fus(); ++f) r.cost_after += cost_of(f);
  return r;
}

}  // namespace hlp
