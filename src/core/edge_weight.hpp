// Edge-weight calculation for the HLPower bipartite graphs (Section 5.2.2,
// Equation 4):
//
//   w(e_ij) = alpha * 1/SA  +  (1 - alpha) * 1/((muxDiff + 1) * beta)
//
// SA is the glitch-aware switching activity of the partial datapath the
// merged node would instantiate (input muxes + FU, technology mapped);
// muxDiff is the absolute difference of the two input-mux sizes; beta
// scales the mux term to the magnitude of the SA term (empirically ~30 for
// adders and ~1000 for multipliers in the paper).
#pragma once

#include "cdfg/cdfg.hpp"
#include "power/sa_cache.hpp"

namespace hlp {

struct EdgeWeightParams {
  double alpha = 0.5;
  // The paper reports beta ~ 30 (add) and ~ 1000 (mult), tuned empirically
  // to *their* SA estimator's scale so the mux term is commensurate with
  // 1/SA. Our estimator's absolute SA values differ (different mapper and
  // module generators), so the same empirical calibration lands at larger
  // betas; bench/ablation_beta reproduces the sweep.
  double beta_add = 240.0;
  double beta_mult = 8000.0;

  double beta(OpKind k) const {
    return k == OpKind::kAdd ? beta_add : beta_mult;
  }
};

/// Ingredients of one candidate merge, exposed for tests and logging.
struct EdgeWeightBreakdown {
  int mux_a = 0;
  int mux_b = 0;
  int mux_diff = 0;
  double sa = 0.0;
  double weight = 0.0;
};

/// Evaluate Eq. 4 for a merged node needing an (n_mux_a, n_mux_b) input
/// stage on a `kind` FU. SA is looked up / computed through the cache.
EdgeWeightBreakdown edge_weight(OpKind kind, int n_mux_a, int n_mux_b,
                                SaCache& cache, const EdgeWeightParams& params);

}  // namespace hlp
