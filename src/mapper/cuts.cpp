#include "mapper/cuts.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/error.hpp"

namespace hlp {
namespace {

std::uint64_t signature_of(const std::vector<NetId>& leaves) {
  std::uint64_t sig = 0;
  for (NetId l : leaves) sig |= 1ull << (static_cast<unsigned>(l) % 64u);
  return sig;
}

// True when a's leaves are a subset of b's (a dominates b: any LUT that can
// be fed by b's leaves can be fed by a's).
bool subset_of(const Cut& a, const Cut& b) {
  if ((a.signature & ~b.signature) != 0) return false;
  return std::includes(b.leaves.begin(), b.leaves.end(), a.leaves.begin(),
                       a.leaves.end());
}

// Merge two sorted leaf sets; empty result when it would exceed k leaves.
std::vector<NetId> merge_leaves(const std::vector<NetId>& a,
                                const std::vector<NetId>& b, int k) {
  std::vector<NetId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  if (static_cast<int>(out.size()) > k) out.clear();
  return out;
}

}  // namespace

CutSet::CutSet(const Netlist& n, const CutParams& params) : params_(params) {
  HLP_REQUIRE(params.k >= 2 && params.k <= kMaxTtInputs,
              "K must be in [2," << kMaxTtInputs << "], got " << params.k);
  HLP_REQUIRE(params.max_cuts >= 2, "cut budget must be >= 2");
  cuts_.resize(n.num_nets());
  best_depth_.assign(n.num_nets(), 0);

  auto trivial = [](NetId net) {
    Cut c;
    c.leaves = {net};
    c.signature = signature_of(c.leaves);
    c.depth = 0;
    return c;
  };
  for (NetId net = 0; net < n.num_nets(); ++net)
    if (n.is_comb_source(net)) cuts_[net] = {trivial(net)};

  for (int gi : n.topo_gates()) {
    const Gate& g = n.gates()[gi];
    HLP_REQUIRE(static_cast<int>(g.ins.size()) <= params_.k,
                "gate '" << n.net_name(g.out) << "' has " << g.ins.size()
                         << " inputs; K=" << params_.k
                         << " mapping cannot cover it");
    const NetId root = g.out;
    std::vector<Cut> result;

    // Cross product of fanin cut sets, built input by input.
    std::vector<Cut> partial = {Cut{{}, 0, 0}};
    for (NetId in : g.ins) {
      HLP_CHECK(!cuts_[in].empty(),
                "fanin net '" << n.net_name(in) << "' has no cuts");
      std::vector<Cut> next;
      for (const Cut& p : partial) {
        for (const Cut& fc : cuts_[in]) {
          auto leaves = merge_leaves(p.leaves, fc.leaves, params_.k);
          if (leaves.empty() && !(p.leaves.empty() && fc.leaves.empty()))
            continue;
          Cut c;
          c.signature = signature_of(leaves);
          c.leaves = std::move(leaves);
          // Depth of a cut: 1 + max over leaves of their best depth.
          int d = 0;
          for (NetId l : c.leaves) d = std::max(d, best_depth_[l]);
          c.depth = d + 1;
          next.push_back(std::move(c));
        }
      }
      partial = std::move(next);
      if (partial.empty()) break;
    }

    // Dominance filter + priority pruning.
    std::sort(partial.begin(), partial.end(), [](const Cut& a, const Cut& b) {
      if (a.depth != b.depth) return a.depth < b.depth;
      return a.leaves.size() < b.leaves.size();
    });
    for (auto& c : partial) {
      bool dominated = false;
      for (const Cut& kept : result)
        if (subset_of(kept, c)) {
          dominated = true;
          break;
        }
      if (!dominated) result.push_back(std::move(c));
      if (static_cast<int>(result.size()) >= params_.max_cuts - 1) break;
    }
    // Always keep the trivial cut so larger cuts above can end here.
    result.push_back(trivial(root));
    best_depth_[root] = result.front().depth;
    cuts_[root] = std::move(result);
  }
}

const std::vector<Cut>& CutSet::cuts_of(NetId n) const {
  HLP_CHECK(n >= 0 && n < static_cast<NetId>(cuts_.size()), "net out of range");
  HLP_CHECK(!cuts_[n].empty(), "net " << n << " has no cuts (undriven?)");
  return cuts_[n];
}

int CutSet::best_depth(NetId n) const {
  HLP_CHECK(n >= 0 && n < static_cast<NetId>(best_depth_.size()),
            "net out of range");
  return best_depth_[n];
}

TruthTable cut_function(const Netlist& n, NetId root,
                        const std::vector<NetId>& leaves) {
  HLP_REQUIRE(static_cast<int>(leaves.size()) <= kMaxTtInputs,
              "cut has " << leaves.size() << " leaves, max " << kMaxTtInputs);
  const int k = static_cast<int>(leaves.size());
  // Truth table of each net over the leaf variables, computed bottom-up.
  std::unordered_map<NetId, std::uint64_t> tt;
  const std::uint64_t full_mask =
      k == 6 ? ~0ull : ((1ull << (1u << k)) - 1ull);
  for (int j = 0; j < k; ++j) {
    // Projection of variable j: bit m is ((m >> j) & 1).
    std::uint64_t proj = 0;
    for (std::uint32_t m = 0; m < (1u << k); ++m)
      if ((m >> j) & 1u) proj |= 1ull << m;
    tt[leaves[j]] = proj;
  }
  auto eval = [&](auto&& self, NetId net) -> std::uint64_t {
    auto it = tt.find(net);
    if (it != tt.end()) return it->second;
    const int gi = n.driver_gate(net);
    HLP_REQUIRE(gi >= 0, "cut of '" << n.net_name(root)
                                    << "' does not cover source net '"
                                    << n.net_name(net) << "'");
    const Gate& g = n.gates()[gi];
    std::vector<std::uint64_t> in_tts;
    in_tts.reserve(g.ins.size());
    for (NetId in : g.ins) in_tts.push_back(self(self, in));
    std::uint64_t out = 0;
    for (std::uint32_t m = 0; m < (1u << k); ++m) {
      std::uint32_t gate_minterm = 0;
      for (std::size_t j = 0; j < in_tts.size(); ++j)
        if ((in_tts[j] >> m) & 1ull) gate_minterm |= 1u << j;
      if (g.tt.eval(gate_minterm)) out |= 1ull << m;
    }
    out &= full_mask;
    tt.emplace(net, out);
    return out;
  };
  return TruthTable(k, eval(eval, root));
}

}  // namespace hlp
