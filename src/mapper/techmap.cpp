#include "mapper/techmap.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "power/activity.hpp"

namespace hlp {
namespace {

// Chosen cut index per net (into the CutSet's list), -1 when not selected.
struct Selection {
  std::vector<int> cut_of_net;
};

// Select cuts per the mapping mode. Trivial self-cuts are never selected
// for gate-driven nets (a node cannot implement itself).
Selection select_cuts(const Netlist& n, const CutSet& cuts, MapMode mode) {
  Selection sel;
  sel.cut_of_net.assign(n.num_nets(), -1);

  const auto fanout = n.fanout_counts();

  // Area flow per net (kArea) / timed signal per net (kGlitchSa), built in
  // topo order assuming each net is implemented with its chosen cut.
  std::vector<double> area_flow(n.num_nets(), 0.0);
  std::vector<TimedSignal> signal(n.num_nets());
  for (NetId net = 0; net < n.num_nets(); ++net)
    if (n.is_comb_source(net)) signal[net] = TimedSignal::source();

  for (int gi : n.topo_gates()) {
    const NetId root = n.gates()[gi].out;
    const auto& candidates = cuts.cuts_of(root);
    int best = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    int best_depth = std::numeric_limits<int>::max();
    std::size_t best_size = 0;
    TimedSignal best_signal;

    // Depth slack for SA/area modes: allow one extra level over the
    // depth-optimal choice, the usual quality/latency compromise.
    const int depth_cap = cuts.best_depth(root) + (mode == MapMode::kDepth ? 0 : 1);

    for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
      const Cut& c = candidates[ci];
      if (c.is_trivial(root)) continue;
      int depth = 0;
      for (NetId l : c.leaves) depth = std::max(depth, cuts.best_depth(l));
      depth += 1;
      if (depth > depth_cap) continue;

      double cost = 0.0;
      TimedSignal sig;
      switch (mode) {
        case MapMode::kDepth:
          cost = depth * 1000.0 + static_cast<double>(c.leaves.size());
          break;
        case MapMode::kArea: {
          double af = 1.0;
          for (NetId l : c.leaves) af += area_flow[l];
          cost = af;
          break;
        }
        case MapMode::kGlitchSa: {
          const TruthTable tt = cut_function(n, root, c.leaves);
          std::vector<const TimedSignal*> leaves;
          leaves.reserve(c.leaves.size());
          for (NetId l : c.leaves) leaves.push_back(&signal[l]);
          sig = propagate_lut(tt, leaves);
          cost = sig.total_activity();
          break;
        }
      }
      const bool better =
          cost < best_cost - 1e-12 ||
          (cost < best_cost + 1e-12 &&
           (depth < best_depth ||
            (depth == best_depth && c.leaves.size() < best_size)));
      if (best < 0 || better) {
        best = static_cast<int>(ci);
        best_cost = cost;
        best_depth = depth;
        best_size = c.leaves.size();
        best_signal = std::move(sig);
      }
    }
    HLP_CHECK(best >= 0, "no implementable cut for net '" << n.net_name(root)
                                                          << "'");
    sel.cut_of_net[root] = best;

    const Cut& chosen = candidates[best];
    if (mode == MapMode::kArea) {
      double af = 1.0;
      for (NetId l : chosen.leaves) af += area_flow[l];
      area_flow[root] = af / std::max(1, fanout[root]);
    } else if (mode == MapMode::kGlitchSa) {
      signal[root] = std::move(best_signal);
    }
  }
  return sel;
}

}  // namespace

MapResult tech_map(const Netlist& n, const MapParams& params) {
  n.validate();
  const CutSet cuts(n, params.cuts);
  const Selection sel = select_cuts(n, cuts, params.mode);

  MapResult result;
  Netlist& out = result.lut_netlist;
  out.set_name(n.name() + "_mapped");

  // Mark required nets: POs and latch D pins seed the cover; chosen cuts
  // pull in their leaves.
  std::vector<char> required(n.num_nets(), 0);
  std::vector<NetId> work;
  auto require = [&](NetId net) {
    if (!required[net]) {
      required[net] = 1;
      work.push_back(net);
    }
  };
  for (NetId o : n.outputs()) require(o);
  for (const auto& l : n.latches()) require(l.d);
  while (!work.empty()) {
    const NetId net = work.back();
    work.pop_back();
    if (n.is_comb_source(net)) continue;
    const int ci = sel.cut_of_net[net];
    HLP_CHECK(ci >= 0, "required net '" << n.net_name(net) << "' unmapped");
    for (NetId l : cuts.cuts_of(net)[ci].leaves) require(l);
  }

  // Materialise nets: PIs and latch Qs always exist; other required nets
  // keep their names.
  std::vector<NetId> net_map(n.num_nets(), kNoNet);
  for (NetId i : n.inputs()) net_map[i] = out.add_input(n.net_name(i));
  for (const auto& l : n.latches()) net_map[l.q] = out.add_net(n.net_name(l.q));
  for (NetId net = 0; net < n.num_nets(); ++net)
    if (required[net] && net_map[net] == kNoNet)
      net_map[net] = out.add_net(n.net_name(net));

  // Emit LUTs in topological order of the original netlist.
  for (int gi : n.topo_gates()) {
    const NetId root = n.gates()[gi].out;
    if (!required[root] || n.is_comb_source(root)) continue;
    const Cut& c = cuts.cuts_of(root)[sel.cut_of_net[root]];
    const TruthTable tt = cut_function(n, root, c.leaves);
    std::vector<NetId> ins;
    ins.reserve(c.leaves.size());
    for (NetId l : c.leaves) {
      HLP_CHECK(net_map[l] != kNoNet, "leaf not materialised");
      ins.push_back(net_map[l]);
    }
    out.add_gate(net_map[root], std::move(ins), tt);
  }

  for (const auto& l : n.latches()) out.add_latch(net_map[l.q], net_map[l.d]);
  for (NetId o : n.outputs()) out.add_output(net_map[o]);
  out.validate();

  result.num_luts = out.num_gates();
  result.depth = out.depth();
  return result;
}

}  // namespace hlp
