// K-feasible cut enumeration (Cong, Wu, Ding — FPGA'99 "cut ranking and
// pruning"), the substrate of the FPGA technology mapper in GlitchMap [6],
// which the paper's switching-activity estimator is derived from.
//
// A cut of net n is a set of "leaf" nets that together cover every path
// from the combinational sources to n. Cuts with at most K leaves can be
// implemented as a single K-input LUT. Enumeration merges fanin cut sets at
// every gate; per-node cut lists are pruned to a fixed budget, keeping the
// trivial cut plus the best cuts by (size, depth).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/truth_table.hpp"

namespace hlp {

/// A cut: sorted leaf net ids plus a 64-bit subset signature for fast
/// dominance filtering.
struct Cut {
  std::vector<NetId> leaves;
  std::uint64_t signature = 0;
  /// Unit-delay depth of the cut's root when this cut is chosen and leaves
  /// are implemented at their own best depth (filled by enumeration).
  int depth = 0;

  bool is_trivial(NetId root) const {
    return leaves.size() == 1 && leaves[0] == root;
  }
};

struct CutParams {
  int k = 4;             // LUT input count (Cyclone II: 4)
  int max_cuts = 12;     // per-node priority list budget
};

/// All-node cut sets, indexed by net id. Only gate-driven nets get
/// non-trivial cuts; sources hold just their trivial cut.
class CutSet {
 public:
  CutSet(const Netlist& n, const CutParams& params);

  const std::vector<Cut>& cuts_of(NetId n) const;
  const CutParams& params() const { return params_; }

  /// Best (minimum) achievable depth of each net under the cut budget.
  int best_depth(NetId n) const;

 private:
  CutParams params_;
  std::vector<std::vector<Cut>> cuts_;
  std::vector<int> best_depth_;
};

/// Truth table of `root` expressed over `leaves` (must be a valid cut of
/// root with <= kMaxTtInputs leaves). Computed by composing gate functions.
TruthTable cut_function(const Netlist& n, NetId root,
                        const std::vector<NetId>& leaves);

}  // namespace hlp
