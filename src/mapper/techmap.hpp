// K-LUT technology mapping.
//
// Reproduces the mapper role of GlitchMap [6]: select one cut per net so the
// chosen LUTs cover the netlist, then extract the LUT network. Three cut
// selection modes:
//   kDepth  — minimise arrival time (classic depth-oriented mapping)
//   kArea   — area-flow selection with depth tie-break
//   kGlitchSa — minimise the glitch-aware switching activity of each node's
//               cut (the paper's estimator, Section 4), with depth tie-break;
//               this is what HLPower's SA numbers are computed on.
//
// The mapped result is itself a Netlist whose gates are K-input LUTs, so
// timing, simulation and power analysis all run on it unchanged.
#pragma once

#include "mapper/cuts.hpp"
#include "netlist/netlist.hpp"

namespace hlp {

enum class MapMode { kDepth, kArea, kGlitchSa };

struct MapParams {
  CutParams cuts;
  MapMode mode = MapMode::kGlitchSa;
};

/// Result of mapping: the LUT netlist plus summary statistics.
struct MapResult {
  Netlist lut_netlist{"mapped"};
  int num_luts = 0;
  int depth = 0;  // LUT levels on the critical path
};

/// Map `n` to K-LUTs. The source netlist may contain latches; latch Q/D
/// boundaries are preserved (each latch survives into the mapped netlist).
MapResult tech_map(const Netlist& n, const MapParams& params = {});

}  // namespace hlp
