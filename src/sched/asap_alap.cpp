#include "sched/asap_alap.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hlp {

Schedule asap_schedule(const Cdfg& g) {
  Schedule s;
  s.cstep_of_op.assign(g.num_ops(), 0);
  for (int i = 0; i < g.num_ops(); ++i) {
    auto ready = [&](ValueRef v) {
      return v.is_op() ? s.cstep_of_op[v.index] + 1 : 0;
    };
    s.cstep_of_op[i] = std::max(ready(g.op(i).lhs), ready(g.op(i).rhs));
    s.num_steps = std::max(s.num_steps, s.cstep_of_op[i] + 1);
  }
  if (g.num_ops() == 0) s.num_steps = 1;
  return s;
}

Schedule alap_schedule(const Cdfg& g, int latency) {
  HLP_REQUIRE(latency >= g.depth(),
              "latency " << latency << " below CDFG depth " << g.depth());
  Schedule s;
  s.num_steps = latency;
  s.cstep_of_op.assign(g.num_ops(), latency - 1);
  // Walk in reverse topological (creation) order, pulling producers earlier.
  for (int i = g.num_ops() - 1; i >= 0; --i) {
    auto constrain = [&](ValueRef v, int consumer_step) {
      if (v.is_op())
        s.cstep_of_op[v.index] =
            std::min(s.cstep_of_op[v.index], consumer_step - 1);
    };
    constrain(g.op(i).lhs, s.cstep_of_op[i]);
    constrain(g.op(i).rhs, s.cstep_of_op[i]);
  }
  s.validate(g);
  return s;
}

}  // namespace hlp
