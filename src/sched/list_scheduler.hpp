// Resource-constrained list scheduler.
//
// Produces the scheduled CDFGs consumed by both binders (the paper uses
// identical schedules for LOPASS and HLPower — Table 2). Priority is ALAP
// slack (most urgent first), the classic latency-oriented heuristic.
#pragma once

#include "cdfg/cdfg.hpp"
#include "sched/schedule.hpp"

namespace hlp {

/// List-schedule `g` under `rc`. The resulting schedule satisfies
/// validate_resources(g, rc.as_vector()).
///
/// `min_latency` optionally stretches the schedule to at least that many
/// steps (the paper reports fixed cycle counts per benchmark; scheduling
/// under the Table 2 constraints reproduces them approximately).
Schedule list_schedule(const Cdfg& g, const ResourceConstraint& rc,
                       int min_latency = 0);

}  // namespace hlp
