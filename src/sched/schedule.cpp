#include "sched/schedule.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hlp {

std::vector<std::vector<int>> Schedule::occupancy(const Cdfg& g) const {
  std::vector<std::vector<int>> occ(kNumOpKinds,
                                    std::vector<int>(num_steps, 0));
  for (int i = 0; i < g.num_ops(); ++i)
    ++occ[op_kind_index(g.op(i).kind)][cstep_of_op[i]];
  return occ;
}

int Schedule::max_density(const Cdfg& g, OpKind kind) const {
  const auto occ = occupancy(g);
  const auto& row = occ[op_kind_index(kind)];
  return row.empty() ? 0 : *std::max_element(row.begin(), row.end());
}

std::vector<int> Schedule::densest_step_ops(const Cdfg& g, OpKind kind) const {
  const auto occ = occupancy(g);
  const auto& row = occ[op_kind_index(kind)];
  if (row.empty()) return {};
  const int best =
      static_cast<int>(std::max_element(row.begin(), row.end()) - row.begin());
  std::vector<int> ops;
  for (int i = 0; i < g.num_ops(); ++i)
    if (g.op(i).kind == kind && cstep_of_op[i] == best) ops.push_back(i);
  return ops;
}

void Schedule::validate(const Cdfg& g) const {
  HLP_CHECK(static_cast<int>(cstep_of_op.size()) == g.num_ops(),
            "schedule covers " << cstep_of_op.size() << " ops, CDFG has "
                               << g.num_ops());
  for (int i = 0; i < g.num_ops(); ++i) {
    const int s = cstep_of_op[i];
    HLP_CHECK(s >= 0 && s < num_steps,
              "op " << g.op(i).name << " scheduled at step " << s
                    << ", valid range [0," << num_steps << ")");
    auto check_dep = [&](ValueRef v) {
      if (!v.is_op()) return;
      HLP_CHECK(cstep_of_op[v.index] < s,
                "precedence violated: " << g.op(v.index).name << " (step "
                                        << cstep_of_op[v.index] << ") feeds "
                                        << g.op(i).name << " (step " << s
                                        << ")");
    };
    check_dep(g.op(i).lhs);
    check_dep(g.op(i).rhs);
  }
}

void Schedule::validate_resources(const Cdfg& g,
                                  const std::vector<int>& limit) const {
  validate(g);
  HLP_CHECK(static_cast<int>(limit.size()) == kNumOpKinds,
            "limit vector must have " << kNumOpKinds << " entries");
  const auto occ = occupancy(g);
  for (int k = 0; k < kNumOpKinds; ++k)
    for (int s = 0; s < num_steps; ++s)
      HLP_CHECK(occ[k][s] <= limit[k],
                "resource constraint violated: " << occ[k][s] << " "
                    << to_string(static_cast<OpKind>(k)) << " ops in step "
                    << s << ", limit " << limit[k]);
}

}  // namespace hlp
