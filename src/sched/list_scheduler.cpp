#include "sched/list_scheduler.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "sched/asap_alap.hpp"

namespace hlp {

Schedule list_schedule(const Cdfg& g, const ResourceConstraint& rc,
                       int min_latency) {
  HLP_REQUIRE(rc.adders >= 1 || g.num_ops_of_kind(OpKind::kAdd) == 0,
              "need at least one adder");
  HLP_REQUIRE(rc.multipliers >= 1 || g.num_ops_of_kind(OpKind::kMult) == 0,
              "need at least one multiplier");

  const int n = g.num_ops();
  Schedule out;
  out.cstep_of_op.assign(n, -1);
  if (n == 0) {
    out.num_steps = std::max(1, min_latency);
    return out;
  }

  // Urgency: ALAP step under a generous latency bound; smaller = schedule
  // earlier. The bound only affects tie-breaking, not feasibility.
  const int bound = g.depth() + n;
  const Schedule alap = alap_schedule(g, bound);

  std::vector<int> remaining_deps(n, 0);
  auto consumers = g.op_consumers();
  for (int i = 0; i < n; ++i) {
    if (g.op(i).lhs.is_op()) ++remaining_deps[i];
    if (g.op(i).rhs.is_op()) ++remaining_deps[i];
    // An op reading the same op-value twice has two dep edges but one
    // producer; collapse.
    if (g.op(i).lhs.is_op() && g.op(i).lhs == g.op(i).rhs)
      remaining_deps[i] = 1;
  }

  std::vector<int> ready;
  for (int i = 0; i < n; ++i)
    if (remaining_deps[i] == 0) ready.push_back(i);

  int scheduled = 0;
  int step = 0;
  while (scheduled < n) {
    HLP_CHECK(step <= bound + 1, "list scheduler failed to converge");
    // Most urgent first.
    std::sort(ready.begin(), ready.end(), [&](int a, int b) {
      if (alap.cstep_of_op[a] != alap.cstep_of_op[b])
        return alap.cstep_of_op[a] < alap.cstep_of_op[b];
      return a < b;
    });
    std::vector<int> budget = rc.as_vector();
    std::vector<int> deferred;
    std::vector<int> placed;
    for (int op : ready) {
      int& slots = budget[op_kind_index(g.op(op).kind)];
      if (slots > 0) {
        --slots;
        out.cstep_of_op[op] = step;
        placed.push_back(op);
        ++scheduled;
      } else {
        deferred.push_back(op);
      }
    }
    ready = std::move(deferred);
    // Results become visible at step+1: release dependents. A consumer
    // reading the same value on both ports appears twice in the consumer
    // list but holds a single (collapsed) dependency — decrement once.
    for (int op : placed) {
      const auto op_value_id = g.num_inputs() + op;
      int prev = -1;
      auto dupes = consumers[op_value_id];
      std::sort(dupes.begin(), dupes.end());
      for (int c : dupes) {
        if (c == prev) continue;
        prev = c;
        if (--remaining_deps[c] == 0) ready.push_back(c);
      }
    }
    ++step;
  }
  out.num_steps = std::max(step, min_latency);
  out.validate_resources(g, rc.as_vector());
  return out;
}

}  // namespace hlp
