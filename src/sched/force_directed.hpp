// Force-directed scheduling (Paulin & Knight), resource-minimising variant.
//
// The paper's evaluation fixes the schedule (both binders consume the same
// one), but a complete HLS binding library needs more than one scheduler:
// force-directed scheduling smooths the per-step operation distribution
// under a latency constraint, which *reduces the max density* — and the
// max density is exactly the allocation lower bound HLPower binds to
// (Theorem 1). Pairing this scheduler with HLPower reproduces the paper's
// "integrate into a complete high-level synthesis algorithm" future-work
// direction.
//
// Classic formulation: every op has a time frame [ASAP, ALAP]; the
// distribution graph DG_k(t) sums, per op kind, the uniform probability of
// each op executing at step t. Scheduling an op at step t changes the
// "force" = sum over its (shrunk) frame of DG values; ops are committed
// one at a time to the minimum-force step, updating frames of dependents.
#pragma once

#include "cdfg/cdfg.hpp"
#include "sched/schedule.hpp"

namespace hlp {

/// Force-directed schedule under a latency bound (>= CDFG depth).
/// Resource usage is balanced, not constrained; read the resulting
/// max_density() to obtain the allocation it implies.
Schedule force_directed_schedule(const Cdfg& g, int latency);

}  // namespace hlp
