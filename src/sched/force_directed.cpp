#include "sched/force_directed.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "sched/asap_alap.hpp"

namespace hlp {
namespace {

struct Frames {
  std::vector<int> lo;  // earliest feasible step per op
  std::vector<int> hi;  // latest feasible step per op
};

// Distribution graphs: expected occupancy per (kind, step) assuming each
// op executes uniformly within its frame.
std::vector<std::vector<double>> distribution(const Cdfg& g, const Frames& f,
                                              int latency) {
  std::vector<std::vector<double>> dg(kNumOpKinds,
                                      std::vector<double>(latency, 0.0));
  for (int op = 0; op < g.num_ops(); ++op) {
    const int width = f.hi[op] - f.lo[op] + 1;
    const double p = 1.0 / width;
    for (int t = f.lo[op]; t <= f.hi[op]; ++t)
      dg[op_kind_index(g.op(op).kind)][t] += p;
  }
  return dg;
}

// Self force of committing `op` to step t: DG delta over its frame.
double self_force(const std::vector<double>& dg_row, const Frames& f, int op,
                  int t) {
  const int width = f.hi[op] - f.lo[op] + 1;
  double force = dg_row[t];
  for (int s = f.lo[op]; s <= f.hi[op]; ++s) force -= dg_row[s] / width;
  return force;
}

}  // namespace

Schedule force_directed_schedule(const Cdfg& g, int latency) {
  HLP_REQUIRE(latency >= g.depth(),
              "latency " << latency << " below CDFG depth " << g.depth());
  const int n = g.num_ops();
  Schedule out;
  out.num_steps = latency;
  out.cstep_of_op.assign(n, -1);
  if (n == 0) return out;

  const Schedule asap = asap_schedule(g);
  const Schedule alap = alap_schedule(g, latency);
  Frames f{asap.cstep_of_op, alap.cstep_of_op};
  const auto consumers = g.op_consumers();

  // Commit ops one at a time: pick the unscheduled op/step pair with the
  // lowest self force (ties: narrower frame first, then lower op id).
  std::vector<char> done(n, 0);
  for (int committed = 0; committed < n; ++committed) {
    const auto dg = distribution(g, f, latency);
    int best_op = -1, best_step = -1;
    double best_force = std::numeric_limits<double>::infinity();
    int best_width = std::numeric_limits<int>::max();
    for (int op = 0; op < n; ++op) {
      if (done[op]) continue;
      const auto& row = dg[op_kind_index(g.op(op).kind)];
      for (int t = f.lo[op]; t <= f.hi[op]; ++t) {
        const double force = self_force(row, f, op, t);
        const int width = f.hi[op] - f.lo[op] + 1;
        if (force < best_force - 1e-12 ||
            (force < best_force + 1e-12 &&
             (width < best_width || (width == best_width && op < best_op)))) {
          best_force = force;
          best_op = op;
          best_step = t;
          best_width = width;
        }
      }
    }
    HLP_CHECK(best_op >= 0, "no schedulable op found");
    done[best_op] = 1;
    f.lo[best_op] = f.hi[best_op] = best_step;
    out.cstep_of_op[best_op] = best_step;

    // Propagate frame shrinkage: successors cannot start before
    // best_step+1; predecessors must finish before best_step.
    // One relaxation pass per commit is sufficient because frames only
    // tighten monotonically.
    bool changed = true;
    while (changed) {
      changed = false;
      for (int op = 0; op < n; ++op) {
        auto tighten_lo = [&](ValueRef v) {
          if (!v.is_op()) return;
          const int need = f.lo[v.index] + 1;
          if (f.lo[op] < need) {
            f.lo[op] = need;
            changed = true;
          }
        };
        tighten_lo(g.op(op).lhs);
        tighten_lo(g.op(op).rhs);
        const int value = g.num_inputs() + op;
        for (int c : consumers[value]) {
          if (f.hi[op] > f.hi[c] - 1) {
            f.hi[op] = f.hi[c] - 1;
            changed = true;
          }
        }
        HLP_CHECK(f.lo[op] <= f.hi[op], "frame collapsed for op " << op);
      }
    }
  }
  out.validate(g);
  return out;
}

}  // namespace hlp
