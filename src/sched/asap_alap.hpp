// Unconstrained ASAP / ALAP schedules — used to seed the list scheduler's
// priority function and as property-test oracles.
#pragma once

#include "cdfg/cdfg.hpp"
#include "sched/schedule.hpp"

namespace hlp {

/// As-soon-as-possible schedule (no resource limits). num_steps equals the
/// CDFG depth.
Schedule asap_schedule(const Cdfg& g);

/// As-late-as-possible schedule for a given latency (must be >= CDFG depth;
/// throws otherwise).
Schedule alap_schedule(const Cdfg& g, int latency);

}  // namespace hlp
