// Schedule representation and validation.
//
// The paper's binding input is a *scheduled* CDFG over single-cycle
// resources: an operation scheduled in control step s reads its operands
// from registers at the start of s and writes its result at the end of s,
// so a consumer must be scheduled at step >= s+1. Primary inputs are
// available from step 0.
#pragma once

#include <vector>

#include "cdfg/cdfg.hpp"

namespace hlp {

/// A schedule: control step per operation, plus the total step count.
struct Schedule {
  std::vector<int> cstep_of_op;  // indexed by op id, values in [0, num_steps)
  int num_steps = 0;

  int cstep(int op) const { return cstep_of_op.at(op); }

  /// Ops per (kind, cstep) occupancy matrix.
  std::vector<std::vector<int>> occupancy(const Cdfg& g) const;

  /// Maximum number of concurrent ops of `kind` over all csteps — the lower
  /// bound on the resource allocation (Theorem 1's selection criterion).
  int max_density(const Cdfg& g, OpKind kind) const;

  /// Ops of `kind` in the (first) control step achieving max density.
  std::vector<int> densest_step_ops(const Cdfg& g, OpKind kind) const;

  /// Throws hlp::Error if precedence or range constraints are violated.
  void validate(const Cdfg& g) const;

  /// Validate and additionally check per-step resource usage against
  /// `limit[kind]` (indexed by op_kind_index).
  void validate_resources(const Cdfg& g, const std::vector<int>& limit) const;
};

/// Per-kind resource constraint (allocation limit).
struct ResourceConstraint {
  int adders = 0;
  int multipliers = 0;

  int limit(OpKind k) const {
    return k == OpKind::kAdd ? adders : multipliers;
  }
  std::vector<int> as_vector() const { return {adders, multipliers}; }
};

}  // namespace hlp
