// Glitch-aware switching-activity estimation (Section 4 of the paper,
// derived from GlitchMap [6]).
//
// Under the unit-delay model each LUT output can only change at discrete
// times 1, 2, ..., D where D is the node's depth. A signal is therefore a
// *timed waveform*: a static probability plus a switching activity per
// discrete transition time. The transition at t = D is the functional
// transition; transitions at earlier times are glitches.
//
// Propagation: a LUT output acquires a transition at time t+1 for every
// time t at which at least one of its cut leaves transitions; the activity
// of that transition is the Chou-Roy simultaneous-switching activity
// (Eq. 2) evaluated with the per-leaf activities *at time t* (leaves quiet
// at t contribute activity 0). The effective SA of a node is the sum over
// its transition times, and the netlist SA (Eq. 3) sums over all nodes.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/truth_table.hpp"
#include "sim/bit_sim.hpp"

namespace hlp {

/// A probabilistic timed signal: static probability + (time, activity)
/// waveform, sorted by time, plus the functional transition time.
struct TimedSignal {
  double prob = 0.5;
  int functional_time = 0;
  std::vector<std::pair<int, double>> acts;  // sorted, unique times

  /// Activity at an exact time (0 when the signal is quiet then).
  double activity_at(int t) const;
  /// Effective SA: sum over all transition times.
  double total_activity() const;
  /// SA from glitches only (everything except the functional transition).
  double glitch_activity() const;
  /// Latest transition time (0 for quiet signals).
  int last_time() const;

  /// A combinational source (PI / register output): the paper assumes
  /// probability and activity 0.5 at time 0.
  static TimedSignal source(double prob = 0.5, double activity = 0.5);
};

/// Propagate leaf waveforms through one LUT (function `tt` over the leaves,
/// in order). Output transitions land one unit after each leaf transition.
TimedSignal propagate_lut(const TruthTable& tt,
                          const std::vector<const TimedSignal*>& leaves);

/// Whole-netlist glitch-aware estimation: every gate is treated as one
/// mapped LUT node (run this on a tech-mapped netlist for paper-faithful
/// numbers). Sources are PIs and latch outputs.
struct ActivityResult {
  std::vector<TimedSignal> signals;  // per net
  double total_sa = 0.0;             // Eq. (3)
  double functional_sa = 0.0;
  double glitch_sa = 0.0;
};

ActivityResult estimate_activity(const Netlist& n);

/// Zero-delay (glitch-blind) variant: all transitions collapse to a single
/// event per node, the classic Najm/Chou-Roy propagation. This is the
/// estimator quality LOPASS had available.
ActivityResult estimate_activity_zero_delay(const Netlist& n);

/// Monte-Carlo switching activity: drive `num_vectors` random frames
/// through the unit-delay simulation engine (batched bit-parallel by
/// default; the scalar engine is the reference oracle) and read per-net
/// transitions per cycle. The empirical counterpart of estimate_activity,
/// with the same total/functional/glitch decomposition.
struct SimActivityResult {
  std::vector<double> sa;  // per net: unit-delay transitions per cycle
  double total_sa = 0.0;
  double functional_sa = 0.0;
  double glitch_sa = 0.0;
  CycleSimStats stats;  // the raw counts behind the averages
  /// Echo of what actually ran, so a result is self-describing after the
  /// call site's knobs are out of scope (and so convergence studies can
  /// divide by the cycle count the engine really simulated, not the one
  /// the caller asked for).
  int vectors_used = 0;          // == stats.num_cycles
  std::uint64_t seed = 0;        // stimulus seed the frames were drawn with
  SimEngine engine = SimEngine::kBatched;  // engine that produced `stats`
};

SimActivityResult simulate_activity(const Netlist& n, int num_vectors,
                                    std::uint64_t seed,
                                    SimEngine engine = SimEngine::kBatched);

}  // namespace hlp
