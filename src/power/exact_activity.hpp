// Exact switching activity via per-cone BDDs (the ROADMAP's
// "BDDs/#SAT, hybridised with simulation" item, in the style of esta's
// SharpSatBddEvaluator).
//
// Model: one clock cycle of the unit-delay simulator under *independent
// uniform sources* — every combinational source (primary input or latch
// Q) draws its previous-cycle and current-cycle values independently and
// uniformly. Each source therefore contributes two BDD variables,
// interleaved by source rank (prev at 2r, curr at 2r+1). Over those
// variables the engine builds, per net x, the full unit-delay settle
// trajectory as BDDs:
//
//   V(x, -1) = settled value under the previous frame
//   V(s, t)  = curr_s for t >= 0                      (sources commit at 0)
//   V(g, t)  = f_g(V(ins, t-1)) for t >= 0            (Jacobi step)
//
// which stabilises at the net's support-reduced logic level L. The engine
// then reads off *analytically* exactly what the simulator counts
// empirically:
//
//   sa[x]         = sum over t of P[V(x,t) != V(x,t-1)]   (all transitions,
//                   glitches included; sources toggle at t = 0 with
//                   probability 1/2)
//   functional[x] = P[V(x,L) != V(x,-1)]                  (settled change)
//
// Each probability is a BDD density — P[f] = (P[f|var=0] + P[f|var=1])/2
// down to the terminals — so the numbers carry no seed, no variance and
// no vector count. Every value is a dyadic rational; with a support of
// <= 16 transition variables the doubles are *bit-for-bit* equal to
// exhaustive enumeration (tests/exact_activity_test.cpp pins this).
//
// Budget and fallback: BDD sizes can explode (multiplier cones are the
// canonical offender). Construction of each net's trajectory is metered
// against a *marginal* node budget — nodes newly created while building
// that cone — and a cone that exceeds it is abandoned: the net (and,
// transitively, every net it feeds) is marked kSampled and its sa comes
// from ONE shared simulate_activity run over the fallback parameters.
// The result reports per net which engine answered, so a hybrid total is
// never mistaken for a fully exact one.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/bit_sim.hpp"

namespace hlp {

/// Which engine produced a net's activity value in an ExactActivityResult.
enum class ConeEngine : std::uint8_t {
  kExact,    // analytic BDD density
  kSampled,  // Monte-Carlo fallback (budget exceeded on this cone or an
             // upstream one)
};

/// Default HLP_EXACT_BUDGET: marginal BDD nodes per cone before the
/// Monte-Carlo fallback takes over. Sized so the linear-BDD structures
/// (adders, muxes, steering logic) stay exact at datapath widths while
/// multiplier cones — whose BDDs are exponential in width — fall back
/// quickly instead of stalling a sweep.
inline constexpr int kDefaultExactBudget = 20000;

struct ExactActivityOptions {
  /// Marginal BDD-node budget per cone (>= 1). A cone that allocates more
  /// than this many *new* unique nodes while its trajectory is built falls
  /// back to the sampler.
  int node_budget = kDefaultExactBudget;
  /// Parameters of the single shared simulate_activity fallback run (only
  /// executed if at least one cone blew the budget).
  int fallback_vectors = 256;
  std::uint64_t fallback_seed = 1;
  SimEngine fallback_engine = SimEngine::kBatched;
};

struct ExactActivityResult {
  /// Per net: expected unit-delay transitions per cycle. Exact nets carry
  /// the analytic density; sampled nets carry the fallback run's estimate.
  std::vector<double> sa;
  /// Per net: which engine produced sa[net].
  std::vector<ConeEngine> engine;
  /// Per net: P[settled value changes across the cycle]. Analytic for
  /// exact nets; 0 for sampled nets (the sampler has no per-net split).
  std::vector<double> functional;
  /// Per net: the combinational sources the net's (support-reduced) cone
  /// actually depends on, sorted by net id. This is what bounds the
  /// enumeration space: a net with s support sources ranges over 4^s
  /// (prev, curr) frame pairs.
  std::vector<std::vector<NetId>> support;

  /// Sum of sa over ALL nets (sources included, like
  /// CycleSimStats::total_transitions) — hybrid when fell_back.
  double total_sa = 0.0;
  /// Sums of the functional/glitch split over the EXACT nets only (the
  /// sampler cannot attribute per-net functional transitions).
  double functional_sa = 0.0;
  double glitch_sa = 0.0;

  bool fell_back = false;  // true iff any cone is kSampled
  int num_exact = 0;       // nets answered analytically
  int num_sampled = 0;     // nets answered by the fallback run
  std::size_t bdd_nodes = 0;  // unique BDD nodes created in total
};

/// Exact (budgeted-hybrid) switching activity of a netlist. Pure function
/// of (n, opt) — reads no environment; resolve HLP_EXACT_BUDGET with
/// exact_budget_from_env at the call site that owns the knob.
ExactActivityResult exact_activity(const Netlist& n,
                                   const ExactActivityOptions& opt = {});

}  // namespace hlp
