// Precalculated switching-activity table (Section 5.2.2).
//
// "As dynamic calculation of the switching activities for each edge during
// the binding iterations can be time consuming, in our experiments we
// precalculate the switching activities for all combinations of
// multiplexers and functional units... stored in a text file. A hash table
// is then generated when HLPower is initially run."
//
// SaCache computes, for a key (op kind, muxA size, muxB size), the SA of
// the 4-LUT-mapped partial datapath, memoises it, and can persist/reload
// the table as text. Three SA backends are supported (power/sa_mode.hpp):
// the paper's analytic glitch-aware estimator (kEstimated, the default),
// Monte-Carlo unit-delay simulation through the bit-parallel batch engine
// (kSimulated), and analytic per-cone BDD densities with a budgeted
// Monte-Carlo fallback (kExact, power/exact_activity.hpp). Because the
// backends produce different values, persisted tables are tagged with
// their mode and merge_from refuses cross-mode shards.
//
// The memo table is sharded by key hash (kNumShards independent mutex+map
// shards) so large ExperimentRunner fleets hammering the hot lookup path do
// not contend on a single lock. Miss counts stay exact via per-shard
// counters summed on read.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <unordered_map>

#include "cdfg/cdfg.hpp"
#include "mapper/techmap.hpp"
#include "power/sa_mode.hpp"

namespace hlp {

class SaCache {
 public:
  /// Number of independent mutex+map shards of the memo table.
  static constexpr int kNumShards = 16;

  /// `width`: datapath bit width; `map_params`: mapper configuration used
  /// for every partial datapath; `mode` selects the SA backend
  /// (kSimulated uses `sim_vectors` random frames from `sim_seed` through
  /// the batched unit-delay engine; kExact resolves its per-cone node
  /// budget from HLP_EXACT_BUDGET here, once, and reuses the same
  /// vectors/seed for its Monte-Carlo fallback on blown cones). The mode
  /// is fixed for the cache's life — callers resolving it from the
  /// environment should go through effective_sa_mode.
  explicit SaCache(int width = 8, MapParams map_params = {},
                   SaMode mode = SaMode::kEstimated, int sim_vectors = 256,
                   std::uint64_t sim_seed = 1);

  /// Glitch-aware SA for (kind, nA-input muxA, nB-input muxB); computed on
  /// demand and memoised. nA/nB >= 1 (1 = direct connection).
  ///
  /// Safe to call concurrently: each key maps to one of kNumShards
  /// mutex-guarded table shards, and the (deterministic) SA computation
  /// itself runs outside the lock so concurrent misses do not serialise.
  /// Two threads racing on the same cold key both compute the same value;
  /// exactly one insertion wins and is counted as the miss.
  double switching_activity(OpKind kind, int n_mux_a, int n_mux_b);

  /// Always-compute variant (ignores and does not touch the memo) — used to
  /// verify that precalculated and dynamic estimation agree (§5.2.2).
  double compute_uncached(OpKind kind, int n_mux_a, int n_mux_b) const;

  /// Precompute all combinations up to the given mux sizes (the paper's
  /// "all combinations" table).
  void precompute(int max_mux_a, int max_mux_b);

  /// Text persistence: "<kind> <nA> <nB> <sa>" per line, between a
  /// "# SaCache width=..." header and a "# end <count>" footer (the footer
  /// is what lets merge_from reject truncated shard files; load() treats
  /// both as comments, so older tables still load).
  void save(std::ostream& os) const;
  void load(std::istream& is);
  void save_file(const std::string& path) const;
  void load_file(const std::string& path);

  /// Merge a persisted table (save() output — e.g. a distributed worker's
  /// private SA shard) into this cache. Strict, unlike load(): the file
  /// must carry the header (whose width must match this cache, and whose
  /// mode — when present — must match this cache's mode; a header without
  /// a mode tag is a legacy estimate-mode table and only merges into a
  /// kEstimated cache) and the "# end <count>" footer with a matching
  /// entry count — a corrupt or truncated shard is rejected with an error
  /// naming the defect, and nothing is merged from a rejected file
  /// (entries are staged before insertion). Entries new to the table are inserted; entries already
  /// present must agree bit-exactly (every backend is deterministic, so a
  /// disagreement means the shard was produced by a different
  /// configuration) or the merge throws. Returns the number of newly
  /// inserted entries. Merged entries do not count as misses.
  std::size_t merge_from(std::istream& is, const std::string& what = "shard");
  std::size_t merge_from(const std::string& path);

  std::size_t size() const;
  int width() const { return width_; }
  SaMode mode() const { return mode_; }

  /// Number of cache misses (table insertions from on-demand computation) —
  /// used by the ablation bench to show the precalc speedup. Exact: summed
  /// over the per-shard counters.
  std::uint64_t misses() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, double> table;
    std::uint64_t misses = 0;
  };

  static std::uint64_t key(OpKind kind, int a, int b);
  Shard& shard_for(std::uint64_t key) const;

  int width_;
  MapParams map_params_;
  SaMode mode_;
  int sim_vectors_;
  std::uint64_t sim_seed_;
  int exact_budget_;  // kExact only: resolved from HLP_EXACT_BUDGET at ctor
  mutable std::array<Shard, kNumShards> shards_;
};

}  // namespace hlp
