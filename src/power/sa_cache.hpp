// Precalculated switching-activity table (Section 5.2.2).
//
// "As dynamic calculation of the switching activities for each edge during
// the binding iterations can be time consuming, in our experiments we
// precalculate the switching activities for all combinations of
// multiplexers and functional units... stored in a text file. A hash table
// is then generated when HLPower is initially run."
//
// SaCache computes, for a key (op kind, muxA size, muxB size), the
// glitch-aware SA of the 4-LUT-mapped partial datapath, memoises it, and
// can persist/reload the table as text.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <unordered_map>

#include "cdfg/cdfg.hpp"
#include "mapper/techmap.hpp"

namespace hlp {

class SaCache {
 public:
  /// `width`: datapath bit width; `map_params`: mapper configuration used
  /// for every partial datapath.
  explicit SaCache(int width = 8, MapParams map_params = {});

  /// Glitch-aware SA for (kind, nA-input muxA, nB-input muxB); computed on
  /// demand and memoised. nA/nB >= 1 (1 = direct connection).
  ///
  /// Safe to call concurrently: the memo table is mutex-guarded, and the
  /// (deterministic) SA computation itself runs outside the lock so
  /// concurrent misses on different keys do not serialise. Two threads
  /// racing on the same cold key both compute the same value; exactly one
  /// insertion wins and is counted as the miss.
  double switching_activity(OpKind kind, int n_mux_a, int n_mux_b);

  /// Always-compute variant (ignores and does not touch the memo) — used to
  /// verify that precalculated and dynamic estimation agree (§5.2.2).
  double compute_uncached(OpKind kind, int n_mux_a, int n_mux_b) const;

  /// Precompute all combinations up to the given mux sizes (the paper's
  /// "all combinations" table).
  void precompute(int max_mux_a, int max_mux_b);

  /// Text persistence: "<kind> <nA> <nB> <sa>" per line.
  void save(std::ostream& os) const;
  void load(std::istream& is);
  void save_file(const std::string& path) const;
  void load_file(const std::string& path);

  std::size_t size() const;
  int width() const { return width_; }

  /// Number of cache misses (table insertions from on-demand computation) —
  /// used by the ablation bench to show the precalc speedup.
  std::uint64_t misses() const;

 private:
  static std::uint64_t key(OpKind kind, int a, int b);

  int width_;
  MapParams map_params_;
  mutable std::mutex mu_;  // guards table_ and misses_
  std::unordered_map<std::uint64_t, double> table_;
  std::uint64_t misses_ = 0;
};

}  // namespace hlp
