#include "power/sa_mode.hpp"

#include <cstdlib>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace hlp {

namespace {

constexpr const char* kAccepted = "estimate, sim, exact";

}  // namespace

const std::vector<SaMode>& all_sa_modes() {
  static const std::vector<SaMode> kModes = {
      SaMode::kEstimated, SaMode::kSimulated, SaMode::kExact};
  return kModes;
}

const char* sa_mode_name(SaMode mode) {
  switch (mode) {
    case SaMode::kEstimated:
      return "estimate";
    case SaMode::kSimulated:
      return "sim";
    case SaMode::kExact:
      return "exact";
  }
  HLP_CHECK(false, "invalid SaMode value");
}

SaMode parse_sa_mode(const std::string& value) {
  for (const SaMode mode : all_sa_modes())
    if (value == sa_mode_name(mode)) return mode;
  HLP_REQUIRE(false, "HLP_SA_MODE='" << value
                                     << "' is not an SA mode (accepted: "
                                     << kAccepted << ")");
}

SaMode sa_mode_from_env(SaMode fallback) {
  const char* env = std::getenv("HLP_SA_MODE");
  if (!env || *env == '\0') return fallback;
  return parse_sa_mode(env);
}

SaMode effective_sa_mode(std::optional<SaMode> requested) {
  return requested ? *requested : sa_mode_from_env(SaMode::kEstimated);
}

int exact_budget_from_env(int fallback) {
  return env_int("HLP_EXACT_BUDGET", fallback);
}

}  // namespace hlp
