#include "power/sa_cache.hpp"

#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "power/activity.hpp"
#include "rtl/partial_datapath.hpp"

namespace hlp {

SaCache::SaCache(int width, MapParams map_params, SaMode mode, int sim_vectors,
                 std::uint64_t sim_seed)
    : width_(width),
      map_params_(map_params),
      mode_(mode),
      sim_vectors_(sim_vectors),
      sim_seed_(sim_seed) {
  HLP_REQUIRE(width >= 1, "width must be >= 1");
  HLP_REQUIRE(sim_vectors >= 1, "sim_vectors must be >= 1");
}

std::uint64_t SaCache::key(OpKind kind, int a, int b) {
  return (static_cast<std::uint64_t>(op_kind_index(kind)) << 40) |
         (static_cast<std::uint64_t>(a) << 20) | static_cast<std::uint64_t>(b);
}

SaCache::Shard& SaCache::shard_for(std::uint64_t key) const {
  // Fibonacci mixing: consecutive (kind, a, b) keys spread across shards.
  return shards_[((key * 0x9e3779b97f4a7c15ull) >> 48) % kNumShards];
}

double SaCache::compute_uncached(OpKind kind, int n_mux_a, int n_mux_b) const {
  const Netlist dp = make_partial_datapath(kind, n_mux_a, n_mux_b, width_);
  const MapResult mapped = tech_map(dp, map_params_);
  if (mode_ == SaMode::kSimulated)
    return simulate_activity(mapped.lut_netlist, sim_vectors_, sim_seed_)
        .total_sa;
  return estimate_activity(mapped.lut_netlist).total_sa;
}

double SaCache::switching_activity(OpKind kind, int n_mux_a, int n_mux_b) {
  HLP_REQUIRE(n_mux_a >= 1 && n_mux_b >= 1, "mux sizes must be >= 1");
  const std::uint64_t k = key(kind, n_mux_a, n_mux_b);
  Shard& shard = shard_for(k);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.table.find(k);
    if (it != shard.table.end()) return it->second;
  }
  // Compute outside the lock so concurrent misses run in parallel. The
  // computation is deterministic, so a racing duplicate for the same key
  // produces the identical value; first insertion wins.
  const double sa = compute_uncached(kind, n_mux_a, n_mux_b);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto [it, inserted] = shard.table.emplace(k, sa);
  if (inserted) ++shard.misses;
  return it->second;
}

std::size_t SaCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.table.size();
  }
  return total;
}

std::uint64_t SaCache::misses() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.misses;
  }
  return total;
}

void SaCache::precompute(int max_mux_a, int max_mux_b) {
  for (int kind = 0; kind < kNumOpKinds; ++kind)
    for (int a = 1; a <= max_mux_a; ++a)
      for (int b = 1; b <= max_mux_b; ++b)
        switching_activity(static_cast<OpKind>(kind), a, b);
}

void SaCache::save(std::ostream& os) const {
  // Snapshot into one ordered map so the file is stable across shard
  // layouts and hash orders.
  std::map<std::uint64_t, double> snapshot;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    snapshot.insert(shard.table.begin(), shard.table.end());
  }
  os << "# SaCache width=" << width_ << " k=" << map_params_.cuts.k << "\n";
  os.precision(17);  // bit-exact double round trip
  for (const auto& [k, sa] : snapshot) {
    const int kind = static_cast<int>(k >> 40);
    const int a = static_cast<int>((k >> 20) & 0xfffff);
    const int b = static_cast<int>(k & 0xfffff);
    os << to_string(static_cast<OpKind>(kind)) << " " << a << " " << b << " "
       << sa << "\n";
  }
}

void SaCache::load(std::istream& is) {
  std::string line;
  while (std::getline(is, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto tok = split_ws(line);
    if (tok.empty()) continue;
    HLP_REQUIRE(tok.size() == 4, "SaCache line needs 4 fields: '" << line << "'");
    OpKind kind;
    if (tok[0] == "add")
      kind = OpKind::kAdd;
    else if (tok[0] == "mult")
      kind = OpKind::kMult;
    else
      HLP_REQUIRE(false, "unknown op kind '" << tok[0] << "'");
    const std::uint64_t k =
        key(kind, std::stoi(tok[1]), std::stoi(tok[2]));
    Shard& shard = shard_for(k);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.table[k] = std::stod(tok[3]);
  }
}

void SaCache::save_file(const std::string& path) const {
  std::ofstream f(path);
  HLP_REQUIRE(f.good(), "cannot open '" << path << "' for writing");
  save(f);
}

void SaCache::load_file(const std::string& path) {
  std::ifstream f(path);
  HLP_REQUIRE(f.good(), "cannot open '" << path << "' for reading");
  load(f);
}

}  // namespace hlp
