#include "power/sa_cache.hpp"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "power/activity.hpp"
#include "power/exact_activity.hpp"
#include "rtl/partial_datapath.hpp"

namespace hlp {

SaCache::SaCache(int width, MapParams map_params, SaMode mode, int sim_vectors,
                 std::uint64_t sim_seed)
    : width_(width),
      map_params_(map_params),
      mode_(mode),
      sim_vectors_(sim_vectors),
      sim_seed_(sim_seed),
      // Resolve the budget once, here: every entry of one cache must be
      // computed under the same budget or merges would conflict.
      exact_budget_(mode == SaMode::kExact
                        ? exact_budget_from_env(kDefaultExactBudget)
                        : kDefaultExactBudget) {
  HLP_REQUIRE(width >= 1, "width must be >= 1");
  HLP_REQUIRE(sim_vectors >= 1, "sim_vectors must be >= 1");
}

std::uint64_t SaCache::key(OpKind kind, int a, int b) {
  return (static_cast<std::uint64_t>(op_kind_index(kind)) << 40) |
         (static_cast<std::uint64_t>(a) << 20) | static_cast<std::uint64_t>(b);
}

SaCache::Shard& SaCache::shard_for(std::uint64_t key) const {
  // Fibonacci mixing: consecutive (kind, a, b) keys spread across shards.
  return shards_[((key * 0x9e3779b97f4a7c15ull) >> 48) % kNumShards];
}

double SaCache::compute_uncached(OpKind kind, int n_mux_a, int n_mux_b) const {
  const Netlist dp = make_partial_datapath(kind, n_mux_a, n_mux_b, width_);
  const MapResult mapped = tech_map(dp, map_params_);
  if (mode_ == SaMode::kSimulated)
    return simulate_activity(mapped.lut_netlist, sim_vectors_, sim_seed_)
        .total_sa;
  if (mode_ == SaMode::kExact) {
    ExactActivityOptions opt;
    opt.node_budget = exact_budget_;
    opt.fallback_vectors = sim_vectors_;
    opt.fallback_seed = sim_seed_;
    return exact_activity(mapped.lut_netlist, opt).total_sa;
  }
  return estimate_activity(mapped.lut_netlist).total_sa;
}

double SaCache::switching_activity(OpKind kind, int n_mux_a, int n_mux_b) {
  HLP_REQUIRE(n_mux_a >= 1 && n_mux_b >= 1, "mux sizes must be >= 1");
  const std::uint64_t k = key(kind, n_mux_a, n_mux_b);
  Shard& shard = shard_for(k);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.table.find(k);
    if (it != shard.table.end()) return it->second;
  }
  // Compute outside the lock so concurrent misses run in parallel. The
  // computation is deterministic, so a racing duplicate for the same key
  // produces the identical value; first insertion wins.
  const double sa = compute_uncached(kind, n_mux_a, n_mux_b);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto [it, inserted] = shard.table.emplace(k, sa);
  if (inserted) ++shard.misses;
  return it->second;
}

std::size_t SaCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.table.size();
  }
  return total;
}

std::uint64_t SaCache::misses() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.misses;
  }
  return total;
}

void SaCache::precompute(int max_mux_a, int max_mux_b) {
  for (int kind = 0; kind < kNumOpKinds; ++kind)
    for (int a = 1; a <= max_mux_a; ++a)
      for (int b = 1; b <= max_mux_b; ++b)
        switching_activity(static_cast<OpKind>(kind), a, b);
}

void SaCache::save(std::ostream& os) const {
  // Snapshot into one ordered map so the file is stable across shard
  // layouts and hash orders.
  std::map<std::uint64_t, double> snapshot;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    snapshot.insert(shard.table.begin(), shard.table.end());
  }
  os << "# SaCache width=" << width_ << " k=" << map_params_.cuts.k
     << " mode=" << sa_mode_name(mode_) << "\n";
  os.precision(17);  // bit-exact double round trip
  for (const auto& [k, sa] : snapshot) {
    const int kind = static_cast<int>(k >> 40);
    const int a = static_cast<int>((k >> 20) & 0xfffff);
    const int b = static_cast<int>(k & 0xfffff);
    os << to_string(static_cast<OpKind>(kind)) << " " << a << " " << b << " "
       << sa << "\n";
  }
  // Footer: load() skips it as a comment; merge_from requires it, so a
  // table cut short (crashed writer, partial copy) is detectable.
  os << "# end " << snapshot.size() << "\n";
}

std::size_t SaCache::merge_from(std::istream& is, const std::string& what) {
  // Strict numeric parsing: every defect names the shard instead of
  // escaping as a bare std::invalid_argument from std::stoi.
  const auto parse_long = [&what](const std::string& s,
                                  const char* field) -> long long {
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(s.c_str(), &end, 10);
    HLP_REQUIRE(end != s.c_str() && *end == '\0' && errno != ERANGE,
                what << ": bad " << field << " '" << s << "'");
    return v;
  };
  const auto parse_sa = [&what](const std::string& s) -> double {
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    HLP_REQUIRE(end != s.c_str() && *end == '\0' && errno != ERANGE,
                what << ": bad SA value '" << s << "'");
    return v;
  };

  // Parse the whole file into a staging map first: a malformed or
  // truncated shard must not leave a half-merged table behind.
  std::map<std::uint64_t, double> staged;
  std::string line;
  bool saw_header = false;
  bool saw_footer = false;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto tok = split_ws(line);
    if (tok.empty()) continue;
    if (tok[0] == "#") {
      if (lineno == 1) {
        // "# SaCache width=<w> ..." — reject a shard computed at another
        // datapath width before looking at any entry.
        HLP_REQUIRE(tok.size() >= 3 && tok[1] == "SaCache" &&
                        tok[2].rfind("width=", 0) == 0,
                    what << ": not an SaCache table (bad header '" << line
                         << "')");
        const long long w = parse_long(tok[2].substr(6), "header width");
        HLP_REQUIRE(w == width_, what << ": width " << w
                                      << " does not match this cache's width "
                                      << width_);
        // The SA mode changes entry *values*, so a cross-mode merge is a
        // configuration error, rejected here before any entry is staged.
        // Tables written before the mode tag existed are estimate-mode.
        std::string file_mode;
        for (std::size_t i = 3; i < tok.size(); ++i)
          if (tok[i].rfind("mode=", 0) == 0) file_mode = tok[i].substr(5);
        if (file_mode.empty()) {
          HLP_REQUIRE(mode_ == SaMode::kEstimated,
                      what << ": table carries no mode tag (legacy "
                              "estimate-mode table) but this cache's mode is '"
                           << sa_mode_name(mode_) << "'");
        } else {
          HLP_REQUIRE(file_mode == sa_mode_name(mode_),
                      what << ": mode '" << file_mode
                           << "' does not match this cache's mode '"
                           << sa_mode_name(mode_) << "'");
        }
        saw_header = true;
        continue;
      }
      if (tok.size() >= 3 && tok[1] == "end") {
        const long long footer = parse_long(tok[2], "footer count");
        HLP_REQUIRE(footer >= 0, what << ": bad footer count " << footer);
        const auto declared = static_cast<std::size_t>(footer);
        HLP_REQUIRE(declared == staged.size(),
                    what << ": footer declares " << declared
                         << " entries but the file carries " << staged.size());
        saw_footer = true;
        continue;
      }
      continue;  // other comments
    }
    HLP_REQUIRE(saw_header, what << ": missing '# SaCache' header");
    HLP_REQUIRE(!saw_footer,
                what << ": entries after the '# end' footer (line " << lineno
                     << ")");
    HLP_REQUIRE(tok.size() == 4, what << ": line " << lineno
                                      << " needs 4 fields: '" << line << "'");
    OpKind kind;
    if (tok[0] == "add")
      kind = OpKind::kAdd;
    else if (tok[0] == "mult")
      kind = OpKind::kMult;
    else
      HLP_REQUIRE(false, what << ": unknown op kind '" << tok[0] << "' (line "
                              << lineno << ")");
    const long long a = parse_long(tok[1], "mux size");
    const long long b = parse_long(tok[2], "mux size");
    HLP_REQUIRE(a >= 1 && b >= 1 && a <= 0xfffff && b <= 0xfffff,
                what << ": mux sizes (" << tok[1] << ", " << tok[2]
                     << ") out of range (line " << lineno << ")");
    staged[key(kind, static_cast<int>(a), static_cast<int>(b))] =
        parse_sa(tok[3]);
  }
  HLP_REQUIRE(saw_header, what << ": missing '# SaCache' header");
  HLP_REQUIRE(saw_footer, what << ": truncated — missing '# end' footer");

  std::size_t inserted = 0;
  for (const auto& [k, sa] : staged) {
    Shard& shard = shard_for(k);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto [it, fresh] = shard.table.emplace(k, sa);
    if (fresh) {
      ++inserted;
    } else {
      // Entries are deterministic functions of (kind, a, b) at one width
      // and configuration, so overlapping shards must agree exactly.
      const int kind = static_cast<int>(k >> 40);
      const int a = static_cast<int>((k >> 20) & 0xfffff);
      const int b = static_cast<int>(k & 0xfffff);
      HLP_REQUIRE(it->second == sa,
                  what << ": merge conflict on ("
                       << to_string(static_cast<OpKind>(kind)) << ", " << a
                       << ", " << b << "): table has " << it->second
                       << ", shard has " << sa
                       << " (shards of one run are deterministic and must "
                          "agree)");
    }
  }
  return inserted;
}

std::size_t SaCache::merge_from(const std::string& path) {
  std::ifstream f(path);
  HLP_REQUIRE(f.good(), "cannot open SA shard '" << path << "' for reading");
  return merge_from(f, "SA shard '" + path + "'");
}

void SaCache::load(std::istream& is) {
  std::string line;
  while (std::getline(is, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto tok = split_ws(line);
    if (tok.empty()) continue;
    HLP_REQUIRE(tok.size() == 4, "SaCache line needs 4 fields: '" << line << "'");
    OpKind kind;
    if (tok[0] == "add")
      kind = OpKind::kAdd;
    else if (tok[0] == "mult")
      kind = OpKind::kMult;
    else
      HLP_REQUIRE(false, "unknown op kind '" << tok[0] << "'");
    const std::uint64_t k =
        key(kind, std::stoi(tok[1]), std::stoi(tok[2]));
    Shard& shard = shard_for(k);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.table[k] = std::stod(tok[3]);
  }
}

void SaCache::save_file(const std::string& path) const {
  std::ofstream f(path);
  HLP_REQUIRE(f.good(), "cannot open '" << path << "' for writing");
  save(f);
}

void SaCache::load_file(const std::string& path) {
  std::ifstream f(path);
  HLP_REQUIRE(f.good(), "cannot open '" << path << "' for reading");
  load(f);
}

}  // namespace hlp
