// Dynamic power model — the PowerPlay Power Analyzer substitute.
//
// P_dyn = sum over nets of 0.5 * C_net * Vdd^2 * toggle_rate(net), the
// textbook form quoted in the paper's introduction. Toggle rates come
// either from unit-delay simulation (measured transitions / simulated
// time) or from the probabilistic estimator (SA per clock / period).
// Capacitance per net is a Cyclone-II-flavoured constant plus a fanout
// term; constants are documented in DESIGN.md and are identical for every
// binding algorithm, so relative comparisons (the paper's claims) are
// unaffected by their absolute calibration.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace hlp {

struct PowerParams {
  double vdd = 1.2;              // Cyclone II core voltage (V)
  double c_base_pf = 1.5;        // LUT output + average local routing (pF)
  double c_fanout_pf = 0.12;     // extra routing + input load per fanout (pF)
  double clock_tree_mw_per_reg = 0.015;  // clock network per register bit
};

/// Power analysis summary for one mapped design (one Table 3 row half).
struct PowerReport {
  double dynamic_power_mw = 0.0;
  double clock_period_ns = 0.0;
  int num_luts = 0;
  int num_registers = 0;
  /// Design-wide toggle rate in millions of transitions per second —
  /// total transitions across all nets divided by simulated time (the
  /// Figure 3 metric; Quartus reports the same aggregate).
  double toggle_rate_mps = 0.0;
  /// Total transitions per clock cycle (sum over nets), split.
  double transitions_per_cycle = 0.0;
  double glitch_fraction = 0.0;
};

/// Combine per-net toggle counts (from simulation over `num_cycles` cycles)
/// with the netlist structure and clock period into a power report.
PowerReport power_from_toggles(const Netlist& n,
                               const std::vector<std::uint64_t>& toggles,
                               std::uint64_t num_cycles,
                               double clock_period_ns,
                               double functional_transitions_per_cycle,
                               const PowerParams& params = {});

}  // namespace hlp
