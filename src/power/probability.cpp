#include "power/probability.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hlp {
namespace {

// Clamp probabilities away from impossible values produced by float error.
double clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

}  // namespace

double lut_probability(const TruthTable& tt, const std::vector<double>& p_in) {
  HLP_CHECK(static_cast<int>(p_in.size()) == tt.num_inputs(),
            "probability vector size mismatch");
  double p = 0.0;
  for (std::uint32_t m = 0; m < tt.num_rows(); ++m) {
    if (!tt.eval(m)) continue;
    double term = 1.0;
    for (int j = 0; j < tt.num_inputs(); ++j)
      term *= ((m >> j) & 1u) ? p_in[j] : 1.0 - p_in[j];
    p += term;
  }
  return clamp01(p);
}

double lut_joint_prob(const TruthTable& tt, const std::vector<double>& p_in,
                      const std::vector<double>& act_in) {
  const int k = tt.num_inputs();
  HLP_CHECK(static_cast<int>(p_in.size()) == k &&
                static_cast<int>(act_in.size()) == k,
            "joint probability input size mismatch");
  // Per-input joint pair distribution (value at t, value at t+T).
  struct Pair {
    double p00, p01, p10, p11;
  };
  std::vector<Pair> joint(k);
  for (int j = 0; j < k; ++j) {
    const double a = std::min(act_in[j], 2.0 * std::min(p_in[j], 1.0 - p_in[j]));
    joint[j].p11 = clamp01(p_in[j] - a / 2.0);
    joint[j].p00 = clamp01(1.0 - p_in[j] - a / 2.0);
    joint[j].p01 = a / 2.0;
    joint[j].p10 = a / 2.0;
  }
  double p = 0.0;
  for (std::uint32_t u = 0; u < tt.num_rows(); ++u) {
    if (!tt.eval(u)) continue;
    for (std::uint32_t v = 0; v < tt.num_rows(); ++v) {
      if (!tt.eval(v)) continue;
      double term = 1.0;
      for (int j = 0; j < k && term > 0.0; ++j) {
        const bool bu = (u >> j) & 1u;
        const bool bv = (v >> j) & 1u;
        const Pair& pj = joint[j];
        term *= bu ? (bv ? pj.p11 : pj.p10) : (bv ? pj.p01 : pj.p00);
      }
      p += term;
    }
  }
  return clamp01(p);
}

double lut_switching_activity(const TruthTable& tt,
                              const std::vector<double>& p_in,
                              const std::vector<double>& act_in) {
  const double p = lut_probability(tt, p_in);
  const double pj = lut_joint_prob(tt, p_in, act_in);
  return clamp01(2.0 * (p - pj));
}

double boolean_difference_prob(const TruthTable& tt, int j,
                               const std::vector<double>& p_in) {
  HLP_CHECK(j >= 0 && j < tt.num_inputs(), "input index out of range");
  // df/dx_j = f|x_j=0 XOR f|x_j=1: enumerate over the remaining inputs.
  double p = 0.0;
  for (std::uint32_t m = 0; m < tt.num_rows(); ++m) {
    if ((m >> j) & 1u) continue;  // iterate with x_j = 0
    if (tt.eval(m) == tt.eval(m | (1u << j))) continue;
    double term = 1.0;
    for (int i = 0; i < tt.num_inputs(); ++i) {
      if (i == j) continue;
      term *= ((m >> i) & 1u) ? p_in[i] : 1.0 - p_in[i];
    }
    p += term;
  }
  return clamp01(p);
}

std::vector<double> netlist_probabilities(const Netlist& n,
                                          double source_prob) {
  std::vector<double> prob(n.num_nets(), source_prob);
  for (int gi : n.topo_gates()) {
    const Gate& g = n.gates()[gi];
    std::vector<double> pin;
    pin.reserve(g.ins.size());
    for (NetId in : g.ins) pin.push_back(prob[in]);
    prob[g.out] = lut_probability(g.tt, pin);
  }
  return prob;
}

}  // namespace hlp
