// Signal probability and transition-density primitives (Section 4).
//
// Following Najm [17]: the signal probability P(y) is the fraction of time a
// signal is 1; the transition density / switching activity s(y) is the
// probability of y differing between t and t+T. Chou & Roy [7] give the
// simultaneous-switching-aware form used here (Eq. 2 of the paper):
//
//     s(y) = 2 * ( P(y) - P(y(t) * y(t+T)) )
//
// Both P(y) and the joint term are computed exactly over a gate/LUT's
// truth table under the input-independence assumption: each input i is a
// two-state process with marginal P_i and per-step switching activity a_i,
// giving the joint pair distribution
//     p11 = P_i - a_i/2,  p01 = p10 = a_i/2,  p00 = 1 - P_i - a_i/2.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/truth_table.hpp"

namespace hlp {

/// Exact P(f = 1) given independent input probabilities (2^k enumeration).
double lut_probability(const TruthTable& tt, const std::vector<double>& p_in);

/// Exact P(f(t) = 1 AND f(t+T) = 1) given independent per-input marginals
/// and per-step activities (4^k enumeration).
double lut_joint_prob(const TruthTable& tt, const std::vector<double>& p_in,
                      const std::vector<double>& act_in);

/// Chou-Roy switching activity of a gate output for one time step:
/// s = 2 (P - P(y y+)). Inputs that do not switch in this step pass
/// act_in = 0.
double lut_switching_activity(const TruthTable& tt,
                              const std::vector<double>& p_in,
                              const std::vector<double>& act_in);

/// Signal probability of the Boolean difference P(df/dx_j) under input
/// probabilities — the Najm Eq. (1) building block (exposed for tests and
/// the documentation examples).
double boolean_difference_prob(const TruthTable& tt, int j,
                               const std::vector<double>& p_in);

/// Per-net signal probabilities over a whole netlist (zero-delay, topo
/// propagation, sources at 0.5 unless overridden).
std::vector<double> netlist_probabilities(const Netlist& n,
                                          double source_prob = 0.5);

}  // namespace hlp
