#include "power/activity.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "power/probability.hpp"
#include "sim/vectors.hpp"

namespace hlp {

double TimedSignal::activity_at(int t) const {
  for (const auto& [time, a] : acts)
    if (time == t) return a;
  return 0.0;
}

double TimedSignal::total_activity() const {
  double s = 0.0;
  for (const auto& [time, a] : acts) s += a;
  return s;
}

double TimedSignal::glitch_activity() const {
  return total_activity() - activity_at(functional_time);
}

int TimedSignal::last_time() const {
  return acts.empty() ? 0 : acts.back().first;
}

TimedSignal TimedSignal::source(double prob, double activity) {
  TimedSignal s;
  s.prob = prob;
  s.functional_time = 0;
  if (activity > 0.0) s.acts = {{0, activity}};
  return s;
}

TimedSignal propagate_lut(const TruthTable& tt,
                          const std::vector<const TimedSignal*>& leaves) {
  HLP_CHECK(static_cast<int>(leaves.size()) == tt.num_inputs(),
            "leaf count " << leaves.size() << " != LUT inputs "
                          << tt.num_inputs());
  const int k = tt.num_inputs();
  TimedSignal out;

  std::vector<double> p_in(k);
  for (int j = 0; j < k; ++j) p_in[j] = leaves[j]->prob;
  out.prob = lut_probability(tt, p_in);

  // Functional arrival: one unit after the slowest functional leaf arrival.
  int f = 0;
  for (const auto* l : leaves) f = std::max(f, l->functional_time);
  out.functional_time = f + 1;

  // Union of leaf transition times; output transitions one unit later.
  std::set<int> times;
  for (const auto* l : leaves)
    for (const auto& [t, a] : l->acts)
      if (a > 0.0) times.insert(t);

  std::vector<double> act_in(k);
  for (int t : times) {
    for (int j = 0; j < k; ++j) act_in[j] = leaves[j]->activity_at(t);
    const double s = lut_switching_activity(tt, p_in, act_in);
    if (s > 0.0) out.acts.emplace_back(t + 1, s);
  }
  return out;
}

namespace {

ActivityResult estimate_impl(const Netlist& n, bool zero_delay) {
  ActivityResult r;
  r.signals.assign(n.num_nets(), TimedSignal{});
  for (NetId net = 0; net < n.num_nets(); ++net)
    if (n.is_comb_source(net)) r.signals[net] = TimedSignal::source();

  for (int gi : n.topo_gates()) {
    const Gate& g = n.gates()[gi];
    std::vector<const TimedSignal*> leaves;
    leaves.reserve(g.ins.size());
    for (NetId in : g.ins) leaves.push_back(&r.signals[in]);
    TimedSignal sig = propagate_lut(g.tt, leaves);
    if (zero_delay) {
      // Collapse the waveform to the functional transition: a single event
      // whose activity is the Chou-Roy value with all leaves switching
      // together (classic transition-density propagation).
      std::vector<double> p_in(g.ins.size()), act_in(g.ins.size());
      for (std::size_t j = 0; j < g.ins.size(); ++j) {
        p_in[j] = r.signals[g.ins[j]].prob;
        act_in[j] = r.signals[g.ins[j]].total_activity();
      }
      const double s = lut_switching_activity(g.tt, p_in, act_in);
      sig.acts.clear();
      if (s > 0.0) sig.acts = {{sig.functional_time, s}};
    }
    r.signals[g.out] = std::move(sig);
  }

  for (int gi : n.topo_gates()) {
    const TimedSignal& s = r.signals[n.gates()[gi].out];
    r.total_sa += s.total_activity();
    r.functional_sa += s.activity_at(s.functional_time);
    r.glitch_sa += s.glitch_activity();
  }
  return r;
}

}  // namespace

ActivityResult estimate_activity(const Netlist& n) {
  return estimate_impl(n, /*zero_delay=*/false);
}

ActivityResult estimate_activity_zero_delay(const Netlist& n) {
  return estimate_impl(n, /*zero_delay=*/true);
}

SimActivityResult simulate_activity(const Netlist& n, int num_vectors,
                                    std::uint64_t seed, SimEngine engine) {
  HLP_REQUIRE(num_vectors >= 1,
              "simulate_activity needs >= 1 vector, got " << num_vectors);
  const auto frames = random_vectors(
      num_vectors, static_cast<int>(n.inputs().size()), seed);
  SimActivityResult r;
  r.stats = simulate_frames(n, frames, engine);
  r.vectors_used = static_cast<int>(r.stats.num_cycles);
  r.seed = seed;
  r.engine = engine;
  const double cycles = static_cast<double>(r.stats.num_cycles);
  r.sa.resize(n.num_nets());
  for (NetId net = 0; net < n.num_nets(); ++net)
    r.sa[net] = static_cast<double>(r.stats.toggles[net]) / cycles;
  r.total_sa = static_cast<double>(r.stats.total_transitions) / cycles;
  r.functional_sa =
      static_cast<double>(r.stats.functional_transitions) / cycles;
  r.glitch_sa = static_cast<double>(r.stats.glitch_transitions()) / cycles;
  return r;
}

}  // namespace hlp
