#include "power/power_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hlp {

PowerReport power_from_toggles(const Netlist& n,
                               const std::vector<std::uint64_t>& toggles,
                               std::uint64_t num_cycles,
                               double clock_period_ns,
                               double functional_transitions_per_cycle,
                               const PowerParams& params) {
  HLP_REQUIRE(toggles.size() == static_cast<std::size_t>(n.num_nets()),
              "toggle vector size mismatch");
  HLP_REQUIRE(num_cycles > 0, "no simulated cycles");
  HLP_REQUIRE(clock_period_ns > 0, "non-positive clock period");

  PowerReport r;
  r.clock_period_ns = clock_period_ns;
  r.num_luts = n.num_gates();
  r.num_registers = n.num_latches();

  const auto fanout = n.fanout_counts();
  const double seconds = static_cast<double>(num_cycles) * clock_period_ns * 1e-9;
  double total_transitions = 0.0;
  double power_w = 0.0;
  for (NetId net = 0; net < n.num_nets(); ++net) {
    const double c_pf =
        params.c_base_pf + params.c_fanout_pf * static_cast<double>(fanout[net]);
    const double rate = static_cast<double>(toggles[net]) / seconds;  // 1/s
    power_w += 0.5 * c_pf * 1e-12 * params.vdd * params.vdd * rate;
    total_transitions += static_cast<double>(toggles[net]);
  }
  r.dynamic_power_mw = power_w * 1e3 +
                       params.clock_tree_mw_per_reg * r.num_registers;
  r.transitions_per_cycle = total_transitions / static_cast<double>(num_cycles);
  r.toggle_rate_mps = total_transitions / seconds / 1e6;
  const double func = std::max(0.0, functional_transitions_per_cycle);
  r.glitch_fraction =
      r.transitions_per_cycle > 0.0
          ? std::max(0.0, 1.0 - func / r.transitions_per_cycle)
          : 0.0;
  return r;
}

}  // namespace hlp
