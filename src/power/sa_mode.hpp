// The HLP_SA_MODE knob: which switching-activity engine SaCache (and the
// flow layers above it) uses to fill its per-operation tables.
//
// Unlike HLP_SIMD/HLP_SETTLE — which only pick between bit-identical
// strategies — the SA mode changes *values*: the three engines answer the
// same question with different accuracy/cost trade-offs:
//
//   estimate  closed-form propagation of static signal probabilities
//             (fast, no glitch model — the seed default).
//   sim       seeded word-parallel Monte-Carlo over random stimulus
//             (accuracy scales with vector count and carries seed
//             variance).
//   exact     analytic transition probabilities from per-cone BDDs over
//             the support-reduced gate plan (src/power/exact_activity.hpp);
//             cones whose BDDs blow the HLP_EXACT_BUDGET node budget fall
//             back to the Monte-Carlo engine per cone.
//
// Because values differ between modes, every consumer that caches or
// serializes activity must resolve the mode *once* and pin it: SaCache
// tags its persisted tables, merge_from rejects cross-mode shards, and
// the distributed manifest carries the parent's resolved mode so workers
// never re-consult their own environment.
//
// Parsing is strict, like HLP_SETTLE: unset/empty falls back, anything
// else must be one of the names above or the sweep dies loudly. There is
// no "auto" spelling — an unset knob means kEstimated; resolution of an
// *absent programmatic request* is the job of effective_sa_mode, which
// takes an optional so "caller didn't say" is distinguishable from any
// concrete mode.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace hlp {

enum class SaMode { kEstimated, kSimulated, kExact };

/// Every mode, in knob-listing order.
const std::vector<SaMode>& all_sa_modes();

/// Canonical knob spelling: "estimate", "sim", "exact".
const char* sa_mode_name(SaMode mode);

/// Strict parse of a knob value (the exact lowercase names above); throws
/// hlp::Error naming HLP_SA_MODE, the offending value and the accepted set.
SaMode parse_sa_mode(const std::string& value);

/// HLP_SA_MODE env override, else `fallback`. Unset/empty falls back;
/// garbage throws (strict, like settle_mode_from_env).
SaMode sa_mode_from_env(SaMode fallback = SaMode::kEstimated);

/// The mode a spec resolves to: an explicit request wins, an absent one
/// consults HLP_SA_MODE, an unset environment means kEstimated. Always
/// concrete — there is no deferred "auto" state for SA modes.
SaMode effective_sa_mode(std::optional<SaMode> requested);

/// HLP_EXACT_BUDGET env override, else `fallback`: the marginal BDD
/// node budget per cone before the exact engine falls back to
/// Monte-Carlo for that cone. Strict positive-integer parse like
/// jobs_from_env: unset/empty falls back, garbage / zero / negative /
/// overflow throw naming the variable.
int exact_budget_from_env(int fallback);

}  // namespace hlp
