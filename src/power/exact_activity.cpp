#include "power/exact_activity.hpp"

#include <algorithm>
#include <climits>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "power/activity.hpp"
#include "sim/bit_sim_engine.hpp"

namespace hlp {

namespace {

// Minimal ROBDD manager: unique table, ite with memo, analytic density.
// Node ids are indices into nodes_; 0/1 are the false/true terminals.
// The per-cone budget meters *created* nodes between begin_cone and
// end_cone; exceeding it throws BudgetExceeded, and rollback_cone drops
// every node the abandoned cone allocated so blown cones cost no
// residency.
class Bdd {
 public:
  struct BudgetExceeded {};
  static constexpr int kFalse = 0;
  static constexpr int kTrue = 1;

  Bdd() {
    nodes_.push_back({kTermVar, kFalse, kFalse});
    nodes_.push_back({kTermVar, kTrue, kTrue});
  }

  /// The BDD of a bare variable.
  int var(int v) { return mk(v, kFalse, kTrue); }

  int bnot(int f) { return ite(f, kFalse, kTrue); }
  int band(int f, int g) { return ite(f, g, kFalse); }
  int bor(int f, int g) { return ite(f, kTrue, g); }
  int bxor(int f, int g) { return ite(f, bnot(g), g); }

  int ite(int f, int g, int h) {
    if (f == kTrue) return g;
    if (f == kFalse) return h;
    if (g == h) return g;
    if (g == kTrue && h == kFalse) return f;
    const Key k{f, g, h};
    if (auto it = ite_memo_.find(k); it != ite_memo_.end()) return it->second;
    const int v =
        std::min(top_var(f), std::min(top_var(g), top_var(h)));
    const int r0 = ite(cof(f, v, 0), cof(g, v, 0), cof(h, v, 0));
    const int r1 = ite(cof(f, v, 1), cof(g, v, 1), cof(h, v, 1));
    const int r = mk(v, r0, r1);
    ite_memo_.emplace(k, r);
    return r;
  }

  /// P[f = 1] under independent uniform variables. The recursion
  /// p(node) = (p(lo) + p(hi)) / 2 marginalises skipped variable levels
  /// correctly (lo/hi are independent of the node's variable), and every
  /// step is a dyadic halving — with <= 16 support variables the doubles
  /// are exact, which is what makes the bit-for-bit enumeration test
  /// possible.
  double density(int f) {
    if (f == kFalse) return 0.0;
    if (f == kTrue) return 1.0;
    if (auto it = prob_.find(f); it != prob_.end()) return it->second;
    const double p = 0.5 * (density(nodes_[f].lo) + density(nodes_[f].hi));
    prob_.emplace(f, p);
    return p;
  }

  void begin_cone(int budget) {
    mark_ = nodes_.size();
    budget_ = budget;
  }
  void end_cone() { budget_ = -1; }

  /// Undo an abandoned cone: drop its nodes from the arena and the unique
  /// table. Memo tables may reference dropped ids, so they are cleared
  /// wholesale — recomputation is cheap next to a dangling reference.
  void rollback_cone() {
    for (auto it = unique_.begin(); it != unique_.end();) {
      if (it->second >= static_cast<int>(mark_))
        it = unique_.erase(it);
      else
        ++it;
    }
    nodes_.resize(mark_);
    ite_memo_.clear();
    prob_.clear();
    budget_ = -1;
  }

  std::size_t num_nodes() const { return nodes_.size() - 2; }  // sans terminals

 private:
  static constexpr int kTermVar = INT_MAX;
  struct Node {
    int var, lo, hi;
  };
  struct Key {
    int a, b, c;
    bool operator==(const Key& o) const {
      return a == o.a && b == o.b && c == o.c;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::uint64_t h = static_cast<std::uint32_t>(k.a);
      h = (h * 0x9e3779b97f4a7c15ull) ^ static_cast<std::uint32_t>(k.b);
      h = (h * 0x9e3779b97f4a7c15ull) ^ static_cast<std::uint32_t>(k.c);
      h *= 0x9e3779b97f4a7c15ull;
      return static_cast<std::size_t>(h >> 24);
    }
  };

  int top_var(int f) const { return nodes_[f].var; }
  int cof(int f, int v, int which) const {
    const Node& nd = nodes_[f];
    if (nd.var != v) return f;
    return which ? nd.hi : nd.lo;
  }
  int mk(int v, int lo, int hi) {
    if (lo == hi) return lo;
    const Key k{v, lo, hi};
    if (auto it = unique_.find(k); it != unique_.end()) return it->second;
    if (budget_ >= 0 &&
        nodes_.size() - mark_ >= static_cast<std::size_t>(budget_))
      throw BudgetExceeded{};
    const int id = static_cast<int>(nodes_.size());
    nodes_.push_back({v, lo, hi});
    unique_.emplace(k, id);
    return id;
  }

  std::vector<Node> nodes_;
  std::unordered_map<Key, int, KeyHash> unique_;
  std::unordered_map<Key, int, KeyHash> ite_memo_;
  std::unordered_map<int, double> prob_;
  std::size_t mark_ = 0;
  int budget_ = -1;  // < 0: unmetered (source variables)
};

/// Shannon expansion of a truth table into a BDD over xs[0..k). Row
/// semantics match BitSimulatorT::eval_packed's cofactor fold: bit j of a
/// row index is the value of input j, so input k-1 selects between the
/// low and high halves of the table.
int build_from_tt(Bdd& m, std::uint64_t tt, const std::vector<int>& xs,
                  int k) {
  if (k == 0) return (tt & 1) ? Bdd::kTrue : Bdd::kFalse;
  const std::uint32_t half = 1u << (k - 1);
  const std::uint64_t lo_tt =
      half >= 64 ? tt : tt & ((1ull << half) - 1);
  const std::uint64_t hi_tt = half >= 64 ? 0 : tt >> half;
  const int lo = build_from_tt(m, lo_tt, xs, k - 1);
  const int hi = build_from_tt(m, hi_tt, xs, k - 1);
  return m.ite(xs[k - 1], hi, lo);
}

/// One gate function over input BDDs, mirroring eval_packed's classified
/// semantics exactly: the inv flag applies to the specialised ops but NOT
/// to the Shannon fallbacks, whose (support-reduced) truth tables are
/// already complete.
int build_gate(Bdd& m, const detail::GatePlan& plan,
               const detail::PackedGate& g, const std::vector<int>& xs) {
  const bool inv = g.inv != 0;
  switch (g.op) {
    case detail::kOpConst:
      return inv ? Bdd::kTrue : Bdd::kFalse;
    case detail::kOpBuf:
      return inv ? m.bnot(xs[0]) : xs[0];
    case detail::kOpMux: {
      const int w = m.ite(xs[0], xs[1], xs[2]);
      return inv ? m.bnot(w) : w;
    }
    case detail::kOpMaj: {
      const int w =
          m.bor(m.band(xs[0], xs[1]), m.band(m.bor(xs[0], xs[1]), xs[2]));
      return inv ? m.bnot(w) : w;
    }
    case detail::kOpParity: {
      int w = inv ? Bdd::kTrue : Bdd::kFalse;
      for (int j = 0; j < g.k; ++j) w = m.bxor(w, xs[j]);
      return w;
    }
    case detail::kOpAndPol: {
      int w = Bdd::kTrue;
      for (int j = 0; j < g.k; ++j)
        w = m.band(w, ((g.pol >> j) & 1) ? m.bnot(xs[j]) : xs[j]);
      return inv ? m.bnot(w) : w;
    }
    case detail::kOpShannon:
      return build_from_tt(m, g.tt, xs, g.k);
    case detail::kOpShannonBig:
      return build_from_tt(m, plan.tt_bits[g.idx], xs, g.k);
  }
  HLP_CHECK(false, "invalid GateOp in exact_activity");
}

/// Per-net settle trajectory as BDDs: prev is V(net, -1), timed[t] is
/// V(net, t) for t in [0, level] (stable from level on). For gates
/// timed[0] == prev (only sources change at t = 0); for sources prev and
/// timed[0] are the two independent frame variables.
struct Traj {
  int level = 0;
  int prev = Bdd::kFalse;
  std::vector<int> timed;
  bool exact = true;
  bool built = false;
};

int value_at(const Traj& t, int time) {
  if (time < 0) return t.prev;
  return t.timed[static_cast<std::size_t>(std::min(time, t.level))];
}

}  // namespace

ExactActivityResult exact_activity(const Netlist& n,
                                   const ExactActivityOptions& opt) {
  HLP_REQUIRE(opt.node_budget >= 1, "exact_activity node budget must be >= 1 "
                                    "(got " << opt.node_budget << ")");
  const detail::GatePlan plan = detail::build_gate_plan(n);
  const int num_nets = plan.num_nets;

  ExactActivityResult r;
  r.sa.assign(num_nets, 0.0);
  r.engine.assign(num_nets, ConeEngine::kExact);
  r.functional.assign(num_nets, 0.0);
  r.support.resize(num_nets);

  Bdd mgr;
  std::vector<Traj> traj(num_nets);

  // Sources: two variables each (prev at 2r, curr at 2r + 1, interleaved
  // by rank so a cone's prev/curr pairs stay adjacent in the order). A
  // source toggles iff its frames differ: probability exactly 1/2, no
  // densities needed.
  int rank = 0;
  for (NetId net = 0; net < num_nets; ++net) {
    if (!n.is_comb_source(net)) continue;
    Traj& t = traj[net];
    t.prev = mgr.var(2 * rank);
    t.timed = {mgr.var(2 * rank + 1)};
    t.built = true;
    r.support[net] = {net};
    r.sa[net] = 0.5;
    r.functional[net] = 0.5;
    ++rank;
  }

  for (const int gi : plan.topo) {
    const detail::PackedGate& g = plan.gates[gi];
    const int k = g.k;
    const auto in_net = [&](int j) -> NetId {
      return g.op == detail::kOpShannonBig
                 ? plan.in_nets[plan.in_start[g.idx] + j]
                 : g.in[j];
    };

    Traj& t = traj[g.out];
    bool inputs_exact = true;
    int in_level = 0;
    std::vector<NetId>& sup = r.support[g.out];
    for (int j = 0; j < k; ++j) {
      const Traj& in = traj[in_net(j)];
      HLP_CHECK(in.built, "exact_activity: gate input net '"
                              << n.net_name(in_net(j))
                              << "' has no driver before its reader");
      inputs_exact = inputs_exact && in.exact;
      in_level = std::max(in_level, in.level);
      sup.insert(sup.end(), r.support[in_net(j)].begin(),
                 r.support[in_net(j)].end());
    }
    std::sort(sup.begin(), sup.end());
    sup.erase(std::unique(sup.begin(), sup.end()), sup.end());
    t.level = k ? in_level + 1 : 0;
    t.built = true;

    // Inexactness is transitive: a cone containing a blown sub-cone has
    // no trajectory to build on.
    if (!inputs_exact) {
      t.exact = false;
      r.engine[g.out] = ConeEngine::kSampled;
      continue;
    }

    mgr.begin_cone(opt.node_budget);
    try {
      t.timed.assign(static_cast<std::size_t>(t.level) + 1, Bdd::kFalse);
      std::vector<int> xs(k), prev_xs(k);
      for (int tau = 0; tau <= t.level; ++tau) {
        for (int j = 0; j < k; ++j) xs[j] = value_at(traj[in_net(j)], tau - 1);
        // Once every input has stabilised the output repeats verbatim.
        t.timed[tau] = (tau > 0 && xs == prev_xs)
                           ? t.timed[tau - 1]
                           : build_gate(mgr, plan, g, xs);
        std::swap(xs, prev_xs);
      }
      t.prev = t.timed[0];

      double sa = 0.0;
      for (int tau = 1; tau <= t.level; ++tau) {
        if (t.timed[tau] == t.timed[tau - 1]) continue;
        sa += mgr.density(mgr.bxor(t.timed[tau], t.timed[tau - 1]));
      }
      r.sa[g.out] = sa;
      r.functional[g.out] =
          t.timed[t.level] == t.prev
              ? 0.0
              : mgr.density(mgr.bxor(t.timed[t.level], t.prev));
      mgr.end_cone();
    } catch (const Bdd::BudgetExceeded&) {
      mgr.rollback_cone();
      t.exact = false;
      t.timed.clear();
      r.engine[g.out] = ConeEngine::kSampled;
    }
  }

  r.bdd_nodes = mgr.num_nodes();
  std::vector<NetId> sampled;
  for (NetId net = 0; net < num_nets; ++net)
    if (r.engine[net] == ConeEngine::kSampled) sampled.push_back(net);
  r.num_sampled = static_cast<int>(sampled.size());
  r.num_exact = num_nets - r.num_sampled;
  r.fell_back = !sampled.empty();

  // One shared Monte-Carlo run answers for every blown cone — the exact
  // engine deduplicates the per-seed work the sampler would repeat, and
  // the sampler covers only what the budget priced out.
  if (r.fell_back) {
    const SimActivityResult sim =
        simulate_activity(n, opt.fallback_vectors, opt.fallback_seed,
                          opt.fallback_engine);
    for (const NetId net : sampled) r.sa[net] = sim.sa[net];
  }

  for (NetId net = 0; net < num_nets; ++net) {
    r.total_sa += r.sa[net];
    if (r.engine[net] == ConeEngine::kExact) {
      r.functional_sa += r.functional[net];
      r.glitch_sa += r.sa[net] - r.functional[net];
    }
  }
  return r;
}

}  // namespace hlp
