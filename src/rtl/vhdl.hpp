// VHDL emission — the "binding solutions, in CDFG format, are then
// converted to RTL design in VHDL with a CDFG to VHDL tool" step of the
// paper's flow (Section 6.1).
//
// Emits a synthesisable entity: one process holding the registers and the
// control-step counter, FU expressions with ieee.numeric_std arithmetic,
// and select logic per multiplexer derived from the schedule. The VHDL is
// a transport artifact in this reproduction (measurement runs on the
// elaborated netlist), but it is complete and self-contained.
#pragma once

#include <string>

#include "binding/binding.hpp"
#include "cdfg/cdfg.hpp"
#include "sched/schedule.hpp"

namespace hlp {

struct VhdlParams {
  int width = 8;
};

/// Full VHDL source (library clause + entity + architecture).
std::string emit_vhdl(const Cdfg& g, const Schedule& s, const Binding& b,
                      const VhdlParams& params = {});

}  // namespace hlp
