// Datapath elaboration: scheduled CDFG + binding solution -> registered
// gate-level netlist plus a per-cycle control plan.
//
// This is the reproduction's stand-in for the paper's CDFG-to-VHDL +
// Quartus synthesis step. Structure generated:
//   - one W-bit register per allocated register, with an input multiplexer
//     over {hold (Q feedback), every distinct producer (PI bus or FU
//     output)}; the hold arm realises the write enable;
//   - one W-bit functional unit per allocated FU, each port fed either
//     directly from its single source register or through an n-input mux
//     over the distinct source registers (the muxes whose sizes/balance
//     HLPower optimises);
//   - every mux select line is a primary input, driven per cycle by the
//     control plan derived from the schedule.
//
// Execution protocol per input sample: phase 0 loads the primary-input
// registers; phase 1+c executes control step c. Idle FU-port selects are
// sticky (hold their previous value) so idle units do not see artificial
// select toggling — both binders are simulated identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "binding/binding.hpp"
#include "cdfg/cdfg.hpp"
#include "netlist/netlist.hpp"
#include "sched/schedule.hpp"

namespace hlp {

struct DatapathParams {
  int width = 8;
};

/// One controlled multiplexer: which netlist inputs carry its select bits
/// and which select value it takes in each phase.
struct ControlGroup {
  std::string name;
  std::vector<int> input_positions;  // indices into netlist.inputs()
  std::vector<int> select_by_phase;  // [num_phases]
};

struct Datapath {
  Netlist netlist;
  int width = 0;
  int num_phases = 0;  // schedule length + 1 (load phase)
  /// Index into netlist.inputs() of bit 0 of each CDFG primary input's
  /// data bus (bits are contiguous).
  std::vector<int> data_input_pos;
  std::vector<ControlGroup> controls;

  /// Expand the control plan: values of every netlist input per phase,
  /// with data bits taken from `sample` (one word per CDFG input).
  std::vector<std::vector<char>> frames_for_sample(
      const std::vector<std::uint64_t>& sample) const;
};

Datapath elaborate_datapath(const Cdfg& g, const Schedule& s, const Binding& b,
                            const DatapathParams& params = {});

/// Frames for many samples back to back (num_samples * num_phases rows).
std::vector<std::vector<char>> make_frames(
    const Datapath& dp, const std::vector<std::vector<std::uint64_t>>& samples);

}  // namespace hlp
