// Verilog-2001 emission — companion backend to the VHDL emitter, for flows
// whose downstream tooling prefers Verilog. Produces the same datapath
// semantics: a control-step counter, registered values, FU expressions and
// schedule-derived mux selects.
#pragma once

#include <string>

#include "binding/binding.hpp"
#include "cdfg/cdfg.hpp"
#include "sched/schedule.hpp"

namespace hlp {

struct VerilogParams {
  int width = 8;
};

/// Full Verilog module source.
std::string emit_verilog(const Cdfg& g, const Schedule& s, const Binding& b,
                         const VerilogParams& params = {});

}  // namespace hlp
