#include "rtl/datapath.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "common/error.hpp"
#include "netlist/modules.hpp"

namespace hlp {
namespace {

// A producer that can be selected into a register: either a CDFG primary
// input bus or an FU output bus.
struct Producer {
  bool is_pi = false;
  int index = 0;  // PI index or FU id
  friend bool operator<(const Producer& a, const Producer& b) {
    return std::tie(a.is_pi, a.index) < std::tie(b.is_pi, b.index);
  }
  friend bool operator==(const Producer& a, const Producer& b) = default;
};

}  // namespace

std::vector<std::vector<char>> Datapath::frames_for_sample(
    const std::vector<std::uint64_t>& sample) const {
  HLP_REQUIRE(sample.size() == data_input_pos.size(),
              "sample has " << sample.size() << " words, datapath expects "
                            << data_input_pos.size());
  const std::size_t n_inputs = netlist.inputs().size();
  std::vector<std::vector<char>> frames(num_phases,
                                        std::vector<char>(n_inputs, 0));
  for (int ph = 0; ph < num_phases; ++ph) {
    auto& f = frames[ph];
    for (std::size_t p = 0; p < sample.size(); ++p)
      for (int j = 0; j < width; ++j)
        f[data_input_pos[p] + j] = (sample[p] >> j) & 1u;
    for (const auto& cg : controls) {
      const int sel = cg.select_by_phase[ph];
      for (std::size_t k = 0; k < cg.input_positions.size(); ++k)
        f[cg.input_positions[k]] = (sel >> k) & 1;
    }
  }
  return frames;
}

std::vector<std::vector<char>> make_frames(
    const Datapath& dp, const std::vector<std::vector<std::uint64_t>>& samples) {
  std::vector<std::vector<char>> out;
  out.reserve(samples.size() * dp.num_phases);
  for (const auto& s : samples) {
    auto f = dp.frames_for_sample(s);
    out.insert(out.end(), std::make_move_iterator(f.begin()),
               std::make_move_iterator(f.end()));
  }
  return out;
}

Datapath elaborate_datapath(const Cdfg& g, const Schedule& s, const Binding& b,
                            const DatapathParams& params) {
  const int w = params.width;
  HLP_REQUIRE(w >= 1 && w <= 64, "width must be in [1,64]");
  s.validate(g);
  b.regs.validate(g, s);

  Datapath dp;
  dp.width = w;
  dp.num_phases = s.num_steps + 1;
  Netlist& n = dp.netlist;
  n.set_name(g.name() + "_dp");

  const auto lifetimes = compute_lifetimes(g, s);
  const FuPortSources port_srcs = fu_port_sources(g, b.regs, b.fus);
  const auto ops_per_fu = b.fus.ops_of_fu(g);
  const int num_regs = b.regs.num_registers;
  const int num_fus = b.fus.num_fus();

  // --- primary input data buses ------------------------------------------
  std::vector<std::vector<NetId>> pi_bus(g.num_inputs());
  for (int p = 0; p < g.num_inputs(); ++p) {
    dp.data_input_pos.push_back(static_cast<int>(n.inputs().size()));
    pi_bus[p].resize(w);
    for (int j = 0; j < w; ++j)
      pi_bus[p][j] = n.add_input("pi" + std::to_string(p) + "_" + std::to_string(j));
  }

  // --- register Q nets (latch outputs exist before their D logic) --------
  std::vector<std::vector<NetId>> reg_q(num_regs, std::vector<NetId>(w));
  for (int r = 0; r < num_regs; ++r)
    for (int j = 0; j < w; ++j)
      reg_q[r][j] = n.add_net("r" + std::to_string(r) + "_q" + std::to_string(j));

  // Helper: add select-control inputs for a mux of `n_data` arms.
  auto add_control = [&](const std::string& name, int n_data) {
    ControlGroup cg;
    cg.name = name;
    for (int k = 0; k < mux_select_bits(n_data); ++k) {
      cg.input_positions.push_back(static_cast<int>(n.inputs().size()));
      n.add_input(name + "_s" + std::to_string(k));
    }
    cg.select_by_phase.assign(dp.num_phases, 0);
    return cg;
  };

  // --- FU input muxes and FU instances ------------------------------------
  std::vector<std::vector<NetId>> fu_out(num_fus);
  // Control groups are appended after select schedules are known; remember
  // per-FU port groups to fill below.
  struct PortMux {
    int fu = 0;
    char port = 'a';
    std::vector<int> regs;  // sorted distinct sources (mux arm order)
    ControlGroup cg;
  };
  std::vector<PortMux> port_muxes;

  for (int f = 0; f < num_fus; ++f) {
    const std::string fu_tag = "f" + std::to_string(f);
    auto build_port = [&](const std::vector<int>& srcs, char port) {
      HLP_CHECK(!srcs.empty(), "FU " << f << " port has no sources");
      if (srcs.size() == 1) return reg_q[srcs[0]];
      const Netlist mux = make_mux(static_cast<int>(srcs.size()), w);
      std::vector<NetId> actuals;
      for (int r : srcs)
        actuals.insert(actuals.end(), reg_q[r].begin(), reg_q[r].end());
      PortMux pm;
      pm.fu = f;
      pm.port = port;
      pm.regs = srcs;
      pm.cg = add_control(fu_tag + std::string(1, port), static_cast<int>(srcs.size()));
      for (int pos : pm.cg.input_positions) actuals.push_back(n.inputs()[pos]);
      port_muxes.push_back(std::move(pm));
      return n.instantiate(mux, actuals, fu_tag + port + "_");
    };
    const auto port_a = build_port(port_srcs.port_a[f], 'a');
    const auto port_b = build_port(port_srcs.port_b[f], 'b');
    const Netlist fu_mod = b.fus.kind_of_fu[f] == OpKind::kAdd
                               ? make_adder(w)
                               : make_multiplier(w);
    std::vector<NetId> fu_in;
    fu_in.insert(fu_in.end(), port_a.begin(), port_a.end());
    fu_in.insert(fu_in.end(), port_b.begin(), port_b.end());
    fu_out[f] = n.instantiate(fu_mod, fu_in, fu_tag + "_");
  }

  // Fill FU-port select schedules: phase 1+c executes control step c. Idle
  // phases take the mux's default arm — the register of the FU's last
  // scheduled op — mirroring the `when cstep = ... else r<last>` chain the
  // VHDL emitter produces (and the FSM-driven selects real synthesis
  // generates). Idle-cycle select changes are part of the datapath's
  // activity, and exactly where mux balance pays off.
  for (auto& pm : port_muxes) {
    std::vector<int> want(dp.num_phases, -1);
    int default_sel = 0;
    int default_cstep = -1;
    for (int op : ops_per_fu[pm.fu]) {
      const int reg = pm.port == 'a' ? b.fus.port_a_reg(g, b.regs, op)
                                     : b.fus.port_b_reg(g, b.regs, op);
      const auto it = std::lower_bound(pm.regs.begin(), pm.regs.end(), reg);
      HLP_CHECK(it != pm.regs.end() && *it == reg, "mux arm lookup failed");
      const int sel = static_cast<int>(it - pm.regs.begin());
      want[1 + s.cstep_of_op[op]] = sel;
      if (s.cstep_of_op[op] > default_cstep) {
        default_cstep = s.cstep_of_op[op];
        default_sel = sel;
      }
    }
    for (int ph = 0; ph < dp.num_phases; ++ph)
      pm.cg.select_by_phase[ph] = want[ph] >= 0 ? want[ph] : default_sel;
    dp.controls.push_back(std::move(pm.cg));
  }

  // --- register input muxes + latches -------------------------------------
  // Producers per register, and which phase writes which producer.
  std::vector<std::vector<Producer>> producers(num_regs);
  std::vector<std::map<int, Producer>> write_at_phase(num_regs);
  for (int v = 0; v < num_values(g); ++v) {
    const int r = b.regs.reg_of_value[v];
    Producer pr;
    if (v < g.num_inputs()) {
      pr.is_pi = true;
      pr.index = v;
    } else {
      pr.is_pi = false;
      pr.index = b.fus.fu_of_op[v - g.num_inputs()];
    }
    producers[r].push_back(pr);
    const int phase = lifetimes[v].birth;  // latched at the edge ending it
    HLP_CHECK(write_at_phase[r].emplace(phase, pr).second,
              "register " << r << " written twice in phase " << phase);
  }
  for (auto& ps : producers) {
    std::sort(ps.begin(), ps.end());
    ps.erase(std::unique(ps.begin(), ps.end()), ps.end());
  }

  for (int r = 0; r < num_regs; ++r) {
    const std::string tag = "r" + std::to_string(r);
    const int arms = 1 + static_cast<int>(producers[r].size());  // arm 0: hold
    const Netlist mux = make_mux(arms, w);
    std::vector<NetId> actuals;
    actuals.insert(actuals.end(), reg_q[r].begin(), reg_q[r].end());
    for (const Producer& pr : producers[r]) {
      const auto& bus = pr.is_pi ? pi_bus[pr.index] : fu_out[pr.index];
      actuals.insert(actuals.end(), bus.begin(), bus.end());
    }
    ControlGroup cg = add_control(tag, arms);
    for (int pos : cg.input_positions) actuals.push_back(n.inputs()[pos]);
    const auto d_bus = n.instantiate(mux, actuals, tag + "m_");
    for (int j = 0; j < w; ++j) n.add_latch(reg_q[r][j], d_bus[j]);

    for (const auto& [phase, pr] : write_at_phase[r]) {
      const auto it =
          std::lower_bound(producers[r].begin(), producers[r].end(), pr);
      cg.select_by_phase[phase] =
          1 + static_cast<int>(it - producers[r].begin());
    }
    dp.controls.push_back(std::move(cg));
  }

  // --- primary outputs -----------------------------------------------------
  std::vector<char> emitted(num_regs, 0);
  for (int o = 0; o < g.num_outputs(); ++o) {
    const int r = b.regs.reg_of_value[value_id(g, g.output(o).value)];
    if (emitted[r]) continue;
    emitted[r] = 1;
    for (int j = 0; j < w; ++j) n.add_output(reg_q[r][j]);
  }

  n.validate();
  return dp;
}

}  // namespace hlp
