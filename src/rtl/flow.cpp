#include "rtl/flow.hpp"

#include <cerrno>
#include <climits>
#include <cstdlib>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "sim/vectors.hpp"

namespace hlp {

int vectors_from_env(int fallback) {
  return env_int("HLP_VECTORS", fallback);
}

FlowResult run_flow(const Cdfg& g, const Schedule& s, const Binding& b,
                    const FlowParams& params) {
  FlowResult r;

  // RTL elaboration + "synthesis" (technology mapping).
  const Datapath dp = elaborate_datapath(g, s, b, DatapathParams{params.width});
  r.mapped = tech_map(dp.netlist, params.map);
  r.clock_period_ns = clock_period_ns(r.mapped.lut_netlist, params.timing);
  r.mux_stats = compute_datapath_stats(g, b.regs, b.fus);

  // Stimulus: num_vectors random input samples, each run through the whole
  // schedule (load phase + every control step).
  const auto samples = random_samples(params.num_vectors, g.num_inputs(),
                                      params.width, params.seed);
  const auto frames = make_frames(dp, samples);
  r.sim = simulate_frames(r.mapped.lut_netlist, frames);

  const double functional_per_cycle =
      r.sim.num_cycles
          ? static_cast<double>(r.sim.functional_transitions) /
                static_cast<double>(r.sim.num_cycles)
          : 0.0;
  r.report = power_from_toggles(r.mapped.lut_netlist, r.sim.toggles,
                                r.sim.num_cycles, r.clock_period_ns,
                                functional_per_cycle, params.power);
  return r;
}

}  // namespace hlp
