// End-to-end evaluation flow — the reproduction of the paper's Quartus II
// pipeline (Section 6.1):
//
//   binding -> RTL elaboration -> technology mapping (place of "quartus_sh
//   --flow compile") -> static timing -> unit-delay simulation with random
//   vectors ("quartus_sim" with the .vwf) -> power analysis ("quartus_pow").
//
// Both binders are pushed through the identical flow with identical seeds,
// matching the paper's controlled setup.
#pragma once

#include <cstdint>

#include "binding/binding.hpp"
#include "binding/datapath_stats.hpp"
#include "cdfg/cdfg.hpp"
#include "mapper/techmap.hpp"
#include "netlist/timing.hpp"
#include "power/power_model.hpp"
#include "rtl/datapath.hpp"
#include "sched/schedule.hpp"
#include "sim/schedule_sim.hpp"

namespace hlp {

struct FlowParams {
  int width = 8;
  /// Evaluation mapping is depth-oriented (the paper sets Quartus to
  /// "optimization technique: speed"); the glitch-aware mapping mode is
  /// used inside the SA *estimator*, not here.
  MapParams map{CutParams{}, MapMode::kDepth};
  TimingModel timing;
  PowerParams power;
  int num_vectors = 1000;
  std::uint64_t seed = 42;
};

struct FlowResult {
  MapResult mapped;
  double clock_period_ns = 0.0;
  CycleSimStats sim;
  PowerReport report;
  DatapathStats mux_stats;
};

/// Number of vectors to simulate: HLP_VECTORS env override, else `fallback`.
int vectors_from_env(int fallback = 1000);

FlowResult run_flow(const Cdfg& g, const Schedule& s, const Binding& b,
                    const FlowParams& params = {});

}  // namespace hlp
