#include "rtl/partial_datapath.hpp"

#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "netlist/modules.hpp"

namespace hlp {
namespace {

// Create `n_data * width` register-source inputs plus select inputs, run
// them through a mux (or pass through when n_data == 1), return the `width`
// port nets.
std::vector<NetId> build_port(Netlist& top, const Netlist& mux_model,
                              int n_data, int width, const std::string& tag) {
  std::vector<NetId> actuals;
  for (int i = 0; i < n_data; ++i)
    for (int j = 0; j < width; ++j)
      actuals.push_back(
          top.add_input(tag + "r" + std::to_string(i) + "_" + std::to_string(j)));
  const int sbits = mux_select_bits(n_data);
  for (int s = 0; s < sbits; ++s)
    actuals.push_back(top.add_input(tag + "sel" + std::to_string(s)));
  if (n_data == 1) {
    // Direct connection: the mux model for n=1 is pure pass-through; skip
    // instantiating buffers and feed the registers straight through.
    return std::vector<NetId>(actuals.begin(), actuals.begin() + width);
  }
  return top.instantiate(mux_model, actuals, tag);
}

}  // namespace

Netlist make_partial_datapath(OpKind kind, int n_mux_a, int n_mux_b,
                              int width) {
  HLP_REQUIRE(n_mux_a >= 1 && n_mux_b >= 1, "mux sizes must be >= 1");
  HLP_REQUIRE(width >= 1, "width must be >= 1");
  Netlist top(std::string(to_string(kind)) + "_" + std::to_string(n_mux_a) +
              "_" + std::to_string(n_mux_b));
  const Netlist mux_a = make_mux(n_mux_a, width);
  const Netlist mux_b = make_mux(n_mux_b, width);
  const Netlist fu =
      kind == OpKind::kAdd ? make_adder(width) : make_multiplier(width);

  const auto port_a = build_port(top, mux_a, n_mux_a, width, "a_");
  const auto port_b = build_port(top, mux_b, n_mux_b, width, "b_");

  std::vector<NetId> fu_inputs;
  fu_inputs.insert(fu_inputs.end(), port_a.begin(), port_a.end());
  fu_inputs.insert(fu_inputs.end(), port_b.begin(), port_b.end());
  const auto outs = top.instantiate(fu, fu_inputs, "fu_");
  for (NetId o : outs) top.add_output(o);
  top.validate();
  return top;
}

PartialDatapathBlif make_partial_datapath_blif(OpKind kind, int n_mux_a,
                                               int n_mux_b, int width) {
  PartialDatapathBlif out;
  const Netlist mux_a = make_mux(n_mux_a, width);
  const Netlist mux_b = make_mux(n_mux_b, width);
  const Netlist fu =
      kind == OpKind::kAdd ? make_adder(width) : make_multiplier(width);
  out.library.add(mux_a);
  out.library.add(mux_b);
  out.library.add(fu);

  std::ostringstream os;
  const std::string model_name = std::string(to_string(kind)) + "_" +
                                 std::to_string(n_mux_a) + "_" +
                                 std::to_string(n_mux_b);
  os << "# partial datapath (Figure 2): " << model_name << "\n";
  os << ".search " << mux_a.name() << ".blif\n";
  if (mux_b.name() != mux_a.name()) os << ".search " << mux_b.name() << ".blif\n";
  os << ".search " << fu.name() << ".blif\n";
  os << ".model " << model_name << "\n";

  auto port_inputs = [&](const char* tag, int n_data) {
    std::vector<std::string> names;
    for (int i = 0; i < n_data; ++i)
      for (int j = 0; j < width; ++j)
        names.push_back(std::string(tag) + "r" + std::to_string(i) + "_" +
                        std::to_string(j));
    for (int s = 0; s < mux_select_bits(n_data); ++s)
      names.push_back(std::string(tag) + "sel" + std::to_string(s));
    return names;
  };
  const auto ins_a = port_inputs("a_", n_mux_a);
  const auto ins_b = port_inputs("b_", n_mux_b);
  os << ".inputs";
  for (const auto& s : ins_a) os << " " << s;
  for (const auto& s : ins_b) os << " " << s;
  os << "\n.outputs";
  for (int j = 0; j < width; ++j) os << " s" << j;
  os << "\n";

  auto emit_mux = [&](const Netlist& mux, const std::vector<std::string>& ins,
                      const char* tag) {
    os << ".subckt " << mux.name();
    for (std::size_t i = 0; i < ins.size(); ++i)
      os << " " << mux.net_name(mux.inputs()[i]) << "=" << ins[i];
    for (int j = 0; j < width; ++j)
      os << " y" << j << "=" << tag << "y" << j;
    os << "\n";
  };
  // Port A / B muxes (a 1-input "mux" is still emitted; it flattens to a
  // pass-through).
  emit_mux(mux_a, ins_a, "a_");
  emit_mux(mux_b, ins_b, "b_");

  os << ".subckt " << fu.name();
  for (int j = 0; j < width; ++j) os << " a" << j << "=a_y" << j;
  for (int j = 0; j < width; ++j) os << " b" << j << "=b_y" << j;
  for (int j = 0; j < width; ++j) os << " s" << j << "=s" << j;
  os << "\n.end\n";
  out.blif = os.str();
  return out;
}

}  // namespace hlp
