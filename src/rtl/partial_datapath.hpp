// Partial-datapath netlist generation (Figure 2 of the paper).
//
// A partial datapath is one functional unit plus the two input multiplexers
// a candidate binding would require: muxA (nA registers feed port A) and
// muxB (nB registers feed port B). The paper generates these as .blif by
// importing the library models with `.search` and instantiating them with
// `.subckt`; `make_partial_datapath_blif` reproduces exactly that text,
// and `make_partial_datapath` builds the flattened netlist directly.
//
// The glitch-aware SA of this netlist (after 4-LUT mapping) is the SA term
// of the edge-weight equation (Eq. 4).
#pragma once

#include <string>

#include "cdfg/cdfg.hpp"
#include "netlist/blif.hpp"
#include "netlist/netlist.hpp"

namespace hlp {

/// Flattened gate-level partial datapath: FU of `kind`, `width` bits, with
/// an nA-input mux on port A and an nB-input mux on port B (nA/nB >= 1;
/// size 1 means a direct register connection, no mux gates).
Netlist make_partial_datapath(OpKind kind, int n_mux_a, int n_mux_b,
                              int width);

/// The same datapath as hierarchical BLIF text (.search + .subckt, as in
/// Figure 2), plus the library needed to flatten it again with read_blif.
struct PartialDatapathBlif {
  std::string blif;
  BlifLibrary library;
};
PartialDatapathBlif make_partial_datapath_blif(OpKind kind, int n_mux_a,
                                               int n_mux_b, int width);

}  // namespace hlp
