#include "flow/flow_context.hpp"

#include <algorithm>
#include <ios>
#include <sstream>

#include "binding/register_binder.hpp"
#include "common/error.hpp"
#include "flow/pipeline.hpp"
#include "sched/list_scheduler.hpp"

namespace hlp::flow {

FlowContext::FlowContext(Cdfg g, ResourceConstraint rc, ContextOptions opt,
                         SaCache* shared_cache)
    : g_(std::move(g)),
      rc_(rc),
      opt_(std::move(opt)),
      shared_cache_(shared_cache) {
  if (shared_cache_) {
    HLP_REQUIRE(shared_cache_->width() == opt_.width,
                "shared SaCache width " << shared_cache_->width()
                                        << " != context width " << opt_.width);
    // The shared cache's mode governs; an explicit request that disagrees
    // is a configuration error, not a silent override.
    HLP_REQUIRE(!opt_.sa_mode || *opt_.sa_mode == shared_cache_->mode(),
                "context SA mode '"
                    << sa_mode_name(*opt_.sa_mode)
                    << "' != shared SaCache mode '"
                    << sa_mode_name(shared_cache_->mode()) << "'");
    opt_.sa_mode = shared_cache_->mode();
  } else {
    opt_.sa_mode = effective_sa_mode(opt_.sa_mode);
    owned_cache_ =
        std::make_unique<SaCache>(opt_.width, MapParams{}, *opt_.sa_mode);
  }
  stage_cache_ = std::make_unique<StageCache>();
}

FlowContext::~FlowContext() = default;

namespace {

// Structural digest of a CDFG: FNV-1a 64 over an exact serialisation of
// everything downstream stages can observe (names included — net names in
// the elaborated datapath derive from them). Two providers that reuse a
// benchmark name for different graphs therefore land in different
// artifact-store scopes instead of aliasing each other's entries.
std::string cdfg_digest(const Cdfg& g) {
  std::ostringstream os;
  os << g.name() << ';' << g.num_inputs() << ';';
  for (int i = 0; i < g.num_inputs(); ++i) os << g.input_name(i) << ',';
  os << ';';
  for (const Operation& op : g.ops())
    os << op.name << ',' << static_cast<int>(op.kind) << ','
       << static_cast<int>(op.lhs.kind) << ',' << op.lhs.index << ','
       << static_cast<int>(op.rhs.kind) << ',' << op.rhs.index << ';';
  for (const Output& out : g.outputs())
    os << out.name << ',' << static_cast<int>(out.value.kind) << ','
       << out.value.index << ';';
  const std::string s = os.str();
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  std::ostringstream hex;
  hex << std::hex << h;
  return hex.str();
}

}  // namespace

std::string FlowContext::store_scope(const std::string& runner_key) const {
  return runner_key + "|g" + cdfg_digest(g_);
}

void FlowContext::set_artifact_store(store::ArtifactStore* store,
                                     const std::string& scope) {
  stage_cache_->bind_store(store, store_scope(scope));
}

std::string FlowContext::binding_hash(const BinderSpec& binder,
                                      const MapParams& map,
                                      const TimingModel& timing) {
  const ResourceConstraint& resolved = rc();
  std::ostringstream key;
  key << std::hexfloat;
  // opt_.sa_mode is concrete after construction; different SA backends
  // produce different tables, hence different bindings — distinct keys.
  key << opt_.scheduler << '|' << opt_.sched_spec.min_latency << '|'
      << opt_.sched_spec.latency_slack << '|' << resolved.adders << 'x'
      << resolved.multipliers << '|' << opt_.width << '|' << opt_.reg_seed
      << '|' << sa_mode_name(sa_cache().mode())
      << '|' << binder.name << '|' << binder.alpha << '|' << binder.beta_add
      << '|' << binder.beta_mult << '|' << binder.refine << '|' << map.cuts.k
      << '|' << map.cuts.max_cuts << '|' << static_cast<int>(map.mode) << '|'
      << timing.lut_delay_ns << '|' << timing.net_delay_ns << '|'
      << timing.reg_overhead_ns;
  return key.str();
}

void FlowContext::ensure_scheduled_locked() {
  if (scheduled_) return;
  // Zero entries mean "schedule minimum": probe with the loosest feasible
  // allocation, then read the per-kind max density (Theorem 1's bound).
  if (rc_.adders == 0 || rc_.multipliers == 0) {
    const Schedule probe = list_schedule(
        g_, {std::max(1, rc_.adders), std::max(1, rc_.multipliers)});
    if (rc_.adders == 0)
      rc_.adders = std::max(1, probe.max_density(g_, OpKind::kAdd));
    if (rc_.multipliers == 0)
      rc_.multipliers = std::max(1, probe.max_density(g_, OpKind::kMult));
  }
  const SchedulerFn& scheduler = scheduler_registry().at(opt_.scheduler);
  s_ = scheduler(g_, rc_, opt_.sched_spec);
  // Latency-driven schedulers balance but do not constrain; widen rc so the
  // binders always receive a feasible allocation.
  rc_.adders = std::max(rc_.adders, s_.max_density(g_, OpKind::kAdd));
  rc_.multipliers = std::max(rc_.multipliers, s_.max_density(g_, OpKind::kMult));
  scheduled_ = true;
}

void FlowContext::ensure_regs_locked() {
  ensure_scheduled_locked();
  if (regs_bound_) return;
  regs_ = bind_registers(g_, s_, opt_.reg_seed);
  regs_bound_ = true;
}

const Schedule& FlowContext::schedule() {
  std::lock_guard<std::mutex> lock(mu_);
  ensure_scheduled_locked();
  return s_;
}

const ResourceConstraint& FlowContext::rc() {
  std::lock_guard<std::mutex> lock(mu_);
  ensure_scheduled_locked();
  return rc_;
}

const RegisterBinding& FlowContext::regs() {
  std::lock_guard<std::mutex> lock(mu_);
  ensure_regs_locked();
  return regs_;
}

}  // namespace hlp::flow
