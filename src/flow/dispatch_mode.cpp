#include "flow/dispatch_mode.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace hlp::flow {

namespace {

constexpr const char* kAccepted = "auto, static, stream";

}  // namespace

const std::vector<DispatchMode>& all_dispatch_modes() {
  static const std::vector<DispatchMode> kModes = {
      DispatchMode::kAuto, DispatchMode::kStatic, DispatchMode::kStream};
  return kModes;
}

const char* dispatch_mode_name(DispatchMode mode) {
  switch (mode) {
    case DispatchMode::kAuto:
      return "auto";
    case DispatchMode::kStatic:
      return "static";
    case DispatchMode::kStream:
      return "stream";
  }
  HLP_CHECK(false, "invalid DispatchMode value");
}

DispatchMode parse_dispatch_mode(const std::string& value) {
  for (const DispatchMode mode : all_dispatch_modes())
    if (value == dispatch_mode_name(mode)) return mode;
  HLP_REQUIRE(false, "HLP_DISPATCH='" << value
                                      << "' is not a dispatch mode (accepted: "
                                      << kAccepted << ")");
}

DispatchMode dispatch_mode_from_env(DispatchMode fallback) {
  const char* env = std::getenv("HLP_DISPATCH");
  if (!env || *env == '\0') return fallback;
  return parse_dispatch_mode(env);
}

DispatchMode effective_dispatch_mode(DispatchMode requested) {
  return requested == DispatchMode::kAuto
             ? dispatch_mode_from_env(DispatchMode::kAuto)
             : requested;
}

DispatchMode resolve_dispatch_mode(DispatchMode requested, int workers) {
  const DispatchMode mode = effective_dispatch_mode(requested);
  if (mode != DispatchMode::kAuto) return mode;
  return workers >= 2 ? DispatchMode::kStream : DispatchMode::kStatic;
}

}  // namespace hlp::flow
