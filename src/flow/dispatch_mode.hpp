// The HLP_DISPATCH knob: how the DistributedRunner hands a job grid to
// its worker processes.
//
// Both strategies produce bit-identical results (the property test in
// tests/distributed_test.cpp compares them and the threaded runner on a
// randomized grid), so the knob only changes scheduling and wall-clock:
//
//   static  contiguous up-front slices, one manifest file and one
//           batch-mode hlp_worker per slice (the PR-5 protocol, kept as
//           the oracle). The run waits on the slowest slice — skewed
//           grids (anneal binders, big benchmarks next to cheap asap
//           jobs) leave every other worker idle behind the straggler.
//   stream  work-stealing: long-lived hlp_worker --serve processes pull
//           one unit (a whole seed-coalescing chunk) at a time over
//           stdin/stdout as they finish — fast workers naturally steal
//           the tail, and timeouts/crashes cost one unit, not a slice.
//   auto    defers to HLP_DISPATCH, then picks stream whenever the run
//           actually distributes (>= 2 workers): streaming is never
//           slower than a static split on the same units and strictly
//           better under skew.
//
// Parsing is strict, like HLP_SETTLE: unset/empty falls back, anything
// else must be one of the names above or the sweep dies loudly. Every
// mode is supported on every build, so there is no resolve/downgrade
// axis.
#pragma once

#include <string>
#include <vector>

namespace hlp::flow {

enum class DispatchMode { kAuto, kStatic, kStream };

/// Every mode, kAuto first (handy for sweeps and option listings).
const std::vector<DispatchMode>& all_dispatch_modes();

/// Canonical knob spelling: "auto", "static", "stream".
const char* dispatch_mode_name(DispatchMode mode);

/// Strict parse of a knob value (the exact lowercase names above); throws
/// hlp::Error naming HLP_DISPATCH, the offending value and the accepted
/// set.
DispatchMode parse_dispatch_mode(const std::string& value);

/// HLP_DISPATCH env override, else `fallback`. Unset/empty falls back;
/// garbage throws (strict, like settle_mode_from_env).
DispatchMode dispatch_mode_from_env(DispatchMode fallback = DispatchMode::kAuto);

/// The mode a runner spec resolves to: an explicit spec wins, kAuto
/// consults HLP_DISPATCH. The result may still be kAuto — resolve it
/// against a worker count with resolve_dispatch_mode.
DispatchMode effective_dispatch_mode(DispatchMode requested);

/// Concrete mode for a run with `workers` processes: kAuto becomes
/// kStream when the run distributes (workers >= 2), kStatic otherwise
/// (the single-worker path is the in-process fallback either way).
DispatchMode resolve_dispatch_mode(DispatchMode requested, int workers);

}  // namespace hlp::flow
