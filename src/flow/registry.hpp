// String-keyed registries for the pluggable pipeline stages: schedulers
// and functional-unit binders.
//
// CLIs, benches and the experiment runner select algorithms by name
// ("list", "fds"; "hlpower", "lopass") instead of hard-coded if-chains, so
// adding an algorithm is one `add()` call — every driver picks it up. The
// built-in algorithms are registered on first access of the singletons.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "binding/binding.hpp"
#include "cdfg/cdfg.hpp"
#include "core/edge_weight.hpp"
#include "sched/schedule.hpp"

namespace hlp::flow {

class FlowContext;

/// Per-run binder selection: which algorithm plus its tuning knobs.
/// Negative beta values mean "use the EdgeWeightParams default".
struct BinderSpec {
  std::string name = "hlpower";
  double alpha = 0.5;
  double beta_add = -1.0;
  double beta_mult = -1.0;
  /// Run post-binding port refinement (the pipeline's `refine` stage).
  bool refine = false;
};

/// The Eq. 4 weighting a BinderSpec selects: alpha always, betas only when
/// non-negative (the sentinel for "keep the default"). Single source of
/// truth for the hlpower binder and the refine stage.
EdgeWeightParams edge_weight_params(const BinderSpec& spec);

/// Scheduler tuning knobs shared by all registered schedulers.
struct SchedulerSpec {
  /// Stretch the schedule to at least this many steps (0 = natural).
  int min_latency = 0;
  /// Latency bound slack over CDFG depth for latency-driven schedulers
  /// (force-directed uses depth + slack).
  int latency_slack = 2;
};

using SchedulerFn = std::function<Schedule(
    const Cdfg&, const ResourceConstraint&, const SchedulerSpec&)>;
using BinderFn = std::function<FuBinding(FlowContext&, const BinderSpec&)>;

/// Name -> algorithm map. Lookup failure throws hlp::Error listing the
/// registered names. Registration is expected at startup (not
/// thread-safe against concurrent lookup).
template <typename Fn>
class Registry {
 public:
  void add(const std::string& name, Fn fn) { entries_[name] = std::move(fn); }
  bool contains(const std::string& name) const {
    return entries_.count(name) != 0;
  }
  const Fn& at(const std::string& name) const;
  /// Registered names, sorted.
  std::vector<std::string> names() const {
    std::vector<std::string> out;
    for (const auto& [name, fn] : entries_) out.push_back(name);
    return out;
  }

 private:
  std::map<std::string, Fn> entries_;
};

/// Process-wide registries, pre-populated with the built-in algorithms:
/// schedulers `list` (resource-constrained list scheduling) and `fds`
/// (force-directed); binders `hlpower` (glitch-aware, Eq. 4) and `lopass`
/// (glitch-blind baseline).
Registry<SchedulerFn>& scheduler_registry();
Registry<BinderFn>& binder_registry();

}  // namespace hlp::flow
