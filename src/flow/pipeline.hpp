// Staged evaluation pipeline — the decomposition of `run_flow` (the
// paper's Section 6.1 Quartus stand-in) into named, individually
// overridable stages with per-stage wall-clock timing:
//
//   schedule -> bind-regs -> bind-fus -> refine -> elaborate -> map ->
//   time -> simulate -> power
//
// The first two stages read the memoised artifacts of the FlowContext;
// `bind-fus` resolves the binder by name through the registry; `refine` is
// a no-op unless the BinderSpec asks for port refinement. The tail stages
// perform exactly the computations of `run_flow` with the same seeds, so
// for a fixed seed the pipeline reproduces `run_flow`'s numbers bit for
// bit (asserted by tests/flow_test.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/port_refine.hpp"
#include "flow/flow_context.hpp"
#include "flow/registry.hpp"
#include "rtl/datapath.hpp"
#include "rtl/flow.hpp"
#include "sim/bit_sim.hpp"

namespace hlp::flow {

/// Per-run evaluation parameters (the per-job half of FlowParams; the
/// width lives on the context).
struct RunSpec {
  BinderSpec binder;
  int num_vectors = 1000;
  /// Simulation stimulus seed.
  std::uint64_t seed = 42;
  /// Evaluation mapping is depth-oriented, as in run_flow.
  MapParams map{CutParams{}, MapMode::kDepth};
  TimingModel timing;
  PowerParams power;
  /// Which engine the `simulate` stage evaluates the stimulus with. The
  /// bit-parallel batch engine is the default; the scalar event simulator
  /// is kept as the reference oracle (results are bit-identical).
  SimEngine sim_engine = SimEngine::kBatched;
};

struct StageTiming {
  std::string name;
  double seconds = 0.0;
};

struct PipelineOutcome {
  /// The bound FUs (after refinement, when requested).
  FuBinding fus;
  /// Same shape as run_flow's result: mapping, clock, sim, power, mux.
  FlowResult flow;
  /// Valid iff `refined` (the refine stage ran).
  PortRefineResult refine;
  bool refined = false;
  /// Wall-clock of every stage, in pipeline order.
  std::vector<StageTiming> timings;
  /// Seconds spent in the `bind-fus` stage (+ `refine` when it ran) — the
  /// "HLPower runtime" column of Table 2.
  double bind_seconds = 0.0;

  /// Timing of one stage by name (0.0 if absent).
  double stage_seconds(const std::string& name) const;
};

/// Mutable state threaded through the stages. Custom stage overrides
/// read/write whichever artifacts they care about.
struct PipelineState {
  PipelineState(FlowContext& c, const RunSpec& s) : ctx(c), spec(s) {}

  FlowContext& ctx;
  const RunSpec& spec;
  Schedule schedule;
  RegisterBinding regs;
  Datapath datapath;
  PipelineOutcome out;
};

using StageFn = std::function<void(PipelineState&)>;

class Pipeline {
 public:
  struct Stage {
    std::string name;
    StageFn fn;
  };

  /// The canonical nine-stage pipeline.
  static Pipeline standard();
  /// The canonical stage names, in order.
  static const std::vector<std::string>& stage_names();

  /// Replace the implementation of one named stage (throws if unknown).
  Pipeline& replace(const std::string& name, StageFn fn);

  /// Run every stage in order, timing each.
  PipelineOutcome run(FlowContext& ctx, const RunSpec& spec = {}) const;

  const std::vector<Stage>& stages() const { return stages_; }

 private:
  std::vector<Stage> stages_;
};

}  // namespace hlp::flow
