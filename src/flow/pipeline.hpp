// Staged evaluation pipeline — the decomposition of `run_flow` (the
// paper's Section 6.1 Quartus stand-in) into named, individually
// overridable stages with per-stage wall-clock timing:
//
//   schedule -> bind-regs -> bind-fus -> refine -> elaborate -> map ->
//   time -> simulate -> power
//
// The first two stages read the memoised artifacts of the FlowContext;
// `bind-fus` resolves the binder by name through the registry; `refine` is
// a no-op unless the BinderSpec asks for port refinement. The tail stages
// perform exactly the computations of `run_flow` with the same seeds, so
// for a fixed seed the pipeline reproduces `run_flow`'s numbers bit for
// bit (asserted by tests/flow_test.cpp).
//
// Two amortisation layers ride on top, both result-preserving:
//  - StageCache: the bind-fus..time artifacts are memoised per context
//    under FlowContext::binding_hash(), so re-running a binding skips
//    straight to simulate (tests/pipeline_cache_test.cpp).
//  - run_batch: many stimulus seeds of one RunSpec share a single head
//    pass, then ride the word-parallel simulator's lanes — one seed per
//    bit, 64 per word for the u64 backend and up to 512 under
//    HLP_SIMD/avx512 (tests/experiment_batch_test.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/port_refine.hpp"
#include "flow/flow_context.hpp"
#include "flow/registry.hpp"
#include "rtl/datapath.hpp"
#include "rtl/flow.hpp"
#include "sim/bit_sim.hpp"

namespace hlp::store {
class ArtifactStore;  // store/artifact_store.hpp
}

namespace hlp::flow {

/// Per-run evaluation parameters (the per-job half of FlowParams; the
/// width lives on the context).
struct RunSpec {
  BinderSpec binder;
  int num_vectors = 1000;
  /// Simulation stimulus seed.
  std::uint64_t seed = 42;
  /// Evaluation mapping is depth-oriented, as in run_flow.
  MapParams map{CutParams{}, MapMode::kDepth};
  TimingModel timing;
  PowerParams power;
  /// Which engine the `simulate` stage evaluates the stimulus with. The
  /// bit-parallel batch engine is the default; the scalar event simulator
  /// is kept as the reference oracle (results are bit-identical).
  SimEngine sim_engine = SimEngine::kBatched;
  /// Word width of the batched engine (ignored for kScalar). kAuto defers
  /// to the HLP_SIMD env var and then picks per batch: the narrowest
  /// CPU-supported backend that covers the lane demand (seed-group size /
  /// frame count), up to the widest available — so a 64-seed group stays
  /// on the u64 word and a 512-seed group rides avx512. Explicit modes
  /// win over the env var. Every width is bit-identical — the knob only
  /// changes how many stimulus lanes one netlist traversal settles (64
  /// for u64, up to 512 for avx512).
  SimdMode simd = SimdMode::kAuto;
  /// Unit-delay settle strategy of the batched engine (ignored for
  /// kScalar). kAuto defers to the HLP_SETTLE env var and then lets each
  /// simulator instance calibrate: the first settles are timed alternately
  /// under the event-driven and levelized engines and the faster one is
  /// locked in for the rest of the batch. Explicit modes win over the env
  /// var. Every strategy is bit-identical — like `simd`, this knob only
  /// moves wall-clock (see docs/architecture.md).
  SettleMode settle = SettleMode::kAuto;
  /// Requested SA backend (power/sa_mode.hpp). The cache actually used
  /// belongs to the CONTEXT, so this field is a pin, not a selector: a
  /// concrete value makes run()/run_batch() verify the context's SaCache
  /// runs that mode (throwing on mismatch — catching a sweep whose specs
  /// and contexts were resolved under different HLP_SA_MODE values), an
  /// absent value accepts whatever the context resolved. Unlike `simd` /
  /// `settle` this knob changes VALUES, which is why it pins rather than
  /// switches per run.
  std::optional<SaMode> sa;
  /// Consult the context's StageCache for the bind-fus..time artifacts
  /// (hits skip those stages; results are identical either way). Ignored —
  /// always off — on a pipeline whose pre-simulate stages were replace()d,
  /// since the cache key cannot see a custom stage body.
  bool use_stage_cache = true;
};

/// Memoised per-binding artifacts of the pipeline's bind-fus -> refine ->
/// elaborate -> map -> time span, keyed by FlowContext::binding_hash().
/// One cache per FlowContext (the key does not encode the CDFG), so a
/// design-space sweep that revisits a binding on its context skips from
/// bind-fus straight to simulate. Thread-safe; concurrent misses on one
/// key both compute (value-identical by determinism) and the first insert
/// wins.
/// The sa/settle/simd mode tags of one cached artifact, mirroring the
/// ExperimentRunner group-key axes: the resolved SA backend name plus the
/// *requested* settle and simd mode names. Only meaningful when a
/// persistent ArtifactStore is bound — the in-memory map keys on
/// binding_hash() alone (which already encodes the SA mode; settle/simd
/// cannot change the bind-fus..time artifacts).
struct StoreTags {
  std::string sa;
  std::string settle;
  std::string simd;
};

class StageCache {
 public:
  struct Entry {
    FuBinding fus;  // post-refine when `refined`
    PortRefineResult refine;
    bool refined = false;
    DatapathStats mux_stats;
    Datapath datapath;
    MapResult mapped;
    double clock_period_ns = 0.0;
  };

  /// The published entry for `key`, or null. Counts one hit or miss.
  std::shared_ptr<const Entry> find(const std::string& key);
  /// Store-aware probe: a memory miss (still counted as a miss) falls
  /// through to the bound ArtifactStore; a disk hit (counted via
  /// disk_hits) repopulates the memory map so later probes stay local.
  /// Without a bound store this is exactly find(key).
  std::shared_ptr<const Entry> find(const std::string& key,
                                    const StoreTags& tags);
  /// Publish the artifacts for `key` (first writer wins).
  void insert(const std::string& key, Entry entry);
  /// Store-aware publish: also persists the entry to the bound
  /// ArtifactStore (atomic write-then-rename, overlap-must-agree) before
  /// inserting it into the memory map.
  void insert(const std::string& key, const StoreTags& tags, Entry entry);

  /// Bind a persistent ArtifactStore (non-owning; null unbinds). `scope`
  /// is the context-identity half of every ArtifactKey this cache reads
  /// or writes — see FlowContext::set_artifact_store.
  void bind_store(store::ArtifactStore* store, std::string scope);
  store::ArtifactStore* store() const { return store_; }

  std::uint64_t hits() const { return hits_.load(); }
  std::uint64_t misses() const { return misses_.load(); }
  /// Memory misses satisfied from the bound ArtifactStore.
  std::uint64_t disk_hits() const { return disk_hits_.load(); }
  std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const Entry>> entries_;
  store::ArtifactStore* store_ = nullptr;
  std::string store_scope_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> disk_hits_{0};
};

struct StageTiming {
  std::string name;
  double seconds = 0.0;
};

struct PipelineOutcome {
  /// The bound FUs (after refinement, when requested).
  FuBinding fus;
  /// Same shape as run_flow's result: mapping, clock, sim, power, mux.
  FlowResult flow;
  /// Valid iff `refined` (the refine stage ran).
  PortRefineResult refine;
  bool refined = false;
  /// Wall-clock of every stage, in pipeline order. A batched run records
  /// the whole word-parallel batch under `simulate`.
  std::vector<StageTiming> timings;
  /// Names of the stages whose artifacts came from the context's
  /// StageCache instead of being recomputed (empty on a cache miss or
  /// when caching is off).
  std::vector<std::string> cached_stages;
  /// Seconds spent in the `bind-fus` stage (+ `refine` when it ran) — the
  /// "HLPower runtime" column of Table 2.
  double bind_seconds = 0.0;

  /// Timing of one stage by name (0.0 if absent).
  double stage_seconds(const std::string& name) const;
};

/// Mutable state threaded through the stages. Custom stage overrides
/// read/write whichever artifacts they care about.
struct PipelineState {
  PipelineState(FlowContext& c, const RunSpec& s) : ctx(c), spec(s) {}

  FlowContext& ctx;
  const RunSpec& spec;
  Schedule schedule;
  RegisterBinding regs;
  Datapath datapath;
  PipelineOutcome out;
};

using StageFn = std::function<void(PipelineState&)>;

class Pipeline {
 public:
  struct Stage {
    std::string name;
    StageFn fn;
  };

  /// The canonical nine-stage pipeline.
  static Pipeline standard();
  /// The canonical stage names, in order.
  static const std::vector<std::string>& stage_names();

  /// Replace the implementation of one named stage (throws if unknown).
  Pipeline& replace(const std::string& name, StageFn fn);

  /// Run every stage in order, timing each.
  PipelineOutcome run(FlowContext& ctx, const RunSpec& spec = {}) const;

  /// Seed-batched run: the word-parallel fast path behind ExperimentRunner
  /// job coalescing. The stages before `simulate` run ONCE (stage-cache
  /// aware, custom overrides honoured), then the built-in simulate stage
  /// evaluates every seed in `seeds` on the word-parallel simulator — one
  /// stimulus seed per lane, with the lane count (64..512) chosen by
  /// spec.simd / HLP_SIMD and seed groups chunked to the selected word
  /// width — and the post-simulate stages run per seed. Outcome i is
  /// bit-identical to run() with spec.seed = seeds[i] at ANY width;
  /// spec.seed itself is ignored. A replace()d `simulate` stage is NOT
  /// honoured here (the batch path owns stimulus generation).
  std::vector<PipelineOutcome> run_batch(
      FlowContext& ctx, const RunSpec& spec,
      const std::vector<std::uint64_t>& seeds) const;

  const std::vector<Stage>& stages() const { return stages_; }

 private:
  /// Per-run cursor over the context's StageCache.
  struct CacheCursor {
    bool enabled = false;
    bool probed = false;
    std::string key;
    StoreTags tags;  // mode tags for the persistent-store probe/publish
    std::shared_ptr<const StageCache::Entry> hit;
  };

  CacheCursor make_cursor(FlowContext& ctx, const RunSpec& spec) const;
  /// Run (or satisfy from cache) one stage, recording its timing.
  void run_stage(PipelineState& st, const Stage& stage,
                 CacheCursor& cursor) const;

  std::vector<Stage> stages_;
  /// False once a pre-simulate stage was replace()d: the StageCache key
  /// cannot encode a custom stage body, so caching would be unsound.
  bool cache_safe_ = true;
};

}  // namespace hlp::flow
