// ExperimentRunner: fan a grid of (benchmark x binder x seed x constraint)
// jobs across a std::thread pool.
//
// Every job runs the standard Pipeline on a FlowContext that is memoised
// per (benchmark, scheduler, rc, width, reg_seed) — jobs that share a
// setup share the schedule, register binding and SA cache, computed once.
// On top of that, jobs that differ ONLY in stimulus seed are coalesced
// (default on, see set_coalescing) into one Pipeline::run_batch invocation:
// the head stages run once and the seeds ride the word-parallel simulator
// one per lane — 64 lanes per u64 word, up to 512 under HLP_SIMD/avx512
// (Job::simd) — a Monte-Carlo sweep paying the netlist traversal once per
// word instead of once per seed.
// All algorithms in the library are deterministic and the SaCache
// memoisation is value-deterministic under races, so results are identical
// for any thread count and either coalescing setting; only wall-clock
// changes. Results are returned in job order; per-job failures are
// captured, not thrown (a failing coalesced group reports the error on
// every member job).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cdfg/cdfg.hpp"
#include "flow/flow_context.hpp"
#include "flow/pipeline.hpp"
#include "power/sa_cache.hpp"

namespace hlp::store {
class ArtifactStore;   // store/artifact_store.hpp
struct ArtifactKey;    // store/artifact_store.hpp
}

namespace hlp::flow {

/// Worker threads from the HLP_JOBS env var, else `fallback`. Strictly
/// parsed like vectors_from_env: garbage or non-positive values throw.
int jobs_from_env(int fallback);

/// Seed-coalescing toggle from the HLP_COALESCE env var, else `fallback`.
/// Strict like the other env parsers: only "0" and "1" are accepted.
bool coalesce_from_env(bool fallback);

/// Artifact-store directory from the HLP_STORE env var, else `fallback`.
/// The value is a path, so there is nothing to parse — validation is
/// deferred to opening the store (ExperimentRunner::artifact_store throws
/// an error naming HLP_STORE when the directory cannot be created).
std::string store_dir_from_env(std::string fallback);

/// One cell of the experiment grid.
struct Job {
  /// Key handed to the graph provider (default: a paper benchmark name).
  std::string benchmark;
  std::string scheduler = "list";
  BinderSpec binder;
  /// {0, 0} = schedule-minimum allocation (see FlowContext::rc()).
  ResourceConstraint rc{0, 0};
  int width = 8;
  int num_vectors = 200;
  /// Simulation stimulus seed.
  std::uint64_t seed = 42;
  std::uint64_t reg_seed = 42;
  SchedulerSpec sched_spec;
  /// Simulation engine for the pipeline's `simulate` stage (bit-parallel
  /// batch by default; scalar is the reference oracle).
  SimEngine sim_engine = SimEngine::kBatched;
  /// Word width for the batched engine (RunSpec::simd): kAuto defers to
  /// HLP_SIMD and then sizes the word to the coalesced seed group (never
  /// wider than the group can fill, up to the widest CPU-supported
  /// backend); results are bit-identical at every width. Coalesced seed
  /// groups are chunked to this width (jobs with different `simd` never
  /// share a chunk).
  SimdMode simd = SimdMode::kAuto;
  /// Settle strategy for the batched engine (RunSpec::settle): kAuto
  /// defers to HLP_SETTLE and then self-calibrates per simulator
  /// instance; event/level force one engine. Bit-identical either way;
  /// part of the coalescing key (jobs with different `settle` never share
  /// a run_batch) and of the distributed manifest, so worker processes
  /// resolve exactly like the parent.
  SettleMode settle = SettleMode::kAuto;
  /// SA backend (RunSpec::sa): an absent value defers to HLP_SA_MODE at
  /// context construction (unset environment = estimate). Unlike `simd` /
  /// `settle` the mode changes VALUES, so it is resolved once per runner
  /// process and pinned: it keys the context (different modes never share
  /// a FlowContext or SaCache), joins the coalescing group key, and rides
  /// the distributed manifest pre-resolved (`sa=`) so workers run exactly
  /// the parent's backend regardless of their own environment.
  std::optional<SaMode> sa;
  /// Free-form tag carried through to the result (display only).
  std::string label;
};

struct JobResult {
  Job job;
  PipelineOutcome outcome;
  bool ok = false;
  /// what() of the exception when !ok.
  std::string error;
  /// Wall-clock of the pipeline invocation this job rode — the whole
  /// group's when coalesced (see group_size).
  double seconds = 0.0;
  /// How many jobs shared this job's pipeline invocation (1 = ran alone).
  std::size_t group_size = 1;
};

/// One dispatchable work item of a run: a singleton job, or one word-sized
/// chunk (one simulator word of seeds — 64 at u64 width, up to 512 under
/// avx512) of a seed-coalescing group. Chunking lets a group larger than a
/// word spread across executors while each chunk still fills its lanes.
struct WorkUnit {
  /// Indices into the planned grid, ascending within the unit.
  std::vector<std::size_t> members;
  /// Size of the full seed group this unit chunks (1 = ran alone); becomes
  /// JobResult::group_size of every member.
  std::size_t group_size = 1;
};

/// The unit decomposition ExperimentRunner::run executes — and the quantum
/// the DistributedRunner's streaming dispatch hands to workers: jobs are
/// grouped by everything except the stimulus seed, and each group is
/// chunked to its resolved word width. Keeping whole chunks intact across
/// any executor preserves seed coalescing and lane-aware SIMD sizing, so
/// every dispatch strategy runs bit-identical pipeline invocations.
/// `coalesce` off (or a single job) degrades to one singleton unit per job.
std::vector<WorkUnit> plan_units(const std::vector<Job>& jobs, bool coalesce);

class ExperimentRunner {
 public:
  using GraphProvider = std::function<Cdfg(const std::string&)>;

  /// `num_threads` <= 1 runs inline on the calling thread. The default
  /// provider resolves names via make_paper_benchmark. `shared_cache`
  /// (optional, non-owning) is used for every context whose width matches;
  /// other widths get runner-owned per-width caches.
  explicit ExperimentRunner(int num_threads = 1, GraphProvider provider = {},
                            SaCache* shared_cache = nullptr);
  ~ExperimentRunner();  // out of line: ArtifactStore is incomplete here

  /// Run all jobs; results in job order.
  std::vector<JobResult> run(const std::vector<Job>& jobs);

  /// Streaming hook: `cb(index, result)` fires once per job, on the pool
  /// thread that executed it, immediately after the job's slot in the
  /// result vector is fully populated — failures included, and every
  /// member of a coalesced unit in ascending grid order. Placement is
  /// unchanged: run() still returns results in job order; the callback
  /// only adds completion-order visibility (an online Pareto frontier, a
  /// progress bar) on top. With num_threads > 1 the callback runs
  /// concurrently from several workers and must be thread-safe. The
  /// reference passed is the slot itself and stays valid until run()
  /// returns. An empty function disables the hook.
  using ResultCallback = std::function<void(std::size_t, const JobResult&)>;
  void set_result_callback(ResultCallback cb);

  /// The memoised context a job maps to (creating it if needed).
  FlowContext& context_for(const Job& job);

  /// The exact ArtifactKey the standard pipeline would probe/publish for
  /// this job's bind-fus..time span: the context's store scope (runner
  /// key + CDFG digest), binding_hash under the default map/timing
  /// parameters, the RESOLVED SA mode and the REQUESTED settle/simd modes
  /// — mirroring Pipeline::make_cursor. Needs no store configured (the
  /// explorer diffs steps with it; `hlp_store gc --keep-manifest` derives
  /// live addresses from it); resolving rc may run the context's probe
  /// schedule.
  store::ArtifactKey artifact_key_for(const Job& job);

  /// The cache contexts of (`width`, `mode`) share: the external cache
  /// when both its width and mode match, else the runner-owned one. The
  /// one-argument overload resolves the mode from the environment
  /// (effective_sa_mode with no explicit request) — what a job with an
  /// absent `sa` field uses.
  SaCache& sa_cache(int width, SaMode mode);
  SaCache& sa_cache(int width);

  /// Warm-start path for SA tables. When non-empty, every runner-owned
  /// cache is preloaded from "<path><suffix>" if that file exists (see
  /// sa_cache_file_suffix: ".w<width>" for estimate-mode tables — the
  /// legacy name — and ".w<width>.<mode>" otherwise), and saved back
  /// after each run() so repeated invocations start warm. The constructor
  /// reads the HLP_SA_CACHE env var as the default.
  void set_sa_cache_path(std::string path);
  const std::string& sa_cache_path() const { return sa_cache_path_; }

  /// Save every runner-owned cache to its warm-start file now (run() does
  /// this automatically; the DistributedRunner calls it after merging
  /// worker SA shards into this runner's tables). No-op when no path is
  /// configured.
  void persist_sa_caches();

  /// Persistent artifact-store directory. When non-empty, every context
  /// this runner creates gets its StageCache backed by one shared
  /// ArtifactStore rooted there (miss -> disk probe -> compute ->
  /// publish), so a second run over the same grid skips the
  /// bind-fus..time stages bit-identically. The constructor reads the
  /// HLP_STORE env var as the default; an explicit call wins over the
  /// environment (empty disables persistence). Takes effect for contexts
  /// created after the call.
  void set_store_dir(std::string dir);
  const std::string& store_dir() const { return store_dir_; }

  /// The shared store handle (opened on first use; null when no store
  /// dir is configured). Throws hlp::Error naming HLP_STORE — or the
  /// explicit path — when the directory cannot be created; run() opens
  /// the store up front so a bad HLP_STORE fails loudly instead of as N
  /// identical per-job errors.
  store::ArtifactStore* artifact_store();

  /// Coalesce jobs that differ only in stimulus seed into one
  /// Pipeline::run_batch call (one seed per simulator lane, chunked to
  /// the job's resolved word width). On by default; the HLP_COALESCE env
  /// var sets the constructor default. Results are bit-identical either
  /// way (tests/experiment_batch_test).
  void set_coalescing(bool on) { coalesce_ = on; }
  bool coalescing() const { return coalesce_; }

  int num_threads() const { return num_threads_; }
  /// Resize the thread pool used by subsequent run() calls.
  void set_num_threads(int n) { num_threads_ = std::max(1, n); }

  /// Cross product helper: one job per (benchmark, binder, seed, rc), all
  /// other fields copied from `base`. Empty seed/rc lists mean "just the
  /// base's value".
  static std::vector<Job> grid(
      const std::vector<std::string>& benchmarks,
      const std::vector<BinderSpec>& binders,
      const std::vector<std::uint64_t>& seeds = {},
      const std::vector<ResourceConstraint>& rcs = {}, const Job& base = {});

 private:
  std::string cache_file_for(int width, SaMode mode) const;
  store::ArtifactStore* ensure_store_locked();

  int num_threads_;
  GraphProvider provider_;
  SaCache* external_cache_;
  ResultCallback result_cb_;
  bool coalesce_ = true;
  std::string sa_cache_path_;
  std::string store_dir_;
  bool store_from_env_ = false;  // error messages name HLP_STORE then
  std::unique_ptr<store::ArtifactStore> store_;

  std::mutex mu_;  // guards the maps and the store handle
  std::map<std::string, std::unique_ptr<FlowContext>> contexts_;
  std::map<std::pair<int, SaMode>, std::unique_ptr<SaCache>> caches_;
};

/// Warm-start file suffix of one (width, mode) SA table under an
/// HLP_SA_CACHE prefix: ".w<width>" for estimate-mode tables (the name
/// predating the mode axis, kept so existing caches stay warm) and
/// ".w<width>.<mode>" otherwise. Shared by the runner, the distributed
/// shard merge and hlp_worker so every layer agrees on shard names.
std::string sa_cache_file_suffix(int width, SaMode mode);

}  // namespace hlp::flow
