#include "flow/registry.hpp"

#include <sstream>

#include "common/error.hpp"
#include "core/hlpower.hpp"
#include "flow/flow_context.hpp"
#include "lopass/lopass.hpp"
#include "sched/asap_alap.hpp"
#include "sched/force_directed.hpp"
#include "sched/list_scheduler.hpp"

namespace hlp::flow {

template <typename Fn>
const Fn& Registry<Fn>::at(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::ostringstream known;
    for (const auto& n : names()) known << " '" << n << "'";
    HLP_REQUIRE(false, "unknown algorithm '" << name << "'; registered:"
                                             << known.str());
  }
  return it->second;
}

template class Registry<SchedulerFn>;
template class Registry<BinderFn>;

namespace {

Registry<SchedulerFn> make_scheduler_registry() {
  Registry<SchedulerFn> r;
  r.add("list", [](const Cdfg& g, const ResourceConstraint& rc,
                   const SchedulerSpec& spec) {
    return list_schedule(g, rc, spec.min_latency);
  });
  r.add("fds", [](const Cdfg& g, const ResourceConstraint& /*rc*/,
                  const SchedulerSpec& spec) {
    const int latency =
        std::max(g.depth() + spec.latency_slack, spec.min_latency);
    return force_directed_schedule(g, latency);
  });
  r.add("asap", [](const Cdfg& g, const ResourceConstraint& /*rc*/,
                   const SchedulerSpec& spec) {
    Schedule s = asap_schedule(g);
    s.num_steps = std::max(s.num_steps, spec.min_latency);
    return s;
  });
  r.add("alap", [](const Cdfg& g, const ResourceConstraint& /*rc*/,
                   const SchedulerSpec& spec) {
    return alap_schedule(g, std::max(g.depth(), spec.min_latency));
  });
  return r;
}

Registry<BinderFn> make_binder_registry() {
  Registry<BinderFn> r;
  r.add("hlpower", [](FlowContext& ctx, const BinderSpec& spec) {
    HlpowerParams hp;
    hp.weight = edge_weight_params(spec);
    return bind_fus_hlpower(ctx.cdfg(), ctx.schedule(), ctx.regs(), ctx.rc(),
                            ctx.sa_cache(), hp)
        .fus;
  });
  r.add("lopass", [](FlowContext& ctx, const BinderSpec& /*spec*/) {
    return bind_fus_lopass(ctx.cdfg(), ctx.schedule(), ctx.regs(), ctx.rc(),
                           LopassParams{ctx.width()});
  });
  return r;
}

}  // namespace

EdgeWeightParams edge_weight_params(const BinderSpec& spec) {
  EdgeWeightParams wp;
  wp.alpha = spec.alpha;
  if (spec.beta_add >= 0.0) wp.beta_add = spec.beta_add;
  if (spec.beta_mult >= 0.0) wp.beta_mult = spec.beta_mult;
  return wp;
}

Registry<SchedulerFn>& scheduler_registry() {
  static Registry<SchedulerFn> r = make_scheduler_registry();
  return r;
}

Registry<BinderFn>& binder_registry() {
  static Registry<BinderFn> r = make_binder_registry();
  return r;
}

}  // namespace hlp::flow
