#include "flow/registry.hpp"

#include <cmath>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/hlpower.hpp"
#include "flow/flow_context.hpp"
#include "lopass/lopass.hpp"
#include "sched/asap_alap.hpp"
#include "sched/force_directed.hpp"
#include "sched/list_scheduler.hpp"

namespace hlp::flow {

template <typename Fn>
const Fn& Registry<Fn>::at(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::ostringstream known;
    for (const auto& n : names()) known << " '" << n << "'";
    HLP_REQUIRE(false, "unknown algorithm '" << name << "'; registered:"
                                             << known.str());
  }
  return it->second;
}

template class Registry<SchedulerFn>;
template class Registry<BinderFn>;

namespace {

Registry<SchedulerFn> make_scheduler_registry() {
  Registry<SchedulerFn> r;
  r.add("list", [](const Cdfg& g, const ResourceConstraint& rc,
                   const SchedulerSpec& spec) {
    return list_schedule(g, rc, spec.min_latency);
  });
  r.add("fds", [](const Cdfg& g, const ResourceConstraint& /*rc*/,
                  const SchedulerSpec& spec) {
    const int latency =
        std::max(g.depth() + spec.latency_slack, spec.min_latency);
    return force_directed_schedule(g, latency);
  });
  r.add("asap", [](const Cdfg& g, const ResourceConstraint& /*rc*/,
                   const SchedulerSpec& spec) {
    Schedule s = asap_schedule(g);
    s.num_steps = std::max(s.num_steps, spec.min_latency);
    return s;
  });
  r.add("alap", [](const Cdfg& g, const ResourceConstraint& /*rc*/,
                   const SchedulerSpec& spec) {
    return alap_schedule(g, std::max(g.depth(), spec.min_latency));
  });
  return r;
}

// Random-restart simulated-annealing binder — the ROADMAP's stochastic
// baseline. The state is a feasible FU assignment (kinds match, no two
// ops of one FU share a control step, allocation = the resolved rc); the
// objective is the summed precalculated switching activity of the FUs'
// input stages (SaCache over the per-FU mux sizes) — the same table the
// hlpower binder consults, so "anneal" probes how far naive stochastic
// search gets on the exact cost surface the paper's Eq. 4 heuristic
// navigates. Deterministic: every stochastic choice comes from an hlp::Rng
// seeded by the context's reg_seed and the restart number.
FuBinding bind_fus_anneal(FlowContext& ctx, const BinderSpec& /*spec*/) {
  const Cdfg& g = ctx.cdfg();
  const Schedule& s = ctx.schedule();
  const ResourceConstraint& rc = ctx.rc();
  const RegisterBinding& regs = ctx.regs();

  // FU pool: the full allocation, adders first (ids stable across runs).
  std::vector<OpKind> kinds;
  for (int k = 0; k < kNumOpKinds; ++k)
    for (int u = 0; u < rc.limit(static_cast<OpKind>(k)); ++u)
      kinds.push_back(static_cast<OpKind>(k));
  const int nf = static_cast<int>(kinds.size());

  const auto cost_of = [&](const FuBinding& fus) {
    const FuPortSources src = fu_port_sources(g, regs, fus);
    double cost = 0.0;
    for (int f = 0; f < nf; ++f)
      if (!src.port_a[f].empty() || !src.port_b[f].empty())
        cost += ctx.sa_cache().switching_activity(
            kinds[f], std::max<int>(1, src.port_a[f].size()),
            std::max<int>(1, src.port_b[f].size()));
    return cost;
  };

  FuBinding best;
  double best_cost = 0.0;
  for (int restart = 0; restart < 3; ++restart) {
    Rng rng(ctx.options().reg_seed * 1000003u + restart);
    FuBinding fus;
    fus.kind_of_fu = kinds;
    fus.fu_of_op.assign(g.num_ops(), -1);
    // busy[f][step]: greedy first-fit seed state (always feasible — the
    // resolved rc covers the schedule's max density at every step).
    std::vector<std::vector<char>> busy(nf,
                                        std::vector<char>(s.num_steps, 0));
    for (int op = 0; op < g.num_ops(); ++op) {
      for (int f = 0; f < nf; ++f)
        if (kinds[f] == g.op(op).kind && !busy[f][s.cstep(op)]) {
          fus.fu_of_op[op] = f;
          busy[f][s.cstep(op)] = 1;
          break;
        }
      HLP_CHECK(fus.fu_of_op[op] >= 0,
                "anneal: no free FU for op " << op << " at step "
                                             << s.cstep(op));
    }

    double cost = cost_of(fus);
    double temp = std::max(1.0, cost * 0.05);
    const int iters = 60 * std::max(1, g.num_ops());
    for (int it = 0; it < iters; ++it, temp *= 0.999) {
      // Move: push a random op onto another same-kind FU free at its step.
      const int op = static_cast<int>(rng.below(g.num_ops()));
      const int from = fus.fu_of_op[op];
      const int to = static_cast<int>(rng.below(nf));
      if (to == from || kinds[to] != g.op(op).kind ||
          busy[to][s.cstep(op)])
        continue;
      fus.fu_of_op[op] = to;
      const double moved = cost_of(fus);
      if (moved <= cost || rng.chance(std::exp((cost - moved) / temp))) {
        busy[from][s.cstep(op)] = 0;
        busy[to][s.cstep(op)] = 1;
        cost = moved;
      } else {
        fus.fu_of_op[op] = from;
      }
    }
    if (restart == 0 || cost < best_cost) {
      best = std::move(fus);
      best_cost = cost;
    }
  }
  best.validate(g, s, rc);
  return best;
}

Registry<BinderFn> make_binder_registry() {
  Registry<BinderFn> r;
  r.add("hlpower", [](FlowContext& ctx, const BinderSpec& spec) {
    HlpowerParams hp;
    hp.weight = edge_weight_params(spec);
    return bind_fus_hlpower(ctx.cdfg(), ctx.schedule(), ctx.regs(), ctx.rc(),
                            ctx.sa_cache(), hp)
        .fus;
  });
  r.add("lopass", [](FlowContext& ctx, const BinderSpec& /*spec*/) {
    return bind_fus_lopass(ctx.cdfg(), ctx.schedule(), ctx.regs(), ctx.rc(),
                           LopassParams{ctx.width()});
  });
  r.add("anneal", bind_fus_anneal);
  return r;
}

}  // namespace

EdgeWeightParams edge_weight_params(const BinderSpec& spec) {
  EdgeWeightParams wp;
  wp.alpha = spec.alpha;
  if (spec.beta_add >= 0.0) wp.beta_add = spec.beta_add;
  if (spec.beta_mult >= 0.0) wp.beta_mult = spec.beta_mult;
  return wp;
}

Registry<SchedulerFn>& scheduler_registry() {
  static Registry<SchedulerFn> r = make_scheduler_registry();
  return r;
}

Registry<BinderFn>& binder_registry() {
  static Registry<BinderFn> r = make_binder_registry();
  return r;
}

}  // namespace hlp::flow
