// Text serialization of the ExperimentRunner job model — the wire format
// of the distributed runner (docs/distributed.md).
//
// A DistributedRunner parent writes each worker's job slice as a
// *manifest* file; the hlp_worker process loads it, runs the jobs through
// the ordinary in-process ExperimentRunner, and writes a *results* file
// back. Both are line-oriented text so a manifest can be shipped to
// another machine (ssh/scp) and a results file diffed by eye.
//
// Properties the distributed protocol depends on:
//  - Round trips are exact. Doubles are serialised in hexfloat (parsed
//    with strtod), so a value survives the trip bit for bit — the
//    distributed==threaded property test compares results to the last
//    bit. Strings (benchmark names, labels, error messages) are
//    percent-escaped and may contain any byte.
//  - Truncation is detectable. Both files end in an `end <magic> <count>`
//    footer; a file cut short by a crashed or killed worker fails to load
//    with a clear error instead of silently dropping records.
//  - Records carry the job's index in the parent's grid, so the parent
//    merges worker outputs deterministically (stable job order) no matter
//    how the grid was sharded or which worker finished first.
//
// One outcome field is intentionally NOT carried: the mapped LUT netlist
// structure (FlowResult::mapped.lut_netlist), which is a large
// intermediate artifact; its summary (num_luts, depth) and every metric
// derived from it (timing, toggles, power) are. `same_outcome` is the
// single definition of result equality used by tests and benches.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "flow/experiment.hpp"

namespace hlp::flow {

/// A job tagged with its position in the parent's grid.
struct ManifestJob {
  std::size_t index = 0;
  Job job;
};

/// A result tagged with the manifest index it answers.
struct ManifestResult {
  std::size_t index = 0;
  JobResult result;
};

/// Percent-escape (%XX) every byte that would break whitespace-delimited
/// parsing: whitespace, '%', and non-printable bytes. Decode inverts
/// exactly; decode of a malformed escape throws.
std::string encode_token(const std::string& s);
std::string decode_token(const std::string& s);

/// Manifest: "manifest v1" header, one `job` line per entry, `end` footer.
void save_manifest(std::ostream& os, const std::vector<ManifestJob>& jobs);
std::vector<ManifestJob> load_manifest(std::istream& is);
void save_manifest_file(const std::string& path,
                        const std::vector<ManifestJob>& jobs);
std::vector<ManifestJob> load_manifest_file(const std::string& path);

/// Results: "results v1" header, one multi-line `result..endresult` record
/// per entry, `end` footer. Load is strict: a missing footer, an
/// unterminated record or a malformed line throws hlp::Error naming the
/// defect (this is how a parent detects a worker that died mid-write).
void save_results(std::ostream& os, const std::vector<ManifestResult>& results);
std::vector<ManifestResult> load_results(std::istream& is);
/// File variant writes `path` atomically (write "<path>.tmp", rename), so
/// a results file either exists complete or not at all.
void save_results_file(const std::string& path,
                       const std::vector<ManifestResult>& results);
std::vector<ManifestResult> load_results_file(const std::string& path);

/// ---- streaming protocol v2 (HLP_DISPATCH=stream) ------------------------
///
/// In streaming dispatch the parent and a long-lived `hlp_worker --serve`
/// process exchange framed per-unit records over stdin/stdout. A request
/// frame wraps one work unit (a whole seed-coalescing chunk) in the v1
/// manifest format; a response frame wraps the unit's results in the v1
/// results format. Both reuse the hexfloat / percent-escape / footer
/// conventions, and add an `endunit <id>` trailer so a frame cut short by
/// a dying worker is detectable at the frame level too: the parent only
/// parses byte ranges that end in a complete trailer line, and a
/// truncated body still throws through the inner v1 loader.
///
///   unit <id>                      unitdone <id>
///   hlp-manifest v1                hlp-results v1
///   count K                        count K
///   job index=... ...              result index=... ... endresult
///   end hlp-manifest K             end hlp-results K
///   endunit <id>                   endunit <id>
///
/// The request stream ends with a single `quit` line (or EOF), upon which
/// the worker flushes its SA shard once and exits 0.

/// One parsed request frame. `quit` is set (and the rest empty) when the
/// stream ended or an explicit `quit` line arrived.
struct UnitRequest {
  bool quit = false;
  std::size_t id = 0;
  std::vector<ManifestJob> jobs;
};

/// One parsed response frame: the results of unit `id`.
struct UnitResponse {
  std::size_t id = 0;
  std::vector<ManifestResult> results;
};

void save_unit_request(std::ostream& os, std::size_t id,
                       const std::vector<ManifestJob>& jobs);
void save_unit_quit(std::ostream& os);
/// Blocking read of the next request frame (the worker's serve loop reads
/// straight from stdin). EOF before any frame content = quit; a malformed
/// or truncated frame throws hlp::Error.
UnitRequest load_unit_request(std::istream& is);

void save_unit_response(std::ostream& os, std::size_t id,
                        const std::vector<ManifestResult>& results);
/// Strict parse of one response frame (the parent calls this on a byte
/// range it already knows ends in an `endunit` trailer): a missing or
/// mismatched trailer, a truncated body or a malformed record throws.
UnitResponse load_unit_response(std::istream& is);

/// Result equality over every serialised field EXCEPT execution metadata
/// (seconds, per-stage timings, group_size, cached_stages — wall clock and
/// batching shape legitimately differ between a threaded run and a
/// sharded run). This is the "bit-identical JobResult" relation of the
/// distributed acceptance test: job fields, ok/error, the binding, mux
/// stats, map summary, clock period, per-net toggle counts, sim counters
/// and the power report must all agree exactly (doubles to the last bit).
bool same_outcome(const JobResult& a, const JobResult& b);

}  // namespace hlp::flow
