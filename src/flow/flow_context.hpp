// FlowContext: the shared, memoised artifacts of one design under one
// experimental setup.
//
// The paper's controlled comparison (Section 6.1, Table 2: "identical
// schedules and register bindings were used") means every binder run on a
// benchmark consumes the *same* CDFG, schedule and register binding. A
// FlowContext owns those shared artifacts and computes each lazily exactly
// once — schedule on first schedule() call (via the named scheduler from
// the registry), register binding on first regs() call — so a grid of
// binder runs pays the per-benchmark setup a single time. The SA cache is
// either shared (non-owning pointer, e.g. the process-wide bench cache)
// or owned per context.
//
// Thread-safe: the lazy initialisation is mutex-guarded so contexts can be
// shared across ExperimentRunner worker threads.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "binding/binding.hpp"
#include "cdfg/cdfg.hpp"
#include "flow/registry.hpp"
#include "mapper/techmap.hpp"
#include "netlist/timing.hpp"
#include "power/sa_cache.hpp"
#include "sched/schedule.hpp"

namespace hlp::store {
class ArtifactStore;  // store/artifact_store.hpp
}

namespace hlp::flow {

class StageCache;  // pipeline.hpp — per-binding artifact cache

struct ContextOptions {
  /// Scheduler registry key ("list", "fds", ...).
  std::string scheduler = "list";
  SchedulerSpec sched_spec;
  /// Datapath bit width (SA estimation and evaluation).
  int width = 8;
  /// Register binding seed (port assignment tie-breaking).
  std::uint64_t reg_seed = 42;
  /// SA backend of the context's owned cache: an absent value defers to
  /// HLP_SA_MODE (effective_sa_mode). With a shared cache the cache's own
  /// mode governs, and a concrete request here must agree with it.
  std::optional<SaMode> sa_mode;
};

class FlowContext {
 public:
  /// `rc` with a zero adder or multiplier count means "derive the minimum
  /// from a probe schedule" (the allocation lower bound of Theorem 1).
  /// `shared_cache` must outlive the context and match `opt.width`; null
  /// means the context owns a private cache.
  FlowContext(Cdfg g, ResourceConstraint rc, ContextOptions opt = {},
              SaCache* shared_cache = nullptr);
  ~FlowContext();  // out of line: StageCache is incomplete here

  const Cdfg& cdfg() const { return g_; }
  const ContextOptions& options() const { return opt_; }
  int width() const { return opt_.width; }

  /// The (memoised) schedule from the named scheduler. First call runs the
  /// scheduler; later calls are lookups.
  const Schedule& schedule();

  /// The resource constraint, resolved: zero entries replaced by the probe
  /// minimum and widened to the schedule's max density (latency-driven
  /// schedulers balance but do not constrain).
  const ResourceConstraint& rc();

  /// The (memoised) shared register binding.
  const RegisterBinding& regs();

  SaCache& sa_cache() {
    return shared_cache_ ? *shared_cache_ : *owned_cache_;
  }

  /// Context-owned cache of the per-binding pipeline artifacts (bind-fus
  /// through time), keyed by binding_hash(). The pipeline consults it so a
  /// sweep that revisits a binding skips straight to simulate.
  StageCache& stage_cache() { return *stage_cache_; }

  /// Back the StageCache with a persistent ArtifactStore (non-owning,
  /// must outlive this context; null unbinds): memory misses fall through
  /// to a disk probe and computed entries are published back. `scope`
  /// names the context's experimental identity (the runner passes its
  /// context key); a structural digest of the CDFG is appended so two
  /// graph providers reusing one benchmark name can never share entries.
  void set_artifact_store(store::ArtifactStore* store,
                          const std::string& scope);

  /// The artifact-store scope this context binds under `runner_key`: the
  /// key plus the structural CDFG digest — exactly the scope
  /// set_artifact_store records, exposed so callers that never open a
  /// store (the explorer's key diffing, `hlp_store gc --keep-manifest`)
  /// can compute the same ArtifactKeys the pipeline would probe.
  std::string store_scope(const std::string& runner_key) const;

  /// Exact cache key for the artifacts a (binder, mapping, timing) triple
  /// produces on this context. Not a lossy digest: the key serialises
  /// every field the bind-fus..time stages read — the context's
  /// scheduler/spec, resolved rc, width and reg_seed plus the binder
  /// knobs (doubles in hexfloat), map parameters and timing model — so
  /// distinct configurations can never collide.
  std::string binding_hash(const BinderSpec& binder, const MapParams& map,
                           const TimingModel& timing);

 private:
  void ensure_scheduled_locked();
  void ensure_regs_locked();

  Cdfg g_;
  ResourceConstraint rc_;
  ContextOptions opt_;
  SaCache* shared_cache_ = nullptr;
  std::unique_ptr<SaCache> owned_cache_;
  std::unique_ptr<StageCache> stage_cache_;

  std::mutex mu_;  // guards the lazy artifacts below
  bool scheduled_ = false;
  bool regs_bound_ = false;
  Schedule s_;
  RegisterBinding regs_;
};

}  // namespace hlp::flow
