#include "flow/distributed.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "flow/job_io.hpp"

namespace hlp::flow {

namespace fs = std::filesystem;

int workers_from_env(int fallback) {
  return env_int("HLP_WORKERS", fallback);
}

namespace {

using Clock = std::chrono::steady_clock;

// $HLP_WORKER_BIN, else "hlp_worker" next to the current executable (the
// build tree puts every binary in one directory), else the bare name for
// the error message.
std::string default_worker_binary() {
  if (const char* env = std::getenv("HLP_WORKER_BIN"); env && *env != '\0')
    return env;
  std::error_code ec;
  const fs::path self = fs::read_symlink("/proc/self/exe", ec);
  if (!ec) {
    const fs::path cand = self.parent_path() / "hlp_worker";
    if (fs::exists(cand, ec) && !ec) return cand.string();
  }
  return "hlp_worker";
}

// Last `max_bytes` of a worker's captured stdout/stderr, for embedding in
// the error message of a failed slice or unit.
std::string log_tail(const std::string& path, std::size_t max_bytes = 600) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) return "";
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::size_t>(f.tellg());
  const std::size_t take = std::min(size, max_bytes);
  f.seekg(static_cast<std::streamoff>(size - take));
  std::string tail(take, '\0');
  f.read(tail.data(), static_cast<std::streamsize>(take));
  while (!tail.empty() && (tail.back() == '\n' || tail.back() == '\r'))
    tail.pop_back();
  return tail;
}

struct WorkerProc {
  pid_t pid = -1;
  bool exited = false;
  bool timed_out = false;
  int status = 0;
  std::vector<std::size_t> slice;  // global job indices, ascending
  std::string manifest, results, sa_prefix, log;
};

// One long-lived `hlp_worker --serve` process of the streaming
// dispatcher. Entries are append-only across respawns; a dead worker's
// record stays for its log path and exit status.
struct StreamWorker {
  pid_t pid = -1;
  int to_child = -1;    // parent writes framed unit requests here
  int from_child = -1;  // parent reads framed unit responses here
  std::string log, sa_prefix;
  std::string buf;          // accumulated response bytes
  long long unit = -1;      // in-flight unit index, -1 = idle
  Clock::time_point unit_start{};
  bool exited = false;
  int status = 0;
  bool quit_sent = false;
  bool clean = false;        // exited 0 after quit: SA shard mergeable
  std::string fail_reason;   // set before a deliberate SIGKILL
};

// Ignore SIGPIPE for the lifetime of a streaming run: a write into a
// worker that just died must surface as EPIPE (handled per worker), not
// kill the parent. Saved/restored so library callers keep their own
// disposition.
class ScopedSigpipeIgnore {
 public:
  ScopedSigpipeIgnore() {
    struct sigaction ign {};
    ign.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ign, &saved_);
  }
  ~ScopedSigpipeIgnore() { ::sigaction(SIGPIPE, &saved_, nullptr); }

 private:
  struct sigaction saved_ {};
};

// Write all of `data`, retrying on EINTR. Returns false on any other
// error (typically EPIPE from a dead worker) — the caller leaves the unit
// in flight and lets the reap path requeue it.
bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// Extract one complete response frame — everything up to and including
// the first `endunit <id>` line — from the front of `buf`. Returns false
// until the trailer line has fully arrived; partial frames stay buffered.
bool extract_frame(std::string& buf, std::string& frame) {
  std::size_t pos = 0;
  while (true) {
    const std::size_t p = buf.find("endunit ", pos);
    if (p == std::string::npos) return false;
    if (p != 0 && buf[p - 1] != '\n') {  // mid-line match, keep looking
      pos = p + 8;
      continue;
    }
    const std::size_t nl = buf.find('\n', p);
    if (nl == std::string::npos) return false;  // trailer not finished
    frame = buf.substr(0, nl + 1);
    buf.erase(0, nl + 1);
    return true;
  }
}

}  // namespace

struct DistributedRunner::RunSetup {
  std::string worker_bin;
  std::string dir;
  bool own_dir = false;
};

DistributedRunner::DistributedRunner(int workers, int threads_per_worker)
    : workers_(std::max(1, workers)),
      threads_per_worker_(std::max(1, threads_per_worker)),
      local_(std::max(1, threads_per_worker)) {}

void DistributedRunner::set_workers(int n) { workers_ = std::max(1, n); }

void DistributedRunner::set_threads_per_worker(int n) {
  threads_per_worker_ = std::max(1, n);
  local_.set_num_threads(threads_per_worker_);
}

void DistributedRunner::set_sa_cache_path(std::string path) {
  local_.set_sa_cache_path(std::move(path));
}

void DistributedRunner::set_coalescing(bool on) { local_.set_coalescing(on); }

std::vector<JobResult> DistributedRunner::run(const std::vector<Job>& jobs) {
  const int n = static_cast<int>(
      std::min<std::size_t>(workers_, jobs.empty() ? 1 : jobs.size()));
  // Graceful fallback: one worker is exactly the in-process threaded
  // runner — no processes, no files, same results.
  if (n <= 1) return local_.run(jobs);

  // Strict knob resolution up front, so a bad HLP_DISPATCH dies loudly
  // before any process is spawned.
  const DispatchMode mode = resolve_dispatch_mode(dispatch_, n);

  RunSetup setup;
  setup.worker_bin =
      worker_binary_.empty() ? default_worker_binary() : worker_binary_;
  HLP_REQUIRE(::access(setup.worker_bin.c_str(), X_OK) == 0,
              "worker binary '" << setup.worker_bin
                                << "' is not executable (build the "
                                   "hlp_worker target, or point "
                                   "HLP_WORKER_BIN / set_worker_binary at "
                                   "it)");

  // Work directory for the manifest/results/log files of this run.
  setup.dir = work_dir_;
  if (setup.dir.empty()) {
    std::string tmpl =
        (fs::temp_directory_path() / "hlp-dist.XXXXXX").string();
    HLP_REQUIRE(::mkdtemp(tmpl.data()) != nullptr,
                "mkdtemp('" << tmpl << "') failed: " << std::strerror(errno));
    setup.dir = tmpl;
    setup.own_dir = true;
  } else {
    fs::create_directories(setup.dir);
  }

  std::vector<JobResult> results = mode == DispatchMode::kStream
                                       ? run_stream(jobs, setup)
                                       : run_static(jobs, setup);

  if (setup.own_dir && !keep_files_) {
    std::error_code ec;
    fs::remove_all(setup.dir, ec);  // best effort; never fail a finished run
  }
  return results;
}

std::vector<JobResult> DistributedRunner::run_static(
    const std::vector<Job>& jobs, const RunSetup& setup) {
  const int n = static_cast<int>(std::min<std::size_t>(workers_, jobs.size()));

  // Contiguous slices keep seed groups (grid() varies the seed innermost)
  // mostly intact, so workers still coalesce; correctness never depends
  // on the split — results are placed back by index.
  std::vector<WorkerProc> procs(n);
  const std::size_t base = jobs.size() / n;
  const std::size_t extra = jobs.size() % n;
  std::size_t next = 0;
  for (int k = 0; k < n; ++k) {
    WorkerProc& w = procs[k];
    const std::size_t take = base + (static_cast<std::size_t>(k) < extra);
    for (std::size_t j = 0; j < take; ++j) w.slice.push_back(next++);
    const std::string stem = setup.dir + "/worker-" + std::to_string(k);
    w.manifest = stem + ".manifest";
    w.results = stem + ".results";
    w.sa_prefix = stem + ".sa";
    w.log = stem + ".log";
    std::vector<ManifestJob> slice;
    slice.reserve(w.slice.size());
    for (const std::size_t i : w.slice) slice.push_back({i, jobs[i]});
    save_manifest_file(w.manifest, slice);
  }

  // Spawn. argv is assembled BEFORE fork so the child only performs
  // async-signal-safe work (open/dup2/execv) between fork and exec.
  for (WorkerProc& w : procs) {
    std::vector<std::string> args = {setup.worker_bin,
                                     "--manifest",
                                     w.manifest,
                                     "--results",
                                     w.results,
                                     "--sa-out",
                                     w.sa_prefix,
                                     "--jobs",
                                     std::to_string(threads_per_worker_),
                                     "--coalesce",
                                     local_.coalescing() ? "1" : "0"};
    if (!local_.sa_cache_path().empty()) {
      args.push_back("--sa-in");
      args.push_back(local_.sa_cache_path());
    }
    if (!local_.store_dir().empty()) {
      // Workers share the parent's artifact store (explicit flag, never
      // their own HLP_STORE): each opens its own handle with a private
      // staging dir, so concurrent publishes stay atomic.
      args.push_back("--store");
      args.push_back(local_.store_dir());
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    HLP_REQUIRE(pid >= 0, "fork failed: " << std::strerror(errno));
    if (pid == 0) {
      const int fd = ::open(w.log.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
      if (fd >= 0) {
        ::dup2(fd, 1);
        ::dup2(fd, 2);
        ::close(fd);
      }
      ::execv(argv[0], argv.data());
      _exit(127);  // exec failed; the parent reports status 127 + log
    }
    w.pid = pid;
  }

  // Reap, with an optional deadline. Workers past the deadline are
  // SIGKILLed and their slices report the timeout.
  const auto t0 = Clock::now();
  std::size_t running = procs.size();
  while (running > 0) {
    bool progress = false;
    for (WorkerProc& w : procs) {
      if (w.exited) continue;
      int status = 0;
      const pid_t r = ::waitpid(w.pid, &status, WNOHANG);
      if (r == w.pid) {
        w.exited = true;
        w.status = status;
        --running;
        progress = true;
      }
    }
    if (running == 0) break;
    if (timeout_s_ > 0.0 &&
        std::chrono::duration<double>(Clock::now() - t0).count() >
            timeout_s_) {
      for (WorkerProc& w : procs) {
        if (w.exited) continue;
        ::kill(w.pid, SIGKILL);
        int status = 0;
        ::waitpid(w.pid, &status, 0);
        w.exited = true;
        w.timed_out = true;
        --running;
      }
      break;
    }
    if (!progress)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Collect: place results by manifest index; any worker-level failure is
  // reported on every job of its slice.
  std::vector<JobResult> results(jobs.size());
  auto fail_slice = [&](const WorkerProc& w, const std::string& why) {
    const std::string tail = log_tail(w.log);
    for (const std::size_t i : w.slice) {
      results[i].job = jobs[i];
      results[i].ok = false;
      results[i].error =
          why + (tail.empty() ? "" : "; worker log tail: " + tail);
    }
  };
  for (std::size_t k = 0; k < procs.size(); ++k) {
    const WorkerProc& w = procs[k];
    const std::string who = "worker " + std::to_string(k);
    if (w.timed_out) {
      std::ostringstream why;
      why << who << " timed out after " << timeout_s_ << "s and was killed";
      fail_slice(w, why.str());
      continue;
    }
    if (WIFSIGNALED(w.status)) {
      fail_slice(w, who + " killed by signal " +
                        std::to_string(WTERMSIG(w.status)));
      continue;
    }
    if (!WIFEXITED(w.status) || WEXITSTATUS(w.status) != 0) {
      fail_slice(w, who + " exited with status " +
                        std::to_string(WIFEXITED(w.status)
                                           ? WEXITSTATUS(w.status)
                                           : -1));
      continue;
    }
    std::vector<ManifestResult> shard;
    try {
      shard = load_results_file(w.results);
    } catch (const std::exception& e) {
      // Missing or truncated output from a worker that claimed success.
      fail_slice(w, who + " produced unreadable results: " + e.what());
      continue;
    }
    const std::set<std::size_t> expect(w.slice.begin(), w.slice.end());
    std::set<std::size_t> got;
    for (const ManifestResult& mr : shard) got.insert(mr.index);
    if (got != expect) {
      fail_slice(w, who + " returned " + std::to_string(shard.size()) +
                        " results that do not cover its " +
                        std::to_string(w.slice.size()) + "-job slice");
      continue;
    }
    for (ManifestResult& mr : shard) {
      results[mr.index] = std::move(mr.result);
      // The results file answers by index; the job itself is the parent's
      // copy (the manifest round-trip is tested separately).
      results[mr.index].job = jobs[mr.index];
    }
  }

  // Merge the SA shards of cleanly exited workers into the parent tables
  // (worker shard files are written atomically, so a file either is a
  // complete table or does not exist). Conflicts throw — the entries are
  // deterministic, so a conflict means two workers computed under
  // different configurations and the whole run is suspect.
  std::set<std::pair<int, SaMode>> tables;
  for (const Job& j : jobs) tables.insert({j.width, effective_sa_mode(j.sa)});
  for (const WorkerProc& w : procs) {
    if (!w.exited || w.timed_out || !WIFEXITED(w.status) ||
        WEXITSTATUS(w.status) != 0)
      continue;
    for (const auto& [width, mode] : tables) {
      const std::string file =
          w.sa_prefix + sa_cache_file_suffix(width, mode);
      if (std::error_code ec; fs::exists(file, ec) && !ec)
        local_.sa_cache(width, mode).merge_from(file);
    }
  }
  local_.persist_sa_caches();

  return results;
}

std::vector<JobResult> DistributedRunner::run_stream(
    const std::vector<Job>& jobs, const RunSetup& setup) {
  const int n = static_cast<int>(std::min<std::size_t>(workers_, jobs.size()));
  const ScopedSigpipeIgnore sigpipe_guard;

  // The central queue: whole seed-coalescing chunks, exactly the units
  // the in-process threaded runner would execute — so coalescing and
  // lane-aware SIMD sizing survive distribution and results stay
  // bit-identical no matter which worker pulls which unit.
  const std::vector<WorkUnit> units = plan_units(jobs, local_.coalescing());
  struct UnitState {
    int attempts = 0;
    bool resolved = false;
  };
  std::vector<UnitState> ustate(units.size());
  std::deque<std::size_t> queue;
  for (std::size_t u = 0; u < units.size(); ++u) queue.push_back(u);
  std::size_t unresolved = units.size();

  std::vector<JobResult> results(jobs.size());
  auto fail_unit = [&](std::size_t u, const std::string& why,
                       const std::string& log_file) {
    const std::string tail = log_tail(log_file);
    std::ostringstream msg;
    msg << "streaming unit " << u << " (" << units[u].members.size()
        << " job(s)) failed after " << ustate[u].attempts << " attempt(s): "
        << why << (tail.empty() ? "" : "; worker log tail: " + tail);
    for (const std::size_t i : units[u].members) {
      results[i].job = jobs[i];
      results[i].ok = false;
      results[i].error = msg.str();
    }
    ustate[u].resolved = true;
    --unresolved;
  };

  std::deque<StreamWorker> fleet;  // deque: references stay valid on growth
  std::size_t alive = 0;

  auto spawn = [&]() -> StreamWorker& {
    fleet.emplace_back();
    StreamWorker& w = fleet.back();
    const std::string stem =
        setup.dir + "/worker-" + std::to_string(fleet.size() - 1);
    w.log = stem + ".log";
    w.sa_prefix = stem + ".sa";

    // CLOEXEC on every pipe end: a later child must not inherit an older
    // worker's pipe, or EOF detection on that worker dies with it. The
    // child's dup2 onto fds 0/1 clears the flag on the copies it keeps.
    int to_child[2], from_child[2];
    HLP_REQUIRE(::pipe2(to_child, O_CLOEXEC) == 0 &&
                    ::pipe2(from_child, O_CLOEXEC) == 0,
                "pipe2 failed: " << std::strerror(errno));

    std::vector<std::string> args = {setup.worker_bin,
                                     "--serve",
                                     "--sa-out",
                                     w.sa_prefix,
                                     "--jobs",
                                     std::to_string(threads_per_worker_),
                                     "--coalesce",
                                     local_.coalescing() ? "1" : "0"};
    if (!local_.sa_cache_path().empty()) {
      args.push_back("--sa-in");
      args.push_back(local_.sa_cache_path());
    }
    if (!local_.store_dir().empty()) {
      // Workers share the parent's artifact store (explicit flag, never
      // their own HLP_STORE): each opens its own handle with a private
      // staging dir, so concurrent publishes stay atomic.
      args.push_back("--store");
      args.push_back(local_.store_dir());
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    HLP_REQUIRE(pid >= 0, "fork failed: " << std::strerror(errno));
    if (pid == 0) {
      ::dup2(to_child[0], 0);
      ::dup2(from_child[1], 1);
      const int fd = ::open(w.log.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
      if (fd >= 0) {
        ::dup2(fd, 2);
        ::close(fd);
      }
      ::execv(argv[0], argv.data());
      _exit(127);  // exec failed; the parent reports status 127 + log
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    w.pid = pid;
    w.to_child = to_child[1];
    w.from_child = from_child[0];
    ::fcntl(w.from_child, F_SETFL, O_NONBLOCK);
    ++alive;
    return w;
  };

  auto close_fds = [](StreamWorker& w) {
    if (w.to_child >= 0) ::close(w.to_child);
    if (w.from_child >= 0) ::close(w.from_child);
    w.to_child = w.from_child = -1;
  };

  // Hand the next pending unit to an idle worker, or tell it to quit
  // (flush its SA shard and exit) when the queue has drained. A failed
  // write means the worker is already dying; the unit stays charged to it
  // and the reap path requeues it.
  auto assign = [&](StreamWorker& w) {
    if (queue.empty()) {
      std::ostringstream req;
      save_unit_quit(req);
      write_all(w.to_child, req.str());
      ::close(w.to_child);
      w.to_child = -1;
      w.quit_sent = true;
      return;
    }
    const std::size_t u = queue.front();
    queue.pop_front();
    ++ustate[u].attempts;
    std::vector<ManifestJob> mjs;
    mjs.reserve(units[u].members.size());
    for (const std::size_t i : units[u].members) mjs.push_back({i, jobs[i]});
    std::ostringstream req;
    save_unit_request(req, u, mjs);
    w.unit = static_cast<long long>(u);
    w.unit_start = Clock::now();
    write_all(w.to_child, req.str());
  };

  // A worker died (reaped). Requeue its in-flight unit while attempts
  // remain, else resolve the unit as failed — naming the unit, the
  // attempt count and the worker's log tail.
  auto handle_death = [&](StreamWorker& w, const std::string& why) {
    if (w.unit < 0) return;
    const std::size_t u = static_cast<std::size_t>(w.unit);
    w.unit = -1;
    if (ustate[u].attempts >= kMaxUnitAttempts)
      fail_unit(u, why, w.log);
    else
      queue.push_front(u);  // retry promptly, ahead of untouched units
  };

  // Seed the fleet and give every worker its first unit.
  for (int k = 0; k < n && !queue.empty(); ++k) assign(spawn());

  char io_buf[65536];
  while (unresolved > 0 || alive > 0) {
    bool progress = false;

    for (StreamWorker& w : fleet) {
      if (w.exited || w.pid < 0) continue;

      // Drain the worker's stdout; process every complete frame.
      while (w.from_child >= 0) {
        const ssize_t got = ::read(w.from_child, io_buf, sizeof(io_buf));
        if (got > 0) {
          w.buf.append(io_buf, static_cast<std::size_t>(got));
          progress = true;
          continue;
        }
        // EOF or EAGAIN: either way stop reading; a dead worker is
        // handled at reap below.
        break;
      }
      std::string frame;
      while (extract_frame(w.buf, frame)) {
        progress = true;
        std::string bad;
        if (w.unit < 0) {
          bad = "sent a unit response while idle";
        } else {
          const std::size_t u = static_cast<std::size_t>(w.unit);
          try {
            std::istringstream in(frame);
            UnitResponse resp = load_unit_response(in);
            HLP_REQUIRE(resp.id == u, "answered unit " << resp.id
                                                       << " while running unit "
                                                       << u);
            const std::set<std::size_t> expect(units[u].members.begin(),
                                               units[u].members.end());
            std::set<std::size_t> covered;
            for (const ManifestResult& mr : resp.results)
              covered.insert(mr.index);
            HLP_REQUIRE(covered == expect,
                        "returned " << resp.results.size()
                                    << " results that do not cover the "
                                    << units[u].members.size()
                                    << "-job unit");
            for (ManifestResult& mr : resp.results) {
              results[mr.index] = std::move(mr.result);
              results[mr.index].job = jobs[mr.index];
              // The worker only saw its chunk; the parent knows the full
              // seed-group size, like the threaded runner reports it.
              results[mr.index].group_size = units[u].group_size;
            }
            w.unit = -1;
            ustate[u].resolved = true;
            --unresolved;
          } catch (const std::exception& e) {
            bad = std::string("returned an invalid unit response: ") +
                  e.what();
          }
        }
        if (!bad.empty()) {
          // Protocol violation: kill the worker; the reap path charges
          // its in-flight unit with this reason.
          w.fail_reason = bad;
          ::kill(w.pid, SIGKILL);
          break;
        }
        if (w.unit < 0 && !w.quit_sent) assign(w);  // pull the next unit
      }

      // Per-unit deadline (streaming timeouts are per unit, not per
      // slice): a unit past it costs exactly that unit one attempt.
      if (timeout_s_ > 0.0 && w.unit >= 0 && w.fail_reason.empty() &&
          std::chrono::duration<double>(Clock::now() - w.unit_start)
                  .count() > timeout_s_) {
        std::ostringstream why;
        why << "timed out after " << timeout_s_ << "s and was killed";
        w.fail_reason = why.str();
        ::kill(w.pid, SIGKILL);
        progress = true;
      }

      // Reap.
      int status = 0;
      const pid_t r = ::waitpid(w.pid, &status, WNOHANG);
      if (r == w.pid) {
        progress = true;
        w.exited = true;
        w.status = status;
        --alive;
        // Drain any bytes that raced the exit, then decide.
        while (w.from_child >= 0) {
          const ssize_t got = ::read(w.from_child, io_buf, sizeof(io_buf));
          if (got <= 0) break;
          w.buf.append(io_buf, static_cast<std::size_t>(got));
        }
        // A complete frame that arrived just before a clean quit-exit was
        // already processed above; anything still buffered here is a
        // partial frame and counts as truncation.
        std::string why = w.fail_reason;
        if (why.empty()) {
          if (WIFSIGNALED(status))
            why = "worker killed by signal " +
                  std::to_string(WTERMSIG(status));
          else if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
            why = "worker exited with status " +
                  std::to_string(WIFEXITED(status) ? WEXITSTATUS(status)
                                                   : -1);
          else if (w.unit >= 0)
            why = "worker exited with status 0 before answering the unit";
          else if (!w.quit_sent)
            why = "worker exited with status 0 unprompted";
        }
        close_fds(w);
        if (why.empty()) {
          w.clean = true;  // quit honoured: SA shard is mergeable
        } else {
          handle_death(w, why);
        }
      }
    }

    // Keep the fleet at strength while there is queued work. Spawning is
    // bounded: every death charges an attempt to some unit, and a unit
    // only re-enters the queue kMaxUnitAttempts times.
    while (alive < static_cast<std::size_t>(n) && !queue.empty())
      assign(spawn());

    if (unresolved == 0 && alive == 0) break;
    if (!progress)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Merge the SA shards of workers that honoured the quit handshake
  // (shards are written atomically at worker exit, once per session).
  std::set<std::pair<int, SaMode>> tables;
  for (const Job& j : jobs) tables.insert({j.width, effective_sa_mode(j.sa)});
  for (const StreamWorker& w : fleet) {
    if (!w.clean) continue;
    for (const auto& [width, mode] : tables) {
      const std::string file =
          w.sa_prefix + sa_cache_file_suffix(width, mode);
      if (std::error_code ec; fs::exists(file, ec) && !ec)
        local_.sa_cache(width, mode).merge_from(file);
    }
  }
  local_.persist_sa_caches();

  return results;
}

}  // namespace hlp::flow
