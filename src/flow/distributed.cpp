#include "flow/distributed.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "flow/job_io.hpp"

namespace hlp::flow {

namespace fs = std::filesystem;

int workers_from_env(int fallback) {
  return env_int("HLP_WORKERS", fallback);
}

namespace {

// $HLP_WORKER_BIN, else "hlp_worker" next to the current executable (the
// build tree puts every binary in one directory), else the bare name for
// the error message.
std::string default_worker_binary() {
  if (const char* env = std::getenv("HLP_WORKER_BIN"); env && *env != '\0')
    return env;
  std::error_code ec;
  const fs::path self = fs::read_symlink("/proc/self/exe", ec);
  if (!ec) {
    const fs::path cand = self.parent_path() / "hlp_worker";
    if (fs::exists(cand, ec) && !ec) return cand.string();
  }
  return "hlp_worker";
}

// Last `max_bytes` of a worker's captured stdout/stderr, for embedding in
// the error message of a failed slice.
std::string log_tail(const std::string& path, std::size_t max_bytes = 600) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) return "";
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::size_t>(f.tellg());
  const std::size_t take = std::min(size, max_bytes);
  f.seekg(static_cast<std::streamoff>(size - take));
  std::string tail(take, '\0');
  f.read(tail.data(), static_cast<std::streamsize>(take));
  while (!tail.empty() && (tail.back() == '\n' || tail.back() == '\r'))
    tail.pop_back();
  return tail;
}

struct WorkerProc {
  pid_t pid = -1;
  bool exited = false;
  bool timed_out = false;
  int status = 0;
  std::vector<std::size_t> slice;  // global job indices, ascending
  std::string manifest, results, sa_prefix, log;
};

}  // namespace

DistributedRunner::DistributedRunner(int workers, int threads_per_worker)
    : workers_(std::max(1, workers)),
      threads_per_worker_(std::max(1, threads_per_worker)),
      local_(std::max(1, threads_per_worker)) {}

void DistributedRunner::set_workers(int n) { workers_ = std::max(1, n); }

void DistributedRunner::set_threads_per_worker(int n) {
  threads_per_worker_ = std::max(1, n);
  local_.set_num_threads(threads_per_worker_);
}

void DistributedRunner::set_sa_cache_path(std::string path) {
  local_.set_sa_cache_path(std::move(path));
}

void DistributedRunner::set_coalescing(bool on) { local_.set_coalescing(on); }

std::vector<JobResult> DistributedRunner::run(const std::vector<Job>& jobs) {
  const int n = static_cast<int>(
      std::min<std::size_t>(workers_, jobs.empty() ? 1 : jobs.size()));
  // Graceful fallback: one worker is exactly the in-process threaded
  // runner — no processes, no files, same results.
  if (n <= 1) return local_.run(jobs);

  const std::string worker_bin =
      worker_binary_.empty() ? default_worker_binary() : worker_binary_;
  HLP_REQUIRE(::access(worker_bin.c_str(), X_OK) == 0,
              "worker binary '" << worker_bin
                                << "' is not executable (build the "
                                   "hlp_worker target, or point "
                                   "HLP_WORKER_BIN / set_worker_binary at "
                                   "it)");

  // Work directory for the manifest/results/log files of this run.
  std::string dir = work_dir_;
  bool own_dir = false;
  if (dir.empty()) {
    std::string tmpl =
        (fs::temp_directory_path() / "hlp-dist.XXXXXX").string();
    HLP_REQUIRE(::mkdtemp(tmpl.data()) != nullptr,
                "mkdtemp('" << tmpl << "') failed: " << std::strerror(errno));
    dir = tmpl;
    own_dir = true;
  } else {
    fs::create_directories(dir);
  }

  // Contiguous slices keep seed groups (grid() varies the seed innermost)
  // mostly intact, so workers still coalesce; correctness never depends
  // on the split — results are placed back by index.
  std::vector<WorkerProc> procs(n);
  const std::size_t base = jobs.size() / n;
  const std::size_t extra = jobs.size() % n;
  std::size_t next = 0;
  for (int k = 0; k < n; ++k) {
    WorkerProc& w = procs[k];
    const std::size_t take = base + (static_cast<std::size_t>(k) < extra);
    for (std::size_t j = 0; j < take; ++j) w.slice.push_back(next++);
    const std::string stem = dir + "/worker-" + std::to_string(k);
    w.manifest = stem + ".manifest";
    w.results = stem + ".results";
    w.sa_prefix = stem + ".sa";
    w.log = stem + ".log";
    std::vector<ManifestJob> slice;
    slice.reserve(w.slice.size());
    for (const std::size_t i : w.slice) slice.push_back({i, jobs[i]});
    save_manifest_file(w.manifest, slice);
  }

  // Spawn. argv is assembled BEFORE fork so the child only performs
  // async-signal-safe work (open/dup2/execv) between fork and exec.
  for (WorkerProc& w : procs) {
    std::vector<std::string> args = {worker_bin,
                                     "--manifest",
                                     w.manifest,
                                     "--results",
                                     w.results,
                                     "--sa-out",
                                     w.sa_prefix,
                                     "--jobs",
                                     std::to_string(threads_per_worker_),
                                     "--coalesce",
                                     local_.coalescing() ? "1" : "0"};
    if (!local_.sa_cache_path().empty()) {
      args.push_back("--sa-in");
      args.push_back(local_.sa_cache_path());
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    HLP_REQUIRE(pid >= 0, "fork failed: " << std::strerror(errno));
    if (pid == 0) {
      const int fd = ::open(w.log.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
      if (fd >= 0) {
        ::dup2(fd, 1);
        ::dup2(fd, 2);
        ::close(fd);
      }
      ::execv(argv[0], argv.data());
      _exit(127);  // exec failed; the parent reports status 127 + log
    }
    w.pid = pid;
  }

  // Reap, with an optional deadline. Workers past the deadline are
  // SIGKILLed and their slices report the timeout.
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  std::size_t running = procs.size();
  while (running > 0) {
    bool progress = false;
    for (WorkerProc& w : procs) {
      if (w.exited) continue;
      int status = 0;
      const pid_t r = ::waitpid(w.pid, &status, WNOHANG);
      if (r == w.pid) {
        w.exited = true;
        w.status = status;
        --running;
        progress = true;
      }
    }
    if (running == 0) break;
    if (timeout_s_ > 0.0 &&
        std::chrono::duration<double>(Clock::now() - t0).count() >
            timeout_s_) {
      for (WorkerProc& w : procs) {
        if (w.exited) continue;
        ::kill(w.pid, SIGKILL);
        int status = 0;
        ::waitpid(w.pid, &status, 0);
        w.exited = true;
        w.timed_out = true;
        --running;
      }
      break;
    }
    if (!progress)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Collect: place results by manifest index; any worker-level failure is
  // reported on every job of its slice.
  std::vector<JobResult> results(jobs.size());
  auto fail_slice = [&](const WorkerProc& w, const std::string& why) {
    const std::string tail = log_tail(w.log);
    for (const std::size_t i : w.slice) {
      results[i].job = jobs[i];
      results[i].ok = false;
      results[i].error =
          why + (tail.empty() ? "" : "; worker log tail: " + tail);
    }
  };
  for (std::size_t k = 0; k < procs.size(); ++k) {
    const WorkerProc& w = procs[k];
    const std::string who = "worker " + std::to_string(k);
    if (w.timed_out) {
      std::ostringstream why;
      why << who << " timed out after " << timeout_s_ << "s and was killed";
      fail_slice(w, why.str());
      continue;
    }
    if (WIFSIGNALED(w.status)) {
      fail_slice(w, who + " killed by signal " +
                        std::to_string(WTERMSIG(w.status)));
      continue;
    }
    if (!WIFEXITED(w.status) || WEXITSTATUS(w.status) != 0) {
      fail_slice(w, who + " exited with status " +
                        std::to_string(WIFEXITED(w.status)
                                           ? WEXITSTATUS(w.status)
                                           : -1));
      continue;
    }
    std::vector<ManifestResult> shard;
    try {
      shard = load_results_file(w.results);
    } catch (const std::exception& e) {
      // Missing or truncated output from a worker that claimed success.
      fail_slice(w, who + " produced unreadable results: " + e.what());
      continue;
    }
    const std::set<std::size_t> expect(w.slice.begin(), w.slice.end());
    std::set<std::size_t> got;
    for (const ManifestResult& mr : shard) got.insert(mr.index);
    if (got != expect) {
      fail_slice(w, who + " returned " + std::to_string(shard.size()) +
                        " results that do not cover its " +
                        std::to_string(w.slice.size()) + "-job slice");
      continue;
    }
    for (ManifestResult& mr : shard) {
      results[mr.index] = std::move(mr.result);
      // The results file answers by index; the job itself is the parent's
      // copy (the manifest round-trip is tested separately).
      results[mr.index].job = jobs[mr.index];
    }
  }

  // Merge the SA shards of cleanly exited workers into the parent tables
  // (worker shard files are written atomically, so a file either is a
  // complete table or does not exist). Conflicts throw — the entries are
  // deterministic, so a conflict means two workers computed under
  // different configurations and the whole run is suspect.
  std::set<int> widths;
  for (const Job& j : jobs) widths.insert(j.width);
  for (const WorkerProc& w : procs) {
    if (!w.exited || w.timed_out || !WIFEXITED(w.status) ||
        WEXITSTATUS(w.status) != 0)
      continue;
    for (const int width : widths) {
      const std::string file = w.sa_prefix + ".w" + std::to_string(width);
      if (std::error_code ec; fs::exists(file, ec) && !ec)
        local_.sa_cache(width).merge_from(file);
    }
  }
  local_.persist_sa_caches();

  if (own_dir && !keep_files_) {
    std::error_code ec;
    fs::remove_all(dir, ec);  // best effort; never fail a finished run
  }
  return results;
}

}  // namespace hlp::flow
