#include "flow/job_io.hpp"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ios>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace hlp::flow {

namespace {

constexpr const char* kManifestMagic = "hlp-manifest";
constexpr const char* kResultsMagic = "hlp-results";

bool needs_escape(unsigned char c) {
  return c == '%' || std::isspace(c) || !std::isprint(c);
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// ---- scalar round-trip helpers ------------------------------------------

// Hexfloat survives the text round trip bit for bit (operator>> cannot
// parse hexfloat portably, so reads go through strtod, which can).
std::string fmt_double(double d) {
  std::ostringstream os;
  os << std::hexfloat << d;
  return os.str();
}

double parse_double(const std::string& s) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  HLP_REQUIRE(end != s.c_str() && *end == '\0' && errno != ERANGE,
              "bad double '" << s << "'");
  return v;
}

long long parse_i64(const std::string& s) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  HLP_REQUIRE(end != s.c_str() && *end == '\0' && errno != ERANGE,
              "bad integer '" << s << "'");
  return v;
}

std::uint64_t parse_u64(const std::string& s) {
  HLP_REQUIRE(!s.empty() && s[0] != '-', "bad unsigned '" << s << "'");
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  HLP_REQUIRE(end != s.c_str() && *end == '\0' && errno != ERANGE,
              "bad unsigned '" << s << "'");
  return v;
}

int parse_int(const std::string& s) {
  const long long v = parse_i64(s);
  HLP_REQUIRE(v >= INT_MIN && v <= INT_MAX, "integer '" << s << "' overflows");
  return static_cast<int>(v);
}

const char* engine_name(SimEngine e) {
  return e == SimEngine::kScalar ? "scalar" : "batched";
}

SimEngine parse_engine(const std::string& s) {
  if (s == "scalar") return SimEngine::kScalar;
  if (s == "batched") return SimEngine::kBatched;
  HLP_REQUIRE(false, "unknown sim engine '" << s << "'");
}

OpKind parse_op_kind(const std::string& s) {
  if (s == "add") return OpKind::kAdd;
  if (s == "mult") return OpKind::kMult;
  HLP_REQUIRE(false, "unknown op kind '" << s << "'");
}

// ---- line tokenization ---------------------------------------------------

std::vector<std::string> tokens_of(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

// key=value fields of a record line (everything after the leading keyword).
// Unknown keys are kept (a newer writer may add fields; readers only
// require the keys they know).
class Fields {
 public:
  Fields(const std::vector<std::string>& toks, std::size_t first,
         const std::string& what)
      : what_(what) {
    for (std::size_t i = first; i < toks.size(); ++i) {
      const auto eq = toks[i].find('=');
      HLP_REQUIRE(eq != std::string::npos,
                  what << ": field '" << toks[i] << "' is not key=value");
      kv_[toks[i].substr(0, eq)] = toks[i].substr(eq + 1);
    }
  }

  const std::string& at(const std::string& key) const {
    auto it = kv_.find(key);
    HLP_REQUIRE(it != kv_.end(), what_ << ": missing field '" << key << "'");
    return it->second;
  }

  double d(const std::string& key) const { return parse_double(at(key)); }
  int i(const std::string& key) const { return parse_int(at(key)); }
  std::uint64_t u(const std::string& key) const { return parse_u64(at(key)); }
  std::size_t z(const std::string& key) const {
    return static_cast<std::size_t>(parse_u64(at(key)));
  }
  bool b(const std::string& key) const {
    const std::string& v = at(key);
    HLP_REQUIRE(v == "0" || v == "1",
                what_ << ": field '" << key << "=" << v << "' must be 0 or 1");
    return v == "1";
  }
  std::string s(const std::string& key) const { return decode_token(at(key)); }

 private:
  std::string what_;
  std::map<std::string, std::string> kv_;
};

// Reader that tracks line numbers for error messages and detects files cut
// short: next_line() on a stream that ends before the footer throws.
class LineReader {
 public:
  explicit LineReader(std::istream& is, const std::string& what)
      : is_(is), what_(what) {}

  std::string next_line() {
    std::string line;
    while (std::getline(is_, line)) {
      ++lineno_;
      if (!tokens_of(line).empty()) return line;  // skip blank lines
    }
    HLP_REQUIRE(false, what_ << " truncated: unexpected end of file after line "
                             << lineno_ << " (missing 'end' footer?)");
  }

  int lineno() const { return lineno_; }

 private:
  std::istream& is_;
  std::string what_;
  int lineno_ = 0;
};

// Shared header/footer framing: "<magic> v1" ... "end <magic> <count>".
std::size_t read_header(LineReader& r, const char* magic,
                        const std::string& what) {
  const auto head = tokens_of(r.next_line());
  HLP_REQUIRE(head.size() == 2 && head[0] == magic && head[1] == "v1",
              what << ": bad header (want '" << magic << " v1')");
  const auto count = tokens_of(r.next_line());
  HLP_REQUIRE(count.size() == 2 && count[0] == "count",
              what << ": bad count line");
  return static_cast<std::size_t>(parse_u64(count[1]));
}

void check_footer(const std::vector<std::string>& toks, const char* magic,
                  std::size_t expected, const std::string& what) {
  HLP_REQUIRE(toks.size() == 3 && toks[0] == "end" && toks[1] == magic,
              what << ": bad footer");
  HLP_REQUIRE(parse_u64(toks[2]) == expected,
              what << ": footer count " << toks[2] << " != declared count "
                   << expected);
}

// ---- vector lines: "<name> <count> <v0> <v1> ..." ------------------------

template <typename T, typename Fmt>
void save_vec(std::ostream& os, const char* name, const std::vector<T>& v,
              Fmt fmt) {
  os << name << " " << v.size();
  for (const T& x : v) os << " " << fmt(x);
  os << "\n";
}

template <typename T, typename Parse>
std::vector<T> load_vec(const std::vector<std::string>& toks, const char* name,
                        Parse parse, const std::string& what) {
  HLP_REQUIRE(toks.size() >= 2 && toks[0] == name,
              what << ": expected '" << name << "' line, got '"
                   << (toks.empty() ? std::string() : toks[0]) << "'");
  const std::size_t n = static_cast<std::size_t>(parse_u64(toks[1]));
  HLP_REQUIRE(toks.size() == 2 + n,
              what << ": '" << name << "' declares " << n << " values, has "
                   << toks.size() - 2);
  std::vector<T> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(parse(toks[2 + i]));
  return out;
}

}  // namespace

std::string encode_token(const std::string& s) {
  static const char* hex = "0123456789ABCDEF";
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (needs_escape(u)) {
      out += '%';
      out += hex[u >> 4];
      out += hex[u & 0xf];
    } else {
      out += c;
    }
  }
  return out;
}

std::string decode_token(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out += s[i];
      continue;
    }
    HLP_REQUIRE(i + 2 < s.size() && hex_digit(s[i + 1]) >= 0 &&
                    hex_digit(s[i + 2]) >= 0,
                "malformed %-escape in '" << s << "'");
    out += static_cast<char>(hex_digit(s[i + 1]) * 16 + hex_digit(s[i + 2]));
    i += 2;
  }
  return out;
}

// ---- manifest ------------------------------------------------------------

void save_manifest(std::ostream& os, const std::vector<ManifestJob>& jobs) {
  os << kManifestMagic << " v1\n";
  os << "count " << jobs.size() << "\n";
  for (const ManifestJob& mj : jobs) {
    const Job& j = mj.job;
    os << "job index=" << mj.index
       << " benchmark=" << encode_token(j.benchmark)
       << " scheduler=" << encode_token(j.scheduler)
       << " binder=" << encode_token(j.binder.name)
       << " alpha=" << fmt_double(j.binder.alpha)
       << " beta_add=" << fmt_double(j.binder.beta_add)
       << " beta_mult=" << fmt_double(j.binder.beta_mult)
       << " refine=" << (j.binder.refine ? 1 : 0)
       << " adders=" << j.rc.adders << " mults=" << j.rc.multipliers
       << " width=" << j.width << " vectors=" << j.num_vectors
       << " seed=" << j.seed << " reg_seed=" << j.reg_seed
       << " min_latency=" << j.sched_spec.min_latency
       << " latency_slack=" << j.sched_spec.latency_slack
       << " engine=" << engine_name(j.sim_engine)
       << " simd=" << simd_mode_name(j.simd)
       << " settle=" << settle_mode_name(j.settle)
       // The SA mode is serialised RESOLVED (the parent's environment
       // applies here, once): unlike simd/settle it changes values, so a
       // worker must never re-consult its own HLP_SA_MODE.
       << " sa=" << sa_mode_name(effective_sa_mode(j.sa))
       << " label=" << encode_token(j.label) << "\n";
  }
  os << "end " << kManifestMagic << " " << jobs.size() << "\n";
}

std::vector<ManifestJob> load_manifest(std::istream& is) {
  const std::string what = "manifest";
  LineReader r(is, what);
  const std::size_t n = read_header(r, kManifestMagic, what);
  std::vector<ManifestJob> out;
  out.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const auto toks = tokens_of(r.next_line());
    HLP_REQUIRE(!toks.empty() && toks[0] == "job",
                what << ": expected 'job' line (line " << r.lineno() << ")");
    const Fields f(toks, 1, what);
    ManifestJob mj;
    mj.index = f.z("index");
    Job& j = mj.job;
    j.benchmark = f.s("benchmark");
    j.scheduler = f.s("scheduler");
    j.binder.name = f.s("binder");
    j.binder.alpha = f.d("alpha");
    j.binder.beta_add = f.d("beta_add");
    j.binder.beta_mult = f.d("beta_mult");
    j.binder.refine = f.b("refine");
    j.rc.adders = f.i("adders");
    j.rc.multipliers = f.i("mults");
    j.width = f.i("width");
    j.num_vectors = f.i("vectors");
    j.seed = f.u("seed");
    j.reg_seed = f.u("reg_seed");
    j.sched_spec.min_latency = f.i("min_latency");
    j.sched_spec.latency_slack = f.i("latency_slack");
    j.sim_engine = parse_engine(f.at("engine"));
    j.simd = parse_simd_mode(f.at("simd"));
    j.settle = parse_settle_mode(f.at("settle"));
    j.sa = parse_sa_mode(f.at("sa"));
    j.label = f.s("label");
    out.push_back(std::move(mj));
  }
  check_footer(tokens_of(r.next_line()), kManifestMagic, n, what);
  return out;
}

void save_manifest_file(const std::string& path,
                        const std::vector<ManifestJob>& jobs) {
  std::ofstream f(path);
  HLP_REQUIRE(f.good(), "cannot open '" << path << "' for writing");
  save_manifest(f, jobs);
  f.flush();
  HLP_REQUIRE(f.good(), "write to '" << path << "' failed");
}

std::vector<ManifestJob> load_manifest_file(const std::string& path) {
  std::ifstream f(path);
  HLP_REQUIRE(f.good(), "cannot open manifest '" << path << "' for reading");
  return load_manifest(f);
}

// ---- results -------------------------------------------------------------

void save_results(std::ostream& os,
                  const std::vector<ManifestResult>& results) {
  os << kResultsMagic << " v1\n";
  os << "count " << results.size() << "\n";
  const auto u64 = [](std::uint64_t v) { return std::to_string(v); };
  const auto i32 = [](int v) { return std::to_string(v); };
  for (const ManifestResult& mr : results) {
    const JobResult& r = mr.result;
    os << "result index=" << mr.index << " ok=" << (r.ok ? 1 : 0)
       << " error=" << encode_token(r.error)
       << " seconds=" << fmt_double(r.seconds)
       << " group_size=" << r.group_size << "\n";
    if (r.ok) {
      const PipelineOutcome& o = r.outcome;
      save_vec(os, "fus", o.fus.fu_of_op, i32);
      save_vec(os, "kinds", o.fus.kind_of_fu,
               [](OpKind k) { return std::string(to_string(k)); });
      save_vec(os, "flipped", o.fus.flipped,
               [](char c) { return std::to_string(c != 0 ? 1 : 0); });
      os << "refine refined=" << (o.refined ? 1 : 0)
         << " flips=" << o.refine.flips_applied
         << " passes=" << o.refine.passes
         << " cost_before=" << fmt_double(o.refine.cost_before)
         << " cost_after=" << fmt_double(o.refine.cost_after) << "\n";
      const DatapathStats& m = o.flow.mux_stats;
      os << "mux largest=" << m.largest_mux << " length=" << m.mux_length
         << " fus=" << m.num_fus << " mean=" << fmt_double(m.muxdiff_mean)
         << " var=" << fmt_double(m.muxdiff_variance) << "\n";
      save_vec(os, "muxa", m.mux_size_a, i32);
      save_vec(os, "muxb", m.mux_size_b, i32);
      save_vec(os, "muxdiff", m.muxdiff, i32);
      os << "map luts=" << o.flow.mapped.num_luts
         << " depth=" << o.flow.mapped.depth
         << " clock=" << fmt_double(o.flow.clock_period_ns) << "\n";
      const CycleSimStats& s = o.flow.sim;
      os << "sim cycles=" << s.num_cycles << " total=" << s.total_transitions
         << " functional=" << s.functional_transitions << "\n";
      save_vec(os, "toggles", s.toggles, u64);
      const PowerReport& p = o.flow.report;
      os << "power dyn=" << fmt_double(p.dynamic_power_mw)
         << " clock=" << fmt_double(p.clock_period_ns)
         << " luts=" << p.num_luts << " regs=" << p.num_registers
         << " rate=" << fmt_double(p.toggle_rate_mps)
         << " tpc=" << fmt_double(p.transitions_per_cycle)
         << " glitch=" << fmt_double(p.glitch_fraction) << "\n";
      os << "bind seconds=" << fmt_double(o.bind_seconds) << "\n";
      save_vec(os, "cached", o.cached_stages, encode_token);
      for (const StageTiming& t : o.timings)
        os << "timing " << encode_token(t.name) << " "
           << fmt_double(t.seconds) << "\n";
    }
    os << "endresult\n";
  }
  os << "end " << kResultsMagic << " " << results.size() << "\n";
}

std::vector<ManifestResult> load_results(std::istream& is) {
  const std::string what = "results file";
  LineReader r(is, what);
  const std::size_t n = read_header(r, kResultsMagic, what);
  std::vector<ManifestResult> out;
  out.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    auto toks = tokens_of(r.next_line());
    HLP_REQUIRE(!toks.empty() && toks[0] == "result",
                what << ": expected 'result' line (line " << r.lineno()
                     << ")");
    const Fields head(toks, 1, what);
    ManifestResult mr;
    mr.index = head.z("index");
    JobResult& res = mr.result;
    res.ok = head.b("ok");
    res.error = head.s("error");
    res.seconds = head.d("seconds");
    res.group_size = head.z("group_size");
    if (res.ok) {
      PipelineOutcome& o = res.outcome;
      const auto as_int = [](const std::string& s) { return parse_int(s); };
      o.fus.fu_of_op = load_vec<int>(tokens_of(r.next_line()), "fus", as_int,
                                     what);
      o.fus.kind_of_fu = load_vec<OpKind>(tokens_of(r.next_line()), "kinds",
                                          parse_op_kind, what);
      o.fus.flipped = load_vec<char>(
          tokens_of(r.next_line()), "flipped",
          [](const std::string& s) {
            return static_cast<char>(parse_int(s) != 0 ? 1 : 0);
          },
          what);
      {
        const Fields f(toks = tokens_of(r.next_line()), 1, what);
        HLP_REQUIRE(toks[0] == "refine", what << ": expected 'refine' line");
        o.refined = f.b("refined");
        o.refine.flips_applied = f.i("flips");
        o.refine.passes = f.i("passes");
        o.refine.cost_before = f.d("cost_before");
        o.refine.cost_after = f.d("cost_after");
        // The pipeline publishes the refined binding as out.fus too, so
        // the record does not duplicate it.
        if (o.refined) o.refine.fus = o.fus;
      }
      {
        const Fields f(toks = tokens_of(r.next_line()), 1, what);
        HLP_REQUIRE(toks[0] == "mux", what << ": expected 'mux' line");
        DatapathStats& m = o.flow.mux_stats;
        m.largest_mux = f.i("largest");
        m.mux_length = f.i("length");
        m.num_fus = f.i("fus");
        m.muxdiff_mean = f.d("mean");
        m.muxdiff_variance = f.d("var");
      }
      o.flow.mux_stats.mux_size_a =
          load_vec<int>(tokens_of(r.next_line()), "muxa", as_int, what);
      o.flow.mux_stats.mux_size_b =
          load_vec<int>(tokens_of(r.next_line()), "muxb", as_int, what);
      o.flow.mux_stats.muxdiff =
          load_vec<int>(tokens_of(r.next_line()), "muxdiff", as_int, what);
      {
        const Fields f(toks = tokens_of(r.next_line()), 1, what);
        HLP_REQUIRE(toks[0] == "map", what << ": expected 'map' line");
        o.flow.mapped.num_luts = f.i("luts");
        o.flow.mapped.depth = f.i("depth");
        o.flow.clock_period_ns = f.d("clock");
      }
      {
        const Fields f(toks = tokens_of(r.next_line()), 1, what);
        HLP_REQUIRE(toks[0] == "sim", what << ": expected 'sim' line");
        o.flow.sim.num_cycles = f.u("cycles");
        o.flow.sim.total_transitions = f.u("total");
        o.flow.sim.functional_transitions = f.u("functional");
      }
      o.flow.sim.toggles = load_vec<std::uint64_t>(
          tokens_of(r.next_line()), "toggles",
          [](const std::string& s) { return parse_u64(s); }, what);
      {
        const Fields f(toks = tokens_of(r.next_line()), 1, what);
        HLP_REQUIRE(toks[0] == "power", what << ": expected 'power' line");
        PowerReport& p = o.flow.report;
        p.dynamic_power_mw = f.d("dyn");
        p.clock_period_ns = f.d("clock");
        p.num_luts = f.i("luts");
        p.num_registers = f.i("regs");
        p.toggle_rate_mps = f.d("rate");
        p.transitions_per_cycle = f.d("tpc");
        p.glitch_fraction = f.d("glitch");
      }
      {
        const Fields f(toks = tokens_of(r.next_line()), 1, what);
        HLP_REQUIRE(toks[0] == "bind", what << ": expected 'bind' line");
        o.bind_seconds = f.d("seconds");
      }
      o.cached_stages = load_vec<std::string>(
          tokens_of(r.next_line()), "cached", decode_token, what);
      // Zero or more timing lines, then the record terminator.
      while (true) {
        toks = tokens_of(r.next_line());
        if (toks[0] == "endresult") break;
        HLP_REQUIRE(toks.size() == 3 && toks[0] == "timing",
                    what << ": expected 'timing' or 'endresult' (line "
                         << r.lineno() << ")");
        o.timings.push_back({decode_token(toks[1]), parse_double(toks[2])});
      }
    } else {
      toks = tokens_of(r.next_line());
      HLP_REQUIRE(toks.size() == 1 && toks[0] == "endresult",
                  what << ": failed result record must end at 'endresult' "
                          "(line "
                       << r.lineno() << ")");
    }
    out.push_back(std::move(mr));
  }
  check_footer(tokens_of(r.next_line()), kResultsMagic, n, what);
  return out;
}

void save_results_file(const std::string& path,
                       const std::vector<ManifestResult>& results) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp);
    HLP_REQUIRE(f.good(), "cannot open '" << tmp << "' for writing");
    save_results(f, results);
    f.flush();
    HLP_REQUIRE(f.good(), "write to '" << tmp << "' failed");
  }
  // Atomic publish: a results file either exists complete or not at all,
  // so a parent never reads a half-written file from a live worker (a
  // *killed* worker leaves no results file, which the parent reports).
  HLP_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
              "cannot move '" << tmp << "' to '" << path << "'");
}

std::vector<ManifestResult> load_results_file(const std::string& path) {
  std::ifstream f(path);
  HLP_REQUIRE(f.good(), "cannot open results '" << path << "' for reading");
  return load_results(f);
}

// ---- streaming protocol v2 ----------------------------------------------

namespace {

// The `endunit <id>` trailer shared by both frame kinds. Reads through a
// fresh LineReader so EOF before the trailer throws "truncated".
void check_unit_trailer(std::istream& is, std::size_t id,
                        const std::string& what) {
  LineReader r(is, what);
  const auto toks = tokens_of(r.next_line());
  HLP_REQUIRE(toks.size() == 2 && toks[0] == "endunit" &&
                  parse_u64(toks[1]) == id,
              what << ": bad 'endunit' trailer (want 'endunit " << id
                   << "')");
}

}  // namespace

void save_unit_request(std::ostream& os, std::size_t id,
                       const std::vector<ManifestJob>& jobs) {
  os << "unit " << id << "\n";
  save_manifest(os, jobs);
  os << "endunit " << id << "\n";
}

void save_unit_quit(std::ostream& os) { os << "quit\n"; }

UnitRequest load_unit_request(std::istream& is) {
  const std::string what = "unit request";
  UnitRequest req;
  // The opening line is read leniently: end-of-stream here is a clean
  // quit, not a truncation (the parent may simply close the pipe).
  std::string line;
  std::vector<std::string> head;
  while (std::getline(is, line)) {
    head = tokens_of(line);
    if (!head.empty()) break;
  }
  if (head.empty() || head[0] == "quit") {
    req.quit = true;
    return req;
  }
  HLP_REQUIRE(head.size() == 2 && head[0] == "unit",
              what << ": expected 'unit <id>' or 'quit', got '" << line
                   << "'");
  req.id = static_cast<std::size_t>(parse_u64(head[1]));
  req.jobs = load_manifest(is);
  check_unit_trailer(is, req.id, what);
  return req;
}

void save_unit_response(std::ostream& os, std::size_t id,
                        const std::vector<ManifestResult>& results) {
  os << "unitdone " << id << "\n";
  save_results(os, results);
  os << "endunit " << id << "\n";
}

UnitResponse load_unit_response(std::istream& is) {
  const std::string what = "unit response";
  LineReader r(is, what);
  const auto head = tokens_of(r.next_line());
  HLP_REQUIRE(head.size() == 2 && head[0] == "unitdone",
              what << ": expected 'unitdone <id>' header");
  UnitResponse resp;
  resp.id = static_cast<std::size_t>(parse_u64(head[1]));
  resp.results = load_results(is);
  check_unit_trailer(is, resp.id, what);
  return resp;
}

// ---- equality ------------------------------------------------------------

bool same_outcome(const JobResult& a, const JobResult& b) {
  if (a.ok != b.ok || a.error != b.error) return false;
  if (!a.ok) return true;
  const PipelineOutcome& x = a.outcome;
  const PipelineOutcome& y = b.outcome;
  const DatapathStats& mx = x.flow.mux_stats;
  const DatapathStats& my = y.flow.mux_stats;
  const auto refine_eq = [&] {
    if (x.refined != y.refined) return false;
    if (!x.refined) return true;
    return x.refine.flips_applied == y.refine.flips_applied &&
           x.refine.passes == y.refine.passes &&
           x.refine.cost_before == y.refine.cost_before &&
           x.refine.cost_after == y.refine.cost_after;
  };
  return x.fus.fu_of_op == y.fus.fu_of_op &&
         x.fus.kind_of_fu == y.fus.kind_of_fu &&
         x.fus.flipped == y.fus.flipped && refine_eq() &&
         mx.largest_mux == my.largest_mux &&
         mx.mux_length == my.mux_length && mx.num_fus == my.num_fus &&
         mx.muxdiff_mean == my.muxdiff_mean &&
         mx.muxdiff_variance == my.muxdiff_variance &&
         mx.mux_size_a == my.mux_size_a && mx.mux_size_b == my.mux_size_b &&
         mx.muxdiff == my.muxdiff &&
         x.flow.mapped.num_luts == y.flow.mapped.num_luts &&
         x.flow.mapped.depth == y.flow.mapped.depth &&
         x.flow.clock_period_ns == y.flow.clock_period_ns &&
         x.flow.sim.toggles == y.flow.sim.toggles &&
         x.flow.sim.num_cycles == y.flow.sim.num_cycles &&
         x.flow.sim.total_transitions == y.flow.sim.total_transitions &&
         x.flow.sim.functional_transitions ==
             y.flow.sim.functional_transitions &&
         x.flow.report.dynamic_power_mw == y.flow.report.dynamic_power_mw &&
         x.flow.report.clock_period_ns == y.flow.report.clock_period_ns &&
         x.flow.report.num_luts == y.flow.report.num_luts &&
         x.flow.report.num_registers == y.flow.report.num_registers &&
         x.flow.report.toggle_rate_mps == y.flow.report.toggle_rate_mps &&
         x.flow.report.transitions_per_cycle ==
             y.flow.report.transitions_per_cycle &&
         x.flow.report.glitch_fraction == y.flow.report.glitch_fraction;
}

}  // namespace hlp::flow
