// AVX-512 instantiation of the seed-chunk simulation (512 seeds per
// __m512i word). Compiled with -mavx512f; reached only through runtime CPU
// dispatch.
#if defined(__AVX512F__)

#include "flow/seed_chunk.hpp"

namespace hlp::flow::detail {

std::vector<CycleSimStats> simulate_seed_chunk_avx512(
    const Netlist& n, const Datapath& dp, const LaneSamples& lane_samples,
    SettleMode settle) {
  return simulate_seed_chunk_t<AvxWord512>(n, dp, lane_samples, settle);
}

}  // namespace hlp::flow::detail

#endif  // __AVX512F__
