// DistributedRunner: shard an ExperimentRunner job grid across worker
// *processes* (fork/exec of the hlp_worker binary), the scaling layer
// above the in-process thread pool and the SIMD-saturated engine.
//
// Two dispatch strategies (HLP_DISPATCH / set_dispatch, bit-identical —
// the knob only changes scheduling and wall-clock):
//
//  static  The parent splits the grid into contiguous slices, writes each
//          slice as a manifest file (src/flow/job_io.hpp), and fork/execs
//          one batch-mode hlp_worker per slice. The run waits on the
//          slowest slice.
//  stream  Work-stealing: the parent decomposes the grid into work units
//          (plan_units — whole seed-coalescing chunks, so coalescing and
//          lane-aware SIMD sizing are preserved), fork/execs long-lived
//          `hlp_worker --serve` processes, and hands out one unit at a
//          time over stdin/stdout (framed protocol-v2 records). A worker
//          that finishes pulls the next unit, so fast workers naturally
//          steal the tail and stragglers stop gating the grid. Timeouts
//          are per-unit: a slow or dead worker costs one unit, which is
//          requeued (bounded retries) onto a replacement before its jobs
//          report an error. Workers keep their FlowContexts, StageCaches
//          and SA tables warm across units and flush their SA shard once
//          at exit.
//
// Either way the parent
//  - places results back by grid index, so the returned vector is in job
//    order regardless of sharding or completion order (deterministic
//    merge), and
//  - merges every cleanly-exited worker's SA shard into its own tables
//    with SaCache::merge_from (conflict = assert-equal; entries are
//    deterministic), persisting the union when a warm-start path is set.
//
// Every library algorithm is deterministic, so a distributed run is
// bit-identical to a threaded in-process run of the same grid under both
// dispatch modes (tests/distributed_test.cpp; job_io.hpp's same_outcome
// is the equality). Worker failures never throw out of run(): a nonzero
// exit, a death by signal, a timeout or truncated/unparseable output is
// reported through JobResult::error — on every job of the worker's slice
// (static) or of the exhausted unit (stream), with the tail of the
// worker's captured log — mirroring the per-job failure capture of the
// in-process runner.
//
// The same manifest/results files — and the serve loop over any byte
// stream — work over ssh/scp: multi-machine sharding is a transport
// change, not a format change (docs/distributed.md).
#pragma once

#include <string>
#include <vector>

#include "flow/dispatch_mode.hpp"
#include "flow/experiment.hpp"

namespace hlp::flow {

/// Worker-process count from the HLP_WORKERS env var, else `fallback`.
/// Strict like jobs_from_env: garbage or non-positive values throw.
int workers_from_env(int fallback);

class DistributedRunner {
 public:
  /// `workers` processes, each running an ExperimentRunner with
  /// `threads_per_worker` threads. workers <= 1 (the default, unless
  /// HLP_WORKERS says otherwise) degrades gracefully to the in-process
  /// threaded runner — same results, no processes spawned. The
  /// constructor reads HLP_SA_CACHE (via the local runner) as the
  /// warm-start default and HLP_COALESCE as the coalescing default.
  ///
  /// Jobs are resolved by benchmark *name* in the worker process (the
  /// default make_paper_benchmark provider) — a custom GraphProvider
  /// cannot cross a process boundary; use ExperimentRunner directly for
  /// those grids.
  explicit DistributedRunner(int workers = workers_from_env(1),
                             int threads_per_worker = 1);

  /// Run the grid; results in job order (bit-identical to the in-process
  /// runner; see same_outcome). Never throws for worker failures — those
  /// land in JobResult::error — only for setup errors (unusable worker
  /// binary / work directory) and SA-shard merge conflicts, which mean
  /// the run's determinism contract was broken.
  std::vector<JobResult> run(const std::vector<Job>& jobs);

  void set_workers(int n);
  int workers() const { return workers_; }
  void set_threads_per_worker(int n);
  int threads_per_worker() const { return threads_per_worker_; }

  /// Path of the hlp_worker binary. Default: $HLP_WORKER_BIN if set, else
  /// "hlp_worker" next to the current executable (the build-tree layout).
  void set_worker_binary(std::string path) { worker_binary_ = std::move(path); }
  const std::string& worker_binary() const { return worker_binary_; }

  /// Dispatch strategy. kAuto (the default) defers to HLP_DISPATCH and
  /// then picks stream for any run that actually distributes (>= 2
  /// workers); kStatic pins the contiguous-slice oracle, kStream the
  /// work-stealing queue. Resolved at run() via resolve_dispatch_mode.
  void set_dispatch(DispatchMode mode) { dispatch_ = mode; }
  DispatchMode dispatch() const { return dispatch_; }

  /// Kill workers still running after this many seconds and report the
  /// timeout on their jobs. 0 (default) = no timeout. In static dispatch
  /// the deadline covers a worker's whole slice; in streaming dispatch it
  /// is per *unit* — a unit past the deadline gets its worker killed and
  /// is requeued (kMaxUnitAttempts total tries) before erroring out.
  void set_timeout(double seconds) { timeout_s_ = seconds; }
  double timeout() const { return timeout_s_; }

  /// Times a unit may be handed out in streaming dispatch before its jobs
  /// report a per-job error (first try + one retry).
  static constexpr int kMaxUnitAttempts = 2;

  /// Directory for manifests/results/logs. Default: a fresh mkdtemp under
  /// the system temp dir, removed after run() (set_keep_files keeps it
  /// for debugging). A caller-provided directory is never removed.
  void set_work_dir(std::string dir) { work_dir_ = std::move(dir); }
  void set_keep_files(bool keep) { keep_files_ = keep; }

  /// Warm-start path for the merged SA tables (HLP_SA_CACHE is the
  /// constructor default). Workers preload from it and the parent saves
  /// the merged union back after every distributed run.
  void set_sa_cache_path(std::string path);
  const std::string& sa_cache_path() const { return local_.sa_cache_path(); }

  /// Seed-coalescing inside each worker (and the in-process fallback).
  void set_coalescing(bool on);
  bool coalescing() const { return local_.coalescing(); }

  /// Shared artifact-store directory (HLP_STORE is the constructor
  /// default, via the local runner). When non-empty every worker process
  /// is launched with `--store <dir>` so the whole fleet publishes into
  /// one store — each worker stages its atomic writes under a private
  /// staging dir — and the in-process fallback persists there too.
  void set_store_dir(std::string dir) { local_.set_store_dir(std::move(dir)); }
  const std::string& store_dir() const { return local_.store_dir(); }

  /// The in-process runner behind the workers <= 1 fallback; also hosts
  /// the merged SA tables (local().sa_cache(width) after a run).
  ExperimentRunner& local() { return local_; }

 private:
  struct RunSetup;  // resolved binary + work dir shared by both dispatchers
  std::vector<JobResult> run_static(const std::vector<Job>& jobs,
                                    const RunSetup& setup);
  std::vector<JobResult> run_stream(const std::vector<Job>& jobs,
                                    const RunSetup& setup);

  int workers_;
  int threads_per_worker_;
  std::string worker_binary_;
  std::string work_dir_;
  double timeout_s_ = 0.0;
  bool keep_files_ = false;
  DispatchMode dispatch_ = DispatchMode::kAuto;
  ExperimentRunner local_;
};

}  // namespace hlp::flow
