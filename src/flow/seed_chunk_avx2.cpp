// AVX2 instantiation of the seed-chunk simulation (256 seeds per __m256i
// word). Compiled with -mavx2; reached only through runtime CPU dispatch.
#if defined(__AVX2__)

#include "flow/seed_chunk.hpp"

namespace hlp::flow::detail {

std::vector<CycleSimStats> simulate_seed_chunk_avx2(
    const Netlist& n, const Datapath& dp, const LaneSamples& lane_samples,
    SettleMode settle) {
  return simulate_seed_chunk_t<AvxWord256>(n, dp, lane_samples, settle);
}

}  // namespace hlp::flow::detail

#endif  // __AVX2__
