#include "flow/pipeline.hpp"

#include <algorithm>
#include <chrono>

#include "binding/datapath_stats.hpp"
#include "common/error.hpp"
#include "netlist/timing.hpp"
#include "sim/vectors.hpp"

namespace hlp::flow {

double PipelineOutcome::stage_seconds(const std::string& name) const {
  for (const auto& t : timings)
    if (t.name == name) return t.seconds;
  return 0.0;
}

namespace {

void stage_schedule(PipelineState& st) { st.schedule = st.ctx.schedule(); }

void stage_bind_regs(PipelineState& st) { st.regs = st.ctx.regs(); }

void stage_bind_fus(PipelineState& st) {
  const BinderFn& binder = binder_registry().at(st.spec.binder.name);
  st.out.fus = binder(st.ctx, st.spec.binder);
}

void stage_refine(PipelineState& st) {
  if (!st.spec.binder.refine) return;
  st.out.refine = refine_ports(st.ctx.cdfg(), st.regs, st.out.fus,
                               st.ctx.sa_cache(),
                               edge_weight_params(st.spec.binder));
  st.out.fus = st.out.refine.fus;
  st.out.refined = true;
}

void stage_elaborate(PipelineState& st) {
  st.datapath =
      elaborate_datapath(st.ctx.cdfg(), st.schedule,
                         Binding{st.regs, st.out.fus},
                         DatapathParams{st.ctx.width()});
  st.out.flow.mux_stats =
      compute_datapath_stats(st.ctx.cdfg(), st.regs, st.out.fus);
}

void stage_map(PipelineState& st) {
  st.out.flow.mapped = tech_map(st.datapath.netlist, st.spec.map);
}

void stage_time(PipelineState& st) {
  st.out.flow.clock_period_ns =
      clock_period_ns(st.out.flow.mapped.lut_netlist, st.spec.timing);
}

void stage_simulate(PipelineState& st) {
  // Stimulus identical to run_flow (same seed, same sequence).
  const auto samples =
      random_samples(st.spec.num_vectors, st.ctx.cdfg().num_inputs(),
                     st.ctx.width(), st.spec.seed);
  const auto frames = make_frames(st.datapath, samples);
  st.out.flow.sim = simulate_frames(st.out.flow.mapped.lut_netlist, frames,
                                    st.spec.sim_engine);
}

void stage_power(PipelineState& st) {
  const auto& sim = st.out.flow.sim;
  const double functional_per_cycle =
      sim.num_cycles ? static_cast<double>(sim.functional_transitions) /
                           static_cast<double>(sim.num_cycles)
                     : 0.0;
  st.out.flow.report = power_from_toggles(
      st.out.flow.mapped.lut_netlist, sim.toggles, sim.num_cycles,
      st.out.flow.clock_period_ns, functional_per_cycle, st.spec.power);
}

}  // namespace

const std::vector<std::string>& Pipeline::stage_names() {
  static const std::vector<std::string> kNames = {
      "schedule", "bind-regs", "bind-fus", "refine", "elaborate",
      "map",      "time",      "simulate", "power"};
  return kNames;
}

Pipeline Pipeline::standard() {
  Pipeline p;
  p.stages_ = {{"schedule", stage_schedule}, {"bind-regs", stage_bind_regs},
               {"bind-fus", stage_bind_fus}, {"refine", stage_refine},
               {"elaborate", stage_elaborate}, {"map", stage_map},
               {"time", stage_time},         {"simulate", stage_simulate},
               {"power", stage_power}};
  return p;
}

Pipeline& Pipeline::replace(const std::string& name, StageFn fn) {
  for (auto& stage : stages_) {
    if (stage.name == name) {
      stage.fn = std::move(fn);
      return *this;
    }
  }
  HLP_REQUIRE(false, "pipeline has no stage named '" << name << "'");
}

PipelineOutcome Pipeline::run(FlowContext& ctx, const RunSpec& spec) const {
  using Clock = std::chrono::steady_clock;
  PipelineState st(ctx, spec);
  st.out.timings.reserve(stages_.size());
  for (const auto& stage : stages_) {
    const auto t0 = Clock::now();
    stage.fn(st);
    const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    st.out.timings.push_back({stage.name, secs});
    if (stage.name == "bind-fus" || stage.name == "refine")
      st.out.bind_seconds += secs;
  }
  return std::move(st.out);
}

}  // namespace hlp::flow
