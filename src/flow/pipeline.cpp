#include "flow/pipeline.hpp"

#include <algorithm>
#include <chrono>

#include "binding/datapath_stats.hpp"
#include "common/error.hpp"
#include "flow/seed_chunk.hpp"
#include "store/artifact_store.hpp"
#include "netlist/timing.hpp"
#include "sim/levelize.hpp"
#include "sim/vectors.hpp"

namespace hlp::flow {

double PipelineOutcome::stage_seconds(const std::string& name) const {
  for (const auto& t : timings)
    if (t.name == name) return t.seconds;
  return 0.0;
}

std::shared_ptr<const StageCache::Entry> StageCache::find(
    const std::string& key) {
  std::shared_ptr<const Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) entry = it->second;
  }
  ++(entry ? hits_ : misses_);
  return entry;
}

std::shared_ptr<const StageCache::Entry> StageCache::find(
    const std::string& key, const StoreTags& tags) {
  auto entry = find(key);  // counts the memory hit/miss either way
  if (entry || !store_) return entry;
  entry = store_->find(
      store::ArtifactKey{store_scope_, key, tags.sa, tags.settle, tags.simd});
  if (entry) {
    ++disk_hits_;
    std::lock_guard<std::mutex> lock(mu_);
    entries_.emplace(key, entry);
  }
  return entry;
}

void StageCache::insert(const std::string& key, Entry entry) {
  auto holder = std::make_shared<const Entry>(std::move(entry));
  std::lock_guard<std::mutex> lock(mu_);
  entries_.emplace(key, std::move(holder));
}

void StageCache::insert(const std::string& key, const StoreTags& tags,
                        Entry entry) {
  auto holder = std::make_shared<const Entry>(std::move(entry));
  // Persist first: a publish conflict (two incompatible configurations
  // sharing one store) must surface as this run's error, not after the
  // memory cache already accepted the entry.
  if (store_)
    store_->publish(
        store::ArtifactKey{store_scope_, key, tags.sa, tags.settle, tags.simd},
        *holder);
  std::lock_guard<std::mutex> lock(mu_);
  entries_.emplace(key, std::move(holder));
}

void StageCache::bind_store(store::ArtifactStore* store, std::string scope) {
  std::lock_guard<std::mutex> lock(mu_);
  store_ = store;
  store_scope_ = std::move(scope);
}

std::size_t StageCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void StageCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

namespace {

void stage_schedule(PipelineState& st) { st.schedule = st.ctx.schedule(); }

void stage_bind_regs(PipelineState& st) { st.regs = st.ctx.regs(); }

void stage_bind_fus(PipelineState& st) {
  const BinderFn& binder = binder_registry().at(st.spec.binder.name);
  st.out.fus = binder(st.ctx, st.spec.binder);
}

void stage_refine(PipelineState& st) {
  if (!st.spec.binder.refine) return;
  st.out.refine = refine_ports(st.ctx.cdfg(), st.regs, st.out.fus,
                               st.ctx.sa_cache(),
                               edge_weight_params(st.spec.binder));
  st.out.fus = st.out.refine.fus;
  st.out.refined = true;
}

void stage_elaborate(PipelineState& st) {
  st.datapath =
      elaborate_datapath(st.ctx.cdfg(), st.schedule,
                         Binding{st.regs, st.out.fus},
                         DatapathParams{st.ctx.width()});
  st.out.flow.mux_stats =
      compute_datapath_stats(st.ctx.cdfg(), st.regs, st.out.fus);
}

void stage_map(PipelineState& st) {
  st.out.flow.mapped = tech_map(st.datapath.netlist, st.spec.map);
}

void stage_time(PipelineState& st) {
  // The levelized arrival sweep (levelize.hpp) shares its wavefront
  // structure with the levelized settle and is bit-identical to
  // clock_period_ns, so StageCache entries and distributed same_outcome
  // comparisons are unaffected by the swap.
  st.out.flow.clock_period_ns =
      levelized_clock_period_ns(st.out.flow.mapped.lut_netlist,
                                st.spec.timing);
}

void stage_simulate(PipelineState& st) {
  // Stimulus identical to run_flow (same seed, same sequence). The word
  // width only matters for the batched engine; every width is
  // bit-identical, so resolving the spec's simd knob here cannot change
  // the result, only the wall clock.
  const auto samples =
      random_samples(st.spec.num_vectors, st.ctx.cdfg().num_inputs(),
                     st.ctx.width(), st.spec.seed);
  const auto frames = make_frames(st.datapath, samples);
  // Lanes = consecutive cycles here, so the auto width is sized to the
  // frame count (it is essentially always >= 512 for real vector counts).
  const SimdMode simd = st.spec.sim_engine == SimEngine::kBatched
                            ? effective_simd_mode(st.spec.simd, frames.size())
                            : SimdMode::kU64;
  // Settle strategy resolves the same way as the width: explicit spec
  // wins, kAuto consults HLP_SETTLE and then self-calibrates per
  // simulator instance. Bit-identical either way.
  const SettleMode settle = effective_settle_mode(st.spec.settle);
  st.out.flow.sim = simulate_frames(st.out.flow.mapped.lut_netlist, frames,
                                    st.spec.sim_engine, simd, settle);
}

// The span of stages whose artifacts a StageCache entry carries. Stages
// before it are memoised on the context already; stages after it depend on
// the stimulus seed.
bool is_cached_stage(const std::string& name) {
  return name == "bind-fus" || name == "refine" || name == "elaborate" ||
         name == "map" || name == "time";
}

// Install one stage's slice of a cache entry instead of running the stage.
void apply_cached(PipelineState& st, const std::string& name,
                  const StageCache::Entry& e) {
  if (name == "bind-fus") {
    st.out.fus = e.fus;
  } else if (name == "refine") {
    st.out.refine = e.refine;
    st.out.refined = e.refined;
  } else if (name == "elaborate") {
    st.datapath = e.datapath;
    st.out.flow.mux_stats = e.mux_stats;
  } else if (name == "map") {
    st.out.flow.mapped = e.mapped;
  } else if (name == "time") {
    st.out.flow.clock_period_ns = e.clock_period_ns;
  }
}

// Snapshot the bind-fus..time artifacts once the `time` stage has run.
StageCache::Entry capture_entry(const PipelineState& st) {
  StageCache::Entry e;
  e.fus = st.out.fus;
  e.refine = st.out.refine;
  e.refined = st.out.refined;
  e.mux_stats = st.out.flow.mux_stats;
  e.datapath = st.datapath;
  e.mapped = st.out.flow.mapped;
  e.clock_period_ns = st.out.flow.clock_period_ns;
  return e;
}

void stage_power(PipelineState& st) {
  const auto& sim = st.out.flow.sim;
  const double functional_per_cycle =
      sim.num_cycles ? static_cast<double>(sim.functional_transitions) /
                           static_cast<double>(sim.num_cycles)
                     : 0.0;
  st.out.flow.report = power_from_toggles(
      st.out.flow.mapped.lut_netlist, sim.toggles, sim.num_cycles,
      st.out.flow.clock_period_ns, functional_per_cycle, st.spec.power);
}

}  // namespace

const std::vector<std::string>& Pipeline::stage_names() {
  static const std::vector<std::string> kNames = {
      "schedule", "bind-regs", "bind-fus", "refine", "elaborate",
      "map",      "time",      "simulate", "power"};
  return kNames;
}

Pipeline Pipeline::standard() {
  Pipeline p;
  p.stages_ = {{"schedule", stage_schedule}, {"bind-regs", stage_bind_regs},
               {"bind-fus", stage_bind_fus}, {"refine", stage_refine},
               {"elaborate", stage_elaborate}, {"map", stage_map},
               {"time", stage_time},         {"simulate", stage_simulate},
               {"power", stage_power}};
  return p;
}

Pipeline& Pipeline::replace(const std::string& name, StageFn fn) {
  for (auto& stage : stages_) {
    if (stage.name == name) {
      stage.fn = std::move(fn);
      // A custom stage body up to `time` invalidates StageCache reuse: the
      // binding hash only sees the spec, not the override.
      if (name != "simulate" && name != "power") cache_safe_ = false;
      return *this;
    }
  }
  HLP_REQUIRE(false, "pipeline has no stage named '" << name << "'");
}

namespace {

// RunSpec::sa pins the SA backend: a concrete request must match what the
// context's cache actually runs (specs and contexts resolved under
// different HLP_SA_MODE values would silently mix backends otherwise).
void check_sa_pin(FlowContext& ctx, const RunSpec& spec) {
  HLP_REQUIRE(!spec.sa || *spec.sa == ctx.sa_cache().mode(),
              "RunSpec pins SA mode '"
                  << sa_mode_name(*spec.sa) << "' but the context's SaCache "
                  << "runs '" << sa_mode_name(ctx.sa_cache().mode()) << "'");
}

}  // namespace

Pipeline::CacheCursor Pipeline::make_cursor(FlowContext& ctx,
                                            const RunSpec& spec) const {
  CacheCursor cursor;
  cursor.enabled = cache_safe_ && spec.use_stage_cache;
  if (cursor.enabled) {
    cursor.key = ctx.binding_hash(spec.binder, spec.map, spec.timing);
    // Mode tags for the persistent store, mirroring the runner's group
    // key: the SA backend resolved (it changes values), settle/simd as
    // REQUESTED (they cannot change the cached artifacts, so two hosts
    // resolving kAuto differently must still share entries).
    cursor.tags.sa = sa_mode_name(ctx.sa_cache().mode());
    cursor.tags.settle = settle_mode_name(spec.settle);
    cursor.tags.simd = simd_mode_name(spec.simd);
  }
  return cursor;
}

void Pipeline::run_stage(PipelineState& st, const Stage& stage,
                         CacheCursor& cursor) const {
  using Clock = std::chrono::steady_clock;
  const bool cacheable = cursor.enabled && is_cached_stage(stage.name);
  if (cacheable && !cursor.probed) {
    cursor.probed = true;  // one hit/miss per run, probed at bind-fus
    cursor.hit = st.ctx.stage_cache().find(cursor.key, cursor.tags);
  }
  const auto t0 = Clock::now();
  if (cacheable && cursor.hit) {
    apply_cached(st, stage.name, *cursor.hit);
    st.out.cached_stages.push_back(stage.name);
  } else {
    stage.fn(st);
  }
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  st.out.timings.push_back({stage.name, secs});
  if (stage.name == "bind-fus" || stage.name == "refine")
    st.out.bind_seconds += secs;
  if (cursor.enabled && !cursor.hit && stage.name == "time")
    st.ctx.stage_cache().insert(cursor.key, cursor.tags, capture_entry(st));
}

PipelineOutcome Pipeline::run(FlowContext& ctx, const RunSpec& spec) const {
  check_sa_pin(ctx, spec);
  PipelineState st(ctx, spec);
  st.out.timings.reserve(stages_.size());
  CacheCursor cursor = make_cursor(ctx, spec);
  for (const auto& stage : stages_) run_stage(st, stage, cursor);
  return std::move(st.out);
}

std::vector<PipelineOutcome> Pipeline::run_batch(
    FlowContext& ctx, const RunSpec& spec,
    const std::vector<std::uint64_t>& seeds) const {
  using Clock = std::chrono::steady_clock;
  std::vector<PipelineOutcome> outs;
  if (seeds.empty()) return outs;
  check_sa_pin(ctx, spec);

  PipelineState st(ctx, spec);
  st.out.timings.reserve(stages_.size());
  CacheCursor cursor = make_cursor(ctx, spec);

  // Shared head: every stage before `simulate` runs once for the whole
  // seed group (overrides and the stage cache both apply).
  bool found_simulate = false;
  std::size_t tail_begin = stages_.size();
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    if (stages_[s].name == "simulate") {
      found_simulate = true;
      tail_begin = s + 1;
      break;
    }
    run_stage(st, stages_[s], cursor);
  }
  HLP_REQUIRE(found_simulate, "run_batch needs a `simulate` stage");

  // Word-parallel simulate: the same stimulus run() would generate per
  // seed, packed one seed per lane and chunked to the selected word width
  // (64 lanes for u64, up to 512 under avx512 — chunking also keeps
  // stimulus memory bounded at one lane group). The batched engine stages
  // sample words directly (flow/seed_chunk.hpp); the scalar oracle goes
  // through the char-frame path per seed. One `simulate` timing entry
  // covers the batch.
  const bool batched = spec.sim_engine == SimEngine::kBatched;
  // Auto width is sized to the seed group: a word wider than the group
  // pays full word cost on lanes that can never fill.
  const SimdMode simd =
      batched ? effective_simd_mode(spec.simd, seeds.size()) : SimdMode::kU64;
  const SettleMode settle = effective_settle_mode(spec.settle);
  const std::size_t chunk_lanes = static_cast<std::size_t>(simd_lanes(simd));
  const auto t0 = Clock::now();
  std::vector<CycleSimStats> sims(seeds.size());
  for (std::size_t g0 = 0; g0 < seeds.size(); g0 += chunk_lanes) {
    const std::size_t count =
        std::min<std::size_t>(chunk_lanes, seeds.size() - g0);
    std::vector<CycleSimStats> chunk;
    if (batched) {
      LaneSamples lane_samples(count);
      for (std::size_t i = 0; i < count; ++i)
        lane_samples[i] =
            random_samples(spec.num_vectors, ctx.cdfg().num_inputs(),
                           ctx.width(), seeds[g0 + i]);
      chunk = simulate_seed_chunk(st.out.flow.mapped.lut_netlist, st.datapath,
                                  lane_samples, simd, settle);
    } else {
      std::vector<std::vector<std::vector<char>>> runs(count);
      for (std::size_t i = 0; i < count; ++i) {
        const auto samples =
            random_samples(spec.num_vectors, ctx.cdfg().num_inputs(),
                           ctx.width(), seeds[g0 + i]);
        runs[i] = make_frames(st.datapath, samples);
      }
      chunk =
          simulate_runs(st.out.flow.mapped.lut_netlist, runs, spec.sim_engine);
    }
    for (std::size_t i = 0; i < count; ++i) sims[g0 + i] = std::move(chunk[i]);
  }
  st.out.timings.push_back(
      {"simulate",
       std::chrono::duration<double>(Clock::now() - t0).count()});

  // Per-seed tail: install each seed's sim stats and run the remaining
  // stages (power, plus any custom additions) on a per-seed copy.
  const std::vector<StageTiming> shared_timings = st.out.timings;
  outs.reserve(seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    st.out.flow.sim = std::move(sims[i]);
    st.out.timings = shared_timings;
    for (std::size_t s = tail_begin; s < stages_.size(); ++s) {
      const auto t1 = Clock::now();
      stages_[s].fn(st);
      st.out.timings.push_back(
          {stages_[s].name,
           std::chrono::duration<double>(Clock::now() - t1).count()});
    }
    outs.push_back(st.out);
  }
  return outs;
}

}  // namespace hlp::flow
