// Word-parallel datapath simulation of one seed chunk — the engine room
// of Pipeline::run_batch's seed coalescing.
//
// Up to WordTraits<W>::kLanes stimulus seeds (one lane each) are evaluated
// against one netlist, staging stimulus directly as words instead of
// materialising per-seed char frames: control inputs are identical across
// lanes (staged all-zero / all-one), and a sample's data bits are constant
// across its phases (gathered once per sample; re-staging an unchanged
// word is a no-op, so this is bit-identical to driving make_frames' rows).
//
// The template is word-generic like the engine it drives; the
// simulate_seed_chunk dispatcher picks the backend from a SimdMode, with
// the AVX instantiations living in seed_chunk_avx2.cpp /
// seed_chunk_avx512.cpp (compiled with -mavx2 / -mavx512f, reached only
// after runtime CPU checks).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "rtl/datapath.hpp"
#include "sim/bit_sim_engine.hpp"
#include "sim/simd_mode.hpp"

namespace hlp::flow {

/// One sample sequence per lane: lane_samples[l][s][p] is sample s's word
/// for data input p (random_samples' shape).
using LaneSamples = std::vector<std::vector<std::vector<std::uint64_t>>>;

/// Evaluate one chunk of stimulus seeds, `simd` lanes per word; chunk size
/// must fit one word of the chosen backend. Returns one CycleSimStats per
/// lane, bit-identical to per-seed scalar simulation of the same stimulus
/// under every settle strategy (settle_mode.hpp).
std::vector<CycleSimStats> simulate_seed_chunk(const Netlist& n,
                                               const Datapath& dp,
                                               const LaneSamples& lane_samples,
                                               SimdMode simd,
                                               SettleMode settle =
                                                   SettleMode::kAuto);

/// Word-generic implementation (instantiated per backend; call
/// simulate_seed_chunk for the runtime-dispatched entry).
template <typename W>
std::vector<CycleSimStats> simulate_seed_chunk_t(
    const Netlist& n, const Datapath& dp, const LaneSamples& lane_samples,
    SettleMode settle = SettleMode::kEvent) {
  using T = WordTraits<W>;
  const int lanes = static_cast<int>(lane_samples.size());
  HLP_REQUIRE(lanes >= 1 && lanes <= T::kLanes,
              "seed chunk must fit one simulator word");
  const W active = T::mask_lo(lanes);
  const int num_nets = n.num_nets();
  const auto& pis = n.inputs();
  const auto& latches = n.latches();
  const std::size_t num_samples = lane_samples.front().size();
  const std::size_t num_inputs = dp.data_input_pos.size();

  BitSimulatorT<W> sim(n, settle);
  // Reset to the all-zero-source settled state in every lane.
  for (NetId pi : pis) sim.stage_source(pi, T::zero());
  for (const auto& l : latches) sim.stage_source(l.q, T::zero());
  sim.settle_zero_delay();

  LaneCountersT<W> toggles(num_nets);
  LaneCountersT<W> fn(1);
  std::vector<NetId> touched;
  touched.reserve(num_nets);
  std::vector<char> touched_flag(num_nets, 0);
  std::vector<W> before(num_nets);
  std::vector<W> data_words(num_inputs * dp.width);

  for (std::size_t s = 0; s < num_samples; ++s) {
    // Gather this sample's data input words, lane-major.
    std::fill(data_words.begin(), data_words.end(), T::zero());
    for (int l = 0; l < lanes; ++l) {
      const auto& sample = lane_samples[l][s];
      for (std::size_t p = 0; p < num_inputs; ++p) {
        const std::uint64_t word = sample[p];
        for (int j = 0; j < dp.width; ++j)
          T::or_lane(data_words[p * dp.width + j], l, (word >> j) & 1u);
      }
    }
    for (int ph = 0; ph < dp.num_phases; ++ph) {
      for (std::size_t p = 0; p < num_inputs; ++p)
        for (int j = 0; j < dp.width; ++j)
          sim.stage_source(pis[dp.data_input_pos[p] + j],
                           data_words[p * dp.width + j]);
      for (const auto& cg : dp.controls) {
        const int sel = cg.select_by_phase[ph];
        for (std::size_t k = 0; k < cg.input_positions.size(); ++k)
          sim.stage_source(pis[cg.input_positions[k]],
                           ((sel >> k) & 1) ? active : T::zero());
      }
      for (const auto& l : latches)
        sim.stage_source(
            l.q, (sim.word(l.d) & active) | (sim.word(l.q) & ~active));
      sim.settle_batch(toggles, touched, touched_flag, before);
      for (const NetId net : touched) {
        touched_flag[net] = 0;
        fn.add(0, before[net] ^ sim.word(net));
      }
      touched.clear();
    }
  }

  std::vector<CycleSimStats> results(lanes);
  for (int l = 0; l < lanes; ++l) {
    CycleSimStats& st = results[l];
    st.num_cycles = num_samples * dp.num_phases;
    st.toggles.resize(num_nets);
    for (NetId net = 0; net < num_nets; ++net)
      st.toggles[net] = toggles.count(net, l);
    st.functional_transitions = fn.count(0, l);
    for (auto v : st.toggles) st.total_transitions += v;
  }
  return results;
}

namespace detail {

/// Per-ISA entries, defined in seed_chunk_avx2.cpp / seed_chunk_avx512.cpp
/// when the toolchain supports the flag (HLP_HAVE_AVX2 / HLP_HAVE_AVX512).
std::vector<CycleSimStats> simulate_seed_chunk_avx2(
    const Netlist& n, const Datapath& dp, const LaneSamples& lane_samples,
    SettleMode settle);
std::vector<CycleSimStats> simulate_seed_chunk_avx512(
    const Netlist& n, const Datapath& dp, const LaneSamples& lane_samples,
    SettleMode settle);

}  // namespace detail

}  // namespace hlp::flow
