#include "flow/seed_chunk.hpp"

namespace hlp::flow {

std::vector<CycleSimStats> simulate_seed_chunk(
    const Netlist& n, const Datapath& dp, const LaneSamples& lane_samples,
    SimdMode simd, SettleMode settle) {
  switch (resolve_simd_mode(simd)) {
    case SimdMode::kU64:
      return simulate_seed_chunk_t<std::uint64_t>(n, dp, lane_samples, settle);
    case SimdMode::kX2:
      return simulate_seed_chunk_t<SimdX2>(n, dp, lane_samples, settle);
    case SimdMode::kX4:
      return simulate_seed_chunk_t<SimdX4>(n, dp, lane_samples, settle);
    case SimdMode::kX8:
      return simulate_seed_chunk_t<SimdX8>(n, dp, lane_samples, settle);
    case SimdMode::kAvx2:
#if defined(HLP_HAVE_AVX2)
      return detail::simulate_seed_chunk_avx2(n, dp, lane_samples, settle);
#else
      break;
#endif
    case SimdMode::kAvx512:
#if defined(HLP_HAVE_AVX512)
      return detail::simulate_seed_chunk_avx512(n, dp, lane_samples, settle);
#else
      break;
#endif
    case SimdMode::kAuto:
      break;  // resolve_simd_mode never returns kAuto
  }
  HLP_CHECK(false, "unreachable SIMD dispatch (seed chunk)");
}

}  // namespace hlp::flow
