#include "flow/experiment.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ios>
#include <sstream>
#include <thread>

#include "cdfg/benchmarks.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "sim/settle_mode.hpp"
#include "sim/simd_mode.hpp"
#include "store/artifact_store.hpp"

namespace hlp::flow {

int jobs_from_env(int fallback) { return env_int("HLP_JOBS", fallback); }

bool coalesce_from_env(bool fallback) {
  const char* env = std::getenv("HLP_COALESCE");
  if (!env || *env == '\0') return fallback;
  const std::string v = env;
  HLP_REQUIRE(v == "0" || v == "1",
              "HLP_COALESCE='" << v << "' must be 0 or 1");
  return v == "1";
}

std::string store_dir_from_env(std::string fallback) {
  const char* env = std::getenv("HLP_STORE");
  if (!env || *env == '\0') return fallback;
  return env;
}

namespace {

// Lanes of one coalesced chunk for this job's (resolved) word width:
// what run_batch will pick for a `group_size`-seed batch, so chunk
// boundaries line up with simulator words. A bad HLP_SIMD value or an
// unsupported explicit mode surfaces when the job's pipeline resolves the
// same mode — there it is captured as a per-job failure — so chunk sizing
// falls back quietly instead of throwing out of run().
std::size_t chunk_lanes_for(const Job& job, std::size_t group_size) {
  if (job.sim_engine != SimEngine::kBatched) return 64;
  try {
    return static_cast<std::size_t>(
        simd_lanes(effective_simd_mode(job.simd, group_size)));
  } catch (const std::exception&) {
    return 64;
  }
}

std::string context_key(const Job& job) {
  std::ostringstream key;
  // The SA mode is keyed RESOLVED: jobs deferring to HLP_SA_MODE and jobs
  // pinning the same mode explicitly share a context (and its SaCache),
  // while different modes — different SA values, different bindings —
  // never do.
  key << job.benchmark << '|' << job.scheduler << '|' << job.rc.adders << 'x'
      << job.rc.multipliers << '|' << job.width << '|' << job.reg_seed << '|'
      << job.sched_spec.min_latency << '|' << job.sched_spec.latency_slack
      << '|' << sa_mode_name(effective_sa_mode(job.sa));
  return key.str();
}

// Everything a job's pipeline invocation depends on EXCEPT the stimulus
// seed: jobs with equal group keys can share one run_batch call. Doubles
// are serialised in hexfloat so distinct knob values never alias.
std::string group_key(const Job& job) {
  std::ostringstream key;
  key << context_key(job) << '|' << job.binder.name << '|' << std::hexfloat
      << job.binder.alpha << '|' << job.binder.beta_add << '|'
      << job.binder.beta_mult << '|' << job.binder.refine << '|'
      << job.num_vectors << '|' << static_cast<int>(job.sim_engine) << '|'
      << static_cast<int>(job.simd) << '|' << static_cast<int>(job.settle);
  return key.str();
}

RunSpec spec_for(const Job& job) {
  RunSpec spec;
  spec.binder = job.binder;
  spec.num_vectors = job.num_vectors;
  spec.seed = job.seed;
  spec.sim_engine = job.sim_engine;
  spec.simd = job.simd;
  spec.settle = job.settle;
  spec.sa = job.sa;
  return spec;
}

}  // namespace

std::vector<WorkUnit> plan_units(const std::vector<Job>& jobs, bool coalesce) {
  std::vector<WorkUnit> units;
  if (!coalesce || jobs.size() <= 1) {
    units.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) units.push_back({{i}, 1});
    return units;
  }
  std::vector<std::vector<std::size_t>> groups;
  std::map<std::string, std::size_t> group_of_key;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto [it, inserted] =
        group_of_key.emplace(group_key(jobs[i]), groups.size());
    if (inserted)
      groups.push_back({i});
    else
      groups[it->second].push_back(i);
  }
  for (auto& group : groups) {
    const std::size_t word_lanes =
        chunk_lanes_for(jobs[group.front()], group.size());
    for (std::size_t c0 = 0; c0 < group.size(); c0 += word_lanes) {
      WorkUnit unit;
      unit.group_size = group.size();
      unit.members.assign(
          group.begin() + c0,
          group.begin() + std::min(group.size(), c0 + word_lanes));
      units.push_back(std::move(unit));
    }
  }
  return units;
}

std::string sa_cache_file_suffix(int width, SaMode mode) {
  std::string suffix = ".w" + std::to_string(width);
  // Estimate-mode tables keep the pre-mode-axis name so caches persisted
  // by older runs stay warm; the other modes are value-incompatible with
  // them and get their own files.
  if (mode != SaMode::kEstimated)
    suffix += std::string(".") + sa_mode_name(mode);
  return suffix;
}

ExperimentRunner::ExperimentRunner(int num_threads, GraphProvider provider,
                                   SaCache* shared_cache)
    : num_threads_(std::max(1, num_threads)),
      provider_(provider ? std::move(provider)
                         : [](const std::string& name) {
                             return make_paper_benchmark(name);
                           }),
      external_cache_(shared_cache),
      coalesce_(coalesce_from_env(true)) {
  if (const char* env = std::getenv("HLP_SA_CACHE"); env && *env != '\0')
    sa_cache_path_ = env;
  store_dir_ = store_dir_from_env("");
  store_from_env_ = !store_dir_.empty();
}

ExperimentRunner::~ExperimentRunner() = default;

void ExperimentRunner::set_sa_cache_path(std::string path) {
  std::lock_guard<std::mutex> lock(mu_);
  sa_cache_path_ = std::move(path);
}

void ExperimentRunner::set_result_callback(ResultCallback cb) {
  result_cb_ = std::move(cb);
}

store::ArtifactKey ExperimentRunner::artifact_key_for(const Job& job) {
  FlowContext& ctx = context_for(job);
  const RunSpec spec = spec_for(job);
  store::ArtifactKey key;
  key.scope = ctx.store_scope(context_key(job));
  key.binding = ctx.binding_hash(spec.binder, spec.map, spec.timing);
  // Mode tags exactly as Pipeline::make_cursor records them: SA resolved
  // (it changes values), settle/simd as requested (they cannot change the
  // cached artifacts).
  key.sa = sa_mode_name(ctx.sa_cache().mode());
  key.settle = settle_mode_name(spec.settle);
  key.simd = simd_mode_name(spec.simd);
  return key;
}

void ExperimentRunner::set_store_dir(std::string dir) {
  std::lock_guard<std::mutex> lock(mu_);
  store_dir_ = std::move(dir);
  store_from_env_ = false;  // explicit wins over the environment
  store_.reset();
}

store::ArtifactStore* ExperimentRunner::ensure_store_locked() {
  if (store_ || store_dir_.empty()) return store_.get();
  try {
    store_ = std::make_unique<store::ArtifactStore>(store_dir_);
  } catch (const std::exception& e) {
    if (store_from_env_)
      HLP_REQUIRE(false, "HLP_STORE='" << store_dir_
                                       << "': cannot open artifact store: "
                                       << e.what());
    HLP_REQUIRE(false, "cannot open artifact store at '" << store_dir_
                                                         << "': " << e.what());
  }
  return store_.get();
}

store::ArtifactStore* ExperimentRunner::artifact_store() {
  std::lock_guard<std::mutex> lock(mu_);
  return ensure_store_locked();
}

std::string ExperimentRunner::cache_file_for(int width, SaMode mode) const {
  return sa_cache_path_ + sa_cache_file_suffix(width, mode);
}

SaCache& ExperimentRunner::sa_cache(int width, SaMode mode) {
  if (external_cache_ && external_cache_->width() == width &&
      external_cache_->mode() == mode)
    return *external_cache_;
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = caches_[{width, mode}];
  if (!slot) {
    slot = std::make_unique<SaCache>(width, MapParams{}, mode);
    if (!sa_cache_path_.empty()) {
      // Warm start: preload the persisted table when a previous run left
      // one behind (a missing file just means a cold start).
      const std::string file = cache_file_for(width, mode);
      if (std::ifstream probe(file); probe.good()) slot->load_file(file);
    }
  }
  return *slot;
}

SaCache& ExperimentRunner::sa_cache(int width) {
  return sa_cache(width, effective_sa_mode(std::nullopt));
}

FlowContext& ExperimentRunner::context_for(const Job& job) {
  const SaMode mode = effective_sa_mode(job.sa);
  SaCache& cache = sa_cache(job.width, mode);
  const std::string key = context_key(job);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = contexts_[key];
  if (!slot) {
    ContextOptions opt;
    opt.scheduler = job.scheduler;
    opt.sched_spec = job.sched_spec;
    opt.width = job.width;
    opt.reg_seed = job.reg_seed;
    opt.sa_mode = mode;
    slot = std::make_unique<FlowContext>(provider_(job.benchmark), job.rc,
                                         std::move(opt), &cache);
    // Contexts outlive neither the runner nor its store handle, so the
    // raw pointer is safe; the context key doubles as the store scope
    // (plus the CDFG digest the context appends itself).
    if (store::ArtifactStore* store = ensure_store_locked())
      slot->set_artifact_store(store, key);
  }
  return *slot;
}

std::vector<JobResult> ExperimentRunner::run(const std::vector<Job>& jobs) {
  using Clock = std::chrono::steady_clock;
  // Open the store before dispatching anything: a bad HLP_STORE value is
  // one loud configuration error, not a per-job failure times the grid.
  artifact_store();
  std::vector<JobResult> results(jobs.size());
  const Pipeline pipeline = Pipeline::standard();

  auto execute = [&](std::size_t i) {
    JobResult& res = results[i];
    res.job = jobs[i];
    const auto t0 = Clock::now();
    try {
      res.outcome = pipeline.run(context_for(jobs[i]), spec_for(jobs[i]));
      res.ok = true;
    } catch (const std::exception& e) {
      res.error = e.what();
    }
    res.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    if (result_cb_) result_cb_(i, res);
  };

  // Coalesce jobs that differ only in stimulus seed (plan_units: one unit
  // per singleton job or per word-sized chunk of a seed group).
  const std::vector<WorkUnit> units = plan_units(jobs, coalesce_);

  auto execute_unit = [&](const WorkUnit& unit) {
    const std::vector<std::size_t>& members = unit.members;
    if (unit.group_size == 1) {
      execute(members.front());
      return;
    }
    const auto t0 = Clock::now();
    for (const std::size_t i : members) {
      results[i].job = jobs[i];
      results[i].group_size = unit.group_size;
    }
    try {
      std::vector<std::uint64_t> seeds;
      seeds.reserve(members.size());
      for (const std::size_t i : members) seeds.push_back(jobs[i].seed);
      const Job& lead = jobs[members.front()];
      auto outs = pipeline.run_batch(context_for(lead), spec_for(lead), seeds);
      for (std::size_t k = 0; k < members.size(); ++k) {
        results[members[k]].outcome = std::move(outs[k]);
        results[members[k]].ok = true;
      }
    } catch (const std::exception& e) {
      // The whole chunk shares one pipeline, so its failure is every
      // member's failure.
      for (const std::size_t i : members) results[i].error = e.what();
    }
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    for (const std::size_t i : members) results[i].seconds = secs;
    // Fire only after every member's slot is complete (seconds included),
    // in ascending grid order within the unit.
    if (result_cb_)
      for (const std::size_t i : members) result_cb_(i, results[i]);
  };

  const int workers =
      std::min<std::size_t>(num_threads_, units.size() ? units.size() : 1);
  if (workers <= 1) {
    for (const auto& unit : units) execute_unit(unit);
    persist_sa_caches();
    return results;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (int t = 0; t < workers; ++t) {
    pool.emplace_back([&] {
      for (std::size_t u = next.fetch_add(1); u < units.size();
           u = next.fetch_add(1))
        execute_unit(units[u]);
    });
  }
  for (auto& th : pool) th.join();
  persist_sa_caches();
  return results;
}

void ExperimentRunner::persist_sa_caches() {
  std::lock_guard<std::mutex> lock(mu_);
  if (sa_cache_path_.empty()) return;
  for (const auto& [key, cache] : caches_) {
    if (cache->size() == 0) continue;
    // Write-then-rename so concurrent runners (and crashed runs) never
    // observe a half-written table.
    const std::string file = cache_file_for(key.first, key.second);
    const std::string tmp = file + ".tmp";
    cache->save_file(tmp);
    HLP_REQUIRE(std::rename(tmp.c_str(), file.c_str()) == 0,
                "cannot move '" << tmp << "' to '" << file << "'");
  }
}

std::vector<Job> ExperimentRunner::grid(
    const std::vector<std::string>& benchmarks,
    const std::vector<BinderSpec>& binders,
    const std::vector<std::uint64_t>& seeds,
    const std::vector<ResourceConstraint>& rcs, const Job& base) {
  const std::vector<std::uint64_t> seed_list =
      seeds.empty() ? std::vector<std::uint64_t>{base.seed} : seeds;
  const std::vector<ResourceConstraint> rc_list =
      rcs.empty() ? std::vector<ResourceConstraint>{base.rc} : rcs;
  std::vector<Job> jobs;
  jobs.reserve(benchmarks.size() * binders.size() * seed_list.size() *
               rc_list.size());
  for (const auto& bench : benchmarks)
    for (const auto& rc : rc_list)
      for (const auto& binder : binders)
        for (const auto seed : seed_list) {
          Job job = base;
          job.benchmark = bench;
          job.binder = binder;
          job.seed = seed;
          job.rc = rc;
          jobs.push_back(std::move(job));
        }
  return jobs;
}

}  // namespace hlp::flow
