#include "common/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace hlp {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  HLP_CHECK(!headers_.empty(), "table needs at least one column");
}

AsciiTable& AsciiTable::row() {
  rows_.emplace_back();
  return *this;
}

AsciiTable& AsciiTable::add(std::string cell) {
  HLP_CHECK(!rows_.empty(), "call row() before add()");
  HLP_CHECK(rows_.back().size() < headers_.size(),
            "row has more cells than headers (" << headers_.size() << ")");
  rows_.back().push_back(std::move(cell));
  return *this;
}

AsciiTable& AsciiTable::add(const char* cell) { return add(std::string(cell)); }
AsciiTable& AsciiTable::add(int v) { return add(std::to_string(v)); }
AsciiTable& AsciiTable::add(std::size_t v) { return add(std::to_string(v)); }
AsciiTable& AsciiTable::add(double v, int decimals) {
  return add(fmt_fixed(v, decimals));
}

void AsciiTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      os << (c ? "  " : "") << v
         << std::string(width[c] - std::min(width[c], v.size()), ' ');
    }
    os << "\n";
  };

  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << "\n";
  for (const auto& r : rows_) emit_row(r);
}

std::string AsciiTable::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

}  // namespace hlp
