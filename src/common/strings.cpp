#include "common/strings.hpp"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <sstream>

#include "common/error.hpp"

namespace hlp {

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::vector<std::string> split_on(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string fmt_fixed(double v, int decimals) {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(decimals);
  oss << v;
  return oss.str();
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

int env_int(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (!env || *env == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(env, &end, 10);
  HLP_REQUIRE(end != env && *end == '\0',
              name << "='" << env << "' is not an integer");
  HLP_REQUIRE(errno != ERANGE && v >= 1 && v <= INT_MAX,
              name << "='" << env << "' out of range [1, " << INT_MAX << "]");
  return static_cast<int>(v);
}

}  // namespace hlp
