// ASCII table printer used by the benchmark harness to render the paper's
// tables (Table 1..4, Figure 3 series) in a readable aligned form.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hlp {

/// Column-aligned ASCII table. Rows are added as string cells; numeric
/// convenience overloads format with fixed precision.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  /// Start a new row; subsequent add() calls fill it left to right.
  AsciiTable& row();
  AsciiTable& add(std::string cell);
  AsciiTable& add(const char* cell);
  AsciiTable& add(int v);
  AsciiTable& add(std::size_t v);
  AsciiTable& add(double v, int decimals = 2);

  /// Render with a header rule and column padding.
  void print(std::ostream& os) const;
  std::string to_string() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hlp
