// Deterministic pseudo-random number generator.
//
// All stochastic choices in the library (random vectors, random port
// assignment, synthetic benchmark generation) go through hlp::Rng so that
// every run is reproducible from a single seed. The generator is PCG32
// (O'Neill 2014): small state, excellent statistical quality, and stable
// output across platforms (unlike std::mt19937 + std::uniform_int_distribution,
// whose distribution output is implementation-defined).
#pragma once

#include <cstdint>
#include <utility>

namespace hlp {

/// PCG32 deterministic random number generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) { reseed(seed); }

  /// Re-initialise the stream from a seed.
  void reseed(std::uint64_t seed) {
    state_ = 0u;
    next_u32();
    state_ += seed + 0x9e3779b97f4a7c15ull;
    next_u32();
  }

  /// Uniform 32-bit value.
  std::uint32_t next_u32() {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ull + 1442695040888963407ull;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint32_t below(std::uint32_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int range(int lo, int hi);

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u32()) * (1.0 / 4294967296.0);
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      const std::size_t j = below(static_cast<std::uint32_t>(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  std::uint64_t state_ = 0;
};

}  // namespace hlp
