// Small string utilities shared across the library (tokenising BLIF/CDFG
// text formats, formatting report values).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hlp {

/// Split on whitespace, dropping empty tokens.
std::vector<std::string> split_ws(std::string_view s);

/// Split on a single character delimiter; keeps empty fields.
std::vector<std::string> split_on(std::string_view s, char delim);

/// Trim ASCII whitespace from both ends.
std::string trim(std::string_view s);

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Format a double with fixed decimals (report printing).
std::string fmt_fixed(double v, int decimals);

/// Join tokens with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Strict positive-integer env knob, the shared parser behind
/// HLP_JOBS/HLP_VECTORS/HLP_WORKERS (docs/env-vars.md): unset or empty
/// returns `fallback`; anything else must parse exactly as an integer in
/// [1, INT_MAX] or hlp::Error names the variable and offending value.
int env_int(const char* name, int fallback);

}  // namespace hlp
