#include "common/rng.hpp"

#include "common/error.hpp"

namespace hlp {

std::uint32_t Rng::below(std::uint32_t bound) {
  HLP_CHECK(bound > 0, "Rng::below bound must be positive");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint32_t threshold = (-bound) % bound;
  for (;;) {
    const std::uint32_t r = next_u32();
    if (r >= threshold) return r % bound;
  }
}

int Rng::range(int lo, int hi) {
  HLP_CHECK(lo <= hi, "Rng::range requires lo <= hi, got " << lo << ".." << hi);
  const auto span = static_cast<std::uint32_t>(hi - lo) + 1u;
  return lo + static_cast<int>(below(span));
}

}  // namespace hlp
