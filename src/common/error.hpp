// Error handling for the HLPower library.
//
// All invariant violations and malformed inputs throw hlp::Error, which
// carries a formatted message. The HLP_CHECK / HLP_REQUIRE macros are the
// preferred way to state preconditions and invariants in library code.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hlp {

/// Exception type thrown on any library error (bad input, broken invariant,
/// I/O failure). Derives from std::runtime_error so callers can catch either.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_error(const char* file, int line, const char* cond,
                              const std::string& msg);
}  // namespace detail

}  // namespace hlp

/// Precondition / invariant check: throws hlp::Error when `cond` is false.
/// The streamed message is only evaluated on failure.
#define HLP_CHECK(cond, msg)                                               \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream hlp_oss_;                                         \
      hlp_oss_ << msg; /* NOLINT */                                        \
      ::hlp::detail::throw_error(__FILE__, __LINE__, #cond, hlp_oss_.str()); \
    }                                                                      \
  } while (0)

/// Check for user-supplied input; identical behaviour, distinct intent.
#define HLP_REQUIRE(cond, msg) HLP_CHECK(cond, msg)
