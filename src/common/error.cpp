#include "common/error.hpp"

namespace hlp::detail {

void throw_error(const char* file, int line, const char* cond,
                 const std::string& msg) {
  std::ostringstream oss;
  oss << file << ":" << line << ": check `" << cond << "` failed";
  if (!msg.empty()) oss << ": " << msg;
  throw Error(oss.str());
}

}  // namespace hlp::detail
