#include "sim/simd_mode.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace hlp {

namespace {

constexpr const char* kAccepted = "auto, u64, x2, x4, x8, avx2, avx512";

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool cpu_has_avx512f() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx512f") != 0;
#else
  return false;
#endif
}

}  // namespace

const std::vector<SimdMode>& all_simd_modes() {
  static const std::vector<SimdMode> kModes = {
      SimdMode::kAuto, SimdMode::kU64,  SimdMode::kX2,    SimdMode::kX4,
      SimdMode::kX8,   SimdMode::kAvx2, SimdMode::kAvx512};
  return kModes;
}

const char* simd_mode_name(SimdMode mode) {
  switch (mode) {
    case SimdMode::kAuto:
      return "auto";
    case SimdMode::kU64:
      return "u64";
    case SimdMode::kX2:
      return "x2";
    case SimdMode::kX4:
      return "x4";
    case SimdMode::kX8:
      return "x8";
    case SimdMode::kAvx2:
      return "avx2";
    case SimdMode::kAvx512:
      return "avx512";
  }
  HLP_CHECK(false, "invalid SimdMode value");
}

SimdMode parse_simd_mode(const std::string& value) {
  for (const SimdMode mode : all_simd_modes())
    if (value == simd_mode_name(mode)) return mode;
  HLP_REQUIRE(false, "HLP_SIMD='" << value << "' is not a SIMD mode (accepted: "
                                  << kAccepted << ")");
}

SimdMode simd_mode_from_env(SimdMode fallback) {
  const char* env = std::getenv("HLP_SIMD");
  if (!env || *env == '\0') return fallback;
  return parse_simd_mode(env);
}

bool simd_mode_compiled(SimdMode mode) {
  switch (mode) {
    case SimdMode::kAvx2:
#if defined(HLP_HAVE_AVX2)
      return true;
#else
      return false;
#endif
    case SimdMode::kAvx512:
#if defined(HLP_HAVE_AVX512)
      return true;
#else
      return false;
#endif
    default:
      return true;
  }
}

bool simd_mode_supported(SimdMode mode) {
  if (!simd_mode_compiled(mode)) return false;
  switch (mode) {
    case SimdMode::kAvx2:
      return cpu_has_avx2();
    case SimdMode::kAvx512:
      return cpu_has_avx512f();
    default:
      return true;
  }
}

SimdMode resolve_simd_mode(SimdMode requested) {
  if (requested == SimdMode::kAuto) {
    if (simd_mode_supported(SimdMode::kAvx512)) return SimdMode::kAvx512;
    if (simd_mode_supported(SimdMode::kAvx2)) return SimdMode::kAvx2;
    return SimdMode::kU64;
  }
  HLP_REQUIRE(simd_mode_supported(requested),
              "HLP_SIMD mode '" << simd_mode_name(requested) << "' is not "
                  << (simd_mode_compiled(requested)
                          ? "supported on this CPU"
                          : "compiled into this build"));
  return requested;
}

SimdMode effective_simd_mode(SimdMode requested) {
  return resolve_simd_mode(requested == SimdMode::kAuto
                               ? simd_mode_from_env(SimdMode::kAuto)
                               : requested);
}

SimdMode effective_simd_mode(SimdMode requested, std::size_t lanes_needed) {
  const SimdMode mode = requested == SimdMode::kAuto
                            ? simd_mode_from_env(SimdMode::kAuto)
                            : requested;
  if (mode != SimdMode::kAuto) return resolve_simd_mode(mode);
  if (lanes_needed <= 64) return SimdMode::kU64;
  if (lanes_needed <= 128) return SimdMode::kX2;
  if (lanes_needed <= 256)
    return simd_mode_supported(SimdMode::kAvx2) ? SimdMode::kAvx2
                                                : SimdMode::kX4;
  return simd_mode_supported(SimdMode::kAvx512) ? SimdMode::kAvx512
                                                : SimdMode::kX8;
}

int simd_lanes(SimdMode mode) {
  switch (mode) {
    case SimdMode::kU64:
      return 64;
    case SimdMode::kX2:
      return 128;
    case SimdMode::kX4:
    case SimdMode::kAvx2:
      return 256;
    case SimdMode::kX8:
    case SimdMode::kAvx512:
      return 512;
    case SimdMode::kAuto:
      break;
  }
  HLP_REQUIRE(false, "simd_lanes needs a concrete mode, not 'auto'");
}

}  // namespace hlp
