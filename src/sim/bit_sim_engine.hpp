// Word-generic bit-parallel simulation engine.
//
// Everything here is templated on a Word type (see simd_word.hpp): one
// word per net, one simulation lane per bit, so BitSimulatorT<uint64_t>
// settles 64 lanes per traversal and BitSimulatorT<AvxWord512> settles
// 512. The algorithms are pure lane-wise boolean algebra plus popcounts,
// so every instantiation computes the identical per-lane function — the
// width only changes how many lanes one traversal covers.
//
// The public entry points (bit_sim.hpp) wrap these templates behind the
// HLP_SIMD runtime dispatch; the per-ISA translation units
// (bit_sim_avx2.cpp, bit_sim_avx512.cpp) instantiate them for the
// intrinsic word types. Gate classification is word-independent and lives
// in one non-template GatePlan built once per netlist (bit_sim.cpp).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "netlist/netlist.hpp"
#include "sim/schedule_sim.hpp"
#include "sim/settle_mode.hpp"
#include "sim/simd_word.hpp"

namespace hlp {

namespace detail {

/// Specialised evaluator selected per gate at construction.
enum GateOp : std::uint8_t {
  kOpShannon,     // generic fallback, k <= 4 (inputs in the packed record)
  kOpShannonBig,  // generic fallback, k > 4 (inputs in the CSR)
  kOpConst,       // constant 0 / ~0 (inv flag)
  kOpBuf,         // x or ~x
  kOpParity,      // x0 ^ x1 ^ ... (^ inv)
  kOpAndPol,      // AND_j (x_j ^ pol_j) (^ inv) — covers AND/OR/NAND/NOR
  kOpMux,         // s ? a : b (^ inv)
  kOpMaj,         // majority(a, b, c) (^ inv)
};

/// Everything one gate evaluation reads, in one 32-byte record (the settle
/// loop is memory-bound; scattering this over parallel arrays costs
/// several cache lines per eval). Inputs are support-reduced. Records are
/// position-independent — `idx` carries the plan gate index, so reordered
/// copies (the levelized sweep's level-major layout) still reach the
/// k > 4 CSR side tables.
struct PackedGate {
  std::uint8_t op = kOpShannon;
  std::uint8_t inv = 0;  // final inversion flag
  std::uint8_t pol = 0;  // kOpAndPol input polarity bits
  std::uint8_t k = 0;    // fanin count after support reduction
  std::uint32_t tt = 0;  // reduced truth table (k <= 4 fits 16 rows)
  std::uint32_t idx = 0; // gate index in the plan (CSR/tt_bits lookups)
  NetId out = 0;
  NetId in[4] = {0, 0, 0, 0};  // operands (kOpMux: select, then-, else-)
};

/// The word-independent half of the engine: classified gates, CSR
/// input/fanout lists and the topological order. Built once per netlist
/// and shared by every word-width instantiation.
struct GatePlan {
  std::vector<PackedGate> gates;
  // Full truth tables + CSR input lists, used only by the k > 4 fallback.
  std::vector<std::uint64_t> tt_bits;
  std::vector<int> in_start;   // gate -> offset into in_nets
  std::vector<NetId> in_nets;
  std::vector<int> fan_start;  // net -> offset into fan_gates
  std::vector<int> fan_gates;
  std::vector<int> topo;
  int num_nets = 0;
};

/// Classify every gate and build the CSR structures (validates the
/// netlist). Defined in bit_sim.cpp — word-independent, compiled once at
/// baseline ISA.
GatePlan build_gate_plan(const Netlist& n);

/// The plan's gates ranked by logic level over their support-reduced
/// inputs and laid out level-major: level l occupies the contiguous index
/// range [level_start[l], level_start[l + 1]). level_start has
/// max_level + 2 entries (sources sit at level 0, so level_start[0] ==
/// level_start[1] == 0 and level_start[max_level + 1] == gates.size()).
/// Word-independent like GatePlan; built lazily by the first levelized
/// settle and shared conceptually with the timing sweep (levelize.hpp).
struct Levelization {
  std::vector<PackedGate> gates;
  std::vector<int> level_start;
  int max_level = 0;
};

/// Rank and reorder a plan's gates level-major. Defined in levelize.cpp.
Levelization build_levelization(const GatePlan& plan);

/// Scalar zero-delay evaluator for the frames path's latch-state
/// recurrence (phase 1). Word-independent; defined in bit_sim.cpp.
struct ConeEvaluator {
  std::vector<std::uint64_t> tt;
  std::vector<int> k;
  std::vector<NetId> out;
  std::vector<int> in_start;
  std::vector<NetId> in_nets;

  ConeEvaluator(const Netlist& n, const std::vector<int>& gate_ids);
  void eval(std::vector<char>& value) const;
};

void check_frame_arity(const Netlist& n,
                       const std::vector<std::vector<char>>& frames);

}  // namespace detail

/// Bit-sliced per-lane counters over an arbitrary word width: plane p
/// carries bit p of WordTraits<W>::kLanes independent counts, so
/// `counts[item][lane] += (mask >> lane) & 1` for every lane is a short
/// ripple-carry of word ops (amortised ~2 per add) instead of a
/// per-set-bit scalar scatter. This is what keeps the multi-run batch
/// path's toggle accounting word-parallel at any width: the increment cost
/// never scales with the number of lanes that toggled. 32 planes bound
/// each count at 2^32-1, far beyond any feasible run length.
template <typename W>
class LaneCountersT {
  using T = WordTraits<W>;

 public:
  static constexpr int kPlanes = 32;

  explicit LaneCountersT(int num_items)
      : bits_(static_cast<std::size_t>(num_items) * kPlanes, T::zero()) {}

  /// counts[item][lane] += (mask >> lane) & 1, all lanes at once.
  void add(int item, W mask) {
    W* p = &bits_[static_cast<std::size_t>(item) * kPlanes];
    for (int i = 0; i < kPlanes && T::any(mask); ++i) {
      const W old = p[i];
      p[i] = p[i] ^ mask;
      mask = mask & old;  // carry into the next plane
    }
  }

  std::uint64_t count(int item, int lane) const {
    const W* p = &bits_[static_cast<std::size_t>(item) * kPlanes];
    std::uint64_t total = 0;
    for (int i = 0; i < kPlanes; ++i)
      total |= static_cast<std::uint64_t>(T::lane(p[i], lane)) << i;
    return total;
  }

 private:
  std::vector<W> bits_;
};

/// Word-parallel netlist evaluator: WordTraits<W>::kLanes lanes per word,
/// one word per net. Lane semantics (cycles vs runs vs seeds) are chosen
/// by the caller; the engine only knows about source words, zero-delay
/// passes and unit-delay event settling with per-net popcount toggle
/// counters. All instantiations are bit-identical per lane to the scalar
/// reference simulator.
template <typename W>
class BitSimulatorT {
  using T = WordTraits<W>;

 public:
  /// Simulation lanes per word — the batch granularity of this engine.
  static constexpr int kLanes = T::kLanes;

  /// `settle` picks the unit-delay strategy (settle_mode.hpp): kEvent and
  /// kLevel are the two concrete engines, kAuto times the first settles
  /// under each and locks in the winner — all three are bit-identical, so
  /// the knob only moves wall-clock.
  explicit BitSimulatorT(const Netlist& n,
                         SettleMode settle = SettleMode::kEvent)
      : netlist_(&n), plan_(detail::build_gate_plan(n)), mode_(settle) {
    value_.assign(plan_.num_nets, T::zero());
    staged_.assign(plan_.num_nets, T::zero());
    staged_dirty_.assign(plan_.num_nets, 0);
    gate_queued_.assign(plan_.gates.size(), 0);
    staged_nets_.reserve(plan_.num_nets);
  }

  /// The strategy currently in effect (kAuto until the probe locks in).
  SettleMode settle_mode() const { return mode_; }

  const Netlist& netlist() const { return *netlist_; }
  int num_nets() const { return static_cast<int>(value_.size()); }

  /// Current value word of a net (bit l = lane l).
  W word(NetId n) const { return value_[n]; }
  /// Overwrite the value word of every net.
  void load_state(const std::vector<W>& words) {
    HLP_CHECK(words.size() == value_.size(), "state size mismatch");
    value_ = words;
  }
  const std::vector<W>& state() const { return value_; }

  /// Stage a source word (primary input or latch Q) for the next settle.
  /// Staged nets go on an explicit list so settles pay per staged source,
  /// not per net in the design.
  void stage_source(NetId n, W word) {
    HLP_CHECK(netlist_->is_comb_source(n),
              "net '" << netlist_->net_name(n)
                      << "' is not a simulation source");
    staged_[n] = word;
    if (!staged_dirty_[n]) {
      staged_dirty_[n] = 1;
      staged_nets_.push_back(n);
    }
  }

  /// Single topological pass: every net takes its zero-delay value under
  /// the staged sources. No toggle counting; staged marks are consumed.
  void settle_zero_delay() {
    for (const NetId net : staged_nets_) {
      staged_dirty_[net] = 0;
      value_[net] = staged_[net];
    }
    staged_nets_.clear();
    for (int gi : plan_.topo) value_[plan_.gates[gi].out] = eval_gate(gi);
  }

  /// Unit-delay event settle from the staged sources, lockstep across all
  /// lanes. Per-net transition counts (summed over lanes) accumulate into
  /// `toggles_total` when non-null. When `per_lane` is non-null it
  /// receives one counter vector per lane (kLanes of them), exactly
  /// matching what kLanes independent scalar simulations would count.
  /// Returns unit steps to quiescence (the max over lanes).
  int settle(std::vector<std::uint64_t>* toggles_total,
             std::vector<std::vector<std::uint64_t>>* per_lane = nullptr) {
    if (per_lane) {
      return settle_dispatch([&](NetId net, const W& diff) {
        if (toggles_total)
          (*toggles_total)[net] +=
              static_cast<std::uint64_t>(T::popcount(diff));
        T::for_each_lane(diff, [&](int lane) { ++(*per_lane)[lane][net]; });
      });
    }
    if (toggles_total) {
      return settle_dispatch([&](NetId net, const W& diff) {
        (*toggles_total)[net] += static_cast<std::uint64_t>(T::popcount(diff));
      });
    }
    return settle_dispatch([](NetId, const W&) {});
  }

  /// Unit-delay settle specialised for the multi-run batch path: per-net
  /// per-lane transition counts accumulate into `toggles` (bit-sliced, no
  /// per-lane scatter), and every net whose value changed is appended once
  /// to `touched` with its pre-settle word stored in `before` — the caller
  /// derives the functional/glitch split from before vs settled without
  /// scanning or snapshotting the whole net array per cycle. `touched_flag`
  /// is the dedupe scratch (num_nets zeros on entry; the caller resets the
  /// touched entries afterwards).
  int settle_batch(LaneCountersT<W>& toggles, std::vector<NetId>& touched,
                   std::vector<char>& touched_flag, std::vector<W>& before) {
    return settle_dispatch([&](NetId net, const W& diff) {
      toggles.add(net, diff);
      if (!touched_flag[net]) {
        touched_flag[net] = 1;
        // value_[net] was already updated; undo the diff for the
        // pre-settle word (the first event sees the pre-edge settled
        // value).
        before[net] = value_[net] ^ diff;
        touched.push_back(net);
      }
    });
  }

  /// Evaluate one gate's function over the current value words. Gates are
  /// classified at construction (see GatePlan): the overwhelmingly common
  /// datapath functions (mux, parity, majority, and/or with polarities,
  /// buffers) evaluate in 2-5 word ops; everything else falls back to a
  /// Shannon cofactor reduction of the (support-reduced) truth table. All
  /// paths compute the identical boolean function, so values — and
  /// therefore event schedules and glitch counts — are bit-identical to
  /// the reference at every word width.
  W eval_gate(int gi) const { return eval_packed(plan_.gates[gi]); }

  /// Same, from a packed record directly — the levelized sweep walks its
  /// own level-major copy of the records, so evaluation must not assume
  /// the record sits at its plan position (g.idx carries that).
  W eval_packed(const detail::PackedGate& g) const {
    // Datapaths are register files plus steering logic, so muxes dominate
    // every mapped netlist we simulate (~80-90% of gates): give them a
    // predicted direct branch instead of the switch's indirect jump.
    if (g.op == detail::kOpMux) {
      const W s = value_[g.in[0]];
      const W w = (value_[g.in[1]] & s) | (value_[g.in[2]] & ~s);
      return g.inv ? ~w : w;
    }
    const W inv = T::fill(g.inv != 0);
    switch (g.op) {
      case detail::kOpConst:
        return inv;
      case detail::kOpBuf:
        return value_[g.in[0]] ^ inv;
      case detail::kOpMaj: {
        const W a = value_[g.in[0]], b = value_[g.in[1]], c = value_[g.in[2]];
        return ((a & b) | ((a | b) & c)) ^ inv;
      }
      case detail::kOpParity: {
        W w = inv;
        for (int j = 0; j < g.k; ++j) w = w ^ value_[g.in[j]];
        return w;
      }
      case detail::kOpAndPol: {
        W w = T::ones();
        for (int j = 0; j < g.k; ++j)
          w = w & (value_[g.in[j]] ^ T::fill(((g.pol >> j) & 1) != 0));
        return w ^ inv;
      }
      case detail::kOpShannon: {
        // Shannon cofactor reduction of the reduced truth table, k <= 4:
        // fold one input per level over the 2^k constant rows.
        const int k = g.k;
        W cof[16];
        const std::uint32_t rows = 1u << k;
        for (std::uint32_t m = 0; m < rows; ++m)
          cof[m] = T::fill(((g.tt >> m) & 1u) != 0);
        for (int j = k - 1; j >= 0; --j) {
          const W x = value_[g.in[j]];
          const std::uint32_t half = 1u << j;
          for (std::uint32_t i = 0; i < half; ++i)
            cof[i] = (cof[i] & ~x) | (cof[i + half] & x);
        }
        return cof[0];
      }
      default:
        break;
    }
    // k > 4 fallback: same fold over the CSR input list.
    const int k = g.k;
    W cof[64];
    const std::uint64_t bits = plan_.tt_bits[g.idx];
    const std::uint32_t rows = 1u << k;
    for (std::uint32_t m = 0; m < rows; ++m)
      cof[m] = T::fill(((bits >> m) & 1u) != 0);
    const int base = plan_.in_start[g.idx];
    for (int j = k - 1; j >= 0; --j) {
      const W x = value_[plan_.in_nets[base + j]];
      const std::uint32_t half = 1u << j;
      for (std::uint32_t i = 0; i < half; ++i)
        cof[i] = (cof[i] & ~x) | (cof[i + half] & x);
    }
    return cof[0];
  }

 private:
  /// Route one unit-delay settle through the configured strategy. Both
  /// engines produce the identical change-event sequence per net (see the
  /// equivalence argument at settle_levelized), so kAuto may time the
  /// first kProbeSettles calls alternately under each and lock in the
  /// winner without ever perturbing a result.
  template <typename OnChange>
  int settle_dispatch(OnChange&& on_change) {
    if (mode_ == SettleMode::kEvent) return settle_events(on_change);
    if (mode_ == SettleMode::kLevel) return settle_levelized(on_change);
    const int which = probe_calls_ & 1;
    ++probe_calls_;
    const auto t0 = std::chrono::steady_clock::now();
    const int steps =
        which ? settle_levelized(on_change) : settle_events(on_change);
    const auto t1 = std::chrono::steady_clock::now();
    probe_ns_[which] += std::chrono::duration<double, std::nano>(t1 - t0).count();
    if (probe_calls_ >= kProbeSettles)
      mode_ = probe_ns_[1] < probe_ns_[0] ? SettleMode::kLevel
                                          : SettleMode::kEvent;
    return steps;
  }

  template <typename OnChange>
  int settle_events(OnChange&& on_change) {
    changed_.clear();
    for (const NetId net : staged_nets_) {
      staged_dirty_[net] = 0;
      const W diff = value_[net] ^ staged_[net];
      if (T::any(diff)) {
        value_[net] = staged_[net];
        on_change(net, diff);
        changed_.push_back(net);
      }
    }
    staged_nets_.clear();

    int steps = 0;
    const int max_steps = 4 * static_cast<int>(plan_.gates.size()) + 8;
    while (!changed_.empty()) {
      ++steps;
      HLP_CHECK(steps <= max_steps,
                "bit-parallel simulation did not quiesce (oscillation?)");
      dirty_gates_.clear();
      for (NetId net : changed_)
        for (int fi = plan_.fan_start[net]; fi < plan_.fan_start[net + 1];
             ++fi) {
          const int gi = plan_.fan_gates[fi];
          if (!gate_queued_[gi]) {
            gate_queued_[gi] = 1;
            dirty_gates_.push_back(gi);
          }
        }
      // Evaluate with time-t words; outputs change at t+1 (two-pass, so
      // the lockstep lanes see exactly the scalar event schedule).
      new_words_.resize(dirty_gates_.size());
      for (std::size_t i = 0; i < dirty_gates_.size(); ++i)
        new_words_[i] = eval_gate(dirty_gates_[i]);
      next_changed_.clear();
      for (std::size_t i = 0; i < dirty_gates_.size(); ++i) {
        const int gi = dirty_gates_[i];
        gate_queued_[gi] = 0;
        const NetId out = plan_.gates[gi].out;
        const W diff = value_[out] ^ new_words_[i];
        if (T::any(diff)) {
          value_[out] = new_words_[i];
          on_change(out, diff);
          next_changed_.push_back(out);
        }
      }
      std::swap(changed_, next_changed_);
    }
    return steps;
  }

  /// Levelized wavefront settle: no dirty tracking, no fanout queue —
  /// unit-delay step t evaluates the contiguous level-major suffix of
  /// gates at level >= t (lower levels are provably quiescent by then)
  /// and commits in place.
  ///
  /// Why this is bit-identical to settle_events: the event engine
  /// computes the Jacobi unit-delay trajectory — every gate's time-t
  /// output is its function over time-(t-1) operand words — skipping only
  /// gates whose operands did not change (their re-evaluation would be a
  /// no-op). This sweep computes the same trajectory a different way.
  /// Walking the suffix in DESCENDING level order with in-place commit
  /// means a gate's operands (all at strictly lower levels, per the
  /// support-reduced ranking) are still uncommitted time-(t-1) words when
  /// it reads them; same-level gates never feed each other. Skipping
  /// levels < t is sound by induction: sources commit at step 0, and a
  /// level-l gate's operands all hold their final values after step l-1,
  /// so its output is final after step l. Change events therefore fire
  /// for exactly the same (net, diff, step) triples in both engines —
  /// toggle counts, glitch splits and step counts all match. Like the
  /// event engine, this assumes settles start from a gate-consistent
  /// state (every caller quiesces or zero-delay-settles first; the frames
  /// path's shifted-lane init is lane-wise a settled state, so it
  /// qualifies too).
  template <typename OnChange>
  int settle_levelized(OnChange&& on_change) {
    if (!lev_built_) {
      lev_ = detail::build_levelization(plan_);
      lev_built_ = true;
    }
    bool any = false;
    for (const NetId net : staged_nets_) {
      staged_dirty_[net] = 0;
      const W diff = value_[net] ^ staged_[net];
      if (T::any(diff)) {
        value_[net] = staged_[net];
        on_change(net, diff);
        any = true;
      }
    }
    staged_nets_.clear();
    if (!any) return 0;
    const int num_gates = static_cast<int>(lev_.gates.size());
    int steps = 0;
    for (int t = 1;; ++t) {
      ++steps;
      bool changed = false;
      const int lo = lev_.level_start[std::min(t, lev_.max_level + 1)];
      for (int i = num_gates - 1; i >= lo; --i) {
        const detail::PackedGate& g = lev_.gates[i];
        const W nw = eval_packed(g);
        const W diff = value_[g.out] ^ nw;
        if (T::any(diff)) {
          value_[g.out] = nw;
          on_change(g.out, diff);
          changed = true;
        }
      }
      // The final step evaluates without finding a change (or, past
      // max_level, evaluates nothing) — the event engine counts that
      // quiescence-detection step too, so the returned counts agree.
      if (!changed) return steps;
    }
  }

  const Netlist* netlist_;
  detail::GatePlan plan_;

  std::vector<W> value_;
  std::vector<W> staged_;
  std::vector<char> staged_dirty_;
  std::vector<NetId> staged_nets_;  // nets with staged_dirty_ set
  // Scratch for the event loop (persistent to avoid per-settle allocation).
  std::vector<char> gate_queued_;
  std::vector<int> dirty_gates_;
  std::vector<W> new_words_;
  std::vector<NetId> changed_, next_changed_;

  // Settle strategy. The levelization is built on first levelized settle
  // (kEvent instances never pay for it); the kAuto probe times the first
  // kProbeSettles calls alternately under each engine, then locks mode_.
  SettleMode mode_;
  detail::Levelization lev_;
  bool lev_built_ = false;
  static constexpr int kProbeSettles = 8;
  int probe_calls_ = 0;
  double probe_ns_[2] = {0.0, 0.0};  // [0] event, [1] level
};

/// Word-generic simulate_frames_batched: ONE stimulus sequence, kLanes
/// consecutive cycles per word. A cheap scalar phase advances only the
/// latch-state recurrence (zero-delay evaluation of the latch-D fanin
/// cone); the word-parallel phase replays each kLanes-cycle block — a
/// single topological pass yields all settled states, then one
/// event-driven unit-delay settle reproduces every transient, glitches
/// included. Bit-identical to the scalar path at every width.
template <typename W>
CycleSimStats simulate_frames_batched_t(
    const Netlist& n, const std::vector<std::vector<char>>& frames,
    SettleMode settle = SettleMode::kEvent) {
  using T = WordTraits<W>;
  constexpr int kLanes = T::kLanes;
  detail::check_frame_arity(n, frames);
  const int num_nets = n.num_nets();
  CycleSimStats stats;
  stats.num_cycles = frames.size();
  stats.toggles.assign(num_nets, 0);
  const std::size_t num_frames = frames.size();
  if (num_frames == 0) return stats;

  BitSimulatorT<W> sim(n, settle);
  // Initial settled state s0 (all sources 0): one zero-delay word pass
  // with every lane identical, then read lane 0.
  sim.settle_zero_delay();
  std::vector<char> sval(num_nets);
  for (NetId net = 0; net < num_nets; ++net)
    sval[net] = static_cast<char>(T::lane(sim.word(net), 0));
  const std::vector<char> s0 = sval;

  const auto& pis = n.inputs();
  const auto& latches = n.latches();
  std::vector<NetId> sources(pis);
  for (const auto& l : latches) sources.push_back(l.q);

  // Phase 1 — scalar latch-state recurrence. Only the fanin cone of the
  // latch D pins must be evaluated per cycle; everything else is replayed
  // word-parallel in phase 2. Source values per cycle are packed into one
  // bit lane per cycle (kLanes cycles per word).
  const std::size_t blocks = (num_frames + kLanes - 1) / kLanes;
  std::vector<std::vector<W>> packed(sources.size(),
                                     std::vector<W>(blocks, T::zero()));
  std::vector<char> need(num_nets, 0);
  for (const auto& l : latches) need[l.d] = 1;
  std::vector<int> cone;
  const std::vector<int> topo = n.topo_gates();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const Gate& g = n.gates()[*it];
    if (!need[g.out]) continue;
    cone.push_back(*it);
    for (NetId in : g.ins) need[in] = 1;
  }
  std::reverse(cone.begin(), cone.end());
  const detail::ConeEvaluator cone_eval(n, cone);

  std::vector<char> qv(latches.size());
  for (std::size_t t = 0; t < num_frames; ++t) {
    // Clock edge: every Q samples its D from the previous settled state,
    // simultaneously (matching UnitDelaySimulator::clock_edge).
    for (std::size_t i = 0; i < latches.size(); ++i)
      qv[i] = sval[latches[i].d];
    for (std::size_t j = 0; j < pis.size(); ++j)
      sval[pis[j]] = frames[t][j] ? 1 : 0;
    for (std::size_t i = 0; i < latches.size(); ++i)
      sval[latches[i].q] = qv[i];
    cone_eval.eval(sval);
    for (std::size_t s = 0; s < sources.size(); ++s)
      T::or_lane(packed[s][t / kLanes],
                 static_cast<int>(t % kLanes),
                 static_cast<std::uint64_t>(sval[sources[s]] & 1));
  }

  // Phase 2 — word-parallel replay, kLanes consecutive cycles per block.
  // Lane l of block b is cycle b*kLanes+l: a zero-delay pass over the
  // source words yields every settled state at once; the initial state of
  // each lane is the previous lane's settled state (shifted in, with a
  // carry bit across blocks); a single event-driven unit-delay settle then
  // reproduces all transients, glitches included.
  std::vector<W> settled(num_nets), init(num_nets), src_words(sources.size());
  std::vector<char> carry(num_nets, 0);
  std::uint64_t functional = 0;
  for (std::size_t b = 0; b < blocks; ++b) {
    const int L = static_cast<int>(
        std::min<std::size_t>(kLanes, num_frames - b * kLanes));
    const W lowmask = T::mask_lo(L);
    for (std::size_t s = 0; s < sources.size(); ++s) {
      W w = packed[s][b];
      if (L < kLanes) {
        // Freeze inactive lanes by replicating the last active cycle's
        // value: no source change, no activity, no miscounts.
        if (T::lane(w, L - 1))
          w = w | ~lowmask;
        else
          w = w & lowmask;
      }
      src_words[s] = w;
      sim.stage_source(sources[s], w);
    }
    sim.settle_zero_delay();
    std::copy(sim.state().begin(), sim.state().end(), settled.begin());
    for (NetId net = 0; net < num_nets; ++net) {
      init[net] = T::shl1(settled[net], b == 0 ? s0[net] : carry[net]);
      functional +=
          static_cast<std::uint64_t>(T::popcount(init[net] ^ settled[net]));
      carry[net] = static_cast<char>(T::lane(settled[net], L - 1));
    }
    sim.load_state(init);
    for (std::size_t s = 0; s < sources.size(); ++s)
      sim.stage_source(sources[s], src_words[s]);
    sim.settle(&stats.toggles);
  }

  stats.functional_transitions = functional;
  for (auto v : stats.toggles) stats.total_transitions += v;
  return stats;
}

/// Word-generic simulate_batch: MANY independent stimulus sequences (e.g.
/// many seeds of one binding) as lanes, kLanes runs per word. Latch state
/// lives per lane inside the word, so the whole cycle loop — clock edge,
/// settle, counting — is word-parallel with no scalar phase at all. Runs
/// may have different lengths; finished lanes are frozen by re-staging
/// their previous source values. Bit-identical to per-run scalar
/// simulation at every width.
template <typename W>
std::vector<CycleSimStats> simulate_batch_t(
    const Netlist& n, const std::vector<std::vector<std::vector<char>>>& runs,
    SettleMode settle = SettleMode::kEvent) {
  using T = WordTraits<W>;
  constexpr int kLanes = T::kLanes;
  const int num_nets = n.num_nets();
  for (const auto& run : runs) detail::check_frame_arity(n, run);
  std::vector<CycleSimStats> results(runs.size());
  if (runs.empty()) return results;

  BitSimulatorT<W> sim(n, settle);
  const auto& pis = n.inputs();
  const auto& latches = n.latches();

  // Per-group scratch: bit-sliced counters keep every piece of per-lane
  // accounting word-parallel — no loop in this function scales with the
  // number of lanes that toggled.
  std::vector<W> pi_bits(pis.size());
  std::vector<NetId> touched;
  std::vector<char> touched_flag(num_nets, 0);
  std::vector<W> before(num_nets);
  touched.reserve(num_nets);

  for (std::size_t g0 = 0; g0 < runs.size(); g0 += kLanes) {
    const int lanes =
        static_cast<int>(std::min<std::size_t>(kLanes, runs.size() - g0));
    // Reset to the all-zero-source settled state in every lane.
    for (NetId pi : pis) sim.stage_source(pi, T::zero());
    for (const auto& l : latches) sim.stage_source(l.q, T::zero());
    sim.settle_zero_delay();

    std::size_t t_max = 0;
    for (int l = 0; l < lanes; ++l)
      t_max = std::max(t_max, runs[g0 + l].size());
    LaneCountersT<W> toggles(num_nets);
    LaneCountersT<W> fn(1);

    for (std::size_t t = 0; t < t_max; ++t) {
      W active = T::zero();
      for (int l = 0; l < lanes; ++l)
        if (t < runs[g0 + l].size())
          T::or_lane(active, l, 1);
      // Stage everything from the pre-edge state before applying anything:
      // primary inputs for active lanes (finished lanes are frozen by
      // re-staging their current value), then the clock edge Q <- D.
      // Lane-major gather: each lane's frame row is contiguous.
      std::fill(pi_bits.begin(), pi_bits.end(), T::zero());
      for (int l = 0; l < lanes; ++l) {
        if (t >= runs[g0 + l].size()) continue;
        const char* row = runs[g0 + l][t].data();
        // Branchless: frame bits are random, so a conditional OR would
        // mispredict half the time.
        for (std::size_t j = 0; j < pis.size(); ++j)
          T::or_lane(pi_bits[j], l,
                     static_cast<std::uint64_t>(row[j] & 1));
      }
      for (std::size_t j = 0; j < pis.size(); ++j)
        sim.stage_source(pis[j],
                         (sim.word(pis[j]) & ~active) | (pi_bits[j] & active));
      for (const auto& l : latches)
        sim.stage_source(
            l.q, (sim.word(l.d) & active) | (sim.word(l.q) & ~active));
      sim.settle_batch(toggles, touched, touched_flag, before);
      // Functional = settled value changed across the cycle; only nets
      // that saw an event this cycle can have changed.
      for (const NetId net : touched) {
        touched_flag[net] = 0;
        fn.add(0, before[net] ^ sim.word(net));
      }
      touched.clear();
    }

    for (int l = 0; l < lanes; ++l) {
      CycleSimStats& st = results[g0 + l];
      st.num_cycles = runs[g0 + l].size();
      st.toggles.resize(num_nets);
      for (NetId net = 0; net < num_nets; ++net)
        st.toggles[net] = toggles.count(net, l);
      st.functional_transitions = fn.count(0, l);
      for (auto v : st.toggles) st.total_transitions += v;
    }
  }
  return results;
}

}  // namespace hlp
