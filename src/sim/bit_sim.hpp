// Bit-parallel batched simulation engine.
//
// The scalar UnitDelaySimulator carries one `char` per net and walks the
// netlist once per stimulus frame, so a 1000-vector Figure 3 run traverses
// the fabric a thousand times. This engine packs 64 simulation lanes into
// one `uint64_t` word per net and settles the combinational fabric on whole
// words: every gate evaluation is a short Shannon-cofactor reduction of its
// truth table over the input words, covering all 64 lanes at once, and
// toggle counting is a popcount of the change word.
//
// Two batching axes are provided, both bit-identical to the scalar path
// (same per-net toggle counts, same functional/glitch split — asserted by
// tests/bit_sim_test.cpp):
//
//  - simulate_frames_batched: ONE stimulus sequence, 64 consecutive cycles
//    per word. Cycles are made independent by splitting the run into a
//    cheap scalar phase that advances only the latch-state recurrence
//    (zero-delay evaluation of the latch-D fanin cone) and a word-parallel
//    phase that replays each 64-cycle block: a single topological pass
//    yields all settled states, then one event-driven unit-delay settle on
//    words reproduces every transient, glitches included.
//
//  - simulate_batch: MANY independent stimulus sequences (e.g. many seeds
//    of one binding) as lanes. Latch state lives per lane inside the word,
//    so the whole cycle loop — clock edge, settle, counting — is word
//    parallel with no scalar phase at all. Runs may have different lengths;
//    finished lanes are frozen by re-staging their previous source values.
//
// A shared-stimulus overload evaluates many bindings' netlists against one
// frame sequence (the paper's controlled comparison) through the batched
// single-run path.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/schedule_sim.hpp"

namespace hlp {

/// Which engine the flow pipeline / experiment runner evaluates stimulus
/// with. The scalar path is kept as the reference oracle.
enum class SimEngine { kScalar, kBatched };

/// Bit-sliced per-lane counters: plane p carries bit p of 64 independent
/// counts, so `counts[item][lane] += (mask >> lane) & 1` for all 64 lanes
/// is a short ripple-carry of word ops (amortised ~2 per add) instead of a
/// per-set-bit scalar scatter. This is what keeps simulate_batch's
/// per-run toggle accounting word-parallel: the increment cost no longer
/// scales with the number of lanes that toggled. 32 planes bound each
/// count at 2^32-1, far beyond any feasible run length.
class LaneCounters {
 public:
  static constexpr int kPlanes = 32;

  explicit LaneCounters(int num_items)
      : bits_(static_cast<std::size_t>(num_items) * kPlanes, 0) {}

  /// counts[item][lane] += (mask >> lane) & 1, all lanes at once.
  void add(int item, std::uint64_t mask) {
    std::uint64_t* p = &bits_[static_cast<std::size_t>(item) * kPlanes];
    for (int i = 0; i < kPlanes && mask; ++i) {
      const std::uint64_t old = p[i];
      p[i] ^= mask;
      mask &= old;  // carry into the next plane
    }
  }

  std::uint64_t count(int item, int lane) const {
    const std::uint64_t* p = &bits_[static_cast<std::size_t>(item) * kPlanes];
    std::uint64_t total = 0;
    for (int i = 0; i < kPlanes; ++i)
      total |= ((p[i] >> lane) & 1u) << i;
    return total;
  }

 private:
  std::vector<std::uint64_t> bits_;
};

/// Word-parallel netlist evaluator: 64 lanes per uint64_t, one word per
/// net. Lane semantics (cycles vs runs) are chosen by the caller; the
/// engine only knows about source words, zero-delay passes and unit-delay
/// event settling with per-net popcount toggle counters.
class BitSimulator {
 public:
  static constexpr int kLanes = 64;

  explicit BitSimulator(const Netlist& n);

  const Netlist& netlist() const { return *netlist_; }
  int num_nets() const { return static_cast<int>(value_.size()); }

  /// Current value word of a net (bit l = lane l).
  std::uint64_t word(NetId n) const { return value_[n]; }
  /// Overwrite the value word of every net.
  void load_state(const std::vector<std::uint64_t>& words);
  const std::vector<std::uint64_t>& state() const { return value_; }

  /// Stage a source word (primary input or latch Q) for the next settle.
  void stage_source(NetId n, std::uint64_t word);

  /// Single topological pass: every net takes its zero-delay value under
  /// the staged sources. No toggle counting; staged marks are consumed.
  void settle_zero_delay();

  /// Unit-delay event settle from the staged sources, lockstep across all
  /// 64 lanes. Per-net transition counts (summed over lanes) accumulate
  /// into `toggles_total` when non-null. When `per_lane` is non-null it
  /// receives one counter vector per lane, exactly matching what 64
  /// independent scalar simulations would count. Returns unit steps to
  /// quiescence (the max over lanes).
  int settle(std::vector<std::uint64_t>* toggles_total,
             std::vector<std::vector<std::uint64_t>>* per_lane = nullptr);

  /// Unit-delay settle specialised for the multi-run batch path: per-net
  /// per-lane transition counts accumulate into `toggles` (bit-sliced, no
  /// per-lane scatter), and every net whose value changed is appended once
  /// to `touched` with its pre-settle word stored in `before` — the
  /// caller derives the functional/glitch split from before vs settled
  /// without scanning or snapshotting the whole net array per cycle.
  /// `touched_flag` is the dedupe scratch (num_nets zeros on entry; the
  /// caller resets the touched entries afterwards).
  int settle_batch(LaneCounters& toggles, std::vector<NetId>& touched,
                   std::vector<char>& touched_flag,
                   std::vector<std::uint64_t>& before);

  /// Evaluate one gate's function over the current value words. Gates are
  /// classified at construction: the overwhelmingly common datapath
  /// functions (mux, parity, majority, and/or with polarities, buffers)
  /// evaluate in 2-5 word ops; everything else falls back to a Shannon
  /// cofactor reduction of the (support-reduced) truth table. All paths
  /// compute the identical boolean function, so values — and therefore
  /// event schedules and glitch counts — are bit-identical to the
  /// reference.
  std::uint64_t eval_gate(int gate_index) const;

 private:
  /// Specialised evaluator selected per gate at construction.
  enum GateOp : std::uint8_t {
    kOpShannon,  // generic fallback, k <= 4 (inputs in the packed record)
    kOpShannonBig,  // generic fallback, k > 4 (inputs in the CSR)
    kOpConst,    // constant 0 / ~0 (inv flag)
    kOpBuf,      // x or ~x
    kOpParity,   // x0 ^ x1 ^ ... (^ inv)
    kOpAndPol,   // AND_j (x_j ^ pol_j) (^ inv) — covers AND/OR/NAND/NOR
    kOpMux,      // s ? a : b (^ inv)
    kOpMaj,      // majority(a, b, c) (^ inv)
  };

  /// Everything one gate evaluation reads, in one 32-byte record (the
  /// settle loop is memory-bound; scattering this over parallel arrays
  /// costs several cache lines per eval). Inputs are support-reduced.
  struct PackedGate {
    std::uint8_t op = kOpShannon;
    std::uint8_t inv = 0;   // final inversion flag
    std::uint8_t pol = 0;   // kOpAndPol input polarity bits
    std::uint8_t k = 0;     // fanin count after support reduction
    std::uint32_t tt = 0;   // reduced truth table (k <= 4 fits 16 rows)
    NetId out = 0;
    NetId in[4] = {0, 0, 0, 0};  // operands (kOpMux: select, then-, else-)
  };

  template <typename OnChange>
  int settle_events(OnChange&& on_change);

  const Netlist* netlist_;
  std::vector<PackedGate> gates_;
  // CSR input lists, used only by the k > 4 Shannon fallback.
  std::vector<std::uint64_t> tt_bits_;
  std::vector<int> in_start_;    // gate -> offset into in_nets_
  std::vector<NetId> in_nets_;
  std::vector<int> fan_start_;   // net -> offset into fan_gates_
  std::vector<int> fan_gates_;
  std::vector<int> topo_;

  std::vector<std::uint64_t> value_;
  std::vector<std::uint64_t> staged_;
  std::vector<char> staged_dirty_;
  // Scratch for the event loop (persistent to avoid per-settle allocation).
  std::vector<char> gate_queued_;
  std::vector<int> dirty_gates_;
  std::vector<std::uint64_t> new_words_;
  std::vector<NetId> changed_, next_changed_;
};

/// Batched drop-in for simulate_frames: same stimulus semantics, same
/// result, 64 cycles per word. `frames[t]` holds one bit per primary input
/// in netlist input order.
CycleSimStats simulate_frames_batched(
    const Netlist& n, const std::vector<std::vector<char>>& frames);

/// Dispatch helper: scalar reference path or the batched engine.
CycleSimStats simulate_frames(const Netlist& n,
                              const std::vector<std::vector<char>>& frames,
                              SimEngine engine);

/// Many independent stimulus sequences through one netlist, 64 runs per
/// word. Returns one CycleSimStats per run, bit-identical to running
/// simulate_frames(n, runs[i]) separately. Run lengths may differ.
std::vector<CycleSimStats> simulate_batch(
    const Netlist& n,
    const std::vector<std::vector<std::vector<char>>>& runs);

/// Group-dispatch helper for the seed-coalescing experiment path: many
/// stimulus sequences through one netlist under either engine. The scalar
/// reference loops simulate_frames per run; the batched engine rides
/// simulate_batch's multi-run lanes (64 runs per word). Results are
/// bit-identical across engines, and to per-run simulate_frames calls.
std::vector<CycleSimStats> simulate_runs(
    const Netlist& n, const std::vector<std::vector<std::vector<char>>>& runs,
    SimEngine engine);

/// Many bindings' netlists sharing one stimulus (the paper's controlled
/// comparison): each netlist is evaluated with the batched single-run path.
/// All netlists must have the same number of primary inputs.
std::vector<CycleSimStats> simulate_batch(
    const std::vector<const Netlist*>& netlists,
    const std::vector<std::vector<char>>& frames);

}  // namespace hlp
