// Bit-parallel batched simulation engine — public entry points.
//
// The scalar UnitDelaySimulator carries one `char` per net and walks the
// netlist once per stimulus frame, so a 1000-vector Figure 3 run traverses
// the fabric a thousand times. This engine packs many simulation lanes
// into one machine word per net and settles the combinational fabric on
// whole words: every gate evaluation is a short word-op sequence (or a
// Shannon-cofactor reduction of its truth table) covering all lanes at
// once, and toggle counting is a popcount of the change word.
//
// The engine itself is word-generic (bit_sim_engine.hpp): the same
// algorithms run at 64 lanes per `uint64_t`, 128/256/512 lanes per
// portable multi-limb word, or 256/512 lanes per AVX2/AVX-512 register.
// The functions below select the backend with a SimdMode (simd_mode.hpp;
// the HLP_SIMD env var and the flow pipeline's RunSpec/Job `simd` knob
// feed it) behind runtime CPU dispatch — every backend is bit-identical
// to the scalar path (asserted across widths by tests/bit_sim_test.cpp),
// so the mode only changes wall-clock.
//
// Two batching axes are provided:
//
//  - simulate_frames_batched: ONE stimulus sequence, one word of
//    consecutive cycles at a time. Cycles are made independent by
//    splitting the run into a cheap scalar phase that advances only the
//    latch-state recurrence (zero-delay evaluation of the latch-D fanin
//    cone) and a word-parallel phase that replays each cycle block: a
//    single topological pass yields all settled states, then one
//    event-driven unit-delay settle on words reproduces every transient,
//    glitches included.
//
//  - simulate_batch: MANY independent stimulus sequences (e.g. many seeds
//    of one binding) as lanes. Latch state lives per lane inside the word,
//    so the whole cycle loop — clock edge, settle, counting — is word
//    parallel with no scalar phase at all. Runs may have different
//    lengths; finished lanes are frozen by re-staging their previous
//    source values.
//
// A shared-stimulus overload evaluates many bindings' netlists against one
// frame sequence (the paper's controlled comparison) through the batched
// single-run path.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/bit_sim_engine.hpp"
#include "sim/schedule_sim.hpp"
#include "sim/settle_mode.hpp"
#include "sim/simd_mode.hpp"

namespace hlp {

/// Which engine the flow pipeline / experiment runner evaluates stimulus
/// with. The scalar path is kept as the reference oracle; the batched
/// engine's word width is the orthogonal SimdMode axis.
enum class SimEngine { kScalar, kBatched };

/// The 64-lane instantiations keep their pre-SIMD names: BitSimulator is
/// the u64 reference word engine (one `uint64_t` per net), and the default
/// backend of every simulate_* entry point below. Wider instantiations
/// (BitSimulatorT<SimdX2>, BitSimulatorT<AvxWord256>, ...) are reached
/// through the SimdMode parameters.
using BitSimulator = BitSimulatorT<std::uint64_t>;

/// Bit-sliced per-lane counters at the reference 64-lane width (see
/// LaneCountersT for the word-generic contract).
using LaneCounters = LaneCountersT<std::uint64_t>;

/// Batched drop-in for simulate_frames: same stimulus semantics, same
/// result, one word of consecutive cycles at a time (64 for the default
/// u64 backend, up to 512 under HLP_SIMD/avx512). `frames[t]` holds one
/// bit per primary input in netlist input order. `simd` must resolve
/// (resolve_simd_mode) — kAuto picks the widest CPU-supported backend.
/// `settle` picks the unit-delay settle strategy (settle_mode.hpp);
/// every choice is bit-identical, kAuto self-calibrates per netlist.
CycleSimStats simulate_frames_batched(
    const Netlist& n, const std::vector<std::vector<char>>& frames,
    SimdMode simd = SimdMode::kU64, SettleMode settle = SettleMode::kAuto);

/// Dispatch helper: scalar reference path or the batched engine at the
/// requested word width / settle strategy (both ignored for kScalar).
CycleSimStats simulate_frames(const Netlist& n,
                              const std::vector<std::vector<char>>& frames,
                              SimEngine engine,
                              SimdMode simd = SimdMode::kU64,
                              SettleMode settle = SettleMode::kAuto);

/// Many independent stimulus sequences through one netlist, one run per
/// lane (64 per word for u64, up to 512 under avx512). Returns one
/// CycleSimStats per run, bit-identical to running simulate_frames(n,
/// runs[i]) separately at any width and settle strategy. Run lengths may
/// differ.
std::vector<CycleSimStats> simulate_batch(
    const Netlist& n, const std::vector<std::vector<std::vector<char>>>& runs,
    SimdMode simd = SimdMode::kU64, SettleMode settle = SettleMode::kAuto);

/// Group-dispatch helper for the seed-coalescing experiment path: many
/// stimulus sequences through one netlist under either engine. The scalar
/// reference loops simulate_frames per run; the batched engine rides
/// simulate_batch's multi-run lanes at the requested word width. Results
/// are bit-identical across engines, widths and settle strategies, and to
/// per-run simulate_frames calls.
std::vector<CycleSimStats> simulate_runs(
    const Netlist& n, const std::vector<std::vector<std::vector<char>>>& runs,
    SimEngine engine, SimdMode simd = SimdMode::kU64,
    SettleMode settle = SettleMode::kAuto);

/// Many bindings' netlists sharing one stimulus (the paper's controlled
/// comparison): each netlist is evaluated with the batched single-run path
/// at the requested word width. All netlists must have the same number of
/// primary inputs.
std::vector<CycleSimStats> simulate_batch(
    const std::vector<const Netlist*>& netlists,
    const std::vector<std::vector<char>>& frames,
    SimdMode simd = SimdMode::kU64, SettleMode settle = SettleMode::kAuto);

}  // namespace hlp
