// Levelized views of a mapped netlist.
//
// The simulation side: build_gate_plan (bit_sim_engine.hpp) classifies
// gates once per netlist; detail::build_levelization (declared next to
// GatePlan, defined in levelize.cpp) ranks those packed records by logic
// level — level(gate) = 1 + max level over its *support-reduced* inputs,
// sources at level 0 — and lays each level's 32-byte records out
// contiguously. The wavefront settle (BitSimulatorT::settle_levelized)
// sweeps those records with no dirty tracking at all: at unit-delay step
// t only gates of level >= t can still change, so the step-t sweep is the
// contiguous suffix starting at level t, walked in descending-level order
// so every gate reads pure time-(t-1) operands. See docs/architecture.md
// for the equivalence argument with the event-driven settle.
//
// The timing side below is the same structure applied to the scalar
// `time` stage: instead of one max-reduction over net_levels(), the
// critical path falls out of a per-level arrival sweep — process the
// level-t wavefront, arrival(out) = 1 + max arrival(in), repeat until the
// frontier empties. It is bit-identical to clock_period_ns (same integer
// depth through the same double expression), which StageCache and the
// distributed same_outcome checks compare exactly.
#pragma once

#include "netlist/netlist.hpp"
#include "netlist/timing.hpp"

namespace hlp {

/// Critical combinational depth via the per-level arrival-time sweep.
/// Equals logic_depth(n) on every valid netlist (property tested); throws
/// on combinational cycles like topo_gates() does.
int levelized_logic_depth(const Netlist& n);

/// Minimum clock period from the levelized arrival sweep. Bit-identical
/// to clock_period_ns(n, model) — callers (pipeline stage_time) may swap
/// freely without perturbing stage caches or distributed result checks.
double levelized_clock_period_ns(const Netlist& n,
                                 const TimingModel& model = {});

}  // namespace hlp
