// Cycle-accurate simulation of a registered datapath netlist.
//
// Drives the netlist through a sequence of input frames (one per clock
// cycle), latching state at every edge and letting the combinational fabric
// settle with unit delays. Produces the transition statistics behind the
// paper's Figure 3 (toggle rate) and Table 3 (dynamic power): total
// transitions, and the functional/glitch split (a net's settled value
// changing at most once per cycle is functional; every extra transition is
// a glitch).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace hlp {

struct CycleSimStats {
  std::vector<std::uint64_t> toggles;  // per net, unit-delay transitions
  std::uint64_t num_cycles = 0;
  std::uint64_t total_transitions = 0;
  std::uint64_t functional_transitions = 0;
  std::uint64_t glitch_transitions() const {
    return total_transitions - functional_transitions;
  }
  double transitions_per_cycle() const {
    return num_cycles ? static_cast<double>(total_transitions) /
                            static_cast<double>(num_cycles)
                      : 0.0;
  }
};

/// Run `frames[i]` (values for every primary input, in netlist input order)
/// through the netlist, one frame per clock cycle.
CycleSimStats simulate_frames(const Netlist& n,
                              const std::vector<std::vector<char>>& frames);

}  // namespace hlp
