// SIMD word types for the bit-parallel simulation engine.
//
// The engine (bit_sim_engine.hpp) is templated on a Word type; one word
// carries one simulation lane per bit, so widening the word widens the
// whole engine. Three families are provided:
//
//  - std::uint64_t            — the scalar reference word (64 lanes).
//  - SimdWord<N>              — portable N x u64 limb array (128/256/512
//                               lanes for N = 2/4/8). Plain C++ loops over
//                               the limbs; the compiler auto-vectorises
//                               them with whatever ISA the TU is built for.
//  - AvxWord256 / AvxWord512  — explicit __m256i / __m512i backends. Only
//                               defined when the translation unit is
//                               compiled with AVX2 / AVX-512F enabled, so
//                               this header stays includable from baseline
//                               TUs; the library compiles them in dedicated
//                               per-ISA TUs (bit_sim_avx2.cpp, ...) behind
//                               runtime CPU dispatch (simd_mode.hpp).
//
// Every word type exposes the same contract through WordTraits<W>:
// bitwise operators (&, |, ^, ~ — lane-wise boolean algebra), plus the
// lane-indexed helpers the engine needs for staging, counting and
// cross-lane carries. All operations are pure boolean/bit manipulation, so
// every backend computes the identical function and the engine stays
// bit-identical to the scalar oracle at any width.
#pragma once

#include <bit>
#include <cstdint>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace hlp {

/// Portable wide word: N 64-bit limbs = N*64 lanes. `Tag` only
/// disambiguates otherwise-identical instantiations that are compiled in
/// different-ISA translation units (distinct types -> distinct symbols, so
/// the linker can never mix codegen across ISA boundaries).
template <int N, int Tag = 0>
struct SimdWord {
  std::uint64_t limb[N];

  friend SimdWord operator&(const SimdWord& a, const SimdWord& b) {
    SimdWord r;
    for (int i = 0; i < N; ++i) r.limb[i] = a.limb[i] & b.limb[i];
    return r;
  }
  friend SimdWord operator|(const SimdWord& a, const SimdWord& b) {
    SimdWord r;
    for (int i = 0; i < N; ++i) r.limb[i] = a.limb[i] | b.limb[i];
    return r;
  }
  friend SimdWord operator^(const SimdWord& a, const SimdWord& b) {
    SimdWord r;
    for (int i = 0; i < N; ++i) r.limb[i] = a.limb[i] ^ b.limb[i];
    return r;
  }
  friend SimdWord operator~(const SimdWord& a) {
    SimdWord r;
    for (int i = 0; i < N; ++i) r.limb[i] = ~a.limb[i];
    return r;
  }
};

using SimdX2 = SimdWord<2>;  // 128 lanes
using SimdX4 = SimdWord<4>;  // 256 lanes
using SimdX8 = SimdWord<8>;  // 512 lanes

/// The lane-level operations the engine needs beyond the bitwise
/// operators. Specialised per word type; see the std::uint64_t instance
/// for the authoritative semantics of each member.
template <typename W>
struct WordTraits;

template <>
struct WordTraits<std::uint64_t> {
  using Word = std::uint64_t;
  /// Simulation lanes per word (one lane per bit).
  static constexpr int kLanes = 64;
  static Word zero() { return 0; }
  static Word ones() { return ~0ull; }
  /// All lanes 0 or all lanes 1.
  static Word fill(bool b) { return b ? ones() : zero(); }
  /// Any lane set?
  static bool any(Word w) { return w != 0; }
  /// Number of set lanes.
  static int popcount(Word w) { return std::popcount(w); }
  /// Bit of lane `l` (0 or 1).
  static int lane(Word w, int l) {
    return static_cast<int>((w >> l) & 1u);
  }
  /// OR `bit` (0 or 1) into lane `l` — branchless staging primitive.
  static void or_lane(Word& w, int l, std::uint64_t bit) { w |= bit << l; }
  /// Word with lanes [0, n) set (n may equal kLanes).
  static Word mask_lo(int n) {
    return n >= kLanes ? ones() : (1ull << n) - 1;
  }
  /// Shift every lane up by one, inserting `carry_in` (0 or 1) at lane 0.
  static Word shl1(Word w, int carry_in) {
    return (w << 1) | static_cast<Word>(carry_in);
  }
  /// Invoke `f(lane)` for every set lane, in ascending lane order.
  template <typename F>
  static void for_each_lane(Word w, F&& f) {
    while (w) {
      f(std::countr_zero(w));
      w &= w - 1;
    }
  }
};

template <int N, int Tag>
struct WordTraits<SimdWord<N, Tag>> {
  using Word = SimdWord<N, Tag>;
  static constexpr int kLanes = 64 * N;
  static Word zero() {
    Word w;
    for (int i = 0; i < N; ++i) w.limb[i] = 0;
    return w;
  }
  static Word ones() {
    Word w;
    for (int i = 0; i < N; ++i) w.limb[i] = ~0ull;
    return w;
  }
  static Word fill(bool b) { return b ? ones() : zero(); }
  static bool any(const Word& w) {
    std::uint64_t acc = 0;
    for (int i = 0; i < N; ++i) acc |= w.limb[i];
    return acc != 0;
  }
  static int popcount(const Word& w) {
    int c = 0;
    for (int i = 0; i < N; ++i) c += std::popcount(w.limb[i]);
    return c;
  }
  static int lane(const Word& w, int l) {
    return static_cast<int>((w.limb[l >> 6] >> (l & 63)) & 1u);
  }
  static void or_lane(Word& w, int l, std::uint64_t bit) {
    w.limb[l >> 6] |= bit << (l & 63);
  }
  static Word mask_lo(int n) {
    Word w;
    for (int i = 0; i < N; ++i) {
      const int base = i * 64;
      if (n >= base + 64)
        w.limb[i] = ~0ull;
      else if (n <= base)
        w.limb[i] = 0;
      else
        w.limb[i] = (1ull << (n - base)) - 1;
    }
    return w;
  }
  static Word shl1(const Word& w, int carry_in) {
    Word r;
    std::uint64_t carry = static_cast<std::uint64_t>(carry_in);
    for (int i = 0; i < N; ++i) {
      r.limb[i] = (w.limb[i] << 1) | carry;
      carry = w.limb[i] >> 63;
    }
    return r;
  }
  template <typename F>
  static void for_each_lane(const Word& w, F&& f) {
    for (int i = 0; i < N; ++i) {
      std::uint64_t bits = w.limb[i];
      while (bits) {
        f(i * 64 + std::countr_zero(bits));
        bits &= bits - 1;
      }
    }
  }
};

#if defined(__AVX2__)

/// 256-lane word on an AVX2 register. Bitwise algebra runs on the vector
/// unit; lane-indexed helpers go through the aliased limb view (a
/// GCC/Clang-sanctioned union pun), which only the staging/unpack paths
/// touch.
struct AvxWord256 {
  union {
    __m256i v;
    std::uint64_t limb[4];
  };

  friend AvxWord256 operator&(const AvxWord256& a, const AvxWord256& b) {
    AvxWord256 r;
    r.v = _mm256_and_si256(a.v, b.v);
    return r;
  }
  friend AvxWord256 operator|(const AvxWord256& a, const AvxWord256& b) {
    AvxWord256 r;
    r.v = _mm256_or_si256(a.v, b.v);
    return r;
  }
  friend AvxWord256 operator^(const AvxWord256& a, const AvxWord256& b) {
    AvxWord256 r;
    r.v = _mm256_xor_si256(a.v, b.v);
    return r;
  }
  friend AvxWord256 operator~(const AvxWord256& a) {
    AvxWord256 r;
    r.v = _mm256_xor_si256(a.v, _mm256_set1_epi64x(-1));
    return r;
  }
};

template <>
struct WordTraits<AvxWord256> {
  using Word = AvxWord256;
  static constexpr int kLanes = 256;
  static Word zero() {
    Word w;
    w.v = _mm256_setzero_si256();
    return w;
  }
  static Word ones() {
    Word w;
    w.v = _mm256_set1_epi64x(-1);
    return w;
  }
  static Word fill(bool b) { return b ? ones() : zero(); }
  static bool any(const Word& w) { return !_mm256_testz_si256(w.v, w.v); }
  static int popcount(const Word& w) {
    int c = 0;
    for (int i = 0; i < 4; ++i) c += std::popcount(w.limb[i]);
    return c;
  }
  static int lane(const Word& w, int l) {
    return static_cast<int>((w.limb[l >> 6] >> (l & 63)) & 1u);
  }
  static void or_lane(Word& w, int l, std::uint64_t bit) {
    w.limb[l >> 6] |= bit << (l & 63);
  }
  // Self-contained (no WordTraits<SimdWord<4>> reference): this TU is
  // compiled with AVX flags, and instantiating the baseline portable
  // traits here would emit COMDAT symbols the linker could prefer over
  // the baseline TUs' copies — exactly the cross-ISA mixing the SimdWord
  // Tag exists to prevent.
  static Word mask_lo(int n) {
    Word w;
    for (int i = 0; i < 4; ++i) {
      const int base = i * 64;
      if (n >= base + 64)
        w.limb[i] = ~0ull;
      else if (n <= base)
        w.limb[i] = 0;
      else
        w.limb[i] = (1ull << (n - base)) - 1;
    }
    return w;
  }
  static Word shl1(const Word& w, int carry_in) {
    Word r;
    std::uint64_t carry = static_cast<std::uint64_t>(carry_in);
    for (int i = 0; i < 4; ++i) {
      r.limb[i] = (w.limb[i] << 1) | carry;
      carry = w.limb[i] >> 63;
    }
    return r;
  }
  template <typename F>
  static void for_each_lane(const Word& w, F&& f) {
    for (int i = 0; i < 4; ++i) {
      std::uint64_t bits = w.limb[i];
      while (bits) {
        f(i * 64 + std::countr_zero(bits));
        bits &= bits - 1;
      }
    }
  }
};

#endif  // __AVX2__

#if defined(__AVX512F__)

/// 512-lane word on an AVX-512 register (AVX512F ops only, so runtime
/// dispatch needs exactly the avx512f CPUID bit).
struct AvxWord512 {
  union {
    __m512i v;
    std::uint64_t limb[8];
  };

  friend AvxWord512 operator&(const AvxWord512& a, const AvxWord512& b) {
    AvxWord512 r;
    r.v = _mm512_and_epi64(a.v, b.v);
    return r;
  }
  friend AvxWord512 operator|(const AvxWord512& a, const AvxWord512& b) {
    AvxWord512 r;
    r.v = _mm512_or_epi64(a.v, b.v);
    return r;
  }
  friend AvxWord512 operator^(const AvxWord512& a, const AvxWord512& b) {
    AvxWord512 r;
    r.v = _mm512_xor_epi64(a.v, b.v);
    return r;
  }
  friend AvxWord512 operator~(const AvxWord512& a) {
    AvxWord512 r;
    r.v = _mm512_xor_epi64(a.v, _mm512_set1_epi64(-1));
    return r;
  }
};

template <>
struct WordTraits<AvxWord512> {
  using Word = AvxWord512;
  static constexpr int kLanes = 512;
  static Word zero() {
    Word w;
    w.v = _mm512_setzero_si512();
    return w;
  }
  static Word ones() {
    Word w;
    w.v = _mm512_set1_epi64(-1);
    return w;
  }
  static Word fill(bool b) { return b ? ones() : zero(); }
  static bool any(const Word& w) {
    return _mm512_test_epi64_mask(w.v, w.v) != 0;
  }
  static int popcount(const Word& w) {
#if defined(HLP_HAVE_AVX512VPOPCNT)
    // AVX512VPOPCNTDQ collapses the 8-limb scalar loop into one vector
    // popcount + horizontal add. The helper carries its own target
    // attribute (this TU is only -mavx512f) and is gated on the CPUID bit
    // once per process — toggle counting is the hottest popcount in the
    // engine, so the branch is a predictable scalar test.
    static const bool kHaveVpopcnt =
        __builtin_cpu_supports("avx512vpopcntdq");
    if (kHaveVpopcnt) return popcount_vpopcntdq(w);
#endif
    int c = 0;
    for (int i = 0; i < 8; ++i) c += std::popcount(w.limb[i]);
    return c;
  }
#if defined(HLP_HAVE_AVX512VPOPCNT)
  __attribute__((target("avx512f,avx512vpopcntdq"))) static int
  popcount_vpopcntdq(const Word& w) {
    return static_cast<int>(
        _mm512_reduce_add_epi64(_mm512_popcnt_epi64(w.v)));
  }
#endif
  static int lane(const Word& w, int l) {
    return static_cast<int>((w.limb[l >> 6] >> (l & 63)) & 1u);
  }
  static void or_lane(Word& w, int l, std::uint64_t bit) {
    w.limb[l >> 6] |= bit << (l & 63);
  }
  // Self-contained for the same cross-ISA COMDAT reason as AvxWord256.
  static Word mask_lo(int n) {
    Word w;
    for (int i = 0; i < 8; ++i) {
      const int base = i * 64;
      if (n >= base + 64)
        w.limb[i] = ~0ull;
      else if (n <= base)
        w.limb[i] = 0;
      else
        w.limb[i] = (1ull << (n - base)) - 1;
    }
    return w;
  }
  static Word shl1(const Word& w, int carry_in) {
    Word r;
    std::uint64_t carry = static_cast<std::uint64_t>(carry_in);
    for (int i = 0; i < 8; ++i) {
      r.limb[i] = (w.limb[i] << 1) | carry;
      carry = w.limb[i] >> 63;
    }
    return r;
  }
  template <typename F>
  static void for_each_lane(const Word& w, F&& f) {
    for (int i = 0; i < 8; ++i) {
      std::uint64_t bits = w.limb[i];
      while (bits) {
        f(i * 64 + std::countr_zero(bits));
        bits &= bits - 1;
      }
    }
  }
};

#endif  // __AVX512F__

}  // namespace hlp
