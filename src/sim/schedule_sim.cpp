#include "sim/schedule_sim.hpp"

#include "common/error.hpp"
#include "sim/simulator.hpp"

namespace hlp {

CycleSimStats simulate_frames(const Netlist& n,
                              const std::vector<std::vector<char>>& frames) {
  UnitDelaySimulator sim(n);
  CycleSimStats stats;
  stats.num_cycles = frames.size();

  std::vector<char> before(n.num_nets(), 0);
  for (const auto& frame : frames) {
    HLP_REQUIRE(frame.size() == n.inputs().size(),
                "frame has " << frame.size() << " bits, netlist has "
                             << n.inputs().size() << " inputs");
    for (NetId net = 0; net < n.num_nets(); ++net) before[net] = sim.value(net);
    for (std::size_t j = 0; j < frame.size(); ++j)
      sim.set_input(n.inputs()[j], frame[j] != 0);
    sim.clock_edge();
    sim.settle(/*count=*/true);
    for (NetId net = 0; net < n.num_nets(); ++net)
      if (before[net] != (sim.value(net) ? 1 : 0)) ++stats.functional_transitions;
  }
  stats.toggles = sim.toggles();
  stats.total_transitions = sim.total_toggles();
  return stats;
}

}  // namespace hlp
