// Random stimulus generation — the substitute for the paper's Quartus
// vector-waveform (.vwf) editor, which generated "1000 random input vectors
// for each benchmark". Deterministic in the seed, so LOPASS and HLPower
// bindings of the same benchmark see the *same* stimulus (the paper reuses
// one .vwf file for both).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace hlp {

/// `num_vectors` rows of `num_bits` uniform random bits.
std::vector<std::vector<char>> random_vectors(int num_vectors, int num_bits,
                                              std::uint64_t seed);

/// Uniform random machine words in [0, 2^width), one per vector.
std::vector<std::uint64_t> random_words(int num_vectors, int width,
                                        std::uint64_t seed);

/// `num_vectors` input samples of `num_inputs` words each, carved from one
/// flat random_words draw — the stimulus sequence shared by run_flow, the
/// pipeline's simulate stage, and the bench comparisons (same seed, same
/// sequence, bit-for-bit).
std::vector<std::vector<std::uint64_t>> random_samples(int num_vectors,
                                                       int num_inputs,
                                                       int width,
                                                       std::uint64_t seed);

}  // namespace hlp
