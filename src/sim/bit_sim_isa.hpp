// Internal: per-ISA entry points of the bit-parallel engine.
//
// The AVX2 / AVX-512 backends are instantiated in dedicated translation
// units (bit_sim_avx2.cpp, bit_sim_avx512.cpp) compiled with -mavx2 /
// -mavx512f, so the rest of the library stays at baseline ISA. These
// declarations are the only link between the dispatcher (bit_sim.cpp) and
// those TUs; definitions exist only when CMake found the matching compiler
// flag (HLP_HAVE_AVX2 / HLP_HAVE_AVX512), and the dispatcher only calls
// them after resolve_simd_mode() confirmed runtime CPU support.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "sim/schedule_sim.hpp"
#include "sim/settle_mode.hpp"

namespace hlp::detail {

CycleSimStats simulate_frames_batched_avx2(
    const Netlist& n, const std::vector<std::vector<char>>& frames,
    SettleMode settle);
std::vector<CycleSimStats> simulate_batch_avx2(
    const Netlist& n, const std::vector<std::vector<std::vector<char>>>& runs,
    SettleMode settle);

CycleSimStats simulate_frames_batched_avx512(
    const Netlist& n, const std::vector<std::vector<char>>& frames,
    SettleMode settle);
std::vector<CycleSimStats> simulate_batch_avx512(
    const Netlist& n, const std::vector<std::vector<std::vector<char>>>& runs,
    SettleMode settle);

}  // namespace hlp::detail
