// AVX-512 backend of the bit-parallel engine: BitSimulatorT<AvxWord512>,
// 512 lanes per __m512i word (AVX512F ops only). Compiled with -mavx512f
// (see CMakeLists.txt) and entered only through the SimdMode dispatcher
// after __builtin_cpu_supports("avx512f") confirmed the running CPU.
//
// When the toolchain cannot target AVX-512F the file compiles empty and
// the dispatcher never references these symbols (HLP_HAVE_AVX512
// undefined).
#if defined(__AVX512F__)

#include "sim/bit_sim_engine.hpp"
#include "sim/bit_sim_isa.hpp"

namespace hlp::detail {

CycleSimStats simulate_frames_batched_avx512(
    const Netlist& n, const std::vector<std::vector<char>>& frames,
    SettleMode settle) {
  return simulate_frames_batched_t<AvxWord512>(n, frames, settle);
}

std::vector<CycleSimStats> simulate_batch_avx512(
    const Netlist& n,
    const std::vector<std::vector<std::vector<char>>>& runs,
    SettleMode settle) {
  return simulate_batch_t<AvxWord512>(n, runs, settle);
}

}  // namespace hlp::detail

#endif  // __AVX512F__
