// AVX2 backend of the bit-parallel engine: BitSimulatorT<AvxWord256>,
// 256 lanes per __m256i word. This TU is compiled with -mavx2 (see
// CMakeLists.txt) and entered only through the SimdMode dispatcher after
// __builtin_cpu_supports("avx2") confirmed the running CPU — no AVX2
// instruction can execute on a CPU without it.
//
// When the toolchain cannot target AVX2 the file compiles empty and the
// dispatcher never references these symbols (HLP_HAVE_AVX2 undefined).
#if defined(__AVX2__)

#include "sim/bit_sim_engine.hpp"
#include "sim/bit_sim_isa.hpp"

namespace hlp::detail {

CycleSimStats simulate_frames_batched_avx2(
    const Netlist& n, const std::vector<std::vector<char>>& frames,
    SettleMode settle) {
  return simulate_frames_batched_t<AvxWord256>(n, frames, settle);
}

std::vector<CycleSimStats> simulate_batch_avx2(
    const Netlist& n,
    const std::vector<std::vector<std::vector<char>>>& runs,
    SettleMode settle) {
  return simulate_batch_t<AvxWord256>(n, runs, settle);
}

}  // namespace hlp::detail

#endif  // __AVX2__
