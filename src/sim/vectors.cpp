#include "sim/vectors.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hlp {

std::vector<std::vector<char>> random_vectors(int num_vectors, int num_bits,
                                              std::uint64_t seed) {
  HLP_REQUIRE(num_vectors >= 0 && num_bits >= 0, "negative vector shape");
  Rng rng(seed);
  std::vector<std::vector<char>> out(num_vectors, std::vector<char>(num_bits));
  for (auto& row : out)
    for (auto& b : row) b = rng.chance(0.5) ? 1 : 0;
  return out;
}

std::vector<std::uint64_t> random_words(int num_vectors, int width,
                                        std::uint64_t seed) {
  HLP_REQUIRE(width >= 1 && width <= 64, "word width must be in [1,64]");
  Rng rng(seed);
  std::vector<std::uint64_t> out(num_vectors);
  const std::uint64_t mask = width == 64 ? ~0ull : (1ull << width) - 1ull;
  for (auto& w : out) w = rng.next_u64() & mask;
  return out;
}

std::vector<std::vector<std::uint64_t>> random_samples(int num_vectors,
                                                       int num_inputs,
                                                       int width,
                                                       std::uint64_t seed) {
  HLP_REQUIRE(num_vectors >= 0 && num_inputs >= 0, "negative sample shape");
  std::vector<std::vector<std::uint64_t>> samples(num_vectors);
  const auto words =
      random_words(num_vectors * std::max(1, num_inputs), width, seed);
  std::size_t w = 0;
  for (auto& sample : samples) {
    sample.resize(num_inputs);
    for (auto& word : sample) word = words[w++];
  }
  return samples;
}

}  // namespace hlp
