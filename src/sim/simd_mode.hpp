// The HLP_SIMD knob: which word width the bit-parallel simulation engine
// evaluates stimulus with.
//
// Every backend is bit-identical to the scalar oracle (property-tested by
// tests/bit_sim_test.cpp); the mode only chooses how many simulation lanes
// one netlist traversal settles:
//
//   u64     64 lanes   scalar uint64_t word (the PR-2 engine, the default
//                      for direct simulate_* calls)
//   x2     128 lanes   portable 2 x u64 limb array
//   x4     256 lanes   portable 4 x u64 limb array
//   x8     512 lanes   portable 8 x u64 limb array
//   avx2   256 lanes   __m256i backend; needs AVX2 at build & run time
//   avx512 512 lanes   __m512i backend; needs AVX-512F at build & run time
//   auto               widest intrinsic backend the running CPU supports
//                      (avx512 > avx2 > u64) — the flow pipeline's default
//
// Parsing is strict, like HLP_JOBS/HLP_COALESCE: unset/empty falls back,
// anything else must be one of the names above or the sweep dies loudly.
// Requesting avx2/avx512 on a build or CPU without them is an error, not a
// silent downgrade (resolve_simd_mode throws).
#pragma once

#include <string>
#include <vector>

namespace hlp {

enum class SimdMode { kAuto, kU64, kX2, kX4, kX8, kAvx2, kAvx512 };

/// Every mode, kAuto first (handy for sweeps and option listings).
const std::vector<SimdMode>& all_simd_modes();

/// Canonical knob spelling: "auto", "u64", "x2", "x4", "x8", "avx2",
/// "avx512".
const char* simd_mode_name(SimdMode mode);

/// Strict parse of a knob value (the exact lowercase names above); throws
/// hlp::Error naming HLP_SIMD, the offending value and the accepted set.
SimdMode parse_simd_mode(const std::string& value);

/// HLP_SIMD env override, else `fallback`. Unset/empty falls back;
/// garbage throws (strict, like jobs_from_env).
SimdMode simd_mode_from_env(SimdMode fallback = SimdMode::kAuto);

/// Was this backend compiled into the library? Portable modes always;
/// avx2/avx512 only when the toolchain accepted -mavx2 / -mavx512f.
bool simd_mode_compiled(SimdMode mode);

/// Compiled in AND usable on the running CPU (CPUID avx2 / avx512f).
/// Portable modes are always supported; kAuto is trivially supported.
bool simd_mode_supported(SimdMode mode);

/// Resolve a requested mode to a concrete backend: kAuto picks the widest
/// supported intrinsic backend (avx512 > avx2 > u64); explicit modes pass
/// through after a support check. Throws hlp::Error for an explicit
/// avx2/avx512 request the build or CPU cannot honour. Never returns
/// kAuto.
SimdMode resolve_simd_mode(SimdMode requested);

/// The mode a pipeline/runner spec resolves to: an explicit spec wins,
/// kAuto consults HLP_SIMD, and the result goes through resolve_simd_mode.
SimdMode effective_simd_mode(SimdMode requested);

/// Lanes-aware variant: like effective_simd_mode, but when the request is
/// still kAuto after the HLP_SIMD default, pick the narrowest supported
/// backend that covers `lanes_needed` (u64 -> x2 -> avx2|x4 -> avx512|x8)
/// instead of the widest — a word wider than the batch pays full word
/// cost on empty lanes, so e.g. a 64-seed group stays on the u64 word and
/// a 512-seed group gets avx512. Explicit modes resolve unchanged.
SimdMode effective_simd_mode(SimdMode requested, std::size_t lanes_needed);

/// Lanes per word of a concrete mode (64..512). Throws on kAuto — resolve
/// first.
int simd_lanes(SimdMode mode);

}  // namespace hlp
