#include "sim/settle_mode.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace hlp {

namespace {

constexpr const char* kAccepted = "auto, event, level";

}  // namespace

const std::vector<SettleMode>& all_settle_modes() {
  static const std::vector<SettleMode> kModes = {
      SettleMode::kAuto, SettleMode::kEvent, SettleMode::kLevel};
  return kModes;
}

const char* settle_mode_name(SettleMode mode) {
  switch (mode) {
    case SettleMode::kAuto:
      return "auto";
    case SettleMode::kEvent:
      return "event";
    case SettleMode::kLevel:
      return "level";
  }
  HLP_CHECK(false, "invalid SettleMode value");
}

SettleMode parse_settle_mode(const std::string& value) {
  for (const SettleMode mode : all_settle_modes())
    if (value == settle_mode_name(mode)) return mode;
  HLP_REQUIRE(false, "HLP_SETTLE='" << value
                                    << "' is not a settle mode (accepted: "
                                    << kAccepted << ")");
}

SettleMode settle_mode_from_env(SettleMode fallback) {
  const char* env = std::getenv("HLP_SETTLE");
  if (!env || *env == '\0') return fallback;
  return parse_settle_mode(env);
}

SettleMode effective_settle_mode(SettleMode requested) {
  return requested == SettleMode::kAuto
             ? settle_mode_from_env(SettleMode::kAuto)
             : requested;
}

}  // namespace hlp
