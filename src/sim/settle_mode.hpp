// The HLP_SETTLE knob: which settle strategy the bit-parallel simulation
// engine uses to propagate staged source changes to quiescence.
//
// Both strategies compute the identical unit-delay trajectory (property
// tested by tests/bit_sim_test.cpp), so the knob only changes wall-clock:
//
//   event   dirty-gate event queue (the original engine). Work scales
//           with the union of per-lane activity — ideal for narrow words
//           and low-toggle designs, but the dirty set saturates as lanes
//           widen ("some lane toggled" approaches "every gate toggled").
//   level   levelized wavefront (src/sim/levelize.hpp): gates are swept
//           level by level as contiguous 32-byte records with no dirty
//           tracking at all — branch-predictable, prefetch-friendly, and
//           insensitive to activity, so it wins exactly where the event
//           queue drowns (wide words, full lanes).
//   auto    per-simulator calibration: the first settles of an instance
//           are timed alternately under each strategy and the winner is
//           locked in for the rest of the instance's life. Safe because
//           the strategies are bit-identical — the probe can never change
//           a result, only the speed of getting it.
//
// Parsing is strict, like HLP_SIMD: unset/empty falls back, anything else
// must be one of the names above or the sweep dies loudly. Unlike SIMD
// modes, every settle mode is supported on every build and CPU, so there
// is no resolve/downgrade axis — kAuto is itself a concrete, always-legal
// engine strategy.
#pragma once

#include <string>
#include <vector>

namespace hlp {

enum class SettleMode { kAuto, kEvent, kLevel };

/// Every mode, kAuto first (handy for sweeps and option listings).
const std::vector<SettleMode>& all_settle_modes();

/// Canonical knob spelling: "auto", "event", "level".
const char* settle_mode_name(SettleMode mode);

/// Strict parse of a knob value (the exact lowercase names above); throws
/// hlp::Error naming HLP_SETTLE, the offending value and the accepted set.
SettleMode parse_settle_mode(const std::string& value);

/// HLP_SETTLE env override, else `fallback`. Unset/empty falls back;
/// garbage throws (strict, like simd_mode_from_env).
SettleMode settle_mode_from_env(SettleMode fallback = SettleMode::kAuto);

/// The mode a pipeline/runner spec resolves to: an explicit spec wins,
/// kAuto consults HLP_SETTLE. The result may still be kAuto — that is the
/// engine's calibrate-per-instance strategy, not an unresolved request.
SettleMode effective_settle_mode(SettleMode requested);

}  // namespace hlp
