#include "sim/bit_sim.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/error.hpp"
#include "sim/bit_sim_isa.hpp"

namespace hlp {

namespace detail {

namespace {

std::uint64_t tt_mask(int k) {
  const std::uint32_t rows = 1u << k;
  return rows >= 64 ? ~0ull : (1ull << rows) - 1;
}

std::uint64_t parity_tt(int k) {
  std::uint64_t par = 0;
  for (std::uint32_t m = 0; m < (1u << k); ++m)
    if (std::popcount(m) & 1) par |= 1ull << m;
  return par;
}

// Drop inputs the function does not depend on, compressing the truth
// table. Evaluation over the reduced support is value-identical.
void reduce_support(std::uint64_t& bits, std::vector<NetId>& ins) {
  for (int j = static_cast<int>(ins.size()) - 1; j >= 0; --j) {
    const std::uint32_t rows = 1u << ins.size();
    bool depends = false;
    for (std::uint32_t m = 0; m < rows && !depends; ++m)
      if (!(m & (1u << j)) &&
          (((bits >> m) & 1) != ((bits >> (m | (1u << j))) & 1)))
        depends = true;
    if (depends) continue;
    std::uint64_t reduced = 0;
    std::uint32_t out_row = 0;
    for (std::uint32_t m = 0; m < rows; ++m)
      if (!(m & (1u << j))) reduced |= ((bits >> m) & 1) << out_row++;
    bits = reduced;
    ins.erase(ins.begin() + j);
  }
}

// The truth table of `sel ? a : b` over 3 inputs at positions (s, a, b).
std::uint64_t mux_tt(int s, int a, int b) {
  std::uint64_t bits = 0;
  for (std::uint32_t m = 0; m < 8; ++m)
    if (((m >> s) & 1) ? ((m >> a) & 1) : ((m >> b) & 1)) bits |= 1ull << m;
  return bits;
}

constexpr std::uint64_t kMaj3Tt = 0xE8;  // rows with >= 2 bits set

}  // namespace

GatePlan build_gate_plan(const Netlist& n) {
  n.validate();
  GatePlan plan;
  const int num_nets = n.num_nets();
  const int num_gates = n.num_gates();
  plan.num_nets = num_nets;

  plan.tt_bits.resize(num_gates);
  plan.gates.resize(num_gates);
  plan.in_start.resize(num_gates + 1, 0);

  std::vector<std::vector<NetId>> eval_ins(num_gates);
  for (int gi = 0; gi < num_gates; ++gi) {
    const Gate& g = n.gates()[gi];
    PackedGate& pg = plan.gates[gi];
    pg.idx = static_cast<std::uint32_t>(gi);
    pg.out = g.out;
    std::uint64_t bits = g.tt.bits() & tt_mask(static_cast<int>(g.ins.size()));
    std::vector<NetId> ins = g.ins;
    reduce_support(bits, ins);
    const int k = static_cast<int>(ins.size());
    const std::uint64_t mask = tt_mask(k);
    pg.k = static_cast<std::uint8_t>(k);
    if (k <= 4) {
      pg.tt = static_cast<std::uint32_t>(bits);
      for (int j = 0; j < k; ++j) pg.in[j] = ins[j];
    } else {
      // Wider functions evaluate through the CSR input list; the packed
      // operand slots (and so every specialised op) cannot hold them.
      pg.op = kOpShannonBig;
    }

    // Classify into a specialised evaluator; kOpShannon remains for the
    // (rare) functions that match no pattern.
    if (k > 4) {
      // kOpShannonBig, set above.
    } else if (k == 0) {
      pg.op = kOpConst;
      pg.inv = static_cast<std::uint8_t>(bits & 1);
    } else if (k == 1) {
      pg.op = kOpBuf;
      pg.inv = (bits == 1);  // tt 01b = ~x, 10b = x
    } else if (bits == parity_tt(k) || bits == (parity_tt(k) ^ mask)) {
      pg.op = kOpParity;
      pg.inv = (bits != parity_tt(k));
    } else if (std::popcount(bits) == 1 ||
               std::popcount(bits ^ mask) == 1) {
      // A single on-row r is AND_j (r_j ? x_j : ~x_j); a single off-row
      // is its De Morgan dual (invert the conjunction).
      pg.op = kOpAndPol;
      pg.inv = (std::popcount(bits) != 1);
      const int row = std::countr_zero(pg.inv ? bits ^ mask : bits);
      pg.pol = static_cast<std::uint8_t>(~row & ((1u << k) - 1));
    } else if (k == 3) {
      for (int s = 0; s < 3 && pg.op == kOpShannon; ++s) {
        const int a = (s + 1) % 3, b = (s + 2) % 3;
        const std::pair<int, int> orders[] = {{a, b}, {b, a}};
        for (const auto& [hi, lo] : orders) {
          const std::uint64_t want = mux_tt(s, hi, lo);
          if (bits == want || bits == (want ^ mask)) {
            pg.op = kOpMux;
            pg.inv = (bits != want);
            pg.in[0] = ins[s];
            pg.in[1] = ins[hi];
            pg.in[2] = ins[lo];
            break;
          }
        }
      }
      if (pg.op == kOpShannon &&
          (bits == kMaj3Tt || bits == (kMaj3Tt ^ mask))) {
        pg.op = kOpMaj;
        pg.inv = (bits != kMaj3Tt);
      }
    }

    plan.tt_bits[gi] = bits;
    eval_ins[gi] = std::move(ins);
    plan.in_start[gi + 1] = plan.in_start[gi] + k;
  }
  plan.in_nets.reserve(plan.in_start[num_gates]);
  for (int gi = 0; gi < num_gates; ++gi)
    for (NetId in : eval_ins[gi]) plan.in_nets.push_back(in);

  // Fanout CSR, deduped the same way as the scalar simulator (a gate
  // reading the same net twice re-evaluates once).
  std::vector<std::vector<int>> fanout(num_nets);
  for (int gi = 0; gi < num_gates; ++gi)
    for (NetId in : n.gates()[gi].ins) {
      auto& v = fanout[in];
      if (v.empty() || v.back() != gi) v.push_back(gi);
    }
  plan.fan_start.resize(num_nets + 1, 0);
  for (NetId net = 0; net < num_nets; ++net)
    plan.fan_start[net + 1] =
        plan.fan_start[net] + static_cast<int>(fanout[net].size());
  plan.fan_gates.reserve(plan.fan_start[num_nets]);
  for (NetId net = 0; net < num_nets; ++net)
    plan.fan_gates.insert(plan.fan_gates.end(), fanout[net].begin(),
                          fanout[net].end());

  plan.topo = n.topo_gates();
  return plan;
}

ConeEvaluator::ConeEvaluator(const Netlist& n,
                             const std::vector<int>& gate_ids) {
  in_start.push_back(0);
  for (int gi : gate_ids) {
    const Gate& g = n.gates()[gi];
    tt.push_back(g.tt.bits());
    k.push_back(static_cast<int>(g.ins.size()));
    out.push_back(g.out);
    for (NetId in : g.ins) in_nets.push_back(in);
    in_start.push_back(static_cast<int>(in_nets.size()));
  }
}

void ConeEvaluator::eval(std::vector<char>& value) const {
  for (std::size_t i = 0; i < tt.size(); ++i) {
    std::uint32_t m = 0;
    for (int j = 0; j < k[i]; ++j)
      m |= static_cast<std::uint32_t>(value[in_nets[in_start[i] + j]] & 1)
           << j;
    value[out[i]] = static_cast<char>((tt[i] >> m) & 1u);
  }
}

void check_frame_arity(const Netlist& n,
                       const std::vector<std::vector<char>>& frames) {
  for (const auto& frame : frames)
    HLP_REQUIRE(frame.size() == n.inputs().size(),
                "frame has " << frame.size() << " bits, netlist has "
                             << n.inputs().size() << " inputs");
}

}  // namespace detail

// ---- runtime dispatch over the word width --------------------------------
//
// The portable widths instantiate here at baseline ISA; avx2/avx512 route
// to the per-ISA TUs (bit_sim_isa.hpp). resolve_simd_mode() has already
// rejected modes the build or CPU cannot honour, so the unreachable
// HLP_CHECKs only guard against an enum/dispatch mismatch.

CycleSimStats simulate_frames_batched(
    const Netlist& n, const std::vector<std::vector<char>>& frames,
    SimdMode simd, SettleMode settle) {
  switch (resolve_simd_mode(simd)) {
    case SimdMode::kU64:
      return simulate_frames_batched_t<std::uint64_t>(n, frames, settle);
    case SimdMode::kX2:
      return simulate_frames_batched_t<SimdX2>(n, frames, settle);
    case SimdMode::kX4:
      return simulate_frames_batched_t<SimdX4>(n, frames, settle);
    case SimdMode::kX8:
      return simulate_frames_batched_t<SimdX8>(n, frames, settle);
    case SimdMode::kAvx2:
#if defined(HLP_HAVE_AVX2)
      return detail::simulate_frames_batched_avx2(n, frames, settle);
#else
      break;
#endif
    case SimdMode::kAvx512:
#if defined(HLP_HAVE_AVX512)
      return detail::simulate_frames_batched_avx512(n, frames, settle);
#else
      break;
#endif
    case SimdMode::kAuto:
      break;  // resolve_simd_mode never returns kAuto
  }
  HLP_CHECK(false, "unreachable SIMD dispatch (frames)");
}

CycleSimStats simulate_frames(const Netlist& n,
                              const std::vector<std::vector<char>>& frames,
                              SimEngine engine, SimdMode simd,
                              SettleMode settle) {
  return engine == SimEngine::kScalar
             ? simulate_frames(n, frames)
             : simulate_frames_batched(n, frames, simd, settle);
}

std::vector<CycleSimStats> simulate_batch(
    const Netlist& n, const std::vector<std::vector<std::vector<char>>>& runs,
    SimdMode simd, SettleMode settle) {
  switch (resolve_simd_mode(simd)) {
    case SimdMode::kU64:
      return simulate_batch_t<std::uint64_t>(n, runs, settle);
    case SimdMode::kX2:
      return simulate_batch_t<SimdX2>(n, runs, settle);
    case SimdMode::kX4:
      return simulate_batch_t<SimdX4>(n, runs, settle);
    case SimdMode::kX8:
      return simulate_batch_t<SimdX8>(n, runs, settle);
    case SimdMode::kAvx2:
#if defined(HLP_HAVE_AVX2)
      return detail::simulate_batch_avx2(n, runs, settle);
#else
      break;
#endif
    case SimdMode::kAvx512:
#if defined(HLP_HAVE_AVX512)
      return detail::simulate_batch_avx512(n, runs, settle);
#else
      break;
#endif
    case SimdMode::kAuto:
      break;
  }
  HLP_CHECK(false, "unreachable SIMD dispatch (batch)");
}

std::vector<CycleSimStats> simulate_runs(
    const Netlist& n, const std::vector<std::vector<std::vector<char>>>& runs,
    SimEngine engine, SimdMode simd, SettleMode settle) {
  if (engine == SimEngine::kBatched)
    return simulate_batch(n, runs, simd, settle);
  std::vector<CycleSimStats> results;
  results.reserve(runs.size());
  for (const auto& run : runs) results.push_back(simulate_frames(n, run));
  return results;
}

std::vector<CycleSimStats> simulate_batch(
    const std::vector<const Netlist*>& netlists,
    const std::vector<std::vector<char>>& frames, SimdMode simd,
    SettleMode settle) {
  for (const Netlist* n : netlists) {
    HLP_REQUIRE(n != nullptr, "null netlist in shared-stimulus batch");
    HLP_REQUIRE(n->inputs().size() == netlists.front()->inputs().size(),
                "shared-stimulus batch requires equal input counts");
  }
  std::vector<CycleSimStats> results;
  results.reserve(netlists.size());
  for (const Netlist* n : netlists)
    results.push_back(simulate_frames_batched(*n, frames, simd, settle));
  return results;
}

}  // namespace hlp
