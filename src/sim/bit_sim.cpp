#include "sim/bit_sim.hpp"

#include <algorithm>
#include <bit>

#include "common/error.hpp"

namespace hlp {

namespace {

std::uint64_t tt_mask(int k) {
  const std::uint32_t rows = 1u << k;
  return rows >= 64 ? ~0ull : (1ull << rows) - 1;
}

std::uint64_t parity_tt(int k) {
  std::uint64_t par = 0;
  for (std::uint32_t m = 0; m < (1u << k); ++m)
    if (std::popcount(m) & 1) par |= 1ull << m;
  return par;
}

// Drop inputs the function does not depend on, compressing the truth
// table. Evaluation over the reduced support is value-identical.
void reduce_support(std::uint64_t& bits, std::vector<NetId>& ins) {
  for (int j = static_cast<int>(ins.size()) - 1; j >= 0; --j) {
    const std::uint32_t rows = 1u << ins.size();
    bool depends = false;
    for (std::uint32_t m = 0; m < rows && !depends; ++m)
      if (!(m & (1u << j)) &&
          (((bits >> m) & 1) != ((bits >> (m | (1u << j))) & 1)))
        depends = true;
    if (depends) continue;
    std::uint64_t reduced = 0;
    std::uint32_t out_row = 0;
    for (std::uint32_t m = 0; m < rows; ++m)
      if (!(m & (1u << j))) reduced |= ((bits >> m) & 1) << out_row++;
    bits = reduced;
    ins.erase(ins.begin() + j);
  }
}

// The truth table of `sel ? a : b` over 3 inputs at positions (s, a, b).
std::uint64_t mux_tt(int s, int a, int b) {
  std::uint64_t bits = 0;
  for (std::uint32_t m = 0; m < 8; ++m)
    if (((m >> s) & 1) ? ((m >> a) & 1) : ((m >> b) & 1)) bits |= 1ull << m;
  return bits;
}

constexpr std::uint64_t kMaj3Tt = 0xE8;  // rows with >= 2 bits set

}  // namespace

BitSimulator::BitSimulator(const Netlist& n) : netlist_(&n) {
  n.validate();
  const int num_nets = n.num_nets();
  const int num_gates = n.num_gates();

  tt_bits_.resize(num_gates);
  gates_.resize(num_gates);
  in_start_.resize(num_gates + 1, 0);

  std::vector<std::vector<NetId>> eval_ins(num_gates);
  for (int gi = 0; gi < num_gates; ++gi) {
    const Gate& g = n.gates()[gi];
    PackedGate& pg = gates_[gi];
    pg.out = g.out;
    std::uint64_t bits = g.tt.bits() & tt_mask(static_cast<int>(g.ins.size()));
    std::vector<NetId> ins = g.ins;
    reduce_support(bits, ins);
    const int k = static_cast<int>(ins.size());
    const std::uint64_t mask = tt_mask(k);
    pg.k = static_cast<std::uint8_t>(k);
    if (k <= 4) {
      pg.tt = static_cast<std::uint32_t>(bits);
      for (int j = 0; j < k; ++j) pg.in[j] = ins[j];
    } else {
      // Wider functions evaluate through the CSR input list; the packed
      // operand slots (and so every specialised op) cannot hold them.
      pg.op = kOpShannonBig;
    }

    // Classify into a specialised evaluator; kOpShannon remains for the
    // (rare) functions that match no pattern.
    if (k > 4) {
      // kOpShannonBig, set above.
    } else if (k == 0) {
      pg.op = kOpConst;
      pg.inv = static_cast<std::uint8_t>(bits & 1);
    } else if (k == 1) {
      pg.op = kOpBuf;
      pg.inv = (bits == 1);  // tt 01b = ~x, 10b = x
    } else if (bits == parity_tt(k) || bits == (parity_tt(k) ^ mask)) {
      pg.op = kOpParity;
      pg.inv = (bits != parity_tt(k));
    } else if (std::popcount(bits) == 1 ||
               std::popcount(bits ^ mask) == 1) {
      // A single on-row r is AND_j (r_j ? x_j : ~x_j); a single off-row
      // is its De Morgan dual (invert the conjunction).
      pg.op = kOpAndPol;
      pg.inv = (std::popcount(bits) != 1);
      const int row = std::countr_zero(pg.inv ? bits ^ mask : bits);
      pg.pol = static_cast<std::uint8_t>(~row & ((1u << k) - 1));
    } else if (k == 3) {
      for (int s = 0; s < 3 && pg.op == kOpShannon; ++s) {
        const int a = (s + 1) % 3, b = (s + 2) % 3;
        const std::pair<int, int> orders[] = {{a, b}, {b, a}};
        for (const auto& [hi, lo] : orders) {
          const std::uint64_t want = mux_tt(s, hi, lo);
          if (bits == want || bits == (want ^ mask)) {
            pg.op = kOpMux;
            pg.inv = (bits != want);
            pg.in[0] = ins[s];
            pg.in[1] = ins[hi];
            pg.in[2] = ins[lo];
            break;
          }
        }
      }
      if (pg.op == kOpShannon &&
          (bits == kMaj3Tt || bits == (kMaj3Tt ^ mask))) {
        pg.op = kOpMaj;
        pg.inv = (bits != kMaj3Tt);
      }
    }

    tt_bits_[gi] = bits;
    eval_ins[gi] = std::move(ins);
    in_start_[gi + 1] = in_start_[gi] + k;
  }
  in_nets_.reserve(in_start_[num_gates]);
  for (int gi = 0; gi < num_gates; ++gi)
    for (NetId in : eval_ins[gi]) in_nets_.push_back(in);

  // Fanout CSR, deduped the same way as the scalar simulator (a gate
  // reading the same net twice re-evaluates once).
  std::vector<std::vector<int>> fanout(num_nets);
  for (int gi = 0; gi < num_gates; ++gi)
    for (NetId in : n.gates()[gi].ins) {
      auto& v = fanout[in];
      if (v.empty() || v.back() != gi) v.push_back(gi);
    }
  fan_start_.resize(num_nets + 1, 0);
  for (NetId net = 0; net < num_nets; ++net)
    fan_start_[net + 1] = fan_start_[net] + static_cast<int>(fanout[net].size());
  fan_gates_.reserve(fan_start_[num_nets]);
  for (NetId net = 0; net < num_nets; ++net)
    fan_gates_.insert(fan_gates_.end(), fanout[net].begin(), fanout[net].end());

  topo_ = n.topo_gates();
  value_.assign(num_nets, 0);
  staged_.assign(num_nets, 0);
  staged_dirty_.assign(num_nets, 0);
  gate_queued_.assign(num_gates, 0);
}

void BitSimulator::load_state(const std::vector<std::uint64_t>& words) {
  HLP_CHECK(words.size() == value_.size(), "state size mismatch");
  value_ = words;
}

void BitSimulator::stage_source(NetId n, std::uint64_t word) {
  HLP_CHECK(netlist_->is_comb_source(n),
            "net '" << netlist_->net_name(n) << "' is not a simulation source");
  staged_[n] = word;
  staged_dirty_[n] = 1;
}

std::uint64_t BitSimulator::eval_gate(int gi) const {
  const PackedGate& g = gates_[gi];
  // Datapaths are register files plus steering logic, so muxes dominate
  // every mapped netlist we simulate (~80-90% of gates): give them a
  // predicted direct branch instead of the switch's indirect jump.
  if (g.op == kOpMux) {
    const std::uint64_t s = value_[g.in[0]];
    const std::uint64_t w = (value_[g.in[1]] & s) | (value_[g.in[2]] & ~s);
    return g.inv ? ~w : w;
  }
  const std::uint64_t inv = g.inv ? ~0ull : 0ull;
  switch (g.op) {
    case kOpConst:
      return inv;
    case kOpBuf:
      return value_[g.in[0]] ^ inv;
    case kOpMaj: {
      const std::uint64_t a = value_[g.in[0]], b = value_[g.in[1]],
                          c = value_[g.in[2]];
      return ((a & b) | ((a | b) & c)) ^ inv;
    }
    case kOpParity: {
      std::uint64_t w = inv;
      for (int j = 0; j < g.k; ++j) w ^= value_[g.in[j]];
      return w;
    }
    case kOpAndPol: {
      std::uint64_t w = ~0ull;
      for (int j = 0; j < g.k; ++j)
        w &= value_[g.in[j]] ^
             (0 - static_cast<std::uint64_t>((g.pol >> j) & 1));
      return w ^ inv;
    }
    case kOpShannon: {
      // Shannon cofactor reduction of the reduced truth table, k <= 4:
      // fold one input per level over the 2^k constant rows.
      const int k = g.k;
      std::uint64_t cof[16];
      const std::uint32_t rows = 1u << k;
      for (std::uint32_t m = 0; m < rows; ++m)
        cof[m] = (g.tt >> m) & 1u ? ~0ull : 0ull;
      for (int j = k - 1; j >= 0; --j) {
        const std::uint64_t x = value_[g.in[j]];
        const std::uint32_t half = 1u << j;
        for (std::uint32_t i = 0; i < half; ++i)
          cof[i] = (cof[i] & ~x) | (cof[i + half] & x);
      }
      return cof[0];
    }
    default:
      break;
  }
  // k > 4 fallback: same fold over the CSR input list.
  const int k = g.k;
  std::uint64_t cof[64];
  const std::uint64_t bits = tt_bits_[gi];
  const std::uint32_t rows = 1u << k;
  for (std::uint32_t m = 0; m < rows; ++m)
    cof[m] = ((bits >> m) & 1u) ? ~0ull : 0ull;
  const int base = in_start_[gi];
  for (int j = k - 1; j >= 0; --j) {
    const std::uint64_t x = value_[in_nets_[base + j]];
    const std::uint32_t half = 1u << j;
    for (std::uint32_t i = 0; i < half; ++i)
      cof[i] = (cof[i] & ~x) | (cof[i + half] & x);
  }
  return cof[0];
}

void BitSimulator::settle_zero_delay() {
  const int num_nets = static_cast<int>(value_.size());
  for (NetId net = 0; net < num_nets; ++net) {
    if (!staged_dirty_[net]) continue;
    staged_dirty_[net] = 0;
    value_[net] = staged_[net];
  }
  for (int gi : topo_) value_[gates_[gi].out] = eval_gate(gi);
}

template <typename OnChange>
int BitSimulator::settle_events(OnChange&& on_change) {
  const int num_nets = static_cast<int>(value_.size());
  changed_.clear();
  for (NetId net = 0; net < num_nets; ++net) {
    if (!staged_dirty_[net]) continue;
    staged_dirty_[net] = 0;
    const std::uint64_t diff = value_[net] ^ staged_[net];
    if (diff) {
      value_[net] = staged_[net];
      on_change(net, diff);
      changed_.push_back(net);
    }
  }

  int steps = 0;
  const int max_steps = 4 * static_cast<int>(gates_.size()) + 8;
  while (!changed_.empty()) {
    ++steps;
    HLP_CHECK(steps <= max_steps,
              "bit-parallel simulation did not quiesce (oscillation?)");
    dirty_gates_.clear();
    for (NetId net : changed_)
      for (int fi = fan_start_[net]; fi < fan_start_[net + 1]; ++fi) {
        const int gi = fan_gates_[fi];
        if (!gate_queued_[gi]) {
          gate_queued_[gi] = 1;
          dirty_gates_.push_back(gi);
        }
      }
    // Evaluate with time-t words; outputs change at t+1 (two-pass, so the
    // lockstep lanes see exactly the scalar event schedule).
    new_words_.resize(dirty_gates_.size());
    for (std::size_t i = 0; i < dirty_gates_.size(); ++i)
      new_words_[i] = eval_gate(dirty_gates_[i]);
    next_changed_.clear();
    for (std::size_t i = 0; i < dirty_gates_.size(); ++i) {
      const int gi = dirty_gates_[i];
      gate_queued_[gi] = 0;
      const NetId out = gates_[gi].out;
      const std::uint64_t diff = value_[out] ^ new_words_[i];
      if (diff) {
        value_[out] = new_words_[i];
        on_change(out, diff);
        next_changed_.push_back(out);
      }
    }
    std::swap(changed_, next_changed_);
  }
  return steps;
}

int BitSimulator::settle(std::vector<std::uint64_t>* toggles_total,
                         std::vector<std::vector<std::uint64_t>>* per_lane) {
  if (per_lane) {
    return settle_events([&](NetId net, std::uint64_t diff) {
      if (toggles_total)
        (*toggles_total)[net] += static_cast<std::uint64_t>(std::popcount(diff));
      while (diff) {
        const int lane = std::countr_zero(diff);
        diff &= diff - 1;
        ++(*per_lane)[lane][net];
      }
    });
  }
  if (toggles_total) {
    return settle_events([&](NetId net, std::uint64_t diff) {
      (*toggles_total)[net] += static_cast<std::uint64_t>(std::popcount(diff));
    });
  }
  return settle_events([](NetId, std::uint64_t) {});
}

int BitSimulator::settle_batch(LaneCounters& toggles,
                               std::vector<NetId>& touched,
                               std::vector<char>& touched_flag,
                               std::vector<std::uint64_t>& before) {
  return settle_events([&](NetId net, std::uint64_t diff) {
    toggles.add(net, diff);
    if (!touched_flag[net]) {
      touched_flag[net] = 1;
      // value_[net] was already updated; undo the diff for the pre-settle
      // word (the first event sees the pre-edge settled value).
      before[net] = value_[net] ^ diff;
      touched.push_back(net);
    }
  });
}

namespace {

// Scalar zero-delay gate evaluation for the phase-1 latch recurrence.
struct ConeEvaluator {
  std::vector<std::uint64_t> tt;
  std::vector<int> k;
  std::vector<NetId> out;
  std::vector<int> in_start;
  std::vector<NetId> in_nets;

  explicit ConeEvaluator(const Netlist& n, const std::vector<int>& gate_ids) {
    in_start.push_back(0);
    for (int gi : gate_ids) {
      const Gate& g = n.gates()[gi];
      tt.push_back(g.tt.bits());
      k.push_back(static_cast<int>(g.ins.size()));
      out.push_back(g.out);
      for (NetId in : g.ins) in_nets.push_back(in);
      in_start.push_back(static_cast<int>(in_nets.size()));
    }
  }

  void eval(std::vector<char>& value) const {
    for (std::size_t i = 0; i < tt.size(); ++i) {
      std::uint32_t m = 0;
      for (int j = 0; j < k[i]; ++j)
        m |= static_cast<std::uint32_t>(value[in_nets[in_start[i] + j]] & 1)
             << j;
      value[out[i]] = static_cast<char>((tt[i] >> m) & 1u);
    }
  }
};

void check_frame_arity(const Netlist& n,
                       const std::vector<std::vector<char>>& frames) {
  for (const auto& frame : frames)
    HLP_REQUIRE(frame.size() == n.inputs().size(),
                "frame has " << frame.size() << " bits, netlist has "
                             << n.inputs().size() << " inputs");
}

}  // namespace

CycleSimStats simulate_frames_batched(
    const Netlist& n, const std::vector<std::vector<char>>& frames) {
  check_frame_arity(n, frames);
  const int num_nets = n.num_nets();
  CycleSimStats stats;
  stats.num_cycles = frames.size();
  stats.toggles.assign(num_nets, 0);
  const std::size_t T = frames.size();
  if (T == 0) return stats;

  BitSimulator sim(n);
  // Initial settled state s0 (all sources 0): one zero-delay word pass with
  // every lane identical, then read lane 0.
  sim.settle_zero_delay();
  std::vector<char> sval(num_nets);
  for (NetId net = 0; net < num_nets; ++net)
    sval[net] = static_cast<char>(sim.word(net) & 1u);
  const std::vector<char> s0 = sval;

  const auto& pis = n.inputs();
  const auto& latches = n.latches();
  std::vector<NetId> sources(pis);
  for (const auto& l : latches) sources.push_back(l.q);

  // Phase 1 — scalar latch-state recurrence. Only the fanin cone of the
  // latch D pins must be evaluated per cycle; everything else is replayed
  // word-parallel in phase 2. Source values per cycle are packed into one
  // bit lane per cycle (64 cycles per word).
  const std::size_t blocks = (T + 63) / 64;
  std::vector<std::vector<std::uint64_t>> packed(
      sources.size(), std::vector<std::uint64_t>(blocks, 0));
  std::vector<char> need(num_nets, 0);
  for (const auto& l : latches) need[l.d] = 1;
  std::vector<int> cone;
  const std::vector<int> topo = n.topo_gates();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const Gate& g = n.gates()[*it];
    if (!need[g.out]) continue;
    cone.push_back(*it);
    for (NetId in : g.ins) need[in] = 1;
  }
  std::reverse(cone.begin(), cone.end());
  const ConeEvaluator cone_eval(n, cone);

  std::vector<char> qv(latches.size());
  for (std::size_t t = 0; t < T; ++t) {
    // Clock edge: every Q samples its D from the previous settled state,
    // simultaneously (matching UnitDelaySimulator::clock_edge).
    for (std::size_t i = 0; i < latches.size(); ++i) qv[i] = sval[latches[i].d];
    for (std::size_t j = 0; j < pis.size(); ++j)
      sval[pis[j]] = frames[t][j] ? 1 : 0;
    for (std::size_t i = 0; i < latches.size(); ++i) sval[latches[i].q] = qv[i];
    cone_eval.eval(sval);
    for (std::size_t s = 0; s < sources.size(); ++s)
      packed[s][t >> 6] |=
          static_cast<std::uint64_t>(sval[sources[s]] & 1) << (t & 63);
  }

  // Phase 2 — word-parallel replay, 64 consecutive cycles per block. Lane l
  // of block b is cycle b*64+l: a zero-delay pass over the source words
  // yields every settled state at once; the initial state of each lane is
  // the previous lane's settled state (shifted in, with a carry bit across
  // blocks); a single event-driven unit-delay settle then reproduces all 64
  // transients, glitches included.
  std::vector<std::uint64_t> settled(num_nets), init(num_nets),
      carry(num_nets, 0), src_words(sources.size());
  std::uint64_t functional = 0;
  for (std::size_t b = 0; b < blocks; ++b) {
    const int L = static_cast<int>(std::min<std::size_t>(64, T - b * 64));
    const std::uint64_t lowmask = L == 64 ? ~0ull : (1ull << L) - 1;
    for (std::size_t s = 0; s < sources.size(); ++s) {
      std::uint64_t w = packed[s][b];
      if (L < 64) {
        // Freeze inactive lanes by replicating the last active cycle's
        // value: no source change, no activity, no miscounts.
        if ((w >> (L - 1)) & 1)
          w |= ~lowmask;
        else
          w &= lowmask;
      }
      src_words[s] = w;
      sim.stage_source(sources[s], w);
    }
    sim.settle_zero_delay();
    std::copy(sim.state().begin(), sim.state().end(), settled.begin());
    for (NetId net = 0; net < num_nets; ++net) {
      init[net] = (settled[net] << 1) |
                  (b == 0 ? static_cast<std::uint64_t>(s0[net]) : carry[net]);
      functional += static_cast<std::uint64_t>(
          std::popcount(init[net] ^ settled[net]));
      carry[net] = (settled[net] >> (L - 1)) & 1u;
    }
    sim.load_state(init);
    for (std::size_t s = 0; s < sources.size(); ++s)
      sim.stage_source(sources[s], src_words[s]);
    sim.settle(&stats.toggles);
  }

  stats.functional_transitions = functional;
  for (auto v : stats.toggles) stats.total_transitions += v;
  return stats;
}

CycleSimStats simulate_frames(const Netlist& n,
                              const std::vector<std::vector<char>>& frames,
                              SimEngine engine) {
  return engine == SimEngine::kScalar ? simulate_frames(n, frames)
                                      : simulate_frames_batched(n, frames);
}

std::vector<CycleSimStats> simulate_batch(
    const Netlist& n,
    const std::vector<std::vector<std::vector<char>>>& runs) {
  const int num_nets = n.num_nets();
  for (const auto& run : runs) check_frame_arity(n, run);
  std::vector<CycleSimStats> results(runs.size());
  if (runs.empty()) return results;

  BitSimulator sim(n);
  const auto& pis = n.inputs();
  const auto& latches = n.latches();

  // Per-group scratch: bit-sliced counters keep every piece of per-lane
  // accounting word-parallel — no loop in this function scales with the
  // number of lanes that toggled.
  std::vector<std::uint64_t> pi_bits(pis.size());
  std::vector<NetId> touched;
  std::vector<char> touched_flag(num_nets, 0);
  std::vector<std::uint64_t> before(num_nets);
  touched.reserve(num_nets);

  for (std::size_t g0 = 0; g0 < runs.size(); g0 += BitSimulator::kLanes) {
    const int lanes = static_cast<int>(
        std::min<std::size_t>(BitSimulator::kLanes, runs.size() - g0));
    // Reset to the all-zero-source settled state in every lane.
    for (NetId pi : pis) sim.stage_source(pi, 0);
    for (const auto& l : latches) sim.stage_source(l.q, 0);
    sim.settle_zero_delay();

    std::size_t t_max = 0;
    for (int l = 0; l < lanes; ++l)
      t_max = std::max(t_max, runs[g0 + l].size());
    LaneCounters toggles(num_nets);
    LaneCounters fn(1);

    for (std::size_t t = 0; t < t_max; ++t) {
      std::uint64_t active = 0;
      for (int l = 0; l < lanes; ++l)
        if (t < runs[g0 + l].size()) active |= 1ull << l;
      // Stage everything from the pre-edge state before applying anything:
      // primary inputs for active lanes (finished lanes are frozen by
      // re-staging their current value), then the clock edge Q <- D.
      // Lane-major gather: each lane's frame row is contiguous.
      std::fill(pi_bits.begin(), pi_bits.end(), 0);
      for (int l = 0; l < lanes; ++l) {
        if (t >= runs[g0 + l].size()) continue;
        const char* row = runs[g0 + l][t].data();
        // Branchless: frame bits are random, so a conditional OR would
        // mispredict half the time.
        for (std::size_t j = 0; j < pis.size(); ++j)
          pi_bits[j] |= static_cast<std::uint64_t>(row[j] & 1) << l;
      }
      for (std::size_t j = 0; j < pis.size(); ++j)
        sim.stage_source(pis[j],
                         (sim.word(pis[j]) & ~active) | (pi_bits[j] & active));
      for (const auto& l : latches)
        sim.stage_source(
            l.q, (sim.word(l.d) & active) | (sim.word(l.q) & ~active));
      sim.settle_batch(toggles, touched, touched_flag, before);
      // Functional = settled value changed across the cycle; only nets
      // that saw an event this cycle can have changed.
      for (const NetId net : touched) {
        touched_flag[net] = 0;
        fn.add(0, before[net] ^ sim.word(net));
      }
      touched.clear();
    }

    for (int l = 0; l < lanes; ++l) {
      CycleSimStats& st = results[g0 + l];
      st.num_cycles = runs[g0 + l].size();
      st.toggles.resize(num_nets);
      for (NetId net = 0; net < num_nets; ++net)
        st.toggles[net] = toggles.count(net, l);
      st.functional_transitions = fn.count(0, l);
      for (auto v : st.toggles) st.total_transitions += v;
    }
  }
  return results;
}

std::vector<CycleSimStats> simulate_runs(
    const Netlist& n, const std::vector<std::vector<std::vector<char>>>& runs,
    SimEngine engine) {
  if (engine == SimEngine::kBatched) return simulate_batch(n, runs);
  std::vector<CycleSimStats> results;
  results.reserve(runs.size());
  for (const auto& run : runs) results.push_back(simulate_frames(n, run));
  return results;
}

std::vector<CycleSimStats> simulate_batch(
    const std::vector<const Netlist*>& netlists,
    const std::vector<std::vector<char>>& frames) {
  for (const Netlist* n : netlists) {
    HLP_REQUIRE(n != nullptr, "null netlist in shared-stimulus batch");
    HLP_REQUIRE(n->inputs().size() == netlists.front()->inputs().size(),
                "shared-stimulus batch requires equal input counts");
  }
  std::vector<CycleSimStats> results;
  results.reserve(netlists.size());
  for (const Netlist* n : netlists)
    results.push_back(simulate_frames_batched(*n, frames));
  return results;
}

}  // namespace hlp
