#include "sim/bit_sim.hpp"

#include <algorithm>
#include <bit>

#include "common/error.hpp"

namespace hlp {

BitSimulator::BitSimulator(const Netlist& n) : netlist_(&n) {
  n.validate();
  const int num_nets = n.num_nets();
  const int num_gates = n.num_gates();

  tt_bits_.resize(num_gates);
  tt_ins_.resize(num_gates);
  gate_out_.resize(num_gates);
  in_start_.resize(num_gates + 1, 0);
  for (int gi = 0; gi < num_gates; ++gi) {
    const Gate& g = n.gates()[gi];
    tt_bits_[gi] = g.tt.bits();
    tt_ins_[gi] = static_cast<int>(g.ins.size());
    gate_out_[gi] = g.out;
    in_start_[gi + 1] = in_start_[gi] + static_cast<int>(g.ins.size());
  }
  in_nets_.reserve(in_start_[num_gates]);
  for (int gi = 0; gi < num_gates; ++gi)
    for (NetId in : n.gates()[gi].ins) in_nets_.push_back(in);

  // Fanout CSR, deduped the same way as the scalar simulator (a gate
  // reading the same net twice re-evaluates once).
  std::vector<std::vector<int>> fanout(num_nets);
  for (int gi = 0; gi < num_gates; ++gi)
    for (NetId in : n.gates()[gi].ins) {
      auto& v = fanout[in];
      if (v.empty() || v.back() != gi) v.push_back(gi);
    }
  fan_start_.resize(num_nets + 1, 0);
  for (NetId net = 0; net < num_nets; ++net)
    fan_start_[net + 1] = fan_start_[net] + static_cast<int>(fanout[net].size());
  fan_gates_.reserve(fan_start_[num_nets]);
  for (NetId net = 0; net < num_nets; ++net)
    fan_gates_.insert(fan_gates_.end(), fanout[net].begin(), fanout[net].end());

  topo_ = n.topo_gates();
  value_.assign(num_nets, 0);
  staged_.assign(num_nets, 0);
  staged_dirty_.assign(num_nets, 0);
  gate_queued_.assign(num_gates, 0);
}

void BitSimulator::load_state(const std::vector<std::uint64_t>& words) {
  HLP_CHECK(words.size() == value_.size(), "state size mismatch");
  value_ = words;
}

void BitSimulator::stage_source(NetId n, std::uint64_t word) {
  HLP_CHECK(netlist_->is_comb_source(n),
            "net '" << netlist_->net_name(n) << "' is not a simulation source");
  staged_[n] = word;
  staged_dirty_[n] = 1;
}

std::uint64_t BitSimulator::eval_gate(int gi) const {
  const int k = tt_ins_[gi];
  if (k == 0) return (tt_bits_[gi] & 1u) ? ~0ull : 0ull;
  // Shannon cofactor reduction: start from the 2^k constant rows of the
  // truth table and fold one input per level; ~3*(2^k - 1) word ops cover
  // all 64 lanes.
  std::uint64_t cof[64];
  const std::uint64_t bits = tt_bits_[gi];
  const std::uint32_t rows = 1u << k;
  for (std::uint32_t m = 0; m < rows; ++m)
    cof[m] = ((bits >> m) & 1u) ? ~0ull : 0ull;
  const int base = in_start_[gi];
  for (int j = k - 1; j >= 0; --j) {
    const std::uint64_t x = value_[in_nets_[base + j]];
    const std::uint32_t half = 1u << j;
    for (std::uint32_t i = 0; i < half; ++i)
      cof[i] = (cof[i] & ~x) | (cof[i + half] & x);
  }
  return cof[0];
}

void BitSimulator::settle_zero_delay() {
  const int num_nets = static_cast<int>(value_.size());
  for (NetId net = 0; net < num_nets; ++net) {
    if (!staged_dirty_[net]) continue;
    staged_dirty_[net] = 0;
    value_[net] = staged_[net];
  }
  for (int gi : topo_) value_[gate_out_[gi]] = eval_gate(gi);
}

template <typename OnChange>
int BitSimulator::settle_events(OnChange&& on_change) {
  const int num_nets = static_cast<int>(value_.size());
  changed_.clear();
  for (NetId net = 0; net < num_nets; ++net) {
    if (!staged_dirty_[net]) continue;
    staged_dirty_[net] = 0;
    const std::uint64_t diff = value_[net] ^ staged_[net];
    if (diff) {
      value_[net] = staged_[net];
      on_change(net, diff);
      changed_.push_back(net);
    }
  }

  int steps = 0;
  const int max_steps = 4 * static_cast<int>(gate_out_.size()) + 8;
  while (!changed_.empty()) {
    ++steps;
    HLP_CHECK(steps <= max_steps,
              "bit-parallel simulation did not quiesce (oscillation?)");
    dirty_gates_.clear();
    for (NetId net : changed_)
      for (int fi = fan_start_[net]; fi < fan_start_[net + 1]; ++fi) {
        const int gi = fan_gates_[fi];
        if (!gate_queued_[gi]) {
          gate_queued_[gi] = 1;
          dirty_gates_.push_back(gi);
        }
      }
    // Evaluate with time-t words; outputs change at t+1 (two-pass, so the
    // lockstep lanes see exactly the scalar event schedule).
    new_words_.resize(dirty_gates_.size());
    for (std::size_t i = 0; i < dirty_gates_.size(); ++i)
      new_words_[i] = eval_gate(dirty_gates_[i]);
    next_changed_.clear();
    for (std::size_t i = 0; i < dirty_gates_.size(); ++i) {
      const int gi = dirty_gates_[i];
      gate_queued_[gi] = 0;
      const NetId out = gate_out_[gi];
      const std::uint64_t diff = value_[out] ^ new_words_[i];
      if (diff) {
        value_[out] = new_words_[i];
        on_change(out, diff);
        next_changed_.push_back(out);
      }
    }
    std::swap(changed_, next_changed_);
  }
  return steps;
}

int BitSimulator::settle(std::vector<std::uint64_t>* toggles_total,
                         std::vector<std::vector<std::uint64_t>>* per_lane) {
  if (per_lane) {
    return settle_events([&](NetId net, std::uint64_t diff) {
      if (toggles_total)
        (*toggles_total)[net] += static_cast<std::uint64_t>(std::popcount(diff));
      while (diff) {
        const int lane = std::countr_zero(diff);
        diff &= diff - 1;
        ++(*per_lane)[lane][net];
      }
    });
  }
  if (toggles_total) {
    return settle_events([&](NetId net, std::uint64_t diff) {
      (*toggles_total)[net] += static_cast<std::uint64_t>(std::popcount(diff));
    });
  }
  return settle_events([](NetId, std::uint64_t) {});
}

namespace {

// Scalar zero-delay gate evaluation for the phase-1 latch recurrence.
struct ConeEvaluator {
  std::vector<std::uint64_t> tt;
  std::vector<int> k;
  std::vector<NetId> out;
  std::vector<int> in_start;
  std::vector<NetId> in_nets;

  explicit ConeEvaluator(const Netlist& n, const std::vector<int>& gate_ids) {
    in_start.push_back(0);
    for (int gi : gate_ids) {
      const Gate& g = n.gates()[gi];
      tt.push_back(g.tt.bits());
      k.push_back(static_cast<int>(g.ins.size()));
      out.push_back(g.out);
      for (NetId in : g.ins) in_nets.push_back(in);
      in_start.push_back(static_cast<int>(in_nets.size()));
    }
  }

  void eval(std::vector<char>& value) const {
    for (std::size_t i = 0; i < tt.size(); ++i) {
      std::uint32_t m = 0;
      for (int j = 0; j < k[i]; ++j)
        m |= static_cast<std::uint32_t>(value[in_nets[in_start[i] + j]] & 1)
             << j;
      value[out[i]] = static_cast<char>((tt[i] >> m) & 1u);
    }
  }
};

void check_frame_arity(const Netlist& n,
                       const std::vector<std::vector<char>>& frames) {
  for (const auto& frame : frames)
    HLP_REQUIRE(frame.size() == n.inputs().size(),
                "frame has " << frame.size() << " bits, netlist has "
                             << n.inputs().size() << " inputs");
}

}  // namespace

CycleSimStats simulate_frames_batched(
    const Netlist& n, const std::vector<std::vector<char>>& frames) {
  check_frame_arity(n, frames);
  const int num_nets = n.num_nets();
  CycleSimStats stats;
  stats.num_cycles = frames.size();
  stats.toggles.assign(num_nets, 0);
  const std::size_t T = frames.size();
  if (T == 0) return stats;

  BitSimulator sim(n);
  // Initial settled state s0 (all sources 0): one zero-delay word pass with
  // every lane identical, then read lane 0.
  sim.settle_zero_delay();
  std::vector<char> sval(num_nets);
  for (NetId net = 0; net < num_nets; ++net)
    sval[net] = static_cast<char>(sim.word(net) & 1u);
  const std::vector<char> s0 = sval;

  const auto& pis = n.inputs();
  const auto& latches = n.latches();
  std::vector<NetId> sources(pis);
  for (const auto& l : latches) sources.push_back(l.q);

  // Phase 1 — scalar latch-state recurrence. Only the fanin cone of the
  // latch D pins must be evaluated per cycle; everything else is replayed
  // word-parallel in phase 2. Source values per cycle are packed into one
  // bit lane per cycle (64 cycles per word).
  const std::size_t blocks = (T + 63) / 64;
  std::vector<std::vector<std::uint64_t>> packed(
      sources.size(), std::vector<std::uint64_t>(blocks, 0));
  std::vector<char> need(num_nets, 0);
  for (const auto& l : latches) need[l.d] = 1;
  std::vector<int> cone;
  const std::vector<int> topo = n.topo_gates();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const Gate& g = n.gates()[*it];
    if (!need[g.out]) continue;
    cone.push_back(*it);
    for (NetId in : g.ins) need[in] = 1;
  }
  std::reverse(cone.begin(), cone.end());
  const ConeEvaluator cone_eval(n, cone);

  std::vector<char> qv(latches.size());
  for (std::size_t t = 0; t < T; ++t) {
    // Clock edge: every Q samples its D from the previous settled state,
    // simultaneously (matching UnitDelaySimulator::clock_edge).
    for (std::size_t i = 0; i < latches.size(); ++i) qv[i] = sval[latches[i].d];
    for (std::size_t j = 0; j < pis.size(); ++j)
      sval[pis[j]] = frames[t][j] ? 1 : 0;
    for (std::size_t i = 0; i < latches.size(); ++i) sval[latches[i].q] = qv[i];
    cone_eval.eval(sval);
    for (std::size_t s = 0; s < sources.size(); ++s)
      packed[s][t >> 6] |=
          static_cast<std::uint64_t>(sval[sources[s]] & 1) << (t & 63);
  }

  // Phase 2 — word-parallel replay, 64 consecutive cycles per block. Lane l
  // of block b is cycle b*64+l: a zero-delay pass over the source words
  // yields every settled state at once; the initial state of each lane is
  // the previous lane's settled state (shifted in, with a carry bit across
  // blocks); a single event-driven unit-delay settle then reproduces all 64
  // transients, glitches included.
  std::vector<std::uint64_t> settled(num_nets), init(num_nets),
      carry(num_nets, 0), src_words(sources.size());
  std::uint64_t functional = 0;
  for (std::size_t b = 0; b < blocks; ++b) {
    const int L = static_cast<int>(std::min<std::size_t>(64, T - b * 64));
    const std::uint64_t lowmask = L == 64 ? ~0ull : (1ull << L) - 1;
    for (std::size_t s = 0; s < sources.size(); ++s) {
      std::uint64_t w = packed[s][b];
      if (L < 64) {
        // Freeze inactive lanes by replicating the last active cycle's
        // value: no source change, no activity, no miscounts.
        if ((w >> (L - 1)) & 1)
          w |= ~lowmask;
        else
          w &= lowmask;
      }
      src_words[s] = w;
      sim.stage_source(sources[s], w);
    }
    sim.settle_zero_delay();
    std::copy(sim.state().begin(), sim.state().end(), settled.begin());
    for (NetId net = 0; net < num_nets; ++net) {
      init[net] = (settled[net] << 1) |
                  (b == 0 ? static_cast<std::uint64_t>(s0[net]) : carry[net]);
      functional += static_cast<std::uint64_t>(
          std::popcount(init[net] ^ settled[net]));
      carry[net] = (settled[net] >> (L - 1)) & 1u;
    }
    sim.load_state(init);
    for (std::size_t s = 0; s < sources.size(); ++s)
      sim.stage_source(sources[s], src_words[s]);
    sim.settle(&stats.toggles);
  }

  stats.functional_transitions = functional;
  for (auto v : stats.toggles) stats.total_transitions += v;
  return stats;
}

CycleSimStats simulate_frames(const Netlist& n,
                              const std::vector<std::vector<char>>& frames,
                              SimEngine engine) {
  return engine == SimEngine::kScalar ? simulate_frames(n, frames)
                                      : simulate_frames_batched(n, frames);
}

std::vector<CycleSimStats> simulate_batch(
    const Netlist& n,
    const std::vector<std::vector<std::vector<char>>>& runs) {
  const int num_nets = n.num_nets();
  for (const auto& run : runs) check_frame_arity(n, run);
  std::vector<CycleSimStats> results(runs.size());
  if (runs.empty()) return results;

  BitSimulator sim(n);
  const auto& pis = n.inputs();
  const auto& latches = n.latches();

  for (std::size_t g0 = 0; g0 < runs.size(); g0 += BitSimulator::kLanes) {
    const int lanes = static_cast<int>(
        std::min<std::size_t>(BitSimulator::kLanes, runs.size() - g0));
    // Reset to the all-zero-source settled state in every lane.
    for (NetId pi : pis) sim.stage_source(pi, 0);
    for (const auto& l : latches) sim.stage_source(l.q, 0);
    sim.settle_zero_delay();

    std::size_t t_max = 0;
    for (int l = 0; l < lanes; ++l)
      t_max = std::max(t_max, runs[g0 + l].size());
    std::vector<std::vector<std::uint64_t>> lane_toggles(
        lanes, std::vector<std::uint64_t>(num_nets, 0));
    std::vector<std::uint64_t> fn(lanes, 0);
    std::vector<std::uint64_t> before(num_nets);

    for (std::size_t t = 0; t < t_max; ++t) {
      std::uint64_t active = 0;
      for (int l = 0; l < lanes; ++l)
        if (t < runs[g0 + l].size()) active |= 1ull << l;
      std::copy(sim.state().begin(), sim.state().end(), before.begin());
      // Stage everything from the pre-edge state before applying anything:
      // primary inputs for active lanes (finished lanes are frozen by
      // re-staging their current value), then the clock edge Q <- D.
      for (std::size_t j = 0; j < pis.size(); ++j) {
        std::uint64_t bits = 0;
        for (int l = 0; l < lanes; ++l)
          if ((active >> l) & 1 && runs[g0 + l][t][j]) bits |= 1ull << l;
        sim.stage_source(pis[j],
                         (sim.word(pis[j]) & ~active) | (bits & active));
      }
      for (const auto& l : latches)
        sim.stage_source(
            l.q, (sim.word(l.d) & active) | (sim.word(l.q) & ~active));
      sim.settle(nullptr, &lane_toggles);
      for (NetId net = 0; net < num_nets; ++net) {
        std::uint64_t diff = before[net] ^ sim.word(net);
        while (diff) {
          const int lane = std::countr_zero(diff);
          diff &= diff - 1;
          ++fn[lane];
        }
      }
    }

    for (int l = 0; l < lanes; ++l) {
      CycleSimStats& st = results[g0 + l];
      st.num_cycles = runs[g0 + l].size();
      st.toggles = std::move(lane_toggles[l]);
      st.functional_transitions = fn[l];
      for (auto v : st.toggles) st.total_transitions += v;
    }
  }
  return results;
}

std::vector<CycleSimStats> simulate_batch(
    const std::vector<const Netlist*>& netlists,
    const std::vector<std::vector<char>>& frames) {
  for (const Netlist* n : netlists) {
    HLP_REQUIRE(n != nullptr, "null netlist in shared-stimulus batch");
    HLP_REQUIRE(n->inputs().size() == netlists.front()->inputs().size(),
                "shared-stimulus batch requires equal input counts");
  }
  std::vector<CycleSimStats> results;
  results.reserve(netlists.size());
  for (const Netlist* n : netlists)
    results.push_back(simulate_frames_batched(*n, frames));
  return results;
}

}  // namespace hlp
