#include "sim/levelize.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "sim/bit_sim_engine.hpp"

namespace hlp {

namespace detail {

Levelization build_levelization(const GatePlan& plan) {
  const int num_gates = static_cast<int>(plan.gates.size());
  // Rank over the *support-reduced* inputs (the CSR list covers every
  // gate, not just k > 4): the settle only ever reads those, so a net a
  // gate's function provably ignores must not inflate its level.
  std::vector<int> net_level(plan.num_nets, 0);
  std::vector<int> gate_level(num_gates, 1);
  int max_level = 0;
  for (const int gi : plan.topo) {
    const PackedGate& g = plan.gates[gi];
    const int base = plan.in_start[gi];
    int lv = 0;
    for (int j = 0; j < g.k; ++j)
      lv = std::max(lv, net_level[plan.in_nets[base + j]]);
    gate_level[gi] = lv + 1;
    net_level[g.out] = lv + 1;
    max_level = std::max(max_level, lv + 1);
  }

  // Counting sort into level-major order; within a level the original
  // gate order is kept, so the layout is deterministic.
  Levelization lev;
  lev.max_level = max_level;
  std::vector<int> count(max_level + 2, 0);
  for (int gi = 0; gi < num_gates; ++gi) ++count[gate_level[gi]];
  lev.level_start.assign(max_level + 2, 0);
  for (int l = 1; l <= max_level + 1; ++l)
    lev.level_start[l] = lev.level_start[l - 1] + count[l - 1];
  lev.gates.resize(num_gates);
  std::vector<int> cursor(lev.level_start);
  for (int gi = 0; gi < num_gates; ++gi)
    lev.gates[cursor[gate_level[gi]]++] = plan.gates[gi];
  return lev;
}

}  // namespace detail

int levelized_logic_depth(const Netlist& n) {
  const auto& gates = n.gates();
  const int num_gates = n.num_gates();
  // Timing ranks over the *original* gate fanins — a physical LUT input
  // pin costs a routing hop whether or not the boolean function collapses
  // it — which is exactly what net_levels()/depth() measure.
  std::vector<int> driver(n.num_nets(), -1);
  for (int gi = 0; gi < num_gates; ++gi) driver[gates[gi].out] = gi;
  std::vector<int> pending(num_gates, 0);
  std::vector<std::vector<int>> dependents(num_gates);
  for (int gi = 0; gi < num_gates; ++gi)
    for (const NetId in : gates[gi].ins) {
      const int d = driver[in];
      if (d >= 0) {
        ++pending[gi];
        dependents[d].push_back(gi);
      }
    }

  // Arrival sweep: wavefront t holds exactly the gates whose every fanin
  // arrived by t-1 (sources arrive at 0), so the number of non-empty
  // wavefronts is the critical depth in LUT levels.
  std::vector<int> wave, next;
  for (int gi = 0; gi < num_gates; ++gi)
    if (pending[gi] == 0) wave.push_back(gi);
  int depth = 0, ranked = 0;
  while (!wave.empty()) {
    ++depth;
    ranked += static_cast<int>(wave.size());
    next.clear();
    for (const int gi : wave)
      for (const int dep : dependents[gi])
        if (--pending[dep] == 0) next.push_back(dep);
    wave.swap(next);
  }
  HLP_CHECK(ranked == num_gates,
            "combinational cycle detected (" << ranked << " of " << num_gates
                                             << " gates ranked)");
  return depth;
}

double levelized_clock_period_ns(const Netlist& n, const TimingModel& model) {
  const int d = levelized_logic_depth(n);
  // Identical expression to clock_period_ns over an identical integer
  // depth: the doubles match bit for bit, which stage caches and the
  // distributed same_outcome comparison rely on.
  return d * (model.lut_delay_ns + model.net_delay_ns) + model.reg_overhead_ns;
}

}  // namespace hlp
