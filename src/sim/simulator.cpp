#include "sim/simulator.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hlp {

UnitDelaySimulator::UnitDelaySimulator(const Netlist& n) : netlist_(n) {
  n.validate();
  value_.assign(n.num_nets(), 0);
  staged_.assign(n.num_nets(), 0);
  staged_dirty_.assign(n.num_nets(), 0);
  toggles_.assign(n.num_nets(), 0);
  fanout_gates_.resize(n.num_nets());
  for (int gi = 0; gi < n.num_gates(); ++gi)
    for (NetId in : n.gates()[gi].ins) {
      // Dedupe: a gate reading the same net twice re-evaluates once.
      auto& v = fanout_gates_[in];
      if (v.empty() || v.back() != gi) v.push_back(gi);
    }
  topo_ = n.topo_gates();
  topo_pos_of_gate_.assign(n.num_gates(), 0);
  for (std::size_t i = 0; i < topo_.size(); ++i)
    topo_pos_of_gate_[topo_[i]] = static_cast<int>(i);
  recompute_all();
}

void UnitDelaySimulator::reset() {
  std::fill(value_.begin(), value_.end(), 0);
  std::fill(staged_.begin(), staged_.end(), 0);
  std::fill(staged_dirty_.begin(), staged_dirty_.end(), 0);
  clear_toggles();
  recompute_all();
}

void UnitDelaySimulator::set_input(NetId pi, bool v) {
  HLP_CHECK(netlist_.is_input(pi),
            "net '" << netlist_.net_name(pi) << "' is not a primary input");
  staged_[pi] = v ? 1 : 0;
  staged_dirty_[pi] = 1;
}

void UnitDelaySimulator::clock_edge() {
  for (const auto& l : netlist_.latches()) {
    staged_[l.q] = value_[l.d];
    staged_dirty_[l.q] = 1;
  }
}

namespace {
bool eval_gate(const Netlist& n, const Gate& g, const std::vector<char>& value) {
  std::uint32_t m = 0;
  for (std::size_t j = 0; j < g.ins.size(); ++j)
    if (value[g.ins[j]]) m |= 1u << j;
  return g.tt.eval(m);
}
}  // namespace

int UnitDelaySimulator::settle(bool count) {
  // Apply staged source changes at t = 0.
  std::vector<NetId> changed;
  for (NetId net = 0; net < netlist_.num_nets(); ++net) {
    if (!staged_dirty_[net]) continue;
    staged_dirty_[net] = 0;
    if (value_[net] != staged_[net]) {
      value_[net] = staged_[net];
      if (count) ++toggles_[net];
      changed.push_back(net);
    }
  }

  int steps = 0;
  std::vector<char> gate_queued(netlist_.num_gates(), 0);
  while (!changed.empty()) {
    ++steps;
    HLP_CHECK(steps <= 4 * netlist_.num_gates() + 8,
              "unit-delay simulation did not quiesce (oscillation?)");
    // Gates sensitive to this step's changes...
    std::vector<int> dirty_gates;
    for (NetId net : changed)
      for (int gi : fanout_gates_[net])
        if (!gate_queued[gi]) {
          gate_queued[gi] = 1;
          dirty_gates.push_back(gi);
        }
    // ...evaluate with time-t values; outputs change at t+1.
    std::vector<NetId> next_changed;
    std::vector<char> new_vals(dirty_gates.size());
    for (std::size_t i = 0; i < dirty_gates.size(); ++i)
      new_vals[i] =
          eval_gate(netlist_, netlist_.gates()[dirty_gates[i]], value_) ? 1 : 0;
    for (std::size_t i = 0; i < dirty_gates.size(); ++i) {
      const int gi = dirty_gates[i];
      gate_queued[gi] = 0;
      const NetId out = netlist_.gates()[gi].out;
      if (value_[out] != new_vals[i]) {
        value_[out] = new_vals[i];
        if (count) ++toggles_[out];
        next_changed.push_back(out);
      }
    }
    changed = std::move(next_changed);
  }
  return steps;
}

void UnitDelaySimulator::settle_zero_delay(bool count) {
  for (NetId net = 0; net < netlist_.num_nets(); ++net) {
    if (!staged_dirty_[net]) continue;
    staged_dirty_[net] = 0;
    if (value_[net] != staged_[net]) {
      value_[net] = staged_[net];
      if (count) ++toggles_[net];
    }
  }
  for (int gi : topo_) {
    const Gate& g = netlist_.gates()[gi];
    const char nv = eval_gate(netlist_, g, value_) ? 1 : 0;
    if (value_[g.out] != nv) {
      value_[g.out] = nv;
      if (count) ++toggles_[g.out];
    }
  }
}

bool UnitDelaySimulator::value(NetId n) const {
  HLP_CHECK(n >= 0 && n < static_cast<NetId>(value_.size()), "net out of range");
  return value_[n];
}

std::uint64_t UnitDelaySimulator::total_toggles() const {
  std::uint64_t t = 0;
  for (auto v : toggles_) t += v;
  return t;
}

void UnitDelaySimulator::clear_toggles() {
  std::fill(toggles_.begin(), toggles_.end(), 0);
}

void UnitDelaySimulator::recompute_all() {
  for (int gi : topo_) {
    const Gate& g = netlist_.gates()[gi];
    value_[g.out] = eval_gate(netlist_, g, value_) ? 1 : 0;
  }
}

}  // namespace hlp
