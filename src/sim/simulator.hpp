// Event-driven unit-delay gate/LUT simulator.
//
// This is the measurement side of the reproduction: where the paper runs
// the Quartus II simulator on the synthesised design and counts transitions
// (toggle rate, Figure 3), we run this simulator on the mapped netlist.
// Every gate has one unit of delay, so unequal path depths produce the
// spurious intermediate transitions (glitches) that the binding algorithm
// tries to minimise. A zero-delay settle is also provided; the difference
// between unit-delay and zero-delay transition counts is precisely the
// glitch count.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace hlp {

class UnitDelaySimulator {
 public:
  explicit UnitDelaySimulator(const Netlist& n);

  /// Re-initialise: sources 0, all gates settled consistently, counters
  /// cleared, latches 0.
  void reset();

  /// Stage a new primary-input value (takes effect at the next settle).
  void set_input(NetId pi, bool value);

  /// Clock edge: every latch Q takes its D value (as of the current settled
  /// state). Call before settle() each cycle.
  void clock_edge();

  /// Propagate staged source changes with unit gate delays. When `count`
  /// is true, every net value change increments that net's toggle counter.
  /// Returns the number of unit time steps until quiescence.
  int settle(bool count = true);

  /// Zero-delay settle: single topological evaluation; each net changes at
  /// most once. Used for functional-transition baselines.
  void settle_zero_delay(bool count = true);

  bool value(NetId n) const;
  const std::vector<std::uint64_t>& toggles() const { return toggles_; }
  std::uint64_t total_toggles() const;
  void clear_toggles();

 private:
  void recompute_all();  // consistent zero-delay evaluation, no counting

  const Netlist& netlist_;
  std::vector<char> value_;
  std::vector<char> staged_;          // pending source values
  std::vector<char> staged_dirty_;    // which sources were staged
  std::vector<std::uint64_t> toggles_;
  std::vector<std::vector<int>> fanout_gates_;  // net -> consuming gate idx
  std::vector<int> topo_;
  std::vector<int> topo_pos_of_gate_;
};

}  // namespace hlp
