// Minimum-cost maximum-flow (successive shortest augmenting paths with
// Johnson potentials).
//
// Used by the LOPASS baseline's network-flow binding formulation
// (Chen & Cong, ASP-DAC 2004) and available as a general substrate.
#pragma once

#include <cstdint>
#include <vector>

namespace hlp {

/// Min-cost max-flow on a directed graph with integer capacities and double
/// costs. Nodes are dense indices [0, n).
class MinCostFlow {
 public:
  explicit MinCostFlow(int num_nodes);

  /// Add a directed edge; returns an edge id usable with flow_on().
  int add_edge(int from, int to, int capacity, double cost);

  /// Run min-cost max-flow from s to t.
  /// Returns {max_flow, total_cost}.
  struct Result {
    int flow = 0;
    double cost = 0.0;
  };
  Result solve(int s, int t);

  /// Flow pushed through edge `id` after solve().
  int flow_on(int id) const;

  int num_nodes() const { return static_cast<int>(head_.size()); }

 private:
  struct Edge {
    int to;
    int cap;
    double cost;
    int next;
  };
  std::vector<Edge> edges_;
  std::vector<int> head_;
  std::vector<int> orig_cap_;
};

}  // namespace hlp
