#include "graph/mincostflow.hpp"

#include <limits>
#include <queue>

#include "common/error.hpp"

namespace hlp {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

MinCostFlow::MinCostFlow(int num_nodes) : head_(num_nodes, -1) {
  HLP_CHECK(num_nodes > 0, "flow graph needs at least one node");
}

int MinCostFlow::add_edge(int from, int to, int capacity, double cost) {
  HLP_CHECK(from >= 0 && from < num_nodes() && to >= 0 && to < num_nodes(),
            "edge endpoints out of range: " << from << "->" << to);
  HLP_CHECK(capacity >= 0, "negative capacity");
  const int id = static_cast<int>(edges_.size());
  edges_.push_back({to, capacity, cost, head_[from]});
  head_[from] = id;
  edges_.push_back({from, 0, -cost, head_[to]});
  head_[to] = id + 1;
  orig_cap_.push_back(capacity);
  return id;
}

MinCostFlow::Result MinCostFlow::solve(int s, int t) {
  HLP_CHECK(s != t, "source equals sink");
  const int n = num_nodes();
  Result result;

  // Bellman-Ford (SPFA) initial potentials handle negative edge costs.
  std::vector<double> pot(n, 0.0);
  {
    std::vector<char> in_queue(n, 0);
    std::vector<double> dist(n, kInf);
    std::queue<int> q;
    dist[s] = 0;
    q.push(s);
    in_queue[s] = 1;
    while (!q.empty()) {
      const int u = q.front();
      q.pop();
      in_queue[u] = 0;
      for (int e = head_[u]; e != -1; e = edges_[e].next) {
        if (edges_[e].cap <= 0) continue;
        const int v = edges_[e].to;
        if (dist[u] + edges_[e].cost < dist[v] - 1e-12) {
          dist[v] = dist[u] + edges_[e].cost;
          if (!in_queue[v]) {
            q.push(v);
            in_queue[v] = 1;
          }
        }
      }
    }
    for (int i = 0; i < n; ++i) pot[i] = dist[i] == kInf ? 0.0 : dist[i];
  }

  for (;;) {
    // Dijkstra on reduced costs.
    std::vector<double> dist(n, kInf);
    std::vector<int> prev_edge(n, -1);
    using Item = std::pair<double, int>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    dist[s] = 0;
    pq.push({0.0, s});
    while (!pq.empty()) {
      auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[u] + 1e-12) continue;
      for (int e = head_[u]; e != -1; e = edges_[e].next) {
        if (edges_[e].cap <= 0) continue;
        const int v = edges_[e].to;
        const double nd = d + edges_[e].cost + pot[u] - pot[v];
        if (nd < dist[v] - 1e-12) {
          dist[v] = nd;
          prev_edge[v] = e;
          pq.push({nd, v});
        }
      }
    }
    if (dist[t] == kInf) break;
    for (int i = 0; i < n; ++i)
      if (dist[i] < kInf) pot[i] += dist[i];

    // Bottleneck along the path.
    int push = std::numeric_limits<int>::max();
    for (int v = t; v != s;) {
      const int e = prev_edge[v];
      push = std::min(push, edges_[e].cap);
      v = edges_[e ^ 1].to;
    }
    for (int v = t; v != s;) {
      const int e = prev_edge[v];
      edges_[e].cap -= push;
      edges_[e ^ 1].cap += push;
      result.cost += push * edges_[e].cost;
      v = edges_[e ^ 1].to;
    }
    result.flow += push;
  }
  return result;
}

int MinCostFlow::flow_on(int id) const {
  HLP_CHECK(id >= 0 && id / 2 < static_cast<int>(orig_cap_.size()) && id % 2 == 0,
            "invalid edge id " << id);
  return orig_cap_[id / 2] - edges_[id].cap;
}

}  // namespace hlp
