#include "graph/bipartite.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace hlp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Hungarian algorithm in the potential/shortest-augmenting-path form.
// Minimises total cost of assigning each of n rows to a distinct column of
// the (n x m) matrix `a`, n <= m. Entries may be +inf (forbidden).
// Returns per-row column indices, or an empty vector when infeasible.
std::vector<int> hungarian_min(const std::vector<std::vector<double>>& a) {
  const int n = static_cast<int>(a.size());
  if (n == 0) return {};
  const int m = static_cast<int>(a[0].size());
  HLP_CHECK(n <= m, "hungarian: rows (" << n << ") must be <= cols (" << m << ")");

  // 1-indexed potentials over rows (u) and columns (v); p[j] = row matched
  // to column j (0 = free). Classic e-maxx formulation.
  std::vector<double> u(n + 1, 0.0), v(m + 1, 0.0);
  std::vector<int> p(m + 1, 0), way(m + 1, 0);

  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<double> minv(m + 1, kInf);
    std::vector<char> used(m + 1, 0);
    do {
      used[j0] = 1;
      const int i0 = p[j0];
      double delta = kInf;
      int j1 = -1;
      for (int j = 1; j <= m; ++j) {
        if (used[j]) continue;
        const double cur = a[i0 - 1][j - 1] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      if (j1 < 0 || !std::isfinite(delta)) return {};  // infeasible
      for (int j = 0; j <= m; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    // Augment along the recorded path.
    do {
      const int j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0);
  }

  std::vector<int> match(n, -1);
  for (int j = 1; j <= m; ++j)
    if (p[j] > 0) match[p[j] - 1] = j - 1;
  return match;
}

}  // namespace

int MatchingResult::cardinality() const {
  int c = 0;
  for (int j : match_of_left)
    if (j >= 0) ++c;
  return c;
}

MatchingResult max_weight_matching(
    const std::vector<std::vector<double>>& weight) {
  MatchingResult out;
  const int n = static_cast<int>(weight.size());
  out.match_of_left.assign(n, -1);
  if (n == 0) return out;
  const int m = static_cast<int>(weight[0].size());
  for (const auto& row : weight)
    HLP_CHECK(static_cast<int>(row.size()) == m, "ragged weight matrix");
  if (m == 0) return out;

  // Cost matrix: negated weights, plus n dummy columns of cost 0 so any row
  // may remain unmatched. Non-edges (w <= 0) also cost 0 so they are never
  // preferred over a real edge.
  std::vector<std::vector<double>> cost(n, std::vector<double>(m + n, 0.0));
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < m; ++j)
      if (weight[i][j] > 0.0) cost[i][j] = -weight[i][j];

  const std::vector<int> match = hungarian_min(cost);
  HLP_CHECK(!match.empty(), "padded assignment must be feasible");
  for (int i = 0; i < n; ++i) {
    const int j = match[i];
    if (j >= 0 && j < m && weight[i][j] > 0.0) {
      out.match_of_left[i] = j;
      out.total_weight += weight[i][j];
    }
  }
  return out;
}

MatchingResult min_cost_assignment(const std::vector<std::vector<double>>& cost,
                                   double forbidden_cost) {
  MatchingResult out;
  const int n = static_cast<int>(cost.size());
  out.match_of_left.assign(n, -1);
  if (n == 0) return out;
  const int m = static_cast<int>(cost[0].size());
  HLP_REQUIRE(n <= m, "min_cost_assignment: more rows (" << n << ") than columns ("
                                                         << m << ")");
  std::vector<std::vector<double>> a(n, std::vector<double>(m));
  for (int i = 0; i < n; ++i) {
    HLP_CHECK(static_cast<int>(cost[i].size()) == m, "ragged cost matrix");
    for (int j = 0; j < m; ++j)
      a[i][j] = cost[i][j] >= forbidden_cost ? kInf : cost[i][j];
  }
  const std::vector<int> match = hungarian_min(a);
  HLP_REQUIRE(!match.empty(), "min_cost_assignment: no feasible assignment");
  for (int i = 0; i < n; ++i) {
    out.match_of_left[i] = match[i];
    out.total_weight += cost[i][match[i]];
  }
  return out;
}

}  // namespace hlp
