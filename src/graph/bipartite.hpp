// Weighted bipartite matching.
//
// Both binding algorithms in the paper are built on weighted bipartite
// matching: register binding (Huang et al. DAC'90), the HLPower functional
// unit binding (maximum-weight matching per iteration, Algorithm 1), and the
// LOPASS baseline (minimum-cost assignment per control step).
//
// The solver is the O(n^3) Hungarian algorithm (Jonker-Volgenant potential
// form). Maximum-weight matching with optional non-matching is reduced to a
// rectangular assignment problem by padding with zero-weight dummy columns.
#pragma once

#include <vector>

namespace hlp {

/// Result of a bipartite matching. `match_of_left[i]` is the matched right
/// vertex of left vertex i, or -1 when i is unmatched.
struct MatchingResult {
  double total_weight = 0.0;
  std::vector<int> match_of_left;

  /// Number of matched left vertices.
  int cardinality() const;
};

/// Maximum-weight bipartite matching.
///
/// `weight[i][j] > 0` is the weight of edge (i, j); `weight[i][j] == 0`
/// (or negative) means "no edge". Vertices may remain unmatched; because all
/// real weights are positive the optimum is always a maximal matching.
MatchingResult max_weight_matching(
    const std::vector<std::vector<double>>& weight);

/// Minimum-cost assignment: every left vertex must be matched to a distinct
/// right vertex (requires rows <= cols). `forbidden_cost` marks unusable
/// edges; throws hlp::Error if no feasible complete assignment exists.
MatchingResult min_cost_assignment(const std::vector<std::vector<double>>& cost,
                                   double forbidden_cost);

}  // namespace hlp
