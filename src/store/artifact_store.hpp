// Content-addressed on-disk artifact store — the persistent tier under
// the in-memory StageCache (ROADMAP: "Persistent cross-run artifact store
// + incremental exploration").
//
// A StageCache entry (the bind-fus..time artifacts of one binding) is
// keyed in memory by FlowContext::binding_hash(). That key is exact but
// scoped to one context; to share entries across processes, sessions and
// machines the store widens it into an ArtifactKey:
//
//   scope    — the context's identity: the runner's context_key plus a
//              structural digest of the CDFG, so two providers that reuse
//              a benchmark name for different graphs can never alias;
//   binding  — FlowContext::binding_hash() verbatim (scheduler, resolved
//              rc, width, reg_seed, SA mode, binder knobs in hexfloat,
//              map + timing parameters);
//   sa/settle/simd — the mode tags of the runner's group keys: the
//              resolved SA backend and the *requested* settle/simd modes,
//              recorded so a warm hit can prove it was produced under the
//              same configuration axes the runner groups by.
//
// One entry = one file, `objects/<fnv1a64(key)>.art`, in a line-oriented
// text format that follows the flow/job_io conventions: hexfloat doubles
// (bit-exact round trips), percent-escaped strings, a `hlp-artifact v1`
// magic header and an `end hlp-artifact <count>` footer so truncation is
// detectable, plus an FNV-1a checksum over the payload so bit flips are
// too. Unlike the job wire format the payload carries the FULL mapped and
// datapath netlists — the whole point is skipping elaborate/map/time.
//
// Durability contract (modelled on SaCache::merge_from and the results
// writer):
//   - Commits are atomic: entries are serialised into a per-process
//     staging directory and std::rename()d into objects/, so a reader
//     never observes a half-written entry and a SIGKILLed writer leaves
//     only staging litter, never a corrupt object.
//   - find() is lenient: a missing entry is a miss; an entry that fails
//     ANY validation (truncated, bit-flipped, wrong magic/footer, mode-tag
//     or key mismatch) is rejected and reported as a miss — corruption
//     degrades a warm run to a cold one, it never poisons it.
//   - publish() and merge_from() are overlap-must-agree: an existing
//     valid entry with the same key must match the incoming bytes exactly
//     (every producer is deterministic, so a mismatch means two
//     incompatible configurations share a store — an error, not a race);
//     an existing *invalid* entry is repaired by overwrite; a 64-bit
//     address collision between distinct keys keeps the first owner.
//
// Thread- and process-safe: many runners, threads and hlp_worker
// processes may share one store directory (each handle stages under its
// own staging/p<pid>-<n>/ dir). See docs/artifact-store.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "flow/pipeline.hpp"

namespace hlp::store {

/// Identity of one stored artifact. `full()` is the exact string the
/// content address hashes — every field the bind-fus..time stages (or the
/// runner's grouping) depend on is serialised in it, none digested.
struct ArtifactKey {
  std::string scope;    // context identity (runner key + CDFG digest)
  std::string binding;  // FlowContext::binding_hash()
  std::string sa;       // resolved SA mode name (sa_mode_name)
  std::string settle;   // requested settle mode name (settle_mode_name)
  std::string simd;     // requested simd mode name (simd_mode_name)

  std::string full() const;
  friend bool operator==(const ArtifactKey&, const ArtifactKey&) = default;
};

/// One parsed artifact file: the key it recorded plus the entry payload.
struct LoadedArtifact {
  ArtifactKey key;
  flow::StageCache::Entry entry;
};

/// One committed object as enumerate() reports it — identity and age
/// metadata only, no parse. The age is derived from the object's mtime,
/// which the atomic write-then-rename commit preserves from the staged
/// write, so it reflects when the entry was (re)computed, not renamed.
struct ObjectInfo {
  std::string path;            // absolute object path
  std::string address;         // 16-hex content address (the filename stem)
  std::uintmax_t bytes = 0;    // file size
  std::int64_t age_seconds = 0;  // now - mtime, clamped at 0
};

/// What fsck() found (and, in repair mode, did).
struct FsckReport {
  std::size_t scanned = 0;   // .art objects examined
  std::size_t valid = 0;     // passed strict parse + address check
  /// One "<path>: <defect>" line per object that failed validation.
  std::vector<std::string> rejected;
  std::size_t repaired = 0;         // invalid objects removed (repair mode)
  std::size_t staging_removed = 0;  // stale staging dirs swept (repair mode)

  bool clean() const { return rejected.empty(); }
};

/// What gc() keeps and drops. Filters compose as keeps: an object
/// survives iff it parses, is referenced (when `live_addresses` is set)
/// AND is young enough (when `max_age_seconds` is set). Invalid objects
/// never survive a gc — fsck reports them, gc collects them.
struct GcOptions {
  /// Drop referenced-but-older-than-this objects; negative = no age limit.
  std::int64_t max_age_seconds = -1;
  /// Keep only objects whose content address is in this set (e.g. the
  /// addresses a manifest's jobs map to); unset = everything is live.
  std::optional<std::set<std::string>> live_addresses;
  /// Report what would be dropped without touching the store.
  bool dry_run = false;
};

struct GcReport {
  std::size_t scanned = 0;
  std::size_t kept = 0;
  std::size_t dropped_unreferenced = 0;  // not in live_addresses
  std::size_t dropped_aged = 0;          // referenced but past max_age
  std::size_t dropped_invalid = 0;       // failed validation
  std::size_t staging_removed = 0;       // stale staging dirs swept
};

class ArtifactStore {
 public:
  using Entry = flow::StageCache::Entry;

  /// Opens (creating if needed) the store rooted at `root`: entries live
  /// in `<root>/objects/`, this handle stages its writes under
  /// `<root>/staging/p<pid>-<n>/`. Throws hlp::Error when the directories
  /// cannot be created (e.g. the root is a file).
  explicit ArtifactStore(const std::string& root);
  /// Best-effort removal of this handle's staging directory.
  ~ArtifactStore();

  ArtifactStore(const ArtifactStore&) = delete;
  ArtifactStore& operator=(const ArtifactStore&) = delete;

  const std::string& root() const { return root_; }

  /// Lenient probe: the entry for `key`, or null. A missing file counts a
  /// miss; a file that fails strict validation counts a rejection (and
  /// returns null) — corruption can cost a recompute, never an error.
  std::shared_ptr<const Entry> find(const ArtifactKey& key);

  /// Strict load: throws hlp::Error naming the defect on a missing file,
  /// truncation, checksum mismatch, wrong magic/footer, malformed payload
  /// or a recorded key/mode-tag that disagrees with `key`.
  std::shared_ptr<const Entry> load_strict(const ArtifactKey& key) const;

  /// Publish the entry for `key` (atomic write-then-rename).
  /// Overlap-must-agree: an existing valid entry for the same key must
  /// equal the incoming bytes exactly or this throws; an existing invalid
  /// entry is overwritten; an address collision with a different key
  /// keeps the existing entry.
  void publish(const ArtifactKey& key, const Entry& entry);

  /// Merge every entry of the store rooted at `other_root` into this one
  /// with publish()'s overlap-must-agree semantics. Strict like
  /// SaCache::merge_from: every source entry is validated (content
  /// address included) BEFORE anything is written, so a corrupt source or
  /// a conflict rejects the merge without partial state. Returns the
  /// number of newly inserted entries.
  std::size_t merge_from(const std::string& other_root);

  /// Committed objects on disk right now (valid or not).
  std::size_t size() const;

  /// Every committed object with its age metadata, sorted by content
  /// address — deterministic regardless of directory iteration order. No
  /// parse happens here; invalid objects are listed like valid ones.
  std::vector<ObjectInfo> enumerate() const;

  /// Validate every object via the strict parse (structure, checksum,
  /// footer, netlists) plus the filename-matches-content-address check
  /// that catches renamed or planted files. With `repair` set, invalid
  /// objects are deleted (the next probe recomputes them — the store's
  /// corruption contract) and stale staging directories left by dead
  /// writers are swept. Never touches valid objects.
  FsckReport fsck(bool repair);

  /// Drop objects per GcOptions (see its comment for the keep rule).
  /// Always sweeps stale staging directories unless dry_run. Safe against
  /// concurrent readers: a dropped object is a plain unlink, which a
  /// racing find() observes as a miss.
  GcReport gc(const GcOptions& opt);

  std::uint64_t hits() const { return hits_.load(); }
  std::uint64_t misses() const { return misses_.load(); }
  /// Entries that existed but failed validation in find().
  std::uint64_t rejected() const { return rejected_.load(); }
  /// Entries this handle committed (first writes + repairs, not no-ops).
  std::uint64_t publishes() const { return publishes_.load(); }

  /// `<root>/objects/<content_address(key)>.art`.
  std::string object_path(const ArtifactKey& key) const;
  /// FNV-1a 64 of key.full(), as 16 hex digits.
  static std::string content_address(const ArtifactKey& key);

  /// The exact bytes publish() commits for (key, entry) — exposed so
  /// tests can assert byte-level convergence and craft corrupt files.
  static std::string serialize(const ArtifactKey& key, const Entry& entry);
  /// Strict parse of serialize()'s output; `what` names the source in
  /// errors. Validates structure, magic, footer, checksum and both
  /// netlists, not the key (callers cross-check against their request).
  static LoadedArtifact parse(const std::string& bytes,
                              const std::string& what);

 private:
  void write_object(const std::string& path, const std::string& bytes);
  /// Remove staging dirs whose writer is provably gone (never our own).
  std::size_t sweep_stale_staging();

  std::string root_;
  std::string objects_;
  std::string staging_;
  std::atomic<std::uint64_t> tmp_seq_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> publishes_{0};
};

}  // namespace hlp::store
